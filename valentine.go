// Package valentine is the public API of the Valentine experiment suite for
// schema matching in dataset discovery (Koutras et al., ICDE 2021,
// reimplemented in Go).
//
// The package re-exports the suite's building blocks behind one import:
//
//   - tables and CSV I/O (ReadCSVFile, Table)
//   - seven schema-matching methods returning ranked column matches
//     (NewMatcher, Methods)
//   - the dataset-pair fabricator for the four relatedness scenarios
//     (NewFabricator)
//   - synthetic dataset sources standing in for the paper's data
//     (TPCDI, OpenData, ChEMBL, WikiDataPairs, MagellanPairs, ING1, ING2)
//   - the Recall@GroundTruth metric and experiment engine (RecallAtGT,
//     RunExperiments, DefaultGrids)
//   - a corpus-level live catalog for served top-k search that mutates
//     while it serves (NewDiscoveryIndex, Upsert/Remove,
//     LoadDiscoveryIndexFile) and its HTTP serving layer (NewServer)
//   - the unified concurrent execution engine behind all of the above
//     (MatchWithContext, EngineOptions, Stats): context-propagated deadlines
//     and cancellation, a bounded worker pool, per-stage instrumentation —
//     with rankings bit-identical to sequential execution
//
// A minimal use looks like:
//
//	src, _ := valentine.ReadCSVFile("a.csv")
//	tgt, _ := valentine.ReadCSVFile("b.csv")
//	m, _ := valentine.NewMatcher(valentine.MethodComaSchema, nil)
//	matches, _ := m.Match(src, tgt)
//	for _, match := range matches[:5] {
//		fmt.Println(match)
//	}
//
// # Discovery at corpus scale
//
// Pairwise matching answers "how do these two tables relate"; dataset
// discovery asks "which of my N tables relate to this one". Instead of
// running a matcher N times per query, build a DiscoveryIndex once: every
// column is summarized by a MinHash signature plus a lightweight profile
// and sharded across LSH band buckets, so a query only scores the columns
// it collides with (the paper's §IX scaling lesson, after JOSIE, LSH
// Ensemble and Lazo). The index is a live catalog — searches are lock-free
// reads of an epoch snapshot while Upsert/Remove mutate the corpus
// underneath — and persists to disk both as a single file and as an
// incremental snapshot directory:
//
//	ix := valentine.NewDiscoveryIndex(valentine.DiscoveryOptions{})
//	for _, t := range corpus {
//		ix.Add(t)
//	}
//	results, _ := ix.Search(query, valentine.DiscoverJoin, 10)
//	_ = ix.Upsert(newVersion) // replace a table while searches run
//	_ = ix.Remove("stale")    // tombstoned, reclaimed by compaction
//	_ = ix.SaveFile("lake.idx") // later: valentine.LoadDiscoveryIndexFile
//
// NewServer wraps the catalog in an HTTP API (search, upsert, delete,
// match, stats) with per-request deadlines and micro-batched ingest; the
// `valentine serve` command runs it with graceful shutdown and periodic
// snapshots.
package valentine

import (
	"context"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/metrics"
	"valentine/internal/table"
)

// Re-exported data types.
type (
	// Table is a named relation of typed columns.
	Table = table.Table
	// Column is a single attribute with values.
	Column = table.Column
	// Match is one scored column correspondence; matchers return ranked
	// slices of these.
	Match = core.Match
	// Matcher is a schema matching method.
	Matcher = core.Matcher
	// Params configures a matcher.
	Params = core.Params
	// GroundTruth is the set of correct correspondences of a pair.
	GroundTruth = core.GroundTruth
	// ColumnPair names a source/target correspondence.
	ColumnPair = core.ColumnPair
	// TablePair is a matching problem with ground truth.
	TablePair = core.TablePair
	// Fabricator creates matching problems from a source table.
	Fabricator = fabrication.Fabricator
	// Variant selects schema/instance noise (VS/NS × VI/NI).
	Variant = fabrication.Variant
	// DatasetOptions sizes generated datasets.
	DatasetOptions = datagen.Options
	// ExperimentSpec describes a batch run.
	ExperimentSpec = experiment.Spec
	// ExperimentResult is one (method, params, pair) outcome.
	ExperimentResult = experiment.Result
	// Grid is a list of parameter variants for one method.
	Grid = experiment.Grid
	// BoxStats summarizes a sample as min/median/max/mean/std-dev.
	BoxStats = metrics.BoxStats
	// Registry maps method names to factories.
	Registry = core.Registry
)

// Method names, in the paper's reporting order.
const (
	MethodCupid        = experiment.MethodCupid
	MethodSimFlood     = experiment.MethodSimFlood
	MethodComaSchema   = experiment.MethodComaSchema
	MethodComaInstance = experiment.MethodComaInstance
	MethodDistribution = experiment.MethodDistribution
	MethodSemProp      = experiment.MethodSemProp
	MethodEmbDI        = experiment.MethodEmbDI
	MethodJaccardLev   = experiment.MethodJaccardLev
)

// Relatedness scenarios (paper §III).
const (
	ScenarioUnionable     = core.ScenarioUnionable
	ScenarioViewUnionable = core.ScenarioViewUnionable
	ScenarioJoinable      = core.ScenarioJoinable
	ScenarioSemJoinable   = core.ScenarioSemJoinable
)

// Methods lists all implemented matching methods.
func Methods() []string { return experiment.MethodNames() }

// NewRegistry returns a registry with every implemented matcher.
func NewRegistry() *Registry { return experiment.NewRegistry() }

// NewMatcher instantiates a method by name with the given parameters (nil
// Params selects each method's defaults).
func NewMatcher(method string, p Params) (Matcher, error) {
	return experiment.NewRegistry().New(method, p)
}

// ReadCSVFile loads a table from a CSV file with a header row.
func ReadCSVFile(path string) (*Table, error) { return table.ReadCSVFile(path) }

// NewTable returns an empty named table; chain AddColumn to populate it
// (column types are inferred from the values).
func NewTable(name string) *Table { return table.New(name) }

// NewFabricator returns a dataset-pair fabricator seeded for reproducible
// splits and noise.
func NewFabricator(seed int64) *Fabricator { return fabrication.New(seed) }

// RecallAtGT computes Recall@GroundTruth, the suite's primary effectiveness
// metric (paper §II-C).
func RecallAtGT(matches []Match, gt *GroundTruth) (float64, error) {
	return metrics.RecallAtGroundTruth(matches, gt)
}

// RunExperiments executes methods × parameter grids × pairs on a worker
// pool and returns deterministic, sorted results.
func RunExperiments(ctx context.Context, spec ExperimentSpec) ([]ExperimentResult, error) {
	return experiment.Run(ctx, spec)
}

// DefaultGrids returns the paper's Table-II parameter grids (135
// configurations in total).
func DefaultGrids() map[string]Grid { return experiment.DefaultGrids() }

// QuickGrids returns one representative configuration per method.
func QuickGrids() map[string]Grid { return experiment.QuickGrids() }

// Box summarizes a float sample with min/median/max/mean/std-dev.
func Box(sample []float64) BoxStats { return metrics.Box(sample) }

// TPCDI generates the Prospect-like fabrication source (§V-A).
func TPCDI(opts DatasetOptions) *Table { return datagen.TPCDI(opts) }

// OpenData generates the civic open-data fabrication source (§V-A).
func OpenData(opts DatasetOptions) *Table { return datagen.OpenData(opts) }

// ChEMBL generates the assay-like fabrication source (§V-A).
func ChEMBL(opts DatasetOptions) *Table { return datagen.ChEMBL(opts) }

// WikiDataPairs builds the four curated WikiData-style pairs (§V-B).
func WikiDataPairs(opts DatasetOptions) []TablePair { return datagen.WikiData(opts) }

// MagellanPairs builds the seven Magellan-style pairs (§V-B).
func MagellanPairs(opts DatasetOptions) []TablePair { return datagen.Magellan(opts) }

// ING1 builds the simulated first ING pair (§V-B; proprietary original).
func ING1(opts DatasetOptions) TablePair { return datagen.ING1(opts) }

// ING2 builds the simulated second ING pair (§V-B; proprietary original).
func ING2(opts DatasetOptions) TablePair { return datagen.ING2(opts) }

// FabricationGrid fabricates the full Figure-3 recipe grid (56 pairs) from
// one source table.
func FabricationGrid(name string, src *Table, seed int64) ([]TablePair, error) {
	return fabrication.New(seed).Grid(fabrication.SourceTable{Name: name, Table: src})
}

// AllVariants lists the four schema×instance noise combinations.
func AllVariants() []Variant { return fabrication.AllVariants() }

package experiment

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/metrics"
	"valentine/internal/profile"
)

// Result is one experiment: a method with one parameter variant applied to
// one dataset pair.
type Result struct {
	Method   string
	Params   core.Params
	Pair     string
	Scenario string
	Variant  string
	Recall   float64
	Runtime  time.Duration
	Err      error
}

// Spec describes a batch of experiments.
type Spec struct {
	Registry *core.Registry
	Grids    map[string]Grid
	Methods  []string // subset of grid keys to run; empty means all
	Pairs    []core.TablePair
	Workers  int // engine worker-pool size; 0 means GOMAXPROCS
	// Deadline is the run's wall-clock budget; once it expires, queued jobs
	// are abandoned and in-flight jobs are canceled mid-scoring through the
	// engine. Zero means no deadline.
	Deadline time.Duration
	// Profiles is the shared column-profile store: every table of every
	// pair is profiled once per run, not once per (method, variant)
	// execution. Nil selects a fresh store private to the run.
	Profiles *profile.Store
}

// Run exhaustively executes methods × parameter variants × pairs (Fig. 1,
// step 3) on the engine's worker pool and returns results sorted
// deterministically. The context (or Spec.Deadline) cancels outstanding
// work; already-computed results are still returned, and jobs aborted
// mid-scoring surface the context error in their Result.Err.
func Run(ctx context.Context, spec Spec) ([]Result, error) {
	if spec.Registry == nil {
		return nil, fmt.Errorf("experiment: nil registry")
	}
	if len(spec.Pairs) == 0 {
		return nil, fmt.Errorf("experiment: no dataset pairs")
	}
	methods := spec.Methods
	if len(methods) == 0 {
		for _, m := range MethodNames() {
			if _, ok := spec.Grids[m]; ok {
				methods = append(methods, m)
			}
		}
	}
	type job struct {
		method  string
		params  core.Params
		pair    core.TablePair
		pairIdx int
	}
	// Jobs are ordered pair-major: every (method, variant) of one pair is
	// dispatched before the next pair starts, so a run-private profile
	// store can evict a pair's profiles as soon as its last job finishes
	// and peak memory stays proportional to the pairs in flight, not the
	// whole workload. Results are re-sorted before returning, so the
	// dispatch order is unobservable.
	var jobs []job
	for _, m := range methods {
		if _, ok := spec.Grids[m]; !ok {
			return nil, fmt.Errorf("experiment: no grid for method %q", m)
		}
	}
	perPair := make([]int, len(spec.Pairs))
	for pi, pair := range spec.Pairs {
		for _, m := range methods {
			for _, p := range spec.Grids[m] {
				jobs = append(jobs, job{method: m, params: p, pair: pair, pairIdx: pi})
				perPair[pi]++
			}
		}
	}

	store := spec.Profiles
	evict := store == nil // only a run-private store may drop profiles
	if store == nil {
		store = profile.NewStore()
	}
	remaining := make([]int64, len(spec.Pairs))
	for pi, n := range perPair {
		remaining[pi] = int64(n)
	}

	// Grid rows run in parallel on the engine pool; each job itself scores
	// sequentially (Parallelism 1) so per-job Runtime keeps Table V's
	// single-threaded meaning and the pool is saturated at the job level,
	// not oversubscribed at both levels.
	runCtx := ctx
	if spec.Deadline > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, spec.Deadline)
		defer cancel()
	}
	jobCtx := engine.WithOptions(runCtx, engine.Options{Parallelism: 1})
	results := make([]Result, len(jobs))
	canceled := engine.Map(runCtx, spec.Workers, len(jobs), func(idx int) error {
		j := jobs[idx]
		results[idx] = runOne(jobCtx, j.method, j.params, j.pair, spec.Registry, store)
		if evict && atomic.AddInt64(&remaining[j.pairIdx], -1) == 0 {
			store.Invalidate(j.pair.Source)
			store.Invalidate(j.pair.Target)
		}
		return nil
	})

	// Drop zero-value slots from a canceled run.
	out := results[:0]
	for _, r := range results {
		if r.Method != "" {
			out = append(out, r)
		}
	}
	sortResults(out)
	return out, canceled
}

func runOne(ctx context.Context, method string, params core.Params, pair core.TablePair, reg *core.Registry, store *profile.Store) Result {
	res := Result{
		Method:   method,
		Params:   params,
		Pair:     pair.Name,
		Scenario: pair.Scenario,
		Variant:  pair.Variant,
	}
	m, err := reg.New(method, params)
	if err != nil {
		res.Err = err
		return res
	}
	// Warm the pair's profiles outside the timed region: otherwise the
	// first (method, variant) job to touch a pair would absorb the shared
	// profiling cost into its Runtime while later methods hit warm caches,
	// biasing Table V by worker scheduling. Warm covers both suite
	// signature lengths (128 and SemProp's 64), so every method is timed
	// on fully cached profiles. Tables shared between pairs may be
	// re-profiled after an eviction — that only costs time outside the
	// timed region, never correctness.
	sp, tp := store.Of(pair.Source), store.Of(pair.Target)
	sp.Warm()
	tp.Warm()
	start := time.Now()
	matches, err := core.MatchProfilesWithContext(ctx, m, sp, tp)
	res.Runtime = time.Since(start)
	if err != nil {
		res.Err = err
		return res
	}
	recall, err := metrics.RecallAtGroundTruth(matches, pair.Truth)
	if err != nil {
		res.Err = err
		return res
	}
	res.Recall = recall
	return res
}

func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Method != rs[j].Method {
			return rs[i].Method < rs[j].Method
		}
		if ki, kj := rs[i].Params.Key(), rs[j].Params.Key(); ki != kj {
			return ki < kj
		}
		return rs[i].Pair < rs[j].Pair
	})
}

// BoxByScenario aggregates recall box statistics per scenario for one
// method, optionally filtered by a variant predicate (e.g. only noisy
// schemata, as Figure 4 displays).
func BoxByScenario(rs []Result, method string, keep func(Result) bool) map[string]metrics.BoxStats {
	samples := make(map[string][]float64)
	for _, r := range rs {
		if r.Method != method || r.Err != nil {
			continue
		}
		if keep != nil && !keep(r) {
			continue
		}
		samples[r.Scenario] = append(samples[r.Scenario], r.Recall)
	}
	out := make(map[string]metrics.BoxStats, len(samples))
	for s, xs := range samples {
		out[s] = metrics.Box(xs)
	}
	return out
}

// AverageRuntime reports each method's mean per-pair runtime (Table V).
func AverageRuntime(rs []Result) map[string]time.Duration {
	sums := make(map[string]time.Duration)
	counts := make(map[string]int)
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		sums[r.Method] += r.Runtime
		counts[r.Method]++
	}
	out := make(map[string]time.Duration, len(sums))
	for m, s := range sums {
		out[m] = s / time.Duration(counts[m])
	}
	return out
}

// MeanRecall reports each method's mean recall over all its results.
func MeanRecall(rs []Result) map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		sums[r.Method] += r.Recall
		counts[r.Method]++
	}
	out := make(map[string]float64, len(sums))
	for m, s := range sums {
		out[m] = s / float64(counts[m])
	}
	return out
}

package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"valentine/internal/core"
)

// resultHeader is the column layout of the results CSV, mirroring the
// detailed per-experiment result files the original Valentine repository
// publishes alongside the paper.
var resultHeader = []string{
	"method", "params", "pair", "scenario", "variant", "recall", "runtime_us", "error",
}

// WriteResultsCSV streams results as CSV with a header row.
func WriteResultsCSV(w io.Writer, rs []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(resultHeader); err != nil {
		return err
	}
	for _, r := range rs {
		errStr := ""
		if r.Err != nil {
			errStr = r.Err.Error()
		}
		rec := []string{
			r.Method,
			r.Params.Key(),
			r.Pair,
			r.Scenario,
			r.Variant,
			strconv.FormatFloat(r.Recall, 'f', 6, 64),
			strconv.FormatInt(r.Runtime.Microseconds(), 10),
			errStr,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadResultsCSV parses a results CSV produced by WriteResultsCSV. Params
// round-trip as an opaque key under the "key" entry (the full typed values
// are not recoverable from their rendered form).
func ReadResultsCSV(r io.Reader) ([]Result, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiment: empty results csv")
	}
	if len(records[0]) != len(resultHeader) || records[0][0] != "method" {
		return nil, fmt.Errorf("experiment: unexpected results header %v", records[0])
	}
	out := make([]Result, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != len(resultHeader) {
			return nil, fmt.Errorf("experiment: row %d has %d fields, want %d", i+2, len(rec), len(resultHeader))
		}
		recall, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("experiment: row %d recall: %w", i+2, err)
		}
		us, err := strconv.ParseInt(rec[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiment: row %d runtime: %w", i+2, err)
		}
		res := Result{
			Method:   rec[0],
			Params:   core.Params{"key": rec[1]},
			Pair:     rec[2],
			Scenario: rec[3],
			Variant:  rec[4],
			Recall:   recall,
			Runtime:  time.Duration(us) * time.Microsecond,
		}
		if rec[7] != "" {
			res.Err = fmt.Errorf("%s", rec[7])
		}
		out = append(out, res)
	}
	return out, nil
}

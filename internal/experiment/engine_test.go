package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"valentine/internal/datagen"
	"valentine/internal/fabrication"
)

func engineTestSpec(t *testing.T, workers int, deadline time.Duration) Spec {
	t.Helper()
	src := datagen.TPCDI(datagen.Options{Rows: 40, Seed: 2})
	pairs, err := fabrication.GridSeeds(fabrication.SourceTable{Name: "TPC-DI", Table: src}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Registry: NewRegistry(),
		Grids:    QuickGrids(),
		Methods:  []string{MethodComaSchema, MethodJaccardLev},
		Pairs:    pairs[:8],
		Workers:  workers,
		Deadline: deadline,
	}
}

// TestRunDeterministicAcrossWorkers: the engine-dispatched grid must produce
// identical results at any pool size.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	baseline, err := Run(context.Background(), engineTestSpec(t, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("empty baseline run")
	}
	for _, workers := range []int{4, 16} {
		got, err := Run(context.Background(), engineTestSpec(t, workers, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("workers %d: %d results, want %d", workers, len(got), len(baseline))
		}
		for i := range baseline {
			b, g := baseline[i], got[i]
			// Runtime differs run to run; everything else must be identical.
			if g.Method != b.Method || g.Pair != b.Pair || g.Params.Key() != b.Params.Key() ||
				g.Recall != b.Recall || g.Scenario != b.Scenario || g.Variant != b.Variant {
				t.Fatalf("workers %d result %d: got %+v, want %+v", workers, i, g, b)
			}
		}
	}
}

// TestRunDeadlineAbandonsPartialWork: an expired Spec.Deadline must stop the
// grid promptly, return the context error, and keep only cleanly completed
// (or cleanly erred) rows — never a half-scored zero-value row.
func TestRunDeadlineAbandonsPartialWork(t *testing.T) {
	spec := engineTestSpec(t, 2, time.Nanosecond)
	spec.Methods = nil // all methods: enough work that expiry hits mid-run
	start := time.Now()
	results, err := Run(context.Background(), spec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline run took %v", elapsed)
	}
	for _, r := range results {
		if r.Method == "" {
			t.Fatal("zero-value result slot leaked into output")
		}
		// Rows the deadline caught mid-scoring must carry the context error,
		// not a fabricated recall.
		if r.Err != nil && !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("unexpected row error: %v", r.Err)
		}
	}
}

// TestRunDeadlineGenerous: a deadline that never fires must not change the
// run's outcome.
func TestRunDeadlineGenerous(t *testing.T) {
	want, err := Run(context.Background(), engineTestSpec(t, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), engineTestSpec(t, 4, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results with deadline, %d without", len(got), len(want))
	}
	for i := range want {
		if got[i].Recall != want[i].Recall || got[i].Method != want[i].Method {
			t.Fatalf("result %d differs under a generous deadline", i)
		}
	}
}

package experiment

import (
	"context"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
)

func smallPairs(t *testing.T) []core.TablePair {
	t.Helper()
	f := fabrication.New(7)
	var out []core.TablePair
	u, err := f.Unionable(matchertest.Source(), 0.5, fabrication.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := f.Joinable(matchertest.Source(), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, u, j)
}

func TestRegistryHasAllMethods(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 9 { // the paper's 8 + the LSH extension
		t.Fatalf("registry has %d methods, want 9: %v", len(names), names)
	}
	if m, err := r.New(MethodLSH, nil); err != nil || m.Name() != MethodLSH {
		t.Errorf("LSH extension: %v, %v", m, err)
	}
	for _, m := range MethodNames() {
		matcher, err := r.New(m, nil)
		if err != nil {
			t.Errorf("New(%s): %v", m, err)
			continue
		}
		if matcher.Name() == "" {
			t.Errorf("%s has empty matcher name", m)
		}
		if len(r.Capabilities(m)) == 0 {
			t.Errorf("%s has no Table-I capabilities", m)
		}
	}
}

func TestMethodGroupings(t *testing.T) {
	if len(SchemaBasedMethods()) != 3 || len(InstanceBasedMethods()) != 3 || len(HybridMethods()) != 2 {
		t.Error("Figure 4/5/6 groupings wrong")
	}
}

func TestDefaultGridsMatchPaperCount(t *testing.T) {
	grids := DefaultGrids()
	if got := TotalConfigurations(grids); got != 135 {
		t.Fatalf("default grid total = %d configurations, paper reports 135", got)
	}
	wantSizes := map[string]int{
		MethodCupid: 96, MethodSimFlood: 1, MethodComaSchema: 1,
		MethodComaInstance: 1, MethodDistribution: 18, MethodSemProp: 12,
		MethodEmbDI: 1, MethodJaccardLev: 5,
	}
	for m, want := range wantSizes {
		if got := len(grids[m]); got != want {
			t.Errorf("grid %s = %d configs, want %d", m, got, want)
		}
	}
}

func TestQuickGridsCoverAllMethods(t *testing.T) {
	q := QuickGrids()
	for _, m := range MethodNames() {
		if len(q[m]) != 1 {
			t.Errorf("quick grid for %s = %d configs, want 1", m, len(q[m]))
		}
	}
}

func TestRunQuickSubset(t *testing.T) {
	spec := Spec{
		Registry: NewRegistry(),
		Grids:    QuickGrids(),
		Methods:  []string{MethodComaSchema, MethodJaccardLev},
		Pairs:    smallPairs(t),
		Workers:  2,
	}
	rs, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 { // 2 methods × 1 config × 2 pairs
		t.Fatalf("results = %d, want 4", len(rs))
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Errorf("%s on %s: %v", r.Method, r.Pair, r.Err)
		}
		if r.Recall < 0 || r.Recall > 1 {
			t.Errorf("recall out of range: %+v", r)
		}
		if r.Runtime <= 0 {
			t.Errorf("missing runtime: %+v", r)
		}
	}
	// deterministic ordering
	rs2, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if rs[i].Method != rs2[i].Method || rs[i].Pair != rs2[i].Pair || rs[i].Recall != rs2[i].Recall {
			t.Fatal("runs not deterministic")
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Error("nil registry should fail")
	}
	if _, err := Run(context.Background(), Spec{Registry: NewRegistry()}); err == nil {
		t.Error("no pairs should fail")
	}
	if _, err := Run(context.Background(), Spec{
		Registry: NewRegistry(),
		Grids:    map[string]Grid{},
		Methods:  []string{"ghost"},
		Pairs:    smallPairs(t),
	}); err == nil {
		t.Error("missing grid should fail")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := Run(ctx, Spec{
		Registry: NewRegistry(),
		Grids:    QuickGrids(),
		Methods:  []string{MethodComaSchema},
		Pairs:    smallPairs(t),
	})
	if err == nil {
		t.Error("canceled context should surface the cancellation")
	}
	_ = rs // partial results are acceptable
}

func TestAggregations(t *testing.T) {
	rs := []Result{
		{Method: "m", Scenario: "unionable", Recall: 0.2, Runtime: time.Second},
		{Method: "m", Scenario: "unionable", Recall: 0.8, Runtime: 3 * time.Second},
		{Method: "m", Scenario: "joinable", Recall: 1.0, Runtime: 2 * time.Second},
		{Method: "m", Scenario: "joinable", Recall: 0.5, Err: context.Canceled},
	}
	box := BoxByScenario(rs, "m", nil)
	if box["unionable"].Median != 0.5 || box["unionable"].N != 2 {
		t.Errorf("unionable box = %+v", box["unionable"])
	}
	if box["joinable"].N != 1 {
		t.Errorf("errored results should be excluded: %+v", box["joinable"])
	}
	filtered := BoxByScenario(rs, "m", func(r Result) bool { return r.Recall > 0.5 })
	if filtered["unionable"].N != 1 {
		t.Errorf("filter not applied: %+v", filtered["unionable"])
	}
	rt := AverageRuntime(rs)
	if rt["m"] != 2*time.Second {
		t.Errorf("avg runtime = %v", rt["m"])
	}
	mr := MeanRecall(rs)
	if mr["m"] < 0.66 || mr["m"] > 0.67 {
		t.Errorf("mean recall = %v", mr["m"])
	}
}

func TestSensitivity(t *testing.T) {
	mk := func(th float64, pair string, recall float64) Result {
		return Result{
			Method: MethodJaccardLev,
			Params: core.Params{"threshold": th},
			Pair:   pair,
			Recall: recall,
		}
	}
	rs := []Result{
		// pair A: recall varies a lot with threshold
		mk(0.4, "A", 0.1), mk(0.6, "A", 0.9), mk(0.8, "A", 0.5),
		// pair B: recall stable
		mk(0.4, "B", 0.7), mk(0.6, "B", 0.7), mk(0.8, "B", 0.7),
	}
	box := Sensitivity(rs, MethodJaccardLev, "threshold")
	if box.N != 2 {
		t.Fatalf("groups = %d, want 2", box.N)
	}
	if box.Min > 1e-12 {
		t.Errorf("stable pair should give ~0 std-dev, min = %v", box.Min)
	}
	if box.Max <= 0.2 {
		t.Errorf("varying pair should give large std-dev, max = %v", box.Max)
	}
	// unknown parameter → empty stats
	if got := Sensitivity(rs, MethodJaccardLev, "nope"); got.N != 0 {
		t.Errorf("unknown param = %+v", got)
	}
}

func TestSensitivityParams(t *testing.T) {
	sp := SensitivityParams()
	if len(sp[MethodCupid]) != 3 {
		t.Error("cupid should vary 3 parameters (Table III)")
	}
}

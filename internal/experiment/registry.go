// Package experiment drives Valentine's evaluation pipeline (paper Fig. 1):
// it wires every matcher into a registry with its Table-I capabilities,
// materializes the Table-II parameter grids, executes the cartesian product
// of methods × parameter variants × dataset pairs on a worker pool, and
// aggregates effectiveness (Recall@GroundTruth box statistics), efficiency
// (average runtime, Table V) and parameter sensitivity (Table III).
package experiment

import (
	"valentine/internal/core"
	"valentine/internal/matchers/coma"
	"valentine/internal/matchers/cupid"
	"valentine/internal/matchers/distribution"
	"valentine/internal/matchers/embdi"
	"valentine/internal/matchers/jaccardlev"
	"valentine/internal/matchers/lshmatch"
	"valentine/internal/matchers/semprop"
	"valentine/internal/matchers/simflood"
)

// Canonical method names used throughout the suite and reports.
const (
	MethodCupid        = "cupid"
	MethodSimFlood     = "similarity-flooding"
	MethodComaSchema   = "coma-schema"
	MethodComaInstance = "coma-instance"
	MethodDistribution = "distribution-based"
	MethodSemProp      = "semprop"
	MethodEmbDI        = "embdi"
	MethodJaccardLev   = "jaccard-levenshtein"
	// MethodLSH is this suite's extension beyond the paper's seven methods:
	// the approximate value-overlap matcher suggested by §IX's scaling
	// lesson. It is registered but excluded from MethodNames() so paper
	// reproductions stay faithful.
	MethodLSH = "lsh-value-overlap"
)

// MethodNames lists all methods in the paper's reporting order.
func MethodNames() []string {
	return []string{
		MethodCupid, MethodSimFlood, MethodComaSchema, MethodComaInstance,
		MethodDistribution, MethodSemProp, MethodEmbDI, MethodJaccardLev,
	}
}

// SchemaBasedMethods are Figure 4's subjects.
func SchemaBasedMethods() []string {
	return []string{MethodCupid, MethodSimFlood, MethodComaSchema}
}

// InstanceBasedMethods are Figure 5's subjects.
func InstanceBasedMethods() []string {
	return []string{MethodDistribution, MethodJaccardLev, MethodComaInstance}
}

// HybridMethods are Figure 6's subjects.
func HybridMethods() []string {
	return []string{MethodEmbDI, MethodSemProp}
}

// NewRegistry builds the registry of all implemented matchers with their
// Table-I capability tags.
func NewRegistry() *core.Registry {
	r := core.NewRegistry()
	mustRegister(r, MethodCupid, cupid.New,
		core.CapAttributeOverlap, core.CapSemanticOverlap, core.CapDataType)
	mustRegister(r, MethodSimFlood, simflood.New,
		core.CapAttributeOverlap, core.CapDataType)
	mustRegister(r, MethodComaSchema, func(p core.Params) (core.Matcher, error) {
		q := p.Clone()
		q["strategy"] = "schema"
		return coma.New(q)
	}, core.CapAttributeOverlap, core.CapSemanticOverlap, core.CapDataType)
	mustRegister(r, MethodComaInstance, func(p core.Params) (core.Matcher, error) {
		q := p.Clone()
		q["strategy"] = "instance"
		return coma.New(q)
	}, core.CapAttributeOverlap, core.CapValueOverlap, core.CapDataType,
		core.CapDistribution)
	mustRegister(r, MethodDistribution, distribution.New,
		core.CapValueOverlap, core.CapDistribution)
	mustRegister(r, MethodSemProp, semprop.New,
		core.CapSemanticOverlap, core.CapValueOverlap, core.CapEmbeddings)
	mustRegister(r, MethodEmbDI, embdi.New, core.CapEmbeddings)
	mustRegister(r, MethodJaccardLev, jaccardlev.New, core.CapValueOverlap)
	mustRegister(r, MethodLSH, lshmatch.New, core.CapValueOverlap)
	return r
}

func mustRegister(r *core.Registry, name string, f core.Factory, caps ...core.Capability) {
	if err := r.Register(name, f, caps...); err != nil {
		panic(err) // static construction; names are unique by inspection
	}
}

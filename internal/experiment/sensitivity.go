package experiment

import (
	"fmt"
	"sort"
	"strings"

	"valentine/internal/metrics"
)

// Sensitivity reproduces Table III's methodology (§VI-C): for one method
// and one varying parameter, group results by (dataset pair, all other
// parameters fixed), compute the standard deviation of recall across the
// varying parameter's values inside each group, and summarize those
// standard deviations as min/median/max box statistics. Groups observed at
// fewer than two parameter values are skipped (no variation to measure).
func Sensitivity(rs []Result, method, param string) metrics.BoxStats {
	groups := make(map[string][]float64)
	for _, r := range rs {
		if r.Method != method || r.Err != nil {
			continue
		}
		if _, has := r.Params[param]; !has {
			continue
		}
		groups[r.Pair+"|"+keyWithout(r.Params, param)] = append(
			groups[r.Pair+"|"+keyWithout(r.Params, param)], r.Recall)
	}
	var stdevs []float64
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		xs := groups[k]
		if len(xs) < 2 {
			continue
		}
		stdevs = append(stdevs, metrics.Box(xs).StdDev)
	}
	return metrics.Box(stdevs)
}

// SensitivityParams lists, per method, the Table-III parameters that take
// at least three values in the default grids.
func SensitivityParams() map[string][]string {
	return map[string][]string{
		MethodCupid:        {"leaf_w_struct", "w_struct", "th_accept"},
		MethodDistribution: {"theta1", "theta2"},
		MethodSemProp:      {"sem_threshold"},
		MethodJaccardLev:   {"threshold"},
	}
}

func keyWithout(p map[string]any, omit string) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		if k != omit {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, p[k]))
	}
	return strings.Join(parts, ",")
}

package experiment

import "valentine/internal/core"

// Grid is the list of parameter variants to run for one method.
type Grid []core.Params

// DefaultGrids materializes Table II of the paper. The grand total across
// methods is 135 parameter configurations — the number the paper reports
// (553 dataset pairs × 135 configurations ≈ 75K experiments).
//
//	Cupid:           leaf_w_struct {0,.2,.4,.6} × w_struct {0,.2,.4,.6} × th_accept {.3….8} = 96
//	Sim. Flooding:   fixed (inverse-average, formula C)                                     = 1
//	COMA:            strategy {schema, instance}, threshold 0                               = 2
//	Dist. #1:        θ₁ {.1,.15,.2} × θ₂ {.1,.15,.2}                                        = 9
//	Dist. #2:        θ₁ {.3,.4,.5} × θ₂ {.3,.4,.5}                                          = 9
//	SemProp:         minh {.2,.3} × sem {.4,.5,.6} × coh {.2,.4}                            = 12
//	EmbDI:           fixed (word2vec, window 3)                                             = 1
//	Jaccard-Lev.:    threshold {.4,.5,.6,.7,.8}                                             = 5
func DefaultGrids() map[string]Grid {
	grids := make(map[string]Grid)

	var cupidGrid Grid
	for _, lws := range []float64{0, 0.2, 0.4, 0.6} {
		for _, ws := range []float64{0, 0.2, 0.4, 0.6} {
			for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
				cupidGrid = append(cupidGrid, core.Params{
					"leaf_w_struct": lws, "w_struct": ws, "th_accept": th,
				})
			}
		}
	}
	grids[MethodCupid] = cupidGrid

	grids[MethodSimFlood] = Grid{core.Params{"formula": "C"}}

	grids[MethodComaSchema] = Grid{core.Params{"threshold": 0.0}}
	grids[MethodComaInstance] = Grid{core.Params{"threshold": 0.0}}

	var distGrid Grid
	for _, run := range [][]float64{{0.1, 0.15, 0.2}, {0.3, 0.4, 0.5}} {
		for _, t1 := range run {
			for _, t2 := range run {
				distGrid = append(distGrid, core.Params{"theta1": t1, "theta2": t2})
			}
		}
	}
	grids[MethodDistribution] = distGrid

	var spGrid Grid
	for _, mh := range []float64{0.2, 0.3} {
		for _, sem := range []float64{0.4, 0.5, 0.6} {
			for _, coh := range []float64{0.2, 0.4} {
				spGrid = append(spGrid, core.Params{
					"minhash_threshold": mh, "sem_threshold": sem, "coh_sem_threshold": coh,
				})
			}
		}
	}
	grids[MethodSemProp] = spGrid

	grids[MethodEmbDI] = Grid{core.Params{"window": 3}}

	var jlGrid Grid
	for _, th := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
		jlGrid = append(jlGrid, core.Params{"threshold": th})
	}
	grids[MethodJaccardLev] = jlGrid

	return grids
}

// QuickGrids returns one representative configuration per method — the
// configuration a practitioner without ground truth would pick (paper
// defaults) — for fast end-to-end runs.
func QuickGrids() map[string]Grid {
	return map[string]Grid{
		MethodCupid:        {core.Params{"leaf_w_struct": 0.2, "w_struct": 0.2, "th_accept": 0.3}},
		MethodSimFlood:     {core.Params{"formula": "C"}},
		MethodComaSchema:   {core.Params{"threshold": 0.0}},
		MethodComaInstance: {core.Params{"threshold": 0.0}},
		MethodDistribution: {core.Params{"theta1": 0.15, "theta2": 0.15}},
		MethodSemProp:      {core.Params{"sem_threshold": 0.5, "coh_sem_threshold": 0.3, "minhash_threshold": 0.25}},
		MethodEmbDI:        {core.Params{"window": 3}},
		MethodJaccardLev:   {core.Params{"threshold": 0.8}},
	}
}

// TotalConfigurations counts the parameter variants across a grid set.
func TotalConfigurations(grids map[string]Grid) int {
	n := 0
	for _, g := range grids {
		n += len(g)
	}
	return n
}

package experiment

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"valentine/internal/core"
)

func TestResultsCSVRoundTrip(t *testing.T) {
	in := []Result{
		{
			Method: MethodComaSchema, Params: core.Params{"threshold": 0.0},
			Pair: "p1", Scenario: "unionable", Variant: "VS/VI ro=50%",
			Recall: 0.875, Runtime: 1500 * time.Microsecond,
		},
		{
			Method: MethodEmbDI, Params: core.Params{"window": 3},
			Pair: "p2", Scenario: "joinable", Variant: "NS/VI",
			Recall: 0.5, Runtime: time.Second, Err: errors.New("boom"),
		},
	}
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResultsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].Method != MethodComaSchema || out[0].Recall != 0.875 ||
		out[0].Runtime != 1500*time.Microsecond || out[0].Err != nil {
		t.Fatalf("row 0 = %+v", out[0])
	}
	if out[1].Err == nil || out[1].Err.Error() != "boom" {
		t.Fatalf("row 1 error = %v", out[1].Err)
	}
	if out[0].Params.String("key", "") != "threshold=0" {
		t.Fatalf("params key = %v", out[0].Params)
	}
}

func TestReadResultsCSVErrors(t *testing.T) {
	if _, err := ReadResultsCSV(strings.NewReader("")); err == nil {
		t.Error("empty should fail")
	}
	if _, err := ReadResultsCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("wrong header should fail")
	}
	bad := "method,params,pair,scenario,variant,recall,runtime_us,error\nm,p,x,s,v,notanumber,10,\n"
	if _, err := ReadResultsCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad recall should fail")
	}
	bad2 := "method,params,pair,scenario,variant,recall,runtime_us,error\nm,p,x,s,v,0.5,xx,\n"
	if _, err := ReadResultsCSV(strings.NewReader(bad2)); err == nil {
		t.Error("bad runtime should fail")
	}
}

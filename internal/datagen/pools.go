// Package datagen generates the synthetic dataset sources that stand in
// for the paper's evaluation data (§V). The originals are proprietary
// (ING), license-bound (ChEMBL, TPC-DI) or require online access (WikiData,
// Open Data, Magellan); each generator reproduces the schema vocabulary,
// data types, value distributions and matching challenges the paper
// describes, so the fabricator and matchers exercise the same code paths.
// DESIGN.md §4 documents each substitution.
package datagen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Value pools shared across generators. Deterministic slices; generators
// index into them through seeded RNGs.
var (
	firstNames = []string{
		"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
		"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
		"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Chris",
		"Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
		"Mark", "Sandra", "Donald", "Ashley", "Steven", "Kim", "Paul", "Emily",
		"Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy", "Kevin",
		"Carol", "Brian", "Amanda", "George", "Melissa", "Edward", "Deborah",
	}
	lastNames = []string{
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
		"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
		"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
		"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
		"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
		"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	}
	streetNames = []string{
		"Main St", "Oak Ave", "Maple Dr", "Cedar Ln", "Pine Rd", "Elm St",
		"Washington Blvd", "Lake View Dr", "Hill Crest Rd", "Sunset Ave",
		"Park Pl", "River Rd", "Church St", "High St", "Mill Ln", "Bridge St",
		"Station Rd", "Garden Way", "Forest Dr", "Spring St",
	}
	cityNames = []string{
		"Springfield", "Riverside", "Fairview", "Georgetown", "Madison",
		"Clinton", "Arlington", "Salem", "Bristol", "Dover", "Hudson",
		"Kingston", "Milton", "Newport", "Oxford", "Ashland", "Burlington",
		"Clayton", "Dayton", "Franklin",
	}
	stateNames = []string{
		"CA", "NY", "TX", "FL", "IL", "PA", "OH", "GA", "NC", "MI", "NJ",
		"VA", "WA", "AZ", "MA", "TN", "IN", "MO", "MD", "WI",
	}
	countryNames = []string{
		"USA", "Canada", "UK", "Netherlands", "France", "Germany", "Spain",
		"Italy", "Japan", "China", "Brazil", "India", "Australia", "Mexico",
		"Sweden", "Norway", "Poland", "Greece", "Portugal", "Ireland",
	}
	// countryAlt maps a country to an alternative encoding, powering
	// semantically-joinable challenges (Fig. 2d's USA → States, China → Chn).
	countryAlt = map[string]string{
		"USA": "United States", "Canada": "CAN", "UK": "United Kingdom",
		"Netherlands": "NLD", "France": "FRA", "Germany": "DEU",
		"Spain": "ESP", "Italy": "ITA", "Japan": "JPN", "China": "CHN",
		"Brazil": "BRA", "India": "IND", "Australia": "AUS", "Mexico": "MEX",
		"Sweden": "SWE", "Norway": "NOR", "Poland": "POL", "Greece": "GRC",
		"Portugal": "PRT", "Ireland": "IRL",
	}
	companySuffixes = []string{"Inc", "LLC", "Ltd", "Corp", "Group", "Partners"}
	wordPool        = []string{
		"alpha", "beta", "gamma", "delta", "omega", "vector", "matrix",
		"stream", "cloud", "quantum", "nova", "prime", "core", "flux",
		"pulse", "orbit", "signal", "cipher", "atlas", "zenith",
	}
)

type gen struct{ rng *rand.Rand }

func newGen(seed int64) *gen { return &gen{rng: rand.New(rand.NewSource(seed))} }

func (g *gen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

func (g *gen) fullName() string { return g.pick(firstNames) + " " + g.pick(lastNames) }

func (g *gen) street() string {
	return strconv.Itoa(1+g.rng.Intn(999)) + " " + g.pick(streetNames)
}

func (g *gen) phone() string {
	return fmt.Sprintf("(%03d) %03d-%04d", 200+g.rng.Intn(800), g.rng.Intn(1000), g.rng.Intn(10000))
}

func (g *gen) email(name string) string {
	user := strings.ToLower(strings.ReplaceAll(name, " ", "."))
	dom := []string{"example.com", "mail.com", "corp.net", "inbox.org"}
	return user + "@" + g.pick(dom)
}

func (g *gen) date(yearLo, yearHi int) string {
	y := yearLo + g.rng.Intn(yearHi-yearLo+1)
	m := 1 + g.rng.Intn(12)
	d := 1 + g.rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

func (g *gen) intIn(lo, hi int) string { return strconv.Itoa(lo + g.rng.Intn(hi-lo+1)) }

func (g *gen) floatIn(lo, hi float64, prec int) string {
	return strconv.FormatFloat(lo+g.rng.Float64()*(hi-lo), 'f', prec, 64)
}

// normalInt draws from N(mean, sd) clamped at lo.
func (g *gen) normalInt(mean, sd float64, lo int) string {
	v := int(mean + g.rng.NormFloat64()*sd)
	if v < lo {
		v = lo
	}
	return strconv.Itoa(v)
}

func (g *gen) hexHash(n int) string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hexDigits[g.rng.Intn(16)]
	}
	return string(b)
}

func (g *gen) codeWord() string {
	return g.pick(wordPool) + "-" + g.pick(wordPool)
}

func (g *gen) zip() string { return fmt.Sprintf("%05d", 10000+g.rng.Intn(89999)) }

// titleWord uppercases the first ASCII letter of a word.
func titleWord(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// column fills n cells through f.
func column(n int, f func(i int) string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

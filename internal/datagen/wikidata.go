package datagen

import (
	"strings"

	"valentine/internal/core"
	"valentine/internal/table"
)

// wikiSinger is one generated USA-singer entity with both value encodings:
// the primary encoding (table A) and the alternative encoding (table B),
// mirroring the paper's curated WikiData challenge (Elvis Presley → Elvis
// Aaron Presley, partner → spouse, …).
type wikiSinger struct {
	a, b map[string]string
}

// wikiColumnsA lists table A's 20 columns in order.
var wikiColumnsA = []string{
	"artist_name", "birth_date", "birth_place", "genre", "record_label",
	"partner", "father_name", "mother_name", "debut_song", "latest_album",
	"awards", "active_from", "citizenship", "instrument", "voice_type",
	"net_worth", "height_cm", "children_count", "occupation", "website",
}

// wikiRename maps table A's column names to table B's variants (the paper
// varies the second table's names, e.g. partner → spouse).
var wikiRename = map[string]string{
	"artist_name":    "singer",
	"birth_date":     "date_of_birth",
	"birth_place":    "place_of_birth",
	"genre":          "music_genre",
	"record_label":   "label",
	"partner":        "spouse",
	"father_name":    "father",
	"mother_name":    "mother",
	"debut_song":     "first_single",
	"latest_album":   "newest_album",
	"awards":         "honors",
	"active_from":    "career_start",
	"citizenship":    "nationality",
	"instrument":     "plays",
	"voice_type":     "vocal_range",
	"net_worth":      "wealth",
	"height_cm":      "height",
	"children_count": "num_children",
	"occupation":     "profession",
	"website":        "homepage",
}

// wikiAltEncoded lists the six columns whose table-B values use an
// alternative encoding (the paper changes values in six selected columns).
var wikiAltEncoded = map[string]bool{
	"artist_name": true, "birth_place": true, "genre": true,
	"citizenship": true, "awards": true, "voice_type": true,
}

var genreAlt = map[string]string{
	"rock": "rock music", "pop": "pop music", "country": "country & western",
	"blues": "blues music", "soul": "soul / R&B", "jazz": "jazz music",
	"folk": "folk music", "gospel": "gospel music",
}

var voiceAlt = map[string]string{
	"tenor": "tenor voice", "baritone": "baritone voice", "soprano": "soprano voice",
	"alto": "alto voice", "bass": "bass voice", "mezzo-soprano": "mezzo",
}

func generateWikiSingers(n int, seed int64) []wikiSinger {
	g := newGen(seed + 11)
	genres := []string{"rock", "pop", "country", "blues", "soul", "jazz", "folk", "gospel"}
	voices := []string{"tenor", "baritone", "soprano", "alto", "bass", "mezzo-soprano"}
	labels := []string{"RCA", "Columbia", "Atlantic", "Capitol", "Motown", "Decca"}
	instruments := []string{"guitar", "piano", "none", "harmonica", "banjo"}
	awards := []string{"Grammy", "AMA", "Billboard Award", "CMA", "Rock Hall"}
	out := make([]wikiSinger, n)
	for i := range out {
		first := g.pick(firstNames)
		middle := g.pick(firstNames)
		last := g.pick(lastNames)
		short := first + " " + last
		full := first + " " + middle + " " + last
		city := g.pick(cityNames)
		state := g.pick(stateNames)
		genre := g.pick(genres)
		voice := g.pick(voices)
		award := g.pick(awards)
		a := map[string]string{
			"artist_name":    short,
			"birth_date":     g.date(1930, 1995),
			"birth_place":    city,
			"genre":          genre,
			"record_label":   g.pick(labels),
			"partner":        g.fullName(),
			"father_name":    g.pick(firstNames) + " " + last,
			"mother_name":    g.fullName(),
			"debut_song":     titleWord(g.pick(wordPool)) + " " + titleWord(g.pick(wordPool)),
			"latest_album":   titleWord(g.pick(wordPool)) + " Sessions",
			"awards":         award,
			"active_from":    g.intIn(1950, 2015),
			"citizenship":    "USA",
			"instrument":     g.pick(instruments),
			"voice_type":     voice,
			"net_worth":      g.normalInt(5000000, 4000000, 100000),
			"height_cm":      g.intIn(150, 200),
			"children_count": g.intIn(0, 6),
			"occupation":     "singer",
			"website":        "https://" + strings.ToLower(strings.ReplaceAll(short, " ", "")) + ".example.com",
		}
		b := make(map[string]string, len(a))
		for k, v := range a {
			b[k] = v
		}
		b["artist_name"] = full
		b["birth_place"] = city + ", " + state
		b["genre"] = genreAlt[genre]
		b["citizenship"] = "United States of America"
		b["awards"] = award + " winner"
		b["voice_type"] = voiceAlt[voice]
		out[i] = wikiSinger{a: a, b: b}
	}
	return out
}

func wikiTable(name string, singers []wikiSinger, cols []string, useAlt bool, rename bool) *table.Table {
	t := table.New(name)
	for _, col := range cols {
		vals := make([]string, len(singers))
		for i, s := range singers {
			if useAlt && wikiAltEncoded[col] {
				vals[i] = s.b[col]
			} else {
				vals[i] = s.a[col]
			}
		}
		header := col
		if rename {
			header = wikiRename[col]
		}
		t.AddColumn(header, vals)
	}
	return t
}

// WikiData builds the four curated WikiData-style pairs — one per
// relatedness scenario — over generated USA-singer entities. The second
// table of each pair uses the renamed schema; the semantically-joinable and
// unionable pairs additionally use the alternative value encodings in six
// columns, as the paper describes.
func WikiData(opts Options) []core.TablePair {
	opts.defaults()
	n := opts.Rows
	singers := generateWikiSingers(n, opts.Seed)
	half := n / 2
	ov := half / 2

	gtAll := core.NewGroundTruth()
	for _, c := range wikiColumnsA {
		gtAll.Add(c, wikiRename[c])
	}

	var pairs []core.TablePair

	// Unionable: same 20 columns, 50% row overlap, renamed schema +
	// alternative encodings on the B side.
	aRows := singers[:half]
	bRows := singers[half-ov : 2*half-ov]
	pairs = append(pairs, core.TablePair{
		Name:     "wikidata/unionable",
		Source:   wikiTable("singers_a", aRows, wikiColumnsA, false, false),
		Target:   wikiTable("singers_b", bRows, wikiColumnsA, true, true),
		Truth:    gtAll,
		Scenario: core.ScenarioUnionable,
		Variant:  "curated",
	})

	// View-unionable: 13-column views sharing 7 columns, zero row overlap.
	sharedVU := []string{"artist_name", "birth_date", "genre", "record_label", "awards", "citizenship", "occupation"}
	aOnly := []string{"partner", "father_name", "mother_name", "debut_song", "height_cm", "website"}
	bOnly := []string{"latest_album", "active_from", "instrument", "voice_type", "net_worth", "children_count"}
	gtVU := core.NewGroundTruth()
	for _, c := range sharedVU {
		gtVU.Add(c, wikiRename[c])
	}
	pairs = append(pairs, core.TablePair{
		Name:     "wikidata/view-unionable",
		Source:   wikiTable("singers_a", singers[:half], append(append([]string{}, sharedVU...), aOnly...), false, false),
		Target:   wikiTable("singers_b", singers[half:], append(append([]string{}, sharedVU...), bOnly...), true, true),
		Truth:    gtVU,
		Scenario: core.ScenarioViewUnionable,
		Variant:  "curated",
	})

	// Joinable: vertical split sharing 5 key columns with *identical*
	// values (high value overlap → instance methods should reach 1.0).
	sharedJ := []string{"artist_name", "birth_date", "record_label", "occupation", "citizenship"}
	gtJ := core.NewGroundTruth()
	for _, c := range sharedJ {
		gtJ.Add(c, wikiRename[c])
	}
	pairs = append(pairs, core.TablePair{
		Name:     "wikidata/joinable",
		Source:   wikiTable("singers_a", singers, append(append([]string{}, sharedJ...), aOnly...), false, false),
		Target:   wikiTable("singers_b", singers, append(append([]string{}, sharedJ...), bOnly...), false, true),
		Truth:    gtJ,
		Scenario: core.ScenarioJoinable,
		Variant:  "curated",
	})

	// Semantically-joinable: the shared columns on the B side use the
	// alternative encodings, so an equality join fails.
	sharedSJ := []string{"artist_name", "birth_place", "genre", "citizenship", "awards"}
	gtSJ := core.NewGroundTruth()
	for _, c := range sharedSJ {
		gtSJ.Add(c, wikiRename[c])
	}
	pairs = append(pairs, core.TablePair{
		Name:     "wikidata/semantically-joinable",
		Source:   wikiTable("singers_a", singers, append(append([]string{}, sharedSJ...), aOnly...), false, false),
		Target:   wikiTable("singers_b", singers, append(append([]string{}, sharedSJ...), bOnly...), true, true),
		Truth:    gtSJ,
		Scenario: core.ScenarioSemJoinable,
		Variant:  "curated",
	})
	return pairs
}

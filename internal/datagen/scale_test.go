package datagen

import (
	"testing"

	"valentine/internal/fabrication"
)

// TestPaperScaleGeneration fabricates at the paper's actual row counts
// (TPC-DI Prospect ≈ 7.5k–15k rows after splits) to guard against
// quadratic blowups in the generators and fabricator. Skipped in -short.
func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation")
	}
	src := TPCDI(Options{Rows: 14983, Seed: 1})
	if src.NumRows() != 14983 {
		t.Fatalf("rows = %d", src.NumRows())
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	f := fabrication.New(1)
	pair, err := f.Unionable(src, 0.5, fabrication.Variant{NoisySchema: true, NoisyInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	// halves of ~7.5k rows, as the paper reports for fabricated TPC-DI
	if pair.Source.NumRows() < 7400 || pair.Source.NumRows() > 7500 {
		t.Fatalf("half rows = %d, want ≈ 7491", pair.Source.NumRows())
	}
	if err := pair.Target.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenDataPaperScale checks the wide source at its paper scale.
func TestOpenDataPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation")
	}
	src := OpenData(Options{Rows: 23255, Seed: 2})
	if src.NumRows() != 23255 || src.NumColumns() < 26 {
		t.Fatalf("shape = %d×%d", src.NumColumns(), src.NumRows())
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
}

package datagen

import (
	"strconv"

	"valentine/internal/core"
	"valentine/internal/table"
)

// ING1 simulates the first proprietary ING pair: two SCRUM-tracking tables
// (33 cols × 935 rows and 16 cols × 972 rows) from different custom
// systems. The paper's causal properties are reproduced: matching columns
// carry identical or very similar names; columns contain hashes,
// descriptions and recurring words that invite false positives; matching
// columns hold almost-identical value distributions (which is why the
// Distribution-based method won).
func ING1(opts Options) core.TablePair {
	opts.defaults()
	nA, nB := opts.Rows*2+135, opts.Rows*2+172 // defaults → 935/972 as in the paper
	g := newGen(opts.Seed + 41)

	teams := []string{"atlas", "phoenix", "hydra", "titan", "orion", "lynx", "draco", "vega"}
	epics := []string{"payments-revamp", "kyc-automation", "mobile-onboarding",
		"fraud-detection", "api-gateway", "data-lake", "regulatory-reporting"}
	statuses := []string{"todo", "in-progress", "review", "done", "blocked"}
	descWords := []string{"implement", "refactor", "investigate", "fix", "migrate",
		"deprecate", "review", "deploy", "monitor", "align"}
	// Summaries draw from the action-verb half of the vocabulary and long
	// descriptions from the full vocabulary — the same convention in both
	// systems, which separates the two fields' value distributions.
	mkDesc := func() string {
		return g.pick(descWords[:5]) + " " + g.pick(epics) + " " + g.pick(descWords) + " flow"
	}
	mkLongDesc := func() string {
		return g.pick(descWords[5:]) + " " + g.pick(epics) + " then " + g.pick(descWords) + " flow"
	}

	a := table.New("scrum_system_a")
	// Hash identifiers carry family prefixes (sp-, tk-), as real systems
	// do; this gives matching id columns near-identical global rank bands —
	// the distribution signal the paper credits for the Distribution-based
	// method's win on this dataset.
	a.AddColumn("sprint_id", column(nA, func(int) string { return "sp-" + g.hexHash(10) }))
	a.AddColumn("sprint_name", column(nA, func(i int) string { return "Sprint " + strconv.Itoa(1+i/10) }))
	a.AddColumn("team_id", column(nA, func(int) string { return "T-" + g.intIn(100, 140) }))
	a.AddColumn("owner_team", column(nA, func(int) string { return g.pick(teams) }))
	a.AddColumn("epic_name", column(nA, func(int) string { return g.pick(epics) }))
	a.AddColumn("task_id", column(nA, func(int) string { return "tk-" + g.hexHash(8) }))
	a.AddColumn("task_summary", column(nA, func(int) string { return mkDesc() }))
	a.AddColumn("task_description", column(nA, func(int) string { return mkLongDesc() + "; " + mkLongDesc() }))
	a.AddColumn("status", column(nA, func(int) string { return g.pick(statuses) }))
	a.AddColumn("story_points", column(nA, func(int) string { return g.pick([]string{"1", "2", "3", "5", "8", "13"}) }))
	a.AddColumn("start_date", column(nA, func(int) string { return g.date(2018, 2020) }))
	a.AddColumn("end_date", column(nA, func(int) string { return g.date(2020, 2021) }))
	a.AddColumn("created_by", column(nA, func(int) string { return g.fullName() }))
	a.AddColumn("assignee", column(nA, func(int) string { return g.fullName() }))
	// 19 extra system-A columns: more hashes, dates, team/sprint-flavored
	// names and descriptions that look like the matching columns — the
	// false-positive bait the paper describes ("similar words that are used
	// in multiple contexts").
	for k := 0; k < 5; k++ {
		name := "audit_hash_" + strconv.Itoa(k+1)
		prefix := "au" + strconv.Itoa(k+1) + "-"
		a.AddColumn(name, column(nA, func(int) string { return prefix + g.hexHash(10) }))
	}
	for k := 0; k < 5; k++ {
		name := "meta_note_" + strconv.Itoa(k+1)
		// Notes reuse the task vocabulary but with a skewed word mix, so
		// their value distribution differs measurably from task summaries.
		sub := descWords[k%4 : k%4+4]
		a.AddColumn(name, column(nA, func(int) string {
			return g.pick(sub) + " " + g.pick(epics[:3]) + " " + g.pick(sub) + " note"
		}))
	}
	for k := 0; k < 5; k++ {
		name := "sys_date_" + strconv.Itoa(k+1)
		a.AddColumn(name, column(nA, func(int) string { return g.date(2009, 2013) }))
	}
	a.AddColumn("sprint_goal", column(nA, func(int) string { return "goal: " + mkDesc() }))
	a.AddColumn("team_name", column(nA, func(int) string { return "squad-" + g.pick(teams) }))
	a.AddColumn("created_date", column(nA, func(int) string { return g.date(2015, 2017) }))
	a.AddColumn("start_commit", column(nA, func(int) string { return "co-" + g.hexHash(10) }))

	// System B: 16 columns; 14 correspond to A columns under the *other*
	// system's naming convention — identical for a few, near-miss variants
	// for the rest — while value distributions stay almost identical
	// (same pools, same prefixes).
	g2 := newGen(opts.Seed + 42)
	b := table.New("scrum_system_b")
	b.AddColumn("sprint_id", column(nB, func(int) string { return "sp-" + g2.hexHash(10) }))
	b.AddColumn("sprint", column(nB, func(i int) string { return "Sprint " + strconv.Itoa(1+i/10) }))
	b.AddColumn("teamid", column(nB, func(int) string { return "T-" + g2.intIn(100, 140) }))
	b.AddColumn("owner", column(nB, func(int) string { return g2.pick(teams) }))
	b.AddColumn("epic", column(nB, func(int) string { return g2.pick(epics) }))
	b.AddColumn("taskid", column(nB, func(int) string { return "tk-" + g2.hexHash(8) }))
	b.AddColumn("summary", column(nB, func(int) string {
		return g2.pick(descWords[:5]) + " " + g2.pick(epics) + " " + g2.pick(descWords) + " flow"
	}))
	b.AddColumn("description", column(nB, func(int) string {
		mk := func() string {
			return g2.pick(descWords[5:]) + " " + g2.pick(epics) + " then " + g2.pick(descWords) + " flow"
		}
		return mk() + "; " + mk()
	}))
	b.AddColumn("state", column(nB, func(int) string { return g2.pick(statuses) }))
	b.AddColumn("points", column(nB, func(int) string { return g2.pick([]string{"1", "2", "3", "5", "8", "13"}) }))
	b.AddColumn("started", column(nB, func(int) string { return g2.date(2018, 2020) }))
	b.AddColumn("ended", column(nB, func(int) string { return g2.date(2020, 2021) }))
	b.AddColumn("author", column(nB, func(int) string { return g2.fullName() }))
	b.AddColumn("assigned_to", column(nB, func(int) string { return g2.fullName() }))
	// two B-only columns
	b.AddColumn("velocity", column(nB, func(int) string { return g2.intIn(10, 60) }))
	b.AddColumn("retro_notes", column(nB, func(int) string { return g2.pick(descWords) + " retro " + g2.pick(teams) }))

	gt := core.NewGroundTruth()
	for _, p := range [][2]string{
		{"sprint_id", "sprint_id"}, {"sprint_name", "sprint"},
		{"team_id", "teamid"}, {"owner_team", "owner"},
		{"epic_name", "epic"}, {"task_id", "taskid"},
		{"task_summary", "summary"}, {"task_description", "description"},
		{"status", "state"}, {"story_points", "points"},
		{"start_date", "started"}, {"end_date", "ended"},
		{"created_by", "author"}, {"assignee", "assigned_to"},
	} {
		gt.Add(p[0], p[1])
	}
	return core.TablePair{
		Name:     "ing/1",
		Source:   a,
		Target:   b,
		Truth:    gt,
		Scenario: core.ScenarioCurated,
		Variant:  "proprietary-sim",
	}
}

// ING2 simulates the second ING pair: a wide low-level application
// inventory (59 cols × 1000 rows) and a business-oriented view (25 cols ×
// 1000 rows). As in the paper: the business table's column names carry
// suffixes that defeat schema matchers, values across matching columns are
// even more similar than in ING#1, the ground truth contains multiple
// matches per business column (n:m), and some cells hold nested/composite
// values.
func ING2(opts Options) core.TablePair {
	opts.defaults()
	n := opts.Rows*2 + 200 // default → 1000 rows as in the paper
	g := newGen(opts.Seed + 51)

	apps := []string{"payhub", "riskcore", "custview", "ledgerx", "fraudnet",
		"authsvc", "cardflow", "mortgage1", "fxengine", "docstore"}
	depts := []string{"Retail", "Wholesale", "Risk", "Operations", "IT", "Compliance"}
	hw := []string{"x86-vm", "k8s-pod", "mainframe", "bare-metal", "cloud-paas"}
	rel := []string{"uses", "depends-on", "feeds", "replaces", "monitors"}
	mkApp := func(gg *gen) string { return gg.pick(apps) + "-" + gg.intIn(1, 9) }
	mkNested := func(gg *gen) string {
		return "{" + mkApp(gg) + " " + gg.pick(rel) + " " + mkApp(gg) + "}"
	}

	a := table.New("app_inventory")
	// Low-level table: several column groups duplicated with variations —
	// this produces the n:m ground truth.
	appCols := []string{"application_name", "app_code", "component_name"}
	for _, c := range appCols {
		a.AddColumn(c, column(n, func(int) string { return mkApp(g) }))
	}
	ownCols := []string{"owner_team", "support_team", "dev_team"}
	teams := []string{"atlas", "phoenix", "hydra", "titan", "orion", "lynx"}
	for _, c := range ownCols {
		a.AddColumn(c, column(n, func(int) string { return g.pick(teams) }))
	}
	mgrCols := []string{"manager_name", "delegate_name", "tech_lead"}
	for _, c := range mgrCols {
		a.AddColumn(c, column(n, func(int) string { return g.fullName() }))
	}
	deptCols := []string{"department", "division"}
	for _, c := range deptCols {
		a.AddColumn(c, column(n, func(int) string { return g.pick(depts) }))
	}
	hwCols := []string{"hardware_platform", "runtime_platform"}
	for _, c := range hwCols {
		a.AddColumn(c, column(n, func(int) string { return g.pick(hw) }))
	}
	relCols := []string{"relationship", "upstream_link", "downstream_link"}
	for _, c := range relCols {
		a.AddColumn(c, column(n, func(int) string { return mkNested(g) }))
	}
	a.AddColumn("cost_center", column(n, func(int) string { return "CC" + g.intIn(1000, 9999) }))
	a.AddColumn("go_live_date", column(n, func(int) string { return g.date(2005, 2020) }))
	a.AddColumn("decomm_date", column(n, func(int) string { return g.date(2021, 2026) }))
	a.AddColumn("instance_count", column(n, func(int) string { return g.intIn(1, 40) }))
	a.AddColumn("cpu_cores", column(n, func(int) string { return g.pick([]string{"2", "4", "8", "16", "32"}) }))
	a.AddColumn("memory_gb", column(n, func(int) string { return g.pick([]string{"4", "8", "16", "32", "64"}) }))
	// pad to 59 columns with generic low-level attributes
	for k := a.NumColumns(); k < 59; k++ {
		name := "attr_" + strconv.Itoa(k)
		switch k % 4 {
		case 0:
			a.AddColumn(name, column(n, func(int) string { return g.hexHash(8) }))
		case 1:
			a.AddColumn(name, column(n, func(int) string { return g.intIn(0, 500) }))
		case 2:
			a.AddColumn(name, column(n, func(int) string { return g.pick(wordPool) }))
		default:
			a.AddColumn(name, column(n, func(int) string { return g.date(2010, 2024) }))
		}
	}

	// Business table: 25 columns; names carry suffixes; values drawn from
	// the same pools (near-identical distributions).
	g2 := newGen(opts.Seed + 52)
	b := table.New("app_business_view")
	b.AddColumn("application_bus", column(n, func(int) string { return mkApp(g2) }))
	b.AddColumn("team_bus", column(n, func(int) string { return g2.pick(teams) }))
	b.AddColumn("manager_bus", column(n, func(int) string { return g2.fullName() }))
	b.AddColumn("department_bus", column(n, func(int) string { return g2.pick(depts) }))
	b.AddColumn("platform_bus", column(n, func(int) string { return g2.pick(hw) }))
	b.AddColumn("relation_bus", column(n, func(int) string { return mkNested(g2) }))
	b.AddColumn("cost_center_bus", column(n, func(int) string { return "CC" + g2.intIn(1000, 9999) }))
	b.AddColumn("live_since_bus", column(n, func(int) string { return g2.date(2005, 2020) }))
	b.AddColumn("capacity_bus", column(n, func(int) string { return g2.intIn(1, 40) }))
	for k := b.NumColumns(); k < 25; k++ {
		name := "biz_attr_" + strconv.Itoa(k)
		switch k % 3 {
		case 0:
			b.AddColumn(name, column(n, func(int) string { return g2.pick(wordPool) }))
		case 1:
			b.AddColumn(name, column(n, func(int) string { return g2.intIn(0, 100) }))
		default:
			b.AddColumn(name, column(n, func(int) string { return g2.pick(depts) + " note" }))
		}
	}

	// n:m ground truth: each business column matches every low-level column
	// of its group.
	gt := core.NewGroundTruth()
	addGroup := func(busCol string, lowCols []string) {
		for _, lc := range lowCols {
			gt.Add(lc, busCol)
		}
	}
	addGroup("application_bus", appCols)
	addGroup("team_bus", ownCols)
	addGroup("manager_bus", mgrCols)
	addGroup("department_bus", deptCols)
	addGroup("platform_bus", hwCols)
	addGroup("relation_bus", relCols)
	addGroup("cost_center_bus", []string{"cost_center"})
	addGroup("live_since_bus", []string{"go_live_date"})
	addGroup("capacity_bus", []string{"instance_count"})
	return core.TablePair{
		Name:     "ing/2",
		Source:   a,
		Target:   b,
		Truth:    gt,
		Scenario: core.ScenarioCurated,
		Variant:  "proprietary-sim",
	}
}

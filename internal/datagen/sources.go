package datagen

import (
	"fmt"
	"strconv"

	"valentine/internal/table"
)

// Options sizes the generated fabrication sources. The paper's tables run
// 7.5k–23k rows; the default here is laptop/CI-friendly and every generator
// scales linearly with Rows.
type Options struct {
	Rows int   // rows in the source table (default 400)
	Seed int64 // RNG seed (default 1)
}

func (o *Options) defaults() {
	if o.Rows <= 0 {
		o.Rows = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// TPCDI generates a Prospect-like data-integration table in the spirit of
// the TPC-DI benchmark's Prospect source: person, address, finance and
// marketing attributes (17 columns; the paper's fabricated TPC-DI pairs
// span 11–22).
func TPCDI(opts Options) *table.Table {
	opts.defaults()
	g := newGen(opts.Seed)
	n := opts.Rows
	t := table.New("prospect")
	names := column(n, func(int) string { return g.fullName() })
	t.AddColumn("agency_id", column(n, func(i int) string { return "AG" + strconv.Itoa(1000+i) }))
	t.AddColumn("last_name", column(n, func(i int) string { return g.pick(lastNames) }))
	t.AddColumn("first_name", column(n, func(i int) string { return g.pick(firstNames) }))
	t.AddColumn("middle_initial", column(n, func(int) string { return string(rune('A' + g.rng.Intn(26))) }))
	t.AddColumn("gender", column(n, func(int) string { return g.pick([]string{"M", "F"}) }))
	t.AddColumn("address_line", column(n, func(int) string { return g.street() }))
	t.AddColumn("city", column(n, func(int) string { return g.pick(cityNames) }))
	t.AddColumn("state", column(n, func(int) string { return g.pick(stateNames) }))
	t.AddColumn("country", column(n, func(int) string { return g.pick(countryNames) }))
	t.AddColumn("postal_code", column(n, func(int) string { return g.zip() }))
	t.AddColumn("phone", column(n, func(int) string { return g.phone() }))
	t.AddColumn("income", column(n, func(int) string { return g.normalInt(65000, 25000, 12000) }))
	t.AddColumn("number_cars", column(n, func(int) string { return g.intIn(0, 4) }))
	t.AddColumn("number_children", column(n, func(int) string { return g.intIn(0, 5) }))
	t.AddColumn("marital_status", column(n, func(int) string { return g.pick([]string{"single", "married", "divorced", "widowed"}) }))
	t.AddColumn("credit_rating", column(n, func(int) string { return g.normalInt(640, 80, 300) }))
	t.AddColumn("net_worth", column(n, func(int) string { return g.normalInt(250000, 180000, 0) }))
	_ = names
	return t
}

// OpenData generates a wide civic dataset in the style of the Canada/USA/UK
// Open Data tables (28 mixed-type columns; the paper's pairs span 26–51).
func OpenData(opts Options) *table.Table {
	opts.defaults()
	g := newGen(opts.Seed + 2)
	n := opts.Rows
	t := table.New("opendata")
	t.AddColumn("record_id", column(n, func(i int) string { return "R" + strconv.Itoa(100000+i) }))
	t.AddColumn("agency_name", column(n, func(int) string {
		return g.pick(cityNames) + " " + g.pick([]string{"Bureau", "Office", "Department", "Authority"})
	}))
	t.AddColumn("program_name", column(n, func(int) string { return g.codeWord() }))
	t.AddColumn("fiscal_year", column(n, func(int) string { return g.intIn(2005, 2020) }))
	t.AddColumn("quarter", column(n, func(int) string { return "Q" + g.intIn(1, 4) }))
	t.AddColumn("budget_amount", column(n, func(int) string { return g.normalInt(500000, 300000, 10000) }))
	t.AddColumn("spent_amount", column(n, func(int) string { return g.normalInt(420000, 250000, 5000) }))
	t.AddColumn("grant_count", column(n, func(int) string { return g.intIn(0, 250) }))
	t.AddColumn("district", column(n, func(int) string { return "District " + g.intIn(1, 25) }))
	t.AddColumn("ward", column(n, func(int) string { return g.intIn(1, 50) }))
	t.AddColumn("city", column(n, func(int) string { return g.pick(cityNames) }))
	t.AddColumn("province", column(n, func(int) string { return g.pick(stateNames) }))
	t.AddColumn("country", column(n, func(int) string { return g.pick(countryNames) }))
	t.AddColumn("postal_code", column(n, func(int) string { return g.zip() }))
	t.AddColumn("latitude", column(n, func(int) string { return g.floatIn(24, 60, 5) }))
	t.AddColumn("longitude", column(n, func(int) string { return g.floatIn(-130, -60, 5) }))
	t.AddColumn("population", column(n, func(int) string { return g.normalInt(85000, 60000, 500) }))
	t.AddColumn("area_km2", column(n, func(int) string { return g.floatIn(2, 900, 2) }))
	t.AddColumn("contact_name", column(n, func(int) string { return g.fullName() }))
	t.AddColumn("contact_email", column(n, func(int) string { return g.email(g.fullName()) }))
	t.AddColumn("contact_phone", column(n, func(int) string { return g.phone() }))
	t.AddColumn("start_date", column(n, func(int) string { return g.date(2004, 2018) }))
	t.AddColumn("end_date", column(n, func(int) string { return g.date(2019, 2024) }))
	t.AddColumn("status", column(n, func(int) string { return g.pick([]string{"active", "completed", "suspended", "planned"}) }))
	t.AddColumn("category", column(n, func(int) string {
		return g.pick([]string{"transport", "health", "education", "housing", "environment", "culture"})
	}))
	t.AddColumn("permit_type", column(n, func(int) string { return g.pick([]string{"construction", "event", "vendor", "film", "signage"}) }))
	t.AddColumn("approved", column(n, func(int) string { return g.pick([]string{"true", "false"}) }))
	t.AddColumn("description", column(n, func(int) string { return "program " + g.codeWord() + " serving " + g.pick(cityNames) }))
	return t
}

// ChEMBL generates an Assays-like chemistry table whose column names align
// with the EFO-like ontology labels (ontology.EFO), preserving SemProp's
// name→class linkage (15 columns; the paper's pairs span 12–23).
func ChEMBL(opts Options) *table.Table {
	opts.defaults()
	g := newGen(opts.Seed + 3)
	n := opts.Rows
	t := table.New("assays")
	organisms := []string{"Homo sapiens", "Mus musculus", "Rattus norvegicus", "Escherichia coli", "Canis familiaris"}
	assayTypes := []string{"binding", "functional", "ADMET", "toxicity", "physicochemical"}
	units := []string{"nM", "uM", "mg/kg", "percent", "mL/min"}
	cells := []string{"HeLa", "HEK293", "CHO", "A549", "MCF7", "U2OS"}
	t.AddColumn("assay_id", column(n, func(i int) string { return "CHEMBL" + strconv.Itoa(700000+i) }))
	t.AddColumn("assay_type", column(n, func(int) string { return g.pick(assayTypes) }))
	t.AddColumn("description", column(n, func(int) string {
		return "Inhibition of " + g.pick([]string{"kinase", "protease", "receptor", "channel", "transporter"}) + " " + g.codeWord()
	}))
	t.AddColumn("target_name", column(n, func(int) string { return g.pick([]string{"EGFR", "BRAF", "JAK2", "ABL1", "CDK4", "VEGFR2", "HDAC1"}) }))
	t.AddColumn("organism", column(n, func(int) string { return g.pick(organisms) }))
	t.AddColumn("cell_line", column(n, func(int) string { return g.pick(cells) }))
	t.AddColumn("tissue", column(n, func(int) string { return g.pick([]string{"liver", "lung", "brain", "kidney", "blood", "skin"}) }))
	t.AddColumn("compound_id", column(n, func(i int) string { return "MOL" + strconv.Itoa(g.rng.Intn(40000)) }))
	t.AddColumn("concentration", column(n, func(int) string { return g.floatIn(0.001, 100, 4) }))
	t.AddColumn("potency", column(n, func(int) string { return g.floatIn(0.1, 10000, 2) }))
	t.AddColumn("unit", column(n, func(int) string { return g.pick(units) }))
	t.AddColumn("confidence_score", column(n, func(int) string { return g.intIn(0, 9) }))
	t.AddColumn("journal", column(n, func(int) string {
		return g.pick([]string{"J Med Chem", "Bioorg Med Chem", "Eur J Med Chem", "ACS Chem Biol"})
	}))
	t.AddColumn("publication_year", column(n, func(int) string { return g.intIn(1995, 2020) }))
	t.AddColumn("curated_by", column(n, func(int) string { return g.pick([]string{"expert", "autocuration", "intermediate"}) }))
	return t
}

// Sources returns the three fabrication sources of §V-A keyed by the
// paper's dataset names.
func Sources(opts Options) map[string]*table.Table {
	return map[string]*table.Table{
		"TPC-DI":   TPCDI(opts),
		"OpenData": OpenData(opts),
		"ChEMBL":   ChEMBL(opts),
	}
}

// SourceNames lists the fabrication sources in paper order.
func SourceNames() []string { return []string{"TPC-DI", "OpenData", "ChEMBL"} }

// Source returns one fabrication source by name.
func Source(name string, opts Options) (*table.Table, error) {
	switch name {
	case "TPC-DI":
		return TPCDI(opts), nil
	case "OpenData":
		return OpenData(opts), nil
	case "ChEMBL":
		return ChEMBL(opts), nil
	default:
		return nil, fmt.Errorf("datagen: unknown source %q (have %v)", name, SourceNames())
	}
}

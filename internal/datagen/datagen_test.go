package datagen

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

func TestTPCDIShape(t *testing.T) {
	tab := TPCDI(Options{Rows: 100, Seed: 3})
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 100 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if c := tab.NumColumns(); c < 11 || c > 22 {
		t.Fatalf("cols = %d, want within the paper's 11–22", c)
	}
	if got := tab.Column("income").Type; got != table.Int {
		t.Errorf("income type = %v", got)
	}
	if got := tab.Column("credit_rating"); got == nil {
		t.Error("credit_rating missing")
	}
}

func TestOpenDataShape(t *testing.T) {
	tab := OpenData(Options{Rows: 80})
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := tab.NumColumns(); c < 26 || c > 51 {
		t.Fatalf("cols = %d, want within the paper's 26–51", c)
	}
	if got := tab.Column("latitude").Type; got != table.Float {
		t.Errorf("latitude type = %v", got)
	}
	if got := tab.Column("approved").Type; got != table.Bool {
		t.Errorf("approved type = %v", got)
	}
	if got := tab.Column("start_date").Type; got != table.Date {
		t.Errorf("start_date type = %v", got)
	}
}

func TestChEMBLShape(t *testing.T) {
	tab := ChEMBL(Options{Rows: 80})
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := tab.NumColumns(); c < 12 || c > 23 {
		t.Fatalf("cols = %d, want within the paper's 12–23", c)
	}
	// ontology-aligned vocabulary for SemProp
	for _, name := range []string{"assay_type", "organism", "cell_line", "concentration", "potency", "unit", "confidence_score"} {
		if tab.Column(name) == nil {
			t.Errorf("ChEMBL missing ontology-aligned column %q", name)
		}
	}
}

func TestSourcesAndLookup(t *testing.T) {
	srcs := Sources(Options{Rows: 30})
	if len(srcs) != 3 {
		t.Fatalf("Sources = %d", len(srcs))
	}
	for _, name := range SourceNames() {
		if srcs[name] == nil {
			t.Errorf("source %s missing", name)
		}
		got, err := Source(name, Options{Rows: 30})
		if err != nil || got == nil {
			t.Errorf("Source(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := Source("nope", Options{}); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := TPCDI(Options{Rows: 50, Seed: 9})
	b := TPCDI(Options{Rows: 50, Seed: 9})
	for i := range a.Columns {
		for j := range a.Columns[i].Values {
			if a.Columns[i].Values[j] != b.Columns[i].Values[j] {
				t.Fatal("TPCDI not deterministic")
			}
		}
	}
	c := TPCDI(Options{Rows: 50, Seed: 10})
	same := true
	for i := range a.Columns {
		for j := range a.Columns[i].Values {
			if a.Columns[i].Values[j] != c.Columns[i].Values[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestWikiDataPairs(t *testing.T) {
	pairs := WikiData(Options{Rows: 60})
	if len(pairs) != 4 {
		t.Fatalf("WikiData pairs = %d, want 4", len(pairs))
	}
	scen := map[string]bool{}
	for _, p := range pairs {
		scen[p.Scenario] = true
		if err := p.Source.Validate(); err != nil {
			t.Errorf("%s source: %v", p.Name, err)
		}
		if err := p.Target.Validate(); err != nil {
			t.Errorf("%s target: %v", p.Name, err)
		}
		if p.Truth.Size() == 0 {
			t.Errorf("%s has empty GT", p.Name)
		}
		for _, cp := range p.Truth.Pairs() {
			if p.Source.Column(cp.Source) == nil {
				t.Errorf("%s: GT source col %q missing", p.Name, cp.Source)
			}
			if p.Target.Column(cp.Target) == nil {
				t.Errorf("%s: GT target col %q missing", p.Name, cp.Target)
			}
		}
	}
	for _, s := range core.Scenarios() {
		if !scen[s] {
			t.Errorf("missing scenario %s", s)
		}
	}
}

func TestWikiDataUnionableHas20Columns(t *testing.T) {
	pairs := WikiData(Options{Rows: 40})
	u := pairs[0]
	if u.Source.NumColumns() != 20 || u.Target.NumColumns() != 20 {
		t.Fatalf("unionable pair cols = %d/%d, want 20/20", u.Source.NumColumns(), u.Target.NumColumns())
	}
	// renamed schema: target must use the variant names
	if u.Target.Column("spouse") == nil {
		t.Error("target should rename partner → spouse")
	}
	if u.Target.Column("partner") != nil {
		t.Error("target should not keep the original name")
	}
}

func TestWikiDataJoinableSharesValues(t *testing.T) {
	pairs := WikiData(Options{Rows: 40})
	var j core.TablePair
	for _, p := range pairs {
		if p.Scenario == core.ScenarioJoinable {
			j = p
		}
	}
	src := j.Source.Column("artist_name")
	tgt := j.Target.Column("singer")
	if src == nil || tgt == nil {
		t.Fatal("join columns missing")
	}
	for i := range src.Values {
		if src.Values[i] != tgt.Values[i] {
			t.Fatal("joinable pair should share verbatim key values")
		}
	}
}

func TestWikiDataSemJoinableUsesAltEncodings(t *testing.T) {
	pairs := WikiData(Options{Rows: 40})
	var sj core.TablePair
	for _, p := range pairs {
		if p.Scenario == core.ScenarioSemJoinable {
			sj = p
		}
	}
	src := sj.Source.Column("artist_name")
	tgt := sj.Target.Column("singer")
	diff := 0
	for i := range src.Values {
		if src.Values[i] != tgt.Values[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("semantically-joinable should use alternative encodings")
	}
}

func TestMagellanPairs(t *testing.T) {
	pairs := Magellan(Options{Rows: 60})
	if len(pairs) != 7 {
		t.Fatalf("Magellan pairs = %d, want 7", len(pairs))
	}
	for _, p := range pairs {
		if err := p.Source.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if c := p.Source.NumColumns(); c < 3 || c > 7 {
			t.Errorf("%s cols = %d, want 3–7 as in the paper", p.Name, c)
		}
		// identical naming conventions
		for _, cp := range p.Truth.Pairs() {
			if cp.Source != cp.Target {
				t.Errorf("%s: Magellan GT should be identity, got %v", p.Name, cp)
			}
		}
		// value overlap between the two sides
		c0 := p.Source.Columns[0]
		t0 := p.Target.Columns[0]
		shared := 0
		set := c0.DistinctValues()
		for v := range t0.DistinctValues() {
			if _, ok := set[v]; ok {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("%s: no value overlap", p.Name)
		}
	}
}

func TestMagellanHasMultiValuedAttributes(t *testing.T) {
	pairs := Magellan(Options{Rows: 40})
	found := false
	for _, p := range pairs {
		if c := p.Source.Column("actors"); c != nil {
			for _, v := range c.Values {
				if len(v) > 0 && containsSemicolon(v) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("movies pairs should carry multi-valued actor lists")
	}
}

func containsSemicolon(s string) bool {
	for _, r := range s {
		if r == ';' {
			return true
		}
	}
	return false
}

func TestING1Shape(t *testing.T) {
	p := ING1(Options{Rows: 400})
	if err := p.Source.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Target.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Source.NumColumns() != 33 {
		t.Errorf("ING1 source cols = %d, want 33", p.Source.NumColumns())
	}
	if p.Target.NumColumns() != 16 {
		t.Errorf("ING1 target cols = %d, want 16", p.Target.NumColumns())
	}
	if p.Source.NumRows() != 935 || p.Target.NumRows() != 972 {
		t.Errorf("ING1 rows = %d/%d, want 935/972", p.Source.NumRows(), p.Target.NumRows())
	}
	if p.Truth.Size() != 14 {
		t.Errorf("ING1 GT = %d, want 14", p.Truth.Size())
	}
	for _, cp := range p.Truth.Pairs() {
		if p.Source.Column(cp.Source) == nil || p.Target.Column(cp.Target) == nil {
			t.Errorf("ING1 GT references missing column: %v", cp)
		}
	}
}

func TestING2Shape(t *testing.T) {
	p := ING2(Options{Rows: 400})
	if p.Source.NumColumns() != 59 {
		t.Errorf("ING2 source cols = %d, want 59", p.Source.NumColumns())
	}
	if p.Target.NumColumns() != 25 {
		t.Errorf("ING2 target cols = %d, want 25", p.Target.NumColumns())
	}
	if p.Source.NumRows() != 1000 {
		t.Errorf("ING2 rows = %d, want 1000", p.Source.NumRows())
	}
	// n:m ground truth: more GT pairs than business columns involved
	busCols := map[string]bool{}
	for _, cp := range p.Truth.Pairs() {
		busCols[cp.Target] = true
	}
	if p.Truth.Size() <= len(busCols) {
		t.Errorf("ING2 GT should be n:m (%d pairs over %d business columns)", p.Truth.Size(), len(busCols))
	}
	// nested/composite values present
	c := p.Source.Column("relationship")
	if c == nil || len(c.Values) == 0 || c.Values[0][0] != '{' {
		t.Error("ING2 should contain nested/composite values")
	}
}

func TestINGSmallRows(t *testing.T) {
	p := ING1(Options{Rows: 50})
	if p.Source.NumRows() != 235 {
		t.Errorf("scaled ING1 rows = %d", p.Source.NumRows())
	}
	if err := p.Source.Validate(); err != nil {
		t.Fatal(err)
	}
}

package datagen

import (
	"fmt"
	"strconv"

	"valentine/internal/table"
)

// Churn generates one small mixed-type table for ingest traffic: the
// scenario engine's load generator upserts these against a live catalog
// while searches run. Values draw from the same pools as the fabrication
// sources, so churn ingest exercises the catalog's shared value dictionary
// (re-interning known values) the way a real feed of related tables would,
// instead of flooding it with disjoint junk. Deterministic in (i, Seed):
// the same index and seed always yield the same table.
func Churn(i int, opts Options) *table.Table {
	opts.defaults()
	g := newGen(opts.Seed + 0x5eed + int64(i)*2654435761)
	n := opts.Rows
	t := table.New(fmt.Sprintf("churn_%04d", i))
	t.AddColumn("feed_id", column(n, func(j int) string {
		return "F" + strconv.Itoa(i) + "-" + strconv.Itoa(10000+j)
	}))
	t.AddColumn("contact_name", column(n, func(int) string { return g.fullName() }))
	t.AddColumn("city", column(n, func(int) string { return g.pick(cityNames) }))
	t.AddColumn("state", column(n, func(int) string { return g.pick(stateNames) }))
	t.AddColumn("country", column(n, func(int) string { return g.pick(countryNames) }))
	t.AddColumn("amount", column(n, func(int) string { return g.normalInt(50000, 20000, 100) }))
	t.AddColumn("event_date", column(n, func(int) string { return g.date(2015, 2024) }))
	t.AddColumn("batch_hash", column(n, func(int) string { return g.hexHash(10) }))
	return t
}

package datagen

import (
	"strconv"
	"strings"

	"valentine/internal/core"
	"valentine/internal/table"
)

// Magellan builds seven entity-matching-style unionable pairs in the spirit
// of the Magellan Data Repository selection the paper evaluates: pairs with
// identical column naming conventions, substantial value overlaps with
// minor discrepancies, and multi-valued attributes (actor lists). Ground
// truth is the identity mapping, exactly as for curated unionable pairs.
func Magellan(opts Options) []core.TablePair {
	opts.defaults()
	n := opts.Rows / 2
	if n < 20 {
		n = 20
	}
	var pairs []core.TablePair
	specs := []struct {
		name string
		make func(seed int64, n int) (*table.Table, *table.Table)
	}{
		{"movies1", magellanMovies},
		{"movies2", magellanMovies},
		{"movies3", magellanMovies},
		{"restaurants1", magellanRestaurants},
		{"restaurants2", magellanRestaurants},
		{"books", magellanBooks},
		{"music", magellanMusic},
	}
	for i, s := range specs {
		a, b := s.make(opts.Seed+int64(100+17*i), n)
		a.Name = s.name + "_a"
		b.Name = s.name + "_b"
		gt := core.NewGroundTruth()
		for _, c := range a.ColumnNames() {
			gt.Add(c, c)
		}
		pairs = append(pairs, core.TablePair{
			Name:     "magellan/" + s.name,
			Source:   a,
			Target:   b,
			Truth:    gt,
			Scenario: core.ScenarioUnionable,
			Variant:  "curated",
		})
	}
	return pairs
}

// overlapSplit deals 2n generated rows into two tables of n rows with ~60%
// overlap, then applies minor per-cell discrepancies to the second table —
// the "minor discrepancies between value sets" the paper observes in
// Magellan data.
func overlapSplit(g *gen, rows [][]string, n int) (a, b [][]string) {
	ov := n * 6 / 10
	a = rows[:n]
	b = make([][]string, 0, n)
	for _, r := range rows[n-ov : 2*n-ov] {
		cp := append([]string(nil), r...)
		// ~15% of copied rows get a lightly reformatted first cell
		if g.rng.Float64() < 0.15 {
			cp[0] = strings.TrimSpace(cp[0] + " ")
			cp[0] = strings.ToUpper(cp[0][:1]) + cp[0][1:]
		}
		b = append(b, cp)
	}
	return a, b
}

func rowsToTable(name string, headers []string, rows [][]string) *table.Table {
	t := table.New(name)
	for j, h := range headers {
		vals := make([]string, len(rows))
		for i, r := range rows {
			vals[i] = r[j]
		}
		t.AddColumn(h, vals)
	}
	return t
}

func magellanMovies(seed int64, n int) (*table.Table, *table.Table) {
	g := newGen(seed)
	headers := []string{"title", "director", "actors", "year", "rating", "genre"}
	genres := []string{"Drama", "Comedy", "Action", "Thriller", "Romance", "Sci-Fi"}
	rows := make([][]string, 2*n)
	for i := range rows {
		actors := g.fullName() + "; " + g.fullName() + "; " + g.fullName()
		rows[i] = []string{
			"The " + titleWord(g.pick(wordPool)) + " " + titleWord(g.pick(wordPool)),
			g.fullName(),
			actors,
			g.intIn(1970, 2020),
			g.floatIn(2, 9.9, 1),
			g.pick(genres),
		}
	}
	a, b := overlapSplit(g, rows, n)
	return rowsToTable("movies_a", headers, a), rowsToTable("movies_b", headers, b)
}

func magellanRestaurants(seed int64, n int) (*table.Table, *table.Table) {
	g := newGen(seed)
	headers := []string{"name", "addr", "city", "phone", "cuisine"}
	cuisines := []string{"Italian", "Mexican", "Thai", "French", "American", "Indian", "Japanese"}
	rows := make([][]string, 2*n)
	for i := range rows {
		rows[i] = []string{
			titleWord(g.pick(wordPool)) + " " + g.pick([]string{"Kitchen", "Bistro", "Grill", "Cafe", "House"}),
			g.street(),
			g.pick(cityNames),
			g.phone(),
			g.pick(cuisines),
		}
	}
	a, b := overlapSplit(g, rows, n)
	return rowsToTable("restaurants_a", headers, a), rowsToTable("restaurants_b", headers, b)
}

func magellanBooks(seed int64, n int) (*table.Table, *table.Table) {
	g := newGen(seed)
	headers := []string{"title", "author", "publisher", "year", "pages", "isbn"}
	pubs := []string{"Penguin", "HarperCollins", "Random House", "Macmillan", "Hachette"}
	rows := make([][]string, 2*n)
	for i := range rows {
		rows[i] = []string{
			titleWord(g.pick(wordPool)) + " of " + titleWord(g.pick(wordPool)),
			g.fullName(),
			g.pick(pubs),
			g.intIn(1950, 2021),
			g.intIn(90, 900),
			"978-" + strconv.Itoa(g.rng.Intn(10)) + "-" + g.intIn(10000, 99999) + "-" + g.intIn(100, 999) + "-" + strconv.Itoa(g.rng.Intn(10)),
		}
	}
	a, b := overlapSplit(g, rows, n)
	return rowsToTable("books_a", headers, a), rowsToTable("books_b", headers, b)
}

func magellanMusic(seed int64, n int) (*table.Table, *table.Table) {
	g := newGen(seed)
	headers := []string{"song", "artist", "album", "genre", "duration", "released"}
	genres := []string{"rock", "pop", "hip-hop", "electronic", "jazz", "country"}
	rows := make([][]string, 2*n)
	for i := range rows {
		rows[i] = []string{
			titleWord(g.pick(wordPool)) + " " + titleWord(g.pick(wordPool)),
			g.fullName(),
			titleWord(g.pick(wordPool)) + " " + g.pick([]string{"Nights", "Dreams", "Tapes", "Stories"}),
			g.pick(genres),
			g.intIn(2, 6) + ":" + g.intIn(10, 59),
			g.date(1980, 2021),
		}
	}
	a, b := overlapSplit(g, rows, n)
	return rowsToTable("music_a", headers, a), rowsToTable("music_b", headers, b)
}

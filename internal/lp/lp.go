// Package lp solves small 0/1 integer linear programs by branch and bound.
//
// The Distribution-based matcher's final clustering step is an integer
// program (the original implementation called out to PuLP/CPLEX). The
// instances it produces are tiny — one binary variable per candidate
// cluster assignment — so an exact branch-and-bound with a simple
// optimistic bound solves them instantly.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // Σ aᵢxᵢ ≤ b
	GE           // Σ aᵢxᵢ ≥ b
	EQ           // Σ aᵢxᵢ = b
)

// Constraint is a linear constraint over binary variables. Coeffs maps
// variable index → coefficient; absent variables have coefficient 0.
type Constraint struct {
	Coeffs map[int]float64
	Op     Op
	RHS    float64
}

// Problem is a 0/1 maximization problem.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; maximize Objective·x
	Constraints []Constraint
	// MaxNodes caps the branch-and-bound search tree. When the cap is hit,
	// the best incumbent found so far is returned (an anytime solution —
	// feasible but possibly suboptimal). 0 means the default of 500 000
	// nodes, which solves the suite's consolidation programs exactly.
	MaxNodes int
}

// Solution is an optimal assignment.
type Solution struct {
	X     []bool
	Value float64
}

const eps = 1e-9

// Solve finds an optimal 0/1 assignment maximizing the objective subject to
// the constraints, or returns an error when the problem is malformed or
// infeasible.
func Solve(p Problem) (Solution, error) {
	if p.NumVars < 0 {
		return Solution{}, fmt.Errorf("lp: negative NumVars")
	}
	if len(p.Objective) != p.NumVars {
		return Solution{}, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for ci, c := range p.Constraints {
		for v := range c.Coeffs {
			if v < 0 || v >= p.NumVars {
				return Solution{}, fmt.Errorf("lp: constraint %d references variable %d out of range", ci, v)
			}
		}
	}
	s := &solver{p: p}
	// Order variables by descending |objective| so good decisions come early.
	s.order = make([]int, p.NumVars)
	for i := range s.order {
		s.order[i] = i
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return math.Abs(p.Objective[s.order[a]]) > math.Abs(p.Objective[s.order[b]])
	})
	// Precompute suffix sums of positive objective mass for the bound.
	s.posSuffix = make([]float64, p.NumVars+1)
	for i := p.NumVars - 1; i >= 0; i-- {
		v := p.Objective[s.order[i]]
		s.posSuffix[i] = s.posSuffix[i+1]
		if v > 0 {
			s.posSuffix[i] += v
		}
	}
	s.best = math.Inf(-1)
	s.cur = make([]bool, p.NumVars)
	s.nodeBudget = p.MaxNodes
	if s.nodeBudget <= 0 {
		s.nodeBudget = 500_000
	}
	s.branch(0, 0)
	if math.IsInf(s.best, -1) {
		return Solution{}, fmt.Errorf("lp: infeasible")
	}
	return Solution{X: s.bestX, Value: s.best}, nil
}

type solver struct {
	p          Problem
	order      []int
	posSuffix  []float64
	cur        []bool
	best       float64
	bestX      []bool
	nodeBudget int
}

func (s *solver) branch(depth int, value float64) {
	if s.nodeBudget <= 0 {
		return // search budget exhausted; keep the incumbent
	}
	s.nodeBudget--
	if value+s.posSuffix[depth] <= s.best+eps {
		return // bound: cannot beat incumbent
	}
	if !s.feasiblePartial(depth) {
		return
	}
	if depth == s.p.NumVars {
		if s.feasibleComplete() && value > s.best {
			s.best = value
			s.bestX = append([]bool(nil), s.cur...)
		}
		return
	}
	v := s.order[depth]
	// Try the objective-improving branch first.
	first, second := true, false
	if s.p.Objective[v] < 0 {
		first, second = false, true
	}
	s.cur[v] = first
	s.branch(depth+1, value+objIf(s.p.Objective[v], first))
	s.cur[v] = second
	s.branch(depth+1, value+objIf(s.p.Objective[v], second))
	s.cur[v] = false
}

func objIf(c float64, set bool) float64 {
	if set {
		return c
	}
	return 0
}

// feasiblePartial prunes branches that can no longer satisfy a constraint
// regardless of unassigned variables. Variables with order position >= depth
// are free; we evaluate each constraint's attainable range.
func (s *solver) feasiblePartial(depth int) bool {
	assigned := make(map[int]bool, depth)
	for i := 0; i < depth; i++ {
		assigned[s.order[i]] = true
	}
	for _, c := range s.p.Constraints {
		lo, hi := 0.0, 0.0
		for v, a := range c.Coeffs {
			if assigned[v] {
				if s.cur[v] {
					lo += a
					hi += a
				}
				continue
			}
			if a > 0 {
				hi += a
			} else {
				lo += a
			}
		}
		switch c.Op {
		case LE:
			if lo > c.RHS+eps {
				return false
			}
		case GE:
			if hi < c.RHS-eps {
				return false
			}
		case EQ:
			if lo > c.RHS+eps || hi < c.RHS-eps {
				return false
			}
		}
	}
	return true
}

func (s *solver) feasibleComplete() bool {
	for _, c := range s.p.Constraints {
		sum := 0.0
		for v, a := range c.Coeffs {
			if s.cur[v] {
				sum += a
			}
		}
		switch c.Op {
		case LE:
			if sum > c.RHS+eps {
				return false
			}
		case GE:
			if sum < c.RHS-eps {
				return false
			}
		case EQ:
			if math.Abs(sum-c.RHS) > eps {
				return false
			}
		}
	}
	return true
}

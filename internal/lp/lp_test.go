package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestUnconstrainedPicksPositives(t *testing.T) {
	sol, err := Solve(Problem{
		NumVars:   4,
		Objective: []float64{3, -2, 0.5, -0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 3.5 {
		t.Fatalf("Value = %v, want 3.5", sol.Value)
	}
	want := []bool{true, false, true, false}
	for i, x := range want {
		if sol.X[i] != x {
			t.Fatalf("X = %v, want %v", sol.X, want)
		}
	}
}

func TestKnapsack(t *testing.T) {
	// values 6,5,4 weights 3,2,2 capacity 4 → pick items 1,2 (value 9)
	sol, err := Solve(Problem{
		NumVars:   3,
		Objective: []float64{6, 5, 4},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 3, 1: 2, 2: 2}, Op: LE, RHS: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 9 {
		t.Fatalf("Value = %v, want 9", sol.Value)
	}
}

func TestExactlyOne(t *testing.T) {
	sol, err := Solve(Problem{
		NumVars:   3,
		Objective: []float64{1, 5, 3},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1, 2: 1}, Op: EQ, RHS: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 5 || !sol.X[1] || sol.X[0] || sol.X[2] {
		t.Fatalf("sol = %+v, want only var 1", sol)
	}
}

func TestGEConstraintForcesNegative(t *testing.T) {
	// Must select at least 2 variables even though all hurt the objective.
	sol, err := Solve(Problem{
		NumVars:   3,
		Objective: []float64{-1, -2, -3},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1, 2: 1}, Op: GE, RHS: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != -3 {
		t.Fatalf("Value = %v, want -3 (pick vars 0 and 1)", sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	_, err := Solve(Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Op: GE, RHS: 3},
		},
	})
	if err == nil {
		t.Fatal("want infeasible error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{NumVars: -1}); err == nil {
		t.Error("negative NumVars should fail")
	}
	if _, err := Solve(Problem{NumVars: 2, Objective: []float64{1}}); err == nil {
		t.Error("objective length mismatch should fail")
	}
	if _, err := Solve(Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: map[int]float64{5: 1}, Op: LE, RHS: 1}},
	}); err == nil {
		t.Error("out-of-range variable should fail")
	}
}

func TestEmptyProblem(t *testing.T) {
	sol, err := Solve(Problem{NumVars: 0, Objective: nil})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 {
		t.Fatalf("empty problem value = %v", sol.Value)
	}
}

// Cross-check against brute force on random small instances.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		p := Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = math.Round(rng.Float64()*20-10) / 2
		}
		nc := rng.Intn(3)
		for c := 0; c < nc; c++ {
			coeffs := make(map[int]float64)
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.7 {
					coeffs[i] = math.Round(rng.Float64()*6 - 2)
				}
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: coeffs,
				Op:     Op(rng.Intn(3)),
				RHS:    math.Round(rng.Float64()*8 - 2),
			})
		}
		bestVal, feasible := bruteForce(p)
		sol, err := Solve(p)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: brute says infeasible, Solve returned %v", trial, sol)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: brute says feasible (%v), Solve errored: %v", trial, bestVal, err)
		}
		if math.Abs(sol.Value-bestVal) > 1e-9 {
			t.Fatalf("trial %d: Solve = %v, brute = %v (problem %+v)", trial, sol.Value, bestVal, p)
		}
	}
}

func bruteForce(p Problem) (float64, bool) {
	best := math.Inf(-1)
	n := p.NumVars
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range p.Constraints {
			sum := 0.0
			for v, a := range c.Coeffs {
				if mask&(1<<v) != 0 {
					sum += a
				}
			}
			switch c.Op {
			case LE:
				ok = ok && sum <= c.RHS+1e-9
			case GE:
				ok = ok && sum >= c.RHS-1e-9
			case EQ:
				ok = ok && math.Abs(sum-c.RHS) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		val := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				val += p.Objective[i]
			}
		}
		if val > best {
			best = val
		}
	}
	return best, !math.IsInf(best, -1)
}

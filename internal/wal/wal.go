// Package wal is the catalog's write-ahead operation log: the durability
// gap between "the server said 200" and "the next snapshot tick happened"
// closed with one append-only file.
//
// The serving layer's ingest batcher converts each micro-batch to its
// replay form (already-profiled ops in the catalog's interned id space),
// appends one record here, and only then applies the batch and acknowledges
// the clients. On restart, LoadSnapshot plus a replay of the surviving
// records reconstructs exactly the pre-crash catalog: replay is idempotent
// (upserts replace, removes of unknown tables are ignored), so a batch that
// was both applied-and-snapshotted and still in the log re-applies to an
// identical state.
//
// File layout: length-prefixed CRC32C-framed gob records —
//
//	frame   := [uint32 LE payload length][uint32 LE crc32c(payload)][payload]
//	file    := frame(header) frame(Record)*
//
// The first frame is the fencing header {version, lineage, snapEpoch}: a
// log only replays into the catalog lineage that wrote it, and snapEpoch is
// the log's low-water mark — the snapshot the log expects underneath it.
// Torn tails (a crash mid-append) fail the CRC or length check and are
// truncated on open, never mis-replayed; a torn header means the crash hit
// the log's very first write, and the file is reinitialized.
//
// Fsync policy is the durability dial: "always" syncs before every append
// returns (an acknowledged op survives any crash), "batch" syncs on a short
// background interval (bounded loss window, much higher throughput), and
// "none" leaves write-back to the OS. After a successful snapshot the
// server calls TruncateThrough with the epoch and last applied sequence
// captured *before* the save, which atomically rewrites the log to only the
// records past the snapshot — the log stays proportional to one snapshot
// interval of writes, not catalog history.
//
// Dictionary carriage: the catalog's value dictionary is append-only with
// dense ids, so each record carries the positional delta {DictStart,
// DictVals} its batch appended. Replay re-interns the delta in order and
// verifies every id lands where the record says — a cheap consistency fence
// that catches a log replayed over the wrong dictionary.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/faultfs"
)

// SyncPolicy selects when appends reach the platter.
type SyncPolicy string

// The fsync policies. ParseSyncPolicy validates user input.
const (
	// SyncAlways fsyncs before every Append returns: an acknowledged write
	// survives any crash.
	SyncAlways SyncPolicy = "always"
	// SyncBatch fsyncs on a short background interval: a crash can lose at
	// most the last interval's acknowledged writes.
	SyncBatch SyncPolicy = "batch"
	// SyncNone never fsyncs: durability is whatever the OS write-back gives.
	SyncNone SyncPolicy = "none"
)

// ParseSyncPolicy validates a policy string ("" defaults to always).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "":
		return SyncAlways, nil
	case SyncAlways, SyncBatch, SyncNone:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: sync policy %q is not always|batch|none", s)
}

// walVersion guards the frame/header layout.
const walVersion = 1

// maxPayload bounds a frame's declared length: no valid record outsizes it,
// so a corrupt length field is detected before any allocation.
const maxPayload = 1 << 30

// defaultBatchInterval is the background fsync cadence under SyncBatch.
const defaultBatchInterval = 5 * time.Millisecond

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// header is the log's first frame: the fence tying it to one catalog.
type header struct {
	Version   int
	Lineage   uint64
	SnapEpoch uint64
}

// Record is one logged ingest batch.
type Record struct {
	// Seq is the record's sequence number, strictly increasing within the
	// log. Snapshot truncation drops records with Seq at or below the
	// low-water mark.
	Seq uint64
	// Ops is the batch in replay form: profiled upserts and removes, in
	// application order.
	Ops []discovery.ReplayOp
	// DictStart/DictVals are the positional dictionary delta this batch
	// appended: DictVals[j] was interned at id DictStart+j. Replay verifies
	// the positions — a mismatch means the log is being replayed over the
	// wrong dictionary and must not proceed.
	DictStart int
	DictVals  []string
}

// Options configures Open.
type Options struct {
	// FS is the filesystem the log reads and writes through (nil: real disk).
	FS faultfs.FS
	// Sync is the fsync policy ("" defaults to SyncAlways).
	Sync SyncPolicy
	// BatchInterval is the background fsync cadence under SyncBatch
	// (default 5ms).
	BatchInterval time.Duration
}

// Log is an open write-ahead log. Append, TruncateThrough and Close are
// safe for concurrent use.
type Log struct {
	path   string
	fsys   faultfs.FS
	policy SyncPolicy

	mu        sync.Mutex
	f         faultfs.File
	size      int64
	nextSeq   uint64
	lineage   uint64
	snapEpoch uint64
	closed    bool
	dirty     bool  // bytes appended since the last sync (batch policy)
	syncErr   error // sticky background sync failure

	flushStop chan struct{}
	flushDone chan struct{}
}

// OpenResult is what Open recovered from disk.
type OpenResult struct {
	Log *Log
	// Records are the surviving records in sequence order — what the caller
	// must replay into the loaded catalog.
	Records []Record
	// Lineage and SnapEpoch are the log's fencing header: the caller's own
	// values when Fresh, the previous process's otherwise. The caller checks
	// them against the loaded catalog before replaying.
	Lineage   uint64
	SnapEpoch uint64
	// Fresh reports that no usable log existed (missing, empty, or a torn
	// header) and a new one was initialized with the caller's fence.
	Fresh bool
	// TornBytes counts bytes truncated from a torn tail (0 on a clean open).
	TornBytes int64
}

// Open opens the log at path, creating it with the given fence when no
// usable log exists. An existing log is scanned front to back: the header
// and every CRC-valid record are recovered, and a torn tail — a crash
// mid-append — is truncated in place before the log accepts new appends.
// The caller decides what the recovered fence means; Open only guarantees
// the returned records were durably framed by the lineage in the header.
func Open(path string, lineage, snapEpoch uint64, o Options) (*OpenResult, error) {
	policy := o.Sync
	if policy == "" {
		policy = SyncAlways
	}
	switch policy {
	case SyncAlways, SyncBatch, SyncNone:
	default:
		return nil, fmt.Errorf("wal: sync policy %q is not always|batch|none", policy)
	}
	fsys := faultfs.Or(o.FS)
	l := &Log{path: path, fsys: fsys, policy: policy, nextSeq: 1}

	data, err := readAll(fsys, path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	res := &OpenResult{Log: l}
	hdr, recs, good, scanErr := scanFrames(data)
	if scanErr != nil {
		// No valid header: a crash tore the log's first write (or the file
		// is not a log at all — in that case refuse rather than destroy).
		if good > 0 || (len(data) > 0 && !looksTorn(data)) {
			return nil, fmt.Errorf("wal: %s is not a valid log: %w", path, scanErr)
		}
		res.Fresh = true
	}
	if res.Fresh {
		hdr = header{Version: walVersion, Lineage: lineage, SnapEpoch: snapEpoch}
		recs, good = nil, 0
	}
	l.lineage, l.snapEpoch = hdr.Lineage, hdr.SnapEpoch
	res.Lineage, res.SnapEpoch = hdr.Lineage, hdr.SnapEpoch
	res.Records = recs
	for _, r := range recs {
		if r.Seq >= l.nextSeq {
			l.nextSeq = r.Seq + 1
		}
	}

	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	if res.Fresh {
		// (Re)initialize: truncate whatever tear was there and write the
		// fence. The header must be durable before any record is — a crash
		// between an acked record append and the header landing would lose
		// the record's framing entirely.
		frame, err := encodeFrame(hdr)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := initLogFile(f, frame); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: initializing %s: %w", path, err)
		}
		l.size = int64(len(frame))
		if err := syncParent(fsys, path); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing log directory: %w", err)
		}
	} else {
		if int64(len(data)) > good {
			res.TornBytes = int64(len(data)) - good
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: syncing truncated %s: %w", path, err)
			}
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.size = good
	}
	l.f = f
	if policy == SyncBatch {
		interval := o.BatchInterval
		if interval <= 0 {
			interval = defaultBatchInterval
		}
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(interval)
	}
	return res, nil
}

// looksTorn reports whether data is plausibly a torn first frame rather
// than some unrelated file: it must be shorter than one complete header
// frame could be, or carry a length prefix its bytes fail to satisfy.
func looksTorn(data []byte) bool {
	if len(data) < 8 {
		return true
	}
	n := binary.LittleEndian.Uint32(data)
	return n <= maxPayload && int64(len(data)) < 8+int64(n)
}

// initLogFile empties f and writes the header frame durably.
func initLogFile(f faultfs.File, frame []byte) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		return err
	}
	return f.Sync()
}

// Append logs one batch, assigning and returning its sequence number. Under
// SyncAlways the record is durable when Append returns; under SyncBatch it
// is durable within one flush interval; under SyncNone whenever the OS gets
// to it. The caller must not acknowledge the batch to clients before Append
// returns.
func (l *Log) Append(ops []discovery.ReplayOp, dictStart int, dictVals []string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.syncErr != nil {
		// A background flush failed: acknowledged durability is already
		// compromised, so fail loudly instead of piling unsynced acks on.
		return 0, fmt.Errorf("wal: background sync failed: %w", l.syncErr)
	}
	seq := l.nextSeq
	frame, err := encodeFrame(Record{Seq: seq, Ops: ops, DictStart: dictStart, DictVals: dictVals})
	if err != nil {
		return 0, err
	}
	n, err := l.f.Write(frame)
	if err != nil {
		// A partial frame on disk is exactly a torn tail: the CRC fails on
		// the next open and the tail is truncated. Roll the in-memory state
		// back so a retry starts a fresh frame past the garbage... which
		// would itself be garbage after the tear — so truncate back first.
		if n > 0 {
			if terr := l.f.Truncate(l.size); terr == nil {
				l.f.Seek(l.size, io.SeekStart)
			}
		}
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	l.size += int64(len(frame))
	l.nextSeq = seq + 1
	switch l.policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
		}
	case SyncBatch:
		l.dirty = true
	}
	return seq, nil
}

// flushLoop is SyncBatch's background fsync: every interval, sync if
// anything was appended since the last sync.
func (l *Log) flushLoop(interval time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed && l.syncErr == nil {
				if err := l.f.Sync(); err != nil {
					l.syncErr = err
				}
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// TruncateThrough atomically rewrites the log to only the records with
// sequence numbers strictly greater than low, under a new header fencing to
// snapEpoch — the post-snapshot hygiene call. The caller must sample both
// values *before* starting the snapshot: concurrent appends during the save
// then land above low and survive, and a restart sees a snapshot whose
// epoch is at least snapEpoch, so the fence never spuriously fails.
func (l *Log) TruncateThrough(low uint64, snapEpoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Parse the current file: the surviving tail is re-framed verbatim.
	data, err := readAll(l.fsys, l.path)
	if err != nil {
		return fmt.Errorf("wal: rereading %s: %w", l.path, err)
	}
	_, recs, _, scanErr := scanFrames(data)
	if scanErr != nil {
		return fmt.Errorf("wal: rereading %s: %w", l.path, scanErr)
	}
	var buf bytes.Buffer
	hdrFrame, err := encodeFrame(header{Version: walVersion, Lineage: l.lineage, SnapEpoch: snapEpoch})
	if err != nil {
		return err
	}
	buf.Write(hdrFrame)
	for _, r := range recs {
		if r.Seq <= low {
			continue
		}
		frame, err := encodeFrame(r)
		if err != nil {
			return err
		}
		buf.Write(frame)
	}
	// Temp + fsync + rename: a crash leaves either the old log (replayed
	// idempotently over the new snapshot) or the new one, never a mix.
	tmp := l.path + ".tmp"
	tf, err := l.fsys.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tf.Close()
		l.fsys.Remove(tmp)
		return err
	}
	if _, err := tf.Write(buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := tf.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tf.Close(); err != nil {
		l.fsys.Remove(tmp)
		return err
	}
	if err := l.fsys.Rename(tmp, l.path); err != nil {
		l.fsys.Remove(tmp)
		return err
	}
	if err := syncParent(l.fsys, l.path); err != nil {
		return err
	}
	// Swap the append handle to the new file.
	nf, err := l.fsys.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening %s after truncation: %w", l.path, err)
	}
	if _, err := nf.Seek(int64(buf.Len()), io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	l.f.Close()
	l.f = nf
	l.size = int64(buf.Len())
	l.snapEpoch = snapEpoch
	l.dirty = false
	return nil
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	err := l.f.Sync()
	if err == nil {
		l.dirty = false
	}
	return err
}

// Close syncs (except under SyncNone) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.policy != SyncNone && l.dirty {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}

// Size returns the log's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// LastSeq returns the highest sequence number assigned so far (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Lineage returns the log's fencing lineage id.
func (l *Log) Lineage() uint64 { return l.lineage }

// SnapEpoch returns the log's current low-water snapshot epoch.
func (l *Log) SnapEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapEpoch
}

// Policy returns the log's fsync policy.
func (l *Log) Policy() SyncPolicy { return l.policy }

// ReplayInto applies recovered records to the catalog in order: each
// record's dictionary delta is re-interned and position-verified, then its
// ops are applied as one batch. Removes of unknown tables are ignored —
// at-least-once replay over a snapshot that already contains the batch's
// effects must be a no-op, not an error. Any dictionary fence violation
// aborts the replay: the catalog underneath does not match the log.
func ReplayInto(ix *discovery.Index, recs []Record) error {
	dict := ix.Dict()
	for _, rec := range recs {
		for j, v := range rec.DictVals {
			want := uint32(rec.DictStart + j)
			if got := dict.Intern(v); got != want {
				return fmt.Errorf("wal: record %d dictionary fence: %q interned at id %d, log expects %d — log does not match this catalog",
					rec.Seq, v, got, want)
			}
		}
		for i, err := range ix.ApplyReplayOps(rec.Ops) {
			if err != nil && rec.Ops[i].Remove == "" {
				return fmt.Errorf("wal: record %d op %d: %w", rec.Seq, i, err)
			}
		}
	}
	return nil
}

// encodeFrame gob-encodes v and wraps it in a length+CRC32C frame.
func encodeFrame(v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	p := payload.Bytes()
	if len(p) > maxPayload {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", len(p), maxPayload)
	}
	frame := make([]byte, 8+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, crcTable))
	copy(frame[8:], p)
	return frame, nil
}

// nextFrame slices one frame's payload off data, returning nil when the
// remaining bytes do not hold a complete, CRC-valid frame (a torn tail).
func nextFrame(data []byte) (payload, rest []byte) {
	if len(data) < 8 {
		return nil, data
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if uint64(n) > maxPayload || int64(len(data)) < 8+int64(n) {
		return nil, data
	}
	p := data[8 : 8+n]
	if crc32.Checksum(p, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, data
	}
	return p, data[8+n:]
}

// scanFrames parses a log image: header, then records, stopping cleanly at
// the first torn or corrupt frame. good is the byte offset of the last
// fully valid frame — the truncation point. A missing or invalid header
// frame returns an error with good 0.
func scanFrames(data []byte) (hdr header, recs []Record, good int64, err error) {
	if len(data) == 0 {
		return header{}, nil, 0, errors.New("empty log")
	}
	payload, rest := nextFrame(data)
	if payload == nil {
		return header{}, nil, 0, errors.New("torn or invalid header frame")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return header{}, nil, 0, fmt.Errorf("decoding header: %w", err)
	}
	if hdr.Version != walVersion {
		return header{}, nil, 0, fmt.Errorf("log version %d, want %d", hdr.Version, walVersion)
	}
	good = int64(len(data) - len(rest))
	for len(rest) > 0 {
		payload, next := nextFrame(rest)
		if payload == nil {
			break // torn tail: everything from here is truncated
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			break // CRC-valid but undecodable: treat as tail damage too
		}
		recs = append(recs, rec)
		good = int64(len(data) - len(next))
		rest = next
	}
	return hdr, recs, good, nil
}

// readAll reads path fully through fsys.
func readAll(fsys faultfs.FS, path string) ([]byte, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// syncParent fsyncs path's directory, making a create or rename durable.
func syncParent(fsys faultfs.FS, path string) error {
	dir := filepath.Dir(path)
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

// Crash-recovery conformance fuzz. A deterministic serving workload —
// profiled batches acked only after their WAL append returns, snapshots
// with log truncation every few batches — is dry-run once through a
// counting faultfs to learn its mutation-point count, then re-run once per
// point with a kill injected at exactly that point (mid-WAL-append,
// mid-fsync, mid-snapshot-rename, mid-truncation — every durability-
// relevant operation the workload performs). Each crashed run must recover,
// via LoadSnapshot + WAL replay on the real filesystem, to a catalog whose
// tables and search results are identical to an uncrashed reference holding
// exactly the acked batches — or acked plus the single in-flight batch
// whose append raced the crash, since a record can be fully durable before
// the fsync that would have acked it fails. Acked batches are never lost;
// torn tails are truncated, never mis-replayed.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"valentine/internal/discovery"
	"valentine/internal/faultfs"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// crashOpts seals early so the workload exercises sealed-segment snapshot
// writes and pruning, not just the memtable path.
func crashOpts() discovery.Options { return discovery.Options{SealAfter: 3} }

// crashStep is one logical catalog mutation; a batch of steps is acked as a
// unit, mirroring the server's micro-batcher.
type crashStep struct {
	remove string
	name   string
	prefix string
	lo, hi int
}

// crashBatches is the workload: upserts from a small name pool with varying
// value ranges, replacements, removes, and a resurrection — every mutation
// shape the replay path distinguishes. Snapshots land after batches 4 and 8.
func crashBatches() [][]crashStep {
	return [][]crashStep{
		{{name: "alpha", prefix: "a", lo: 0, hi: 30}},
		{{name: "beta", prefix: "b", lo: 10, hi: 40}, {name: "gamma", prefix: "a", lo: 5, hi: 35}},
		{{name: "alpha", prefix: "c", lo: 0, hi: 25}}, // replace alpha wholesale
		{{remove: "gamma"}, {name: "delta", prefix: "b", lo: 0, hi: 20}},
		{{name: "epsilon", prefix: "d", lo: 0, hi: 40}},
		{{name: "gamma", prefix: "e", lo: 0, hi: 30}}, // resurrect gamma, new values
		{{remove: "delta"}},
		{{name: "zeta", prefix: "a", lo: 15, hi: 45}, {name: "beta", prefix: "f", lo: 0, hi: 30}},
		{{name: "eta", prefix: "c", lo: 10, hi: 40}},
		{{remove: "alpha"}, {name: "theta", prefix: "b", lo: 20, hi: 50}},
	}
}

func stepOp(ix *discovery.Index, st crashStep) discovery.Op {
	if st.remove != "" {
		return discovery.Op{Remove: st.remove}
	}
	tab := table.New(st.name).AddColumn("k", vals(st.prefix, st.lo, st.hi))
	return discovery.Op{Upsert: profile.NewInterned(tab, ix.Dict())}
}

// runCrashWorkload drives the full workload with all I/O — WAL, snapshots,
// truncation — routed through fsys, acking each batch only after its WAL
// append returns, exactly like the server's batcher. It reports how many
// batches were acked, the index of the batch whose append was in flight
// when the first error hit (-1: none), and that error (nil: ran to
// completion).
func runCrashWorkload(dir string, fsys faultfs.FS) (acked, inflight int, err error) {
	walPath := filepath.Join(dir, "ops.wal")
	snapDir := filepath.Join(dir, "snap")
	ix := discovery.New(crashOpts())
	defer ix.Close()
	ix.SetFS(fsys)
	res, err := Open(walPath, ix.Lineage(), 0, Options{FS: fsys, Sync: SyncAlways})
	if err != nil {
		return 0, -1, err
	}
	l := res.Log
	defer l.Close()
	for i, batch := range crashBatches() {
		lo := ix.Dict().Len()
		rops := make([]discovery.ReplayOp, 0, len(batch))
		for _, st := range batch {
			rop, ferr := ix.ReplayForm(stepOp(ix, st))
			if ferr != nil {
				return acked, -1, fmt.Errorf("harness: ReplayForm: %w", ferr)
			}
			rops = append(rops, rop)
		}
		seq, aerr := l.Append(rops, lo, ix.Dict().Entries(lo, ix.Dict().Len()))
		if aerr != nil {
			return acked, i, aerr
		}
		for _, e := range ix.ApplyReplayOps(rops) {
			if e != nil {
				return acked, -1, fmt.Errorf("harness: apply: %w", e)
			}
		}
		acked = i + 1
		if (i+1)%4 == 0 {
			// The server samples the low-water mark and epoch before the
			// save; truncation after a successful save is the contract
			// under test (crash between the two re-replays idempotently).
			ix.WaitCompaction()
			e0 := ix.Epoch()
			if serr := ix.SaveSnapshot(snapDir); serr != nil {
				return acked, -1, serr
			}
			if terr := l.TruncateThrough(seq, e0); terr != nil {
				return acked, -1, terr
			}
		}
	}
	return acked, -1, l.Close()
}

// recoverCrashDir mirrors the server's restart sequence on the real
// filesystem: load the snapshot if one ever committed (else start fresh),
// open the WAL, enforce the lineage/epoch fence — adopting a fresh catalog
// into the log's lineage — and replay.
func recoverCrashDir(t *testing.T, dir string) *discovery.Index {
	t.Helper()
	walPath := filepath.Join(dir, "ops.wal")
	snapDir := filepath.Join(dir, "snap")
	var ix *discovery.Index
	if _, err := os.Stat(filepath.Join(snapDir, "MANIFEST.gob")); err == nil {
		ix, err = discovery.LoadSnapshotWith(snapDir, discovery.LoadOptions{Quarantine: true})
		if err != nil {
			t.Fatalf("recovery: loading snapshot: %v", err)
		}
	} else {
		ix = discovery.New(crashOpts())
	}
	res, err := Open(walPath, ix.Lineage(), ix.Epoch(), Options{})
	if err != nil {
		t.Fatalf("recovery: opening wal: %v", err)
	}
	defer res.Log.Close()
	if !res.Fresh {
		if res.Lineage != ix.Lineage() {
			if res.SnapEpoch != 0 {
				t.Fatalf("recovery: lineage fence: log %x vs catalog %x", res.Lineage, ix.Lineage())
			}
			if err := ix.AdoptLineage(res.Lineage); err != nil {
				t.Fatalf("recovery: adopting lineage: %v", err)
			}
		}
		if ix.Epoch() < res.SnapEpoch {
			t.Fatalf("recovery: snapshot epoch %d behind log low-water mark %d", ix.Epoch(), res.SnapEpoch)
		}
	}
	if err := ReplayInto(ix, res.Records); err != nil {
		t.Fatalf("recovery: replay: %v", err)
	}
	return ix
}

// refCatalog applies the first n batches to a fresh index through the same
// replay path with no I/O at all — the uncrashed reference.
func refCatalog(t *testing.T, n int) *discovery.Index {
	t.Helper()
	ix := discovery.New(crashOpts())
	for _, batch := range crashBatches()[:n] {
		rops := make([]discovery.ReplayOp, 0, len(batch))
		for _, st := range batch {
			rop, err := ix.ReplayForm(stepOp(ix, st))
			if err != nil {
				t.Fatal(err)
			}
			rops = append(rops, rop)
		}
		for _, e := range ix.ApplyReplayOps(rops) {
			if e != nil {
				t.Fatal(e)
			}
		}
	}
	return ix
}

// catalogFingerprint is the identity the conformance check compares: the
// sorted table list plus full search results for fixed probe queries in
// both modes, on (table, score, best pair). Candidate counts are excluded —
// they depend on segment layout, which legitimately differs between a
// replayed catalog and a reference built in one pass.
func catalogFingerprint(t *testing.T, ix *discovery.Index) string {
	t.Helper()
	var b strings.Builder
	tabs := ix.Tables()
	sort.Strings(tabs)
	fmt.Fprintf(&b, "tables=%v\n", tabs)
	for _, prefix := range []string{"a", "b", "c", "e"} {
		q := table.New("probe").AddColumn("q", vals(prefix, 0, 40))
		for _, mode := range []discovery.Mode{discovery.ModeJoin, discovery.ModeUnion} {
			rs, err := ix.Search(q, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				fmt.Fprintf(&b, "%s/%s: %s %.9f %s %s\n",
					prefix, mode, r.Table, r.Score, r.BestQuery, r.BestIndexed)
			}
		}
	}
	return b.String()
}

// TestCrashRecoveryConformance is the sweep: a kill at every mutation point
// the workload executes, each followed by recovery and comparison against
// the acked-prefix reference.
func TestCrashRecoveryConformance(t *testing.T) {
	nBatches := len(crashBatches())

	// Dry run: the clean workload both counts mutation points and checks
	// the harness itself.
	ff := faultfs.New(nil)
	acked, inflight, err := runCrashWorkload(t.TempDir(), ff)
	if err != nil {
		t.Fatalf("dry run failed: %v", err)
	}
	if acked != nBatches || inflight != -1 {
		t.Fatalf("dry run acked %d/%d batches", acked, nBatches)
	}
	points := ff.Points()
	if points < 20 {
		t.Fatalf("suspiciously few mutation points: %d", points)
	}

	// References for every acked prefix, computed once.
	refs := make([]string, nBatches+1)
	for n := 0; n <= nBatches; n++ {
		ref := refCatalog(t, n)
		refs[n] = catalogFingerprint(t, ref)
		ref.Close()
	}

	// Short mode samples the schedule; the CI chaos leg sweeps every point.
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	for p := int64(0); p < points; p += stride {
		p := p
		torn := int(p%5) * 3 // vary the torn-prefix length across points
		t.Run(fmt.Sprintf("point%03d", p), func(t *testing.T) {
			dir := t.TempDir()
			ff := faultfs.New(nil)
			ff.CrashAtPoint(p, torn)
			acked, inflight, err := runCrashWorkload(dir, ff)
			if err != nil && !ff.Crashed() {
				t.Fatalf("workload failed before the crash fired: %v", err)
			}
			if err == nil {
				// Sealing/compaction timing can shift a run's point count
				// below the dry run's; the workload then completes and full
				// recovery must still hold.
				acked, inflight = nBatches, -1
			}
			rec := recoverCrashDir(t, dir)
			defer rec.Close()
			got := catalogFingerprint(t, rec)
			if got == refs[acked] {
				return
			}
			if inflight >= 0 && got == refs[inflight+1] {
				// The in-flight batch's record was fully durable before the
				// crash surfaced — at-least-once, never mis-replayed.
				return
			}
			t.Errorf("point %d (torn %d): recovered catalog matches neither acked=%d nor acked+inflight\nrecovered:\n%s\nwant:\n%s",
				p, torn, acked, got, refs[acked])
		})
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/faultfs"
	"valentine/internal/profile"
	"valentine/internal/table"
)

func vals(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// upsertOp profiles one small table into ix's replay form, returning the op
// plus the dictionary delta the profiling appended.
func upsertOp(t *testing.T, ix *discovery.Index, name string, lo, hi int) (discovery.ReplayOp, int, []string) {
	t.Helper()
	dictLow := ix.Dict().Len()
	tab := table.New(name).AddColumn("k", vals("w", lo, hi))
	rop, err := ix.ReplayForm(discovery.Op{Upsert: profile.NewInterned(tab, ix.Dict())})
	if err != nil {
		t.Fatal(err)
	}
	n := ix.Dict().Len()
	return rop, dictLow, ix.Dict().Entries(dictLow, n)
}

func mustOpen(t *testing.T, path string, lineage, snapEpoch uint64, o Options) *OpenResult {
	t.Helper()
	res, err := Open(path, lineage, snapEpoch, o)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return res
}

func TestFreshOpenAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{SealAfter: 2})

	res := mustOpen(t, path, ix.Lineage(), 0, Options{})
	if !res.Fresh || len(res.Records) != 0 || res.Lineage != ix.Lineage() {
		t.Fatalf("fresh open: %+v", res)
	}
	l := res.Log

	for i := 0; i < 5; i++ {
		rop, lo, delta := upsertOp(t, ix, fmt.Sprintf("t%d", i), i*10, i*10+20)
		seq, err := l.Append([]discovery.ReplayOp{rop}, lo, delta)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if errs := ix.ApplyReplayOps([]discovery.ReplayOp{rop}); errs[0] != nil {
			t.Fatal(errs[0])
		}
	}
	rm, err := ix.ReplayForm(discovery.Op{Remove: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]discovery.ReplayOp{rm}, ix.Dict().Len(), nil); err != nil {
		t.Fatal(err)
	}
	ix.ApplyReplayOps([]discovery.ReplayOp{rm})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh catalog adopts the log's lineage, replays, and matches.
	re := mustOpen(t, path, 999, 0, Options{})
	if re.Fresh {
		t.Fatal("reopen reported fresh")
	}
	if re.Lineage != ix.Lineage() || re.SnapEpoch != 0 || re.TornBytes != 0 {
		t.Fatalf("reopen fence: %+v", re)
	}
	if len(re.Records) != 6 {
		t.Fatalf("recovered %d records, want 6", len(re.Records))
	}
	ix2 := discovery.New(discovery.Options{SealAfter: 2})
	if err := ix2.AdoptLineage(re.Lineage); err != nil {
		t.Fatal(err)
	}
	if err := ReplayInto(ix2, re.Records); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(ix.Tables(), ix2.Tables()) {
		t.Fatalf("replayed tables %v != reference %v", ix2.Tables(), ix.Tables())
	}
	if ix.Dict().Len() != ix2.Dict().Len() {
		t.Fatalf("replayed dict %d entries != reference %d", ix2.Dict().Len(), ix.Dict().Len())
	}
	if re.Log.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", re.Log.LastSeq())
	}
	re.Log.Close()
}

func TestTornTailTruncatedNeverMisreplayed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	res := mustOpen(t, path, ix.Lineage(), 0, Options{})
	rop, lo, delta := upsertOp(t, ix, "a", 0, 30)
	if _, err := res.Log.Append([]discovery.ReplayOp{rop}, lo, delta); err != nil {
		t.Fatal(err)
	}
	rop2, lo2, delta2 := upsertOp(t, ix, "b", 20, 50)
	if _, err := res.Log.Append([]discovery.ReplayOp{rop2}, lo2, delta2); err != nil {
		t.Fatal(err)
	}
	res.Log.Close()

	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail at every byte boundary inside the final record: each
	// prefix must recover exactly record 1 and truncate the rest.
	_, recs, good, scanErr := scanFrames(full)
	if scanErr != nil || len(recs) != 2 {
		t.Fatalf("scan of full log: %d recs, %v", len(recs), scanErr)
	}
	// Find the boundary after record 1 by scanning prefixes.
	firstEnd := int64(0)
	for cut := int64(1); cut < good; cut++ {
		_, rs, _, err := scanFrames(full[:cut])
		if err == nil && len(rs) == 1 {
			firstEnd = cut
			break
		}
	}
	if firstEnd == 0 {
		t.Fatal("could not locate record-1 boundary")
	}
	for _, cut := range []int64{firstEnd, firstEnd + 1, firstEnd + 7, firstEnd + 9, good - 1} {
		if cut >= good {
			continue
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, path, 0, 0, Options{})
		if re.Fresh {
			t.Fatalf("cut %d: torn log treated as fresh", cut)
		}
		if len(re.Records) != 1 || re.Records[0].Seq != 1 {
			t.Fatalf("cut %d: recovered %d records", cut, len(re.Records))
		}
		if re.TornBytes == 0 && cut > firstEnd {
			t.Fatalf("cut %d: no torn bytes reported", cut)
		}
		// After the truncating open, the file on disk is clean.
		b, _ := os.ReadFile(path)
		if _, rs, g, err := scanFrames(b); err != nil || len(rs) != 1 || g != int64(len(b)) {
			t.Fatalf("cut %d: post-open file not clean: %d recs, good %d/%d, %v", cut, len(rs), g, len(b), err)
		}
		// And appends go to the right place.
		ix2 := discovery.New(discovery.Options{})
		rop3, lo3, delta3 := upsertOp(t, ix2, "c", 0, 10)
		if _, err := re.Log.Append([]discovery.ReplayOp{rop3}, lo3, delta3); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		re.Log.Close()
		re2 := mustOpen(t, path, 0, 0, Options{})
		if len(re2.Records) != 2 {
			t.Fatalf("cut %d: %d records after post-truncation append", cut, len(re2.Records))
		}
		re2.Log.Close()
	}
}

func TestTornHeaderReinitializes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	res := mustOpen(t, path, 42, 0, Options{})
	res.Log.Close()
	full, _ := os.ReadFile(path)
	for _, cut := range []int{0, 1, 4, 7, len(full) - 1} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re := mustOpen(t, path, 43, 7, Options{})
		if !re.Fresh || re.Lineage != 43 || re.SnapEpoch != 7 {
			t.Fatalf("cut %d: torn header not reinitialized: %+v", cut, re)
		}
		re.Log.Close()
	}
	// A file that is clearly not a WAL is refused, not clobbered.
	if err := os.WriteFile(path, []byte(strings.Repeat("definitely not a wal ", 10)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 1, 0, Options{}); err == nil {
		t.Fatal("opened a non-log file as a log")
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	res := mustOpen(t, path, ix.Lineage(), 0, Options{})
	l := res.Log
	var seqs []uint64
	for i := 0; i < 6; i++ {
		rop, lo, delta := upsertOp(t, ix, fmt.Sprintf("t%d", i), i*10, i*10+15)
		seq, err := l.Append([]discovery.ReplayOp{rop}, lo, delta)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	before := l.Size()
	if err := l.TruncateThrough(seqs[3], 17); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if l.Size() >= before {
		t.Fatalf("size %d did not shrink from %d", l.Size(), before)
	}
	if l.SnapEpoch() != 17 {
		t.Fatalf("SnapEpoch = %d, want 17", l.SnapEpoch())
	}
	// Appends continue with monotone seqs.
	rop, lo, delta := upsertOp(t, ix, "late", 0, 5)
	seq, err := l.Append([]discovery.ReplayOp{rop}, lo, delta)
	if err != nil {
		t.Fatal(err)
	}
	if seq != seqs[5]+1 {
		t.Fatalf("post-truncation seq = %d, want %d", seq, seqs[5]+1)
	}
	l.Close()

	re := mustOpen(t, path, 0, 0, Options{})
	defer re.Log.Close()
	if re.SnapEpoch != 17 || re.Lineage != ix.Lineage() {
		t.Fatalf("reopen fence: %+v", re)
	}
	want := []uint64{seqs[4], seqs[5], seq}
	var got []uint64
	for _, r := range re.Records {
		got = append(got, r.Seq)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("surviving seqs %v, want %v", got, want)
	}
}

func TestDictFenceAbortsWrongCatalogReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	res := mustOpen(t, path, ix.Lineage(), 0, Options{})
	rop, lo, delta := upsertOp(t, ix, "a", 0, 20)
	if _, err := res.Log.Append([]discovery.ReplayOp{rop}, lo, delta); err != nil {
		t.Fatal(err)
	}
	res.Log.Close()

	re := mustOpen(t, path, 0, 0, Options{})
	defer re.Log.Close()
	// A catalog whose dictionary already holds foreign values at the logged
	// positions must be rejected.
	wrong := discovery.New(discovery.Options{})
	wrong.Dict().Intern("poison-value-not-in-log")
	if err := ReplayInto(wrong, re.Records); err == nil {
		t.Fatal("replay over a mismatched dictionary succeeded")
	} else if !strings.Contains(err.Error(), "dictionary fence") {
		t.Fatalf("error %v does not name the dictionary fence", err)
	}
}

// countFS wraps a filesystem and counts Sync calls on its files — the
// observable difference between the three fsync policies.
type countFS struct {
	inner faultfs.FS
	syncs *atomic.Int64
}

type countFile struct {
	faultfs.File
	syncs *atomic.Int64
}

func (c countFile) Sync() error {
	c.syncs.Add(1)
	return c.File.Sync()
}

func (c countFS) wrap(f faultfs.File, err error) (faultfs.File, error) {
	if err != nil {
		return nil, err
	}
	return countFile{f, c.syncs}, nil
}
func (c countFS) Create(name string) (faultfs.File, error) { return c.wrap(c.inner.Create(name)) }
func (c countFS) Open(name string) (faultfs.File, error)   { return c.wrap(c.inner.Open(name)) }
func (c countFS) OpenFile(name string, flag int, perm os.FileMode) (faultfs.File, error) {
	return c.wrap(c.inner.OpenFile(name, flag, perm))
}
func (c countFS) Rename(o, n string) error                   { return c.inner.Rename(o, n) }
func (c countFS) Remove(name string) error                   { return c.inner.Remove(name) }
func (c countFS) MkdirAll(p string, m os.FileMode) error     { return c.inner.MkdirAll(p, m) }
func (c countFS) Stat(name string) (os.FileInfo, error)      { return c.inner.Stat(name) }
func (c countFS) ReadDir(name string) ([]os.DirEntry, error) { return c.inner.ReadDir(name) }

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "ops.wal")
			ix := discovery.New(discovery.Options{})
			var syncs atomic.Int64
			fsys := countFS{inner: faultfs.OS, syncs: &syncs}
			res := mustOpen(t, path, ix.Lineage(), 0, Options{FS: fsys, Sync: pol, BatchInterval: time.Millisecond})
			before := syncs.Load()
			rop, lo, delta := upsertOp(t, ix, "a", 0, 10)
			if _, err := res.Log.Append([]discovery.ReplayOp{rop}, lo, delta); err != nil {
				t.Fatal(err)
			}
			switch pol {
			case SyncAlways:
				if got := syncs.Load() - before; got < 1 {
					t.Fatalf("always: %d syncs after append, want >= 1", got)
				}
			case SyncBatch:
				deadline := time.Now().Add(time.Second)
				for syncs.Load() == before && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if syncs.Load() == before {
					t.Fatal("batch: background flush never synced")
				}
			case SyncNone:
				if got := syncs.Load() - before; got != 0 {
					t.Fatalf("none: %d syncs after append, want 0", got)
				}
			}
			res.Log.Close()
		})
	}
}

func TestAppendFsyncErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	ff := faultfs.New(nil)
	res := mustOpen(t, path, ix.Lineage(), 0, Options{FS: ff, Sync: SyncAlways})
	ff.AddRule(faultfs.Rule{Op: faultfs.OpSync, Path: "ops.wal", Fault: faultfs.Fault{Err: syscall.EIO}})
	rop, lo, delta := upsertOp(t, ix, "a", 0, 10)
	if _, err := res.Log.Append([]discovery.ReplayOp{rop}, lo, delta); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append err = %v, want EIO", err)
	}
	res.Log.Close()
}

func TestAppendShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	ff := faultfs.New(nil)
	res := mustOpen(t, path, ix.Lineage(), 0, Options{FS: ff})
	l := res.Log
	rop, lo, delta := upsertOp(t, ix, "a", 0, 10)
	if _, err := l.Append([]discovery.ReplayOp{rop}, lo, delta); err != nil {
		t.Fatal(err)
	}
	ff.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: "ops.wal", Fault: faultfs.Fault{Err: syscall.ENOSPC}})
	rop2, lo2, delta2 := upsertOp(t, ix, "b", 5, 15)
	if _, err := l.Append([]discovery.ReplayOp{rop2}, lo2, delta2); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append err = %v, want ENOSPC", err)
	}
	// The failed append rolled the file back: a retry succeeds and the log
	// stays parseable end to end.
	seq, err := l.Append([]discovery.ReplayOp{rop2}, lo2, delta2)
	if err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if seq != 2 {
		t.Fatalf("retry seq = %d, want 2", seq)
	}
	l.Close()
	re := mustOpen(t, path, 0, 0, Options{})
	defer re.Log.Close()
	if len(re.Records) != 2 || re.TornBytes != 0 {
		t.Fatalf("recovered %d records, torn %d — rollback left garbage", len(re.Records), re.TornBytes)
	}
}

func TestLineageFenceVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.wal")
	res := mustOpen(t, path, 1234, 9, Options{})
	res.Log.Close()
	re := mustOpen(t, path, 5678, 0, Options{})
	defer re.Log.Close()
	if re.Fresh || re.Lineage != 1234 || re.SnapEpoch != 9 {
		t.Fatalf("fence not preserved: %+v", re)
	}
}

// Package metrics implements the effectiveness measures Valentine uses to
// judge ranked match lists, chiefly Recall@GroundTruth (paper §II-C), plus
// the box statistics (min/median/max) the figures report.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"valentine/internal/core"
)

// RecallAtGroundTruth computes |relevant matches among the top-k| / k with
// k = |ground truth| — the paper's primary effectiveness metric. With
// k = |GT| it equals Precision@GT. An empty ground truth yields an error
// because the metric is undefined.
func RecallAtGroundTruth(matches []core.Match, gt *core.GroundTruth) (float64, error) {
	k := gt.Size()
	if k == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	hits := 0
	for _, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// PrecisionRecallAtThreshold evaluates the classic unranked metrics over
// matches whose score meets the threshold: precision, recall and F1
// against the ground truth. Provided for comparison with traditional
// 1-1-match evaluation, which the paper contrasts against.
func PrecisionRecallAtThreshold(matches []core.Match, gt *core.GroundTruth, threshold float64) (precision, recall, f1 float64, err error) {
	if gt.Size() == 0 {
		return 0, 0, 0, fmt.Errorf("metrics: empty ground truth")
	}
	tp, fp := 0, 0
	seen := make(map[core.ColumnPair]bool)
	for _, m := range matches {
		if m.Score < threshold {
			continue
		}
		p := core.ColumnPair{Source: m.SourceColumn, Target: m.TargetColumn}
		if seen[p] {
			continue
		}
		seen[p] = true
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall = float64(tp) / float64(gt.Size())
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1, nil
}

// MeanReciprocalRank returns the MRR of the first correct match in the
// ranked list (0 when no correct match appears).
func MeanReciprocalRank(matches []core.Match, gt *core.GroundTruth) float64 {
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	for i, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// BoxStats are the summary statistics the paper's figures display.
type BoxStats struct {
	Min    float64
	Median float64
	Max    float64
	Mean   float64
	StdDev float64
	N      int
}

// Box computes box statistics over a sample; empty input returns zero stats.
func Box(sample []float64) BoxStats {
	if len(sample) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := len(s)
	b := BoxStats{Min: s[0], Max: s[n-1], N: n}
	if n%2 == 1 {
		b.Median = s[n/2]
	} else {
		b.Median = (s[n/2-1] + s[n/2]) / 2
	}
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	b.Mean = sum / float64(n)
	v := 0.0
	for _, x := range s {
		d := x - b.Mean
		v += d * d
	}
	b.StdDev = math.Sqrt(v / float64(n))
	return b
}

// String renders the stats as the report tables print them.
func (b BoxStats) String() string {
	return fmt.Sprintf("min=%.3f med=%.3f max=%.3f (n=%d)", b.Min, b.Median, b.Max, b.N)
}

package metrics

import (
	"fmt"
	"math"

	"valentine/internal/core"
)

// PrecisionAtK computes precision among the top-k ranked matches.
func PrecisionAtK(matches []core.Match, gt *core.GroundTruth, k int) (float64, error) {
	if gt.Size() == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	if k <= 0 {
		return 0, fmt.Errorf("metrics: k must be positive, got %d", k)
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	if len(sorted) == 0 {
		return 0, nil
	}
	hits := 0
	for _, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// RecallAtK computes recall among the top-k ranked matches.
func RecallAtK(matches []core.Match, gt *core.GroundTruth, k int) (float64, error) {
	if gt.Size() == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	if k <= 0 {
		return 0, fmt.Errorf("metrics: k must be positive, got %d", k)
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	hits := 0
	for _, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			hits++
		}
	}
	return float64(hits) / float64(gt.Size()), nil
}

// AveragePrecision computes AP: the mean of precision@rank over the ranks
// of the relevant matches, normalized by |GT| (missing relevants count 0).
func AveragePrecision(matches []core.Match, gt *core.GroundTruth) (float64, error) {
	if gt.Size() == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	hits := 0
	sum := 0.0
	for i, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(gt.Size()), nil
}

// NDCGAtK computes normalized discounted cumulative gain at k with binary
// relevance (a match is relevant iff it is in the ground truth).
func NDCGAtK(matches []core.Match, gt *core.GroundTruth, k int) (float64, error) {
	if gt.Size() == 0 {
		return 0, fmt.Errorf("metrics: empty ground truth")
	}
	if k <= 0 {
		return 0, fmt.Errorf("metrics: k must be positive, got %d", k)
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	dcg := 0.0
	for i, m := range sorted {
		if gt.Contains(m.SourceColumn, m.TargetColumn) {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := gt.Size()
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0, nil
	}
	return dcg / ideal, nil
}

// RecallCurve returns Recall@k for k = 1..maxK — the series behind
// recall-at-rank plots.
func RecallCurve(matches []core.Match, gt *core.GroundTruth, maxK int) ([]float64, error) {
	if gt.Size() == 0 {
		return nil, fmt.Errorf("metrics: empty ground truth")
	}
	if maxK <= 0 {
		return nil, fmt.Errorf("metrics: maxK must be positive")
	}
	sorted := append([]core.Match(nil), matches...)
	core.SortMatches(sorted)
	out := make([]float64, maxK)
	hits := 0
	for k := 1; k <= maxK; k++ {
		if k-1 < len(sorted) {
			m := sorted[k-1]
			if gt.Contains(m.SourceColumn, m.TargetColumn) {
				hits++
			}
		}
		out[k-1] = float64(hits) / float64(gt.Size())
	}
	return out, nil
}

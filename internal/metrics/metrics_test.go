package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"valentine/internal/core"
)

func gt2() *core.GroundTruth {
	return core.NewGroundTruth(
		core.ColumnPair{Source: "a", Target: "x"},
		core.ColumnPair{Source: "b", Target: "y"},
	)
}

func TestRecallAtGroundTruthPerfect(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.8},
		{SourceColumn: "a", TargetColumn: "y", Score: 0.1},
	}
	r, err := RecallAtGroundTruth(ms, gt2())
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("recall = %v, want 1", r)
	}
}

func TestRecallAtGroundTruthHalf(t *testing.T) {
	// one correct match ranked first, one incorrect ranked second; the
	// second correct match falls outside top-k
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "y", Score: 0.8},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.7},
	}
	r, err := RecallAtGroundTruth(ms, gt2())
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Fatalf("recall = %v, want 0.5", r)
	}
}

func TestRecallEmptyMatchesAndGT(t *testing.T) {
	r, err := RecallAtGroundTruth(nil, gt2())
	if err != nil || r != 0 {
		t.Fatalf("no matches: r=%v err=%v", r, err)
	}
	if _, err := RecallAtGroundTruth(nil, core.NewGroundTruth()); err == nil {
		t.Error("empty GT should error")
	}
}

func TestRecallDoesNotMutateInput(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "b", TargetColumn: "y", Score: 0.1},
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
	}
	if _, err := RecallAtGroundTruth(ms, gt2()); err != nil {
		t.Fatal(err)
	}
	if ms[0].SourceColumn != "b" {
		t.Error("input slice was reordered")
	}
}

func TestPrecisionRecallAtThreshold(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9}, // TP
		{SourceColumn: "a", TargetColumn: "y", Score: 0.8}, // FP
		{SourceColumn: "b", TargetColumn: "y", Score: 0.2}, // below threshold
	}
	p, r, f1, err := PrecisionRecallAtThreshold(ms, gt2(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 || r != 0.5 {
		t.Fatalf("p=%v r=%v, want 0.5/0.5", p, r)
	}
	if math.Abs(f1-0.5) > 1e-12 {
		t.Fatalf("f1=%v", f1)
	}
	if _, _, _, err := PrecisionRecallAtThreshold(ms, core.NewGroundTruth(), 0.5); err == nil {
		t.Error("empty GT should error")
	}
}

func TestPrecisionDedupsPairs(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "x", Score: 0.8}, // duplicate pair
	}
	p, r, _, err := PrecisionRecallAtThreshold(ms, gt2(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 || r != 0.5 {
		t.Fatalf("dedup failed: p=%v r=%v", p, r)
	}
}

func TestMRR(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "q", TargetColumn: "q", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "x", Score: 0.8},
	}
	if got := MeanReciprocalRank(ms, gt2()); got != 0.5 {
		t.Fatalf("MRR = %v, want 0.5", got)
	}
	if got := MeanReciprocalRank(nil, gt2()); got != 0 {
		t.Fatalf("empty MRR = %v", got)
	}
}

func TestBox(t *testing.T) {
	b := Box([]float64{0.2, 0.8, 0.4, 0.6})
	if b.Min != 0.2 || b.Max != 0.8 || b.Median != 0.5 || b.N != 4 {
		t.Fatalf("Box = %+v", b)
	}
	if math.Abs(b.Mean-0.5) > 1e-12 {
		t.Fatalf("Mean = %v", b.Mean)
	}
	odd := Box([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Box(nil)
	if empty.N != 0 || empty.Median != 0 {
		t.Fatalf("empty Box = %+v", empty)
	}
	if s := b.String(); s != "min=0.200 med=0.500 max=0.800 (n=4)" {
		t.Fatalf("String = %q", s)
	}
}

// Property: recall is always within [0,1] and monotone in added correct
// matches at the top.
func TestRecallRangeProperty(t *testing.T) {
	f := func(scores []float64) bool {
		gt := gt2()
		var ms []core.Match
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			col := "a"
			tgt := "q"
			if i%3 == 0 {
				tgt = "x"
			}
			ms = append(ms, core.Match{SourceColumn: col, TargetColumn: tgt, Score: s})
		}
		r, err := RecallAtGroundTruth(ms, gt)
		return err == nil && r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Box statistics are ordered Min ≤ Median ≤ Max and Mean within.
func TestBoxOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, len(raw))
		for i, r := range raw {
			s[i] = float64(r) / 255
		}
		b := Box(s)
		return b.Min <= b.Median && b.Median <= b.Max && b.Mean >= b.Min && b.Mean <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

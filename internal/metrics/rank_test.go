package metrics

import (
	"math"
	"reflect"
	"testing"

	"valentine/internal/core"
)

// ranked fixture: relevant at ranks 1 and 3 of 4; GT size 2.
func rankedFixture() ([]core.Match, *core.GroundTruth) {
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9}, // relevant
		{SourceColumn: "a", TargetColumn: "q", Score: 0.8},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.7}, // relevant
		{SourceColumn: "c", TargetColumn: "q", Score: 0.6},
	}
	gt := core.NewGroundTruth(
		core.ColumnPair{Source: "a", Target: "x"},
		core.ColumnPair{Source: "b", Target: "y"},
	)
	return ms, gt
}

func TestPrecisionRecallAtK(t *testing.T) {
	ms, gt := rankedFixture()
	p1, err := PrecisionAtK(ms, gt, 1)
	if err != nil || p1 != 1 {
		t.Fatalf("P@1 = %v, %v", p1, err)
	}
	p3, _ := PrecisionAtK(ms, gt, 3)
	if math.Abs(p3-2.0/3) > 1e-12 {
		t.Fatalf("P@3 = %v", p3)
	}
	r1, _ := RecallAtK(ms, gt, 1)
	if r1 != 0.5 {
		t.Fatalf("R@1 = %v", r1)
	}
	r3, _ := RecallAtK(ms, gt, 3)
	if r3 != 1 {
		t.Fatalf("R@3 = %v", r3)
	}
	// k beyond list length
	r9, _ := RecallAtK(ms, gt, 9)
	if r9 != 1 {
		t.Fatalf("R@9 = %v", r9)
	}
	if _, err := PrecisionAtK(ms, gt, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := RecallAtK(ms, core.NewGroundTruth(), 1); err == nil {
		t.Error("empty GT should error")
	}
}

func TestAveragePrecision(t *testing.T) {
	ms, gt := rankedFixture()
	ap, err := AveragePrecision(ms, gt)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 + 2.0/3) / 2
	if math.Abs(ap-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
	perfect := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.8},
	}
	ap2, _ := AveragePrecision(perfect, gt)
	if ap2 != 1 {
		t.Fatalf("perfect AP = %v", ap2)
	}
	if _, err := AveragePrecision(nil, core.NewGroundTruth()); err == nil {
		t.Error("empty GT should error")
	}
}

func TestNDCG(t *testing.T) {
	ms, gt := rankedFixture()
	n2, err := NDCGAtK(ms, gt, 2)
	if err != nil {
		t.Fatal(err)
	}
	// DCG = 1/log2(2) = 1; IDCG = 1/log2(2)+1/log2(3)
	want := 1.0 / (1 + 1/math.Log2(3))
	if math.Abs(n2-want) > 1e-12 {
		t.Fatalf("NDCG@2 = %v, want %v", n2, want)
	}
	perfect := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.8},
	}
	n, _ := NDCGAtK(perfect, gt, 2)
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", n)
	}
	if _, err := NDCGAtK(ms, gt, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestRecallCurve(t *testing.T) {
	ms, gt := rankedFixture()
	curve, err := RecallCurve(ms, gt, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.5, 1, 1}
	if !reflect.DeepEqual(curve, want) {
		t.Fatalf("curve = %v, want %v", curve, want)
	}
	// curve is monotone non-decreasing by construction
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("curve decreased")
		}
	}
	if _, err := RecallCurve(ms, gt, 0); err == nil {
		t.Error("maxK=0 should error")
	}
	if _, err := RecallCurve(ms, core.NewGroundTruth(), 3); err == nil {
		t.Error("empty GT should error")
	}
}

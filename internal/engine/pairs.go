package engine

import (
	"context"
	"sync/atomic"
	"time"

	"valentine/internal/core"
	"valentine/internal/profile"
)

// ScorePairs executes the score and rank stages of a pair-matching pipeline:
// the cross product of source × target columns is fanned out over the worker
// pool one source row at a time, merged back in row order, and ranked with
// core.SortMatches — exactly the output of the sequential nested loop the
// matchers used before the engine existed, at any parallelism level.
//
// score is called for each (source column i, target column j) pair and
// returns the pair's score plus whether to emit it; pairs a matcher's accept
// threshold cuts return emit=false and are counted as pruned. score must be
// safe for concurrent calls and depend only on (i, j) — never on call order.
//
// Cancellation is honored between rows: once ctx is done no further row
// starts and ScorePairs returns ctx.Err().
func ScorePairs(ctx context.Context, sp, tp *profile.TableProfile, score func(i, j int) (float64, bool)) ([]core.Match, error) {
	source, target := sp.Table(), tp.Table()
	nSrc, nTgt := len(source.Columns), len(target.Columns)
	stats := StatsFrom(ctx)
	stats.AddCandidates(int64(nSrc) * int64(nTgt))

	rows := make([][]core.Match, nSrc)
	var emitted, pruned atomic.Int64
	start := time.Now()
	err := Map(ctx, OptionsFrom(ctx).Workers(), nSrc, func(i int) error {
		row := make([]core.Match, 0, nTgt)
		for j := 0; j < nTgt; j++ {
			s, emit := score(i, j)
			if !emit {
				pruned.Add(1)
				continue
			}
			row = append(row, core.Match{
				SourceTable:  source.Name,
				SourceColumn: source.Columns[i].Name,
				TargetTable:  target.Name,
				TargetColumn: target.Columns[j].Name,
				Score:        s,
			})
		}
		emitted.Add(int64(len(row)))
		rows[i] = row
		return nil
	})
	stats.Observe(StageScore, time.Since(start))
	stats.AddScored(emitted.Load())
	stats.AddPruned(pruned.Load())
	if err != nil {
		return nil, err
	}
	out := make([]core.Match, 0, emitted.Load())
	for _, row := range rows {
		out = append(out, row...)
	}
	stats.Timed(StageRank, func() { core.SortMatches(out) })
	return out, nil
}

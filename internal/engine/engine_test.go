package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"valentine/internal/profile"
	"valentine/internal/table"
)

func TestMapWritesEverySlot(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			n := 100
			out := make([]int, n)
			err := Map(context.Background(), workers, n, func(i int) error {
				out[i] = i * i
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("slot %d = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := Map(ctx, 4, 50, func(i int) error {
		ran++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d units ran under a pre-canceled context", ran)
	}
}

func TestMapDeadlineAbandonsPartialWork(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make([]bool, 1000)
	start := time.Now()
	err := Map(ctx, 2, len(done), func(i int) error {
		time.Sleep(time.Millisecond)
		done[i] = true
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The 1000-unit workload would take ~500ms at 2 workers; expiry must
	// abandon it long before that.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("Map returned after %v; deadline was 20ms", elapsed)
	}
	completed := 0
	for _, d := range done {
		if d {
			completed++
		}
	}
	if completed == len(done) {
		t.Fatal("every unit completed despite the deadline")
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		err := Map(context.Background(), workers, 40, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
	}
}

func TestOptionsStartAppliesDeadline(t *testing.T) {
	ctx, cancel := Options{Deadline: time.Millisecond}.Start(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("Start did not apply a deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("deadline never fired")
	}
	if OptionsFrom(ctx).Deadline != time.Millisecond {
		t.Fatal("Start did not install options on the context")
	}
}

func TestOptionsWorkersDefault(t *testing.T) {
	if w := (Options{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := (Options{Parallelism: 3}).Workers(); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
}

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.AddCandidates(5)
	s.AddPruned(2)
	s.AddScored(3)
	s.Observe(StageScore, time.Second)
	ran := false
	s.Timed(StageRank, func() { ran = true })
	if !ran {
		t.Fatal("nil Stats.Timed did not run fn")
	}
	if snap := s.Snapshot(); snap.Candidates != 0 || snap.Scored != 0 || snap.Matchers != nil {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	if s.Matcher("x") != nil {
		t.Fatal("nil Stats.Matcher must return nil")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	ctx, s := WithStats(context.Background())
	if StatsFrom(ctx) != s {
		t.Fatal("StatsFrom did not return the attached collector")
	}
	s.AddCandidates(10)
	s.AddPruned(4)
	s.AddScored(6)
	s.Observe(StageGenerate, 2*time.Second)
	snap := s.Snapshot()
	if snap.Candidates != 10 || snap.Pruned != 4 || snap.Scored != 6 || snap.Generate != 2*time.Second {
		t.Fatalf("snapshot = %+v", snap)
	}
	if StatsFrom(context.Background()) != nil {
		t.Fatal("StatsFrom on a bare context should be nil")
	}
}

// scorePairsFixture builds a small profiled pair with distinctive scores.
func scorePairsFixture() (*profile.TableProfile, *profile.TableProfile) {
	src := &table.Table{Name: "src"}
	tgt := &table.Table{Name: "tgt"}
	for i := 0; i < 7; i++ {
		src.Columns = append(src.Columns, table.Column{
			Name: fmt.Sprintf("s%d", i), Values: []string{"a", "b"},
		})
	}
	for j := 0; j < 5; j++ {
		tgt.Columns = append(tgt.Columns, table.Column{
			Name: fmt.Sprintf("t%d", j), Values: []string{"a", "c"},
		})
	}
	src.RetypeColumns()
	tgt.RetypeColumns()
	return profile.New(src), profile.New(tgt)
}

func TestScorePairsDeterministicAcrossParallelism(t *testing.T) {
	sp, tp := scorePairsFixture()
	score := func(i, j int) (float64, bool) {
		// Distinct score per pair; prune one diagonal to exercise emit=false.
		return float64(i*31+j) / 217, (i+j)%4 != 0
	}
	var baseline []struct {
		s, t  string
		score float64
	}
	for _, par := range []int{1, 4, 16} {
		ctx := WithOptions(context.Background(), Options{Parallelism: par})
		out, err := ScorePairs(ctx, sp, tp, score)
		if err != nil {
			t.Fatal(err)
		}
		if par == 1 {
			for _, m := range out {
				baseline = append(baseline, struct {
					s, t  string
					score float64
				}{m.SourceColumn, m.TargetColumn, m.Score})
			}
			continue
		}
		if len(out) != len(baseline) {
			t.Fatalf("parallelism %d: %d matches, want %d", par, len(out), len(baseline))
		}
		for i, m := range out {
			b := baseline[i]
			if m.SourceColumn != b.s || m.TargetColumn != b.t || m.Score != b.score {
				t.Fatalf("parallelism %d rank %d: got %v, want %v/%v/%v", par, i, m, b.s, b.t, b.score)
			}
		}
	}
}

func TestScorePairsStats(t *testing.T) {
	sp, tp := scorePairsFixture()
	ctx, stats := WithStats(context.Background())
	_, err := ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		return 1, (i+j)%2 == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Candidates != 35 {
		t.Fatalf("candidates = %d, want 35", snap.Candidates)
	}
	if snap.Scored+snap.Pruned != 35 {
		t.Fatalf("scored %d + pruned %d != 35", snap.Scored, snap.Pruned)
	}
	if snap.Pruned != 17 {
		t.Fatalf("pruned = %d, want 17", snap.Pruned)
	}
}

func TestScorePairsCanceled(t *testing.T) {
	sp, tp := scorePairsFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) { return 0, true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Package engine is the suite's unified concurrent execution layer: every
// scoring consumer — the pairwise matchers, the ensemble, the experiment
// runner, discover's re-ranking phase and discovery.Index.Search — routes
// its work through one candidate-generation → prune → score → rank pipeline
// instead of hand-rolling a sequential loop per entry point.
//
// The engine contributes three things to that pipeline:
//
//   - context propagation end-to-end: deadlines and cancellation are honored
//     between scoring units inside a single match call, not just between
//     table pairs (the paper's §IX scaling lesson — query work must be
//     cancellable and bounded to serve heavy traffic);
//   - a bounded worker pool (Options.Parallelism, default GOMAXPROCS) that
//     fans independent scoring units out and merges their results back in
//     unit order, so parallel output is bit-identical to the sequential
//     loop's;
//   - per-stage instrumentation (Stats: candidates generated, pruned,
//     scored, wall time per stage) surfaced by `valentine discover -v` and
//     the benchreport JSON export.
//
// Options and Stats travel on the context — callers install them once at an
// entry point (Options.Start, WithStats) and every layer below picks them up
// without signature churn. Determinism is a hard contract: for any
// parallelism level, every engine helper produces exactly the bytes the
// sequential loop would, enforced by the suite-wide conformance test in
// internal/matchers/suite.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configure how the engine executes scoring work. The zero value
// selects the defaults: GOMAXPROCS parallelism, no deadline.
type Options struct {
	// Parallelism bounds the worker pool fanning scoring units out; zero or
	// negative selects GOMAXPROCS. One worker runs the work inline, exactly
	// as the pre-engine sequential loops did.
	Parallelism int
	// Deadline is the wall-clock budget Start applies to the context; zero
	// means no deadline.
	Deadline time.Duration
}

// Workers resolves the effective worker-pool size.
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Start installs o as the context's ambient engine options and applies its
// deadline, if any. Callers must call the returned cancel function.
func (o Options) Start(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx = WithOptions(ctx, o)
	if o.Deadline > 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return context.WithCancel(ctx)
}

type optionsKey struct{}

// WithOptions returns a context carrying o; every engine helper below it
// resolves its parallelism from the nearest WithOptions.
func WithOptions(ctx context.Context, o Options) context.Context {
	return context.WithValue(ctx, optionsKey{}, o)
}

// OptionsFrom returns the context's engine options (the zero Options when
// none were installed).
func OptionsFrom(ctx context.Context) Options {
	if o, ok := ctx.Value(optionsKey{}).(Options); ok {
		return o
	}
	return Options{}
}

// Map runs fn(i) for every i in [0, n) on a worker pool of the given size
// (zero or negative selects GOMAXPROCS), honoring ctx cancellation between
// units: no new unit starts once ctx is done, and Map then returns ctx.Err().
//
// Units must write their results into caller-owned slots indexed by i — Map
// imposes no output ordering of its own, which is how engine consumers keep
// parallel output bit-identical to the sequential loop. Unit errors never
// abort the run (cancellation does); after all units finish, Map returns the
// error of the lowest-index failed unit — the same error a sequential loop
// would surface first.
func Map(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return firstErr
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
	)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one phase of the engine's scoring pipeline.
type Stage int

// The pipeline stages, in execution order.
const (
	// StageGenerate covers candidate generation: profiling, element/feature
	// construction, LSH probing — everything that enumerates what could be
	// scored.
	StageGenerate Stage = iota
	// StageBound covers admissible upper-bound computation over candidates
	// (the planner cascade's cheap interned-kernel tier that caps what a
	// candidate could possibly score).
	StageBound
	// StagePrune covers cheap filters that cut candidates before full
	// scoring (LSH collision misses, distribution phase-1 sketches,
	// threshold screens, and cascade bound-vs-cutoff cuts).
	StagePrune
	// StageScore covers the full scoring of surviving candidates — the work
	// the pool fans out.
	StageScore
	// StageRank covers merging and ordering the scored results.
	StageRank
	numStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageGenerate:
		return "generate"
	case StageBound:
		return "bound"
	case StagePrune:
		return "prune"
	case StageScore:
		return "score"
	case StageRank:
		return "rank"
	}
	return "unknown"
}

// Stats accumulates per-stage instrumentation across one engine run. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// *Stats is the "not collecting" mode every engine helper tolerates), so
// instrumented code never branches on whether a collector is installed.
type Stats struct {
	candidates atomic.Int64
	bounded    atomic.Int64
	pruned     atomic.Int64
	scored     atomic.Int64
	wall       [numStages]atomic.Int64 // nanoseconds per stage

	matchersMu sync.Mutex
	matchers   map[string]*MatcherStats
}

// MatcherStats accumulates one labelled matcher's cascade counters, so
// prune rates are observable per matcher and not just in aggregate. Like
// Stats, every method is concurrency-safe and nil-safe.
type MatcherStats struct {
	bounded atomic.Int64
	pruned  atomic.Int64
	refined atomic.Int64
}

// AddBounded records n candidates bounded under this matcher's label.
func (m *MatcherStats) AddBounded(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.bounded.Add(n)
}

// AddPruned records n candidates whose bound fell below the cutoff.
func (m *MatcherStats) AddPruned(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.pruned.Add(n)
}

// AddRefined records n candidates refined at full fidelity.
func (m *MatcherStats) AddRefined(n int64) {
	if m == nil || n == 0 {
		return
	}
	m.refined.Add(n)
}

// Matcher returns the per-matcher collector for label, creating it on first
// use. A nil receiver or empty label returns nil (safe to use).
func (s *Stats) Matcher(label string) *MatcherStats {
	if s == nil || label == "" {
		return nil
	}
	s.matchersMu.Lock()
	defer s.matchersMu.Unlock()
	if s.matchers == nil {
		s.matchers = make(map[string]*MatcherStats, 4)
	}
	m, ok := s.matchers[label]
	if !ok {
		m = &MatcherStats{}
		s.matchers[label] = m
	}
	return m
}

// AddCandidates records n generated candidate units.
func (s *Stats) AddCandidates(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.candidates.Add(n)
}

// AddBounded records n candidates whose admissible upper bound was
// computed by a cascade tier.
func (s *Stats) AddBounded(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.bounded.Add(n)
}

// AddPruned records n candidates cut before full scoring.
func (s *Stats) AddPruned(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.pruned.Add(n)
}

// AddScored records n candidates fully scored.
func (s *Stats) AddScored(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.scored.Add(n)
}

// Observe adds one stage's wall-clock time. Concurrent scopes may each
// observe the same stage; the total is accumulated stage time, which can
// exceed elapsed wall time when consumers overlap.
func (s *Stats) Observe(st Stage, d time.Duration) {
	if s == nil || d <= 0 || st < 0 || st >= numStages {
		return
	}
	s.wall[st].Add(int64(d))
}

// Timed runs fn and observes its wall time under st.
func (s *Stats) Timed(st Stage, fn func()) {
	if s == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	s.Observe(st, time.Since(start))
}

// Snapshot is a point-in-time copy of a Stats collector, shaped for display
// and JSON export.
type Snapshot struct {
	// Candidates counts scoring units generated (e.g. column pairs
	// enumerated or nominated by the LSH shards).
	Candidates int64 `json:"candidates"`
	// Bounded counts units whose admissible upper bound was computed by a
	// cascade tier (zero on non-cascade paths).
	Bounded int64 `json:"bounded"`
	// Pruned counts units cut before full scoring.
	Pruned int64 `json:"pruned"`
	// Scored counts units fully scored.
	Scored int64 `json:"scored"`
	// Per-stage accumulated wall time.
	Generate time.Duration `json:"generate_ns"`
	Bound    time.Duration `json:"bound_ns"`
	Prune    time.Duration `json:"prune_ns"`
	Score    time.Duration `json:"score_ns"`
	Rank     time.Duration `json:"rank_ns"`
	// Matchers breaks the cascade counters down per matcher label (absent
	// when no labelled cascade ran).
	Matchers map[string]MatcherSnapshot `json:"matchers,omitempty"`
}

// MatcherSnapshot is one matcher's cascade counters: candidates bounded,
// candidates pruned by the bound-vs-cutoff check, and candidates refined at
// full fidelity.
type MatcherSnapshot struct {
	Bounded int64 `json:"bounded"`
	Pruned  int64 `json:"pruned"`
	Refined int64 `json:"refined"`
}

// Merge accumulates other into sn (the server's cross-request aggregation).
func (sn *Snapshot) Merge(other Snapshot) {
	sn.Candidates += other.Candidates
	sn.Bounded += other.Bounded
	sn.Pruned += other.Pruned
	sn.Scored += other.Scored
	sn.Generate += other.Generate
	sn.Bound += other.Bound
	sn.Prune += other.Prune
	sn.Score += other.Score
	sn.Rank += other.Rank
	if len(other.Matchers) > 0 && sn.Matchers == nil {
		sn.Matchers = make(map[string]MatcherSnapshot, len(other.Matchers))
	}
	for label, ms := range other.Matchers {
		agg := sn.Matchers[label]
		agg.Bounded += ms.Bounded
		agg.Pruned += ms.Pruned
		agg.Refined += ms.Refined
		sn.Matchers[label] = agg
	}
}

// Snapshot returns the collector's current totals (the zero Snapshot for a
// nil receiver).
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	sn := Snapshot{
		Candidates: s.candidates.Load(),
		Bounded:    s.bounded.Load(),
		Pruned:     s.pruned.Load(),
		Scored:     s.scored.Load(),
		Generate:   time.Duration(s.wall[StageGenerate].Load()),
		Bound:      time.Duration(s.wall[StageBound].Load()),
		Prune:      time.Duration(s.wall[StagePrune].Load()),
		Score:      time.Duration(s.wall[StageScore].Load()),
		Rank:       time.Duration(s.wall[StageRank].Load()),
	}
	s.matchersMu.Lock()
	if len(s.matchers) > 0 {
		sn.Matchers = make(map[string]MatcherSnapshot, len(s.matchers))
		for label, m := range s.matchers {
			sn.Matchers[label] = MatcherSnapshot{
				Bounded: m.bounded.Load(),
				Pruned:  m.pruned.Load(),
				Refined: m.refined.Load(),
			}
		}
	}
	s.matchersMu.Unlock()
	return sn
}

// String renders the snapshot as one human-readable line (discover -v),
// with per-matcher cascade counters appended in label order when present.
func (sn Snapshot) String() string {
	out := fmt.Sprintf(
		"candidates=%d bounded=%d pruned=%d scored=%d | generate=%s bound=%s prune=%s score=%s rank=%s",
		sn.Candidates, sn.Bounded, sn.Pruned, sn.Scored,
		sn.Generate.Round(time.Microsecond), sn.Bound.Round(time.Microsecond),
		sn.Prune.Round(time.Microsecond),
		sn.Score.Round(time.Microsecond), sn.Rank.Round(time.Microsecond))
	if len(sn.Matchers) == 0 {
		return out
	}
	labels := make([]string, 0, len(sn.Matchers))
	for label := range sn.Matchers {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var b strings.Builder
	b.WriteString(out)
	for _, label := range labels {
		ms := sn.Matchers[label]
		fmt.Fprintf(&b, " | %s bounded=%d pruned=%d refined=%d",
			label, ms.Bounded, ms.Pruned, ms.Refined)
	}
	return b.String()
}

type statsKey struct{}

// WithStats attaches a fresh Stats collector to the context and returns
// both; every engine-routed consumer below records into it.
func WithStats(ctx context.Context) (context.Context, *Stats) {
	s := &Stats{}
	return context.WithValue(ctx, statsKey{}, s), s
}

// StatsFrom returns the context's Stats collector, or nil when none is
// attached (nil is safe to use — every method no-ops).
func StatsFrom(ctx context.Context) *Stats {
	if s, ok := ctx.Value(statsKey{}).(*Stats); ok {
		return s
	}
	return nil
}

package emd

import "math"

// flow is a min-cost max-flow network using successive shortest paths with
// Bellman-Ford (costs may not be reduced; graphs here are small bipartite
// transportation networks, so SPFA-style relaxation is fast enough).
type flow struct {
	n     int
	head  []int
	next  []int
	to    []int
	cap   []int64
	cost  []float64
	edges int
}

func newFlow(n int) *flow {
	f := &flow{n: n, head: make([]int, n)}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

func (f *flow) addEdge(u, v int, c int64, w float64) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.cost = append(f.cost, w)
	f.next = append(f.next, f.head[u])
	f.head[u] = f.edges
	f.edges++
	// reverse edge
	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.cost = append(f.cost, -w)
	f.next = append(f.next, f.head[v])
	f.head[v] = f.edges
	f.edges++
}

// minCostMaxFlow pushes as much flow as possible from s to t, minimizing
// total cost. Returns (total cost, total flow).
func (f *flow) minCostMaxFlow(s, t int) (float64, int64) {
	var totalCost float64
	var totalFlow int64
	dist := make([]float64, f.n)
	inQueue := make([]bool, f.n)
	prevEdge := make([]int, f.n)
	for {
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		inQueue[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for e := f.head[u]; e != -1; e = f.next[e] {
				if f.cap[e] <= 0 {
					continue
				}
				v := f.to[e]
				nd := dist[u] + f.cost[e]
				if nd < dist[v]-1e-12 {
					dist[v] = nd
					prevEdge[v] = e
					if !inQueue[v] {
						queue = append(queue, v)
						inQueue[v] = true
					}
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break
		}
		// find bottleneck
		push := int64(math.MaxInt64)
		for v := t; v != s; {
			e := prevEdge[v]
			if f.cap[e] < push {
				push = f.cap[e]
			}
			v = f.to[e^1]
		}
		for v := t; v != s; {
			e := prevEdge[v]
			f.cap[e] -= push
			f.cap[e^1] += push
			v = f.to[e^1]
		}
		totalFlow += push
		totalCost += float64(push) * dist[t]
	}
	return totalCost, totalFlow
}

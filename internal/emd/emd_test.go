package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSamples1DIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Samples1D(a, a); got != 0 {
		t.Fatalf("identical samples EMD = %v, want 0", got)
	}
}

func TestSamples1DShift(t *testing.T) {
	a := []float64{0, 1, 2}
	b := []float64{5, 6, 7}
	if got := Samples1D(a, b); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("shifted EMD = %v, want 5", got)
	}
}

func TestSamples1DUnequalLengths(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1}
	if got := Samples1D(a, b); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("EMD = %v, want 1", got)
	}
	// order invariance
	if got1, got2 := Samples1D(a, b), Samples1D(b, a); !almostEqual(got1, got2, 1e-12) {
		t.Fatalf("asymmetric: %v vs %v", got1, got2)
	}
}

func TestSamples1DEmpty(t *testing.T) {
	if got := Samples1D(nil, []float64{1}); !math.IsInf(got, 1) {
		t.Fatalf("empty should be +Inf, got %v", got)
	}
}

func TestHistogram(t *testing.T) {
	pos := []float64{0, 1, 2}
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	got, err := Histogram(p, q, pos)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Fatalf("histogram EMD = %v, want 2", got)
	}
}

func TestHistogramNormalizes(t *testing.T) {
	pos := []float64{0, 1}
	got, err := Histogram([]float64{2, 2}, []float64{5, 5}, pos)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0, 1e-12) {
		t.Fatalf("same shape different mass EMD = %v, want 0", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := Histogram([]float64{1}, []float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Histogram(nil, nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Histogram([]float64{-1, 2}, []float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("negative mass should fail")
	}
	if _, err := Histogram([]float64{0, 0}, []float64{1, 0}, []float64{0, 1}); err == nil {
		t.Error("zero mass should fail")
	}
}

func TestTransportMatchesClosedForm(t *testing.T) {
	// Uniform mass on points 0,1,2 vs 5,6,7 with |x−y| cost: EMD = 5.
	supply := []float64{1, 1, 1}
	demand := []float64{1, 1, 1}
	a := []float64{0, 1, 2}
	b := []float64{5, 6, 7}
	cost := make([][]float64, 3)
	for i := range cost {
		cost[i] = make([]float64, 3)
		for j := range cost[i] {
			cost[i][j] = math.Abs(a[i] - b[j])
		}
	}
	got, err := Transport(supply, demand, cost)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5, 1e-6) {
		t.Fatalf("Transport = %v, want 5", got)
	}
}

func TestTransportWeighted(t *testing.T) {
	// 2/3 of mass at 0, 1/3 at 3; demand all at 0. EMD = 1.
	got, err := Transport([]float64{2, 1}, []float64{1}, [][]float64{{0}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1, 1e-5) {
		t.Fatalf("Transport = %v, want 1", got)
	}
}

func TestTransportErrors(t *testing.T) {
	if _, err := Transport(nil, []float64{1}, nil); err == nil {
		t.Error("empty supply should fail")
	}
	if _, err := Transport([]float64{1}, []float64{1}, [][]float64{}); err == nil {
		t.Error("bad cost shape should fail")
	}
	if _, err := Transport([]float64{1}, []float64{1}, [][]float64{{1, 2}}); err == nil {
		t.Error("bad cost row should fail")
	}
	if _, err := Transport([]float64{-1}, []float64{1}, [][]float64{{0}}); err == nil {
		t.Error("negative supply should fail")
	}
	if _, err := Transport([]float64{0}, []float64{1}, [][]float64{{0}}); err == nil {
		t.Error("zero mass should fail")
	}
}

// Property: Transport on 1-D point sets with |·| cost agrees with the
// closed-form Samples1D.
func TestTransportAgreesWithClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() * 10
			b[i] = rng.Float64() * 10
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Abs(a[i] - b[j])
			}
		}
		closed := Samples1D(a, b)
		transported, err := Transport(w, w, cost)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(closed, transported, 1e-4) {
			t.Fatalf("trial %d: closed %v vs transport %v (a=%v b=%v)", trial, closed, transported, a, b)
		}
	}
}

// Metric-ish properties of Samples1D: symmetry and identity.
func TestSamples1DProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a := make([]float64, half)
		b := make([]float64, len(raw)-half)
		for i := 0; i < half; i++ {
			a[i] = float64(raw[i])
		}
		for i := half; i < len(raw); i++ {
			b[i-half] = float64(raw[i])
		}
		d1, d2 := Samples1D(a, b), Samples1D(b, a)
		return almostEqual(d1, d2, 1e-9) && Samples1D(a, a) == 0 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package emd computes the Earth Mover's Distance between value
// distributions, the core signal of the Distribution-based matcher (Zhang
// et al., SIGMOD 2011).
//
// Three granularities are provided: an exact closed form for 1-D sample
// sets, a CDF-based form for aligned histograms, and a general
// transportation solver (min-cost flow with successive shortest paths) for
// arbitrary weighted point sets with an explicit cost matrix.
package emd

import (
	"fmt"
	"math"
	"sort"
)

// Samples1D returns the exact EMD between two 1-D sample multisets under
// unit mass per distribution (each sample carries weight 1/len). For sorted
// samples of equal length n this is Σ|aᵢ−bᵢ|/n; unequal lengths are handled
// by integrating the difference of empirical CDFs.
func Samples1D(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	if len(as) == len(bs) {
		sum := 0.0
		for i := range as {
			sum += math.Abs(as[i] - bs[i])
		}
		return sum / float64(len(as))
	}
	// Integrate |F_a(x) − F_b(x)| dx over the merged support.
	points := make([]float64, 0, len(as)+len(bs))
	points = append(points, as...)
	points = append(points, bs...)
	sort.Float64s(points)
	total := 0.0
	i, j := 0, 0
	for k := 0; k+1 < len(points); k++ {
		x, next := points[k], points[k+1]
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		total += math.Abs(fa-fb) * (next - x)
	}
	return total
}

// Histogram returns the EMD between two histograms with shared bin
// positions: Σ |cumP − cumQ| · Δposition. Both histograms are normalized to
// unit mass first. len(p) == len(q) == len(positions) is required.
func Histogram(p, q, positions []float64) (float64, error) {
	if len(p) != len(q) || len(p) != len(positions) {
		return 0, fmt.Errorf("emd: histogram length mismatch: %d vs %d vs %d", len(p), len(q), len(positions))
	}
	if len(p) == 0 {
		return 0, fmt.Errorf("emd: empty histograms")
	}
	sp, sq := 0.0, 0.0
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return 0, fmt.Errorf("emd: negative mass at bin %d", i)
		}
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return 0, fmt.Errorf("emd: zero-mass histogram")
	}
	cum := 0.0
	total := 0.0
	for i := 0; i+1 < len(p); i++ {
		cum += p[i]/sp - q[i]/sq
		total += math.Abs(cum) * math.Abs(positions[i+1]-positions[i])
	}
	return total, nil
}

// Transport returns the EMD between weighted point sets with an explicit
// ground-distance matrix cost[i][j] (cost of moving one unit of mass from
// supply point i to demand point j). Weights are normalized to unit total
// mass on each side. Solved exactly via min-cost max-flow on a scaled
// integer network.
func Transport(supply, demand []float64, cost [][]float64) (float64, error) {
	n, m := len(supply), len(demand)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("emd: empty point set")
	}
	if len(cost) != n {
		return 0, fmt.Errorf("emd: cost has %d rows, want %d", len(cost), n)
	}
	for i := range cost {
		if len(cost[i]) != m {
			return 0, fmt.Errorf("emd: cost row %d has %d cols, want %d", i, len(cost[i]), m)
		}
	}
	ssum, dsum := 0.0, 0.0
	for _, w := range supply {
		if w < 0 {
			return 0, fmt.Errorf("emd: negative supply")
		}
		ssum += w
	}
	for _, w := range demand {
		if w < 0 {
			return 0, fmt.Errorf("emd: negative demand")
		}
		dsum += w
	}
	if ssum == 0 || dsum == 0 {
		return 0, fmt.Errorf("emd: zero total mass")
	}

	// Scale weights to integers (resolution 1e-6 of total mass).
	const scale = 1_000_000
	si := scaleWeights(supply, ssum, scale)
	di := scaleWeights(demand, dsum, scale)

	f := newFlow(n + m + 2)
	src, sink := n+m, n+m+1
	for i, w := range si {
		f.addEdge(src, i, w, 0)
	}
	for j, w := range di {
		f.addEdge(n+j, sink, w, 0)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			f.addEdge(i, n+j, scale, cost[i][j])
		}
	}
	totalCost, flow := f.minCostMaxFlow(src, sink)
	if flow == 0 {
		return 0, fmt.Errorf("emd: no feasible flow")
	}
	return totalCost / float64(flow), nil
}

func scaleWeights(w []float64, sum float64, scale int64) []int64 {
	out := make([]int64, len(w))
	var acc int64
	for i, x := range w {
		out[i] = int64(math.Round(x / sum * float64(scale)))
		acc += out[i]
	}
	// Fix rounding drift on the largest weight so both sides carry equal mass.
	if acc != scale && len(out) > 0 {
		maxI := 0
		for i := range out {
			if out[i] > out[maxI] {
				maxI = i
			}
		}
		out[maxI] += scale - acc
	}
	return out
}

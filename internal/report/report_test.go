package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
)

func fastCfg() Config {
	return Config{
		Rows:    40,
		Seeds:   1,
		Sources: []string{"TPC-DI"},
		Methods: []string{experiment.MethodComaSchema, experiment.MethodJaccardLev},
	}
}

func TestTableIAndII(t *testing.T) {
	t1 := TableI()
	if !strings.Contains(t1, "coma-schema") || !strings.Contains(t1, "Embeddings") {
		t.Errorf("Table I incomplete:\n%s", t1)
	}
	t2 := TableII()
	if !strings.Contains(t2, "135") {
		t.Errorf("Table II should report 135 configurations:\n%s", t2)
	}
}

func TestFabricatedPairsCount(t *testing.T) {
	pairs, err := FabricatedPairs(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 56 {
		t.Fatalf("pairs = %d, want 56 for one source × one seed", len(pairs))
	}
}

func TestRunFabricatedAndFigures(t *testing.T) {
	rs, err := RunFabricated(context.Background(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2*56 {
		t.Fatalf("results = %d, want 112", len(rs))
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("%s on %s: %v", r.Method, r.Pair, r.Err)
		}
	}
	rows := Figure(rs, []string{experiment.MethodComaSchema}, NoisySchemata)
	if len(rows) != 1 {
		t.Fatal("figure rows")
	}
	for _, s := range core.Scenarios() {
		if rows[0].Boxes[s].N == 0 {
			t.Errorf("scenario %s missing from figure", s)
		}
	}
	out := FormatFigure("Figure 4 — schema-based methods (noisy schemata)", rows)
	if !strings.Contains(out, "coma-schema") {
		t.Errorf("figure format:\n%s", out)
	}
	tv := FormatTableV(rs)
	if !strings.Contains(tv, "coma-schema") || !strings.Contains(tv, "jaccard-levenshtein") {
		t.Errorf("Table V format:\n%s", tv)
	}
}

func TestVariantFilters(t *testing.T) {
	r := experiment.Result{Variant: "NS/VI co=50%"}
	if !NoisySchemata(r) || !VerbatimInstances(r) || NoisyInstances(r) {
		t.Error("variant filters wrong")
	}
	r2 := experiment.Result{Variant: "VS/NI 1col ro=50%"}
	if NoisySchemata(r2) || VerbatimInstances(r2) || !NoisyInstances(r2) {
		t.Error("variant filters wrong for VS/NI")
	}
}

func TestRunTableIII(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search")
	}
	cfg := Config{Rows: 30}
	rows, err := RunTableIII(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table III rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Min > r.Stats.Median || r.Stats.Median > r.Stats.Max {
			t.Errorf("unordered stats for %s/%s: %+v", r.Method, r.Param, r.Stats)
		}
	}
	out := FormatTableIII(rows)
	if !strings.Contains(out, "th_accept") || !strings.Contains(out, "theta1") {
		t.Errorf("Table III format:\n%s", out)
	}
}

func TestCuratedFigure7AndTableIV(t *testing.T) {
	cfg := Config{Rows: 40, Methods: []string{experiment.MethodComaSchema, experiment.MethodDistribution}}
	wiki, err := RunCurated(context.Background(), cfg, datagen.WikiData(datagen.Options{Rows: 40}))
	if err != nil {
		t.Fatal(err)
	}
	f7 := FormatFigure7(wiki)
	if !strings.Contains(f7, "unionable") {
		t.Errorf("figure 7:\n%s", f7)
	}
	mag, err := RunCurated(context.Background(), cfg, datagen.Magellan(datagen.Options{Rows: 40}))
	if err != nil {
		t.Fatal(err)
	}
	ing, err := RunCurated(context.Background(), cfg, []core.TablePair{
		datagen.ING1(datagen.Options{Rows: 30}),
		datagen.ING2(datagen.Options{Rows: 30}),
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableIV(mag, ing)
	if len(rows) != 8 {
		t.Fatalf("Table IV rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Method == experiment.MethodComaSchema && r.Magellan < 0.9 {
			t.Errorf("COMA-schema on Magellan = %.3f, expected ≈ 1 (identical column names)", r.Magellan)
		}
	}
	out := FormatTableIV(rows)
	if !strings.Contains(out, "ING#1") {
		t.Errorf("Table IV format:\n%s", out)
	}
}

func TestFormatTableVOrdering(t *testing.T) {
	rs := []experiment.Result{
		{Method: "slow", Runtime: time.Second},
		{Method: "fast", Runtime: time.Millisecond},
	}
	out := FormatTableV(rs)
	if strings.Index(out, "fast") > strings.Index(out, "slow") {
		t.Errorf("Table V should order fastest first:\n%s", out)
	}
}

// Package report regenerates every table and figure of the paper's
// evaluation section from live experiment runs: Table I (capabilities),
// Table II (parameter grids), Table III (parameter sensitivity), Figures
// 4–6 (fabricated-pair effectiveness per method family), Figure 7
// (WikiData), Table IV (Magellan + ING) and Table V (average runtime).
//
// Both cmd/benchreport and the root bench harness drive this package, so
// the printed series stay identical across entry points.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/metrics"
)

// Config sizes a report run. The zero value is usable: a reduced-scale run
// that preserves the paper's comparisons.
type Config struct {
	Rows    int   // rows per generated source table (default 120)
	Seeds   int   // fabrication seeds per source (default 1)
	Workers int   // experiment worker pool (default GOMAXPROCS)
	Seed    int64 // base RNG seed (default 1)
	// Deadline bounds each experiment run's wall-clock time through the
	// engine; zero means no deadline.
	Deadline time.Duration
	// Sources restricts the fabricated dataset sources (default: all three).
	Sources []string
	// Methods restricts the methods (default: all eight).
	Methods []string
}

func (c *Config) defaults() {
	if c.Rows <= 0 {
		c.Rows = 120
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Sources) == 0 {
		c.Sources = datagen.SourceNames()
	}
	if len(c.Methods) == 0 {
		c.Methods = experiment.MethodNames()
	}
}

// FabricatedPairs fabricates the Figure-3 grid for every configured source.
func FabricatedPairs(cfg Config) ([]core.TablePair, error) {
	cfg.defaults()
	var out []core.TablePair
	for _, name := range cfg.Sources {
		src, err := datagen.Source(name, datagen.Options{Rows: cfg.Rows, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		pairs, err := fabrication.GridSeeds(
			fabrication.SourceTable{Name: name, Table: src}, cfg.Seeds, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fabricating %s: %w", name, err)
		}
		out = append(out, pairs...)
	}
	return out, nil
}

// RunFabricated executes the configured methods with quick grids over the
// fabricated pairs — the result set behind Figures 4–6 and Table V.
func RunFabricated(ctx context.Context, cfg Config) ([]experiment.Result, error) {
	cfg.defaults()
	pairs, err := FabricatedPairs(cfg)
	if err != nil {
		return nil, err
	}
	return experiment.Run(ctx, experiment.Spec{
		Registry: experiment.NewRegistry(),
		Grids:    experiment.QuickGrids(),
		Methods:  cfg.Methods,
		Pairs:    pairs,
		Workers:  cfg.Workers,
		Deadline: cfg.Deadline,
	})
}

// --- Table I ---

// TableI renders the matcher × match-type capability matrix.
func TableI() string {
	reg := experiment.NewRegistry()
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — matchers and the match types they cover\n")
	caps := core.AllCapabilities()
	fmt.Fprintf(&b, "%-22s", "Method")
	for _, c := range caps {
		fmt.Fprintf(&b, " %-18s", c)
	}
	b.WriteString("\n")
	for _, m := range experiment.MethodNames() {
		has := make(map[core.Capability]bool)
		for _, c := range reg.Capabilities(m) {
			has[c] = true
		}
		fmt.Fprintf(&b, "%-22s", m)
		for _, c := range caps {
			mark := ""
			if has[c] {
				mark = "x"
			}
			fmt.Fprintf(&b, " %-18s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table II ---

// TableII renders the parameter grids.
func TableII() string {
	grids := experiment.DefaultGrids()
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — parameterization (%d configurations in total; paper: 135)\n",
		experiment.TotalConfigurations(grids))
	for _, m := range experiment.MethodNames() {
		fmt.Fprintf(&b, "%-22s %3d configs", m, len(grids[m]))
		if len(grids[m]) > 0 {
			fmt.Fprintf(&b, "   e.g. {%s}", grids[m][0].Key())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Table III ---

// SensitivityConfig shrinks the grid-search for the Table-III experiment.
type sensitivityGridSpec struct {
	method string
	grid   experiment.Grid
	params []string
}

func sensitivityGrids() []sensitivityGridSpec {
	var cupidGrid experiment.Grid
	for _, lws := range []float64{0, 0.3, 0.6} {
		for _, ws := range []float64{0, 0.3, 0.6} {
			for _, th := range []float64{0.3, 0.5, 0.7} {
				cupidGrid = append(cupidGrid, core.Params{
					"leaf_w_struct": lws, "w_struct": ws, "th_accept": th,
				})
			}
		}
	}
	var distGrid experiment.Grid
	for _, t1 := range []float64{0.1, 0.15, 0.2} {
		for _, t2 := range []float64{0.1, 0.15, 0.2} {
			distGrid = append(distGrid, core.Params{"theta1": t1, "theta2": t2})
		}
	}
	var spGrid experiment.Grid
	for _, sem := range []float64{0.4, 0.5, 0.6} {
		spGrid = append(spGrid, core.Params{
			"sem_threshold": sem, "coh_sem_threshold": 0.3, "minhash_threshold": 0.25,
		})
	}
	var jlGrid experiment.Grid
	for _, th := range []float64{0.4, 0.6, 0.8} {
		jlGrid = append(jlGrid, core.Params{"threshold": th})
	}
	return []sensitivityGridSpec{
		{experiment.MethodCupid, cupidGrid, []string{"leaf_w_struct", "w_struct", "th_accept"}},
		{experiment.MethodDistribution, distGrid, []string{"theta1", "theta2"}},
		{experiment.MethodSemProp, spGrid, []string{"sem_threshold"}},
		{experiment.MethodJaccardLev, jlGrid, []string{"threshold"}},
	}
}

// SensitivityRow is one Table-III line.
type SensitivityRow struct {
	Method string
	Param  string
	Stats  metrics.BoxStats
}

// RunTableIII performs the ceteris-paribus grid search on ChEMBL-fabricated
// pairs (the only source all four methods apply to, per the paper) and
// returns one row per varied parameter.
func RunTableIII(ctx context.Context, cfg Config) ([]SensitivityRow, error) {
	cfg.defaults()
	src := datagen.ChEMBL(datagen.Options{Rows: cfg.Rows, Seed: cfg.Seed})
	pairs, err := fabrication.New(cfg.Seed).Grid(fabrication.SourceTable{Name: "ChEMBL", Table: src})
	if err != nil {
		return nil, err
	}
	reg := experiment.NewRegistry()
	var rows []SensitivityRow
	for _, spec := range sensitivityGrids() {
		rs, err := experiment.Run(ctx, experiment.Spec{
			Registry: reg,
			Grids:    map[string]experiment.Grid{spec.method: spec.grid},
			Methods:  []string{spec.method},
			Pairs:    pairs,
			Workers:  cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range spec.params {
			rows = append(rows, SensitivityRow{
				Method: spec.method,
				Param:  p,
				Stats:  experiment.Sensitivity(rs, spec.method, p),
			})
		}
	}
	return rows, nil
}

// FormatTableIII renders Table III rows.
func FormatTableIII(rows []SensitivityRow) string {
	var b strings.Builder
	b.WriteString("Table III — recall std-dev under ceteris-paribus parameter variation (ChEMBL)\n")
	fmt.Fprintf(&b, "%-22s %-16s %8s %8s %8s\n", "Method", "Parameter", "Min", "Median", "Max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-16s %8.3f %8.3f %8.3f\n",
			r.Method, r.Param, r.Stats.Min, r.Stats.Median, r.Stats.Max)
	}
	return b.String()
}

// --- Figures 4–6 ---

// FigureRow is one method's box stats per scenario.
type FigureRow struct {
	Method string
	Boxes  map[string]metrics.BoxStats // scenario → stats
}

// Figure collects box statistics per scenario for the given methods from a
// fabricated-run result set, keeping only results the filter admits.
func Figure(rs []experiment.Result, methods []string, keep func(experiment.Result) bool) []FigureRow {
	out := make([]FigureRow, 0, len(methods))
	for _, m := range methods {
		out = append(out, FigureRow{Method: m, Boxes: experiment.BoxByScenario(rs, m, keep)})
	}
	return out
}

// NoisySchemata admits fabricated variants with schema noise (Figure 4's
// display choice).
func NoisySchemata(r experiment.Result) bool { return strings.Contains(r.Variant, "NS") }

// VerbatimInstances admits variants without instance noise.
func VerbatimInstances(r experiment.Result) bool { return strings.Contains(r.Variant, "VI") }

// NoisyInstances admits variants with instance noise.
func NoisyInstances(r experiment.Result) bool { return strings.Contains(r.Variant, "NI") }

// FormatFigure renders a figure's series as text.
func FormatFigure(title string, rows []FigureRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	scenarios := core.Scenarios()
	fmt.Fprintf(&b, "%-22s", "Method")
	for _, s := range scenarios {
		fmt.Fprintf(&b, " %-26s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Method)
		for _, s := range scenarios {
			box, ok := r.Boxes[s]
			if !ok || box.N == 0 {
				fmt.Fprintf(&b, " %-26s", "-")
				continue
			}
			fmt.Fprintf(&b, " %.2f/%.2f/%.2f (n=%-3d)    ", box.Min, box.Median, box.Max, box.N)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figure 7 / Table IV ---

// RunCurated executes all methods over a curated pair set and returns mean
// recall per method (and per pair for Figure 7's scenario split).
func RunCurated(ctx context.Context, cfg Config, pairs []core.TablePair) ([]experiment.Result, error) {
	cfg.defaults()
	return experiment.Run(ctx, experiment.Spec{
		Registry: experiment.NewRegistry(),
		Grids:    experiment.QuickGrids(),
		Methods:  cfg.Methods,
		Pairs:    pairs,
		Workers:  cfg.Workers,
		Deadline: cfg.Deadline,
	})
}

// FormatFigure7 renders the WikiData results: recall per method per
// scenario.
func FormatFigure7(rs []experiment.Result) string {
	var b strings.Builder
	b.WriteString("Figure 7 — effectiveness on WikiData (recall@GT)\n")
	scenarios := core.Scenarios()
	fmt.Fprintf(&b, "%-22s", "Method")
	for _, s := range scenarios {
		fmt.Fprintf(&b, " %-22s", s)
	}
	b.WriteString("\n")
	for _, m := range experiment.MethodNames() {
		fmt.Fprintf(&b, "%-22s", m)
		for _, s := range scenarios {
			val := "-"
			for _, r := range rs {
				if r.Method == m && r.Scenario == s && r.Err == nil {
					val = fmt.Sprintf("%.3f", r.Recall)
				}
			}
			fmt.Fprintf(&b, " %-22s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TableIVRow is one method's Table-IV line.
type TableIVRow struct {
	Method   string
	Magellan float64 // mean over the seven pairs
	ING1     float64
	ING2     float64
}

// TableIV computes mean recall on Magellan and the two ING pairs.
func TableIV(magellan, ing []experiment.Result) []TableIVRow {
	var rows []TableIVRow
	for _, m := range experiment.MethodNames() {
		row := TableIVRow{Method: m}
		var magSum float64
		var magN int
		for _, r := range magellan {
			if r.Method != m || r.Err != nil {
				continue
			}
			magSum += r.Recall
			magN++
		}
		if magN > 0 {
			row.Magellan = magSum / float64(magN)
		}
		for _, r := range ing {
			if r.Method != m || r.Err != nil {
				continue
			}
			switch r.Pair {
			case "ing/1":
				row.ING1 = r.Recall
			case "ing/2":
				row.ING2 = r.Recall
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTableIV renders Table IV.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	b.WriteString("Table IV — recall@GT on Magellan and ING data\n")
	fmt.Fprintf(&b, "%-22s %10s %8s %8s\n", "Method", "Magellan", "ING#1", "ING#2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.3f %8.3f %8.3f\n", r.Method, r.Magellan, r.ING1, r.ING2)
	}
	return b.String()
}

// --- Table V ---

// FormatTableV renders average runtime per method, slowest last.
func FormatTableV(rs []experiment.Result) string {
	avg := experiment.AverageRuntime(rs)
	type row struct {
		m string
		d time.Duration
	}
	var rows []row
	for m, d := range avg {
		rows = append(rows, row{m, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d < rows[j].d })
	var b strings.Builder
	b.WriteString("Table V — average runtime per table pair\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12s\n", r.m, r.d.Round(time.Microsecond))
	}
	return b.String()
}

// Package fabrication implements Valentine's dataset-pair fabrication
// process (paper §IV): splitting source tables horizontally and vertically
// with controlled row/column overlap, perturbing schemata and instances,
// and emitting ground truth — producing matching problems for the four
// relatedness scenarios of §III.
package fabrication

import (
	"math"
	"math/rand"
	"strconv"
	"strings"

	"valentine/internal/strutil"
	"valentine/internal/table"
)

// keyboardNeighbors maps each lowercase key to its QWERTY neighbors, used
// to insert realistic typos (paper: "random typos based on keyboard
// proximity").
var keyboardNeighbors = map[rune]string{
	'q': "wa", 'w': "qes", 'e': "wrd", 'r': "etf", 't': "ryg", 'y': "tuh",
	'u': "yij", 'i': "uok", 'o': "ipl", 'p': "ol",
	'a': "qsz", 's': "awdx", 'd': "sefc", 'f': "drgv", 'g': "fthb",
	'h': "gyjn", 'j': "hukm", 'k': "jil", 'l': "kop",
	'z': "asx", 'x': "zsdc", 'c': "xdfv", 'v': "cfgb", 'b': "vghn",
	'n': "bhjm", 'm': "njk",
	'0': "9", '1': "2", '2': "13", '3': "24", '4': "35", '5': "46",
	'6': "57", '7': "68", '8': "79", '9': "80",
}

// Typo injects a single keyboard-proximity typo into s: a random letter is
// replaced by one of its QWERTY neighbors (preserving case). Strings
// without typo-able characters are returned unchanged.
func Typo(s string, rng *rand.Rand) string {
	runes := []rune(s)
	// Collect candidate positions.
	var candidates []int
	for i, r := range runes {
		if _, ok := keyboardNeighbors[toLowerRune(r)]; ok {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return s
	}
	pos := candidates[rng.Intn(len(candidates))]
	orig := runes[pos]
	neighbors := keyboardNeighbors[toLowerRune(orig)]
	repl := rune(neighbors[rng.Intn(len(neighbors))])
	if isUpperRune(orig) {
		repl = toUpperRune(repl)
	}
	runes[pos] = repl
	return string(runes)
}

func toLowerRune(r rune) rune {
	if r >= 'A' && r <= 'Z' {
		return r + ('a' - 'A')
	}
	return r
}

func toUpperRune(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - ('a' - 'A')
	}
	return r
}

func isUpperRune(r rune) bool { return r >= 'A' && r <= 'Z' }

// NoiseInstances perturbs a table's cell values in place following the
// paper's rules: string columns receive keyboard-proximity typos with
// probability rate per cell; numeric columns are perturbed proportionally
// to their value spread (scaled by the column standard deviation). Types
// are re-inferred afterwards.
func NoiseInstances(t *table.Table, rate float64, rng *rand.Rand) {
	for ci := range t.Columns {
		c := &t.Columns[ci]
		if c.IsNumeric() {
			noiseNumericColumn(c, rate, rng)
		} else {
			for vi, v := range c.Values {
				if v == "" || rng.Float64() >= rate {
					continue
				}
				c.Values[vi] = Typo(v, rng)
			}
		}
	}
	t.RetypeColumns()
}

func noiseNumericColumn(c *table.Column, rate float64, rng *rand.Rand) {
	stats := c.Stats()
	scale := stats.StdDev
	if scale == 0 {
		scale = math.Abs(stats.Mean) * 0.1
	}
	if scale == 0 {
		scale = 1
	}
	isInt := c.Type == table.Int
	for vi, v := range c.Values {
		if v == "" || rng.Float64() >= rate {
			continue
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			continue
		}
		x += rng.NormFloat64() * scale * 0.25
		if isInt {
			c.Values[vi] = strconv.FormatInt(int64(math.Round(x)), 10)
		} else {
			c.Values[vi] = strconv.FormatFloat(x, 'g', 8, 64)
		}
	}
}

// SchemaNoiseRule is one of the paper's three column-renaming rules.
type SchemaNoiseRule int

// The three schema-noise transformation rules of §IV.
const (
	// RulePrefixTable prefixes the column with its table name.
	RulePrefixTable SchemaNoiseRule = iota
	// RuleAbbreviate truncates each name token to a 3-letter abbreviation.
	RuleAbbreviate
	// RuleDropVowels removes non-leading vowels.
	RuleDropVowels
)

// ApplyRule rewrites a column name under the rule.
func ApplyRule(rule SchemaNoiseRule, tableName, column string) string {
	switch rule {
	case RulePrefixTable:
		return tableName + "_" + column
	case RuleAbbreviate:
		return strutil.Abbreviate(column, 3)
	default:
		return strutil.DropVowels(column)
	}
}

// NoiseSchema renames every column of t using a rule chosen uniformly per
// column, returning the mapping old → new name. Collisions are resolved by
// appending a numeric suffix so the table stays valid.
func NoiseSchema(t *table.Table, rng *rand.Rand) map[string]string {
	mapping := make(map[string]string, len(t.Columns))
	used := make(map[string]bool, len(t.Columns))
	for i := range t.Columns {
		old := t.Columns[i].Name
		rule := SchemaNoiseRule(rng.Intn(3))
		name := ApplyRule(rule, t.Name, old)
		if name == "" {
			name = old
		}
		base := name
		for n := 2; used[name]; n++ {
			name = base + "_" + strconv.Itoa(n)
		}
		used[name] = true
		t.Columns[i].Name = name
		mapping[old] = name
	}
	return mapping
}

package fabrication

import (
	"os"
	"path/filepath"
	"testing"

	"valentine/internal/core"
)

func TestSaveLoadPairRoundTrip(t *testing.T) {
	f := New(3)
	pair, err := f.Unionable(makeSource(), 0.5, Variant{NoisySchema: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SavePair(dir, pair); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != pair.Name || back.Scenario != pair.Scenario || back.Variant != pair.Variant {
		t.Fatalf("manifest mismatch: %+v vs %+v", back, pair)
	}
	if back.Truth.Size() != pair.Truth.Size() {
		t.Fatalf("GT size %d vs %d", back.Truth.Size(), pair.Truth.Size())
	}
	for _, p := range pair.Truth.Pairs() {
		if !back.Truth.Contains(p.Source, p.Target) {
			t.Fatalf("missing GT pair %v", p)
		}
	}
	if back.Source.NumRows() != pair.Source.NumRows() || back.Target.NumColumns() != pair.Target.NumColumns() {
		t.Fatal("table shapes differ")
	}
}

func TestLoadPairWithoutManifest(t *testing.T) {
	f := New(5)
	pair, err := f.Joinable(makeSource(), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SavePair(dir, pair); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != core.ScenarioCurated {
		t.Fatalf("manifest-less pair scenario = %q", back.Scenario)
	}
}

func TestLoadPairErrors(t *testing.T) {
	if _, err := LoadPair(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	// ground truth referencing a missing column
	f := New(7)
	pair, err := f.Unionable(makeSource(), 0.5, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SavePair(dir, pair); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ground_truth.csv"),
		[]byte("source_column,target_column\nghost,ghost\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPair(dir); err == nil {
		t.Error("dangling GT column should fail")
	}
}

func TestSavePairValidation(t *testing.T) {
	if err := SavePair(t.TempDir(), core.TablePair{}); err == nil {
		t.Error("nil tables should fail")
	}
}

func TestSaveGrid(t *testing.T) {
	f := New(11)
	pairs, err := f.Grid(SourceTable{Name: "src", Table: makeSource()})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	dirs, err := SaveGrid(root, pairs[:5])
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 5 {
		t.Fatalf("dirs = %d", len(dirs))
	}
	back, err := LoadPair(dirs[2])
	if err != nil {
		t.Fatal(err)
	}
	if back.Truth.Size() == 0 {
		t.Fatal("loaded grid pair has no GT")
	}
}

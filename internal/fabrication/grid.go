package fabrication

import (
	"fmt"

	"valentine/internal/core"
	"valentine/internal/table"
)

// Fig. 3 parameter grids.
var (
	// UnionableRowOverlaps are the row-overlap settings of the unionable
	// recipe.
	UnionableRowOverlaps = []float64{0, 0.5, 1.0}
	// ViewUnionableColOverlaps are the column-overlap settings of the
	// view-unionable recipe.
	ViewUnionableColOverlaps = []float64{0.3, 0.5, 0.7}
	// JoinableColOverlaps are the column-overlap settings of the joinable
	// recipes; -1 means "exactly one shared column".
	JoinableColOverlaps = []float64{-1, 0.3, 0.5, 0.7}
	// JoinableRowOverlaps are the row-split settings of the joinable
	// recipes: a pure vertical split (1.0) and a 50%-row-overlap variant.
	JoinableRowOverlaps = []float64{1.0, 0.5}
)

// Grid fabricates the full Figure-3 recipe grid for one source table:
// every scenario × parameter × noise-variant combination. One grid yields
// 12 + 12 + 16 + 16 = 56 pairs.
func (f *Fabricator) Grid(src SourceTable) ([]core.TablePair, error) {
	var out []core.TablePair
	for _, ro := range UnionableRowOverlaps {
		for _, v := range AllVariants() {
			p, err := f.Unionable(src.Table, ro, v)
			if err != nil {
				return nil, fmt.Errorf("unionable(%v,%s): %w", ro, v.Label(), err)
			}
			out = append(out, p)
		}
	}
	for _, co := range ViewUnionableColOverlaps {
		for _, v := range AllVariants() {
			p, err := f.ViewUnionable(src.Table, co, v)
			if err != nil {
				return nil, fmt.Errorf("view-unionable(%v,%s): %w", co, v.Label(), err)
			}
			out = append(out, p)
		}
	}
	for _, co := range JoinableColOverlaps {
		for _, ro := range JoinableRowOverlaps {
			for _, ns := range []bool{false, true} {
				p, err := f.Joinable(src.Table, co, ro, ns)
				if err != nil {
					return nil, fmt.Errorf("joinable(%v,%v,%v): %w", co, ro, ns, err)
				}
				out = append(out, p)
				sp, err := f.SemanticallyJoinable(src.Table, co, ro, ns)
				if err != nil {
					return nil, fmt.Errorf("sem-joinable(%v,%v,%v): %w", co, ro, ns, err)
				}
				out = append(out, sp)
			}
		}
	}
	return out, nil
}

// SourceTable names a dataset source for fabrication.
type SourceTable struct {
	Name  string
	Table *table.Table
}

// GridSeeds fabricates the grid with nSeeds independent fabricator seeds,
// approximating the paper's 180-pairs-per-source volume (3 seeds × 56 pairs
// = 168 pairs; the paper reports 180).
func GridSeeds(src SourceTable, nSeeds int, baseSeed int64) ([]core.TablePair, error) {
	var out []core.TablePair
	for s := 0; s < nSeeds; s++ {
		f := New(baseSeed + int64(s)*7919)
		pairs, err := f.Grid(src)
		if err != nil {
			return nil, err
		}
		for i := range pairs {
			pairs[i].Name = fmt.Sprintf("%s#s%d", pairs[i].Name, s)
		}
		out = append(out, pairs...)
	}
	return out, nil
}

package fabrication

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"valentine/internal/core"
	"valentine/internal/table"
)

// pairManifest is the metadata sidecar stored next to a saved pair.
type pairManifest struct {
	Name     string `json:"name"`
	Scenario string `json:"scenario"`
	Variant  string `json:"variant"`
}

// SavePair writes a fabricated pair into dir as source.csv, target.csv,
// ground_truth.csv and manifest.json — the publishable artifact layout the
// original Valentine repository uses for its dataset pairs.
func SavePair(dir string, pair core.TablePair) error {
	if pair.Source == nil || pair.Target == nil {
		return fmt.Errorf("fabrication: pair %q has nil tables", pair.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := pair.Source.WriteCSVFile(filepath.Join(dir, "source.csv")); err != nil {
		return err
	}
	if err := pair.Target.WriteCSVFile(filepath.Join(dir, "target.csv")); err != nil {
		return err
	}
	gtFile, err := os.Create(filepath.Join(dir, "ground_truth.csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(gtFile)
	if err := w.Write([]string{"source_column", "target_column"}); err != nil {
		gtFile.Close()
		return err
	}
	for _, p := range pair.Truth.Pairs() {
		if err := w.Write([]string{p.Source, p.Target}); err != nil {
			gtFile.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		gtFile.Close()
		return err
	}
	if err := gtFile.Close(); err != nil {
		return err
	}
	manifest, err := json.MarshalIndent(pairManifest{
		Name:     pair.Name,
		Scenario: pair.Scenario,
		Variant:  pair.Variant,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644)
}

// LoadPair reads a pair saved by SavePair.
func LoadPair(dir string) (core.TablePair, error) {
	src, err := table.ReadCSVFile(filepath.Join(dir, "source.csv"))
	if err != nil {
		return core.TablePair{}, err
	}
	tgt, err := table.ReadCSVFile(filepath.Join(dir, "target.csv"))
	if err != nil {
		return core.TablePair{}, err
	}
	gtFile, err := os.Open(filepath.Join(dir, "ground_truth.csv"))
	if err != nil {
		return core.TablePair{}, err
	}
	defer gtFile.Close()
	records, err := csv.NewReader(gtFile).ReadAll()
	if err != nil {
		return core.TablePair{}, err
	}
	gt := core.NewGroundTruth()
	for i, rec := range records {
		if i == 0 {
			continue // header
		}
		if len(rec) < 2 {
			return core.TablePair{}, fmt.Errorf("fabrication: ground truth row %d malformed", i+1)
		}
		gt.Add(rec[0], rec[1])
	}
	pair := core.TablePair{Source: src, Target: tgt, Truth: gt}
	manifestBytes, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err == nil {
		var m pairManifest
		if err := json.Unmarshal(manifestBytes, &m); err != nil {
			return core.TablePair{}, fmt.Errorf("fabrication: bad manifest: %w", err)
		}
		pair.Name, pair.Scenario, pair.Variant = m.Name, m.Scenario, m.Variant
	} else {
		pair.Name = filepath.Base(dir)
		pair.Scenario = core.ScenarioCurated
	}
	// Cross-check: every ground-truth column must exist.
	for _, p := range gt.Pairs() {
		if src.Column(p.Source) == nil {
			return core.TablePair{}, fmt.Errorf("fabrication: ground truth references missing source column %q", p.Source)
		}
		if tgt.Column(p.Target) == nil {
			return core.TablePair{}, fmt.Errorf("fabrication: ground truth references missing target column %q", p.Target)
		}
	}
	return pair, nil
}

// SaveGrid saves every pair of a fabricated grid under root, one directory
// per pair (slashes in pair names become directory separators-safe
// underscores), and returns the directories written.
func SaveGrid(root string, pairs []core.TablePair) ([]string, error) {
	dirs := make([]string, 0, len(pairs))
	for i, p := range pairs {
		dir := filepath.Join(root, fmt.Sprintf("pair_%03d", i))
		if err := SavePair(dir, p); err != nil {
			return dirs, fmt.Errorf("saving %s: %w", p.Name, err)
		}
		dirs = append(dirs, dir)
	}
	return dirs, nil
}

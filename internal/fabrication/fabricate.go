package fabrication

import (
	"fmt"
	"math"
	"math/rand"

	"valentine/internal/core"
	"valentine/internal/table"
)

// Fabricator turns a source table into matching problems with ground truth.
// All randomness flows from the seed, so fabrication is reproducible.
type Fabricator struct {
	seed int64
	// InstanceNoiseRate is the per-cell perturbation probability used when a
	// variant calls for noisy instances (default 0.4).
	InstanceNoiseRate float64
}

// New returns a fabricator with the given seed.
func New(seed int64) *Fabricator {
	return &Fabricator{seed: seed, InstanceNoiseRate: 0.4}
}

// Variant flags: noisy schema / noisy instances (paper's VS/NS × VI/NI).
type Variant struct {
	NoisySchema    bool
	NoisyInstances bool
}

// Label renders the paper's shorthand, e.g. "NS/VI".
func (v Variant) Label() string {
	s, i := "VS", "VI"
	if v.NoisySchema {
		s = "NS"
	}
	if v.NoisyInstances {
		i = "NI"
	}
	return s + "/" + i
}

// AllVariants lists the four schema×instance noise combinations.
func AllVariants() []Variant {
	return []Variant{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
}

func (f *Fabricator) rng(salt string) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(salt) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(f.seed ^ h))
}

// Unionable fabricates a unionable pair (paper Fig. 3): a horizontal split
// with the given row overlap fraction; both halves keep every column.
func (f *Fabricator) Unionable(src *table.Table, rowOverlap float64, v Variant) (core.TablePair, error) {
	if err := checkTable(src, 2, 2); err != nil {
		return core.TablePair{}, err
	}
	if rowOverlap < 0 || rowOverlap > 1 {
		return core.TablePair{}, fmt.Errorf("fabrication: row overlap %v out of [0,1]", rowOverlap)
	}
	rng := f.rng(fmt.Sprintf("union:%s:%v:%s", src.Name, rowOverlap, v.Label()))
	left, right, err := horizontalSplit(src, rowOverlap, rng)
	if err != nil {
		return core.TablePair{}, err
	}
	pair := f.finish(src, left, right, v, rng, core.ScenarioUnionable,
		fmt.Sprintf("%s ro=%d%%", v.Label(), int(rowOverlap*100)), src.ColumnNames())
	return pair, nil
}

// ViewUnionable fabricates a view-unionable pair: both a vertical split
// with the given column-overlap fraction and a horizontal split with zero
// row overlap.
func (f *Fabricator) ViewUnionable(src *table.Table, colOverlap float64, v Variant) (core.TablePair, error) {
	if err := checkTable(src, 3, 2); err != nil {
		return core.TablePair{}, err
	}
	if colOverlap <= 0 || colOverlap > 1 {
		return core.TablePair{}, fmt.Errorf("fabrication: column overlap %v out of (0,1]", colOverlap)
	}
	rng := f.rng(fmt.Sprintf("viewunion:%s:%v:%s", src.Name, colOverlap, v.Label()))
	leftCols, rightCols, shared := verticalSplit(src, colOverlap, -1, rng)
	left, err := src.Project(leftCols...)
	if err != nil {
		return core.TablePair{}, err
	}
	right, err := src.Project(rightCols...)
	if err != nil {
		return core.TablePair{}, err
	}
	left, right2, err := horizontalSplitBoth(left, right, 0, rng)
	if err != nil {
		return core.TablePair{}, err
	}
	pair := f.finish(src, left, right2, v, rng, core.ScenarioViewUnionable,
		fmt.Sprintf("%s co=%d%%", v.Label(), int(colOverlap*100)), shared)
	return pair, nil
}

// Joinable fabricates a joinable pair: a vertical split sharing either
// exactly one column (colOverlap < 0) or the given fraction of columns,
// with verbatim instances; rowOverlap < 1 additionally splits rows with
// that overlap (paper uses 0.5).
func (f *Fabricator) Joinable(src *table.Table, colOverlap, rowOverlap float64, noisySchema bool) (core.TablePair, error) {
	return f.joinableInner(src, colOverlap, rowOverlap, Variant{NoisySchema: noisySchema}, core.ScenarioJoinable)
}

// SemanticallyJoinable fabricates the semantically-joinable flavor: same
// splits as Joinable but the target's instances are perturbed so an
// equality join no longer works.
func (f *Fabricator) SemanticallyJoinable(src *table.Table, colOverlap, rowOverlap float64, noisySchema bool) (core.TablePair, error) {
	return f.joinableInner(src, colOverlap, rowOverlap,
		Variant{NoisySchema: noisySchema, NoisyInstances: true}, core.ScenarioSemJoinable)
}

func (f *Fabricator) joinableInner(src *table.Table, colOverlap, rowOverlap float64, v Variant, scenario string) (core.TablePair, error) {
	if err := checkTable(src, 3, 2); err != nil {
		return core.TablePair{}, err
	}
	if colOverlap > 1 {
		return core.TablePair{}, fmt.Errorf("fabrication: column overlap %v out of range", colOverlap)
	}
	if rowOverlap < 0 || rowOverlap > 1 {
		return core.TablePair{}, fmt.Errorf("fabrication: row overlap %v out of [0,1]", rowOverlap)
	}
	rng := f.rng(fmt.Sprintf("join:%s:%v:%v:%s:%s", src.Name, colOverlap, rowOverlap, v.Label(), scenario))
	exact := -1
	if colOverlap < 0 {
		exact = 1
	}
	leftCols, rightCols, shared := verticalSplit(src, colOverlap, exact, rng)
	left, err := src.Project(leftCols...)
	if err != nil {
		return core.TablePair{}, err
	}
	right, err := src.Project(rightCols...)
	if err != nil {
		return core.TablePair{}, err
	}
	if rowOverlap < 1 {
		left, right, err = horizontalSplitBoth(left, right, rowOverlap, rng)
		if err != nil {
			return core.TablePair{}, err
		}
	}
	coLabel := "1col"
	if exact < 0 {
		coLabel = fmt.Sprintf("co=%d%%", int(colOverlap*100))
	}
	pair := f.finish(src, left, right, v, rng, scenario,
		fmt.Sprintf("%s %s ro=%d%%", v.Label(), coLabel, int(rowOverlap*100)), shared)
	return pair, nil
}

// finish applies the variant's noise to the target half, builds ground
// truth over the shared columns, and names the pair.
func (f *Fabricator) finish(src, left, right *table.Table, v Variant, rng *rand.Rand, scenario, variantLabel string, shared []string) core.TablePair {
	left.Name = src.Name + "_source"
	right.Name = src.Name + "_target"
	mapping := identityMapping(shared)
	if v.NoisyInstances {
		NoiseInstances(right, f.InstanceNoiseRate, rng)
	}
	if v.NoisySchema {
		renames := NoiseSchema(right, rng)
		for old, renamed := range renames {
			if _, ok := mapping[old]; ok {
				mapping[old] = renamed
			}
		}
	}
	gt := core.NewGroundTruth()
	for _, s := range shared {
		if left.Column(s) == nil {
			continue // shared column not on the left (defensive)
		}
		gt.Add(s, mapping[s])
	}
	return core.TablePair{
		Name:     fmt.Sprintf("%s/%s/%s", src.Name, scenario, variantLabel),
		Source:   left,
		Target:   right,
		Truth:    gt,
		Scenario: scenario,
		Variant:  variantLabel,
	}
}

func identityMapping(names []string) map[string]string {
	m := make(map[string]string, len(names))
	for _, n := range names {
		m[n] = n
	}
	return m
}

func checkTable(t *table.Table, minCols, minRows int) error {
	if t == nil {
		return fmt.Errorf("fabrication: nil table")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.NumColumns() < minCols {
		return fmt.Errorf("fabrication: table %q has %d columns, need ≥ %d", t.Name, t.NumColumns(), minCols)
	}
	if t.NumRows() < minRows {
		return fmt.Errorf("fabrication: table %q has %d rows, need ≥ %d", t.Name, t.NumRows(), minRows)
	}
	return nil
}

// horizontalSplit shuffles rows and deals two equal halves overlapping by
// the given fraction of a half.
func horizontalSplit(src *table.Table, overlap float64, rng *rand.Rand) (*table.Table, *table.Table, error) {
	n := src.NumRows()
	perm := rng.Perm(n)
	half := n / 2
	ov := int(math.Round(overlap * float64(half)))
	if ov > half {
		ov = half
	}
	leftIdx := perm[:half]
	start := half - ov
	end := start + half
	if end > n {
		end = n
	}
	rightIdx := perm[start:end]
	left, err := src.SelectRows(leftIdx)
	if err != nil {
		return nil, nil, err
	}
	right, err := src.SelectRows(rightIdx)
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// horizontalSplitBoth splits the rows of two column-projections of the same
// table with the given row overlap: both inputs must still have the
// original row order/count.
func horizontalSplitBoth(left, right *table.Table, overlap float64, rng *rand.Rand) (*table.Table, *table.Table, error) {
	n := left.NumRows()
	perm := rng.Perm(n)
	half := n / 2
	ov := int(math.Round(overlap * float64(half)))
	if ov > half {
		ov = half
	}
	leftIdx := perm[:half]
	start := half - ov
	end := start + half
	if end > n {
		end = n
	}
	l, err := left.SelectRows(leftIdx)
	if err != nil {
		return nil, nil, err
	}
	r, err := right.SelectRows(perm[start:end])
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// verticalSplit deals the columns into two overlapping sets. When
// exactShared > 0 it fixes the number of shared columns; otherwise the
// fraction colOverlap of all columns is shared (at least one). Non-shared
// columns are dealt alternately so both sides keep unique attributes.
func verticalSplit(src *table.Table, colOverlap float64, exactShared int, rng *rand.Rand) (left, right, shared []string) {
	names := src.ColumnNames()
	perm := rng.Perm(len(names))
	nShared := exactShared
	if nShared <= 0 {
		nShared = int(math.Round(colOverlap * float64(len(names))))
	}
	if nShared < 1 {
		nShared = 1
	}
	if nShared > len(names)-2 {
		nShared = len(names) - 2 // keep at least one unique column per side
		if nShared < 1 {
			nShared = 1
		}
	}
	for i, pi := range perm {
		name := names[pi]
		switch {
		case i < nShared:
			shared = append(shared, name)
			left = append(left, name)
			right = append(right, name)
		case (i-nShared)%2 == 0:
			left = append(left, name)
		default:
			right = append(right, name)
		}
	}
	return left, right, shared
}

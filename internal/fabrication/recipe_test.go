package fabrication

import (
	"strings"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

func recipeSource() *table.Table {
	t := table.New("src")
	vals := func(prefix string) []string {
		out := make([]string, 40)
		for i := range out {
			out[i] = prefix + string(rune('a'+i%26)) + string(rune('0'+i%10))
		}
		return out
	}
	t.AddColumn("id", vals("i"))
	t.AddColumn("name", vals("n"))
	t.AddColumn("city", vals("c"))
	t.AddColumn("code", vals("k"))
	return t
}

// Every valid recipe kind dispatches to the matching scenario and carries
// the same pair a direct method call would produce.
func TestRecipeDispatch(t *testing.T) {
	src := recipeSource()
	cases := []struct {
		recipe   Recipe
		scenario string
	}{
		{Recipe{Kind: core.ScenarioUnionable, RowOverlap: 0.5}, core.ScenarioUnionable},
		{Recipe{Kind: core.ScenarioViewUnionable, ColOverlap: 0.5}, core.ScenarioViewUnionable},
		{Recipe{Kind: core.ScenarioJoinable, ColOverlap: 0.5, RowOverlap: 1}, core.ScenarioJoinable},
		{Recipe{Kind: core.ScenarioJoinable, ColOverlap: -1, RowOverlap: 0.5}, core.ScenarioJoinable},
		{Recipe{Kind: core.ScenarioSemJoinable, ColOverlap: 0.5, RowOverlap: 1}, core.ScenarioSemJoinable},
		// joinable + noisy instances is the semantically-joinable scenario
		{Recipe{Kind: core.ScenarioJoinable, ColOverlap: 0.5, RowOverlap: 1,
			Variant: Variant{NoisyInstances: true}}, core.ScenarioSemJoinable},
	}
	for _, c := range cases {
		pair, err := New(7).Fabricate(src, c.recipe)
		if err != nil {
			t.Fatalf("%+v: %v", c.recipe, err)
		}
		if pair.Scenario != c.scenario {
			t.Errorf("%+v: scenario = %q, want %q", c.recipe, pair.Scenario, c.scenario)
		}
		if pair.Truth.Size() == 0 {
			t.Errorf("%+v: empty ground truth", c.recipe)
		}
	}
}

// Fabricate with the same seed and recipe is deterministic.
func TestRecipeDeterministic(t *testing.T) {
	src := recipeSource()
	r := Recipe{Kind: core.ScenarioJoinable, ColOverlap: 0.5, RowOverlap: 0.5}
	a, err := New(3).Fabricate(src, r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(3).Fabricate(recipeSource(), r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source.String() != b.Source.String() || a.Target.String() != b.Target.String() {
		t.Error("same seed + recipe fabricated different pairs")
	}
}

func TestRecipeValidate(t *testing.T) {
	bad := []struct {
		recipe Recipe
		want   string
	}{
		{Recipe{Kind: "frobnicate"}, "unknown recipe kind"},
		{Recipe{Kind: core.ScenarioUnionable, RowOverlap: 1.5}, "row overlap"},
		{Recipe{Kind: core.ScenarioViewUnionable, ColOverlap: 0}, "column overlap"},
		{Recipe{Kind: core.ScenarioJoinable, ColOverlap: 2}, "column overlap"},
		{Recipe{Kind: core.ScenarioSemJoinable, ColOverlap: 0.5, RowOverlap: -0.1}, "row overlap"},
	}
	for _, c := range bad {
		err := c.recipe.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.recipe, err, c.want)
		}
		if _, err := New(1).Fabricate(recipeSource(), c.recipe); err == nil {
			t.Errorf("Fabricate(%+v) should fail validation", c.recipe)
		}
	}
}

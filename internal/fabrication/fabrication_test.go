package fabrication

import (
	"math/rand"
	"strings"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

// makeSource builds a deterministic 8-column, 40-row source table with a
// mix of string and numeric columns.
func makeSource() *table.Table {
	t := table.New("src")
	n := 40
	names := []string{"Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Heidi"}
	cities := []string{"Delft", "Lyon", "Boston", "Tokyo", "Oslo"}
	cols := map[string][]string{
		"client": {}, "city": {}, "country": {}, "order_id": {},
		"amount": {}, "quantity": {}, "status": {}, "note": {},
	}
	for i := 0; i < n; i++ {
		cols["client"] = append(cols["client"], names[i%len(names)])
		cols["city"] = append(cols["city"], cities[i%len(cities)])
		cols["country"] = append(cols["country"], []string{"NL", "FR", "US", "JP", "NO"}[i%5])
		cols["order_id"] = append(cols["order_id"], string(rune('A'+i%26))+"-"+string(rune('0'+i%10)))
		cols["amount"] = append(cols["amount"], []string{"10.5", "20.25", "3.75", "99.9"}[i%4])
		cols["quantity"] = append(cols["quantity"], []string{"1", "2", "3", "4", "5"}[i%5])
		cols["status"] = append(cols["status"], []string{"open", "closed"}[i%2])
		cols["note"] = append(cols["note"], "note text "+string(rune('a'+i%7)))
	}
	for _, name := range []string{"client", "city", "country", "order_id", "amount", "quantity", "status", "note"} {
		t.AddColumn(name, cols[name])
	}
	return t
}

func TestTypo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	changed := 0
	for i := 0; i < 50; i++ {
		out := Typo("customer", rng)
		if len(out) != len("customer") {
			t.Fatalf("typo changed length: %q", out)
		}
		if out != "customer" {
			changed++
		}
	}
	if changed == 0 {
		t.Error("typo never changed the string")
	}
	if got := Typo("!!!", rng); got != "!!!" {
		t.Errorf("untypo-able string should be unchanged, got %q", got)
	}
	// case preservation
	out := Typo("A", rng)
	if out != strings.ToUpper(out) {
		t.Errorf("case not preserved: %q", out)
	}
}

func TestApplyRule(t *testing.T) {
	if got := ApplyRule(RulePrefixTable, "orders", "client"); got != "orders_client" {
		t.Errorf("prefix = %q", got)
	}
	if got := ApplyRule(RuleAbbreviate, "orders", "customer_name"); got != "cus_nam" {
		t.Errorf("abbrev = %q", got)
	}
	if got := ApplyRule(RuleDropVowels, "orders", "customer"); got != "cstmr" {
		t.Errorf("dropvowels = %q", got)
	}
}

func TestNoiseSchemaMappingValid(t *testing.T) {
	src := makeSource()
	rng := rand.New(rand.NewSource(2))
	mapping := NoiseSchema(src, rng)
	if len(mapping) != 8 {
		t.Fatalf("mapping size = %d", len(mapping))
	}
	if err := src.Validate(); err != nil {
		t.Fatalf("noised table invalid: %v", err)
	}
	for old, renamed := range mapping {
		if src.Column(renamed) == nil {
			t.Errorf("mapping %s→%s points to missing column", old, renamed)
		}
	}
}

func TestNoiseInstancesChangesValues(t *testing.T) {
	src := makeSource()
	before := src.Column("client").Values[0]
	rng := rand.New(rand.NewSource(3))
	NoiseInstances(src, 1.0, rng)
	after := src.Column("client").Values
	changedStr := false
	for _, v := range after {
		if v != before && len(v) == len(before) {
			changedStr = true
		}
	}
	if !changedStr {
		t.Error("string noise had no effect at rate 1")
	}
	// numeric column should remain parseable numbers
	if got := table.InferType(src.Column("quantity").Values); got != table.Int {
		t.Errorf("int column type after noise = %v", got)
	}
}

func TestUnionablePair(t *testing.T) {
	f := New(7)
	pair, err := f.Unionable(makeSource(), 0.5, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scenario != core.ScenarioUnionable {
		t.Errorf("scenario = %s", pair.Scenario)
	}
	if pair.Source.NumColumns() != 8 || pair.Target.NumColumns() != 8 {
		t.Errorf("unionable must keep all columns: %d/%d", pair.Source.NumColumns(), pair.Target.NumColumns())
	}
	if pair.Truth.Size() != 8 {
		t.Errorf("GT size = %d, want 8", pair.Truth.Size())
	}
	if pair.Source.NumRows() != 20 || pair.Target.NumRows() != 20 {
		t.Errorf("halves = %d/%d rows, want 20/20", pair.Source.NumRows(), pair.Target.NumRows())
	}
	// verbatim variant: GT maps names to themselves
	for _, p := range pair.Truth.Pairs() {
		if p.Source != p.Target {
			t.Errorf("verbatim GT should be identity: %v", p)
		}
	}
}

func TestUnionableFullOverlapSharesRows(t *testing.T) {
	f := New(7)
	pair, err := f.Unionable(makeSource(), 1.0, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	// with 100% overlap both halves contain the same row multiset
	lv := append([]string(nil), pair.Source.Column("order_id").Values...)
	rv := append([]string(nil), pair.Target.Column("order_id").Values...)
	lset := map[string]int{}
	rset := map[string]int{}
	for _, v := range lv {
		lset[v]++
	}
	for _, v := range rv {
		rset[v]++
	}
	for k, c := range lset {
		if rset[k] != c {
			t.Fatalf("row multisets differ at %q: %d vs %d", k, c, rset[k])
		}
	}
}

func TestUnionableNoisySchemaGroundTruthTracksRenames(t *testing.T) {
	f := New(11)
	pair, err := f.Unionable(makeSource(), 0.5, Variant{NoisySchema: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pair.Truth.Pairs() {
		if pair.Source.Column(p.Source) == nil {
			t.Errorf("GT source column %q missing", p.Source)
		}
		if pair.Target.Column(p.Target) == nil {
			t.Errorf("GT target column %q missing", p.Target)
		}
	}
}

func TestViewUnionablePair(t *testing.T) {
	f := New(13)
	pair, err := f.ViewUnionable(makeSource(), 0.5, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scenario != core.ScenarioViewUnionable {
		t.Errorf("scenario = %s", pair.Scenario)
	}
	// shared columns = GT; each side must also have unique columns
	if pair.Truth.Size() >= pair.Source.NumColumns() {
		t.Errorf("source should have unique columns beyond the %d shared", pair.Truth.Size())
	}
	if pair.Truth.Size() >= pair.Target.NumColumns() {
		t.Errorf("target should have unique columns beyond the %d shared", pair.Truth.Size())
	}
	// zero row overlap: no shared order_id values if both sides have it
	if ls, rs := pair.Source.Column("order_id"), pair.Target.Column("order_id"); ls != nil && rs != nil {
		lset := ls.DistinctValues()
		for v := range rs.DistinctValues() {
			if _, ok := lset[v]; ok {
				t.Fatalf("view-unionable should have zero row overlap, shared %q", v)
			}
		}
	}
}

func TestJoinablePair(t *testing.T) {
	f := New(17)
	pair, err := f.Joinable(makeSource(), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scenario != core.ScenarioJoinable {
		t.Errorf("scenario = %s", pair.Scenario)
	}
	if pair.Truth.Size() != 4 {
		t.Errorf("GT size = %d, want 4 shared columns", pair.Truth.Size())
	}
	// verbatim instances: shared column values must be identical multisets
	p0 := pair.Truth.Pairs()[0]
	ls := pair.Source.Column(p0.Source)
	rs := pair.Target.Column(p0.Target)
	if ls == nil || rs == nil {
		t.Fatal("GT columns missing")
	}
	if len(ls.Values) != len(rs.Values) {
		t.Fatalf("pure vertical split should keep all rows: %d vs %d", len(ls.Values), len(rs.Values))
	}
}

func TestJoinableOneColumn(t *testing.T) {
	f := New(19)
	pair, err := f.Joinable(makeSource(), -1, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Truth.Size() != 1 {
		t.Fatalf("1-col joinable GT size = %d", pair.Truth.Size())
	}
}

func TestSemanticallyJoinablePerturbsInstances(t *testing.T) {
	f := New(23)
	pair, err := f.SemanticallyJoinable(makeSource(), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scenario != core.ScenarioSemJoinable {
		t.Errorf("scenario = %s", pair.Scenario)
	}
	changed := false
	for _, p := range pair.Truth.Pairs() {
		ls := pair.Source.Column(p.Source)
		rs := pair.Target.Column(p.Target)
		for i := range ls.Values {
			if ls.Values[i] != rs.Values[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("semantically-joinable should perturb shared instances")
	}
}

func TestFabricationDeterministic(t *testing.T) {
	p1, err := New(42).Unionable(makeSource(), 0.5, Variant{NoisySchema: true, NoisyInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(42).Unionable(makeSource(), 0.5, Variant{NoisySchema: true, NoisyInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Target.Columns[0].Name != p2.Target.Columns[0].Name {
		t.Error("fabrication should be deterministic per seed")
	}
	if p1.Target.Columns[0].Values[0] != p2.Target.Columns[0].Values[0] {
		t.Error("instance noise should be deterministic per seed")
	}
}

func TestFabricationErrors(t *testing.T) {
	f := New(1)
	if _, err := f.Unionable(nil, 0.5, Variant{}); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := f.Unionable(makeSource(), 1.5, Variant{}); err == nil {
		t.Error("overlap > 1 should fail")
	}
	if _, err := f.ViewUnionable(makeSource(), 0, Variant{}); err == nil {
		t.Error("zero column overlap should fail")
	}
	if _, err := f.Joinable(makeSource(), 0.5, -0.5, false); err == nil {
		t.Error("negative row overlap should fail")
	}
	tiny := table.New("tiny")
	tiny.AddColumn("a", []string{"1", "2"})
	if _, err := f.ViewUnionable(tiny, 0.5, Variant{}); err == nil {
		t.Error("too few columns should fail")
	}
}

func TestVariantLabels(t *testing.T) {
	if (Variant{}).Label() != "VS/VI" {
		t.Error("VS/VI")
	}
	if (Variant{NoisySchema: true, NoisyInstances: true}).Label() != "NS/NI" {
		t.Error("NS/NI")
	}
	if len(AllVariants()) != 4 {
		t.Error("four variants")
	}
}

func TestGridShape(t *testing.T) {
	f := New(5)
	pairs, err := f.Grid(SourceTable{Name: "src", Table: makeSource()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 56 {
		t.Fatalf("grid size = %d, want 56", len(pairs))
	}
	counts := map[string]int{}
	for _, p := range pairs {
		counts[p.Scenario]++
		if p.Truth.Size() == 0 {
			t.Errorf("pair %s has empty ground truth", p.Name)
		}
		if err := p.Source.Validate(); err != nil {
			t.Errorf("pair %s source invalid: %v", p.Name, err)
		}
		if err := p.Target.Validate(); err != nil {
			t.Errorf("pair %s target invalid: %v", p.Name, err)
		}
	}
	want := map[string]int{
		core.ScenarioUnionable:     12,
		core.ScenarioViewUnionable: 12,
		core.ScenarioJoinable:      16,
		core.ScenarioSemJoinable:   16,
	}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("scenario %s count = %d, want %d", k, counts[k], v)
		}
	}
}

func TestGridSeeds(t *testing.T) {
	pairs, err := GridSeeds(SourceTable{Name: "src", Table: makeSource()}, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 112 {
		t.Fatalf("2-seed grid = %d pairs, want 112", len(pairs))
	}
	if pairs[0].Name == pairs[56].Name {
		t.Error("seeded pairs should have distinct names")
	}
}

// Property: ground truth columns always exist in their tables across the
// whole grid (the invariant every experiment depends on).
func TestGridGroundTruthInvariant(t *testing.T) {
	f := New(31)
	pairs, err := f.Grid(SourceTable{Name: "src", Table: makeSource()})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		for _, p := range pair.Truth.Pairs() {
			if pair.Source.Column(p.Source) == nil {
				t.Fatalf("%s: GT source column %q missing", pair.Name, p.Source)
			}
			if pair.Target.Column(p.Target) == nil {
				t.Fatalf("%s: GT target column %q missing", pair.Name, p.Target)
			}
		}
	}
}

package fabrication

// Recipe is a declarative handle on one cell of the Figure-3 fabrication
// grid: a scenario kind plus its overlap parameters and noise variant. It
// exists so config-driven callers (the scenario engine, the loadgen CLI)
// can name fabrication work in data files instead of code; the programmatic
// Unionable/ViewUnionable/Joinable/SemanticallyJoinable methods stay the
// primary API.

import (
	"fmt"

	"valentine/internal/core"
	"valentine/internal/table"
)

// Recipe names one fabrication of the grid.
type Recipe struct {
	// Kind is one of the paper's four scenarios: core.ScenarioUnionable,
	// ScenarioViewUnionable, ScenarioJoinable, ScenarioSemJoinable.
	Kind string
	// RowOverlap is the horizontal-split overlap fraction in [0,1]
	// (unionable and the joinable kinds).
	RowOverlap float64
	// ColOverlap is the vertical-split overlap fraction (view-unionable:
	// (0,1]; joinable kinds: (0,1], or negative for "exactly one shared
	// column").
	ColOverlap float64
	// Variant is the schema/instance noise grade. The semantically-joinable
	// kind implies noisy instances regardless of Variant.NoisyInstances.
	Variant Variant
}

// RecipeKinds lists the valid Recipe.Kind values in paper order.
func RecipeKinds() []string {
	return []string{
		core.ScenarioUnionable,
		core.ScenarioViewUnionable,
		core.ScenarioJoinable,
		core.ScenarioSemJoinable,
	}
}

// Validate checks the recipe's kind and parameter ranges without touching
// any table, so config-driven callers can fail before fabricating anything.
func (r Recipe) Validate() error {
	switch r.Kind {
	case core.ScenarioUnionable:
		if r.RowOverlap < 0 || r.RowOverlap > 1 {
			return fmt.Errorf("fabrication: %s row overlap %v out of [0,1]", r.Kind, r.RowOverlap)
		}
	case core.ScenarioViewUnionable:
		if r.ColOverlap <= 0 || r.ColOverlap > 1 {
			return fmt.Errorf("fabrication: %s column overlap %v out of (0,1]", r.Kind, r.ColOverlap)
		}
	case core.ScenarioJoinable, core.ScenarioSemJoinable:
		if r.ColOverlap > 1 {
			return fmt.Errorf("fabrication: %s column overlap %v out of range (≤ 1, negative = one shared column)", r.Kind, r.ColOverlap)
		}
		if r.RowOverlap < 0 || r.RowOverlap > 1 {
			return fmt.Errorf("fabrication: %s row overlap %v out of [0,1]", r.Kind, r.RowOverlap)
		}
	default:
		return fmt.Errorf("fabrication: unknown recipe kind %q (have %v)", r.Kind, RecipeKinds())
	}
	return nil
}

// Fabricate dispatches the recipe to the matching fabrication method.
func (f *Fabricator) Fabricate(src *table.Table, r Recipe) (core.TablePair, error) {
	if err := r.Validate(); err != nil {
		return core.TablePair{}, err
	}
	switch r.Kind {
	case core.ScenarioUnionable:
		return f.Unionable(src, r.RowOverlap, r.Variant)
	case core.ScenarioViewUnionable:
		return f.ViewUnionable(src, r.ColOverlap, r.Variant)
	case core.ScenarioJoinable:
		if r.Variant.NoisyInstances {
			// Joinable with noisy instances IS the semantically-joinable
			// scenario; keep the pair labeled by what it is.
			return f.SemanticallyJoinable(src, r.ColOverlap, r.RowOverlap, r.Variant.NoisySchema)
		}
		return f.Joinable(src, r.ColOverlap, r.RowOverlap, r.Variant.NoisySchema)
	default: // core.ScenarioSemJoinable, per Validate
		return f.SemanticallyJoinable(src, r.ColOverlap, r.RowOverlap, r.Variant.NoisySchema)
	}
}

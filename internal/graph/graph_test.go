package graph

import (
	"testing"
	"testing/quick"
)

func TestBasicGraph(t *testing.T) {
	g := New()
	g.AddEdge("a", "child", "b")
	g.AddEdge("a", "child", "c")
	g.AddEdge("b", "type", "int")
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if len(g.Out("a")) != 2 || len(g.In("b")) != 1 {
		t.Error("adjacency wrong")
	}
	if !g.HasNode("int") || g.HasNode("zzz") {
		t.Error("HasNode wrong")
	}
	nodes := g.Nodes()
	if len(nodes) != 4 || nodes[0] != "a" {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestPairID(t *testing.T) {
	id := PairID("x", "y")
	a, b, err := SplitPair(id)
	if err != nil || a != "x" || b != "y" {
		t.Fatalf("SplitPair = %q %q %v", a, b, err)
	}
	if _, _, err := SplitPair("no-separator"); err == nil {
		t.Error("want error for malformed pair id")
	}
}

// The canonical example from Melnik et al. Fig. 2-3: two tiny models.
func melnikExample() (*Graph, *Graph) {
	g1 := New()
	g1.AddEdge("a", "l1", "a1")
	g1.AddEdge("a", "l1", "a2")
	g1.AddEdge("a1", "l2", "a2")
	g2 := New()
	g2.AddEdge("b", "l1", "b1")
	g2.AddEdge("b", "l2", "b2")
	g2.AddEdge("b2", "l2", "b1")
	return g1, g2
}

func TestBuildPCG(t *testing.T) {
	g1, g2 := melnikExample()
	pcg := BuildPCG(g1, g2)
	// l1 join: (a,b)→(a1,b1), (a,b)→(a2,b1); l2 join: (a1,b)→(a2,b2), (a1,b2)→(a2,b1)
	want := map[string]bool{
		PairID("a", "b"): true, PairID("a1", "b1"): true, PairID("a2", "b1"): true,
		PairID("a1", "b"): true, PairID("a2", "b2"): true, PairID("a1", "b2"): true,
	}
	if len(pcg.Nodes) != len(want) {
		t.Fatalf("PCG nodes = %v, want %d pairs", pcg.Nodes, len(want))
	}
	for _, n := range pcg.Nodes {
		if !want[n] {
			t.Errorf("unexpected PCG node %q", n)
		}
	}
}

func TestFloodConvergesAndRanks(t *testing.T) {
	g1, g2 := melnikExample()
	pcg := BuildPCG(g1, g2)
	res := pcg.Flood(nil, 1.0, FloodOptions{Formula: FormulaC})
	if len(res) != len(pcg.Nodes) {
		t.Fatalf("result size = %d", len(res))
	}
	maxv := 0.0
	for _, v := range res {
		if v < 0 || v > 1 {
			t.Fatalf("similarity out of range: %v", v)
		}
		if v > maxv {
			maxv = v
		}
	}
	if maxv != 1 {
		t.Errorf("normalization should give max 1, got %v", maxv)
	}
}

func TestFloodFormulasAllConverge(t *testing.T) {
	g1, g2 := melnikExample()
	pcg := BuildPCG(g1, g2)
	for _, f := range []FixpointFormula{FormulaBasic, FormulaA, FormulaB, FormulaC} {
		res := pcg.Flood(map[string]float64{PairID("a", "b"): 1}, 0.5,
			FloodOptions{Formula: f, MaxIterations: 200})
		for id, v := range res {
			if v < 0 || v > 1 {
				t.Errorf("formula %v: %s = %v out of range", f, id, v)
			}
		}
	}
}

func TestFormulaString(t *testing.T) {
	if FormulaC.String() != "C" || FormulaBasic.String() != "basic" {
		t.Error("String names wrong")
	}
	if FixpointFormula(99).String() != "unknown" {
		t.Error("unknown formula name")
	}
}

func TestFloodEmptyPCG(t *testing.T) {
	pcg := BuildPCG(New(), New())
	res := pcg.Flood(nil, 1, FloodOptions{})
	if len(res) != 0 {
		t.Fatalf("empty PCG should give empty result, got %v", res)
	}
}

func TestTopologicalSort(t *testing.T) {
	g := New()
	g.AddEdge("root", "c", "mid1")
	g.AddEdge("root", "c", "mid2")
	g.AddEdge("mid1", "c", "leaf")
	g.AddEdge("mid2", "c", "leaf")
	order := g.TopologicalSort()
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
}

func TestTopologicalSortCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "x", "b")
	g.AddEdge("b", "x", "a")
	order := g.TopologicalSort()
	if len(order) != 2 {
		t.Fatalf("cycle nodes should still all appear, got %v", order)
	}
}

// Property: identical graphs flood to self-pairs having the top score.
func TestFloodSelfSimilarityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		g := New()
		n := int(seed%4) + 2
		for i := 0; i < n; i++ {
			g.AddEdge("root", "child", nodeName(i))
			g.AddEdge(nodeName(i), "type", "string")
		}
		pcg := BuildPCG(g, g)
		res := pcg.Flood(nil, 1, FloodOptions{Formula: FormulaC})
		// the (root,root) pair must exist and score positively
		v, ok := res[PairID("root", "root")]
		return ok && v > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	return string(rune('a' + i))
}

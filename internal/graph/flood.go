package graph

import (
	"math"
	"sort"
)

// FixpointFormula selects one of the Similarity Flooding update rules from
// Melnik et al. (ICDE 2002), Table 3.
type FixpointFormula int

// Fixpoint formula variants. The paper's evaluation (and Valentine's
// configuration, Table II) uses FormulaC.
const (
	// FormulaBasic: σ^{i+1} = normalize(σ^i + φ(σ^i))
	FormulaBasic FixpointFormula = iota
	// FormulaA: σ^{i+1} = normalize(σ^0 + φ(σ^i))
	FormulaA
	// FormulaB: σ^{i+1} = normalize(φ(σ^0 + σ^i))
	FormulaB
	// FormulaC: σ^{i+1} = normalize(σ^0 + σ^i + φ(σ^0 + σ^i))
	FormulaC
)

// String names the formula.
func (f FixpointFormula) String() string {
	switch f {
	case FormulaBasic:
		return "basic"
	case FormulaA:
		return "A"
	case FormulaB:
		return "B"
	case FormulaC:
		return "C"
	default:
		return "unknown"
	}
}

// PCG is a pairwise connectivity graph: nodes are PairID(a,b) map pairs, and
// Coeff holds the inverse-average propagation coefficient of each directed
// propagation edge.
type PCG struct {
	Nodes []string
	// prop[i] lists (neighbor index, coefficient) pairs feeding node i.
	prop  [][]propEdge
	index map[string]int
}

type propEdge struct {
	from  int
	coeff float64
}

// BuildPCG constructs the pairwise connectivity graph of g1 and g2. A map
// pair (a,b) exists whenever some edge (a,p,a') ∈ g1 and (b,p,b') ∈ g2 share
// label p (the pair (a',b') is then also created, with propagation edges in
// both directions). Propagation coefficients use the inverse-average
// formula: the weight on edges leaving (a,b) via label p equals
// 1/avg(outdeg_p(a), outdeg_p(b)) split across the generated pairs.
func BuildPCG(g1, g2 *Graph) *PCG {
	type pairEdge struct {
		fromA, fromB, toA, toB, label string
	}
	var pes []pairEdge
	// Index g2 edges by label for the join.
	byLabel := make(map[string][]Edge)
	for _, e := range g2.Edges() {
		byLabel[e.Label] = append(byLabel[e.Label], e)
	}
	for _, e1 := range g1.Edges() {
		for _, e2 := range byLabel[e1.Label] {
			pes = append(pes, pairEdge{e1.From, e2.From, e1.To, e2.To, e1.Label})
		}
	}
	p := &PCG{index: make(map[string]int)}
	addNode := func(a, b string) int {
		id := PairID(a, b)
		if i, ok := p.index[id]; ok {
			return i
		}
		i := len(p.Nodes)
		p.index[id] = i
		p.Nodes = append(p.Nodes, id)
		p.prop = append(p.prop, nil)
		return i
	}
	// Count, per source pair and label, how many pairs it propagates to, for
	// the inverse-average (actually inverse-product-of-cardinalities applied
	// to the pair graph: 1/#outgoing pairs with that label — the standard
	// implementation of "inverse average" on the PCG).
	outCount := make(map[[2]string]int) // (pairID, label) → fanout
	inCount := make(map[[2]string]int)
	for _, pe := range pes {
		from := PairID(pe.fromA, pe.fromB)
		to := PairID(pe.toA, pe.toB)
		outCount[[2]string{from, pe.label}]++
		inCount[[2]string{to, pe.label}]++
	}
	for _, pe := range pes {
		fi := addNode(pe.fromA, pe.fromB)
		ti := addNode(pe.toA, pe.toB)
		fromID, toID := p.Nodes[fi], p.Nodes[ti]
		// forward propagation from → to
		wf := 1.0 / float64(outCount[[2]string{fromID, pe.label}])
		p.prop[ti] = append(p.prop[ti], propEdge{from: fi, coeff: wf})
		// backward propagation to → from
		wb := 1.0 / float64(inCount[[2]string{toID, pe.label}])
		p.prop[fi] = append(p.prop[fi], propEdge{from: ti, coeff: wb})
	}
	return p
}

// FloodOptions configures the fixpoint computation.
type FloodOptions struct {
	Formula       FixpointFormula
	MaxIterations int     // default 100
	Epsilon       float64 // convergence threshold on max delta, default 1e-3
	// Interrupt, when non-nil, is polled once per iteration; returning true
	// stops the fixpoint early with the current similarities. It lets a
	// caller honor context cancellation mid-flood (the caller decides
	// whether the partial result is usable — simflood discards it).
	Interrupt func() bool
}

// Flood runs the similarity-flooding fixpoint over the PCG, starting from
// initial similarities sigma0 (keyed by PairID; missing pairs start at the
// given defaultSim). It returns the converged similarity per PairID.
func (p *PCG) Flood(sigma0 map[string]float64, defaultSim float64, opts FloodOptions) map[string]float64 {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 100
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-3
	}
	n := len(p.Nodes)
	s0 := make([]float64, n)
	for i, id := range p.Nodes {
		if v, ok := sigma0[id]; ok {
			s0[i] = v
		} else {
			s0[i] = defaultSim
		}
	}
	cur := make([]float64, n)
	copy(cur, s0)
	next := make([]float64, n)
	phi := func(src []float64, dst []float64) {
		for i := range dst {
			dst[i] = 0
		}
		for i := 0; i < n; i++ {
			for _, pe := range p.prop[i] {
				dst[i] += src[pe.from] * pe.coeff
			}
		}
	}
	tmp := make([]float64, n)
	for it := 0; it < opts.MaxIterations; it++ {
		if opts.Interrupt != nil && opts.Interrupt() {
			break
		}
		switch opts.Formula {
		case FormulaBasic:
			phi(cur, next)
			for i := range next {
				next[i] += cur[i]
			}
		case FormulaA:
			phi(cur, next)
			for i := range next {
				next[i] += s0[i]
			}
		case FormulaB:
			for i := range tmp {
				tmp[i] = s0[i] + cur[i]
			}
			phi(tmp, next)
		default: // FormulaC
			for i := range tmp {
				tmp[i] = s0[i] + cur[i]
			}
			phi(tmp, next)
			for i := range next {
				next[i] += tmp[i]
			}
		}
		// normalize by max
		maxv := 0.0
		for _, v := range next {
			if v > maxv {
				maxv = v
			}
		}
		if maxv > 0 {
			for i := range next {
				next[i] /= maxv
			}
		}
		// convergence: Euclidean delta
		delta := 0.0
		for i := range next {
			d := next[i] - cur[i]
			delta += d * d
		}
		cur, next = next, cur
		if math.Sqrt(delta) < opts.Epsilon {
			break
		}
	}
	out := make(map[string]float64, n)
	for i, id := range p.Nodes {
		out[id] = cur[i]
	}
	return out
}

// TopologicalSort returns the nodes of an acyclic graph in topological
// order, or an error-free best effort (cycles are broken arbitrarily but
// deterministically) — sufficient for COMA's rooted DAG traversal.
func (g *Graph) TopologicalSort() []string {
	indeg := make(map[string]int, g.NumNodes())
	for n := range g.nodes {
		indeg[n] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var queue []string
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		var newly []string
		for _, e := range g.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				newly = append(newly, e.To)
			}
		}
		sort.Strings(newly)
		queue = append(queue, newly...)
	}
	if len(order) < g.NumNodes() {
		// cycle: append the rest deterministically
		seen := make(map[string]bool, len(order))
		for _, n := range order {
			seen[n] = true
		}
		var rest []string
		for n := range g.nodes {
			if !seen[n] {
				rest = append(rest, n)
			}
		}
		sort.Strings(rest)
		order = append(order, rest...)
	}
	return order
}

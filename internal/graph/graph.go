// Package graph provides the directed labeled graph model and the
// similarity-flooding fixpoint machinery used by schema-based matchers.
//
// A Graph has string-identified nodes and labeled directed edges. From two
// graphs, BuildPCG derives the pairwise connectivity graph of Melnik et
// al.'s Similarity Flooding algorithm; Flood then runs the iterative
// fixpoint computation with inverse-average propagation coefficients and a
// selectable fixpoint formula.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a labeled directed edge.
type Edge struct {
	From, To string
	Label    string
}

// Graph is a directed labeled multigraph over string node ids.
type Graph struct {
	nodes map[string]struct{}
	out   map[string][]Edge
	in    map[string][]Edge
	edges []Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]struct{}),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// AddNode inserts a node (idempotent).
func (g *Graph) AddNode(id string) {
	g.nodes[id] = struct{}{}
}

// AddEdge inserts a labeled edge, adding endpoints as needed.
func (g *Graph) AddEdge(from, label, to string) {
	g.AddNode(from)
	g.AddNode(to)
	e := Edge{From: from, To: to, Label: label}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.edges = append(g.edges, e)
}

// HasNode reports whether id is a node.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// Nodes returns the sorted node ids.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the outgoing edges of a node.
func (g *Graph) Out(id string) []Edge { return g.out[id] }

// In returns the incoming edges of a node.
func (g *Graph) In(id string) []Edge { return g.in[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// PairID renders the canonical id of a map-pair node in a PCG.
func PairID(a, b string) string { return a + "\x1f" + b }

// SplitPair recovers the two node ids from a PairID.
func SplitPair(id string) (string, string, error) {
	for i := 0; i < len(id); i++ {
		if id[i] == '\x1f' {
			return id[:i], id[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("graph: %q is not a pair id", id)
}

// Package feedback implements the human-in-the-loop workflow the paper's
// lessons learned call for (§IX, "Humans-in-the-loop"): matching as a
// search problem where a person reviews ranked candidates, confirms or
// rejects them, and the ranking is revised — instead of tuning thresholds.
//
// A Session accumulates confirmed/rejected correspondences, reranks any
// ranked match list under those constraints, and suggests which candidate
// to ask the reviewer about next (largest expected ranking impact:
// highest-ranked undecided pair whose columns are still contested).
package feedback

import (
	"fmt"
	"sort"

	"valentine/internal/core"
)

// Decision is a reviewer's verdict on a column pair.
type Decision int

// Verdicts.
const (
	Undecided Decision = iota
	Confirmed
	Rejected
)

// Session collects reviewer verdicts for one table pair.
type Session struct {
	decisions map[core.ColumnPair]Decision
}

// NewSession returns an empty feedback session.
func NewSession() *Session {
	return &Session{decisions: make(map[core.ColumnPair]Decision)}
}

// Confirm records that (source,target) is a correct correspondence.
func (s *Session) Confirm(source, target string) {
	s.decisions[core.ColumnPair{Source: source, Target: target}] = Confirmed
}

// Reject records that (source,target) is not a correspondence.
func (s *Session) Reject(source, target string) {
	s.decisions[core.ColumnPair{Source: source, Target: target}] = Rejected
}

// Decision returns the verdict for a pair.
func (s *Session) Decision(source, target string) Decision {
	return s.decisions[core.ColumnPair{Source: source, Target: target}]
}

// Decided returns the number of recorded verdicts.
func (s *Session) Decided() int { return len(s.decisions) }

// Rerank revises a ranked match list under the session's verdicts:
//
//   - confirmed pairs move to the top (score 1), and competing candidates
//     that reuse either side of a confirmed pair are damped — confirming
//     a 1-1 correspondence makes alternatives unlikely;
//   - rejected pairs drop to the bottom (score 0);
//   - all other pairs keep their relative order.
//
// The input is not mutated.
func (s *Session) Rerank(matches []core.Match) []core.Match {
	confirmedSrc := make(map[string]bool)
	confirmedTgt := make(map[string]bool)
	for p, d := range s.decisions {
		if d == Confirmed {
			confirmedSrc[p.Source] = true
			confirmedTgt[p.Target] = true
		}
	}
	out := make([]core.Match, len(matches))
	copy(out, matches)
	for i := range out {
		switch s.Decision(out[i].SourceColumn, out[i].TargetColumn) {
		case Confirmed:
			out[i].Score = 1
		case Rejected:
			out[i].Score = 0
		default:
			if confirmedSrc[out[i].SourceColumn] || confirmedTgt[out[i].TargetColumn] {
				out[i].Score *= 0.5
			}
		}
	}
	core.SortMatches(out)
	return out
}

// NextQuestion suggests the candidate whose verdict would most reshape the
// ranking: the highest-ranked undecided pair whose source or target column
// is still contested by another undecided candidate within the top window.
// Returns an error when nothing is left to ask.
func (s *Session) NextQuestion(matches []core.Match, window int) (core.Match, error) {
	if window <= 0 || window > len(matches) {
		window = len(matches)
	}
	ranked := s.Rerank(matches)
	top := ranked[:window]
	srcCount := make(map[string]int)
	tgtCount := make(map[string]int)
	for _, m := range top {
		if s.Decision(m.SourceColumn, m.TargetColumn) == Undecided {
			srcCount[m.SourceColumn]++
			tgtCount[m.TargetColumn]++
		}
	}
	for _, m := range top {
		if s.Decision(m.SourceColumn, m.TargetColumn) != Undecided {
			continue
		}
		if srcCount[m.SourceColumn] > 1 || tgtCount[m.TargetColumn] > 1 {
			return m, nil
		}
	}
	// No contested pair: fall back to the best undecided one.
	for _, m := range ranked {
		if s.Decision(m.SourceColumn, m.TargetColumn) == Undecided {
			return m, nil
		}
	}
	return core.Match{}, fmt.Errorf("feedback: all candidates decided")
}

// Simulate drives a full review loop against an oracle (here: the ground
// truth), answering questions until budget verdicts are spent or nothing is
// left, and returns the recall trajectory — how Recall@GT improves per
// answered question. This is the evaluation harness for the
// humans-in-the-loop claim.
func Simulate(matches []core.Match, gt *core.GroundTruth, budget int) ([]float64, error) {
	if gt.Size() == 0 {
		return nil, fmt.Errorf("feedback: empty ground truth")
	}
	s := NewSession()
	var trajectory []float64
	recallOf := func() float64 {
		ranked := s.Rerank(matches)
		k := gt.Size()
		if len(ranked) > k {
			ranked = ranked[:k]
		}
		hits := 0
		for _, m := range ranked {
			if gt.Contains(m.SourceColumn, m.TargetColumn) {
				hits++
			}
		}
		return float64(hits) / float64(gt.Size())
	}
	trajectory = append(trajectory, recallOf())
	for q := 0; q < budget; q++ {
		question, err := s.NextQuestion(matches, 2*gt.Size())
		if err != nil {
			break
		}
		if gt.Contains(question.SourceColumn, question.TargetColumn) {
			s.Confirm(question.SourceColumn, question.TargetColumn)
		} else {
			s.Reject(question.SourceColumn, question.TargetColumn)
		}
		trajectory = append(trajectory, recallOf())
	}
	return trajectory, nil
}

// Verdicts returns the recorded decisions sorted for deterministic output.
func (s *Session) Verdicts() []struct {
	Pair     core.ColumnPair
	Decision Decision
} {
	out := make([]struct {
		Pair     core.ColumnPair
		Decision Decision
	}, 0, len(s.decisions))
	for p, d := range s.decisions {
		out = append(out, struct {
			Pair     core.ColumnPair
			Decision Decision
		}{p, d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.Source != out[j].Pair.Source {
			return out[i].Pair.Source < out[j].Pair.Source
		}
		return out[i].Pair.Target < out[j].Pair.Target
	})
	return out
}

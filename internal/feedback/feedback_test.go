package feedback

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/metrics"
)

func rankedFixture() []core.Match {
	return []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "y", Score: 0.8},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.7},
		{SourceColumn: "b", TargetColumn: "x", Score: 0.6},
		{SourceColumn: "c", TargetColumn: "z", Score: 0.5},
	}
}

func TestConfirmRejectRerank(t *testing.T) {
	s := NewSession()
	s.Confirm("b", "y")
	s.Reject("a", "x")
	out := s.Rerank(rankedFixture())
	if out[0].SourceColumn != "b" || out[0].TargetColumn != "y" || out[0].Score != 1 {
		t.Fatalf("confirmed pair should lead: %v", out[0])
	}
	last := out[len(out)-1]
	if last.SourceColumn != "a" || last.TargetColumn != "x" || last.Score != 0 {
		t.Fatalf("rejected pair should sink: %v", last)
	}
	// competing pair (a,y) shares target y with confirmed (b,y) → damped
	for _, m := range out {
		if m.SourceColumn == "a" && m.TargetColumn == "y" && m.Score != 0.4 {
			t.Errorf("competitor not damped: %v", m)
		}
	}
	if s.Decided() != 2 {
		t.Errorf("Decided = %d", s.Decided())
	}
}

func TestRerankDoesNotMutateInput(t *testing.T) {
	in := rankedFixture()
	s := NewSession()
	s.Confirm("c", "z")
	_ = s.Rerank(in)
	if in[4].Score != 0.5 {
		t.Fatal("input slice mutated")
	}
}

func TestNextQuestionPrefersContested(t *testing.T) {
	s := NewSession()
	q, err := s.NextQuestion(rankedFixture(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// (a,x) is top and source-a contested by (a,y)
	if q.SourceColumn != "a" || q.TargetColumn != "x" {
		t.Fatalf("question = %v, want a/x", q)
	}
	// answering shrinks the undecided pool
	s.Reject("a", "x")
	q2, err := s.NextQuestion(rankedFixture(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if q2 == q {
		t.Fatal("same question asked twice")
	}
}

func TestNextQuestionExhaustion(t *testing.T) {
	s := NewSession()
	ms := []core.Match{{SourceColumn: "a", TargetColumn: "x", Score: 0.5}}
	q, err := s.NextQuestion(ms, 10)
	if err != nil || q.SourceColumn != "a" {
		t.Fatalf("first question: %v %v", q, err)
	}
	s.Confirm("a", "x")
	if _, err := s.NextQuestion(ms, 10); err == nil {
		t.Fatal("exhausted session should error")
	}
}

func TestVerdictsSorted(t *testing.T) {
	s := NewSession()
	s.Confirm("b", "y")
	s.Reject("a", "x")
	vs := s.Verdicts()
	if len(vs) != 2 || vs[0].Pair.Source != "a" || vs[0].Decision != Rejected {
		t.Fatalf("Verdicts = %+v", vs)
	}
}

func TestSimulateImprovesRecall(t *testing.T) {
	// A weak matcher on a hard pair: feedback must monotonically improve
	// recall toward 1 as the oracle answers questions.
	pair := matchertest.Pair(t, core.ScenarioViewUnionable,
		fabrication.Variant{NoisySchema: true, NoisyInstances: true})
	m, err := experiment.NewRegistry().New(experiment.MethodSimFlood, nil)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	base, err := metrics.RecallAtGroundTruth(matches, pair.Truth)
	if err != nil {
		t.Fatal(err)
	}
	traj, err := Simulate(matches, pair.Truth, 30)
	if err != nil {
		t.Fatal(err)
	}
	if traj[0] != base {
		t.Errorf("trajectory starts at %.3f, want baseline %.3f", traj[0], base)
	}
	final := traj[len(traj)-1]
	if final < base {
		t.Errorf("feedback made recall worse: %.3f → %.3f", base, final)
	}
	if final < 0.9 {
		t.Errorf("30 oracle answers should push recall ≥ 0.9, got %.3f", final)
	}
	if _, err := Simulate(matches, core.NewGroundTruth(), 5); err == nil {
		t.Error("empty GT should fail")
	}
}

package profile

// Conformance tests of the interned kernels against the map-based reference
// path: same distinct sets, same signatures, same overlap scores — bit for
// bit — whatever mode a profile was built in.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"valentine/internal/intern"
	"valentine/internal/table"
)

// randomTable builds a table of string columns drawing from a shared value
// pool, so cross-table and cross-column overlap is substantial (the
// interesting case for the kernels).
func randomTable(rng *rand.Rand, name string, cols, rows, vocab int) *table.Table {
	t := table.New(name)
	for c := 0; c < cols; c++ {
		vals := make([]string, rows)
		for r := range vals {
			if rng.Intn(10) == 0 {
				vals[r] = "" // empties must stay excluded from distinct sets
			} else {
				vals[r] = fmt.Sprintf("val-%d", rng.Intn(vocab))
			}
		}
		t.AddColumn(fmt.Sprintf("c%d", c), vals)
	}
	return t
}

func TestInternedSignatureMatchesMapSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(rng, "t", 3, 80, 60)
		plain := New(tab)
		interned := NewInterned(tab.Clone(), intern.NewDict())
		ro := NewHashSharing(tab.Clone(), intern.NewDict())
		for _, k := range []int{DefaultSignature, CompactSignature, 16} {
			for i := 0; i < plain.NumColumns(); i++ {
				want := plain.Column(i).Signature(k)
				if got := interned.Column(i).Signature(k); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d col %d k=%d: interned signature diverges", trial, i, k)
				}
				if got := ro.Column(i).Signature(k); !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d col %d k=%d: hash-sharing signature diverges", trial, i, k)
				}
			}
		}
	}
}

func TestHashSharingModeNeverInterns(t *testing.T) {
	d := intern.NewDict()
	d.Intern("val-1")
	tab := randomTable(rand.New(rand.NewSource(3)), "q", 2, 50, 30)
	tp := NewHashSharing(tab, d)
	tp.Warm()
	if tp.Column(0).InternedDistinct() != nil {
		t.Fatal("hash-sharing profile must not expose an interned set")
	}
	if d.Len() != 1 {
		t.Fatalf("query profiling grew the dictionary to %d entries", d.Len())
	}
}

func TestInternedOverlapKernelsMatchMapKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		a := randomTable(rng, "a", 4, 60+rng.Intn(120), 40+rng.Intn(100))
		b := randomTable(rng, "b", 4, 60+rng.Intn(120), 40+rng.Intn(100))
		pa, pb := New(a), New(b)
		ia, ib := NewPair(a.Clone(), b.Clone())
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				mp, mc := ValueOverlap(pa.Column(i), pb.Column(j)), Containment(pa.Column(i), pb.Column(j))
				ip, ic := ValueOverlap(ia.Column(i), ib.Column(j)), Containment(ia.Column(i), ib.Column(j))
				if mp != ip {
					t.Fatalf("trial %d (%d,%d): ValueOverlap map %v vs interned %v", trial, i, j, mp, ip)
				}
				if mc != ic {
					t.Fatalf("trial %d (%d,%d): Containment map %v vs interned %v", trial, i, j, mc, ic)
				}
			}
		}
	}
}

func TestSharedInternedRequiresOneDictionary(t *testing.T) {
	tab := fixtureTable()
	a := NewInterned(tab, intern.NewDict())
	b := NewInterned(tab.Clone(), intern.NewDict())
	if _, _, ok := SharedInterned(a.Column(0), b.Column(0)); ok {
		t.Fatal("profiles on different dictionaries must not compare ids")
	}
	c, d := NewPair(tab.Clone(), tab.Clone())
	if _, _, ok := SharedInterned(c.Column(0), d.Column(0)); !ok {
		t.Fatal("NewPair profiles must share a dictionary")
	}
	plain := New(tab.Clone())
	if _, _, ok := SharedInterned(plain.Column(0), plain.Column(1)); ok {
		t.Fatal("dictionary-less profiles must fall back to the map kernel")
	}
}

// TestStoreEvictionDoesNotReintern is the regression test for the
// warm/evict/re-admit cycle: a table evicted under SetCapacity and profiled
// again must resolve its values through the dictionary's read-locked fast
// path — the dictionary must not grow, and the re-admitted profile's ids
// must equal the ones handed out before the eviction (so sets cached by
// still-live profiles stay comparable with the new ones).
func TestStoreEvictionDoesNotReintern(t *testing.T) {
	s := NewStore()
	tabs := storeTables(3)
	profiles := s.Warm(tabs...)
	before := s.DictStats()
	if before.Entries == 0 {
		t.Fatal("warm interned nothing")
	}
	oldIDs := profiles[0].Column(0).InternedDistinct().IDs()

	s.SetCapacity(1) // evicts tabs[0] and tabs[1]
	if s.Len() != 1 {
		t.Fatalf("Len after SetCapacity(1) = %d", s.Len())
	}
	readmitted := s.Of(tabs[0])
	if readmitted == profiles[0] {
		t.Fatal("eviction did not drop the cached profile")
	}
	readmitted.Warm()
	after := s.DictStats()
	if after != before {
		t.Fatalf("re-admission grew the dictionary: %+v -> %+v", before, after)
	}
	newIDs := readmitted.Column(0).InternedDistinct().IDs()
	if !reflect.DeepEqual(oldIDs, newIDs) {
		t.Fatalf("re-admitted ids %v differ from pre-eviction ids %v", newIDs, oldIDs)
	}
	if ValueOverlap(profiles[0].Column(0), readmitted.Column(0)) != 1 {
		t.Fatal("pre-eviction and re-admitted profiles must still be comparable")
	}
}

func TestStoreDictSurvivesReset(t *testing.T) {
	s := NewStore()
	tabs := storeTables(1)
	s.Warm(tabs...)
	n := s.DictStats().Entries
	s.Reset()
	s.Warm(tabs...)
	if got := s.DictStats().Entries; got != n {
		t.Fatalf("Reset + re-warm changed dictionary size: %d -> %d", n, got)
	}
}

package profile

import (
	"reflect"
	"sync"
	"testing"

	"valentine/internal/strutil"
	"valentine/internal/table"
)

func fixtureTable() *table.Table {
	t := table.New("orders")
	t.AddColumn("customerID", []string{"c3", "c1", "c2", "c1", ""})
	t.AddColumn("amount", []string{"10.5", "3", "7", "", "10.5"})
	t.AddColumn("note", []string{"  Hello ", "hello", "WORLD", "", "  Hello "})
	return t
}

func TestProfileMatchesDirectComputation(t *testing.T) {
	tab := fixtureTable()
	tp := New(tab)
	if tp.Name() != "orders" || tp.NumColumns() != 3 {
		t.Fatalf("table profile = %s/%d", tp.Name(), tp.NumColumns())
	}
	for i := range tab.Columns {
		c := &tab.Columns[i]
		p := tp.Column(i)
		if p.Name() != c.Name || p.Type() != c.Type || p.Rows() != len(c.Values) {
			t.Errorf("%s: identity mismatch", c.Name)
		}
		if !reflect.DeepEqual(p.DistinctValues(), c.DistinctValues()) {
			t.Errorf("%s: distinct mismatch", c.Name)
		}
		if !reflect.DeepEqual(p.SortedDistinct(), c.SortedDistinct()) {
			t.Errorf("%s: sorted distinct mismatch", c.Name)
		}
		if !reflect.DeepEqual(p.NameTokens(), strutil.Tokenize(c.Name)) {
			t.Errorf("%s: token mismatch", c.Name)
		}
		nums, n := p.NumericValues()
		wantNums, wantN := c.NumericValues()
		if n != wantN || !reflect.DeepEqual(nums, wantNums) {
			t.Errorf("%s: numeric mismatch", c.Name)
		}
		if p.Stats() != c.Stats() {
			t.Errorf("%s: stats mismatch:\n  profile %+v\n  direct  %+v", c.Name, p.Stats(), c.Stats())
		}
		if !reflect.DeepEqual(p.Signature(64), SignatureOf(c.DistinctValues(), 64)) {
			t.Errorf("%s: signature mismatch", c.Name)
		}
	}
}

func TestParsedDistinctTrimsLowersParses(t *testing.T) {
	tab := fixtureTable()
	p := New(tab).Column(2) // note: "  Hello ", "hello", "WORLD"
	parsed := p.ParsedDistinct()
	// Distinct raw values: "  Hello ", "WORLD", "hello"; trimming folds
	// nothing here but must strip the padding.
	want := map[string]string{"Hello": "hello", "WORLD": "world", "hello": "hello"}
	if len(parsed) != len(want) {
		t.Fatalf("parsed = %v", parsed)
	}
	for _, pv := range parsed {
		if lower, ok := want[pv.Value]; !ok || pv.Lower != lower || pv.IsNum {
			t.Errorf("parsed value %+v unexpected", pv)
		}
	}
	amount := New(tab).Column(1).ParsedDistinct()
	for _, pv := range amount {
		if !pv.IsNum {
			t.Errorf("amount value %q should parse numeric", pv.Value)
		}
	}
}

func TestSignatureCachePerLength(t *testing.T) {
	p := New(fixtureTable()).Column(0)
	a, b := p.Signature(64), p.Signature(64)
	if &a[0] != &b[0] {
		t.Error("same-length signatures should share one cached slice")
	}
	if len(p.Signature(128)) != 128 {
		t.Error("second length should compute independently")
	}
	if len(p.Signature(0)) != DefaultSignature {
		t.Error("k<=0 should select the default length")
	}
}

func TestProfileConcurrentAccess(t *testing.T) {
	tab := fixtureTable()
	tp := New(tab)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tp.NumColumns(); i++ {
				p := tp.Column(i)
				p.DistinctValues()
				p.SortedDistinct()
				p.NameTokens()
				p.ParsedDistinct()
				p.Stats()
				p.Signature(64)
				p.Signature(128)
			}
			tp.NameTokens()
		}()
	}
	wg.Wait()
}

func TestValueOverlapAndContainmentMatchTableOps(t *testing.T) {
	tab := fixtureTable()
	tp := New(tab)
	a, b := &tab.Columns[0], &tab.Columns[2]
	if got, want := ValueOverlap(tp.Column(0), tp.Column(2)), table.ValueOverlap(a, b); got != want {
		t.Errorf("ValueOverlap = %v, want %v", got, want)
	}
	if got, want := Containment(tp.Column(0), tp.Column(2)), table.Containment(a, b); got != want {
		t.Errorf("Containment = %v, want %v", got, want)
	}
}

func TestMinhashGeometryAndEstimates(t *testing.T) {
	set := map[string]struct{}{"a": {}, "b": {}, "c": {}}
	sig := SignatureOf(set, 32)
	if IsEmptySignature(sig) {
		t.Error("non-empty set should not produce the empty signature")
	}
	if !IsEmptySignature(SignatureOf(nil, 32)) {
		t.Error("empty set must produce the empty signature")
	}
	if EstimateJaccard(sig, sig) != 1 {
		t.Error("identical signatures estimate 1")
	}
	k, b, rows := Geometry(0, 0)
	if k != DefaultSignature || b != DefaultBands || rows != k/b {
		t.Errorf("default geometry = %d/%d/%d", k, b, rows)
	}
}

package profile

import (
	"container/list"
	"runtime"
	"sync"

	"valentine/internal/intern"
	"valentine/internal/table"
)

// Store is a corpus-level cache of TableProfiles keyed by table identity
// (the *table.Table pointer). It is safe for concurrent use; the profiles it
// hands out are themselves concurrency-safe, so a warmed store can serve an
// experiment worker pool or parallel discovery queries without re-deriving
// anything.
//
// Capacity: by default the store grows without bound, which is right for
// batch runs over a fixed corpus. Long-running servers ingesting and
// removing tables should call SetCapacity: once more than capacity tables
// are cached, the least-recently-used profiles are evicted, so profiles of
// tables that were removed (or never queried again) do not pin their
// derived data forever.
//
// Staleness: Of revalidates a cheap structural snapshot (column count,
// names, types, lengths) on every hit, so any mutation that changes one of
// those — table.AddColumn, renames, row-count changes, a RetypeColumns
// that lands on a different type — invalidates automatically. Mutations
// the snapshot cannot see (in-place cell edits, including ones followed by
// a RetypeColumns that re-infers the same type) require an explicit
// Invalidate.
type Store struct {
	mu       sync.Mutex
	entries  map[*table.Table]*entry
	lru      list.List // front = most recently used; elements hold *table.Table
	capacity int       // 0 = unbounded

	// dict is the store's corpus-scoped value dictionary, shared by every
	// profile the store builds: cross-table overlap kernels run on interned
	// id slices and MinHash derives from hashes memoized once per distinct
	// corpus value. The dictionary deliberately survives LRU eviction and
	// Reset — it is keyed by value, not by table, so a table evicted under
	// SetCapacity and later re-admitted rebuilds its profile over the
	// already-interned values through the dictionary's read-locked fast
	// path: no new entries, no re-hashing, and ids identical to the ones
	// profiles handed out before the eviction still carry.
	dict *intern.Dict
}

type entry struct {
	tp   *TableProfile
	snap []colSnap
	elem *list.Element // position in the LRU list
}

type colSnap struct {
	name string
	typ  table.Type
	rows int
}

// NewStore returns an empty, unbounded profile store.
func NewStore() *Store {
	return &Store{entries: make(map[*table.Table]*entry), dict: intern.NewDict()}
}

// Dict returns the store's corpus-scoped value dictionary.
func (s *Store) Dict() *intern.Dict { return s.dict }

// DictStats returns the dictionary's entry count and approximate memory —
// the number its append-only growth is monitored by.
func (s *Store) DictStats() intern.DictStats { return s.dict.Stats() }

// SetCapacity bounds the store to at most n cached tables, evicting the
// least-recently-used entries immediately if the store is already over; n
// <= 0 removes the bound. Eviction only drops the cache — profiles already
// handed out stay valid, and a later Of rebuilds.
func (s *Store) SetCapacity(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = n
	s.evictOver()
}

// Capacity returns the current bound (0 = unbounded).
func (s *Store) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}

// evictOver drops LRU entries until the store fits its capacity. Callers
// hold s.mu.
func (s *Store) evictOver() {
	if s.capacity <= 0 {
		return
	}
	for len(s.entries) > s.capacity {
		back := s.lru.Back()
		if back == nil {
			return
		}
		s.lru.Remove(back)
		delete(s.entries, back.Value.(*table.Table))
	}
}

// Of returns the cached profile of t, building (or rebuilding, when the
// cached profile is stale) as needed.
func (s *Store) Of(t *table.Table) *TableProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[t]; ok && snapshotMatches(t, e.snap) {
		s.lru.MoveToFront(e.elem)
		return e.tp
	}
	if old, ok := s.entries[t]; ok {
		s.lru.Remove(old.elem) // stale: rebuild below re-inserts at front
	}
	e := &entry{tp: NewInterned(t, s.dict), snap: snapshot(t)}
	e.elem = s.lru.PushFront(t)
	s.entries[t] = e
	s.evictOver()
	return e.tp
}

// Invalidate drops the cached profile of t, if any. Call it after mutating
// cell values in place (schema-level mutations are detected automatically),
// or after removing t from a served corpus.
func (s *Store) Invalidate(t *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[t]; ok {
		s.lru.Remove(e.elem)
		delete(s.entries, t)
	}
}

// Reset drops every cached profile.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[*table.Table]*entry)
	s.lru.Init()
}

// Len returns the number of cached tables.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Warm precomputes every derived artifact of every listed table in parallel
// (bounded by GOMAXPROCS), so subsequent matching and indexing only hit
// caches. It returns the warmed profiles in input order.
func (s *Store) Warm(tables ...*table.Table) []*TableProfile {
	out := make([]*TableProfile, len(tables))
	for i, t := range tables {
		out[i] = s.Of(t)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(out) {
		workers = len(out)
	}
	if workers <= 1 {
		for _, tp := range out {
			tp.Warm()
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan *TableProfile)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tp := range work {
				tp.Warm()
			}
		}()
	}
	for _, tp := range out {
		work <- tp
	}
	close(work)
	wg.Wait()
	return out
}

func snapshot(t *table.Table) []colSnap {
	snap := make([]colSnap, len(t.Columns))
	for i := range t.Columns {
		c := &t.Columns[i]
		snap[i] = colSnap{name: c.Name, typ: c.Type, rows: len(c.Values)}
	}
	return snap
}

func snapshotMatches(t *table.Table, snap []colSnap) bool {
	if len(t.Columns) != len(snap) {
		return false
	}
	for i := range t.Columns {
		c := &t.Columns[i]
		if c.Name != snap[i].name || c.Type != snap[i].typ || len(c.Values) != snap[i].rows {
			return false
		}
	}
	return true
}

package profile

import (
	"runtime"
	"sync"

	"valentine/internal/table"
)

// Store is a corpus-level cache of TableProfiles keyed by table identity
// (the *table.Table pointer). It is safe for concurrent use; the profiles it
// hands out are themselves concurrency-safe, so a warmed store can serve an
// experiment worker pool or parallel discovery queries without re-deriving
// anything.
//
// Staleness: Of revalidates a cheap structural snapshot (column count,
// names, types, lengths) on every hit, so any mutation that changes one of
// those — table.AddColumn, renames, row-count changes, a RetypeColumns
// that lands on a different type — invalidates automatically. Mutations
// the snapshot cannot see (in-place cell edits, including ones followed by
// a RetypeColumns that re-infers the same type) require an explicit
// Invalidate.
type Store struct {
	mu      sync.Mutex
	entries map[*table.Table]*entry
}

type entry struct {
	tp   *TableProfile
	snap []colSnap
}

type colSnap struct {
	name string
	typ  table.Type
	rows int
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{entries: make(map[*table.Table]*entry)}
}

// Of returns the cached profile of t, building (or rebuilding, when the
// cached profile is stale) as needed.
func (s *Store) Of(t *table.Table) *TableProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[t]; ok && snapshotMatches(t, e.snap) {
		return e.tp
	}
	e := &entry{tp: New(t), snap: snapshot(t)}
	s.entries[t] = e
	return e.tp
}

// Invalidate drops the cached profile of t, if any. Call it after mutating
// cell values in place (schema-level mutations are detected automatically).
func (s *Store) Invalidate(t *table.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, t)
}

// Reset drops every cached profile.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[*table.Table]*entry)
}

// Len returns the number of cached tables.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Warm precomputes every derived artifact of every listed table in parallel
// (bounded by GOMAXPROCS), so subsequent matching and indexing only hit
// caches. It returns the warmed profiles in input order.
func (s *Store) Warm(tables ...*table.Table) []*TableProfile {
	out := make([]*TableProfile, len(tables))
	for i, t := range tables {
		out[i] = s.Of(t)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(out) {
		workers = len(out)
	}
	if workers <= 1 {
		for _, tp := range out {
			tp.Warm()
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan *TableProfile)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tp := range work {
				tp.Warm()
			}
		}()
	}
	for _, tp := range out {
		work <- tp
	}
	close(work)
	wg.Wait()
	return out
}

func snapshot(t *table.Table) []colSnap {
	snap := make([]colSnap, len(t.Columns))
	for i := range t.Columns {
		c := &t.Columns[i]
		snap[i] = colSnap{name: c.Name, typ: c.Type, rows: len(c.Values)}
	}
	return snap
}

func snapshotMatches(t *table.Table, snap []colSnap) bool {
	if len(t.Columns) != len(snap) {
		return false
	}
	for i := range t.Columns {
		c := &t.Columns[i]
		if c.Name != snap[i].name || c.Type != snap[i].typ || len(c.Values) != snap[i].rows {
			return false
		}
	}
	return true
}

package profile

// Kernel benchmarks behind the interning layer: the map-based overlap
// kernel vs the interned sorted-merge and bitmap kernels, and MinHash from
// raw strings vs from dictionary-memoized base hashes. The benchreport
// `kernels` JSON section measures the same shapes (cmd/benchreport).

import (
	"fmt"
	"testing"

	"valentine/internal/intern"
	"valentine/internal/table"
)

// kernelFixture builds two overlapping distinct-value sets of n values each
// (half shared) in every representation the kernels consume. stride spreads
// the interned ids: 1 simulates a dense corpus dictionary (vocabulary ≈
// column cardinality → bitmap containers), large values simulate one column
// of a huge corpus (sparse ids → sorted-merge/galloping).
type kernelFixture struct {
	aMap, bMap map[string]struct{}
	aSet, bSet *intern.Set
}

func newKernelFixture(n int, stride uint32) kernelFixture {
	f := kernelFixture{
		aMap: make(map[string]struct{}, n),
		bMap: make(map[string]struct{}, n),
	}
	aIDs := make([]uint32, 0, n)
	bIDs := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		av := fmt.Sprintf("value-%07d", i)
		bv := fmt.Sprintf("value-%07d", i+n/2) // half the range overlaps
		f.aMap[av] = struct{}{}
		f.bMap[bv] = struct{}{}
		aIDs = append(aIDs, uint32(i)*stride)
		bIDs = append(bIDs, uint32(i+n/2)*stride)
	}
	f.aSet = intern.NewSet(aIDs)
	f.bSet = intern.NewSet(bIDs)
	return f
}

// BenchmarkOverlapKernels compares one pairwise Jaccard overlap per
// iteration across the three kernels. The map arm is the pre-interning
// implementation (table.JaccardOfSets); merge and bitmap are the interned
// kernels over sparse and dense id spaces.
func BenchmarkOverlapKernels(b *testing.B) {
	const n = 5000
	sparse := newKernelFixture(n, 211) // wide id span: no bitmap containers
	dense := newKernelFixture(n, 1)    // dense id span: bitmap containers
	if sparse.aSet.HasBitmap() || sparse.bSet.HasBitmap() {
		b.Fatal("sparse fixture unexpectedly built bitmaps")
	}
	if !dense.aSet.HasBitmap() || !dense.bSet.HasBitmap() {
		b.Fatal("dense fixture did not build bitmaps")
	}
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = table.JaccardOfSets(sparse.aMap, sparse.bMap)
		}
	})
	b.Run("interned-merge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = intern.Jaccard(sparse.aSet, sparse.bSet)
		}
	})
	b.Run("interned-bitmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkFloat = intern.Jaccard(dense.aSet, dense.bSet)
		}
	})
}

// BenchmarkMinHashSharedDict compares one 128-slot signature per iteration:
// hashing every raw value (the per-column pre-interning path) vs mixing
// base hashes memoized once per dictionary entry.
func BenchmarkMinHashSharedDict(b *testing.B) {
	const n = 5000
	f := newKernelFixture(n, 1)
	d := intern.NewDict()
	hashes := make([]uint64, 0, n)
	for v := range f.aMap {
		_, h := d.InternHash(v)
		hashes = append(hashes, h)
	}
	b.Run("hash-per-column", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkSig = SignatureOf(f.aMap, DefaultSignature)
		}
	})
	b.Run("shared-dict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkSig = SignatureFromHashes(hashes, DefaultSignature)
		}
	})
}

var (
	sinkFloat float64
	sinkSig   []uint64
)

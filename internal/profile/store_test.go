package profile

import (
	"fmt"
	"sync"
	"testing"

	"valentine/internal/table"
)

func storeTables(n int) []*table.Table {
	out := make([]*table.Table, n)
	for i := range out {
		t := table.New(fmt.Sprintf("t%d", i))
		t.AddColumn("id", []string{"1", "2", "3"})
		t.AddColumn("name", []string{"ann", "bob", "cat"})
		out[i] = t
	}
	return out
}

func TestStoreCachesPerTable(t *testing.T) {
	s := NewStore()
	tabs := storeTables(2)
	tp := s.Of(tabs[0])
	if s.Of(tabs[0]) != tp {
		t.Error("second Of must return the cached profile")
	}
	if s.Of(tabs[1]) == tp {
		t.Error("distinct tables must not share a profile")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Invalidate(tabs[0])
	if s.Of(tabs[0]) == tp {
		t.Error("Invalidate must drop the cached profile")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len after Reset = %d", s.Len())
	}
}

// TestStoreStaleAfterAddColumn: schema growth must invalidate the cached
// profile automatically — a stale profile would miss the new column.
func TestStoreStaleAfterAddColumn(t *testing.T) {
	s := NewStore()
	tab := storeTables(1)[0]
	tp := s.Of(tab)
	if tp.NumColumns() != 2 {
		t.Fatalf("columns = %d", tp.NumColumns())
	}
	tab.AddColumn("city", []string{"delft", "lyon", "oslo"})
	fresh := s.Of(tab)
	if fresh == tp {
		t.Fatal("AddColumn must invalidate the cached profile")
	}
	if fresh.NumColumns() != 3 {
		t.Fatalf("fresh profile has %d columns, want 3", fresh.NumColumns())
	}
}

// TestStoreStaleAfterRetypeColumns: in-place retyping must invalidate the
// cached profile automatically — matchers branch on column types.
func TestStoreStaleAfterRetypeColumns(t *testing.T) {
	s := NewStore()
	tab := table.New("mut")
	tab.AddColumn("v", []string{"1", "2", "3"})
	tp := s.Of(tab)
	if tp.Column(0).Type() != table.Int {
		t.Fatalf("type = %v", tp.Column(0).Type())
	}
	// Mutate cells so the column re-infers as string, then retype.
	tab.Columns[0].Values[0] = "one"
	tab.RetypeColumns()
	fresh := s.Of(tab)
	if fresh == tp {
		t.Fatal("RetypeColumns must invalidate the cached profile")
	}
	if got := fresh.Column(0).Type(); got != table.String {
		t.Fatalf("fresh type = %v, want string", got)
	}
	if _, ok := fresh.Column(0).DistinctValues()["one"]; !ok {
		t.Fatal("fresh profile must see the mutated values")
	}
}

// TestStoreValueEditNeedsExplicitInvalidate documents the stale-detection
// contract: cell edits that leave the schema snapshot intact are invisible
// until Invalidate is called.
func TestStoreValueEditNeedsExplicitInvalidate(t *testing.T) {
	s := NewStore()
	tab := table.New("mut")
	tab.AddColumn("v", []string{"x", "y", "z"})
	stale := s.Of(tab)
	stale.Column(0).DistinctValues() // force the cache
	tab.Columns[0].Values[0] = "q"
	if _, ok := s.Of(tab).Column(0).DistinctValues()["q"]; ok {
		t.Fatal("schema-preserving edit should not be detected (documented limitation)")
	}
	s.Invalidate(tab)
	if _, ok := s.Of(tab).Column(0).DistinctValues()["q"]; !ok {
		t.Fatal("profile must be fresh after explicit Invalidate")
	}
}

// TestStoreConcurrentAccess hammers one store from many goroutines — Of on
// shared and private tables, Warm, Invalidate — and relies on the race
// detector (CI runs -race) to catch unsynchronized access.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	shared := storeTables(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := storeTables(1)[0]
			private.Name = fmt.Sprintf("private%d", w)
			for i := 0; i < 25; i++ {
				tp := s.Of(shared[i%len(shared)])
				tp.Column(i % tp.NumColumns()).Signature(64)
				tp.Column(i % tp.NumColumns()).Stats()
				s.Of(private).Column(0).SortedDistinct()
				switch i % 10 {
				case 3:
					s.Invalidate(shared[(i+1)%len(shared)])
				case 7:
					s.Warm(shared...)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("store should retain entries after the hammering")
	}
}

// TestStoreCapacityEvictsLRU: a capped store must drop the
// least-recently-used profiles — the leak fix for long-running servers
// whose removed tables would otherwise pin derived data forever.
func TestStoreCapacityEvictsLRU(t *testing.T) {
	s := NewStore()
	s.SetCapacity(3)
	tabs := storeTables(5)
	profiles := make([]*TableProfile, len(tabs))
	for i, tab := range tabs {
		profiles[i] = s.Of(tab)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", s.Len())
	}
	// t0 and t1 were least recently used → evicted → Of rebuilds.
	if s.Of(tabs[0]) == profiles[0] || s.Of(tabs[1]) == profiles[1] {
		t.Error("LRU entries should have been evicted and rebuilt")
	}
	// t4 was most recently used before the two rebuilds above → still cached.
	if s.Of(tabs[4]) != profiles[4] {
		t.Error("most-recently-used entry was evicted")
	}
	if s.Len() != 3 {
		t.Errorf("Len after churn = %d, want 3", s.Len())
	}
}

// TestStoreHitRefreshesRecency: a cache hit must move the entry to the
// front of the LRU order, protecting hot profiles from eviction.
func TestStoreHitRefreshesRecency(t *testing.T) {
	s := NewStore()
	s.SetCapacity(2)
	tabs := storeTables(3)
	first := s.Of(tabs[0])
	s.Of(tabs[1])
	s.Of(tabs[0]) // touch: t0 becomes most recent
	s.Of(tabs[2]) // evicts t1, not t0
	if s.Of(tabs[0]) != first {
		t.Error("touched entry was evicted despite being most recently used")
	}
}

// TestStoreSetCapacityShrinksImmediately: lowering the cap on a full store
// evicts down to the new bound at once; removing the cap stops eviction.
func TestStoreSetCapacityShrinksImmediately(t *testing.T) {
	s := NewStore()
	tabs := storeTables(6)
	for _, tab := range tabs {
		s.Of(tab)
	}
	if s.Len() != 6 {
		t.Fatalf("unbounded store Len = %d", s.Len())
	}
	s.SetCapacity(2)
	if s.Len() != 2 {
		t.Errorf("Len after shrink = %d, want 2", s.Len())
	}
	if s.Capacity() != 2 {
		t.Errorf("Capacity = %d", s.Capacity())
	}
	s.SetCapacity(0)
	for _, tab := range tabs {
		s.Of(tab)
	}
	if s.Len() != 6 {
		t.Errorf("unbounded again: Len = %d, want 6", s.Len())
	}
}

// TestStoreCappedConcurrentAccess hammers a capacity-bounded store — the
// eviction path must be race-free alongside hits, misses and invalidation.
func TestStoreCappedConcurrentAccess(t *testing.T) {
	s := NewStore()
	s.SetCapacity(3)
	shared := storeTables(8)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tp := s.Of(shared[(w+i)%len(shared)])
				tp.Column(0).NameTokens()
				if i%13 == 5 {
					s.Invalidate(shared[i%len(shared)])
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got > 3 {
		t.Errorf("capped store grew to %d entries", got)
	}
}

func TestWarmReturnsProfilesInOrder(t *testing.T) {
	s := NewStore()
	tabs := storeTables(3)
	tps := s.Warm(tabs...)
	if len(tps) != 3 {
		t.Fatalf("warmed %d", len(tps))
	}
	for i, tp := range tps {
		if tp.Table() != tabs[i] {
			t.Errorf("warm result %d out of order", i)
		}
		if tp != s.Of(tabs[i]) {
			t.Errorf("warm result %d not cached", i)
		}
	}
	if got := s.Warm(); len(got) != 0 {
		t.Errorf("empty warm = %v", got)
	}
}

package profile

// MinHash signature and LSH banding primitives. They live in this package —
// the lowest layer that understands derived column data — so the per-column
// Profile, the pairwise LSH matcher (internal/matchers/lshmatch) and the
// corpus-level discovery index (internal/discovery) all share one
// implementation: a signature computed at profiling time is bit-for-bit
// identical to one computed anywhere else, so estimated Jaccard scores agree
// across every code path.

import "valentine/internal/intern"

// EmptySlot is the sentinel value of a signature slot that never saw a
// value (empty column). Two empty slots never count as agreement.
const EmptySlot = ^uint64(0)

// DefaultSignature and DefaultBands are the suite-wide LSH defaults:
// 128-slot signatures in 32 bands of 4 rows, targeting Jaccard ≈ 0.3+.
const (
	DefaultSignature = 128
	DefaultBands     = 32
)

// CompactSignature is the suite's shorter signature length (SemProp's
// syntactic fallback). Warm precomputes both lengths so no signature
// consumer computes inside a timed or served region.
const CompactSignature = 64

// SignatureOf computes the k-slot MinHash signature of a value set. Callers
// that already hold the distinct set avoid recomputing it. Profiles with a
// value dictionary attached derive signatures from memoized base hashes
// instead (SignatureFromHashes) — bit-identical, since per-slot minima are
// order-independent and the base hash is the same intern.Hash64.
func SignatureOf(values map[string]struct{}, k int) []uint64 {
	sig := make([]uint64, k)
	for s := range sig {
		sig[s] = EmptySlot
	}
	for v := range values {
		base := intern.Hash64(v)
		for s := 0; s < k; s++ {
			hv := mix(base, uint64(s))
			if hv < sig[s] {
				sig[s] = hv
			}
		}
	}
	return sig
}

// SignatureFromHashes computes the k-slot MinHash signature from
// precomputed base hashes (one per distinct value, any order). This is the
// "hash once per dictionary entry" path: the string bytes were hashed when
// the value was interned; every signature after that — any column, any
// length — only mixes cached 64-bit hashes.
func SignatureFromHashes(hashes []uint64, k int) []uint64 {
	sig := make([]uint64, k)
	for s := range sig {
		sig[s] = EmptySlot
	}
	for _, base := range hashes {
		for s := 0; s < k; s++ {
			hv := mix(base, uint64(s))
			if hv < sig[s] {
				sig[s] = hv
			}
		}
	}
	return sig
}

// IsEmptySignature reports whether sig is the signature of a column with no
// non-empty values (every slot still the EmptySlot sentinel). Such
// signatures collide with each other in every band while never producing a
// positive Jaccard estimate, so indexes skip banding them.
func IsEmptySignature(sig []uint64) bool {
	for _, v := range sig {
		if v != EmptySlot {
			return false
		}
	}
	return true
}

// BandKey hashes one band of a signature into a bucket key. Signatures
// hashed with the same (band, rows) geometry land in the same bucket iff
// the band's slots agree exactly.
func BandKey(sig []uint64, band, rows int) uint64 {
	h := uint64(band) + 0x9e3779b97f4a7c15
	for _, v := range sig[band*rows : (band+1)*rows] {
		h ^= v
		h *= 0x100000001b3
	}
	return h
}

// EstimateJaccard estimates the Jaccard similarity of the two underlying
// value sets as the fraction of agreeing signature slots; empty-column
// sentinel slots never count as agreement.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != EmptySlot {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// Geometry normalizes a (signature, bands) request to a valid LSH geometry:
// defaults applied, bands clamped to the signature length, and rows-per-band
// derived. Slots beyond bands×rows contribute to Jaccard estimation but not
// to banding.
func Geometry(signature, bands int) (k, b, rows int) {
	k = signature
	if k <= 0 {
		k = DefaultSignature
	}
	b = bands
	if b <= 0 || b > k {
		b = DefaultBands
		if b > k {
			b = k
		}
	}
	rows = k / b
	if rows == 0 {
		rows = 1
	}
	return k, b, rows
}

func mix(x, salt uint64) uint64 {
	x ^= salt * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Package profile is the shared lazy column-profile layer of the suite:
// every piece of derived per-column data the matchers and the discovery
// index consume — distinct value sets, sorted distinct values, name tokens,
// trimmed/lowercased/parsed value forms, numeric vectors, summary statistics
// and MinHash signatures — is computed at most once per column and cached
// here, instead of being re-derived by every matcher on every Match call.
//
// A Profile is lazy (nothing is computed until first use) and
// concurrency-safe (each artifact is guarded by a sync.Once, signatures by a
// mutex-guarded per-length cache), so one profile can feed an ensemble's
// members, a worker-pool experiment grid, and concurrent discovery queries
// at the same time. A TableProfile bundles the profiles of one table; a
// Store (store.go) caches TableProfiles per corpus with explicit
// invalidation, stale detection, and a parallel Warm pass.
//
// Profiles built against a corpus-scoped value dictionary (internal/intern
// — the Store attaches its own automatically; NewPair attaches a private
// one to a one-shot pair) additionally cache their distinct sets as sorted
// interned-id slices and derive MinHash signatures from base hashes
// memoized once per dictionary entry, so the pairwise overlap kernels
// (ValueOverlap, Containment, and the matchers' sampled-overlap paths) run
// allocation-free on integers. Every interned path is bit-identical in
// scores to the dictionary-less reference path.
//
// The cached slices and maps returned by accessors are shared, not copied:
// callers must treat them as read-only.
package profile

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"valentine/internal/intern"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Profile is the lazily-computed bundle of derived data for one column.
type Profile struct {
	tableName string
	col       *table.Column

	// dict, when non-nil, is the corpus-scoped value dictionary shared by
	// every profile of one Store (or one NewPair/NewInterned call): distinct
	// values intern to dense uint32 ids, so pairwise overlap kernels run on
	// sorted id slices and MinHash derives from hashes memoized per
	// dictionary entry. hashOnly marks a read-only attachment (query-side):
	// cached hashes are reused but absent values are never inserted, so
	// transient queries cannot grow a served corpus's dictionary.
	dict     *intern.Dict
	hashOnly bool

	internOnce sync.Once
	idset      *intern.Set // sorted interned distinct ids (nil in hashOnly mode)
	baseHashes []uint64    // one base hash per distinct value, order unspecified

	distinctOnce sync.Once
	distinct     map[string]struct{}

	sortedOnce sync.Once
	sorted     []string

	tokensOnce sync.Once
	tokens     []string
	tokenSet   map[string]struct{}

	parsedOnce sync.Once
	parsed     []ParsedValue

	numericOnce sync.Once
	numeric     []float64

	numDistOnce sync.Once
	numDist     []float64

	statsOnce sync.Once
	stats     table.ColumnStats

	sigMu sync.Mutex
	sigs  map[int][]uint64
}

// ParsedValue is one distinct column value in its derived forms: trimmed,
// lowercased, and — when the trimmed form parses as a float — numeric.
type ParsedValue struct {
	Value string // whitespace-trimmed distinct value (never empty)
	Lower string // lowercase form of Value
	Num   float64
	IsNum bool
}

// TableName returns the owning table's name at profiling time.
func (p *Profile) TableName() string { return p.tableName }

// Name returns the column name.
func (p *Profile) Name() string { return p.col.Name }

// Type returns the column's inferred type.
func (p *Profile) Type() table.Type { return p.col.Type }

// Rows returns the number of cells (including empty ones).
func (p *Profile) Rows() int { return len(p.col.Values) }

// Column returns the underlying column for raw value access.
func (p *Profile) Column() *table.Column { return p.col }

// DistinctValues returns the cached set of distinct non-empty values.
func (p *Profile) DistinctValues() map[string]struct{} {
	p.distinctOnce.Do(func() {
		p.distinct = p.col.DistinctValues()
	})
	return p.distinct
}

// Distinct returns the number of distinct non-empty values.
func (p *Profile) Distinct() int { return len(p.DistinctValues()) }

// SortedDistinct returns the cached sorted distinct non-empty values.
func (p *Profile) SortedDistinct() []string {
	p.sortedOnce.Do(func() {
		set := p.DistinctValues()
		out := make([]string, 0, len(set))
		for v := range set {
			out = append(out, v)
		}
		sort.Strings(out)
		p.sorted = out
	})
	return p.sorted
}

// NameTokens returns the cached lowercase word tokens of the column name.
func (p *Profile) NameTokens() []string {
	p.tokensOnce.Do(func() {
		p.tokens = strutil.Tokenize(p.col.Name)
		p.tokenSet = strutil.ToSet(p.tokens)
	})
	return p.tokens
}

// NameTokenSet returns the cached name tokens as a set.
func (p *Profile) NameTokenSet() map[string]struct{} {
	p.NameTokens()
	return p.tokenSet
}

// SampleDistinct returns up to limit distinct values, deterministically:
// the full sorted set when it fits, otherwise a stride sample across it so
// the sample spans the value range. Both instance-overlap matchers (coma,
// jaccard-levenshtein) sample through this one helper, so their sampling
// determinism can never diverge. The result may alias the profile's cache
// and must be treated as read-only.
func (p *Profile) SampleDistinct(limit int) []string {
	vals := p.SortedDistinct()
	if len(vals) <= limit {
		return vals
	}
	out := make([]string, 0, limit)
	step := float64(len(vals)) / float64(limit)
	for i := 0; i < limit; i++ {
		out = append(out, vals[int(float64(i)*step)])
	}
	return out
}

// ParsedDistinct returns the distinct values in trimmed/lowercased/parsed
// form, ordered as SortedDistinct. Values that trim to the empty string are
// dropped; values whose trimmed forms collide are reported once.
func (p *Profile) ParsedDistinct() []ParsedValue {
	p.parsedOnce.Do(func() {
		sorted := p.SortedDistinct()
		out := make([]ParsedValue, 0, len(sorted))
		seen := make(map[string]struct{}, len(sorted))
		for _, raw := range sorted {
			v := strings.TrimSpace(raw)
			if v == "" {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			pv := ParsedValue{Value: v, Lower: strings.ToLower(v)}
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				pv.Num, pv.IsNum = f, true
			}
			out = append(out, pv)
		}
		p.parsed = out
	})
	return p.parsed
}

// NumericValues returns the cached numeric vector: every non-empty cell
// parseable as a float, in row order with multiplicity, plus its length.
func (p *Profile) NumericValues() ([]float64, int) {
	p.numericOnce.Do(func() {
		p.numeric, _ = p.col.NumericValues()
	})
	return p.numeric, len(p.numeric)
}

// NumericDistinctSorted returns the cached ascending numeric values of the
// column's parsed distinct values: one entry per ParsedDistinct entry whose
// trimmed form parses as a float. Distinct string forms of the same number
// ("1" and "1.0") contribute one entry each, so the length is exactly the
// number of numeric keys this column contributes to a cross-table value
// universe built over parsed distinct values — the distribution matcher's
// score bound counts rank-gap keys with it.
func (p *Profile) NumericDistinctSorted() []float64 {
	p.numDistOnce.Do(func() {
		parsed := p.ParsedDistinct()
		out := make([]float64, 0, len(parsed))
		for _, pv := range parsed {
			if pv.IsNum {
				out = append(out, pv.Num)
			}
		}
		sort.Float64s(out)
		p.numDist = out
	})
	return p.numDist
}

// Stats returns the cached summary statistics, computed from the cached
// distinct set and numeric vector.
func (p *Profile) Stats() table.ColumnStats {
	p.statsOnce.Do(func() {
		nums, _ := p.NumericValues()
		p.stats = p.col.StatsFromDerived(nums, p.Distinct())
	})
	return p.stats
}

// Dict returns the attached value dictionary (nil when the profile is
// dictionary-less).
func (p *Profile) Dict() *intern.Dict { return p.dict }

// InternedDistinct returns the column's distinct values as a sorted
// interned-id set over the attached dictionary, or nil when no dictionary
// is attached in interning mode. Two profiles sharing one dictionary can
// overlap through integer-set kernels (ValueOverlap/Containment do so
// automatically) with scores bit-identical to the map path.
func (p *Profile) InternedDistinct() *intern.Set {
	if p.dict == nil || p.hashOnly {
		return nil
	}
	p.buildIntern()
	return p.idset
}

// buildIntern computes the interned id set and/or memoized base hashes of
// the distinct values, once.
func (p *Profile) buildIntern() {
	p.internOnce.Do(func() {
		set := p.DistinctValues()
		hashes := make([]uint64, 0, len(set))
		if p.hashOnly {
			for v := range set {
				hashes = append(hashes, p.dict.HashOf(v))
			}
			p.baseHashes = hashes
			return
		}
		ids := make([]uint32, 0, len(set))
		for v := range set {
			id, h := p.dict.InternHash(v)
			ids = append(ids, id)
			hashes = append(hashes, h)
		}
		p.baseHashes = hashes
		p.idset = intern.NewSet(ids)
	})
}

// Signature returns the cached k-slot MinHash signature of the column's
// distinct values, computing and memoizing it per requested length. With a
// dictionary attached the signature derives from base hashes memoized per
// dictionary entry — each distinct value of the corpus is hashed once, ever
// — and is bit-identical to the dictionary-less SignatureOf path.
func (p *Profile) Signature(k int) []uint64 {
	if k <= 0 {
		k = DefaultSignature
	}
	set := p.DistinctValues() // outside the lock: sync.Once-guarded
	var hashes []uint64
	if p.dict != nil {
		p.buildIntern()
		hashes = p.baseHashes
	}
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	if sig, ok := p.sigs[k]; ok {
		return sig
	}
	var sig []uint64
	if hashes != nil {
		sig = SignatureFromHashes(hashes, k)
	} else {
		sig = SignatureOf(set, k)
	}
	if p.sigs == nil {
		p.sigs = make(map[int][]uint64, 2)
	}
	p.sigs[k] = sig
	return sig
}

// warm forces every artifact of the profile, including both suite
// signature lengths.
func (p *Profile) warm() {
	p.SortedDistinct()
	p.NameTokens()
	p.ParsedDistinct()
	p.NumericDistinctSorted()
	p.Stats()
	p.Signature(DefaultSignature)
	p.Signature(CompactSignature)
}

// TableProfile bundles the per-column profiles of one table plus
// table-level derived data (name tokens).
type TableProfile struct {
	tab      *table.Table
	cols     []*Profile
	dict     *intern.Dict // the dictionary shared by cols (nil when dict-less)
	hashOnly bool         // dict attached read-only (query-side)

	nameTokensOnce sync.Once
	nameTokens     []string
}

// NewColumn profiles one column outside any table context (tests, ad-hoc
// column comparisons). Matchers should profile whole tables with New.
func NewColumn(tableName string, c *table.Column) *Profile {
	return &Profile{tableName: tableName, col: c}
}

// New profiles a table without caching it in any Store and without a value
// dictionary: set kernels run on string maps, MinHash hashes raw values.
// This is the reference path the interned kernels are conformance-tested
// against. Derived data is still computed lazily and at most once, so the
// profiles of one New call can be shared across matchers.
func New(t *table.Table) *TableProfile {
	return newWith(t, nil, false)
}

// NewInterned profiles a table against a shared value dictionary: distinct
// values intern to dense ids (enabling the integer-set overlap kernels
// against any other profile on the same dictionary) and MinHash signatures
// derive from the dictionary's memoized base hashes. Scores are
// bit-identical to New's on every path.
func NewInterned(t *table.Table, d *intern.Dict) *TableProfile {
	if d == nil {
		return New(t)
	}
	return newWith(t, d, false)
}

// NewHashSharing profiles a table against a dictionary in read-only mode:
// MinHash reuses the dictionary's memoized hashes for values it already
// holds, but absent values are hashed on the fly and never inserted. This
// is the query-side attachment — a served catalog's dictionary tracks its
// corpus, and transient query values must not grow it.
func NewHashSharing(t *table.Table, d *intern.Dict) *TableProfile {
	if d == nil {
		return New(t)
	}
	return newWith(t, d, true)
}

// NewPair profiles two tables against one fresh private dictionary, so a
// one-shot pairwise match (the store-less Match path) still runs on the
// integer-set kernels. The dictionary's lifetime is the pair's.
func NewPair(source, target *table.Table) (*TableProfile, *TableProfile) {
	d := intern.NewDict()
	return newWith(source, d, false), newWith(target, d, false)
}

func newWith(t *table.Table, d *intern.Dict, hashOnly bool) *TableProfile {
	tp := &TableProfile{tab: t, cols: make([]*Profile, len(t.Columns)), dict: d, hashOnly: hashOnly}
	for i := range t.Columns {
		tp.cols[i] = &Profile{tableName: t.Name, col: &t.Columns[i], dict: d, hashOnly: hashOnly}
	}
	return tp
}

// Dict returns the value dictionary shared by this table's column profiles
// (nil when dictionary-less).
func (tp *TableProfile) Dict() *intern.Dict { return tp.dict }

// InterningDict returns the dictionary when the table's profiles intern
// their values into it — nil for dictionary-less and hash-sharing profiles.
// Two TableProfiles with the same non-nil InterningDict can compare
// interned-id sets column-for-column (matchers use this to pick between
// the integer-set and map scoring representations up front).
func (tp *TableProfile) InterningDict() *intern.Dict {
	if tp.hashOnly {
		return nil
	}
	return tp.dict
}

// Table returns the underlying table.
func (tp *TableProfile) Table() *table.Table { return tp.tab }

// Name returns the table name.
func (tp *TableProfile) Name() string { return tp.tab.Name }

// NumColumns returns the number of profiled columns.
func (tp *TableProfile) NumColumns() int { return len(tp.cols) }

// Column returns the profile of column i.
func (tp *TableProfile) Column(i int) *Profile { return tp.cols[i] }

// Columns returns the profiles in column order (read-only).
func (tp *TableProfile) Columns() []*Profile { return tp.cols }

// ColumnByName returns the profile of the named column, or nil.
func (tp *TableProfile) ColumnByName(name string) *Profile {
	for _, p := range tp.cols {
		if p.col.Name == name {
			return p
		}
	}
	return nil
}

// NameTokens returns the cached lowercase word tokens of the table name.
func (tp *TableProfile) NameTokens() []string {
	tp.nameTokensOnce.Do(func() {
		tp.nameTokens = strutil.Tokenize(tp.tab.Name)
	})
	return tp.nameTokens
}

// Warm forces every derived artifact of every column, so later concurrent
// readers only ever hit caches.
func (tp *TableProfile) Warm() {
	tp.NameTokens()
	for _, p := range tp.cols {
		p.warm()
	}
}

// SharedInterned returns both profiles' interned distinct sets when they
// are mutually comparable — same non-nil dictionary, interning mode — which
// is the precondition for every integer-set kernel below.
func SharedInterned(a, b *Profile) (sa, sb *intern.Set, ok bool) {
	if a.dict == nil || a.dict != b.dict || a.hashOnly || b.hashOnly {
		return nil, nil, false
	}
	return a.InternedDistinct(), b.InternedDistinct(), true
}

// ValueOverlap returns |A∩B| / |A∪B| over the cached distinct value sets —
// the profile-aware form of table.ValueOverlap. Profiles sharing a value
// dictionary overlap through the allocation-free integer-set kernel; the
// result is bit-identical to the map path either way.
func ValueOverlap(a, b *Profile) float64 {
	if sa, sb, ok := SharedInterned(a, b); ok {
		return intern.Jaccard(sa, sb)
	}
	return table.JaccardOfSets(a.DistinctValues(), b.DistinctValues())
}

// Containment returns |A∩B| / |A| over the cached distinct value sets —
// the profile-aware form of table.Containment. Like ValueOverlap it runs on
// the integer-set kernel when both profiles share a dictionary.
func Containment(a, b *Profile) float64 {
	if sa, sb, ok := SharedInterned(a, b); ok {
		return intern.Containment(sa, sb)
	}
	return table.ContainmentOfSets(a.DistinctValues(), b.DistinctValues())
}

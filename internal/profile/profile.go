// Package profile is the shared lazy column-profile layer of the suite:
// every piece of derived per-column data the matchers and the discovery
// index consume — distinct value sets, sorted distinct values, name tokens,
// trimmed/lowercased/parsed value forms, numeric vectors, summary statistics
// and MinHash signatures — is computed at most once per column and cached
// here, instead of being re-derived by every matcher on every Match call.
//
// A Profile is lazy (nothing is computed until first use) and
// concurrency-safe (each artifact is guarded by a sync.Once, signatures by a
// mutex-guarded per-length cache), so one profile can feed an ensemble's
// members, a worker-pool experiment grid, and concurrent discovery queries
// at the same time. A TableProfile bundles the profiles of one table; a
// Store (store.go) caches TableProfiles per corpus with explicit
// invalidation, stale detection, and a parallel Warm pass.
//
// The cached slices and maps returned by accessors are shared, not copied:
// callers must treat them as read-only.
package profile

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Profile is the lazily-computed bundle of derived data for one column.
type Profile struct {
	tableName string
	col       *table.Column

	distinctOnce sync.Once
	distinct     map[string]struct{}

	sortedOnce sync.Once
	sorted     []string

	tokensOnce sync.Once
	tokens     []string
	tokenSet   map[string]struct{}

	parsedOnce sync.Once
	parsed     []ParsedValue

	numericOnce sync.Once
	numeric     []float64

	statsOnce sync.Once
	stats     table.ColumnStats

	sigMu sync.Mutex
	sigs  map[int][]uint64
}

// ParsedValue is one distinct column value in its derived forms: trimmed,
// lowercased, and — when the trimmed form parses as a float — numeric.
type ParsedValue struct {
	Value string // whitespace-trimmed distinct value (never empty)
	Lower string // lowercase form of Value
	Num   float64
	IsNum bool
}

// TableName returns the owning table's name at profiling time.
func (p *Profile) TableName() string { return p.tableName }

// Name returns the column name.
func (p *Profile) Name() string { return p.col.Name }

// Type returns the column's inferred type.
func (p *Profile) Type() table.Type { return p.col.Type }

// Rows returns the number of cells (including empty ones).
func (p *Profile) Rows() int { return len(p.col.Values) }

// Column returns the underlying column for raw value access.
func (p *Profile) Column() *table.Column { return p.col }

// DistinctValues returns the cached set of distinct non-empty values.
func (p *Profile) DistinctValues() map[string]struct{} {
	p.distinctOnce.Do(func() {
		p.distinct = p.col.DistinctValues()
	})
	return p.distinct
}

// Distinct returns the number of distinct non-empty values.
func (p *Profile) Distinct() int { return len(p.DistinctValues()) }

// SortedDistinct returns the cached sorted distinct non-empty values.
func (p *Profile) SortedDistinct() []string {
	p.sortedOnce.Do(func() {
		set := p.DistinctValues()
		out := make([]string, 0, len(set))
		for v := range set {
			out = append(out, v)
		}
		sort.Strings(out)
		p.sorted = out
	})
	return p.sorted
}

// NameTokens returns the cached lowercase word tokens of the column name.
func (p *Profile) NameTokens() []string {
	p.tokensOnce.Do(func() {
		p.tokens = strutil.Tokenize(p.col.Name)
		p.tokenSet = strutil.ToSet(p.tokens)
	})
	return p.tokens
}

// NameTokenSet returns the cached name tokens as a set.
func (p *Profile) NameTokenSet() map[string]struct{} {
	p.NameTokens()
	return p.tokenSet
}

// ParsedDistinct returns the distinct values in trimmed/lowercased/parsed
// form, ordered as SortedDistinct. Values that trim to the empty string are
// dropped; values whose trimmed forms collide are reported once.
func (p *Profile) ParsedDistinct() []ParsedValue {
	p.parsedOnce.Do(func() {
		sorted := p.SortedDistinct()
		out := make([]ParsedValue, 0, len(sorted))
		seen := make(map[string]struct{}, len(sorted))
		for _, raw := range sorted {
			v := strings.TrimSpace(raw)
			if v == "" {
				continue
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			pv := ParsedValue{Value: v, Lower: strings.ToLower(v)}
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				pv.Num, pv.IsNum = f, true
			}
			out = append(out, pv)
		}
		p.parsed = out
	})
	return p.parsed
}

// NumericValues returns the cached numeric vector: every non-empty cell
// parseable as a float, in row order with multiplicity, plus its length.
func (p *Profile) NumericValues() ([]float64, int) {
	p.numericOnce.Do(func() {
		p.numeric, _ = p.col.NumericValues()
	})
	return p.numeric, len(p.numeric)
}

// Stats returns the cached summary statistics, computed from the cached
// distinct set and numeric vector.
func (p *Profile) Stats() table.ColumnStats {
	p.statsOnce.Do(func() {
		nums, _ := p.NumericValues()
		p.stats = p.col.StatsFromDerived(nums, p.Distinct())
	})
	return p.stats
}

// Signature returns the cached k-slot MinHash signature of the column's
// distinct values, computing and memoizing it per requested length.
func (p *Profile) Signature(k int) []uint64 {
	if k <= 0 {
		k = DefaultSignature
	}
	set := p.DistinctValues() // outside the lock: sync.Once-guarded
	p.sigMu.Lock()
	defer p.sigMu.Unlock()
	if sig, ok := p.sigs[k]; ok {
		return sig
	}
	sig := SignatureOf(set, k)
	if p.sigs == nil {
		p.sigs = make(map[int][]uint64, 2)
	}
	p.sigs[k] = sig
	return sig
}

// warm forces every artifact of the profile, including both suite
// signature lengths.
func (p *Profile) warm() {
	p.SortedDistinct()
	p.NameTokens()
	p.ParsedDistinct()
	p.Stats()
	p.Signature(DefaultSignature)
	p.Signature(CompactSignature)
}

// TableProfile bundles the per-column profiles of one table plus
// table-level derived data (name tokens).
type TableProfile struct {
	tab  *table.Table
	cols []*Profile

	nameTokensOnce sync.Once
	nameTokens     []string
}

// NewColumn profiles one column outside any table context (tests, ad-hoc
// column comparisons). Matchers should profile whole tables with New.
func NewColumn(tableName string, c *table.Column) *Profile {
	return &Profile{tableName: tableName, col: c}
}

// New profiles a table without caching it in any Store. Derived data is
// still computed lazily and at most once, so the profiles of one New call
// can be shared across matchers (the ensemble's members, for instance).
func New(t *table.Table) *TableProfile {
	tp := &TableProfile{tab: t, cols: make([]*Profile, len(t.Columns))}
	for i := range t.Columns {
		tp.cols[i] = &Profile{tableName: t.Name, col: &t.Columns[i]}
	}
	return tp
}

// Table returns the underlying table.
func (tp *TableProfile) Table() *table.Table { return tp.tab }

// Name returns the table name.
func (tp *TableProfile) Name() string { return tp.tab.Name }

// NumColumns returns the number of profiled columns.
func (tp *TableProfile) NumColumns() int { return len(tp.cols) }

// Column returns the profile of column i.
func (tp *TableProfile) Column(i int) *Profile { return tp.cols[i] }

// Columns returns the profiles in column order (read-only).
func (tp *TableProfile) Columns() []*Profile { return tp.cols }

// ColumnByName returns the profile of the named column, or nil.
func (tp *TableProfile) ColumnByName(name string) *Profile {
	for _, p := range tp.cols {
		if p.col.Name == name {
			return p
		}
	}
	return nil
}

// NameTokens returns the cached lowercase word tokens of the table name.
func (tp *TableProfile) NameTokens() []string {
	tp.nameTokensOnce.Do(func() {
		tp.nameTokens = strutil.Tokenize(tp.tab.Name)
	})
	return tp.nameTokens
}

// Warm forces every derived artifact of every column, so later concurrent
// readers only ever hit caches.
func (tp *TableProfile) Warm() {
	tp.NameTokens()
	for _, p := range tp.cols {
		p.warm()
	}
}

// ValueOverlap returns |A∩B| / |A∪B| over the cached distinct value sets —
// the profile-aware form of table.ValueOverlap.
func ValueOverlap(a, b *Profile) float64 {
	return table.JaccardOfSets(a.DistinctValues(), b.DistinctValues())
}

// Containment returns |A∩B| / |A| over the cached distinct value sets —
// the profile-aware form of table.Containment.
func Containment(a, b *Profile) float64 {
	return table.ContainmentOfSets(a.DistinctValues(), b.DistinctValues())
}

package wordnet

import (
	"testing"
	"testing/quick"
)

func TestSynonyms(t *testing.T) {
	th := Default()
	syn := th.Synonyms("customer")
	found := false
	for _, s := range syn {
		if s == "client" {
			found = true
		}
	}
	if !found {
		t.Fatalf("customer synonyms %v missing client", syn)
	}
	if th.Synonyms("xyzzy") != nil {
		t.Error("unknown word should return nil")
	}
}

func TestAreSynonyms(t *testing.T) {
	th := Default()
	cases := []struct {
		a, b string
		want bool
	}{
		{"customer", "client", true},
		{"Client", "CUSTOMER", true}, // case-insensitive
		{"street", "road", true},
		{"country", "nation", true},
		{"zip", "postal", true},
		{"singer", "artist", true},
		{"partner", "spouse", true},
		{"customer", "street", false},
		{"same", "same", true}, // identity even if unknown
		{"unknown1", "unknown2", false},
	}
	for _, c := range cases {
		if got := th.AreSynonyms(c.a, c.b); got != c.want {
			t.Errorf("AreSynonyms(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityHierarchy(t *testing.T) {
	th := Default()
	if got := th.Similarity("customer", "client"); got != 1 {
		t.Errorf("synonyms should score 1, got %v", got)
	}
	// customer IS-A person: distance 1 → 0.5
	if got := th.Similarity("customer", "person"); got != 0.5 {
		t.Errorf("customer~person = %v, want 0.5", got)
	}
	// related through hierarchy but further apart
	got := th.Similarity("customer", "employee")
	if got <= 0 || got >= 0.5 {
		t.Errorf("customer~employee = %v, want in (0,0.5)", got)
	}
	if got := th.Similarity("customer", "qwertyuiop"); got != 0 {
		t.Errorf("unknown should score 0, got %v", got)
	}
}

func TestContains(t *testing.T) {
	th := Default()
	if !th.Contains("assay") || !th.Contains("SPRINT") {
		t.Error("domain vocabulary missing")
	}
	if th.Contains("flibbertigibbet") {
		t.Error("should not contain nonsense")
	}
}

func TestCustomThesaurus(t *testing.T) {
	th := New()
	a := th.AddSynset("alpha", "first")
	b := th.AddSynset("beta", "second")
	root := th.AddSynset("letter")
	th.AddHypernym(a, root)
	th.AddHypernym(b, root)
	if !th.AreSynonyms("alpha", "first") {
		t.Error("synset membership")
	}
	// alpha -> letter -> beta : distance 2 → 1/3
	if got := th.Similarity("alpha", "beta"); got != 1.0/3 {
		t.Errorf("path similarity = %v, want 1/3", got)
	}
	if th.NumSynsets() != 3 {
		t.Errorf("NumSynsets = %d", th.NumSynsets())
	}
}

func TestAddSynsetSkipsBlanks(t *testing.T) {
	th := New()
	th.AddSynset(" a ", "", "b")
	if !th.AreSynonyms("a", "b") {
		t.Error("trimmed words should be synonyms")
	}
	if th.Contains("") {
		t.Error("blank should not be stored")
	}
}

// Property: Similarity is symmetric and within [0,1].
func TestSimilaritySymmetryProperty(t *testing.T) {
	th := Default()
	words := []string{"customer", "client", "person", "street", "assay", "song", "team", "zzz"}
	f := func(i, j uint8) bool {
		a := words[int(i)%len(words)]
		b := words[int(j)%len(words)]
		s1, s2 := th.Similarity(a, b), th.Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default should return the same instance")
	}
}

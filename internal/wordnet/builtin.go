package wordnet

import "sync"

var (
	defaultOnce sync.Once
	defaultThes *Thesaurus
)

// Default returns the embedded schema-domain thesaurus shared by the suite.
// The returned value is read-only and safe for concurrent use.
func Default() *Thesaurus {
	defaultOnce.Do(func() {
		defaultThes = buildDefault()
		defaultThes.adjacency() // warm the memoized graph before publication
	})
	return defaultThes
}

// buildDefault constructs the curated lexical graph. Synsets are grouped by
// the dataset domains Valentine fabricates over; hypernym edges give Cupid's
// linguistic matcher a shallow concept hierarchy.
func buildDefault() *Thesaurus {
	t := New()

	// --- Broad concepts (hypernym roots) ---
	entity := t.AddSynset("entity", "thing", "object")
	person := t.AddSynset("person", "individual", "human")
	organization := t.AddSynset("organization", "organisation", "institution", "company", "firm")
	location := t.AddSynset("location", "place", "site")
	identifier := t.AddSynset("identifier", "id", "key", "code")
	quantity := t.AddSynset("quantity", "amount", "number", "count")
	temporal := t.AddSynset("time", "date", "datetime", "timestamp")
	money := t.AddSynset("money", "currency", "cash")
	document := t.AddSynset("document", "record", "entry")
	t.AddHypernym(person, entity)
	t.AddHypernym(organization, entity)
	t.AddHypernym(location, entity)
	t.AddHypernym(document, entity)

	// --- People & customers ---
	customer := t.AddSynset("customer", "client", "patron", "buyer", "purchaser")
	t.AddHypernym(customer, person)
	name := t.AddSynset("name", "title", "label", "designation")
	forename := t.AddSynset("forename", "firstname", "first", "given", "givenname")
	surname := t.AddSynset("surname", "lastname", "last", "family", "familyname")
	t.AddHypernym(forename, name)
	t.AddHypernym(surname, name)
	t.AddSynset("gender", "sex")
	birth := t.AddSynset("birthdate", "birthday", "dob", "born")
	t.AddHypernym(birth, temporal)
	t.AddSynset("age", "years")
	spouse := t.AddSynset("spouse", "partner", "husband", "wife", "consort")
	t.AddHypernym(spouse, person)
	parent := t.AddSynset("parent", "father", "mother", "guardian")
	t.AddHypernym(parent, person)
	child := t.AddSynset("child", "kid", "offspring", "son", "daughter")
	t.AddHypernym(child, person)
	employee := t.AddSynset("employee", "worker", "staff", "personnel")
	t.AddHypernym(employee, person)
	manager := t.AddSynset("manager", "supervisor", "boss", "head", "lead", "chief")
	t.AddHypernym(manager, employee)
	owner := t.AddSynset("owner", "holder", "proprietor")
	t.AddHypernym(owner, person)
	t.AddSynset("citizen", "national", "resident")
	t.AddSynset("marital", "marriage", "married")

	// --- Contact & address ---
	address := t.AddSynset("address", "addr", "residence", "location")
	t.AddHypernym(address, location)
	street := t.AddSynset("street", "st", "road", "rd", "avenue", "ave", "lane")
	t.AddHypernym(street, address)
	city := t.AddSynset("city", "town", "municipality")
	t.AddHypernym(city, location)
	state := t.AddSynset("state", "province", "region")
	t.AddHypernym(state, location)
	country := t.AddSynset("country", "nation", "cntr", "cntry", "land")
	t.AddHypernym(country, location)
	postcode := t.AddSynset("postcode", "postal", "zip", "zipcode", "po", "pcode")
	t.AddHypernym(postcode, identifier)
	phone := t.AddSynset("phone", "telephone", "tel", "mobile", "cell")
	t.AddHypernym(phone, identifier)
	email := t.AddSynset("email", "mail", "e-mail")
	t.AddHypernym(email, identifier)

	// --- Commerce & finance ---
	price := t.AddSynset("price", "cost", "fee", "charge", "rate")
	t.AddHypernym(price, money)
	income := t.AddSynset("income", "salary", "wage", "earnings", "pay")
	t.AddHypernym(income, money)
	balance := t.AddSynset("balance", "total", "sum", "net")
	t.AddHypernym(balance, money)
	credit := t.AddSynset("credit", "rating", "score")
	t.AddHypernym(credit, quantity)
	order := t.AddSynset("order", "purchase", "transaction", "sale")
	t.AddHypernym(order, document)
	product := t.AddSynset("product", "item", "article", "goods")
	t.AddHypernym(product, entity)
	vendor := t.AddSynset("vendor", "supplier", "seller", "merchant")
	t.AddHypernym(vendor, organization)
	account := t.AddSynset("account", "acct")
	t.AddHypernym(account, document)
	tax := t.AddSynset("tax", "levy", "duty")
	t.AddHypernym(tax, money)
	t.AddSynset("quantity", "qty", "units")
	t.AddSynset("discount", "rebate", "reduction")
	t.AddSynset("invoice", "bill", "receipt")

	// --- Chemistry / assay (ChEMBL stand-in) ---
	assay := t.AddSynset("assay", "test", "experiment", "trial")
	t.AddHypernym(assay, document)
	compound := t.AddSynset("compound", "molecule", "substance", "chemical")
	t.AddHypernym(compound, entity)
	target := t.AddSynset("target", "receptor", "protein")
	t.AddHypernym(target, entity)
	organism := t.AddSynset("organism", "species", "taxon")
	t.AddHypernym(organism, entity)
	dose := t.AddSynset("dose", "dosage", "concentration")
	t.AddHypernym(dose, quantity)
	potency := t.AddSynset("potency", "activity", "efficacy")
	t.AddHypernym(potency, quantity)
	t.AddSynset("cell", "cellline", "culture")
	t.AddSynset("tissue", "organ")
	measurement := t.AddSynset("measurement", "measure", "value", "reading", "observation")
	t.AddHypernym(measurement, quantity)
	unit := t.AddSynset("unit", "uom", "units")
	t.AddHypernym(unit, quantity)
	t.AddSynset("description", "desc", "comment", "note", "remark", "text")
	t.AddSynset("type", "kind", "category", "class", "classification")
	t.AddSynset("source", "origin", "provenance")
	t.AddSynset("journal", "publication", "paper")
	t.AddSynset("reference", "ref", "citation")
	t.AddSynset("confidence", "certainty", "reliability")

	// --- Music / WikiData singers ---
	artist := t.AddSynset("artist", "singer", "musician", "performer", "vocalist")
	t.AddHypernym(artist, person)
	song := t.AddSynset("song", "track", "single", "recording")
	t.AddHypernym(song, entity)
	album := t.AddSynset("album", "lp", "release")
	t.AddHypernym(album, entity)
	genre := t.AddSynset("genre", "style", "category")
	t.AddHypernym(genre, entity)
	t.AddSynset("band", "group", "ensemble")
	t.AddSynset("instrument", "guitar", "piano")
	award := t.AddSynset("award", "prize", "honor", "honour", "grammy")
	t.AddHypernym(award, entity)
	t.AddSynset("debut", "start", "beginning")
	t.AddSynset("occupation", "profession", "job", "career", "work")

	// --- Movies / restaurants (Magellan stand-in) ---
	movie := t.AddSynset("movie", "film", "picture", "feature")
	t.AddHypernym(movie, entity)
	director := t.AddSynset("director", "filmmaker")
	t.AddHypernym(director, person)
	actor := t.AddSynset("actor", "actress", "star", "cast")
	t.AddHypernym(actor, person)
	t.AddSynset("runtime", "duration", "length", "minutes")
	t.AddSynset("restaurant", "eatery", "diner", "bistro")
	t.AddSynset("cuisine", "food", "fare")
	review := t.AddSynset("review", "critique", "evaluation")
	t.AddHypernym(review, document)

	// --- Software delivery / SCRUM (ING stand-in) ---
	sprint := t.AddSynset("sprint", "iteration", "cycle")
	t.AddHypernym(sprint, temporal)
	task := t.AddSynset("task", "ticket", "issue", "workitem", "story")
	t.AddHypernym(task, document)
	epic := t.AddSynset("epic", "initiative", "theme")
	t.AddHypernym(epic, document)
	team := t.AddSynset("team", "squad", "crew", "unit")
	t.AddHypernym(team, organization)
	t.AddSynset("status", "state", "phase", "stage")
	t.AddSynset("priority", "severity", "urgency")
	application := t.AddSynset("application", "app", "software", "program", "system")
	t.AddHypernym(application, entity)
	server := t.AddSynset("server", "host", "machine", "node")
	t.AddHypernym(server, entity)
	department := t.AddSynset("department", "dept", "division", "unit")
	t.AddHypernym(department, organization)
	t.AddSynset("version", "release", "revision")
	t.AddSynset("deadline", "due", "duedate")
	t.AddSynset("estimate", "estimation", "forecast")
	t.AddSynset("backlog", "queue", "pipeline")
	t.AddSynset("hardware", "infrastructure", "equipment")
	t.AddSynset("environment", "env", "platform")

	// --- Civic / open data ---
	permit := t.AddSynset("permit", "license", "licence", "authorization")
	t.AddHypernym(permit, document)
	budget := t.AddSynset("budget", "allocation", "funding")
	t.AddHypernym(budget, money)
	agency := t.AddSynset("agency", "bureau", "office", "authority")
	t.AddHypernym(agency, organization)
	population := t.AddSynset("population", "inhabitants", "residents")
	t.AddHypernym(population, quantity)
	t.AddSynset("district", "ward", "zone", "borough")
	t.AddSynset("year", "yr", "annum")
	t.AddSynset("month", "mo")
	t.AddSynset("latitude", "lat")
	t.AddSynset("longitude", "lon", "lng", "long")
	t.AddSynset("area", "surface", "extent")
	t.AddSynset("start", "begin", "open", "from")
	t.AddSynset("end", "finish", "close", "until", "to")
	t.AddSynset("contact", "liaison")

	// silence unused-variable lint for roots that only anchor hypernyms
	_ = []int{identifier, city, state, postcode, phone, email, price, income,
		balance, credit, order, product, vendor, account, tax, assay, compound,
		target, organism, dose, potency, measurement, unit, artist, song, album,
		genre, award, movie, director, actor, review, sprint, task, epic, team,
		application, server, department, permit, budget, agency, population,
		street, owner, manager, spouse, parent, child}
	return t
}

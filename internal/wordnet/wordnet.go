// Package wordnet implements a miniature WordNet-style lexical knowledge
// base: synsets connected by synonym and hypernym edges, with path-based
// word similarity.
//
// The original Valentine uses Princeton WordNet as Cupid's thesaurus. This
// package substitutes a curated, embedded lexical graph covering the
// schema-domain vocabulary that the fabricated datasets use (people,
// addresses, commerce, chemistry/assay, civic, software-delivery terms).
// Cupid only needs synonym and hypernym lookups over schema-name tokens, so
// a domain-targeted thesaurus preserves the matching behaviour.
package wordnet

import (
	"sort"
	"strings"
)

// Thesaurus is a lexical graph of synsets.
type Thesaurus struct {
	// wordToSynsets maps a lowercase word to the ids of synsets containing it.
	wordToSynsets map[string][]int
	// synsets[i] is the word list of synset i.
	synsets [][]string
	// hypernyms[i] lists the synset ids that are hypernyms of synset i.
	hypernyms map[int][]int
	// adj memoizes the undirected hypernym adjacency for path queries; it
	// is invalidated by AddHypernym.
	adj map[int][]int
}

// New returns an empty thesaurus.
func New() *Thesaurus {
	return &Thesaurus{
		wordToSynsets: make(map[string][]int),
		hypernyms:     make(map[int][]int),
	}
}

// AddSynset registers a set of mutual synonyms and returns the synset id.
func (t *Thesaurus) AddSynset(words ...string) int {
	id := len(t.synsets)
	norm := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" {
			continue
		}
		norm = append(norm, w)
		t.wordToSynsets[w] = append(t.wordToSynsets[w], id)
	}
	t.synsets = append(t.synsets, norm)
	return id
}

// AddHypernym declares that synset hyper is a hypernym (broader concept) of
// synset hypo.
func (t *Thesaurus) AddHypernym(hypo, hyper int) {
	t.hypernyms[hypo] = append(t.hypernyms[hypo], hyper)
	t.adj = nil
}

// NumSynsets returns the number of synsets.
func (t *Thesaurus) NumSynsets() int { return len(t.synsets) }

// Synonyms returns all words sharing a synset with w (excluding w itself),
// sorted. Unknown words return nil.
func (t *Thesaurus) Synonyms(word string) []string {
	word = strings.ToLower(strings.TrimSpace(word))
	ids := t.wordToSynsets[word]
	if len(ids) == 0 {
		return nil
	}
	set := make(map[string]struct{})
	for _, id := range ids {
		for _, w := range t.synsets[id] {
			if w != word {
				set[w] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// AreSynonyms reports whether a and b share a synset.
func (t *Thesaurus) AreSynonyms(a, b string) bool {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b {
		return true
	}
	bIDs := t.wordToSynsets[b]
	if len(bIDs) == 0 {
		return false
	}
	bSet := make(map[int]struct{}, len(bIDs))
	for _, id := range bIDs {
		bSet[id] = struct{}{}
	}
	for _, id := range t.wordToSynsets[a] {
		if _, ok := bSet[id]; ok {
			return true
		}
	}
	return false
}

// Contains reports whether the word appears in any synset.
func (t *Thesaurus) Contains(word string) bool {
	_, ok := t.wordToSynsets[strings.ToLower(strings.TrimSpace(word))]
	return ok
}

// pathDistance returns the shortest hypernym-path distance between any
// synset of a and any synset of b, following hypernym edges in both
// directions (treating the hierarchy as an undirected graph, the classic
// path-similarity formulation). Returns -1 when unreachable.
func (t *Thesaurus) pathDistance(a, b string) int {
	aIDs := t.wordToSynsets[strings.ToLower(a)]
	bIDs := t.wordToSynsets[strings.ToLower(b)]
	if len(aIDs) == 0 || len(bIDs) == 0 {
		return -1
	}
	target := make(map[int]struct{}, len(bIDs))
	for _, id := range bIDs {
		target[id] = struct{}{}
	}
	adj := t.adjacency()
	dist := make(map[int]int, len(aIDs))
	queue := make([]int, 0, len(aIDs))
	for _, id := range aIDs {
		dist[id] = 0
		queue = append(queue, id)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, ok := target[cur]; ok {
			return dist[cur]
		}
		for _, next := range adj[cur] {
			if _, seen := dist[next]; !seen {
				dist[next] = dist[cur] + 1
				queue = append(queue, next)
			}
		}
	}
	return -1
}

// adjacency returns the memoized undirected hypernym graph. Not safe for
// concurrent first use while still mutating; Default()'s thesaurus is fully
// built (and its adjacency warmed) before publication.
func (t *Thesaurus) adjacency() map[int][]int {
	if t.adj != nil {
		return t.adj
	}
	adj := make(map[int][]int)
	for hypo, hypers := range t.hypernyms {
		for _, hyper := range hypers {
			adj[hypo] = append(adj[hypo], hyper)
			adj[hyper] = append(adj[hyper], hypo)
		}
	}
	t.adj = adj
	return adj
}

// Similarity returns a word similarity in [0,1]: 1 for equal words or
// synonyms, 1/(1+d) for hypernym-path distance d, and 0 for unrelated or
// unknown words.
func (t *Thesaurus) Similarity(a, b string) float64 {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b && a != "" {
		return 1
	}
	if t.AreSynonyms(a, b) {
		return 1
	}
	d := t.pathDistance(a, b)
	if d < 0 {
		return 0
	}
	return 1 / float64(1+d)
}

package table

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Table {
	t := New("clients")
	t.AddColumn("Client", []string{"J. Watts", "B. Mei", "Q. Man"})
	t.AddColumn("PO", []string{"39499", "34682", "35472"})
	t.AddColumn("Balance", []string{"10.5", "2.25", "7"})
	return t
}

func TestAddColumnAndShape(t *testing.T) {
	tab := sample()
	if got := tab.NumColumns(); got != 3 {
		t.Fatalf("NumColumns = %d, want 3", got)
	}
	if got := tab.NumRows(); got != 3 {
		t.Fatalf("NumRows = %d, want 3", got)
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTypeInference(t *testing.T) {
	tab := sample()
	cases := map[string]Type{"Client": String, "PO": Int, "Balance": Float}
	for name, want := range cases {
		if got := tab.Column(name).Type; got != want {
			t.Errorf("column %s type = %v, want %v", name, got, want)
		}
	}
}

func TestInferTypeTable(t *testing.T) {
	cases := []struct {
		name string
		vals []string
		want Type
	}{
		{"ints", []string{"1", "2", "-3"}, Int},
		{"floats", []string{"1.5", "2"}, Float},
		{"bools", []string{"true", "FALSE", "yes"}, Bool},
		{"dates", []string{"2020-01-31", "1999/12/01"}, Date},
		{"strings", []string{"a", "1"}, String},
		{"empty", nil, String},
		{"all-blank", []string{"", " "}, String},
		{"bad-date-month", []string{"2020-13-01"}, String},
		{"bad-date-sep", []string{"2020-01/01"}, String},
		{"int-with-blanks", []string{"", "42", ""}, Int},
	}
	for _, c := range cases {
		if got := InferType(c.vals); got != c.want {
			t.Errorf("%s: InferType = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTypeCompatible(t *testing.T) {
	if !Int.Compatible(Float) || !Float.Compatible(Int) {
		t.Error("numerics should be compatible")
	}
	if !String.Compatible(Date) || !Date.Compatible(String) {
		t.Error("string is compatible with everything")
	}
	if Bool.Compatible(Date) {
		t.Error("bool and date should be incompatible")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := &Table{Name: "", Columns: nil}
	if err := bad.Validate(); err == nil {
		t.Error("empty name should fail")
	}
	dup := New("x")
	dup.AddColumn("a", []string{"1"})
	dup.AddColumn("a", []string{"2"})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate column should fail")
	}
	rag := New("x")
	rag.Columns = []Column{{Name: "a", Values: []string{"1"}}, {Name: "b", Values: []string{"1", "2"}}}
	if err := rag.Validate(); err == nil {
		t.Error("ragged columns should fail")
	}
	blank := New("x")
	blank.Columns = []Column{{Name: "", Values: nil}}
	if err := blank.Validate(); err == nil {
		t.Error("blank column name should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := sample()
	cp := tab.Clone()
	cp.Columns[0].Values[0] = "changed"
	cp.Columns[0].Name = "renamed"
	if tab.Columns[0].Values[0] == "changed" {
		t.Error("Clone shares value storage")
	}
	if tab.Columns[0].Name == "renamed" {
		t.Error("Clone shares column headers")
	}
}

func TestProject(t *testing.T) {
	tab := sample()
	p, err := tab.Project("Balance", "Client")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ColumnNames(); !reflect.DeepEqual(got, []string{"Balance", "Client"}) {
		t.Fatalf("Project names = %v", got)
	}
	if _, err := tab.Project("nope"); err == nil {
		t.Error("Project of unknown column should fail")
	}
}

func TestSelectRows(t *testing.T) {
	tab := sample()
	s, err := tab.SelectRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Column("Client").Values; !reflect.DeepEqual(got, []string{"Q. Man", "J. Watts"}) {
		t.Fatalf("SelectRows = %v", got)
	}
	if _, err := tab.SelectRows([]int{99}); err == nil {
		t.Error("out-of-range row should fail")
	}
}

func TestRename(t *testing.T) {
	tab := sample()
	r := tab.Rename(strings.ToUpper)
	if r.Columns[0].Name != "CLIENT" {
		t.Fatalf("Rename = %q", r.Columns[0].Name)
	}
	if tab.Columns[0].Name != "Client" {
		t.Error("Rename mutated the receiver")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := sample()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("clients", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ColumnNames(), tab.ColumnNames()) {
		t.Fatalf("header mismatch: %v vs %v", back.ColumnNames(), tab.ColumnNames())
	}
	for i := range tab.Columns {
		if !reflect.DeepEqual(back.Columns[i].Values, tab.Columns[i].Values) {
			t.Errorf("column %s values differ", tab.Columns[i].Name)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty csv should fail")
	}
}

func TestReadCSVRagged(t *testing.T) {
	tab, err := ReadCSV("x", strings.NewReader("a,b\n1\n2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Column("b").Values; !reflect.DeepEqual(got, []string{"", "3"}) {
		t.Fatalf("ragged fill = %v", got)
	}
}

func TestStats(t *testing.T) {
	c := Column{Name: "n", Values: []string{"1", "2", "3", "4", ""}}
	s := c.Stats()
	if s.Count != 4 || s.Distinct != 4 || s.NumericCount != 4 {
		t.Fatalf("stats counts = %+v", s)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if s.Median != 2.5 {
		t.Errorf("Median = %v, want 2.5", s.Median)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if got := s.Uniqueness(); got != 1 {
		t.Errorf("Uniqueness = %v", got)
	}
}

func TestStatsEmptyColumn(t *testing.T) {
	c := Column{Name: "e", Values: []string{"", ""}}
	s := c.Stats()
	if s.Count != 0 || s.MinLength != 0 || s.Uniqueness() != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestQuantiles(t *testing.T) {
	c := Column{Name: "n", Values: []string{"0", "10", "20", "30", "40"}}
	q := c.Quantiles(5)
	want := []float64{0, 10, 20, 30, 40}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("Quantiles = %v, want %v", q, want)
	}
	if c.Quantiles(1) != nil {
		t.Error("q<2 should return nil")
	}
	str := Column{Name: "s", Values: []string{"a"}}
	if str.Quantiles(4) != nil {
		t.Error("non-numeric column should return nil quantiles")
	}
}

func TestRowAndString(t *testing.T) {
	tab := sample()
	if got := tab.Row(1); !reflect.DeepEqual(got, []string{"B. Mei", "34682", "2.25"}) {
		t.Fatalf("Row = %v", got)
	}
	if got := tab.String(); got != "clients(3 cols, 3 rows)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: SelectRows preserves column count and renames nothing.
func TestSelectRowsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		tab := sample()
		idx := make([]int, 0, len(raw))
		for _, r := range raw {
			idx = append(idx, int(r)%tab.NumRows())
		}
		s, err := tab.SelectRows(idx)
		if err != nil {
			return false
		}
		return s.NumColumns() == tab.NumColumns() && s.NumRows() == len(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round-trip preserves cell contents for printable values.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		clean := func(s string) string {
			s = strings.ReplaceAll(s, "\x00", "")
			s = strings.TrimSpace(s)
			if s == "" {
				s = "x"
			}
			return s
		}
		tab := New("t")
		tab.AddColumn("col", []string{clean(a), clean(b), clean(c)})
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("t", &buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back.Columns[0].Values, tab.Columns[0].Values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

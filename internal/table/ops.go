package table

import (
	"fmt"
	"strings"
)

// Join performs an inner equi-join of left and right on leftCol = rightCol.
// The result carries left's columns followed by right's columns (excluding
// the join column, which would duplicate); name collisions on the right are
// disambiguated with a "right_" prefix. This is what a dataset-discovery
// pipeline executes once a matcher has proposed a joinable correspondence.
func Join(left, right *Table, leftCol, rightCol string) (*Table, error) {
	if err := left.Validate(); err != nil {
		return nil, err
	}
	if err := right.Validate(); err != nil {
		return nil, err
	}
	lc := left.Column(leftCol)
	if lc == nil {
		return nil, fmt.Errorf("table: join column %q not in %q", leftCol, left.Name)
	}
	rc := right.Column(rightCol)
	if rc == nil {
		return nil, fmt.Errorf("table: join column %q not in %q", rightCol, right.Name)
	}
	// Hash the right side.
	rightRows := make(map[string][]int, len(rc.Values))
	for i, v := range rc.Values {
		if v == "" {
			continue
		}
		rightRows[v] = append(rightRows[v], i)
	}
	var leftIdx, rightIdx []int
	for i, v := range lc.Values {
		if v == "" {
			continue
		}
		for _, j := range rightRows[v] {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := New(left.Name + "_join_" + right.Name)
	for _, c := range left.Columns {
		vals := make([]string, len(leftIdx))
		for k, i := range leftIdx {
			vals[k] = c.Values[i]
		}
		out.Columns = append(out.Columns, Column{Name: c.Name, Type: c.Type, Values: vals})
	}
	used := make(map[string]bool, len(out.Columns))
	for _, c := range out.Columns {
		used[c.Name] = true
	}
	for _, c := range right.Columns {
		if c.Name == rightCol {
			continue
		}
		name := c.Name
		if used[name] {
			name = "right_" + name
		}
		used[name] = true
		vals := make([]string, len(rightIdx))
		for k, j := range rightIdx {
			vals[k] = c.Values[j]
		}
		out.Columns = append(out.Columns, Column{Name: name, Type: c.Type, Values: vals})
	}
	return out, nil
}

// Union appends b's rows under a's schema, translating b's columns through
// mapping (a-column → b-column). Every column of a must be mapped. The
// result deduplicates exact row duplicates — the UNION (not UNION ALL)
// semantics dataset-discovery union search assumes.
func Union(a, b *Table, mapping map[string]string) (*Table, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	bCols := make([]*Column, 0, len(a.Columns))
	for _, ac := range a.Columns {
		bName, ok := mapping[ac.Name]
		if !ok {
			return nil, fmt.Errorf("table: union mapping missing column %q", ac.Name)
		}
		bc := b.Column(bName)
		if bc == nil {
			return nil, fmt.Errorf("table: union mapping targets unknown column %q in %q", bName, b.Name)
		}
		bCols = append(bCols, bc)
	}
	out := New(a.Name + "_union_" + b.Name)
	seen := make(map[string]bool, a.NumRows()+b.NumRows())
	cols := make([][]string, len(a.Columns))
	addRow := func(cells []string) {
		key := strings.Join(cells, "\x1f")
		if seen[key] {
			return
		}
		seen[key] = true
		for i, v := range cells {
			cols[i] = append(cols[i], v)
		}
	}
	for i := 0; i < a.NumRows(); i++ {
		addRow(a.Row(i))
	}
	row := make([]string, len(bCols))
	for i := 0; i < b.NumRows(); i++ {
		for j, bc := range bCols {
			row[j] = bc.Values[i]
		}
		addRow(row)
	}
	for i, ac := range a.Columns {
		out.AddColumn(ac.Name, cols[i])
	}
	return out, nil
}

// ValueOverlap returns |A∩B| / |A∪B| over the distinct non-empty values of
// two columns — the exact joinability statistic discovery systems report.
// Callers that already hold distinct sets (the profile layer) use
// JaccardOfSets directly.
func ValueOverlap(a, b *Column) float64 {
	return JaccardOfSets(a.DistinctValues(), b.DistinctValues())
}

// JaccardOfSets returns |A∩B| / |A∪B| of two value sets; two empty sets
// score 0 (no evidence of overlap).
func JaccardOfSets(as, bs map[string]struct{}) float64 {
	if len(as) == 0 && len(bs) == 0 {
		return 0
	}
	inter := 0
	small, large := as, bs
	if len(bs) < len(as) {
		small, large = bs, as
	}
	for v := range small {
		if _, ok := large[v]; ok {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Containment returns |A∩B| / |A| — how much of column a's value set the
// other column covers (the JOSIE/Lazo-style containment signal). Callers
// that already hold distinct sets use ContainmentOfSets directly.
func Containment(a, b *Column) float64 {
	return ContainmentOfSets(a.DistinctValues(), b.DistinctValues())
}

// ContainmentOfSets returns |A∩B| / |A| of two value sets.
func ContainmentOfSets(as, bs map[string]struct{}) float64 {
	if len(as) == 0 {
		return 0
	}
	inter := 0
	for v := range as {
		if _, ok := bs[v]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(as))
}

package table

import (
	"math"
	"sort"
)

// ColumnStats summarizes a column's value population; instance-based
// matchers consume these summaries.
type ColumnStats struct {
	Count        int     // non-empty cells
	Distinct     int     // distinct non-empty values
	AvgLength    float64 // mean string length of non-empty cells
	MaxLength    int
	MinLength    int
	NumericCount int // cells parseable as numbers
	Mean         float64
	StdDev       float64
	Min          float64
	Max          float64
	Median       float64
}

// Stats computes summary statistics for the column.
func (c *Column) Stats() ColumnStats {
	nums, _ := c.NumericValues()
	return c.StatsFromDerived(nums, -1)
}

// StatsFromDerived computes summary statistics reusing derived inputs a
// caller (the profile layer) already holds: nums must equal the column's
// NumericValues() and distinct its count of distinct non-empty values, or
// be negative to count here. Results are identical to Stats.
func (c *Column) StatsFromDerived(nums []float64, distinct int) ColumnStats {
	var s ColumnStats
	s.MinLength = math.MaxInt32
	var set map[string]struct{}
	if distinct < 0 {
		set = make(map[string]struct{})
	}
	for _, v := range c.Values {
		if v == "" {
			continue
		}
		s.Count++
		if set != nil {
			set[v] = struct{}{}
		}
		n := len(v)
		s.AvgLength += float64(n)
		if n > s.MaxLength {
			s.MaxLength = n
		}
		if n < s.MinLength {
			s.MinLength = n
		}
	}
	if set != nil {
		distinct = len(set)
	}
	s.Distinct = distinct
	if s.Count > 0 {
		s.AvgLength /= float64(s.Count)
	} else {
		s.MinLength = 0
	}
	n := len(nums)
	s.NumericCount = n
	if n > 0 {
		sum := 0.0
		s.Min, s.Max = nums[0], nums[0]
		for _, x := range nums {
			sum += x
			if x < s.Min {
				s.Min = x
			}
			if x > s.Max {
				s.Max = x
			}
		}
		s.Mean = sum / float64(n)
		varsum := 0.0
		for _, x := range nums {
			d := x - s.Mean
			varsum += d * d
		}
		s.StdDev = math.Sqrt(varsum / float64(n))
		sorted := append([]float64(nil), nums...)
		sort.Float64s(sorted)
		if n%2 == 1 {
			s.Median = sorted[n/2]
		} else {
			s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
		}
	}
	return s
}

// Uniqueness is Distinct/Count in [0,1]; 1 means all values unique.
func (s ColumnStats) Uniqueness() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Distinct) / float64(s.Count)
}

// Quantiles returns q evenly spaced quantiles (including min and max) of the
// column's numeric values, or nil when the column has no numeric cells.
func (c *Column) Quantiles(q int) []float64 {
	nums, n := c.NumericValues()
	if n == 0 || q < 2 {
		return nil
	}
	sort.Float64s(nums)
	out := make([]float64, q)
	for i := 0; i < q; i++ {
		pos := float64(i) / float64(q-1) * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		out[i] = nums[lo]*(1-frac) + nums[hi]*frac
	}
	return out
}

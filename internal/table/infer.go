package table

import (
	"strconv"
	"strings"
)

// InferType infers the type of a column from its values. Empty cells are
// ignored; a column of only empty cells is String. The inferred type is the
// most specific type that every non-empty value satisfies, with Int
// narrowing to Float when both appear.
func InferType(values []string) Type {
	sawAny := false
	couldInt, couldFloat, couldBool, couldDate := true, true, true, true
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		sawAny = true
		if couldInt && !isInt(v) {
			couldInt = false
		}
		if couldFloat && !isFloat(v) {
			couldFloat = false
		}
		if couldBool && !isBool(v) {
			couldBool = false
		}
		if couldDate && !isDate(v) {
			couldDate = false
		}
		if !couldInt && !couldFloat && !couldBool && !couldDate {
			return String
		}
	}
	if !sawAny {
		return String
	}
	switch {
	case couldBool:
		return Bool
	case couldInt:
		return Int
	case couldFloat:
		return Float
	case couldDate:
		return Date
	default:
		return String
	}
}

func isInt(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

func isFloat(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func isBool(s string) bool {
	switch strings.ToLower(s) {
	case "true", "false", "yes", "no", "t", "f":
		return true
	}
	return false
}

// isDate accepts the common ISO forms YYYY-MM-DD and YYYY/MM/DD.
func isDate(s string) bool {
	if len(s) != 10 {
		return false
	}
	sep := s[4]
	if sep != '-' && sep != '/' {
		return false
	}
	if s[7] != sep {
		return false
	}
	for i, c := range []byte(s) {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	mo := (int(s[5]-'0'))*10 + int(s[6]-'0')
	day := (int(s[8]-'0'))*10 + int(s[9]-'0')
	return mo >= 1 && mo <= 12 && day >= 1 && day <= 31
}

// NumericValues parses the column's non-empty cells as float64s, skipping
// unparseable cells. The second result is the count of parseable cells.
func (c *Column) NumericValues() ([]float64, int) {
	out := make([]float64, 0, len(c.Values))
	for _, v := range c.Values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	return out, len(out)
}

// IsNumeric reports whether the column's inferred type is Int or Float.
func (c *Column) IsNumeric() bool { return c.Type == Int || c.Type == Float }

// RetypeColumns re-infers the type of every column; call after mutating
// values in place.
func (t *Table) RetypeColumns() {
	for i := range t.Columns {
		t.Columns[i].Type = InferType(t.Columns[i].Values)
	}
}

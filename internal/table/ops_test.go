package table

import (
	"reflect"
	"testing"
)

func left() *Table {
	t := New("orders")
	t.AddColumn("country", []string{"USA", "China", "USA", "France"})
	t.AddColumn("client", []string{"watts", "mei", "man", "roux"})
	return t
}

func right() *Table {
	t := New("offices")
	t.AddColumn("cntr", []string{"USA", "China", "Spain"})
	t.AddColumn("office", []string{"68346", "74742", "11111"})
	t.AddColumn("client", []string{"stan", "ki", "sol"})
	return t
}

func TestJoin(t *testing.T) {
	j, err := Join(left(), right(), "country", "cntr")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 { // USA×2 + China×1
		t.Fatalf("rows = %d, want 3", j.NumRows())
	}
	if got := j.ColumnNames(); !reflect.DeepEqual(got, []string{"country", "client", "office", "right_client"}) {
		t.Fatalf("columns = %v", got)
	}
	if got := j.Column("office").Values; !reflect.DeepEqual(got, []string{"68346", "74742", "68346"}) {
		t.Fatalf("office = %v", got)
	}
	if got := j.Column("right_client").Values[0]; got != "stan" {
		t.Fatalf("right_client[0] = %v", got)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinErrors(t *testing.T) {
	if _, err := Join(left(), right(), "nope", "cntr"); err == nil {
		t.Error("unknown left column should fail")
	}
	if _, err := Join(left(), right(), "country", "nope"); err == nil {
		t.Error("unknown right column should fail")
	}
	bad := &Table{Name: ""}
	if _, err := Join(bad, right(), "a", "b"); err == nil {
		t.Error("invalid left should fail")
	}
}

func TestJoinSkipsEmptyKeys(t *testing.T) {
	l := New("l")
	l.AddColumn("k", []string{"", "x"})
	r := New("r")
	r.AddColumn("k", []string{"", "x"})
	r.AddColumn("v", []string{"e", "f"})
	j, err := Join(l, r, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 1 {
		t.Fatalf("empty keys must not join: %d rows", j.NumRows())
	}
}

func TestUnion(t *testing.T) {
	a := New("a")
	a.AddColumn("client", []string{"watts", "mei"})
	a.AddColumn("po", []string{"1", "2"})
	b := New("b")
	b.AddColumn("c_name", []string{"mei", "man"})
	b.AddColumn("p_code", []string{"2", "3"})
	u, err := Union(a, b, map[string]string{"client": "c_name", "po": "p_code"})
	if err != nil {
		t.Fatal(err)
	}
	if u.NumRows() != 3 { // (mei,2) deduplicated
		t.Fatalf("rows = %d, want 3", u.NumRows())
	}
	if got := u.Column("client").Values; !reflect.DeepEqual(got, []string{"watts", "mei", "man"}) {
		t.Fatalf("client = %v", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnionErrors(t *testing.T) {
	a := New("a")
	a.AddColumn("x", []string{"1"})
	b := New("b")
	b.AddColumn("y", []string{"2"})
	if _, err := Union(a, b, map[string]string{}); err == nil {
		t.Error("missing mapping should fail")
	}
	if _, err := Union(a, b, map[string]string{"x": "nope"}); err == nil {
		t.Error("unknown target column should fail")
	}
}

func TestValueOverlapAndContainment(t *testing.T) {
	a := &Column{Values: []string{"x", "y", "z"}}
	b := &Column{Values: []string{"y", "z", "w"}}
	if got := ValueOverlap(a, b); got != 0.5 {
		t.Errorf("overlap = %v", got)
	}
	if got := Containment(a, b); got != 2.0/3 {
		t.Errorf("containment = %v", got)
	}
	empty := &Column{}
	if ValueOverlap(empty, empty) != 0 || Containment(empty, a) != 0 {
		t.Error("empty columns")
	}
	if got := Containment(a, a); got != 1 {
		t.Errorf("self containment = %v", got)
	}
}

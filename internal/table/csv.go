package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReadCSV parses a table from CSV. The first record is the header. The table
// name is taken from name (conventionally the file base name without
// extension).
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %q has no header", name)
	}
	header := records[0]
	cols := make([][]string, len(header))
	for _, rec := range records[1:] {
		for j := range header {
			cell := ""
			if j < len(rec) {
				cell = rec[j]
			}
			cols[j] = append(cols[j], cell)
		}
	}
	t := New(name)
	for j, h := range header {
		t.AddColumn(strings.TrimSpace(h), cols[j])
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadCSVFile reads a table from a CSV file, naming it after the file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, f)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := cw.Write(t.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to the given path, creating parent
// directories as needed.
func (t *Table) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

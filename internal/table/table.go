// Package table provides the relational table model underlying Valentine.
//
// A Table is a named, ordered collection of typed Columns over row-aligned
// string cells. Matchers consume Tables; the fabricator splits and perturbs
// them. Cells are stored as strings (the common denominator of CSV data
// lakes) with a parsed type tag per column, mirroring how Valentine treats
// denormalized tabular datasets.
package table

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the inferred data type of a column.
type Type int

// Column data types recognized by the type inferencer.
const (
	String Type = iota
	Int
	Float
	Bool
	Date
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Date:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Compatible reports whether two types are similar enough that a union or
// join between columns of these types is plausible (e.g. int and float are
// compatible numerics; everything is compatible with String).
func (t Type) Compatible(u Type) bool {
	if t == u || t == String || u == String {
		return true
	}
	numeric := func(x Type) bool { return x == Int || x == Float }
	return numeric(t) && numeric(u)
}

// Column is a single named attribute with its values.
type Column struct {
	Name   string
	Type   Type
	Values []string
}

// Table is a named relation: an ordered set of columns of equal length.
type Table struct {
	Name    string
	Columns []Column
}

// New returns an empty table with the given name.
func New(name string) *Table {
	return &Table{Name: name}
}

// AddColumn appends a column, inferring its type from the values.
func (t *Table) AddColumn(name string, values []string) *Table {
	t.Columns = append(t.Columns, Column{Name: name, Type: InferType(values), Values: values})
	return t
}

// NumRows returns the number of rows (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return len(t.Columns[0].Values)
}

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.Columns) }

// Column returns the column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the ordered column names.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Row materializes row i as a slice of cells in column order.
func (t *Table) Row(i int) []string {
	row := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Values[i]
	}
	return row
}

// Validate checks structural invariants: unique non-empty column names and
// equal column lengths.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("table: empty table name")
	}
	seen := make(map[string]bool, len(t.Columns))
	n := -1
	for _, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("table %q: empty column name", t.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("table %q: duplicate column %q", t.Name, c.Name)
		}
		seen[c.Name] = true
		if n < 0 {
			n = len(c.Values)
		} else if len(c.Values) != n {
			return fmt.Errorf("table %q: column %q has %d values, want %d", t.Name, c.Name, len(c.Values), n)
		}
	}
	return nil
}

// withValues returns a column sharing c's name and type over a new value
// slice (which the caller must not retain elsewhere).
func (c *Column) withValues(vals []string) Column {
	return Column{Name: c.Name, Type: c.Type, Values: vals}
}

// clone returns a deep copy of the column.
func (c *Column) clone() Column {
	vals := make([]string, len(c.Values))
	copy(vals, c.Values)
	return c.withValues(vals)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Columns: make([]Column, len(t.Columns))}
	for i := range t.Columns {
		out.Columns[i] = t.Columns[i].clone()
	}
	return out
}

// Project returns a new table keeping only the named columns, in the given
// order. Unknown names are an error.
func (t *Table) Project(names ...string) (*Table, error) {
	out := &Table{Name: t.Name}
	for _, n := range names {
		c := t.Column(n)
		if c == nil {
			return nil, fmt.Errorf("table %q: no column %q", t.Name, n)
		}
		out.Columns = append(out.Columns, c.clone())
	}
	return out, nil
}

// SelectRows returns a new table keeping only the rows whose indices are
// listed, in the given order. Indices out of range are an error.
func (t *Table) SelectRows(idx []int) (*Table, error) {
	n := t.NumRows()
	out := &Table{Name: t.Name, Columns: make([]Column, len(t.Columns))}
	for j := range t.Columns {
		c := &t.Columns[j]
		vals := make([]string, 0, len(idx))
		for _, i := range idx {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("table %q: row index %d out of range [0,%d)", t.Name, i, n)
			}
			vals = append(vals, c.Values[i])
		}
		out.Columns[j] = c.withValues(vals)
	}
	return out, nil
}

// Rename returns a copy of the table with column names rewritten through f.
func (t *Table) Rename(f func(string) string) *Table {
	out := t.Clone()
	for i := range out.Columns {
		out.Columns[i].Name = f(out.Columns[i].Name)
	}
	return out
}

// DistinctValues returns the set of distinct non-empty values of a column.
func (c *Column) DistinctValues() map[string]struct{} {
	set := make(map[string]struct{}, len(c.Values))
	for _, v := range c.Values {
		if v != "" {
			set[v] = struct{}{}
		}
	}
	return set
}

// SortedDistinct returns the sorted distinct non-empty values of a column.
func (c *Column) SortedDistinct() []string {
	set := c.DistinctValues()
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders a short human-readable summary.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%d cols, %d rows)", t.Name, t.NumColumns(), t.NumRows())
	return b.String()
}

package server

// End-to-end serve-path benches: HTTP search latency against a standing
// catalog, idle and under concurrent HTTP ingest. The CI bench smoke runs
// these once to keep the serve path exercised; BENCH_4.json records the
// catalog-level latency contrast (see cmd/benchreport -json).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func benchServer(b *testing.B) (*Server, *httptest.Server, []byte) {
	b.Helper()
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tab := TableJSON{
			Name: fmt.Sprintf("corpus%03d", i),
			Columns: []ColumnJSON{
				{Name: "cust", Values: vals("u", i*7, i*7+300)},
				{Name: "town", Values: vals("c", i*5, i*5+300)},
			},
		}
		t, err := tab.toTable("")
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Index().Add(t); err != nil {
			b.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			b.Error(err)
		}
	})
	searchBody, err := json.Marshal(SearchRequest{
		Table: TableJSON{Name: "query", Columns: []ColumnJSON{
			{Name: "customer_id", Values: vals("u", 0, 300)},
		}},
		Mode: "join", K: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s, ts, searchBody
}

func postSearch(b *testing.B, url string, body []byte) {
	b.Helper()
	resp, err := http.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("search status %d", resp.StatusCode)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if len(sr.Results) == 0 {
		b.Fatal("empty search results")
	}
}

// BenchmarkServeSearchIdle is the serving baseline: HTTP search latency
// with no concurrent ingest.
func BenchmarkServeSearchIdle(b *testing.B) {
	_, ts, body := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postSearch(b, ts.URL, body)
	}
}

// BenchmarkServeSearchUnderIngest measures HTTP search latency while a
// client continuously PUTs table versions: ingest is profiled per request,
// micro-batched, and applied copy-on-write, so searches never queue behind
// the writer.
func BenchmarkServeSearchUnderIngest(b *testing.B) {
	s, ts, body := benchServer(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ingested int
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%02d", i%16)
			payload, err := json.Marshal(UpsertRequest{Columns: []ColumnJSON{
				{Name: "cust", Values: vals("u", i*3, i*3+300)},
			}})
			if err != nil {
				b.Error(err)
				return
			}
			req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/tables/"+name, bytes.NewReader(payload))
			if err != nil {
				b.Error(err)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				b.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("ingest status %d", resp.StatusCode)
				return
			}
			ingested++
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postSearch(b, ts.URL, body)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	s.Index().WaitCompaction()
	b.ReportMetric(float64(ingested)/float64(b.N), "upserts/search")
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// vals renders [lo, hi) as deterministic value strings so overlap between
// columns is exactly controlled.
func vals(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s%05d", prefix, i))
	}
	return out
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func upsertBody(prefix string, lo, hi int) UpsertRequest {
	return UpsertRequest{Columns: []ColumnJSON{{Name: "cust", Values: vals(prefix, lo, hi)}}}
}

func TestServerIngestSearchRemoveRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Ingest two tables; "orders" overlaps the query, "assay" does not.
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/orders", upsertBody("c", 0, 120), nil); code != http.StatusOK {
		t.Fatalf("upsert orders: status %d", code)
	}
	var mut MutationResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/assay", upsertBody("x", 0, 120), &mut); code != http.StatusOK {
		t.Fatalf("upsert assay: status %d", code)
	}
	if mut.Tables != 2 {
		t.Fatalf("tables after two upserts = %d, want 2", mut.Tables)
	}

	// Search ranks orders first.
	var sr SearchResponse
	searchReq := SearchRequest{
		Table: TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "customer", Values: vals("c", 30, 150)}}},
		Mode:  "join", K: 5,
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchReq, &sr); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if len(sr.Results) == 0 || sr.Results[0].Table != "orders" {
		t.Fatalf("search results = %+v, want orders first", sr.Results)
	}
	if sr.Results[0].Score <= 0.5 {
		t.Errorf("orders score = %.3f, want high overlap", sr.Results[0].Score)
	}

	// List + per-table profiles.
	var listResp TablesResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/tables", nil, &listResp); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(listResp.Tables) != 2 {
		t.Fatalf("tables = %v", listResp.Tables)
	}
	var prof TableProfileResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/tables/orders", nil, &prof); code != http.StatusOK {
		t.Fatalf("get table: status %d", code)
	}
	if len(prof.Columns) != 1 || prof.Columns[0].Column != "cust" || prof.Columns[0].Distinct != 120 {
		t.Fatalf("profiles = %+v", prof)
	}

	// Upsert replaces: new disjoint content stops matching.
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/orders", upsertBody("z", 0, 120), nil); code != http.StatusOK {
		t.Fatalf("re-upsert: status %d", code)
	}
	sr = SearchResponse{}
	doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchReq, &sr)
	for _, res := range sr.Results {
		if res.Table == "orders" && res.Score > 0.1 {
			t.Fatalf("upserted content still matches old values: %+v", res)
		}
	}

	// Remove, then the table is gone.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/orders", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/tables/orders", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/orders", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", code)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Unknown search mode.
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search",
		SearchRequest{Mode: "sideways", Table: TableJSON{Columns: []ColumnJSON{{Name: "a", Values: []string{"x"}}}}},
		nil); code != http.StatusBadRequest {
		t.Errorf("bad mode: status %d", code)
	}
	// Malformed body.
	resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewBufferString("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	// Ragged table.
	bad := UpsertRequest{Columns: []ColumnJSON{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"1"}},
	}}
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/bad", bad, nil); code != http.StatusBadRequest {
		t.Errorf("ragged upsert: status %d", code)
	}
	// Unknown matcher method.
	mr := MatchRequest{
		Source: TableJSON{Columns: []ColumnJSON{{Name: "a", Values: []string{"1"}}}},
		Target: TableJSON{Columns: []ColumnJSON{{Name: "b", Values: []string{"1"}}}},
		Method: "no-such-method",
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", mr, nil); code != http.StatusBadRequest {
		t.Errorf("unknown method: status %d", code)
	}
}

func TestServerMatchEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	mr := MatchRequest{
		Source: TableJSON{Name: "s", Columns: []ColumnJSON{
			{Name: "customer_id", Values: vals("c", 0, 60)},
			{Name: "city", Values: vals("t", 0, 60)},
		}},
		Target: TableJSON{Name: "t", Columns: []ColumnJSON{
			{Name: "cust", Values: vals("c", 10, 70)},
			{Name: "town", Values: vals("t", 5, 65)},
		}},
		Method: "jaccard-levenshtein",
		Top:    2,
	}
	var resp MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", mr, &resp); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if len(resp.Matches) != 2 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	top := resp.Matches[0]
	ok := (top.SourceColumn == "customer_id" && top.TargetColumn == "cust") ||
		(top.SourceColumn == "city" && top.TargetColumn == "town")
	if !ok || top.Score <= 0.5 {
		t.Fatalf("top match = %+v, want a true correspondence", top)
	}
}

func TestServerStatsCounters(t *testing.T) {
	srv, ts := testServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/v1/tables/a", upsertBody("a", 0, 30), nil)
	doJSON(t, http.MethodPost, ts.URL+"/v1/search",
		SearchRequest{Table: TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "k", Values: vals("a", 0, 30)}}}}, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/a", nil, nil)
	var stats StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Server.Upserts != 1 || stats.Server.Searches != 1 || stats.Server.Removes != 1 {
		t.Errorf("counters = %+v", stats.Server)
	}
	if stats.Server.Requests < 4 {
		t.Errorf("requests = %d, want >= 4", stats.Server.Requests)
	}
	if stats.Server.Batches < 2 || stats.Server.BatchedOps != 2 {
		t.Errorf("batcher counters = %+v", stats.Server)
	}
	if stats.Catalog.Tables != 0 {
		t.Errorf("catalog tables = %d, want 0 after delete", stats.Catalog.Tables)
	}
	// Ingest interned the upserted table's values into the catalog's value
	// dictionary (removal never shrinks it — it is an append-only cache),
	// and the stats endpoint reports its size.
	if stats.Catalog.DictEntries == 0 || stats.Catalog.DictBytes <= 0 {
		t.Errorf("dictionary stats = entries %d bytes %d, want both positive",
			stats.Catalog.DictEntries, stats.Catalog.DictBytes)
	}
	if srv.Index().Epoch() == 0 {
		t.Error("epoch still zero after mutations")
	}
}

// TestServerMicroBatchesConcurrentIngest: many concurrent PUTs arriving
// within the batch window must collapse into far fewer catalog writes.
func TestServerMicroBatchesConcurrentIngest(t *testing.T) {
	srv, ts := testServer(t, Config{BatchWindow: 20 * time.Millisecond})
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("bulk%02d", i)
			if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/"+name,
				upsertBody(fmt.Sprintf("p%d_", i), 0, 40), nil); code != http.StatusOK {
				t.Errorf("upsert %s: status %d", name, code)
			}
		}(i)
	}
	wg.Wait()
	if got := srv.Index().NumTables(); got != n {
		t.Fatalf("tables = %d, want %d", got, n)
	}
	batches := srv.batcher.batches.Load()
	if batches >= n {
		t.Errorf("batcher used %d writes for %d concurrent upserts — no batching happened", batches, n)
	}
}

// TestServerSearchDuringIngestChurn: searches must succeed and return
// consistent snapshots while upserts and deletes churn concurrently. Run
// with -race.
func TestServerSearchDuringIngestChurn(t *testing.T) {
	srv, ts := testServer(t, Config{})
	for i := 0; i < 6; i++ {
		doJSON(t, http.MethodPut, ts.URL+fmt.Sprintf("/v1/tables/base%d", i), upsertBody("u", i*10, i*10+50), nil)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			req := SearchRequest{Table: TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "k", Values: vals("u", 0, 80)}}}, K: 3}
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sr SearchResponse
				if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", req, &sr); code != http.StatusOK {
					t.Errorf("search during churn: status %d", code)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 15; i++ {
				name := fmt.Sprintf("churn%d_%d", w, i%3)
				if i%4 == 3 {
					doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/"+name, nil, nil)
				} else {
					doJSON(t, http.MethodPut, ts.URL+"/v1/tables/"+name, upsertBody("u", i*5, i*5+40), nil)
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if srv.Index().NumTables() < 6 {
		t.Errorf("base tables lost during churn: %d live", srv.Index().NumTables())
	}
}

// TestServerAnonymousSearchSeesTableNamedQuery: a search body without a
// table name must not inherit a default that collides with a real indexed
// table (the discovery self-skip would silently hide it).
func TestServerAnonymousSearchSeesTableNamedQuery(t *testing.T) {
	_, ts := testServer(t, Config{})
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/query", upsertBody("q", 0, 40), nil); code != http.StatusOK {
		t.Fatalf("upsert: status %d", code)
	}
	var sr SearchResponse
	req := SearchRequest{Table: TableJSON{Columns: []ColumnJSON{{Name: "k", Values: vals("q", 0, 40)}}}, K: 5}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", req, &sr); code != http.StatusOK {
		t.Fatalf("anonymous search: status %d", code)
	}
	if len(sr.Results) != 1 || sr.Results[0].Table != "query" {
		t.Fatalf("anonymous search hid the table named \"query\": %+v", sr.Results)
	}
}

// TestBatcherCloseConcurrentSubmit: closing the batcher while submitters
// race in must never strand an accepted op — every submit either applies or
// reports shutdown. Run with -race.
func TestBatcherCloseConcurrentSubmit(t *testing.T) {
	for round := 0; round < 20; round++ {
		ix := discovery.New(discovery.Options{})
		b := newBatcher(ix, nil, time.Millisecond, 8, 64)
		var wg sync.WaitGroup
		const n = 8
		outcomes := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tab := fmt.Sprintf("t%d_%d", round, i)
				outcomes[i] = b.submit(context.Background(),
					discovery.Op{Upsert: profile.New(newTestTable(tab))})
			}(i)
		}
		b.close() // races with the submits above
		wg.Wait()
		applied := 0
		for i, err := range outcomes {
			switch {
			case err == nil:
				applied++
			case strings.Contains(err.Error(), "shutting down"):
				// rejected at the gate: must not have been applied
			default:
				t.Fatalf("round %d submit %d: unexpected error %v", round, i, err)
			}
		}
		if got := ix.NumTables(); got != applied {
			t.Fatalf("round %d: %d submits reported success but %d tables landed", round, applied, got)
		}
	}
}

func newTestTable(name string) *table.Table {
	return table.New(name).AddColumn("k", vals(name, 0, 10))
}

// TestServerGracefulShutdownDrains: an http.Server must finish in-flight
// requests on Shutdown, and Server.Close must flush every accepted ingest.
func TestServerGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	const n = 10
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doJSON(t, http.MethodPut, hs.URL+fmt.Sprintf("/v1/tables/inflight%d", i),
				upsertBody(fmt.Sprintf("f%d_", i), 0, 30), nil)
		}(i)
	}
	wg.Wait()
	hs.Close() // httptest.Close blocks until outstanding requests finish
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("in-flight upsert %d: status %d", i, code)
		}
	}
	if got := s.Index().NumTables(); got != n {
		t.Errorf("tables after drain = %d, want %d", got, n)
	}
}

// TestServerPeriodicSnapshot: with SnapshotDir set, the catalog lands on
// disk on the ticker and again at Close; a reload serves the same corpus.
func TestServerPeriodicSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{SnapshotDir: dir, SnapshotEvery: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	doJSON(t, http.MethodPut, ts.URL+"/v1/tables/persisted", upsertBody("p", 0, 40), nil)
	time.Sleep(80 * time.Millisecond) // at least one tick
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := discovery.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Tables(); len(got) != 1 || got[0] != "persisted" {
		t.Fatalf("reloaded tables = %v", got)
	}
}

// TestServerHealthz: the liveness probe answers without touching the
// request-counting or engine-context machinery.
func TestServerHealthz(t *testing.T) {
	s, ts := testServer(t, Config{})
	var body map[string]string
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &body); code != http.StatusOK {
		t.Fatalf("GET /v1/healthz = %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body = %v", body)
	}
	if n := s.requests.Load(); n != 0 {
		t.Errorf("healthz counted as %d served requests; probes must not skew stats", n)
	}
}

package server

import (
	"net/http"
	"testing"
)

// matchBody builds a minimal match request the handlers accept.
func matchBody(method string, budgetMS int64, epsilon float64) MatchRequest {
	return MatchRequest{
		Source:   TableJSON{Name: "s", Columns: []ColumnJSON{{Name: "cust", Values: vals("c", 0, 30)}}},
		Target:   TableJSON{Name: "t", Columns: []ColumnJSON{{Name: "cust", Values: vals("c", 10, 40)}}},
		Method:   method,
		BudgetMS: budgetMS,
		Epsilon:  epsilon,
	}
}

func searchBody(budgetMS int64, epsilon float64) SearchRequest {
	return SearchRequest{
		Table:    TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "cust", Values: vals("c", 0, 30)}}},
		BudgetMS: budgetMS,
		Epsilon:  epsilon,
	}
}

// TestBoundaryValidation: negative budgets and out-of-range epsilons are
// typed 400s at the API boundary on both scoring endpoints, and in-range
// values pass through.
func TestBoundaryValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name     string
		budgetMS int64
		epsilon  float64
		want     int
	}{
		{"ok-zero", 0, 0, http.StatusOK},
		{"ok-budget", 5000, 0, http.StatusOK},
		{"ok-epsilon", 0, 0.25, http.StatusOK},
		{"ok-epsilon-max", 0, 0.999, http.StatusOK},
		{"negative-budget", -1, 0, http.StatusBadRequest},
		{"negative-epsilon", 0, -0.1, http.StatusBadRequest},
		{"epsilon-one", 0, 1, http.StatusBadRequest},
		{"epsilon-above-one", 0, 1.5, http.StatusBadRequest},
		{"both-invalid", -5, 2, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run("search/"+tc.name, func(t *testing.T) {
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchBody(tc.budgetMS, tc.epsilon), nil); code != tc.want {
				t.Fatalf("search budget_ms=%d epsilon=%v: status %d, want %d", tc.budgetMS, tc.epsilon, code, tc.want)
			}
		})
		t.Run("match/"+tc.name, func(t *testing.T) {
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", matchBody("", tc.budgetMS, tc.epsilon), nil); code != tc.want {
				t.Fatalf("match budget_ms=%d epsilon=%v: status %d, want %d", tc.budgetMS, tc.epsilon, code, tc.want)
			}
		})
	}
}

// TestEpsilonResponseFlags: a nonzero epsilon marks the response approx on
// both endpoints; zero stays unflagged.
func TestEpsilonResponseFlags(t *testing.T) {
	_, ts := testServer(t, Config{})
	var sr SearchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchBody(0, 0.2), &sr); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if !sr.Approx {
		t.Error("search with epsilon 0.2 not flagged approx")
	}
	sr = SearchResponse{}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchBody(0, 0), &sr); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if sr.Approx {
		t.Error("exact search flagged approx")
	}

	// jaccard-levenshtein cascades, so epsilon reaches the planner there.
	var mr MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", matchBody("jaccard-levenshtein", 0, 0.3), &mr); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if !mr.Approx {
		t.Error("cascade match with epsilon 0.3 not flagged approx")
	}
	mr = MatchResponse{}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", matchBody("jaccard-levenshtein", 0, 0), &mr); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if mr.Approx {
		t.Error("exact cascade match flagged approx")
	}
}

// TestStatsPerMatcherCounters: a cascade match surfaces its per-matcher
// bounded/pruned/refined counters in /v1/stats.
func TestStatsPerMatcherCounters(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := matchBody("jaccard-levenshtein", 0, 0)
	body.Top = 2
	var mr MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", body, &mr); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if len(mr.Stats.Matchers) == 0 {
		t.Fatalf("match response has no per-matcher counters: %+v", mr.Stats)
	}
	var st StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	ms, ok := st.Engine.Matchers["jaccard-levenshtein"]
	if !ok {
		t.Fatalf("/v1/stats engine.matchers missing jaccard-levenshtein: %+v", st.Engine.Matchers)
	}
	if ms.Bounded <= 0 || ms.Refined <= 0 {
		t.Fatalf("jaccard-levenshtein counters not accumulated: %+v", ms)
	}
}

package server

// Serving-layer durability: the ack-after-WAL contract, startup recovery
// states, snapshot-driven log truncation, fencing, admission-control
// shedding, and the snapshot retry backoff.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/faultfs"
	"valentine/internal/table"
	"valentine/internal/wal"
)

func mustServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

func waitStatus(t *testing.T, url, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var health HealthResponse
		doJSON(t, http.MethodGet, url+"/v1/healthz", nil, &health)
		if health.Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("health never reached %q (last %q)", want, health.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerWALDurableBeforeAck: under fsync "always", every acknowledged
// upsert is recoverable from the WAL bytes as they exist at ack time — the
// server is never closed; the log file is copied out from under it, exactly
// what a kill -9 leaves, and a fresh server over a fresh catalog must
// recover every acked table from the copy.
func TestServerWALDurableBeforeAck(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ops.wal")
	s, ts := mustServer(t, Config{WALPath: walPath, WALSync: wal.SyncAlways})
	defer func() { ts.Close(); s.Close() }()

	want := []string{"alpha", "beta", "gamma"}
	for i, name := range want {
		if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/"+name, upsertBody(fmt.Sprintf("v%d_", i), 0, 60), nil); code != http.StatusOK {
			t.Fatalf("upsert %s: status %d", name, code)
		}
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/beta", nil, nil); code != http.StatusOK {
		t.Fatal("remove beta failed")
	}

	// The crash image: the log as it exists the instant after the last ack.
	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	crashCopy := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(crashCopy, img, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recover into a brand-new catalog: no snapshot ever existed, so the
	// server adopts the log's lineage and replays everything.
	ix2 := discovery.New(discovery.Options{})
	s2, err := New(Config{Index: ix2, WALPath: crashCopy})
	if err != nil {
		t.Fatalf("recovery server: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	waitStatus(t, ts2.URL, "ok")

	got := ix2.Tables()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "gamma" {
		t.Fatalf("recovered tables = %v, want [alpha gamma]", got)
	}
	q := table.New("q").AddColumn("cust", vals("v0_", 0, 60))
	res, err := ix2.Search(q, discovery.ModeJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Table != "alpha" {
		t.Fatalf("search over recovered catalog = %+v, want alpha first", res)
	}
}

// TestServerWALRecoveringGates503: while startup replay runs, healthz says
// "recovering" with 503 + Retry-After and scoring/mutating endpoints shed;
// once the replay lands the server serves the recovered corpus.
func TestServerWALRecoveringGates503(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ops.wal")

	s1, ts1 := mustServer(t, Config{WALPath: walPath})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		if code := doJSON(t, http.MethodPut, ts1.URL+"/v1/tables/"+name, upsertBody(name, 0, 40), nil); code != http.StatusOK {
			t.Fatalf("upsert %s failed", name)
		}
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	s2, err := New(Config{Index: discovery.New(discovery.Options{}), WALPath: walPath, recoveryGate: gate})
	if err != nil {
		close(gate)
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	resp, err := http.Get(ts2.URL + "/v1/healthz")
	if err != nil {
		close(gate)
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		close(gate)
		t.Fatalf("healthz during recovery: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	sreq := SearchRequest{Table: TableJSON{Columns: []ColumnJSON{{Name: "k", Values: vals("t0", 0, 40)}}}, K: 3}
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/search", sreq, nil); code != http.StatusServiceUnavailable {
		close(gate)
		t.Fatalf("search during recovery: status %d, want 503", code)
	}
	if code := doJSON(t, http.MethodPut, ts2.URL+"/v1/tables/late", upsertBody("l", 0, 20), nil); code != http.StatusServiceUnavailable {
		close(gate)
		t.Fatalf("upsert during recovery: status %d, want 503", code)
	}

	close(gate)
	waitStatus(t, ts2.URL, "ok")
	var stats StatsResponse
	doJSON(t, http.MethodGet, ts2.URL+"/v1/stats", nil, &stats)
	if stats.Server.WALRecoveredRecords == 0 {
		t.Error("stats report zero recovered WAL records after a replay")
	}
	if got := s2.Index().NumTables(); got != 3 {
		t.Fatalf("recovered %d tables, want 3", got)
	}
	if code := doJSON(t, http.MethodPut, ts2.URL+"/v1/tables/late", upsertBody("l", 0, 20), nil); code != http.StatusOK {
		t.Fatal("upsert after recovery failed")
	}
}

// walRecords opens a copy of a WAL image and returns its surviving records.
func walRecords(t *testing.T, img []byte) []wal.Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scan.wal")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := wal.Open(path, 0, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Log.Close()
	if res.Fresh {
		t.Fatal("WAL image scanned as fresh")
	}
	return res.Records
}

// TestServerWALSnapshotTruncates: a successful periodic snapshot truncates
// the log through the last applied sequence — the log stays proportional to
// one snapshot interval, and a restart from snapshot + log serves the same
// corpus with nothing to replay.
func TestServerWALSnapshotTruncates(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snap")
	walPath := filepath.Join(dir, "ops.wal")
	s, ts := mustServer(t, Config{WALPath: walPath, SnapshotDir: snapDir, SnapshotEvery: 30 * time.Millisecond})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/"+name, upsertBody(name, 0, 40), nil); code != http.StatusOK {
			t.Fatalf("upsert %s failed", name)
		}
	}
	// Wait for a snapshot tick to land and truncate the log.
	deadline := time.Now().Add(5 * time.Second)
	for {
		img, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(walRecords(t, img)) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot tick never truncated the WAL")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := discovery.LoadSnapshot(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Index: ix2, WALPath: walPath})
	if err != nil {
		t.Fatalf("restart over snapshot + truncated WAL: %v", err)
	}
	defer s2.Close()
	if s2.walRecovered != 0 {
		t.Errorf("restart replayed %d records, want 0 (all snapshotted)", s2.walRecovered)
	}
	if got := ix2.NumTables(); got != 3 {
		t.Fatalf("restarted catalog has %d tables, want 3", got)
	}
}

// TestServerWALLineageFence: a WAL written by one catalog must not replay
// into a different, non-empty catalog — New refuses outright.
func TestServerWALLineageFence(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ops.wal")
	s1, ts1 := mustServer(t, Config{WALPath: walPath})
	if code := doJSON(t, http.MethodPut, ts1.URL+"/v1/tables/orig", upsertBody("o", 0, 40), nil); code != http.StatusOK {
		t.Fatal("seed upsert failed")
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	other := discovery.New(discovery.Options{})
	if err := other.Add(table.New("bystander").AddColumn("k", vals("b", 0, 30))); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Index: other, WALPath: walPath}); err == nil {
		t.Fatal("New accepted a WAL from a different catalog lineage over a non-empty catalog")
	}
	if got := other.NumTables(); got != 1 {
		t.Fatalf("refused replay still mutated the catalog: %d tables", got)
	}
}

// TestServerWALEpochFence: a log whose low-water snapshot epoch is newer
// than the loaded catalog means the snapshot underneath it is stale or
// missing — replaying would silently drop the truncated records, so New
// refuses.
func TestServerWALEpochFence(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ops.wal")
	ix := discovery.New(discovery.Options{})
	// Forge the on-disk state: a log fenced to this lineage whose records
	// were truncated against a snapshot at epoch 7 — which was then lost.
	res, err := wal.Open(walPath, ix.Lineage(), 7, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Index: ix, WALPath: walPath}); err == nil {
		t.Fatal("New accepted a WAL expecting a newer snapshot than the loaded catalog")
	}
}

// TestServerIngestShed429: with the batcher loop stopped and the single
// queue slot occupied, the next mutation is shed immediately with 429 and a
// Retry-After hint, and the shed counter surfaces in /v1/stats.
func TestServerIngestShed429(t *testing.T) {
	s, err := New(Config{BatchMaxOps: 1, IngestQueueDepth: 1, RequestTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Stop the batcher loop so the queue cannot drain; s.Close is not called
	// (it would double-close the loop's stop channel).
	close(s.batcher.stop)
	<-s.batcher.drained

	blocked := make(chan int, 1)
	go func() {
		blocked <- doJSON(t, http.MethodPut, ts.URL+"/v1/tables/first", upsertBody("a", 0, 20), nil)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.batcher.ch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first upsert never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(upsertBody("b", 0, 20)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/tables/second", &body)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed upsert: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var stats StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.Server.IngestShed == 0 {
		t.Error("stats report zero shed ops after a 429")
	}
	// The queued op eventually times out against its request deadline; it
	// was never acknowledged, so nothing is lost semantically.
	if code := <-blocked; code == http.StatusOK {
		t.Error("queued op reported success with the batcher stopped")
	}
}

// TestServerSnapshotRetryBackoff: a failed periodic snapshot surfaces in
// stats and is retried on the backoff schedule; the first success clears
// snapshot_error and the snapshot is loadable.
func TestServerSnapshotRetryBackoff(t *testing.T) {
	dir := t.TempDir()
	ix := discovery.New(discovery.Options{})
	ff := faultfs.New(nil)
	// First manifest commit rename fails with ENOSPC; the rule is then
	// spent, so the retry succeeds.
	ff.AddRule(faultfs.Rule{Op: faultfs.OpRename, Path: "MANIFEST", Fault: faultfs.Fault{Err: syscall.ENOSPC}})
	ix.SetFS(ff)
	s, ts := mustServer(t, Config{Index: ix, SnapshotDir: dir, SnapshotEvery: 40 * time.Millisecond})
	defer func() { ts.Close(); s.Close() }()
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/tab", upsertBody("p", 0, 40), nil); code != http.StatusOK {
		t.Fatal("upsert failed")
	}
	sawError := false
	deadline := time.Now().Add(10 * time.Second)
	for {
		var stats StatsResponse
		doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
		if stats.Server.SnapshotError != "" {
			sawError = true
		}
		if sawError && stats.Server.SnapshotError == "" {
			break // failed once, then recovered
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never recovered (sawError=%v)", sawError)
		}
		time.Sleep(10 * time.Millisecond)
	}
	loaded, err := discovery.LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("snapshot after retry not loadable: %v", err)
	}
	if got := loaded.Tables(); len(got) != 1 || got[0] != "tab" {
		t.Fatalf("recovered snapshot tables = %v", got)
	}
}

// TestServerDegradedServing: a catalog loaded with a quarantined segment
// serves through the HTTP layer with status "degraded" (200 — it is ready),
// the quarantine count in healthz and stats, and the degraded flag on
// search responses.
func TestServerDegradedServing(t *testing.T) {
	// Build a snapshot with two sealed segments, then corrupt one.
	src := discovery.New(discovery.Options{SealAfter: 1})
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("seg%d", i)
		if err := src.Add(table.New(name).AddColumn("k", vals(name, 0, 40))); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := src.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	src.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".seg" && e.Name() != "mem.seg" {
			p := filepath.Join(dir, e.Name())
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0xff
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Skip("snapshot produced no sealed segment files")
	}
	ix, err := discovery.LoadSnapshotWith(dir, discovery.LoadOptions{Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := mustServer(t, Config{Index: ix})
	defer func() { ts.Close(); s.Close() }()

	var health HealthResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("degraded healthz status %d, want 200 (degraded still serves)", code)
	}
	if health.Status != "degraded" || health.QuarantinedSegments != 1 {
		t.Fatalf("healthz = %+v, want degraded with 1 quarantined segment", health)
	}
	var sr SearchResponse
	sreq := SearchRequest{Table: TableJSON{Columns: []ColumnJSON{{Name: "k", Values: vals("seg0", 0, 40)}}}, K: 5}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", sreq, &sr); code != http.StatusOK {
		t.Fatalf("search over degraded catalog: status %d", code)
	}
	if !sr.Degraded {
		t.Error("search response over a quarantined catalog lacks the degraded flag")
	}
	var stats StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &stats)
	if stats.Catalog.QuarantinedSegments != 1 {
		t.Errorf("stats quarantined_segments = %d, want 1", stats.Catalog.QuarantinedSegments)
	}
	if stats.Server.Health != "degraded" {
		t.Errorf("stats health = %q, want degraded", stats.Server.Health)
	}
}

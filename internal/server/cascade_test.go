package server

// Serving-layer tests of the query-planner wiring: budget_ms and cascade
// request fields, the best_effort response flag, and the engine per-stage
// totals on /v1/stats. The budget tests are written to be exact either
// way — a response that beat its budget must equal the unbudgeted one, a
// response that spent it must carry the flag — so they never flake on
// machine speed.

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

func matchTable(name, prefix string, cols, n int) TableJSON {
	t := TableJSON{Name: name}
	for c := 0; c < cols; c++ {
		t.Columns = append(t.Columns, ColumnJSON{
			Name:   fmt.Sprintf("%s-c%d", name, c),
			Values: vals(fmt.Sprintf("%s%d-", prefix, c), 0, n),
		})
	}
	return t
}

// TestMatchCascadeConformsToFullFidelity: with no budget, the default
// cascade path must return exactly what {"cascade": false} returns.
func TestMatchCascadeConformsToFullFidelity(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := MatchRequest{
		Source: matchTable("src", "v", 3, 60),
		Target: matchTable("tgt", "v", 3, 60),
		Method: "jaccard-levenshtein",
	}
	var on MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &on); code != http.StatusOK {
		t.Fatalf("cascade match: status %d", code)
	}
	off := false
	req.Cascade = &off
	var full MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &full); code != http.StatusOK {
		t.Fatalf("full-fidelity match: status %d", code)
	}
	if on.BestEffort || full.BestEffort {
		t.Fatalf("best_effort without a budget: on=%v off=%v", on.BestEffort, full.BestEffort)
	}
	if !reflect.DeepEqual(on.Matches, full.Matches) {
		t.Fatalf("cascade diverges from full fidelity\ncascade %+v\nfull    %+v", on.Matches, full.Matches)
	}
	if on.Stats.Candidates == 0 {
		t.Fatalf("cascade stats empty: %+v", on.Stats)
	}
}

// TestMatchBudgetBestEffort: a 1ms budget on a deliberately expensive
// fuzzy match either expires (flag set, 200, possibly truncated ranking)
// or — on an absurdly fast machine — completes identically to the
// unbudgeted run. Both outcomes are asserted exactly.
func TestMatchBudgetBestEffort(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := MatchRequest{
		Source: matchTable("src", "v", 4, 150),
		Target: matchTable("tgt", "w", 4, 150),
		Method: "jaccard-levenshtein",
	}
	var want MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &want); code != http.StatusOK {
		t.Fatalf("unbudgeted match: status %d", code)
	}
	req.BudgetMS = 1
	var got MatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &got); code != http.StatusOK {
		t.Fatalf("budgeted match: status %d, want 200 (budget expiry is not an error)", code)
	}
	if got.BestEffort {
		if len(got.Matches) > len(want.Matches) {
			t.Fatalf("best-effort returned more matches than full fidelity: %d > %d", len(got.Matches), len(want.Matches))
		}
	} else if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatal("in-budget response diverges from the unbudgeted one")
	}
}

// TestSearchBudgetBestEffort: same either-way contract on /v1/search.
func TestSearchBudgetBestEffort(t *testing.T) {
	_, ts := testServer(t, Config{})
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("corpus%02d", i)
		if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/"+name, upsertBody("c", i*3, i*3+150), nil); code != http.StatusOK {
			t.Fatalf("upsert %s: status %d", name, code)
		}
	}
	req := SearchRequest{
		Table:      TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "cust", Values: vals("c", 0, 150)}}},
		Mode:       "join",
		K:          5,
		BruteForce: true,
	}
	var want SearchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", req, &want); code != http.StatusOK {
		t.Fatalf("unbudgeted search: status %d", code)
	}
	req.BudgetMS = 1
	var got SearchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", req, &got); code != http.StatusOK {
		t.Fatalf("budgeted search: status %d, want 200 (budget expiry is not an error)", code)
	}
	if !got.BestEffort && !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatal("in-budget search diverges from the unbudgeted one")
	}
}

// TestStatsAggregatesEngineCounters: /v1/stats folds per-request engine
// snapshots into server-wide totals — candidates and stage walls from both
// search and match requests.
func TestStatsAggregatesEngineCounters(t *testing.T) {
	_, ts := testServer(t, Config{})
	if code := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/orders", upsertBody("c", 0, 120), nil); code != http.StatusOK {
		t.Fatal("upsert failed")
	}
	searchReq := SearchRequest{
		Table: TableJSON{Name: "q", Columns: []ColumnJSON{{Name: "cust", Values: vals("c", 0, 100)}}},
		Mode:  "join", K: 5,
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/search", searchReq, nil); code != http.StatusOK {
		t.Fatal("search failed")
	}
	// Top > 0 arms the pair-level cascade (top <= 0 means "rank all pairs",
	// which correctly disables bounding).
	matchReq := MatchRequest{
		Source: matchTable("src", "v", 2, 40),
		Target: matchTable("tgt", "v", 2, 40),
		Method: "jaccard-levenshtein",
		Top:    2,
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", matchReq, nil); code != http.StatusOK {
		t.Fatal("match failed")
	}
	var st StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Engine.Candidates == 0 || st.Engine.Scored == 0 {
		t.Fatalf("engine totals not aggregated: %+v", st.Engine)
	}
	// The jaccard-levenshtein cascade bounds its pairs, so the bound
	// counter must have moved too.
	if st.Engine.Bounded == 0 {
		t.Fatalf("bounded counter not aggregated: %+v", st.Engine)
	}
}

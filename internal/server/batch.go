package server

// The ingest micro-batcher: concurrent PUT/DELETE requests profile their
// tables in their own goroutines, then queue catalog ops here. A single
// background loop gathers ops that arrive within one batch window (or up to
// the batch cap) and applies them as one discovery.Apply call — one
// copy-on-write memtable rebuild and one epoch publish per batch instead of
// per request — then fans the per-op results back to the waiting handlers.
//
// Durability rides the same chokepoint: when a write-ahead log is attached,
// the loop converts each batch to its replay form, appends one WAL record,
// and only then applies the batch. The apply and the acknowledgement both
// happen after the append, so under fsync policy "always" every op a client
// saw a 200 for is on the platter before the 200 existed.
//
// Admission control is the queue itself: the channel is the bounded ingest
// queue, and a submit that would block on a full queue is shed immediately
// with errOverloaded instead of stacking goroutines behind a stalled
// catalog — the handler maps that to 429 + Retry-After and the client backs
// off.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/discovery"
	"valentine/internal/wal"
)

// errOverloaded is the typed shed signal: the bounded ingest queue is full
// and the op was rejected without waiting. Handlers map it to HTTP 429.
var errOverloaded = errors.New("server: ingest queue full")

type ingestOp struct {
	op   discovery.Op
	done chan error
}

type batcher struct {
	ix     *discovery.Index
	log    *wal.Log // nil: no durability logging
	window time.Duration
	maxOps int

	ch      chan ingestOp
	stop    chan struct{}
	drained chan struct{}

	// mu/closed gate new submissions; inflight counts submitters that
	// passed the gate but may not have enqueued yet. close waits for them
	// before stopping the loop, so an accepted op is never stranded in the
	// channel after the final drain.
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	// dictLow is the dictionary length already covered by WAL records: the
	// next record's delta starts here. Only the loop goroutine touches it
	// after construction.
	dictLow int
	// lastApplied is the highest WAL sequence whose batch has been applied
	// to the catalog — the snapshot loop samples it (before saving) as the
	// truncation low-water mark.
	lastApplied atomic.Uint64

	batches atomic.Int64
	ops     atomic.Int64
	shed    atomic.Int64
}

func newBatcher(ix *discovery.Index, log *wal.Log, window time.Duration, maxOps, queueDepth int) *batcher {
	if queueDepth < maxOps {
		queueDepth = maxOps
	}
	b := &batcher{
		ix:      ix,
		log:     log,
		window:  window,
		maxOps:  maxOps,
		ch:      make(chan ingestOp, queueDepth),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	if log != nil {
		b.dictLow = ix.Dict().Len()
		b.lastApplied.Store(log.LastSeq())
	}
	go b.loop()
	return b
}

// submit queues one op and waits for its batch to be applied, honoring ctx.
// A full queue sheds the op immediately with errOverloaded — admission
// control, not backpressure-by-goroutine-pileup. An op accepted into the
// queue is applied even if the submitter stops waiting (the write survives a
// client disconnect; only the response is lost).
func (b *batcher) submit(ctx context.Context, op discovery.Op) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("server: shutting down")
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()

	done := make(chan error, 1)
	select {
	case b.ch <- ingestOp{op: op, done: done}:
	case <-ctx.Done():
		return ctx.Err()
	default:
		b.shed.Add(1)
		return errOverloaded
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops accepting ops, waits for in-flight submissions to finish
// enqueuing, applies everything queued, and waits for the loop to exit.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	// All gated submitters have either enqueued or aborted on their own
	// context by the time Wait returns; nothing can enter the channel after
	// the loop's final drain.
	b.inflight.Wait()
	close(b.stop)
	<-b.drained
}

func (b *batcher) loop() {
	defer close(b.drained)
	for {
		// Wait for the first op of the next batch.
		var first ingestOp
		select {
		case first = <-b.ch:
		case <-b.stop:
			b.flushQueued()
			return
		}
		batch := []ingestOp{first}
		// Gather companions until the window closes or the batch is full.
		timer := time.NewTimer(b.window)
	gather:
		for len(batch) < b.maxOps {
			select {
			case op := <-b.ch:
				batch = append(batch, op)
			case <-timer.C:
				break gather
			case <-b.stop:
				break gather
			}
		}
		timer.Stop()
		b.apply(batch)
	}
}

// flushQueued applies any ops still queued at shutdown, so an accepted
// ingest is never silently dropped.
func (b *batcher) flushQueued() {
	var batch []ingestOp
	for {
		select {
		case op := <-b.ch:
			batch = append(batch, op)
		default:
			if len(batch) > 0 {
				b.apply(batch)
			}
			return
		}
	}
}

// apply converts one batch to replay form, logs it (when a WAL is attached),
// applies it to the catalog, and fans the per-op errors back. Order is the
// durability contract: WAL append strictly before catalog apply, apply
// strictly before any done channel fires.
func (b *batcher) apply(batch []ingestOp) {
	// Convert every op first; a conversion failure (e.g. a malformed op)
	// fails that op alone and keeps it out of the logged record.
	rops := make([]discovery.ReplayOp, 0, len(batch))
	slot := make([]int, 0, len(batch))
	errs := make([]error, len(batch))
	for i, q := range batch {
		rop, err := b.ix.ReplayForm(q.op)
		if err != nil {
			errs[i] = err
			continue
		}
		rops = append(rops, rop)
		slot = append(slot, i)
	}
	var seq uint64
	if b.log != nil && len(rops) > 0 {
		// The record carries the positional dictionary delta since the last
		// logged record. Conversion above interned this batch's new values;
		// a concurrent request may have interned a few more that belong to a
		// later batch — harmless, the delta is positional and replay
		// re-interns it in the same order.
		hi := b.ix.Dict().Len()
		vals := b.ix.Dict().Entries(b.dictLow, hi)
		var err error
		seq, err = b.log.Append(rops, b.dictLow, vals)
		if err != nil {
			// Not logged ⇒ not applied, not acknowledged. The catalog and the
			// log stay consistent; every submitter sees the failure.
			for _, i := range slot {
				errs[i] = fmt.Errorf("server: write-ahead log append failed: %w", err)
			}
			for i, q := range batch {
				q.done <- errs[i]
			}
			return
		}
		b.dictLow = hi
	}
	for i, err := range b.ix.ApplyReplayOps(rops) {
		errs[slot[i]] = err
	}
	if b.log != nil && seq > 0 {
		b.lastApplied.Store(seq)
	}
	b.batches.Add(1)
	b.ops.Add(int64(len(batch)))
	for i, q := range batch {
		q.done <- errs[i]
	}
}

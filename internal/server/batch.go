package server

// The ingest micro-batcher: concurrent PUT/DELETE requests profile their
// tables in their own goroutines, then queue catalog ops here. A single
// background loop gathers ops that arrive within one batch window (or up to
// the batch cap) and applies them as one discovery.Apply call — one
// copy-on-write memtable rebuild and one epoch publish per batch instead of
// per request — then fans the per-op results back to the waiting handlers.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/discovery"
)

type ingestOp struct {
	op   discovery.Op
	done chan error
}

type batcher struct {
	ix     *discovery.Index
	window time.Duration
	maxOps int

	ch      chan ingestOp
	stop    chan struct{}
	drained chan struct{}

	// mu/closed gate new submissions; inflight counts submitters that
	// passed the gate but may not have enqueued yet. close waits for them
	// before stopping the loop, so an accepted op is never stranded in the
	// channel after the final drain.
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup

	batches atomic.Int64
	ops     atomic.Int64
}

func newBatcher(ix *discovery.Index, window time.Duration, maxOps int) *batcher {
	b := &batcher{
		ix:      ix,
		window:  window,
		maxOps:  maxOps,
		ch:      make(chan ingestOp, maxOps),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit queues one op and waits for its batch to be applied, honoring ctx.
// An op accepted into the queue is applied even if the submitter stops
// waiting (the write survives a client disconnect; only the response is
// lost).
func (b *batcher) submit(ctx context.Context, op discovery.Op) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("server: shutting down")
	}
	b.inflight.Add(1)
	b.mu.Unlock()
	defer b.inflight.Done()

	done := make(chan error, 1)
	select {
	case b.ch <- ingestOp{op: op, done: done}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// close stops accepting ops, waits for in-flight submissions to finish
// enqueuing, applies everything queued, and waits for the loop to exit.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	// All gated submitters have either enqueued or aborted on their own
	// context by the time Wait returns; nothing can enter the channel after
	// the loop's final drain.
	b.inflight.Wait()
	close(b.stop)
	<-b.drained
}

func (b *batcher) loop() {
	defer close(b.drained)
	for {
		// Wait for the first op of the next batch.
		var first ingestOp
		select {
		case first = <-b.ch:
		case <-b.stop:
			b.flushQueued()
			return
		}
		batch := []ingestOp{first}
		// Gather companions until the window closes or the batch is full.
		timer := time.NewTimer(b.window)
	gather:
		for len(batch) < b.maxOps {
			select {
			case op := <-b.ch:
				batch = append(batch, op)
			case <-timer.C:
				break gather
			case <-b.stop:
				break gather
			}
		}
		timer.Stop()
		b.apply(batch)
	}
}

// flushQueued applies any ops still queued at shutdown, so an accepted
// ingest is never silently dropped.
func (b *batcher) flushQueued() {
	var batch []ingestOp
	for {
		select {
		case op := <-b.ch:
			batch = append(batch, op)
		default:
			if len(batch) > 0 {
				b.apply(batch)
			}
			return
		}
	}
}

func (b *batcher) apply(batch []ingestOp) {
	ops := make([]discovery.Op, len(batch))
	for i, q := range batch {
		ops[i] = q.op
	}
	errs := b.ix.Apply(ops)
	b.batches.Add(1)
	b.ops.Add(int64(len(batch)))
	for i, q := range batch {
		q.done <- errs[i]
	}
}

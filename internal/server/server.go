// Package server is the suite's serving layer: a long-running HTTP front
// end over the live discovery catalog (internal/discovery), the lazy
// column-profile layer (internal/profile) and the execution engine
// (internal/engine) — the paper's §IX scaling lesson taken to its
// conclusion: dataset discovery at lake scale is a serving problem, and the
// catalog must mutate while it serves.
//
// Endpoints (JSON request/response bodies):
//
//	POST   /v1/search          top-k joinability/unionability query
//	GET    /v1/tables          list live tables
//	GET    /v1/tables/{name}   column profiles of one live table
//	PUT    /v1/tables/{name}   upsert a table into the catalog
//	DELETE /v1/tables/{name}   remove a table
//	POST   /v1/match           pairwise column matching via any method
//	GET    /v1/stats           catalog + server counters
//	GET    /v1/healthz         liveness probe (no body)
//
// Every request runs under a per-request deadline (Config.RequestTimeout)
// with the engine's options installed on its context, so long scoring work
// is cancellable mid-flight. Searches hit the catalog's lock-free snapshot
// path and are never blocked by ingest. Concurrent PUT/DELETE requests are
// micro-batched (Config.BatchWindow/BatchMaxOps): ops arriving within one
// window are applied as a single catalog write — one memtable rebuild, one
// epoch publish — which keeps write amplification flat under concurrent
// ingest. Profiling still happens per-request, before the op enters the
// batch, so the expensive work is parallel and the serialized section stays
// small.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/core"
	"valentine/internal/discovery"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/faultfs"
	"valentine/internal/profile"
	"valentine/internal/table"
	"valentine/internal/wal"
)

// Config configures a Server. The zero value of every field selects a
// sensible serving default.
type Config struct {
	// Index is the live catalog to serve; nil creates a fresh empty one
	// with default options.
	Index *discovery.Index
	// RequestTimeout is the per-request wall-clock budget (default 30s).
	RequestTimeout time.Duration
	// Parallelism is the engine worker-pool size per request (default
	// GOMAXPROCS).
	Parallelism int
	// BatchWindow is how long an ingest op waits for companions before the
	// batch is applied (default 2ms). BatchMaxOps caps one batch (default
	// 64) so a flood cannot delay the first op unboundedly.
	BatchWindow time.Duration
	BatchMaxOps int
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// SnapshotDir, when set, enables periodic catalog snapshots every
	// SnapshotEvery (default 30s) and a final snapshot on Close.
	SnapshotDir   string
	SnapshotEvery time.Duration
	// WALPath, when set, enables the write-ahead operation log: every
	// ingest batch is appended (and, under WALSync "always", fsynced) to
	// this file before it is applied or acknowledged, and surviving records
	// are replayed over the loaded catalog on startup. WALSync selects the
	// fsync policy ("" defaults to always).
	WALPath string
	WALSync wal.SyncPolicy
	// WALFS is the filesystem the WAL reads and writes through (nil: real
	// disk) — the fault-injection seam for crash and I/O-error testing.
	WALFS faultfs.FS
	// IngestQueueDepth bounds the ingest admission queue (default 16 ×
	// BatchMaxOps). A PUT/DELETE arriving while the queue is full is shed
	// immediately with 429 + Retry-After instead of queueing unboundedly.
	IngestQueueDepth int

	// recoveryGate, when non-nil, parks startup WAL replay until the channel
	// is closed — the in-package test seam for observing the recovering
	// state deterministically. Unsettable from outside the package.
	recoveryGate chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Index == nil {
		c.Index = discovery.New(discovery.Options{})
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMaxOps <= 0 {
		c.BatchMaxOps = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.IngestQueueDepth <= 0 {
		c.IngestQueueDepth = 16 * c.BatchMaxOps
	}
	return c
}

// Health states, in rough lifecycle order. Recovering and failed are
// not-ready (healthz 503, mutating and scoring requests shed with
// Retry-After); ok and degraded both serve — degraded just tells clients
// part of the catalog was quarantined at load.
const (
	stateRecovering int32 = iota
	stateOK
	stateDegraded
	stateFailed
)

func stateName(s int32) string {
	switch s {
	case stateRecovering:
		return "recovering"
	case stateOK:
		return "ok"
	case stateDegraded:
		return "degraded"
	default:
		return "failed"
	}
}

// Server serves the live catalog over HTTP. Create with New, mount
// Handler(), and Close when done (Close flushes the ingest batcher and, if
// snapshots are configured, writes a final snapshot).
type Server struct {
	cfg      Config
	registry *core.Registry
	batcher  *batcher
	start    time.Time
	sigLen   int // the catalog's MinHash signature length

	requests atomic.Int64
	searches atomic.Int64
	upserts  atomic.Int64
	removes  atomic.Int64
	matches  atomic.Int64

	// engineTotals accumulates every scoring request's per-stage engine
	// snapshot, so /v1/stats exposes cascade effectiveness (candidates /
	// bounded / pruned / fully-scored, per-stage wall, and the per-matcher
	// cascade counters) in production.
	engineMu     sync.Mutex
	engineTotals engine.Snapshot

	snapStop chan struct{}
	snapDone chan struct{}
	snapErr  atomic.Pointer[string]

	// Durability state: the write-ahead log (nil when disabled), the health
	// state machine, and what startup recovery replayed.
	wal          *wal.Log
	state        atomic.Int32
	recoveryErr  atomic.Pointer[string]
	recoveryDone chan struct{} // closed when startup replay finishes (nil: none ran)
	walRecovered int           // records replayed at startup
	walTorn      int64         // torn-tail bytes truncated at startup
}

// New returns a Server over cfg's catalog. When a WAL is configured it is
// opened (torn tail truncated), fence-checked against the catalog, and its
// surviving records are replayed asynchronously: New returns a server in the
// "recovering" state that sheds scoring and mutating requests with 503 until
// the replay lands, then serves. New fails outright when the log belongs to
// a different catalog lineage or expects a newer snapshot than the one
// loaded — serving writes over the wrong catalog is worse than not starting.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := cfg.Index.Options()
	sigLen, _, _ := profile.Geometry(opts.Signature, opts.Bands)
	s := &Server{
		cfg:      cfg,
		registry: experiment.NewRegistry(),
		start:    time.Now(),
		sigLen:   sigLen,
	}
	var recovered []wal.Record
	if cfg.WALPath != "" {
		ix := cfg.Index
		res, err := wal.Open(cfg.WALPath, ix.Lineage(), ix.Epoch(), wal.Options{FS: cfg.WALFS, Sync: cfg.WALSync})
		if err != nil {
			return nil, err
		}
		if !res.Fresh {
			if res.Lineage != ix.Lineage() {
				// One legitimate mismatch: a fresh, never-written catalog
				// under a log whose snapshot low-water mark is zero — the
				// snapshot was never written (or was lost before its first
				// save), and the log alone is the catalog. Adopt its lineage
				// and replay. Anything else is the wrong catalog: refuse.
				if res.SnapEpoch != 0 || ix.AdoptLineage(res.Lineage) != nil {
					res.Log.Close()
					return nil, fmt.Errorf("server: WAL %s was written by catalog lineage %x, loaded catalog is %x — refusing to replay into the wrong catalog",
						cfg.WALPath, res.Lineage, ix.Lineage())
				}
			}
			if ix.Epoch() < res.SnapEpoch {
				res.Log.Close()
				return nil, fmt.Errorf("server: WAL %s expects a snapshot at epoch >= %d under it, loaded catalog is at epoch %d — snapshot is stale or missing",
					cfg.WALPath, res.SnapEpoch, ix.Epoch())
			}
		}
		s.wal = res.Log
		recovered = res.Records
		s.walRecovered = len(recovered)
		s.walTorn = res.TornBytes
	}
	s.batcher = newBatcher(cfg.Index, s.wal, cfg.BatchWindow, cfg.BatchMaxOps, cfg.IngestQueueDepth)
	if len(recovered) > 0 {
		s.state.Store(stateRecovering)
		s.recoveryDone = make(chan struct{})
		go s.recover(recovered)
	} else {
		s.state.Store(s.servingState())
	}
	if cfg.SnapshotDir != "" {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop()
	}
	return s, nil
}

// servingState is the steady state once recovery (if any) has landed:
// degraded when the load quarantined anything, ok otherwise.
func (s *Server) servingState() int32 {
	if n, _ := s.cfg.Index.QuarantinedSegments(); n > 0 {
		return stateDegraded
	}
	return stateOK
}

// recover replays the WAL's surviving records into the catalog, then flips
// the server out of the recovering state. A replay failure (a dictionary
// fence violation — the log does not match the catalog underneath) parks the
// server in "failed": everything sheds, and Close will neither snapshot nor
// truncate, so the evidence survives for the operator.
func (s *Server) recover(recs []wal.Record) {
	defer close(s.recoveryDone)
	if s.cfg.recoveryGate != nil {
		<-s.cfg.recoveryGate
	}
	if err := wal.ReplayInto(s.cfg.Index, recs); err != nil {
		msg := err.Error()
		s.recoveryErr.Store(&msg)
		s.state.Store(stateFailed)
		return
	}
	// The batcher was built before replay grew the dictionary and assigned
	// sequence numbers; refresh its low-water marks. Safe: every mutating
	// request is shed until the state flips below, and the state store /
	// handler load pair orders these writes before any batch runs.
	s.batcher.dictLow = s.cfg.Index.Dict().Len()
	s.batcher.lastApplied.Store(s.wal.LastSeq())
	s.state.Store(s.servingState())
}

// Index returns the served catalog.
func (s *Server) Index() *discovery.Index { return s.cfg.Index }

// Close flushes pending ingest batches, stops the snapshot loop, and — when
// snapshots are configured — writes a final snapshot (truncating the WAL
// behind it). Safe to call once, after the HTTP listener has stopped
// accepting requests. A server that failed recovery closes without
// snapshotting or truncating: the WAL still holds the records the catalog
// never absorbed.
func (s *Server) Close() error {
	if s.recoveryDone != nil {
		<-s.recoveryDone
	}
	s.batcher.close()
	var err error
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
		s.cfg.Index.WaitCompaction()
		if s.state.Load() != stateFailed {
			err = s.saveSnapshot()
		}
	} else {
		s.cfg.Index.WaitCompaction()
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// saveSnapshot persists the catalog and, on success, truncates the WAL
// through the last sequence applied before the save started. Sampling both
// the low-water sequence and the epoch *before* SaveSnapshot is what makes
// the truncation safe: a batch applied concurrently with the save lands
// above low and survives in the log, and the snapshot on disk has epoch >=
// e0, so a restart's fence check never sees a log newer than its snapshot.
func (s *Server) saveSnapshot() error {
	low := s.batcher.lastApplied.Load()
	e0 := s.cfg.Index.Epoch()
	if err := s.cfg.Index.SaveSnapshot(s.cfg.SnapshotDir); err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.TruncateThrough(low, e0); err != nil {
			return fmt.Errorf("snapshot saved but WAL truncation failed: %w", err)
		}
	}
	return nil
}

// snapshotLoop drives periodic snapshots. A failed save is retried on a
// capped exponential backoff (1s doubling up to SnapshotEvery) instead of
// waiting a whole interval to discover the disk is still broken; the first
// success clears snapshot_error and restores the normal cadence.
func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	const retryFloor = time.Second
	delay := s.cfg.SnapshotEvery
	backoff := retryFloor
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-timer.C:
		}
		if st := s.state.Load(); st == stateRecovering || st == stateFailed {
			// Never snapshot a half-replayed catalog: a save plus WAL
			// truncation here would destroy the records not yet absorbed.
			timer.Reset(retryFloor)
			continue
		}
		if err := s.saveSnapshot(); err != nil {
			msg := err.Error()
			s.snapErr.Store(&msg)
			delay = backoff
			if backoff *= 2; backoff > s.cfg.SnapshotEvery {
				backoff = s.cfg.SnapshotEvery
			}
			if delay > s.cfg.SnapshotEvery {
				delay = s.cfg.SnapshotEvery
			}
		} else {
			s.snapErr.Store(nil) // stats report current health, not history
			delay = s.cfg.SnapshotEvery
			backoff = retryFloor
		}
		timer.Reset(delay)
	}
}

// Handler returns the server's HTTP handler (mount it on any mux or
// http.Server).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", s.wrap(s.handleSearch))
	mux.HandleFunc("GET /v1/tables", s.wrap(s.handleListTables))
	mux.HandleFunc("GET /v1/tables/{name}", s.wrap(s.handleGetTable))
	mux.HandleFunc("PUT /v1/tables/{name}", s.wrap(s.handleUpsert))
	mux.HandleFunc("DELETE /v1/tables/{name}", s.wrap(s.handleRemove))
	mux.HandleFunc("POST /v1/match", s.wrap(s.handleMatch))
	mux.HandleFunc("GET /v1/stats", s.wrap(s.handleStats))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// HealthResponse is the /v1/healthz body: the server's readiness state plus
// what explains it. Status "ok" and "degraded" serve (200); "recovering"
// (startup WAL replay in flight) and "failed" (replay hit a fence violation)
// answer 503 with Retry-After.
type HealthResponse struct {
	Status string `json:"status"`
	// QuarantinedSegments counts snapshot files moved aside at load because
	// their bytes were corrupt; nonzero is what "degraded" means.
	QuarantinedSegments int `json:"quarantined_segments,omitempty"`
	// WALRecoveredRecords is how many log records startup replay applied.
	WALRecoveredRecords int `json:"wal_recovered_records,omitempty"`
	// Error carries the recovery failure when Status is "failed".
	Error string `json:"error,omitempty"`
}

// handleHealthz is the liveness/readiness probe: load generators and
// orchestrators poll it before sending traffic. Unwrapped — readiness must
// not consume an engine context or count as a served request.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.state.Load()
	resp := HealthResponse{Status: stateName(st), WALRecoveredRecords: s.walRecovered}
	resp.QuarantinedSegments, _ = s.cfg.Index.QuarantinedSegments()
	code := http.StatusOK
	if st == stateRecovering || st == stateFailed {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		if msg := s.recoveryErr.Load(); msg != nil {
			resp.Error = *msg
		}
	}
	writeJSON(w, code, resp)
}

// ready gates the scoring and mutating handlers on the health state: during
// startup recovery the catalog is a moving prefix of the pre-crash state,
// and after a failed recovery it is wrong — neither may serve answers or
// accept writes.
func (s *Server) ready() error {
	switch s.state.Load() {
	case stateRecovering:
		return &httpError{http.StatusServiceUnavailable, "server recovering: replaying write-ahead log", 1}
	case stateFailed:
		msg := "write-ahead log replay failed"
		if p := s.recoveryErr.Load(); p != nil {
			msg = *p
		}
		return &httpError{http.StatusServiceUnavailable, msg, 0}
	}
	return nil
}

// degraded reports whether part of the catalog was quarantined at load —
// the flag scoring responses carry so clients know results may be missing
// tables that could not be read.
func (s *Server) degraded() bool { return s.state.Load() == stateDegraded }

// wrap installs the per-request deadline and engine options, counts the
// request, and renders handler errors as JSON.
func (s *Server) wrap(h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		ctx, cancel := engine.Options{
			Parallelism: s.cfg.Parallelism,
			Deadline:    s.cfg.RequestTimeout,
		}.Start(r.Context())
		defer cancel()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := h(ctx, w, r.WithContext(ctx)); err != nil {
			writeError(w, err)
		}
	}
}

// httpError carries a status code (and optional Retry-After hint, in
// seconds) through the handler error path.
type httpError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// errTooManyRequests is the shed response: the bounded ingest queue was full
// and the op was rejected without queueing. Retry-After tells a well-behaved
// client the floor of its backoff.
func errTooManyRequests(format string, args ...any) error {
	return &httpError{status: http.StatusTooManyRequests, msg: fmt.Sprintf(format, args...), retryAfter: 1}
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
		if he.retryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", he.retryAfter))
		}
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; the status is moot but 499-style semantics fit.
		status = http.StatusRequestTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

// --- wire types ---

// TableJSON is the wire form of a table: ordered columns of row-aligned
// string cells, exactly the CSV data model.
type TableJSON struct {
	Name    string       `json:"name,omitempty"`
	Columns []ColumnJSON `json:"columns"`
}

// ColumnJSON is one named column.
type ColumnJSON struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// toTable converts the wire form, inferring column types like the CSV
// reader does. name overrides the embedded name when non-empty (the path
// component wins for /v1/tables/{name}).
func (tj TableJSON) toTable(name string) (*table.Table, error) {
	if name == "" {
		name = tj.Name
	}
	t := table.New(name)
	for _, c := range tj.Columns {
		t.AddColumn(c.Name, c.Values)
	}
	if err := t.Validate(); err != nil {
		return nil, errBadRequest("invalid table: %v", err)
	}
	return t, nil
}

// toTableDefault converts the wire form keeping the embedded name, falling
// back to def when none was sent — match tables are anonymous inputs, and
// validation must see the effective name.
func (tj TableJSON) toTableDefault(def string) (*table.Table, error) {
	name := tj.Name
	if name == "" {
		name = def
	}
	return TableJSON{Name: name, Columns: tj.Columns}.toTable("")
}

// toQueryTable converts the wire form of a search query. The embedded name
// is kept as-is — including empty: an anonymous query must not default to
// any fixed name, or an indexed table of that name would be silently
// self-skipped out of the results.
func (tj TableJSON) toQueryTable() (*table.Table, error) {
	t := table.New(tj.Name)
	for _, c := range tj.Columns {
		t.AddColumn(c.Name, c.Values)
	}
	if err := discovery.ValidateQuery(t); err != nil {
		return nil, errBadRequest("invalid table: %v", err)
	}
	return t, nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("decoding request body: %v", err)
	}
	return nil
}

// --- search ---

// SearchRequest asks for the top-k tables related to the query table.
type SearchRequest struct {
	Table TableJSON `json:"table"`
	Mode  string    `json:"mode"` // "join" (default) | "union"
	K     int       `json:"k"`    // <= 0: all
	// BruteForce bypasses the LSH shards (debugging/regression tool).
	BruteForce bool `json:"brute_force,omitempty"`
	// BudgetMS is the per-query latency budget in milliseconds (0: none).
	// It is a sub-deadline of the request timeout: when it expires
	// mid-scoring the response carries whatever completed, flagged
	// best_effort, instead of a 504.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Epsilon is the per-query approximation budget in [0, 1): every
	// returned score is guaranteed within Epsilon of the true top-k
	// (0: exact). The search path scores every nominated candidate exactly,
	// so the guarantee holds trivially today; the field is validated and
	// echoed as approx so clients can rely on one contract across
	// endpoints.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// SearchResult is one ranked table.
type SearchResult struct {
	Table       string  `json:"table"`
	Score       float64 `json:"score"`
	BestQuery   string  `json:"best_query,omitempty"`
	BestIndexed string  `json:"best_indexed,omitempty"`
	Candidates  int     `json:"candidates"`
}

// SearchResponse carries the ranked results plus the engine's per-stage
// instrumentation for the request.
type SearchResponse struct {
	Epoch   uint64          `json:"epoch"`
	Results []SearchResult  `json:"results"`
	Stats   engine.Snapshot `json:"stats"`
	// BestEffort reports that the per-query budget expired mid-scoring and
	// Results covers only the work that finished in time.
	BestEffort bool `json:"best_effort,omitempty"`
	// Approx reports that the query ran with a nonzero epsilon: scores are
	// guaranteed within that epsilon of the true top-k, not necessarily
	// equal to it.
	Approx bool `json:"approx,omitempty"`
	// Degraded reports that part of the catalog was quarantined at load:
	// the ranking is complete over what could be read, but tables whose
	// segment was corrupt are absent.
	Degraded bool `json:"degraded,omitempty"`
}

func (s *Server) handleSearch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.ready(); err != nil {
		return err
	}
	var req SearchRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if err := core.ValidateBudget(time.Duration(req.BudgetMS) * time.Millisecond); err != nil {
		return errBadRequest("budget_ms: %v", err)
	}
	if err := core.ValidateEpsilon(req.Epsilon); err != nil {
		return errBadRequest("%v", err)
	}
	if req.Mode == "" {
		req.Mode = string(discovery.ModeJoin)
	}
	mode, err := discovery.ParseMode(req.Mode)
	if err != nil {
		return errBadRequest("%v", err)
	}
	q, err := req.Table.toQueryTable()
	if err != nil {
		return err
	}
	s.searches.Add(1)
	ctx = core.WithEpsilon(ctx, req.Epsilon)
	ctx, stats := engine.WithStats(ctx)
	defer func() { s.recordEngine(stats.Snapshot()) }()
	ix := s.cfg.Index
	// Both paths run under the request context (deadline + cancellation
	// honored mid-sweep) and report the epoch of the snapshot actually
	// searched — sampling ix.Epoch() separately could race past a
	// concurrently published write.
	var (
		results    []discovery.Result
		epoch      uint64
		bestEffort bool
	)
	if req.BudgetMS > 0 {
		// The budget is a sub-deadline of the request context: its expiry
		// yields a flagged best-effort response, while the request's own
		// deadline (or cancellation) stays an error.
		qctx, qcancel := core.BudgetContext(ctx, time.Duration(req.BudgetMS)*time.Millisecond)
		defer qcancel()
		results, epoch, bestEffort, err = ix.SearchBestEffortContext(qctx, q, mode, req.K, req.BruteForce)
		if err != nil {
			if !core.IsBudgetExpiry(ctx, err) {
				return err
			}
			err = nil
		}
	} else if req.BruteForce {
		results, epoch, err = ix.SearchBruteForceContext(ctx, q, mode, req.K)
	} else {
		results, epoch, err = ix.SearchContextEpoch(ctx, q, mode, req.K)
	}
	if err != nil {
		return err
	}
	resp := SearchResponse{Epoch: epoch, Stats: stats.Snapshot(), BestEffort: bestEffort, Approx: req.Epsilon > 0, Degraded: s.degraded(), Results: make([]SearchResult, len(results))}
	for i, res := range results {
		resp.Results[i] = SearchResult{
			Table:       res.Table,
			Score:       res.Score,
			BestQuery:   res.BestQuery,
			BestIndexed: res.BestIndexed,
			Candidates:  res.Candidates,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// --- tables ---

// TablesResponse lists the live tables.
type TablesResponse struct {
	Tables []string `json:"tables"`
	Epoch  uint64   `json:"epoch"`
}

func (s *Server) handleListTables(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	ix := s.cfg.Index
	return writeJSON(w, http.StatusOK, TablesResponse{Tables: ix.Tables(), Epoch: ix.Epoch()})
}

// ProfileJSON is the served summary of one indexed column.
type ProfileJSON struct {
	Column   string   `json:"column"`
	Type     string   `json:"type"`
	Rows     int      `json:"rows"`
	Distinct int      `json:"distinct"`
	Tokens   []string `json:"tokens,omitempty"`
}

// TableProfileResponse is the served summary of one indexed table.
type TableProfileResponse struct {
	Table   string        `json:"table"`
	Columns []ProfileJSON `json:"columns"`
}

func (s *Server) handleGetTable(_ context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("name")
	ps := s.cfg.Index.Profiles(name)
	if ps == nil {
		return errNotFound("table %q not indexed", name)
	}
	resp := TableProfileResponse{Table: name, Columns: make([]ProfileJSON, len(ps))}
	for i, p := range ps {
		resp.Columns[i] = ProfileJSON{
			Column:   p.Column,
			Type:     p.Type.String(),
			Rows:     p.Rows,
			Distinct: p.Distinct,
			Tokens:   p.Tokens,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// UpsertRequest is the PUT /v1/tables/{name} body; the path name wins over
// any embedded name.
type UpsertRequest struct {
	Name    string       `json:"name,omitempty"`
	Columns []ColumnJSON `json:"columns"`
}

// MutationResponse reports the catalog state after an ingest or removal.
type MutationResponse struct {
	Status  string `json:"status"`
	Table   string `json:"table"`
	Tables  int    `json:"tables"`
	Columns int    `json:"columns"`
	Epoch   uint64 `json:"epoch"`
}

func (s *Server) handleUpsert(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.ready(); err != nil {
		return err
	}
	name := r.PathValue("name")
	var req UpsertRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	t, err := TableJSON{Name: req.Name, Columns: req.Columns}.toTable(name)
	if err != nil {
		return err
	}
	// Profile in this request's goroutine — concurrent upserts profile in
	// parallel; only the batched catalog apply is serialized. The profile
	// is private to the request (HTTP tables are fresh pointers, so a
	// shared store could never hit on them — it would only pin the table),
	// and only the artifacts catalog ingestion reads are precomputed. The
	// catalog's value dictionary is attached, so every distinct value the
	// corpus has seen before reuses its memoized MinHash base hash instead
	// of being re-hashed — under micro-batched ingest of overlapping tables
	// the signature work per request drops to mixing cached hashes.
	tp := profile.NewInterned(t, s.cfg.Index.Dict())
	for i := 0; i < tp.NumColumns(); i++ {
		p := tp.Column(i)
		p.Signature(s.sigLen)
		p.NameTokens()
		p.Distinct()
	}
	if err := s.batcher.submit(ctx, discovery.Op{Upsert: tp}); err != nil {
		if errors.Is(err, errOverloaded) {
			return errTooManyRequests("%v", err)
		}
		return err
	}
	s.upserts.Add(1)
	ix := s.cfg.Index
	return writeJSON(w, http.StatusOK, MutationResponse{
		Status: "ok", Table: t.Name,
		Tables: ix.NumTables(), Columns: ix.NumColumns(), Epoch: ix.Epoch(),
	})
}

func (s *Server) handleRemove(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.ready(); err != nil {
		return err
	}
	name := r.PathValue("name")
	if err := s.batcher.submit(ctx, discovery.Op{Remove: name}); err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			return errTooManyRequests("%v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return err
		}
		return errNotFound("%v", err)
	}
	s.removes.Add(1)
	ix := s.cfg.Index
	return writeJSON(w, http.StatusOK, MutationResponse{
		Status: "ok", Table: name,
		Tables: ix.NumTables(), Columns: ix.NumColumns(), Epoch: ix.Epoch(),
	})
}

// --- match ---

// MatchRequest runs one pairwise matching method over two inline tables.
type MatchRequest struct {
	Source TableJSON      `json:"source"`
	Target TableJSON      `json:"target"`
	Method string         `json:"method"` // default "coma-schema"
	Params map[string]any `json:"params,omitempty"`
	Top    int            `json:"top"` // <= 0: all
	// BudgetMS is the per-query latency budget in milliseconds (0: none);
	// expiry mid-scoring yields a flagged best-effort response.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Cascade selects the planner cascade for methods that support it
	// (nil: on — the escape hatch is {"cascade": false}). Without a
	// budget and with epsilon zero, cascade output is bit-identical to the
	// full-fidelity path.
	Cascade *bool `json:"cascade,omitempty"`
	// Epsilon is the per-query approximation budget in [0, 1): the cascade
	// prunes more aggressively, guaranteeing every returned score within
	// Epsilon of the true top-k instead of exactly equal (0: exact). Only
	// the cascade path consumes it; responses that used it carry approx.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// MatchJSON is one scored column correspondence.
type MatchJSON struct {
	SourceColumn string  `json:"source_column"`
	TargetColumn string  `json:"target_column"`
	Score        float64 `json:"score"`
}

// MatchResponse carries the ranked matches plus the engine's per-stage
// instrumentation for the request.
type MatchResponse struct {
	Method  string          `json:"method"`
	Matches []MatchJSON     `json:"matches"`
	Stats   engine.Snapshot `json:"stats"`
	// BestEffort reports that the per-query budget expired mid-scoring and
	// Matches covers only the work that finished in time.
	BestEffort bool `json:"best_effort,omitempty"`
	// Approx reports that the cascade ran with a nonzero epsilon: scores
	// are within that epsilon of the true top-k, not necessarily equal.
	Approx bool `json:"approx,omitempty"`
	// Degraded reports that part of the catalog was quarantined at load.
	// Match scores two inline tables and is unaffected by the loss, but the
	// flag keeps the degradation visible on every scoring response.
	Degraded bool `json:"degraded,omitempty"`
}

func (s *Server) handleMatch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if err := s.ready(); err != nil {
		return err
	}
	var req MatchRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if err := core.ValidateBudget(time.Duration(req.BudgetMS) * time.Millisecond); err != nil {
		return errBadRequest("budget_ms: %v", err)
	}
	if err := core.ValidateEpsilon(req.Epsilon); err != nil {
		return errBadRequest("%v", err)
	}
	if req.Method == "" {
		req.Method = experiment.MethodComaSchema
	}
	src, err := req.Source.toTableDefault("source")
	if err != nil {
		return errBadRequest("source: %v", err)
	}
	tgt, err := req.Target.toTableDefault("target")
	if err != nil {
		return errBadRequest("target: %v", err)
	}
	m, err := s.registry.New(req.Method, core.Params(req.Params))
	if err != nil {
		return errBadRequest("%v", err)
	}
	s.matches.Add(1)
	ctx, stats := engine.WithStats(ctx)
	defer func() { s.recordEngine(stats.Snapshot()) }()
	qctx, qcancel := core.BudgetContext(ctx, time.Duration(req.BudgetMS)*time.Millisecond)
	defer qcancel()
	// The engine path: context deadline and parallelism honored
	// mid-scoring. No profile store: HTTP tables are fresh pointers a
	// pointer-keyed store could never hit on again — a nil store still
	// shares one profile per table within this call, then lets it be
	// collected.
	var (
		matches    []core.Match
		bestEffort bool
		approx     bool
	)
	cm, cascades := m.(core.CascadeMatcher)
	if cascades && (req.Cascade == nil || *req.Cascade) {
		sp, tp := core.ProfilePair(nil, src, tgt)
		matches, bestEffort, err = cm.MatchCascade(core.WithEpsilon(qctx, req.Epsilon), sp, tp, req.Top)
		approx = req.Epsilon > 0
	} else {
		matches, err = core.MatchWithContext(qctx, m, nil, src, tgt)
		if req.Top > 0 && len(matches) > req.Top {
			matches = matches[:req.Top]
		}
	}
	if err != nil {
		// A spent budget (request still alive) downgrades to a flagged
		// best-effort response; a dead request stays an error.
		if !core.IsBudgetExpiry(ctx, err) {
			return err
		}
		bestEffort = true
	}
	resp := MatchResponse{Method: req.Method, Stats: stats.Snapshot(), BestEffort: bestEffort, Approx: approx, Degraded: s.degraded(), Matches: make([]MatchJSON, len(matches))}
	for i, match := range matches {
		resp.Matches[i] = MatchJSON{
			SourceColumn: match.SourceColumn,
			TargetColumn: match.TargetColumn,
			Score:        match.Score,
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// --- stats ---

// StatsResponse merges catalog state with server counters and the
// cumulative engine pipeline totals across every scoring request.
type StatsResponse struct {
	Catalog discovery.Stats `json:"catalog"`
	Server  ServerStats     `json:"server"`
	Engine  engine.Snapshot `json:"engine"`
}

// recordEngine folds one request's engine snapshot into the server-wide
// totals served by /v1/stats, per-matcher cascade counters included.
func (s *Server) recordEngine(sn engine.Snapshot) {
	s.engineMu.Lock()
	s.engineTotals.Merge(sn)
	s.engineMu.Unlock()
}

// ServerStats are the serving-layer counters.
type ServerStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Searches      int64   `json:"searches"`
	Upserts       int64   `json:"upserts"`
	Removes       int64   `json:"removes"`
	Matches       int64   `json:"matches"`
	Batches       int64   `json:"ingest_batches"`
	BatchedOps    int64   `json:"ingest_batched_ops"`
	// IngestShed counts ops rejected with 429 because the bounded ingest
	// queue was full.
	IngestShed    int64  `json:"ingest_shed,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
	// Health mirrors /v1/healthz's status field.
	Health string `json:"health"`
	// WAL state when durability logging is enabled: the fsync policy, the
	// current log length, the last sequence appended, and what startup
	// recovery found (records replayed, torn-tail bytes truncated).
	WALPolicy           string `json:"wal_policy,omitempty"`
	WALBytes            int64  `json:"wal_bytes,omitempty"`
	WALLastSeq          uint64 `json:"wal_last_seq,omitempty"`
	WALRecoveredRecords int    `json:"wal_recovered_records,omitempty"`
	WALTornBytes        int64  `json:"wal_torn_bytes,omitempty"`
}

func (s *Server) handleStats(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	st := ServerStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Searches:      s.searches.Load(),
		Upserts:       s.upserts.Load(),
		Removes:       s.removes.Load(),
		Matches:       s.matches.Load(),
		Batches:       s.batcher.batches.Load(),
		BatchedOps:    s.batcher.ops.Load(),
		IngestShed:    s.batcher.shed.Load(),
		Health:        stateName(s.state.Load()),
	}
	if msg := s.snapErr.Load(); msg != nil {
		st.SnapshotError = *msg
	}
	if s.wal != nil {
		st.WALPolicy = string(s.wal.Policy())
		st.WALBytes = s.wal.Size()
		st.WALLastSeq = s.wal.LastSeq()
		st.WALRecoveredRecords = s.walRecovered
		st.WALTornBytes = s.walTorn
	}
	s.engineMu.Lock()
	eng := s.engineTotals
	if len(s.engineTotals.Matchers) > 0 {
		eng.Matchers = make(map[string]engine.MatcherSnapshot, len(s.engineTotals.Matchers))
		for label, ms := range s.engineTotals.Matchers {
			eng.Matchers[label] = ms
		}
	}
	s.engineMu.Unlock()
	return writeJSON(w, http.StatusOK, StatsResponse{
		Catalog: s.cfg.Index.Stats(),
		Server:  st,
		Engine:  eng,
	})
}

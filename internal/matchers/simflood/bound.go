package simflood

// Cascade score bound. Similarity Flooding looks like the worst case for a
// propagation-free bound — the fixpoint mixes every seed into every score —
// but formula C's update has enough structure to bound one round exactly,
// and every round's output (including the last, which is what the matcher
// emits) is the normalization of one such update.
//
// With unique column names the pairwise connectivity graph of two schema
// graphs is fixed: the table pair propagates into every column pair with
// coefficient 1/(n_s·n_t) ("column" edges fan out to all n_s·n_t pairs),
// and each column pair receives back-propagation from its type pair with
// coefficient 1/(cntS(type_a)·cntT(type_b)) and from its normalized-name
// pair with coefficient 1/(cnS(norm_a)·cnT(norm_b)), where cnt/cn are the
// per-side type and normalized-name multiplicities. Those three are a
// column pair's only incoming propagation edges.
//
// Formula C computes next = tmp + φ(tmp) with tmp = σ⁰ + cur, then divides
// by the global maximum. Every cur component is a previous normalized score
// in [0, 1], so tmp_v ≤ σ⁰_v + 1 componentwise, giving the numerator cap
//
//	y(ab) = (σ⁰_ab+1) + (σ⁰_tbl+1)/(n_s·n_t)
//	      + (τ_ab+1)/(cntS·cntT) + (ν_ab+1)/(cnS·cnT)
//
// For the denominator, the maximum is at least next of any single node:
// next_v ≥ tmp_v ≥ σ⁰_v bounds it below by the largest seed, and the table
// pair — whose incoming back-propagation coefficients from every column
// pair are exactly 1 — bounds it by σ⁰_tbl + Σ_ab σ⁰_ab. The emitted score
// next_ab/max is therefore at most y(ab)/λ with
// λ = max(max-seed, σ⁰_tbl + Σ σ⁰_ab), and also at most 1 (it is
// post-normalization). Zero λ means every seed is zero, which floods to
// all-zero scores.
//
// The stable-marriage selection rescales emitted scores to 0.5 + s/2
// (selected) or s/2, both ≤ 0.5 + s/2, so the table bound maps through the
// same transform. Other fixpoint formulas and duplicate column names (which
// collapse schema-graph nodes and change the coefficient counting) fall
// back to the conservative bound 1.

import (
	"valentine/internal/graph"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// boundSlack inflates the bound by one part in 10⁹: the bound is derived
// through different float operations than the flood itself, and the
// admissibility contract must survive rounding in near-tight cases.
const boundSlack = 1 + 1e-9

// ScoreBoundProfiles implements core.ScoreBounder (see the derivation
// above). It reads only column names and types, so it costs one seed pass —
// no PCG construction and no fixpoint iterations.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	if m.Formula != graph.FormulaC {
		return 1
	}
	source, target := sp.Table(), tp.Table()
	ns, nt := len(source.Columns), len(target.Columns)
	if ns == 0 || nt == 0 {
		return 0
	}
	if hasDuplicateColumnNames(source) || hasDuplicateColumnNames(target) {
		return 1
	}

	srcNorm := normalizedNames(source)
	tgtNorm := normalizedNames(target)
	typeCntS, normCntS := multiplicities(source, srcNorm)
	typeCntT, normCntT := multiplicities(target, tgtNorm)

	s0tbl := strutil.LevenshteinSim(source.Name, target.Name)
	typeSim := make(map[[2]table.Type]float64, 4)
	tau := func(a, b table.Type) float64 {
		key := [2]table.Type{a, b}
		if v, ok := typeSim[key]; ok {
			return v
		}
		v := strutil.LevenshteinSim(a.String(), b.String())
		typeSim[key] = v
		return v
	}

	// One pass computes the seed sum and maximum; the second pass needs the
	// final λ, so the per-pair name seeds are kept.
	nameSeed := make([]float64, ns*nt)
	normSeed := make([]float64, ns*nt)
	seedSum := 0.0
	maxSeed := s0tbl
	for i := range source.Columns {
		for j := range target.Columns {
			s0 := strutil.LevenshteinSim(source.Columns[i].Name, target.Columns[j].Name)
			nu := strutil.LevenshteinSim(srcNorm[i], tgtNorm[j])
			t := tau(source.Columns[i].Type, target.Columns[j].Type)
			nameSeed[i*nt+j] = s0
			normSeed[i*nt+j] = nu
			seedSum += s0
			for _, v := range [3]float64{s0, nu, t} {
				if v > maxSeed {
					maxSeed = v
				}
			}
		}
	}
	lambda := s0tbl + seedSum
	if maxSeed > lambda {
		lambda = maxSeed
	}
	if lambda == 0 {
		return 0
	}

	tblTerm := (s0tbl + 1) / float64(ns*nt)
	best := 0.0
	for i := range source.Columns {
		for j := range target.Columns {
			t := tau(source.Columns[i].Type, target.Columns[j].Type)
			typDen := float64(typeCntS[source.Columns[i].Type] * typeCntT[target.Columns[j].Type])
			namDen := float64(normCntS[srcNorm[i]] * normCntT[tgtNorm[j]])
			y := (nameSeed[i*nt+j] + 1) + tblTerm +
				(t+1)/typDen + (normSeed[i*nt+j]+1)/namDen
			if b := y / lambda; b > best {
				best = b
			}
		}
	}
	best *= boundSlack
	if best > 1 {
		best = 1 // scores are post-normalization, so 1 is itself admissible
	}
	if m.StableMarriage {
		best = 0.5 + best/2
	}
	return best
}

func hasDuplicateColumnNames(t *table.Table) bool {
	seen := make(map[string]struct{}, len(t.Columns))
	for i := range t.Columns {
		if _, dup := seen[t.Columns[i].Name]; dup {
			return true
		}
		seen[t.Columns[i].Name] = struct{}{}
	}
	return false
}

func normalizedNames(t *table.Table) []string {
	out := make([]string, len(t.Columns))
	for i := range t.Columns {
		out[i] = strutil.Normalize(t.Columns[i].Name)
	}
	return out
}

// multiplicities counts, per side, how many columns share each type and
// each normalized name — the fan-in denominators of the back-propagation
// coefficients.
func multiplicities(t *table.Table, norms []string) (map[table.Type]int, map[string]int) {
	types := make(map[table.Type]int, 4)
	names := make(map[string]int, len(t.Columns))
	for i := range t.Columns {
		types[t.Columns[i].Type]++
		names[norms[i]]++
	}
	return types, names
}

package simflood

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/graph"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "similarity-flooding" {
		t.Error("name")
	}
}

func TestFormulaParsing(t *testing.T) {
	cases := map[string]graph.FixpointFormula{
		"basic": graph.FormulaBasic, "A": graph.FormulaA,
		"b": graph.FormulaB, "C": graph.FormulaC, "junk": graph.FormulaC,
	}
	for in, want := range cases {
		m, err := New(core.Params{"formula": in})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.(*Matcher).Formula; got != want {
			t.Errorf("formula %q = %v, want %v", in, got, want)
		}
	}
}

func TestVerbatimSchemataPerfect(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{})
		matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.99)
	}
}

func TestNoisySchemataStillUseful(t *testing.T) {
	// SF degrades with noisy schemata but retains signal through the
	// type/name structure (paper: median ≈ 0.6 on noisy schemata).
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.3)
}

func TestBuildGraphShape(t *testing.T) {
	tab := table.New("t")
	tab.AddColumn("a", []string{"1"})
	tab.AddColumn("b", []string{"x"})
	g := buildGraph(tab)
	// nodes: tbl + 2 cols + up to 2 types (int,string) + 2 names
	if !g.HasNode("tbl:t") || !g.HasNode("col:a") || !g.HasNode("typ:int") {
		t.Fatalf("missing expected nodes: %v", g.Nodes())
	}
	if len(g.Out("tbl:t")) != 2 {
		t.Errorf("root should have 2 column edges, got %d", len(g.Out("tbl:t")))
	}
	if len(g.Out("col:a")) != 2 {
		t.Errorf("column should have type+name edges, got %d", len(g.Out("col:a")))
	}
}

func TestInitialSim(t *testing.T) {
	if got := initialSim("col:city", "col:city"); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := initialSim("col:city", "typ:string"); got != 0 {
		t.Errorf("kind mismatch = %v", got)
	}
	if got := initialSim("col:city", "col:cty"); got <= 0.5 {
		t.Errorf("near name = %v", got)
	}
}

func TestOnlyColumnPairsReturned(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	ms, err := newM(t, nil).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches")
	}
	for _, m := range ms {
		if pair.Source.Column(m.SourceColumn) == nil || pair.Target.Column(m.TargetColumn) == nil {
			t.Fatalf("non-column pair leaked: %v", m)
		}
	}
}

func TestFormulasProduceDifferentRankings(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	a, err := newM(t, core.Params{"formula": "basic"}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	c, err := newM(t, core.Params{"formula": "C"}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(c) {
		return // different sizes already proves difference
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("formula choice had no effect")
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisySchema: true, NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

// Package simflood reimplements the Similarity Flooding matcher (Melnik,
// Garcia-Molina & Rahm, ICDE 2002) from scratch, as the paper did (only an
// outdated 2003 Java version exists).
//
// Each table becomes a directed labeled graph: a table node linked to
// column nodes ("column" edges), column nodes linked to their data-type
// nodes ("type" edges) and to name-literal nodes ("name" edges). The two
// graphs are joined into a pairwise connectivity graph; similarities seeded
// by Levenshtein string similarity (the paper's stated choice) are then
// propagated with inverse-average coefficients until fixpoint, using
// formula C (Table II's configuration).
package simflood

import (
	"context"
	"sort"
	"strings"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/graph"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Matcher is a configured Similarity Flooding instance.
type Matcher struct {
	Formula       graph.FixpointFormula
	MaxIterations int
	Epsilon       float64
	// StableMarriage applies Melnik's stable-marriage selection filter on
	// the flooded similarities: pairs in the stable matching are promoted
	// above the rest of the ranking.
	StableMarriage bool
}

// New builds the matcher from params: "formula" ("basic"|"A"|"B"|"C",
// default "C" as in Table II), "max_iterations" (default 100), "epsilon"
// (default 1e-3), "selection" ("none"|"stable-marriage", default "none").
func New(p core.Params) (core.Matcher, error) {
	f := graph.FormulaC
	switch strings.ToUpper(p.String("formula", "C")) {
	case "BASIC":
		f = graph.FormulaBasic
	case "A":
		f = graph.FormulaA
	case "B":
		f = graph.FormulaB
	case "C":
		f = graph.FormulaC
	}
	return &Matcher{
		Formula:        f,
		MaxIterations:  p.Int("max_iterations", 100),
		Epsilon:        p.Float("epsilon", 1e-3),
		StableMarriage: p.String("selection", "none") == "stable-marriage",
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "similarity-flooding" }

// node id prefixes inside the schema graphs
const (
	tblPrefix  = "tbl:"
	colPrefix  = "col:"
	typPrefix  = "typ:"
	namPrefix  = "nam:"
	edgeColumn = "column"
	edgeType   = "type"
	edgeName   = "name"
)

// buildGraph converts a table into its schema graph.
func buildGraph(t *table.Table) *graph.Graph {
	g := graph.New()
	tn := tblPrefix + t.Name
	g.AddNode(tn)
	for i := range t.Columns {
		c := &t.Columns[i]
		cn := colPrefix + c.Name
		g.AddEdge(tn, edgeColumn, cn)
		g.AddEdge(cn, edgeType, typPrefix+c.Type.String())
		g.AddEdge(cn, edgeName, namPrefix+strutil.Normalize(c.Name))
	}
	return g
}

// initialSim seeds σ⁰ for a pair of graph nodes: Levenshtein similarity of
// the nodes' labels when the kinds agree, 0 otherwise.
func initialSim(a, b string) float64 {
	ka, la := splitID(a)
	kb, lb := splitID(b)
	if ka != kb {
		return 0
	}
	return strutil.LevenshteinSim(la, lb)
}

func splitID(id string) (kind, label string) {
	if i := strings.Index(id, ":"); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher. Similarity Flooding's
// schema graphs are built from column names and types only — there is no
// per-column derived data to reuse — so the profiled path exists for
// uniform dispatch (ensembles, the experiment runner) rather than for
// caching.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path. The fixpoint iteration is inherently sequential (each round
// reads the previous round's similarities), so the engine contributes
// cancellation: the flood polls ctx between iterations and a canceled
// context abandons the partial fixpoint and returns ctx.Err().
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	stats := engine.StatsFrom(ctx)
	var pcg *graph.PCG
	sigma0 := make(map[string]float64)
	var genErr error
	stats.Timed(engine.StageGenerate, func() {
		g1 := buildGraph(source)
		g2 := buildGraph(target)
		pcg = graph.BuildPCG(g1, g2)
		for _, id := range pcg.Nodes {
			a, b, err := graph.SplitPair(id)
			if err != nil {
				genErr = err
				return
			}
			sigma0[id] = initialSim(a, b)
		}
	})
	if genErr != nil {
		return nil, genErr
	}
	stats.AddCandidates(int64(len(pcg.Nodes)))

	var result map[string]float64
	stats.Timed(engine.StageScore, func() {
		result = pcg.Flood(sigma0, 0, graph.FloodOptions{
			Formula:       m.Formula,
			MaxIterations: m.MaxIterations,
			Epsilon:       m.Epsilon,
			Interrupt:     func() bool { return ctx.Err() != nil },
		})
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stats.AddScored(int64(len(result)))

	var out []core.Match
	var rankErr error
	stats.Timed(engine.StageRank, func() {
		for id, score := range result {
			a, b, err := graph.SplitPair(id)
			if err != nil {
				rankErr = err
				return
			}
			if !strings.HasPrefix(a, colPrefix) || !strings.HasPrefix(b, colPrefix) {
				continue
			}
			out = append(out, core.Match{
				SourceTable:  source.Name,
				SourceColumn: strings.TrimPrefix(a, colPrefix),
				TargetTable:  target.Name,
				TargetColumn: strings.TrimPrefix(b, colPrefix),
				Score:        score,
			})
		}
		if m.StableMarriage {
			promoteStableMatching(out)
		}
		core.SortMatches(out)
	})
	if rankErr != nil {
		return nil, rankErr
	}
	return out, nil
}

// promoteStableMatching computes the stable matching between source and
// target columns under the flooded similarities (Gale–Shapley with the
// scores as mutual preferences) and rescales selected pairs into the top
// half of the score range: score' = 0.5 + score/2; unselected pairs map to
// score/2. Relative order within each band is preserved.
func promoteStableMatching(ms []core.Match) {
	// Build preference structures.
	bySource := make(map[string][]int)
	scores := make(map[[2]string]float64, len(ms))
	for i, m := range ms {
		bySource[m.SourceColumn] = append(bySource[m.SourceColumn], i)
		scores[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	// Sort each source's candidates by descending score (ms is not yet
	// globally sorted here, so sort per source).
	for _, idxs := range bySource {
		sortIdxByScore(ms, idxs)
	}
	engaged := make(map[string]string) // target → source
	next := make(map[string]int)       // source → next proposal index
	free := make([]string, 0, len(bySource))
	for s := range bySource {
		free = append(free, s)
	}
	sort.Strings(free) // deterministic proposal order
	for len(free) > 0 {
		s := free[0]
		idxs := bySource[s]
		if next[s] >= len(idxs) {
			free = free[1:]
			continue
		}
		t := ms[idxs[next[s]]].TargetColumn
		next[s]++
		cur, taken := engaged[t]
		switch {
		case !taken:
			engaged[t] = s
			free = free[1:]
		case scores[[2]string{s, t}] > scores[[2]string{cur, t}]:
			engaged[t] = s
			free[0] = cur
		}
	}
	selected := make(map[[2]string]bool, len(engaged))
	for t, s := range engaged {
		selected[[2]string{s, t}] = true
	}
	for i := range ms {
		if selected[[2]string{ms[i].SourceColumn, ms[i].TargetColumn}] {
			ms[i].Score = 0.5 + ms[i].Score/2
		} else {
			ms[i].Score /= 2
		}
	}
}

func sortIdxByScore(ms []core.Match, idxs []int) {
	sort.SliceStable(idxs, func(a, b int) bool {
		if ms[idxs[a]].Score != ms[idxs[b]].Score {
			return ms[idxs[a]].Score > ms[idxs[b]].Score
		}
		return ms[idxs[a]].TargetColumn < ms[idxs[b]].TargetColumn
	})
}

package simflood

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

var fuzzNameVocab = []string{
	"customer", "id", "name", "order", "date", "price", "amount",
	"email", "zip", "code", "item", "status", "qty",
}

// fuzzTable builds a table with unique vocabulary-derived column names (the
// bound's seed arithmetic assumes distinct names; duplicates fall back to
// the trivial bound, which needs no fuzzing).
func fuzzTable(rng *rand.Rand, tname string) *table.Table {
	t := table.New(tname)
	cols := 1 + rng.Intn(4)
	rows := 4 + rng.Intn(20)
	used := map[string]bool{}
	for c := 0; c < cols; c++ {
		var name string
		for {
			name = fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
			if rng.Intn(2) == 0 {
				name += "_" + fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
			}
			if !used[name] {
				break
			}
		}
		used[name] = true
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = fmt.Sprintf("v%d", rng.Intn(50))
		}
		t.AddColumn(name, vals)
	}
	return t
}

// TestScoreBoundAdmissible fuzzes the admissibility contract: the bound
// derived from the propagation graph's coefficient structure must dominate
// every fixpoint score the matcher emits, with and without the
// stable-marriage filter.
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		src := fuzzTable(rng, fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]+"s")
		tgt := fuzzTable(rng, fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]+"_export")
		mi, err := New(nil)
		if err != nil {
			t.Fatal(err)
		}
		m := mi.(*Matcher)
		m.StableMarriage = trial%2 == 1
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := m.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound {
				t.Fatalf("trial %d (stable=%v): score %v exceeds bound %v for %s~%s",
					trial, m.StableMarriage, match.Score, bound, match.SourceColumn, match.TargetColumn)
			}
		}
	}
}

// TestScoreBoundNonFormulaC: the derivation covers Formula C only; every
// other propagation formula must fall back to the trivial bound.
func TestScoreBoundNonFormulaC(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src, tgt := fuzzTable(rng, "left"), fuzzTable(rng, "right")
	sp, tp := core.ProfilePair(nil, src, tgt)
	for _, formula := range []string{"BASIC", "A", "B"} {
		mi, err := New(core.Params{"formula": formula})
		if err != nil {
			t.Fatal(err)
		}
		if b := mi.(*Matcher).ScoreBoundProfiles(sp, tp); b != 1 {
			t.Fatalf("formula %s: bound = %v, want the conservative 1", formula, b)
		}
	}
}

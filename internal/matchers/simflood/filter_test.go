package simflood

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
)

func TestStableMarriageSelection(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	plain := newM(t, nil)
	sm := newM(t, core.Params{"selection": "stable-marriage"})

	rp := matchertest.Recall(t, plain, pair)
	rs := matchertest.Recall(t, sm, pair)
	// The filter enforces 1-1 structure, which on a unionable pair (a true
	// 1-1 problem) must not hurt and usually helps.
	if rs < rp {
		t.Errorf("stable marriage reduced recall: %.3f → %.3f", rp, rs)
	}

	// The selected matching occupies the top band and is 1-1.
	ms, err := sm.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	seenSrc := map[string]bool{}
	seenTgt := map[string]bool{}
	for _, m := range ms {
		if m.Score >= 0.5 {
			if seenSrc[m.SourceColumn] || seenTgt[m.TargetColumn] {
				t.Fatalf("top band is not 1-1 at %v", m)
			}
			seenSrc[m.SourceColumn] = true
			seenTgt[m.TargetColumn] = true
		}
	}
	if len(seenSrc) == 0 {
		t.Fatal("no pairs selected")
	}
}

func TestPromoteStableMatchingDirect(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "a", TargetColumn: "x", Score: 0.9},
		{SourceColumn: "a", TargetColumn: "y", Score: 0.8},
		{SourceColumn: "b", TargetColumn: "x", Score: 0.7},
		{SourceColumn: "b", TargetColumn: "y", Score: 0.6},
	}
	promoteStableMatching(ms)
	// stable matching: a→x, b→y
	got := map[[2]string]float64{}
	for _, m := range ms {
		got[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if got[[2]string{"a", "x"}] < 0.5 || got[[2]string{"b", "y"}] < 0.5 {
		t.Fatalf("selected pairs not promoted: %v", got)
	}
	if got[[2]string{"a", "y"}] >= 0.5 || got[[2]string{"b", "x"}] >= 0.5 {
		t.Fatalf("unselected pairs not demoted: %v", got)
	}
}

package embdi

// Cascade score bound. EmbDI trains pair-local embeddings, so there is no
// cheap cap on a trained cosine — but there is one structural fact the
// cached profiles can certify: equal cell values are the ONLY bridges
// between the two tables' subgraphs. When every source column's distinct
// values are disjoint from every target column's, no bridge exists, the
// matcher's graph is disconnected, and its short-circuit (embdi.go) emits
// exactly 0.5 for every pair — so 0.5 is an admissible (in fact tight)
// bound. The cached distinct sets cover all rows while the graph reads at
// most MaxRows, so profile-level disjointness implies graph-level
// disjointness.
//
// Flattened mode tokenizes cells into words the profiles do not cache, and
// any shared value defeats the disjointness certificate; both fall back to
// the conservative bound 1 (scores live in [0, 1]).

import (
	"valentine/internal/profile"
)

// ScoreBoundProfiles implements core.ScoreBounder (see above).
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	if m.Flatten {
		return 1
	}
	// Union the smaller side's distinct values, then probe with the other
	// side's. Distinct sets exclude empty cells, exactly like buildGraph.
	var small, large *profile.TableProfile = sp, tp
	if totalDistinct(tp) < totalDistinct(sp) {
		small, large = tp, sp
	}
	union := make(map[string]struct{}, totalDistinct(small))
	for _, p := range small.Columns() {
		for v := range p.DistinctValues() {
			union[v] = struct{}{}
		}
	}
	for _, p := range large.Columns() {
		for v := range p.DistinctValues() {
			if _, shared := union[v]; shared {
				return 1
			}
		}
	}
	return 0.5
}

func totalDistinct(tp *profile.TableProfile) int {
	n := 0
	for _, p := range tp.Columns() {
		n += p.Distinct()
	}
	return n
}

package embdi

import (
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "embdi" {
		t.Error("name")
	}
}

func TestJoinableVerbatimAcceptable(t *testing.T) {
	// Paper §VII-A4: EmbDI provides acceptable results on joinable
	// scenarios where value overlap bridges the graphs.
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.5)
}

func TestSharedValuesDriveSimilarity(t *testing.T) {
	vals := []string{"red", "green", "blue", "cyan", "olive", "teal", "navy", "plum"}
	nums := []string{"101", "202", "303", "404", "505", "606", "707", "808"}
	src := table.New("a")
	src.AddColumn("color", vals)
	src.AddColumn("code", nums)
	tgt := table.New("b")
	tgt.AddColumn("hue", vals)
	tgt.AddColumn("num", nums)
	ms, err := newM(t, core.Params{"walks_per_node": 20, "epochs": 6}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	score := map[[2]string]float64{}
	for _, m := range ms {
		score[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if score[[2]string{"color", "hue"}] <= score[[2]string{"color", "num"}] {
		t.Errorf("color~hue %.3f should beat color~num %.3f",
			score[[2]string{"color", "hue"}], score[[2]string{"color", "num"}])
	}
	if score[[2]string{"code", "num"}] <= score[[2]string{"code", "hue"}] {
		t.Errorf("code~num %.3f should beat code~hue %.3f",
			score[[2]string{"code", "num"}], score[[2]string{"code", "hue"}])
	}
}

func TestDeterministicForSeed(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	m1, err := newM(t, core.Params{"seed": 5}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := newM(t, core.Params{"seed": 5}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(m2) {
		t.Fatal("different sizes")
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("EmbDI not deterministic for fixed seed")
		}
	}
}

func TestGraphConstruction(t *testing.T) {
	src := table.New("a")
	src.AddColumn("x", []string{"v1", "v2"})
	tgt := table.New("b")
	tgt.AddColumn("y", []string{"v1", "v3"})
	g := buildGraph([]*table.Table{src, tgt}, 0, false)
	if len(g.cids) != 2 {
		t.Fatalf("cids = %v", g.cids)
	}
	if len(g.rids) != 4 {
		t.Fatalf("rids = %v", g.rids)
	}
	// shared value v1 must neighbor nodes from both tables
	nbrs := g.valueNeighbors[valPrefix+"v1"]
	sawT0, sawT1 := false, false
	for _, n := range nbrs {
		switch n {
		case cidNode(0, "x"):
			sawT0 = true
		case cidNode(1, "y"):
			sawT1 = true
		}
	}
	if !sawT0 || !sawT1 {
		t.Fatalf("shared value should bridge both tables: %v", nbrs)
	}
}

func TestWalkRespectsLengthAndStructure(t *testing.T) {
	src := table.New("a")
	src.AddColumn("x", []string{"v1", "v2", "v3"})
	g := buildGraph([]*table.Table{src}, 0, false)
	rng := rand.New(rand.NewSource(1))
	sent := g.walk(cidNode(0, "x"), 9, rng)
	if len(sent) != 9 {
		t.Fatalf("walk length = %d", len(sent))
	}
	// a walk from a cid alternates cid/value/«rid or cid»…; every odd
	// position must be a value node
	for i := 1; i < len(sent); i += 2 {
		if sent[i][:len(valPrefix)] != valPrefix {
			t.Fatalf("position %d should be a value node, got %q", i, sent[i])
		}
	}
}

func TestWalkDeadEnd(t *testing.T) {
	g := &tripartite{
		valueNeighbors: map[string][]string{},
		rowValues:      map[string][]string{},
		colValues:      map[string][]string{},
	}
	rng := rand.New(rand.NewSource(1))
	sent := g.walk(cidPrefix+"0$empty", 10, rng)
	if len(sent) != 1 {
		t.Fatalf("dead-end walk = %v", sent)
	}
}

func TestMaxRowsCapsGraph(t *testing.T) {
	vals := make([]string, 300)
	for i := range vals {
		vals[i] = "v" + itoa(i)
	}
	src := table.New("a")
	src.AddColumn("x", vals)
	g := buildGraph([]*table.Table{src}, 50, false)
	if len(g.rids) != 50 {
		t.Fatalf("rids = %d, want capped 50", len(g.rids))
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestInvariants(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisyInstances: true})
	matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

package embdi

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

// fuzzPair builds a small pair of tables; with sharedVocab false the two
// sides draw values from disjoint vocabularies, so their graphs cannot
// bridge. Tables stay tiny — every bridged trial trains word2vec.
func fuzzPair(rng *rand.Rand, sharedVocab bool) (*table.Table, *table.Table) {
	build := func(name, prefix string) *table.Table {
		t := table.New(name)
		cols := 1 + rng.Intn(2)
		rows := 6 + rng.Intn(10)
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				if rng.Intn(12) == 0 {
					vals[r] = ""
				} else {
					vals[r] = fmt.Sprintf("%s%d", prefix, rng.Intn(12))
				}
			}
			t.AddColumn(fmt.Sprintf("%s_c%d", name, c), vals)
		}
		return t
	}
	tgtPrefix := "a"
	if !sharedVocab {
		tgtPrefix = "b"
	}
	return build("left", "a"), build("right", tgtPrefix)
}

// TestScoreBoundAdmissible fuzzes the admissibility contract: disjoint
// distinct values certify a disconnected graph (bound 0.5, and the matcher
// emits exactly 0.5); any shared value keeps the conservative bound 1.
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		shared := trial%2 == 0
		src, tgt := fuzzPair(rng, shared)
		mi, err := New(core.Params{"max_rows": 50})
		if err != nil {
			t.Fatal(err)
		}
		m := mi.(*Matcher)
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := m.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound {
				t.Fatalf("trial %d (shared=%v): score %v exceeds bound %v",
					trial, shared, match.Score, bound)
			}
		}
		if !shared {
			if bound != 0.5 {
				t.Fatalf("trial %d: disjoint vocabularies should bound at 0.5, got %v", trial, bound)
			}
			for _, match := range matches {
				if match.Score != 0.5 {
					t.Fatalf("trial %d: disconnected pair scored %v, want the neutral 0.5", trial, match.Score)
				}
			}
		}
	}
}

// TestScoreBoundFlattenConservative: flattened mode tokenizes cells into
// words the profiles do not cache, so the bound must stay at 1.
func TestScoreBoundFlattenConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src, tgt := fuzzPair(rng, false)
	mi, err := New(core.Params{"flatten": 1})
	if err != nil {
		t.Fatal(err)
	}
	sp, tp := core.ProfilePair(nil, src, tgt)
	if b := mi.(*Matcher).ScoreBoundProfiles(sp, tp); b != 1 {
		t.Fatalf("flatten bound = %v, want the conservative 1", b)
	}
}

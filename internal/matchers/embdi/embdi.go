// Package embdi reimplements the EmbDI matcher (Cappuzzo, Papotti &
// Thirumuruganathan, SIGMOD 2020): relational embeddings are trained
// locally — no pre-trained vectors — by random walks over a tripartite
// graph of value tokens, row ids and column ids built from both input
// tables; equal cell values bridge the two tables' subgraphs. Columns are
// then matched by the cosine similarity of their column-id embeddings.
//
// Table II's configuration (word2vec, sentence length 60, window 3, 300
// dimensions) is honoured as parameter defaults scaled down for CI speed;
// pass the paper's values through Params to reproduce them exactly.
package embdi

import (
	"context"
	"math/rand"
	"strconv"
	"strings"

	"valentine/internal/core"
	"valentine/internal/embedding"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Matcher is a configured EmbDI instance.
type Matcher struct {
	SentenceLength int   // random-walk length (paper: 60; default 20)
	Window         int   // word2vec window (paper: 3)
	Dimensions     int   // embedding size (paper: 300; default 48)
	WalksPerNode   int   // walks started per graph node (default 8)
	Epochs         int   // word2vec epochs (default 3)
	Seed           int64 // RNG seed (default 1)
	MaxRows        int   // row cap per table for graph construction (default 400)
	// Flatten splits multi-word cell values into one token node per word
	// (EmbDI's "flatten" preprocessing); without it each cell value is one
	// token node.
	Flatten bool
}

// New builds EmbDI from params: "sentence_length", "window", "n_dimensions",
// "walks_per_node", "epochs", "seed", "max_rows", "flatten" (0/1).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		SentenceLength: p.Int("sentence_length", 20),
		Window:         p.Int("window", 3),
		Dimensions:     p.Int("n_dimensions", 48),
		WalksPerNode:   p.Int("walks_per_node", 8),
		Epochs:         p.Int("epochs", 3),
		Seed:           int64(p.Int("seed", 1)),
		MaxRows:        p.Int("max_rows", 400),
		Flatten:        p.Int("flatten", 0) != 0,
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "embdi" }

// tripartite holds the walk graph over both tables.
type tripartite struct {
	// node namespaces: values are raw strings prefixed "tt$"; rows
	// "idx$<t>$<i>"; columns "cid$<t>$<name>".
	valueNeighbors map[string][]string // value token → rid/cid nodes
	rowValues      map[string][]string // rid → value tokens
	colValues      map[string][]string // cid → value tokens
	cids           []string            // all column nodes in insertion order
	rids           []string
	// bridged reports whether any value token touches more than one input
	// table. Without a bridge the tables' subgraphs are disconnected: no
	// walk crosses tables, so cross-table similarities would be untrained
	// noise — the matcher skips training entirely and scores the neutral
	// 0.5 (cosine 0).
	bridged bool
}

const (
	valPrefix = "tt$"
	ridPrefix = "idx$"
	cidPrefix = "cid$"
)

// cidNode keys a column by table position, not table name, so identically
// named input tables cannot collide.
func cidNode(tableIdx int, col string) string {
	return cidPrefix + strconv.Itoa(tableIdx) + "$" + col
}

func buildGraph(tables []*table.Table, maxRows int, flatten bool) *tripartite {
	g := &tripartite{
		valueNeighbors: make(map[string][]string),
		rowValues:      make(map[string][]string),
		colValues:      make(map[string][]string),
	}
	tokenTables := make(map[string]uint32) // value token → bitmask of table indices
	for ti, t := range tables {
		rows := t.NumRows()
		if maxRows > 0 && rows > maxRows {
			rows = maxRows
		}
		tid := strconv.Itoa(ti)
		for ci := range t.Columns {
			c := &t.Columns[ci]
			cid := cidNode(ti, c.Name)
			g.cids = append(g.cids, cid)
			for ri := 0; ri < rows; ri++ {
				v := c.Values[ri]
				if v == "" {
					continue
				}
				rid := ridPrefix + tid + "$" + strconv.Itoa(ri)
				for _, tok := range cellTokens(v, flatten) {
					val := valPrefix + tok
					g.valueNeighbors[val] = append(g.valueNeighbors[val], rid, cid)
					g.rowValues[rid] = append(g.rowValues[rid], val)
					g.colValues[cid] = append(g.colValues[cid], val)
					mask := tokenTables[val] | 1<<uint(ti)
					tokenTables[val] = mask
					if mask&(mask-1) != 0 {
						g.bridged = true
					}
				}
			}
		}
		for ri := 0; ri < rows; ri++ {
			g.rids = append(g.rids, ridPrefix+tid+"$"+strconv.Itoa(ri))
		}
	}
	return g
}

// cellTokens yields one token per cell, or the cell's whitespace-split
// words when flattening (so "Elvis Aaron Presley" still shares the "Elvis"
// and "Presley" tokens with "Elvis Presley").
func cellTokens(v string, flatten bool) []string {
	if !flatten {
		return []string{v}
	}
	fields := strings.Fields(v)
	if len(fields) == 0 {
		return nil
	}
	return fields
}

// walk generates one random-walk sentence starting at node start.
func (g *tripartite) walk(start string, length int, rng *rand.Rand) []string {
	sentence := make([]string, 0, length)
	cur := start
	for len(sentence) < length {
		sentence = append(sentence, cur)
		var next string
		switch {
		case len(cur) >= len(valPrefix) && cur[:len(valPrefix)] == valPrefix:
			nbrs := g.valueNeighbors[cur]
			if len(nbrs) == 0 {
				return sentence
			}
			next = nbrs[rng.Intn(len(nbrs))]
		case len(cur) >= len(ridPrefix) && cur[:len(ridPrefix)] == ridPrefix:
			vals := g.rowValues[cur]
			if len(vals) == 0 {
				return sentence
			}
			next = vals[rng.Intn(len(vals))]
		default: // cid node
			vals := g.colValues[cur]
			if len(vals) == 0 {
				return sentence
			}
			next = vals[rng.Intn(len(vals))]
		}
		cur = next
	}
	return sentence
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher. EmbDI trains pair-local
// embeddings by walking raw cells, so there is no per-column derived data
// to reuse — the profiled path exists for uniform dispatch (ensembles, the
// experiment runner) rather than for caching.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path. Graph construction, the random walks and word2vec training
// consume one sequential RNG stream (parallelizing them would change the
// trained embeddings), so the engine contributes cancellation checks between
// those stages and between walk batches; the final cosine scoring fans out
// on the pool.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	stats := engine.StatsFrom(ctx)
	var model *embedding.Model
	var bridged bool
	var genErr error
	stats.Timed(engine.StageGenerate, func() {
		g := buildGraph([]*table.Table{source, target}, m.MaxRows, m.Flatten)
		bridged = g.bridged
		if !bridged {
			// No value token bridges the tables: their subgraphs are
			// disconnected, no walk can cross, and cross-table cosines
			// would be untrained noise. Skip the walks and training and
			// score every pair at the neutral 0.5 below — the denoised
			// form of "EmbDI has no signal here", and the short-circuit
			// the cascade's disjoint-values bound relies on.
			return
		}
		rng := rand.New(rand.NewSource(m.Seed))

		length := m.SentenceLength
		if length < 4 {
			length = 20
		}
		walks := m.WalksPerNode
		if walks <= 0 {
			walks = 8
		}
		var corpus [][]string
		starts := append(append([]string{}, g.cids...), g.rids...)
		for si, s := range starts {
			if si%64 == 0 {
				if genErr = ctx.Err(); genErr != nil {
					return
				}
			}
			for w := 0; w < walks; w++ {
				sent := g.walk(s, length, rng)
				if len(sent) > 1 {
					corpus = append(corpus, sent)
				}
			}
		}
		if genErr = ctx.Err(); genErr != nil {
			return
		}
		model, genErr = embedding.TrainWord2Vec(corpus, embedding.Word2VecOptions{
			Dim:    m.Dimensions,
			Window: m.Window,
			Epochs: m.Epochs,
			Seed:   m.Seed,
		})
	})
	if genErr != nil {
		return nil, genErr
	}
	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		if !bridged {
			return 0.5, true // disconnected graph: neutral score, no model
		}
		cos := model.Similarity(
			cidNode(0, source.Columns[i].Name),
			cidNode(1, target.Columns[j].Name),
		)
		return (cos + 1) / 2, true // map cosine to [0,1]
	})
}

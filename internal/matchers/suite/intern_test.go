package suite

// Randomized conformance of the interned kernels at suite level: over
// fuzzed corpora, every matcher scored on map-based (dictionary-less)
// profiles and on interned (shared-dictionary) profiles must produce
// bit-identical rankings, and discovery search over an interned catalog
// must return exactly the results of one fed dictionary-less profiles.
// The whole test runs under -race in CI (the race-serving leg), so it also
// exercises concurrent interning through the store's parallel Warm.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"valentine/internal/core"
	"valentine/internal/discovery"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// fuzzTable builds a table whose columns draw from a shared vocabulary, so
// cross-table value overlap — the input the interned kernels accelerate —
// is substantial and randomly shaped.
func fuzzTable(rng *rand.Rand, name string, vocab int) *table.Table {
	t := table.New(name)
	cols := 2 + rng.Intn(3)
	rows := 30 + rng.Intn(90)
	kinds := []string{"id", "name", "city", "code", "amount"}
	for c := 0; c < cols; c++ {
		vals := make([]string, rows)
		for r := range vals {
			switch rng.Intn(12) {
			case 0:
				vals[r] = "" // empty cells
			case 1:
				vals[r] = fmt.Sprintf("%d.%d", rng.Intn(100), rng.Intn(100)) // numerics
			default:
				vals[r] = fmt.Sprintf("%s-%d", kinds[c%len(kinds)], rng.Intn(vocab))
			}
		}
		t.AddColumn(fmt.Sprintf("%s_%d", kinds[c%len(kinds)], c), vals)
	}
	return t
}

// TestInternedKernelsConformance fuzzes table pairs and asserts every
// matcher ranks bit-identically on the map-based and interned paths.
func TestInternedKernelsConformance(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	matchers := allMatchers(t)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		src := fuzzTable(rng, "src", 40+rng.Intn(80))
		tgt := fuzzTable(rng, "tgt", 40+rng.Intn(80))
		store := profile.NewStore()
		store.Warm(src, tgt) // parallel warm: concurrent interning under -race
		for name, m := range matchers {
			plain, err := core.MatchWith(m, profile.New(src), profile.New(tgt))
			if err != nil {
				t.Fatalf("trial %d %s (map path): %v", trial, name, err)
			}
			interned, err := core.MatchWith(m, store.Of(src), store.Of(tgt))
			if err != nil {
				t.Fatalf("trial %d %s (interned path): %v", trial, name, err)
			}
			if len(plain) != len(interned) {
				t.Fatalf("trial %d %s: lengths differ: map %d vs interned %d", trial, name, len(plain), len(interned))
			}
			for i := range plain {
				if plain[i] != interned[i] {
					t.Fatalf("trial %d %s rank %d differs:\n  map      %v\n  interned %v",
						trial, name, i, plain[i], interned[i])
				}
			}
		}
	}
}

// TestDiscoveryTopKConformance fuzzes a corpus and asserts that discovery
// search over the catalog (whose ingest and queries run interned /
// hash-sharing against the catalog dictionary) returns exactly the results
// of a catalog fed dictionary-less profiles — top-k order, scores, best
// correspondences and candidate counts included — in both modes, for both
// the sharded and brute-force paths.
func TestDiscoveryTopKConformance(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		interned := discovery.New(discovery.Options{SealAfter: 3})
		plain := discovery.New(discovery.Options{SealAfter: 3})
		for i := 0; i < 10; i++ {
			tab := fuzzTable(rng, fmt.Sprintf("t%d", i), 60)
			if err := interned.Add(tab); err != nil { // interns into the catalog dict
				t.Fatal(err)
			}
			if err := plain.AddProfiled(profile.New(tab.Clone())); err != nil { // dictionary-less
				t.Fatal(err)
			}
		}
		for q := 0; q < 3; q++ {
			query := fuzzTable(rng, "", 60)
			for _, mode := range []discovery.Mode{discovery.ModeJoin, discovery.ModeUnion} {
				want, err := plain.Search(query, mode, 5)
				if err != nil {
					t.Fatal(err)
				}
				got, err := interned.Search(query, mode, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d query %d mode %s: top-k diverged:\n got %+v\nwant %+v",
						trial, q, mode, got, want)
				}
				gotBrute, err := interned.SearchBruteForce(query, mode, 5)
				if err != nil {
					t.Fatal(err)
				}
				wantBrute, err := plain.SearchBruteForce(query, mode, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotBrute, wantBrute) {
					t.Fatalf("trial %d query %d mode %s: brute top-k diverged", trial, q, mode)
				}
			}
		}
	}
}

package suite

import (
	"context"
	"errors"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/ensemble"
	"valentine/internal/profile"
)

// engineMatchers instantiates every registered method (the paper's eight
// plus the LSH extension — nine matchers) and the ensemble, the full set the
// engine conformance contract covers.
func engineMatchers(t *testing.T) map[string]core.Matcher {
	t.Helper()
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	out := make(map[string]core.Matcher)
	names := append(experiment.MethodNames(), experiment.MethodLSH)
	for _, name := range names {
		var p core.Params
		if g, ok := grids[name]; ok {
			p = g[0]
		}
		m, err := reg.New(name, p)
		if err != nil {
			t.Fatalf("instantiating %s: %v", name, err)
		}
		out[name] = m
	}
	quick := make(map[string]core.Params)
	for m, g := range grids {
		quick[m] = g[0]
	}
	ens, err := ensemble.FromRegistry(reg, quick,
		[]string{experiment.MethodComaSchema, experiment.MethodDistribution, experiment.MethodJaccardLev}, nil)
	if err != nil {
		t.Fatalf("building ensemble: %v", err)
	}
	out["ensemble"] = ens
	return out
}

// TestAllMatchersAreContextAware: every registered method and the ensemble
// must implement core.ContextMatcher — one context-aware scoring path for
// match, discover and experiments.
func TestAllMatchersAreContextAware(t *testing.T) {
	for name, m := range engineMatchers(t) {
		if _, ok := m.(core.ContextMatcher); !ok {
			t.Errorf("%s does not implement core.ContextMatcher", name)
		}
		if _, ok := m.(core.ProfiledContextMatcher); !ok {
			t.Errorf("%s does not implement core.ProfiledContextMatcher", name)
		}
	}
}

// TestEngineConformanceBitIdentical is the suite-wide engine contract: for
// every matcher and the ensemble, routing through the engine at parallelism
// 1 (the sequential pre-refactor path, executed inline), 4 and 16 must
// return rankings bit-identical to plain Match on the same inputs. Run under
// -race this doubles as the engine's data-race probe.
func TestEngineConformanceBitIdentical(t *testing.T) {
	src := datagen.TPCDI(datagen.Options{Rows: 60, Seed: 3})
	pair, err := fabrication.New(9).Joinable(src, 0.5, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	store := profile.NewStore()
	store.Warm(pair.Source, pair.Target)
	for name, m := range engineMatchers(t) {
		t.Run(name, func(t *testing.T) {
			baseline, err := m.Match(pair.Source, pair.Target)
			if err != nil {
				t.Fatal(err)
			}
			cm := m.(core.ContextMatcher)
			for _, par := range []int{1, 4, 16} {
				ctx := engine.WithOptions(context.Background(), engine.Options{Parallelism: par})
				got, err := cm.MatchContext(ctx, store, pair.Source, pair.Target)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if len(got) != len(baseline) {
					t.Fatalf("parallelism %d: %d matches, want %d", par, len(got), len(baseline))
				}
				for i := range baseline {
					if got[i] != baseline[i] {
						t.Fatalf("parallelism %d rank %d differs:\n  engine   %v\n  baseline %v",
							par, i, got[i], baseline[i])
					}
				}
			}
		})
	}
}

// TestEngineDeadlineAbandonsWork: an already-expired context must abort
// every matcher before (or during) scoring with the context's error — no
// partial ranking escapes.
func TestEngineDeadlineAbandonsWork(t *testing.T) {
	src := datagen.TPCDI(datagen.Options{Rows: 40, Seed: 5})
	pair, err := fabrication.New(7).Joinable(src, 0.5, 0.9, false)
	if err != nil {
		t.Fatal(err)
	}
	store := profile.NewStore()
	store.Warm(pair.Source, pair.Target)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, m := range engineMatchers(t) {
		t.Run(name, func(t *testing.T) {
			matches, err := core.MatchWithContext(ctx, m, store, pair.Source, pair.Target)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if len(matches) != 0 {
				t.Fatalf("%d matches escaped an expired deadline", len(matches))
			}
		})
	}
}

// TestEngineStatsFlow: stats attached at the entry point must see the
// pipeline counters of an engine-routed match.
func TestEngineStatsFlow(t *testing.T) {
	src := datagen.TPCDI(datagen.Options{Rows: 30, Seed: 2})
	pair, err := fabrication.New(3).Joinable(src, 0.5, 0.9, false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiment.NewRegistry().New(experiment.MethodJaccardLev, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, stats := engine.WithStats(context.Background())
	if _, err := core.MatchWithContext(ctx, m, nil, pair.Source, pair.Target); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	wantPairs := int64(pair.Source.NumColumns() * pair.Target.NumColumns())
	if snap.Candidates != wantPairs {
		t.Fatalf("candidates = %d, want %d", snap.Candidates, wantPairs)
	}
	if snap.Scored != wantPairs {
		t.Fatalf("scored = %d, want %d", snap.Scored, wantPairs)
	}
	if snap.Score <= 0 {
		t.Fatal("score stage wall time not recorded")
	}
}

// Package suite holds the cross-matcher conformance tests: every
// implemented method is exercised against the same catalogue of edge-case
// and adversarial inputs, so behavioural contracts (ranked output, score
// bounds, determinism, graceful handling of degenerate tables) hold
// uniformly.
package suite

import (
	"strings"
	"testing"

	"valentine/internal/core"
	"valentine/internal/experiment"
	"valentine/internal/metrics"
	"valentine/internal/table"
)

// allMatchers instantiates every registered method with its quick-grid
// configuration.
func allMatchers(t *testing.T) map[string]core.Matcher {
	t.Helper()
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	out := make(map[string]core.Matcher)
	for _, name := range experiment.MethodNames() {
		m, err := reg.New(name, grids[name][0])
		if err != nil {
			t.Fatalf("instantiating %s: %v", name, err)
		}
		out[name] = m
	}
	return out
}

// edgeCase is one degenerate-but-legal table pair.
type edgeCase struct {
	name string
	src  *table.Table
	tgt  *table.Table
}

func edgeCases() []edgeCase {
	rep := func(v string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	single := table.New("single")
	single.AddColumn("only", []string{"a", "b", "c", "d"})

	constant := table.New("constant")
	constant.AddColumn("c1", rep("same", 6))
	constant.AddColumn("c2", rep("other", 6))

	blanks := table.New("blanks")
	blanks.AddColumn("empty1", rep("", 5))
	blanks.AddColumn("empty2", rep("", 5))

	unicodeT := table.New("unicode")
	unicodeT.AddColumn("日本語", []string{"寿司", "天ぷら", "ラーメン"})
	unicodeT.AddColumn("crème", []string{"brûlée", "café", "déjà"})

	long := table.New("long")
	long.AddColumn("text", []string{
		strings.Repeat("lorem ipsum ", 40),
		strings.Repeat("dolor sit ", 40),
		strings.Repeat("amet amet ", 40),
	})
	long.AddColumn("num", []string{"1", "2", "3"})

	tiny := table.New("tiny")
	tiny.AddColumn("a", []string{"x", "y"})
	tiny.AddColumn("b", []string{"1", "2"})

	mixed := table.New("mixed")
	mixed.AddColumn("m1", []string{"1", "abc", "", "2.5", "true"})
	mixed.AddColumn("m2", []string{"", "", "z", "", ""})

	return []edgeCase{
		{"single-column-each", single, tiny},
		{"constant-values", constant, constant.Clone()},
		{"all-blank-cells", blanks, tiny},
		{"unicode-names-and-values", unicodeT, unicodeT.Clone()},
		{"very-long-strings", long, tiny},
		{"two-row-tables", tiny, tiny.Clone()},
		{"mixed-and-sparse", mixed, tiny},
	}
}

// TestAllMatchersSurviveEdgeCases: no method may error or emit malformed
// rankings on degenerate inputs.
func TestAllMatchersSurviveEdgeCases(t *testing.T) {
	for name, m := range allMatchers(t) {
		for _, ec := range edgeCases() {
			t.Run(name+"/"+ec.name, func(t *testing.T) {
				src := ec.src.Clone()
				tgt := ec.tgt.Clone()
				matches, err := m.Match(src, tgt)
				if err != nil {
					t.Fatalf("errored: %v", err)
				}
				wantLen := src.NumColumns() * tgt.NumColumns()
				if len(matches) > wantLen {
					t.Fatalf("emitted %d matches for %d column pairs", len(matches), wantLen)
				}
				for i, match := range matches {
					if match.Score < -1e-9 || match.Score > 1+1e-9 {
						t.Errorf("score %v out of [0,1]", match.Score)
					}
					if i > 0 && matches[i-1].Score < match.Score {
						t.Errorf("ranking not sorted at %d", i)
					}
					if src.Column(match.SourceColumn) == nil {
						t.Errorf("unknown source column %q", match.SourceColumn)
					}
					if tgt.Column(match.TargetColumn) == nil {
						t.Errorf("unknown target column %q", match.TargetColumn)
					}
				}
			})
		}
	}
}

// TestAllMatchersDeterministic: rankings must be identical across repeat
// runs on the same inputs.
func TestAllMatchersDeterministic(t *testing.T) {
	src := table.New("s")
	src.AddColumn("name", []string{"ann", "bob", "cat", "dan"})
	src.AddColumn("age", []string{"21", "34", "55", "19"})
	src.AddColumn("city", []string{"delft", "lyon", "oslo", "rome"})
	tgt := table.New("t")
	tgt.AddColumn("person", []string{"ann", "eve", "cat", "ned"})
	tgt.AddColumn("years", []string{"21", "40", "55", "60"})
	tgt.AddColumn("town", []string{"delft", "bern", "oslo", "kiev"})

	for name, m := range allMatchers(t) {
		t.Run(name, func(t *testing.T) {
			r1, err := m.Match(src, tgt)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := m.Match(src, tgt)
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(r2) {
				t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("rank %d differs: %v vs %v", i, r1[i], r2[i])
				}
			}
		})
	}
}

// TestAllMatchersDoNotMutateInput: matchers must treat their inputs as
// read-only.
func TestAllMatchersDoNotMutateInput(t *testing.T) {
	mkSrc := func() *table.Table {
		s := table.New("s")
		s.AddColumn("alpha", []string{"one", "two", "three"})
		s.AddColumn("beta", []string{"1", "2", "3"})
		return s
	}
	for name, m := range allMatchers(t) {
		t.Run(name, func(t *testing.T) {
			src, tgt := mkSrc(), mkSrc()
			tgt.Name = "t"
			wantSrc, wantTgt := src.Clone(), tgt.Clone()
			if _, err := m.Match(src, tgt); err != nil {
				t.Fatal(err)
			}
			for i := range wantSrc.Columns {
				if src.Columns[i].Name != wantSrc.Columns[i].Name {
					t.Fatal("source column renamed")
				}
				for j := range wantSrc.Columns[i].Values {
					if src.Columns[i].Values[j] != wantSrc.Columns[i].Values[j] {
						t.Fatal("source values mutated")
					}
					if tgt.Columns[i].Values[j] != wantTgt.Columns[i].Values[j] {
						t.Fatal("target values mutated")
					}
				}
			}
		})
	}
}

// TestIdentityPairRanksSelfMatchesFirst: matching a table against a copy of
// itself, every method must place the |columns| self-correspondences at the
// top (recall@GT = 1 except for methods whose signal cannot separate the
// columns, which must still stay ≥ 0.5 here since the fixture's columns are
// strongly distinct in names, types and values).
func TestIdentityPairRanksSelfMatchesFirst(t *testing.T) {
	src := table.New("left")
	src.AddColumn("customer_name", []string{"ann meyer", "bob smith", "cat jones", "dan brown", "eva adams", "finn beck"})
	src.AddColumn("account_balance", []string{"10.25", "999.50", "123.75", "4.05", "77.10", "350.00"})
	src.AddColumn("signup_date", []string{"2019-01-02", "2020-03-04", "2018-05-06", "2021-07-08", "2017-09-10", "2022-11-12"})
	tgt := src.Clone()
	tgt.Name = "right"

	gt := core.NewGroundTruth()
	for _, c := range src.ColumnNames() {
		gt.Add(c, c)
	}
	for name, m := range allMatchers(t) {
		t.Run(name, func(t *testing.T) {
			matches, err := m.Match(src, tgt)
			if err != nil {
				t.Fatal(err)
			}
			r, err := metrics.RecallAtGroundTruth(matches, gt)
			if err != nil {
				t.Fatal(err)
			}
			min := 1.0
			if name == experiment.MethodEmbDI {
				min = 0.5 // stochastic training on a 6-row table
			}
			if r < min {
				t.Errorf("identity recall = %.3f, want ≥ %.2f", r, min)
			}
		})
	}
}

package suite

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/profile"
)

// TestAllMatchersAreProfiled: every registered method (including the LSH
// extension) must implement the core.ProfiledMatcher extension interface,
// so ensembles, the experiment runner and discover can dispatch every
// method through one shared profile store.
func TestAllMatchersAreProfiled(t *testing.T) {
	reg := experiment.NewRegistry()
	grids := experiment.QuickGrids()
	names := append(experiment.MethodNames(), experiment.MethodLSH)
	for _, name := range names {
		var p core.Params
		if g, ok := grids[name]; ok {
			p = g[0]
		}
		m, err := reg.New(name, p)
		if err != nil {
			t.Fatalf("instantiating %s: %v", name, err)
		}
		if _, ok := m.(core.ProfiledMatcher); !ok {
			t.Errorf("%s does not implement core.ProfiledMatcher", name)
		}
	}
}

// TestProfiledPathBitIdentical: for every method, MatchProfiles over a
// shared, pre-warmed profile store must return exactly the ranking Match
// returns on the raw tables — the profile layer deduplicates work, it must
// never change a score. The fixture exercises real instance data (value
// overlap, statistics, signatures), not just names.
func TestProfiledPathBitIdentical(t *testing.T) {
	src := datagen.TPCDI(datagen.Options{Rows: 60, Seed: 3})
	pair, err := fabrication.New(9).Joinable(src, 0.5, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	store := profile.NewStore()
	store.Warm(pair.Source, pair.Target)
	for name, m := range allMatchers(t) {
		t.Run(name, func(t *testing.T) {
			plain, err := m.Match(pair.Source, pair.Target)
			if err != nil {
				t.Fatal(err)
			}
			profiled, err := core.MatchWith(m, store.Of(pair.Source), store.Of(pair.Target))
			if err != nil {
				t.Fatal(err)
			}
			if len(plain) != len(profiled) {
				t.Fatalf("lengths differ: plain %d vs profiled %d", len(plain), len(profiled))
			}
			for i := range plain {
				if plain[i] != profiled[i] {
					t.Fatalf("rank %d differs:\n  plain    %v\n  profiled %v", i, plain[i], profiled[i])
				}
			}
		})
	}
}

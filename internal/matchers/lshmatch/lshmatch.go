// Package lshmatch implements an approximate value-overlap matcher using
// MinHash LSH banding — the scaling direction the paper's lessons learned
// point to (§IX "Schema Matching is resource-expensive", citing JOSIE, LSH
// Ensemble and Lazo). Columns whose signatures collide in at least one LSH
// band become candidates and are scored by their estimated Jaccard
// similarity; all other pairs are skipped entirely, which is where the
// speedup over exact set intersection comes from.
package lshmatch

import (
	"hash/fnv"

	"valentine/internal/core"
	"valentine/internal/table"
)

// Matcher is a configured LSH matcher.
type Matcher struct {
	// Signature is the MinHash signature length (default 128).
	Signature int
	// Bands is the number of LSH bands; Signature must divide evenly into
	// them (default 32 → rows-per-band 4, targeting Jaccard ≈ 0.3+).
	Bands int
	// IncludeMisses, when true, emits non-candidate pairs with score 0 so
	// the output still covers every pair (the ranked-list contract used by
	// the experiment suite). Default true.
	IncludeMisses bool
}

// New builds the matcher from params: "signature" (default 128), "bands"
// (default 32), "include_misses" (default 1).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Signature:     p.Int("signature", 128),
		Bands:         p.Int("bands", 32),
		IncludeMisses: p.Int("include_misses", 1) != 0,
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "lsh-value-overlap" }

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	if err := source.Validate(); err != nil {
		return nil, err
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	k := m.Signature
	if k <= 0 {
		k = 128
	}
	bands := m.Bands
	if bands <= 0 || bands > k {
		bands = 32
	}
	rows := k / bands
	if rows == 0 {
		rows = 1
	}

	srcSigs := signatures(source, k)
	tgtSigs := signatures(target, k)

	// Index target columns by band-bucket.
	type bucket struct {
		band int
		key  uint64
	}
	index := make(map[bucket][]int)
	for j, sig := range tgtSigs {
		for b := 0; b < bands; b++ {
			index[bucket{b, bandKey(sig, b, rows)}] = append(index[bucket{b, bandKey(sig, b, rows)}], j)
		}
	}

	// Probe with source columns.
	candidates := make(map[[2]int]struct{})
	for i, sig := range srcSigs {
		for b := 0; b < bands; b++ {
			for _, j := range index[bucket{b, bandKey(sig, b, rows)}] {
				candidates[[2]int{i, j}] = struct{}{}
			}
		}
	}

	var out []core.Match
	emitted := make(map[[2]int]bool, len(candidates))
	for c := range candidates {
		i, j := c[0], c[1]
		emitted[c] = true
		out = append(out, core.Match{
			SourceTable:  source.Name,
			SourceColumn: source.Columns[i].Name,
			TargetTable:  target.Name,
			TargetColumn: target.Columns[j].Name,
			Score:        estimateJaccard(srcSigs[i], tgtSigs[j]),
		})
	}
	if m.IncludeMisses {
		for i := range source.Columns {
			for j := range target.Columns {
				if emitted[[2]int{i, j}] {
					continue
				}
				out = append(out, core.Match{
					SourceTable:  source.Name,
					SourceColumn: source.Columns[i].Name,
					TargetTable:  target.Name,
					TargetColumn: target.Columns[j].Name,
					Score:        0,
				})
			}
		}
	}
	core.SortMatches(out)
	return out, nil
}

// signatures computes MinHash signatures for every column of t.
func signatures(t *table.Table, k int) [][]uint64 {
	out := make([][]uint64, len(t.Columns))
	for i := range t.Columns {
		sig := make([]uint64, k)
		for s := range sig {
			sig[s] = ^uint64(0)
		}
		for v := range t.Columns[i].DistinctValues() {
			h := fnv.New64a()
			h.Write([]byte(v))
			base := h.Sum64()
			for s := 0; s < k; s++ {
				hv := mix(base, uint64(s))
				if hv < sig[s] {
					sig[s] = hv
				}
			}
		}
		out[i] = sig
	}
	return out
}

// bandKey hashes one band of a signature into a bucket key.
func bandKey(sig []uint64, band, rows int) uint64 {
	h := uint64(band) + 0x9e3779b97f4a7c15
	for _, v := range sig[band*rows : (band+1)*rows] {
		h ^= v
		h *= 0x100000001b3
	}
	return h
}

// estimateJaccard is the fraction of agreeing signature slots; empty-column
// sentinel slots never count as agreement.
func estimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != ^uint64(0) {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

func mix(x, salt uint64) uint64 {
	x ^= salt * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Package lshmatch implements an approximate value-overlap matcher using
// MinHash LSH banding — the scaling direction the paper's lessons learned
// point to (§IX "Schema Matching is resource-expensive", citing JOSIE, LSH
// Ensemble and Lazo). Columns whose signatures collide in at least one LSH
// band become candidates and are scored by their estimated Jaccard
// similarity; all other pairs are skipped entirely, which is where the
// speedup over exact set intersection comes from.
//
// The MinHash/banding primitives live in internal/profile — the shared lazy
// column-profile layer — and are re-exported here; the corpus-level index in
// internal/discovery consumes the same implementation, so pairwise matching
// and indexed search score identically.
package lshmatch

import (
	"context"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Matcher is a configured LSH matcher.
type Matcher struct {
	// Signature is the MinHash signature length (default 128).
	Signature int
	// Bands is the number of LSH bands; Signature must divide evenly into
	// them (default 32 → rows-per-band 4, targeting Jaccard ≈ 0.3+).
	Bands int
	// IncludeMisses, when true, emits non-candidate pairs with score 0 so
	// the output still covers every pair (the ranked-list contract used by
	// the experiment suite). Default true.
	IncludeMisses bool
}

// New builds the matcher from params: "signature" (default 128), "bands"
// (default 32), "include_misses" (default 1).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Signature:     p.Int("signature", DefaultSignature),
		Bands:         p.Int("bands", DefaultBands),
		IncludeMisses: p.Int("include_misses", 1) != 0,
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "lsh-value-overlap" }

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: signatures come from the
// profiles' per-column caches instead of being recomputed per call.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: band probing generates the candidate set (the prune that
// makes LSH fast), then candidate estimation fans out on the engine pool.
// The ranking is identical to the pre-engine sequential path: candidate
// pairs score their estimated Jaccard, misses score 0, and the final sort's
// name tiebreak is a total order.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	k, bands, rows := Geometry(m.Signature, m.Bands)
	stats := engine.StatsFrom(ctx)

	var srcSigs, tgtSigs [][]uint64
	candidates := make(map[[2]int]struct{})
	stats.Timed(engine.StageGenerate, func() {
		srcSigs = signaturesOf(sp, k)
		tgtSigs = signaturesOf(tp, k)

		// Index target columns by band-bucket, then probe with source
		// columns: colliding pairs become candidates.
		type bucket struct {
			band int
			key  uint64
		}
		index := make(map[bucket][]int)
		for j, sig := range tgtSigs {
			for b := 0; b < bands; b++ {
				index[bucket{b, BandKey(sig, b, rows)}] = append(index[bucket{b, BandKey(sig, b, rows)}], j)
			}
		}
		for i, sig := range srcSigs {
			for b := 0; b < bands; b++ {
				for _, j := range index[bucket{b, BandKey(sig, b, rows)}] {
					candidates[[2]int{i, j}] = struct{}{}
				}
			}
		}
	})
	// ScorePairs counts the full cross product as candidates; the pairs the
	// banding did not nominate are the pruned share (they are emitted with
	// score 0 when IncludeMisses is set, but never estimated).
	missed := int64(len(srcSigs))*int64(len(tgtSigs)) - int64(len(candidates))
	out, err := engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		if _, ok := candidates[[2]int{i, j}]; ok {
			return EstimateJaccard(srcSigs[i], tgtSigs[j]), true
		}
		return 0, m.IncludeMisses
	})
	if err != nil {
		return nil, err
	}
	// Rebalance the pipeline counters: misses emitted for ranked-list
	// coverage were pruned by the bands, not scored.
	if m.IncludeMisses {
		stats.AddScored(-missed)
		stats.AddPruned(missed)
	}
	return out, nil
}

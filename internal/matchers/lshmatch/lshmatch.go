// Package lshmatch implements an approximate value-overlap matcher using
// MinHash LSH banding — the scaling direction the paper's lessons learned
// point to (§IX "Schema Matching is resource-expensive", citing JOSIE, LSH
// Ensemble and Lazo). Columns whose signatures collide in at least one LSH
// band become candidates and are scored by their estimated Jaccard
// similarity; all other pairs are skipped entirely, which is where the
// speedup over exact set intersection comes from.
//
// The MinHash/banding primitives live in internal/profile — the shared lazy
// column-profile layer — and are re-exported here; the corpus-level index in
// internal/discovery consumes the same implementation, so pairwise matching
// and indexed search score identically.
package lshmatch

import (
	"valentine/internal/core"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Matcher is a configured LSH matcher.
type Matcher struct {
	// Signature is the MinHash signature length (default 128).
	Signature int
	// Bands is the number of LSH bands; Signature must divide evenly into
	// them (default 32 → rows-per-band 4, targeting Jaccard ≈ 0.3+).
	Bands int
	// IncludeMisses, when true, emits non-candidate pairs with score 0 so
	// the output still covers every pair (the ranked-list contract used by
	// the experiment suite). Default true.
	IncludeMisses bool
}

// New builds the matcher from params: "signature" (default 128), "bands"
// (default 32), "include_misses" (default 1).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Signature:     p.Int("signature", DefaultSignature),
		Bands:         p.Int("bands", DefaultBands),
		IncludeMisses: p.Int("include_misses", 1) != 0,
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "lsh-value-overlap" }

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	return m.MatchProfiles(profile.New(source), profile.New(target))
}

// MatchProfiles implements core.ProfiledMatcher: signatures come from the
// profiles' per-column caches instead of being recomputed per call.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	k, bands, rows := Geometry(m.Signature, m.Bands)

	srcSigs := signaturesOf(sp, k)
	tgtSigs := signaturesOf(tp, k)

	// Index target columns by band-bucket.
	type bucket struct {
		band int
		key  uint64
	}
	index := make(map[bucket][]int)
	for j, sig := range tgtSigs {
		for b := 0; b < bands; b++ {
			index[bucket{b, BandKey(sig, b, rows)}] = append(index[bucket{b, BandKey(sig, b, rows)}], j)
		}
	}

	// Probe with source columns.
	candidates := make(map[[2]int]struct{})
	for i, sig := range srcSigs {
		for b := 0; b < bands; b++ {
			for _, j := range index[bucket{b, BandKey(sig, b, rows)}] {
				candidates[[2]int{i, j}] = struct{}{}
			}
		}
	}

	var out []core.Match
	emitted := make(map[[2]int]bool, len(candidates))
	for c := range candidates {
		i, j := c[0], c[1]
		emitted[c] = true
		out = append(out, core.Match{
			SourceTable:  source.Name,
			SourceColumn: source.Columns[i].Name,
			TargetTable:  target.Name,
			TargetColumn: target.Columns[j].Name,
			Score:        EstimateJaccard(srcSigs[i], tgtSigs[j]),
		})
	}
	if m.IncludeMisses {
		for i := range source.Columns {
			for j := range target.Columns {
				if emitted[[2]int{i, j}] {
					continue
				}
				out = append(out, core.Match{
					SourceTable:  source.Name,
					SourceColumn: source.Columns[i].Name,
					TargetTable:  target.Name,
					TargetColumn: target.Columns[j].Name,
					Score:        0,
				})
			}
		}
	}
	core.SortMatches(out)
	return out, nil
}

package lshmatch

// The MinHash signature and LSH banding primitives moved to
// internal/profile — the shared lazy column-profile layer — so the
// per-column Profile, this pairwise matcher, and the corpus-level discovery
// index (internal/discovery) all compute signatures through one
// implementation. Only the names this package still consumes are aliased
// below; everything else lives solely in internal/profile.

import (
	"valentine/internal/profile"
)

// EmptySlot is the sentinel value of a signature slot that never saw a
// value (empty column). Two empty slots never count as agreement.
const EmptySlot = profile.EmptySlot

// DefaultSignature and DefaultBands are the suite-wide LSH defaults:
// 128-slot signatures in 32 bands of 4 rows, targeting Jaccard ≈ 0.3+.
const (
	DefaultSignature = profile.DefaultSignature
	DefaultBands     = profile.DefaultBands
)

// signaturesOf collects the cached per-column signatures of a profiled
// table.
func signaturesOf(tp *profile.TableProfile, k int) [][]uint64 {
	out := make([][]uint64, tp.NumColumns())
	for i := range out {
		out[i] = tp.Column(i).Signature(k)
	}
	return out
}

// BandKey hashes one band of a signature into a bucket key.
func BandKey(sig []uint64, band, rows int) uint64 {
	return profile.BandKey(sig, band, rows)
}

// EstimateJaccard estimates the Jaccard similarity of the two underlying
// value sets as the fraction of agreeing signature slots.
func EstimateJaccard(a, b []uint64) float64 { return profile.EstimateJaccard(a, b) }

// Geometry normalizes a (signature, bands) request to a valid LSH geometry.
func Geometry(signature, bands int) (k, b, rows int) {
	return profile.Geometry(signature, bands)
}

package lshmatch

// MinHash signature and LSH banding primitives. They are exported so the
// corpus-level discovery index (internal/discovery) and the pairwise LSH
// matcher share one implementation: a signature computed at indexing time is
// bit-for-bit identical to one computed by the matcher, so estimated Jaccard
// scores agree across both code paths.

import (
	"hash/fnv"

	"valentine/internal/table"
)

// EmptySlot is the sentinel value of a signature slot that never saw a
// value (empty column). Two empty slots never count as agreement.
const EmptySlot = ^uint64(0)

// DefaultSignature and DefaultBands are the suite-wide LSH defaults:
// 128-slot signatures in 32 bands of 4 rows, targeting Jaccard ≈ 0.3+.
const (
	DefaultSignature = 128
	DefaultBands     = 32
)

// ColumnSignature computes the k-slot MinHash signature of one column over
// its distinct non-empty values.
func ColumnSignature(c *table.Column, k int) []uint64 {
	return SignatureOf(c.DistinctValues(), k)
}

// SignatureOf computes the k-slot MinHash signature of a value set. Callers
// that already hold the distinct set avoid recomputing it.
func SignatureOf(values map[string]struct{}, k int) []uint64 {
	sig := make([]uint64, k)
	for s := range sig {
		sig[s] = EmptySlot
	}
	for v := range values {
		h := fnv.New64a()
		h.Write([]byte(v))
		base := h.Sum64()
		for s := 0; s < k; s++ {
			hv := mix(base, uint64(s))
			if hv < sig[s] {
				sig[s] = hv
			}
		}
	}
	return sig
}

// IsEmptySignature reports whether sig is the signature of a column with no
// non-empty values (every slot still the EmptySlot sentinel). Such
// signatures collide with each other in every band while never producing a
// positive Jaccard estimate, so indexes skip banding them.
func IsEmptySignature(sig []uint64) bool {
	for _, v := range sig {
		if v != EmptySlot {
			return false
		}
	}
	return true
}

// Signatures computes MinHash signatures for every column of t.
func Signatures(t *table.Table, k int) [][]uint64 {
	out := make([][]uint64, len(t.Columns))
	for i := range t.Columns {
		out[i] = ColumnSignature(&t.Columns[i], k)
	}
	return out
}

// BandKey hashes one band of a signature into a bucket key. Signatures
// hashed with the same (band, rows) geometry land in the same bucket iff
// the band's slots agree exactly.
func BandKey(sig []uint64, band, rows int) uint64 {
	h := uint64(band) + 0x9e3779b97f4a7c15
	for _, v := range sig[band*rows : (band+1)*rows] {
		h ^= v
		h *= 0x100000001b3
	}
	return h
}

// EstimateJaccard estimates the Jaccard similarity of the two underlying
// value sets as the fraction of agreeing signature slots; empty-column
// sentinel slots never count as agreement.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != EmptySlot {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// Geometry normalizes a (signature, bands) request to a valid LSH geometry:
// defaults applied, bands clamped to the signature length, and rows-per-band
// derived. Slots beyond bands×rows contribute to Jaccard estimation but not
// to banding.
func Geometry(signature, bands int) (k, b, rows int) {
	k = signature
	if k <= 0 {
		k = DefaultSignature
	}
	b = bands
	if b <= 0 || b > k {
		b = DefaultBands
		if b > k {
			b = k
		}
	}
	rows = k / b
	if rows == 0 {
		rows = 1
	}
	return k, b, rows
}

func mix(x, salt uint64) uint64 {
	x ^= salt * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

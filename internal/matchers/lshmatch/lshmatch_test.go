package lshmatch

import (
	"strconv"
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/jaccardlev"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "lsh-value-overlap" {
		t.Error("name")
	}
}

func TestJoinableVerbatimHigh(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.99)
}

func TestApproximatesExactJaccard(t *testing.T) {
	// On a unionable pair with 50% row overlap, LSH's ranking should agree
	// with the exact Jaccard baseline at the top.
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	exact, err := jaccardlev.New(core.Params{"threshold": 1.0})
	if err != nil {
		t.Fatal(err)
	}
	re := matchertest.Recall(t, exact, pair)
	rl := matchertest.Recall(t, newM(t, nil), pair)
	if rl < re-0.25 {
		t.Errorf("LSH recall %.3f far below exact %.3f", rl, re)
	}
}

func TestCandidatePruning(t *testing.T) {
	// Disjoint value universes: with include_misses off, almost nothing
	// should be emitted.
	src := table.New("a")
	src.AddColumn("x", manyValues("left", 200))
	tgt := table.New("b")
	tgt.AddColumn("y", manyValues("right", 200))
	ms, err := newM(t, core.Params{"include_misses": 0}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Score > 0.2 {
			t.Errorf("disjoint columns scored %v", m.Score)
		}
	}
	// Shared values: candidate must surface.
	tgt2 := table.New("c")
	tgt2.AddColumn("x2", manyValues("left", 200))
	ms2, err := newM(t, core.Params{"include_misses": 0}).Match(src, tgt2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != 1 || ms2[0].Score < 0.9 {
		t.Fatalf("identical columns should collide with high score: %v", ms2)
	}
}

func TestIncludeMissesCoversAllPairs(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioViewUnionable, fabrication.Variant{})
	ms, err := newM(t, nil).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	want := pair.Source.NumColumns() * pair.Target.NumColumns()
	if len(ms) != want {
		t.Fatalf("matches = %d, want %d", len(ms), want)
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
	}
}

func TestEstimateJaccard(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	if got := EstimateJaccard(a, a); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := EstimateJaccard(a, []uint64{1, 2, 9, 9}); got != 0.5 {
		t.Errorf("half = %v", got)
	}
	if got := EstimateJaccard(a, []uint64{1}); got != 0 {
		t.Errorf("mismatch = %v", got)
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

func manyValues(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + "_" + strconv.Itoa(i)
	}
	return out
}

package lshmatch

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// TestScoreBoundZeroImpliesZeroScores: the only non-trivial lsh bound is 0,
// claimed when interned profiles share a dictionary and no column pair has
// any exact value overlap. Every full score must then be 0 too.
func TestScoreBoundZeroImpliesZeroScores(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	lm := m.(*Matcher)
	dict := intern.NewDict()
	for trial := 0; trial < 30; trial++ {
		src := randomTable(rng, "left", "a", 2, 40)
		var tgt *table.Table
		if trial%2 == 0 {
			tgt = randomTable(rng, "right", "a", 2, 40) // shared vocabulary
		} else {
			tgt = randomTable(rng, "right", "b", 2, 40) // disjoint vocabulary
		}
		sp := profile.NewInterned(src, dict)
		tp := profile.NewInterned(tgt, dict)
		bound := lm.ScoreBoundProfiles(sp, tp)
		if bound != 0 {
			continue
		}
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score != 0 {
				t.Fatalf("trial %d: bound 0 but score %v for %s~%s",
					trial, match.Score, match.SourceColumn, match.TargetColumn)
			}
		}
	}
}

// TestScoreBoundDisjointVocabulary: fully disjoint interned tables must
// bound to exactly 0 — that is the pruning signal the discover cascade
// relies on for junk candidates.
func TestScoreBoundDisjointVocabulary(t *testing.T) {
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	dict := intern.NewDict()
	rng := rand.New(rand.NewSource(3))
	sp := profile.NewInterned(randomTable(rng, "left", "x", 3, 50), dict)
	tp := profile.NewInterned(randomTable(rng, "right", "y", 3, 50), dict)
	if bound := m.(*Matcher).ScoreBoundProfiles(sp, tp); bound != 0 {
		t.Fatalf("disjoint bound = %v, want 0", bound)
	}
	// Without a shared dictionary the overlap kernels cannot run; the bound
	// must fall back to the conservative 1.
	other := profile.NewInterned(randomTable(rng, "right", "y", 3, 50), intern.NewDict())
	if bound := m.(*Matcher).ScoreBoundProfiles(sp, other); bound != 1 {
		t.Fatalf("cross-dictionary bound = %v, want 1", bound)
	}
}

func randomTable(rng *rand.Rand, name, prefix string, cols, rows int) *table.Table {
	t := table.New(name)
	for c := 0; c < cols; c++ {
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = fmt.Sprintf("%s-%d", prefix, rng.Intn(60))
		}
		t.AddColumn(fmt.Sprintf("c%d", c), vals)
	}
	return t
}

package lshmatch

import (
	"valentine/internal/intern"
	"valentine/internal/profile"
)

// MatchCostHint implements core.Coster: LSH banding skips exact set
// intersection entirely, making this the cheapest instance matcher by a
// wide margin (relative microseconds, same scale as the BENCH_6 hints).
func (m *Matcher) MatchCostHint() float64 { return 500 }

// ScoreBoundProfiles implements core.ScoreBounder. When both tables
// intern into one value dictionary, a pair of columns with zero true value
// overlap cannot estimate a positive Jaccard — two disjoint sets would
// need a 64-bit hash collision to agree on a signature slot (the same
// argument discovery's value-evidence prescreen relies on), and empty
// columns never count slot agreement at all. So if no cross pair
// intersects, every emitted score is 0 and the bound is 0; otherwise (or
// without a shared dictionary) the conservative bound is 1.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	if sp.InterningDict() == nil || sp.InterningDict() != tp.InterningDict() {
		return 1
	}
	for _, sc := range sp.Columns() {
		sset := sc.InternedDistinct()
		if sset == nil {
			return 1
		}
		for _, tc := range tp.Columns() {
			tset := tc.InternedDistinct()
			if tset == nil {
				return 1
			}
			if intern.IntersectCount(sset, tset) > 0 {
				return 1
			}
		}
	}
	return 0
}

// Package ensemble implements the composition strategy the paper's
// "lessons learned" recommends (§IX, "One size does not fit all"):
// combining several matching methods — including the embeddings-based ones
// — into a single ranked output, the way COMA composes its internal matcher
// library but across whole methods.
//
// Two fusion strategies are provided:
//
//   - score fusion: the weighted mean of each member's (normalized) score
//     per column pair;
//   - reciprocal-rank fusion (RRF): Σ 1/(k + rankᵢ), robust to member
//     score-scale differences.
package ensemble

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Fusion selects the combination rule.
type Fusion string

// Supported fusion rules.
const (
	FusionScore Fusion = "score"
	FusionRRF   Fusion = "rrf"
)

// Member is one weighted ensemble component.
type Member struct {
	Matcher core.Matcher
	Weight  float64 // score-fusion weight; defaults to 1 when ≤ 0
}

// Matcher combines the ranked outputs of several member matchers.
type Matcher struct {
	Members []Member
	Fusion  Fusion
	// RRFK is the reciprocal-rank-fusion constant (default 60, the
	// standard setting from the IR literature).
	RRFK float64
}

// New builds an ensemble over instantiated members. Params: "fusion"
// ("score"|"rrf", default "score"), "rrf_k" (default 60).
func New(members []Member, p core.Params) (*Matcher, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ensemble: no members")
	}
	for i, m := range members {
		if m.Matcher == nil {
			return nil, fmt.Errorf("ensemble: member %d has nil matcher", i)
		}
	}
	f := Fusion(p.String("fusion", string(FusionScore)))
	if f != FusionScore && f != FusionRRF {
		return nil, fmt.Errorf("ensemble: unknown fusion %q", f)
	}
	return &Matcher{Members: members, Fusion: f, RRFK: p.Float("rrf_k", 60)}, nil
}

// FromRegistry builds an ensemble of registered methods with their quick
// parameters, equal weights.
func FromRegistry(reg *core.Registry, grids map[string]core.Params, methods []string, p core.Params) (*Matcher, error) {
	var members []Member
	for _, name := range methods {
		m, err := reg.New(name, grids[name])
		if err != nil {
			return nil, fmt.Errorf("ensemble: building member %s: %w", name, err)
		}
		members = append(members, Member{Matcher: m, Weight: 1})
	}
	return New(members, p)
}

// Name implements core.Matcher.
func (e *Matcher) Name() string {
	names := make([]string, len(e.Members))
	for i, m := range e.Members {
		names[i] = m.Matcher.Name()
	}
	return "ensemble(" + strings.Join(names, "+") + ")"
}

// Match implements core.Matcher: every member ranks the pair; rankings are
// fused into a single ranked list covering every cross-table column pair.
// The pair is profiled once and shared across all members, so derived
// column data (distinct sets, tokens, signatures, statistics) is computed
// once instead of once per member.
func (e *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return e.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: members that are
// profile-aware consume the shared profiles directly; the rest fall back to
// their plain Match path.
func (e *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return e.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (e *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return e.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: members run concurrently on the engine pool (each member's
// own scoring additionally fans out under the same options), and their
// rankings are fused sequentially in member order, so the fused scores are
// bit-identical to the old one-member-at-a-time loop at any parallelism.
func (e *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()

	memberMatches := make([][]core.Match, len(e.Members))
	err := engine.Map(ctx, engine.OptionsFrom(ctx).Workers(), len(e.Members), func(i int) error {
		matches, err := core.MatchProfilesWithContext(ctx, e.Members[i].Matcher, sp, tp)
		if err != nil {
			return fmt.Errorf("ensemble member %s: %w", e.Members[i].Matcher.Name(), err)
		}
		memberMatches[i] = matches
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.fuse(memberMatches, nil, source, target), nil
}

// fuse combines member rankings into the final ranked list. present
// selects which members participate (nil: all) — the budgeted cascade
// fuses only the members that completed. Members are always folded in
// their original declaration order, so the floating-point sums (and hence
// the fused scores) are bit-identical however the members were scheduled.
func (e *Matcher) fuse(memberMatches [][]core.Match, present []bool, source, target *table.Table) []core.Match {
	type key struct{ s, t string }
	fused := make(map[key]float64)
	totalWeight := 0.0
	for mi, member := range e.Members {
		if present != nil && !present[mi] {
			continue
		}
		w := member.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
		matches := memberMatches[mi]
		switch e.Fusion {
		case FusionRRF:
			k := e.RRFK
			if k <= 0 {
				k = 60
			}
			for rank, m := range matches {
				fused[key{m.SourceColumn, m.TargetColumn}] += w / (k + float64(rank+1))
			}
		default: // score fusion over per-member max-normalized scores
			maxScore := 0.0
			for _, m := range matches {
				if m.Score > maxScore {
					maxScore = m.Score
				}
			}
			if maxScore == 0 {
				maxScore = 1
			}
			for _, m := range matches {
				fused[key{m.SourceColumn, m.TargetColumn}] += w * (m.Score / maxScore)
			}
		}
	}

	var out []core.Match
	for k, score := range fused {
		if e.Fusion == FusionScore {
			score /= totalWeight
		}
		out = append(out, core.Match{
			SourceTable:  source.Name,
			SourceColumn: k.s,
			TargetTable:  target.Name,
			TargetColumn: k.t,
			Score:        score,
		})
	}
	if e.Fusion == FusionRRF {
		// normalize RRF mass into [0,1] for the suite's score contract
		maxScore := 0.0
		for _, m := range out {
			if m.Score > maxScore {
				maxScore = m.Score
			}
		}
		if maxScore > 0 {
			for i := range out {
				out[i].Score /= maxScore
			}
		}
	}
	core.SortMatches(out)
	return out
}

// sortedPairKeys is exposed for tests: deterministic iteration order of the
// fused map is guaranteed by core.SortMatches above, this helper verifies
// coverage.
func sortedPairKeys(ms []core.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.SourceColumn + "→" + m.TargetColumn
	}
	sort.Strings(out)
	return out
}

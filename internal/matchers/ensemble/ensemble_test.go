package ensemble

import (
	"reflect"
	"testing"

	"valentine/internal/core"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
)

func quickParams() map[string]core.Params {
	out := make(map[string]core.Params)
	for m, g := range experiment.QuickGrids() {
		out[m] = g[0]
	}
	return out
}

func buildEnsemble(t *testing.T, fusion string, methods ...string) *Matcher {
	t.Helper()
	e, err := FromRegistry(experiment.NewRegistry(), quickParams(), methods, core.Params{"fusion": fusion})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("no members should fail")
	}
	if _, err := New([]Member{{}}, nil); err == nil {
		t.Error("nil member matcher should fail")
	}
	reg := experiment.NewRegistry()
	m, err := reg.New(experiment.MethodComaSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]Member{{Matcher: m}}, core.Params{"fusion": "bogus"}); err == nil {
		t.Error("unknown fusion should fail")
	}
	if _, err := FromRegistry(reg, quickParams(), []string{"ghost"}, nil); err == nil {
		t.Error("unknown member method should fail")
	}
}

func TestName(t *testing.T) {
	e := buildEnsemble(t, "score", experiment.MethodComaSchema, experiment.MethodJaccardLev)
	if got := e.Name(); got != "ensemble(coma-schema+jaccard-levenshtein)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestEnsembleCoversAllPairsAndRanks(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	for _, fusion := range []string{"score", "rrf"} {
		e := buildEnsemble(t, fusion, experiment.MethodComaSchema, experiment.MethodDistribution)
		ms, err := e.Match(pair.Source, pair.Target)
		if err != nil {
			t.Fatal(err)
		}
		want := pair.Source.NumColumns() * pair.Target.NumColumns()
		if len(ms) != want {
			t.Fatalf("%s: %d matches, want %d", fusion, len(ms), want)
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1].Score < ms[i].Score {
				t.Fatalf("%s: not sorted", fusion)
			}
		}
		for _, m := range ms {
			if m.Score < 0 || m.Score > 1+1e-9 {
				t.Fatalf("%s: score %v out of range", fusion, m.Score)
			}
		}
	}
}

func TestEnsembleAtLeastAsGoodAsWeakMember(t *testing.T) {
	// On a noisy-schema joinable pair, schema-only matching is weak and
	// instance matching strong; the ensemble must not collapse to the weak
	// member.
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{NoisySchema: true})
	reg := experiment.NewRegistry()
	qp := quickParams()
	schema, err := reg.New(experiment.MethodSimFlood, qp[experiment.MethodSimFlood])
	if err != nil {
		t.Fatal(err)
	}
	weak := matchertest.Recall(t, schema, pair)
	e := buildEnsemble(t, "rrf", experiment.MethodSimFlood, experiment.MethodComaInstance)
	fused := matchertest.Recall(t, e, pair)
	if fused < weak {
		t.Errorf("ensemble recall %.3f below weak member %.3f", fused, weak)
	}
}

func TestScoreFusionWeights(t *testing.T) {
	// A dominant weight on one member should reproduce its ranking.
	src := table.New("a")
	src.AddColumn("x", []string{"1", "2", "3"})
	src.AddColumn("y", []string{"a", "b", "c"})
	tgt := table.New("b")
	tgt.AddColumn("x", []string{"1", "2", "3"})
	tgt.AddColumn("y", []string{"a", "b", "c"})
	reg := experiment.NewRegistry()
	m1, err := reg.New(experiment.MethodComaSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.New(experiment.MethodJaccardLev, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := m1.Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New([]Member{{Matcher: m1, Weight: 1000}, {Matcher: m2, Weight: 0.001}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := e.Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	soloTop := solo[0].SourceColumn + solo[0].TargetColumn
	fusedTop := fused[0].SourceColumn + fused[0].TargetColumn
	if soloTop != fusedTop {
		t.Errorf("dominant weight should reproduce member ranking: %s vs %s", soloTop, fusedTop)
	}
}

func TestSortedPairKeysHelper(t *testing.T) {
	ms := []core.Match{
		{SourceColumn: "b", TargetColumn: "y"},
		{SourceColumn: "a", TargetColumn: "x"},
	}
	if got := sortedPairKeys(ms); !reflect.DeepEqual(got, []string{"a→x", "b→y"}) {
		t.Fatalf("sortedPairKeys = %v", got)
	}
}

func TestMatchValidates(t *testing.T) {
	e := buildEnsemble(t, "score", experiment.MethodComaSchema)
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := e.Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := e.Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

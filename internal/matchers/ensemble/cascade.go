package ensemble

import (
	"context"
	"fmt"
	"sort"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
)

// Cascade hooks: the ensemble participates in the planner's cascade both
// as a bounded matcher (its fused score is capped by which members can
// score at all) and as a cascade of its own — members scheduled
// cheapest-first under a budget, fusing whatever completed when it runs
// out.

// MatchCostHint implements core.Coster: the sum of the members' hints (the
// ensemble runs every member).
func (e *Matcher) MatchCostHint() float64 {
	total := 0.0
	for _, m := range e.Members {
		total += core.MatchCost(m.Matcher)
	}
	return total
}

// ScoreBoundProfiles implements core.ScoreBounder. Score fusion divides a
// weighted sum of per-member max-normalized scores by the total weight; a
// member whose own bound is 0 emits only zero scores and contributes
// nothing, while any other member contributes at most its weight — so the
// achievable-weight fraction is admissible. RRF mass is rank-based, not
// score-based, and is normalized to a maximum of 1, so its only sound
// cheap bound is 1.
func (e *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	if e.Fusion == FusionRRF {
		return 1
	}
	reachable, total := 0.0, 0.0
	for _, m := range e.Members {
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		if core.ScoreBound(m.Matcher, sp, tp) > 0 {
			reachable += w
		}
	}
	if total == 0 {
		return 0
	}
	return reachable / total
}

// MatchCascade implements core.CascadeMatcher: members run on the engine
// pool in cheapest-first order (core.MatchCost), so when the context's
// budget expires mid-run the completed set is biased toward the cheap
// members; their rankings are fused — in original member order, for
// bit-identical sums — and returned as the best-effort result alongside
// the context error. With no budget pressure the output is exactly
// MatchProfilesContext's, truncated to k when k > 0.
func (e *Matcher) MatchCascade(ctx context.Context, sp, tp *profile.TableProfile, k int) ([]core.Match, bool, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, false, err
	}
	source, target := sp.Table(), tp.Table()

	order := make([]int, len(e.Members))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return core.MatchCost(e.Members[order[a]].Matcher) < core.MatchCost(e.Members[order[b]].Matcher)
	})

	memberMatches := make([][]core.Match, len(e.Members))
	done := make([]bool, len(e.Members))
	mapErr := engine.Map(ctx, engine.OptionsFrom(ctx).Workers(), len(e.Members), func(pos int) error {
		i := order[pos]
		matches, err := core.MatchProfilesWithContext(ctx, e.Members[i].Matcher, sp, tp)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("ensemble member %s: %w", e.Members[i].Matcher.Name(), err)
		}
		memberMatches[i] = matches
		done[i] = true
		return nil
	})
	if mapErr != nil && ctx.Err() == nil {
		// A member's own (non-context) failure stays a hard error, exactly
		// as on the full-fidelity path.
		return nil, false, mapErr
	}
	var present []bool
	bestEffort := false
	if mapErr != nil {
		present = done
		bestEffort = true
	}
	out := e.fuse(memberMatches, present, source, target)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, bestEffort, mapErr
}

package ensemble

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/experiment"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// TestMatchCascadeConformance: with no budget pressure, MatchCascade must
// reproduce MatchProfilesContext bit for bit — the fused scores are float
// sums, so even member iteration order matters.
func TestMatchCascadeConformance(t *testing.T) {
	for _, fusion := range []string{"score", "rrf"} {
		for _, scenario := range []string{core.ScenarioUnionable, core.ScenarioJoinable} {
			pair := matchertest.Pair(t, scenario, fabrication.Variant{NoisySchema: true})
			e := buildEnsemble(t, fusion, experiment.MethodComaSchema, experiment.MethodComaInstance, experiment.MethodSimFlood)
			sp, tp := core.ProfilePair(nil, pair.Source, pair.Target)
			ctx, cancel := engine.Options{}.Start(context.Background())
			want, err := e.MatchProfilesContext(ctx, sp, tp)
			if err != nil {
				cancel()
				t.Fatal(err)
			}
			got, bestEffort, err := e.MatchCascade(ctx, sp, tp, 0)
			cancel()
			if err != nil || bestEffort {
				t.Fatalf("%s/%s: err=%v bestEffort=%v", fusion, scenario, err, bestEffort)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: cascade diverges from full fidelity\ncascade %v\nfull    %v", fusion, scenario, got, want)
			}
			// k truncation is a pure prefix of the full ranking.
			top, _, err := e.MatchCascade(context.Background(), sp, tp, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(top, want[:3]) {
				t.Fatalf("%s/%s: top-3 is not the full ranking's prefix", fusion, scenario)
			}
		}
	}
}

// TestMatchCascadeBudgetExpiry: a spent budget mid-cascade yields the fused
// ranking of whatever members completed, flagged best-effort, with the
// deadline error alongside — and the engine pool fully drained (no leaked
// goroutines under -race).
func TestMatchCascadeBudgetExpiry(t *testing.T) {
	before := runtime.NumGoroutine()
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	// A slow stub member guarantees the budget expires between members, not
	// before the first one starts.
	fast, err := experiment.NewRegistry().New(experiment.MethodComaSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New([]Member{
		{Matcher: fast},
		{Matcher: &slowMatcher{block: 5 * time.Second}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp, tp := core.ProfilePair(nil, pair.Source, pair.Target)
	outer, cancel := engine.Options{Parallelism: 2}.Start(context.Background())
	defer cancel()
	qctx, qcancel := core.BudgetContext(outer, 50*time.Millisecond)
	defer qcancel()
	got, bestEffort, err := e.MatchCascade(qctx, sp, tp, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !core.IsBudgetExpiry(outer, err) {
		t.Fatal("budget expiry must classify as best-effort")
	}
	if !bestEffort {
		t.Fatal("bestEffort flag not set")
	}
	// The fast member finished before the budget fired (two workers run
	// both members concurrently), so the best-effort fusion is non-empty.
	if len(got) == 0 {
		t.Fatal("expected the completed member's matches in the best-effort fusion")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestMatchCascadeMemberErrorStaysHard: a member's own failure is an error
// on the cascade path exactly as on the full-fidelity path.
func TestMatchCascadeMemberErrorStaysHard(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	e, err := New([]Member{{Matcher: &slowMatcher{fail: true}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp, tp := core.ProfilePair(nil, pair.Source, pair.Target)
	_, bestEffort, err := e.MatchCascade(context.Background(), sp, tp, 0)
	if err == nil || bestEffort {
		t.Fatalf("member failure: err=%v bestEffort=%v, want hard error", err, bestEffort)
	}
}

// TestEnsembleCostIsMemberSum pins the Coster hook the planner orders by.
func TestEnsembleCostIsMemberSum(t *testing.T) {
	e := buildEnsemble(t, "score", experiment.MethodComaSchema, experiment.MethodComaInstance)
	want := 0.0
	for _, m := range e.Members {
		want += core.MatchCost(m.Matcher)
	}
	if got := e.MatchCostHint(); got != want {
		t.Fatalf("MatchCostHint = %v, want member sum %v", got, want)
	}
}

// TestEnsembleScoreBound: the score-fusion bound is the reachable weight
// fraction; RRF's only sound cheap bound is 1.
func TestEnsembleScoreBound(t *testing.T) {
	shared := table.New("a")
	shared.AddColumn("x", []string{"1", "2", "3"})
	disjoint := table.New("b")
	disjoint.AddColumn("y", []string{"7", "8", "9"})
	sp, tp := core.ProfilePair(nil, shared, disjoint)
	e, err := New([]Member{
		{Matcher: &zeroBoundMatcher{}, Weight: 3},
		{Matcher: &slowMatcher{}, Weight: 1}, // no bound hook: reachable
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ScoreBoundProfiles(sp, tp); got != 0.25 {
		t.Fatalf("score-fusion bound = %v, want 0.25", got)
	}
	rrf, err := New(e.Members, core.Params{"fusion": "rrf"})
	if err != nil {
		t.Fatal(err)
	}
	if got := rrf.ScoreBoundProfiles(sp, tp); got != 1 {
		t.Fatalf("rrf bound = %v, want 1", got)
	}
}

// slowMatcher is a stub member: optionally blocks until its context dies,
// optionally fails outright.
type slowMatcher struct {
	block time.Duration
	fail  bool
}

func (s *slowMatcher) Name() string { return "slow-stub" }

func (s *slowMatcher) Match(source, target *table.Table) ([]core.Match, error) {
	if s.fail {
		return nil, fmt.Errorf("stub failure")
	}
	time.Sleep(s.block)
	return []core.Match{{
		SourceTable: source.Name, SourceColumn: source.Columns[0].Name,
		TargetTable: target.Name, TargetColumn: target.Columns[0].Name,
		Score: 0.5,
	}}, nil
}

func (s *slowMatcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if s.fail {
		return nil, fmt.Errorf("stub failure")
	}
	select {
	case <-time.After(s.block):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Match(sp.Table(), tp.Table())
}

// zeroBoundMatcher always bounds to zero — an unreachable member.
type zeroBoundMatcher struct{ slowMatcher }

func (z *zeroBoundMatcher) Name() string { return "zero-stub" }

func (z *zeroBoundMatcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 { return 0 }

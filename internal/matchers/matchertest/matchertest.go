// Package matchertest provides shared fixtures and assertions for matcher
// package tests: a compact deterministic source table, fabricated pairs per
// scenario, and recall checks.
package matchertest

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/metrics"
	"valentine/internal/table"
)

// Source builds a deterministic 8-column, 60-row commerce table that every
// matcher test fabricates from.
func Source() *table.Table {
	t := table.New("orders")
	n := 60
	clients := []string{"J. Watts", "B. Mei", "Q. Man", "A. Chen", "R. Ortiz", "L. Novak", "T. Okafor", "S. Haas"}
	cities := []string{"Delft", "Lyon", "Boston", "Tokyo", "Oslo", "Porto"}
	countries := []string{"Netherlands", "France", "USA", "Japan", "Norway", "Portugal"}
	statuses := []string{"open", "shipped", "returned", "closed"}
	add := func(name string, f func(i int) string) {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = f(i)
		}
		t.AddColumn(name, vals)
	}
	add("client_name", func(i int) string { return clients[i%len(clients)] })
	add("city", func(i int) string { return cities[i%len(cities)] })
	add("country", func(i int) string { return countries[i%len(countries)] })
	add("postal_code", func(i int) string {
		return string(rune('1'+i%9)) + "0" + string(rune('0'+i%10)) + "2" + string(rune('0'+(i/3)%10))
	})
	add("order_total", func(i int) string {
		cents := (i*137 + 11) % 10000
		return itoa(cents/100) + "." + pad2(cents%100)
	})
	add("quantity", func(i int) string { return itoa(1 + (i*7)%9) })
	add("order_date", func(i int) string { return "20" + pad2(10+i%10) + "-" + pad2(1+i%12) + "-" + pad2(1+i%28) })
	add("status", func(i int) string { return statuses[i%len(statuses)] })
	return t
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func pad2(v int) string {
	if v < 10 {
		return "0" + itoa(v)
	}
	return itoa(v)
}

// Pair fabricates one pair for the given scenario with the shared source.
func Pair(t *testing.T, scenario string, v fabrication.Variant) core.TablePair {
	t.Helper()
	f := fabrication.New(1234)
	var (
		pair core.TablePair
		err  error
	)
	switch scenario {
	case core.ScenarioUnionable:
		pair, err = f.Unionable(Source(), 0.5, v)
	case core.ScenarioViewUnionable:
		pair, err = f.ViewUnionable(Source(), 0.5, v)
	case core.ScenarioJoinable:
		pair, err = f.Joinable(Source(), 0.5, 1.0, v.NoisySchema)
	case core.ScenarioSemJoinable:
		pair, err = f.SemanticallyJoinable(Source(), 0.5, 1.0, v.NoisySchema)
	default:
		t.Fatalf("unknown scenario %q", scenario)
	}
	if err != nil {
		t.Fatalf("fabricating %s: %v", scenario, err)
	}
	return pair
}

// Recall runs the matcher on the pair and returns Recall@GroundTruth.
func Recall(t *testing.T, m core.Matcher, pair core.TablePair) float64 {
	t.Helper()
	ms, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatalf("%s on %s: %v", m.Name(), pair.Name, err)
	}
	r, err := metrics.RecallAtGroundTruth(ms, pair.Truth)
	if err != nil {
		t.Fatalf("recall on %s: %v", pair.Name, err)
	}
	return r
}

// RequireRecallAtLeast asserts a minimum recall for the matcher on a pair.
func RequireRecallAtLeast(t *testing.T, m core.Matcher, pair core.TablePair, min float64) {
	t.Helper()
	if r := Recall(t, m, pair); r < min {
		t.Errorf("%s on %s: recall = %.3f, want ≥ %.3f", m.Name(), pair.Name, r, min)
	}
}

// CheckMatchInvariants verifies ranked-output invariants every matcher must
// satisfy: scores sorted descending, within [0,1] (tolerating tiny float
// drift), table names filled, and referenced columns existing.
func CheckMatchInvariants(t *testing.T, m core.Matcher, pair core.TablePair) {
	t.Helper()
	ms, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	for i, match := range ms {
		if i > 0 && ms[i-1].Score < match.Score {
			t.Fatalf("%s: matches not sorted at %d", m.Name(), i)
		}
		if match.Score < -1e-9 || match.Score > 1+1e-9 {
			t.Errorf("%s: score %v out of [0,1]", m.Name(), match.Score)
		}
		if pair.Source.Column(match.SourceColumn) == nil {
			t.Errorf("%s: unknown source column %q", m.Name(), match.SourceColumn)
		}
		if pair.Target.Column(match.TargetColumn) == nil {
			t.Errorf("%s: unknown target column %q", m.Name(), match.TargetColumn)
		}
	}
}

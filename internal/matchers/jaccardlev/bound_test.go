package jaccardlev

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/table"
)

func fuzzPair(rng *rand.Rand) (*table.Table, *table.Table) {
	build := func(name string, vocab int) *table.Table {
		t := table.New(name)
		cols := 1 + rng.Intn(3)
		rows := 5 + rng.Intn(40)
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				if rng.Intn(10) == 0 {
					vals[r] = ""
				} else {
					vals[r] = fmt.Sprintf("val-%d", rng.Intn(vocab))
				}
			}
			t.AddColumn(fmt.Sprintf("%s-c%d", name, c), vals)
		}
		return t
	}
	return build("left", 30), build("right", 20+rng.Intn(40))
}

// TestScoreBoundAdmissible: the sample-size ratio bound must dominate every
// fuzzy-Jaccard score the matcher emits (scores can exceed 1, and so can
// the bound — what matters is domination).
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	jm := m.(*Matcher)
	for trial := 0; trial < 40; trial++ {
		src, tgt := fuzzPair(rng)
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := jm.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound {
				t.Fatalf("trial %d: score %v exceeds bound %v", trial, match.Score, bound)
			}
		}
	}
}

// TestMatchCascadeConformance: the pair-level cascade with k <= 0 must be
// bit-identical to the full path, and a positive k an exact prefix of it.
func TestMatchCascadeConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	jm := m.(*Matcher)
	for trial := 0; trial < 15; trial++ {
		src, tgt := fuzzPair(rng)
		sp, tp := core.ProfilePair(nil, src, tgt)
		ctx, cancel := engine.Options{}.Start(context.Background())
		want, err := jm.MatchProfilesContext(ctx, sp, tp)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		full, bestEffort, err := jm.MatchCascade(ctx, sp, tp, 0)
		if err != nil || bestEffort {
			cancel()
			t.Fatalf("trial %d: err=%v bestEffort=%v", trial, err, bestEffort)
		}
		if !reflect.DeepEqual(full, want) {
			cancel()
			t.Fatalf("trial %d: cascade k=0 diverges\ncascade %v\nfull    %v", trial, full, want)
		}
		k := 1 + rng.Intn(4)
		top, _, err := jm.MatchCascade(ctx, sp, tp, k)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if k > len(want) {
			k = len(want)
		}
		if !reflect.DeepEqual(top, want[:k]) {
			t.Fatalf("trial %d: cascade top-%d is not the full ranking's prefix\ncascade %v\nfull    %v",
				trial, k, top, want[:k])
		}
	}
}

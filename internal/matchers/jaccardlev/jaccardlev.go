// Package jaccardlev implements Valentine's baseline matcher: pairwise
// column Jaccard similarity where two values count as identical when their
// normalized Levenshtein similarity meets a threshold (paper §VI-A, "a
// naive instance-based matcher ... ca. 70 lines of Python").
package jaccardlev

import (
	"context"
	"sort"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Matcher is the Jaccard-Levenshtein baseline.
type Matcher struct {
	// Threshold is the Levenshtein-similarity cutoff above which two values
	// are treated as identical (Table II sweeps 0.4–0.8).
	Threshold float64
	// MaxSample caps the distinct values considered per column; the paper's
	// implementation is quadratic in value-set size and this cap keeps the
	// suite tractable at identical ranking behaviour for high-cardinality
	// columns. 0 means the default of 120.
	MaxSample int
}

// New builds the baseline from params: "threshold" (default 0.8) and
// "max_sample" (default 120).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Threshold: p.Float("threshold", 0.8),
		MaxSample: p.Int("max_sample", 120),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "jaccard-levenshtein" }

// Match ranks every cross-table column pair by fuzzy Jaccard similarity.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), profile.New(source), profile.New(target))
}

// MatchProfiles implements core.ProfiledMatcher: the per-column sorted
// distinct values come from the profiles' caches.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: distinct-value samples are generated per column, then the
// quadratic fuzzy-Jaccard scoring fans out on the engine's worker pool.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	limit := m.MaxSample
	if limit <= 0 {
		limit = 120
	}
	var srcSets, tgtSets [][]string
	engine.StatsFrom(ctx).Timed(engine.StageGenerate, func() {
		srcSets = make([][]string, len(source.Columns))
		for i := range source.Columns {
			srcSets[i] = sampleDistinct(sp.Column(i), limit)
		}
		tgtSets = make([][]string, len(target.Columns))
		for i := range target.Columns {
			tgtSets[i] = sampleDistinct(tp.Column(i), limit)
		}
	})
	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		return fuzzyJaccard(srcSets[i], tgtSets[j], m.Threshold), true
	})
}

// sampleDistinct returns up to max distinct values, deterministically (the
// lexicographically first ones), so runs are reproducible. The returned
// slice may alias the profile's cache and must be treated as read-only.
func sampleDistinct(p *profile.Profile, max int) []string {
	vals := p.SortedDistinct()
	if len(vals) > max {
		// stride-sample across the sorted set to keep the value range
		out := make([]string, 0, max)
		step := float64(len(vals)) / float64(max)
		for i := 0; i < max; i++ {
			out = append(out, vals[int(float64(i)*step)])
		}
		return out
	}
	return vals
}

// fuzzyJaccard computes |fuzzy ∩| / |∪| where a source value is in the
// intersection when some target value is within the Levenshtein threshold.
func fuzzyJaccard(a, b []string, threshold float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	bSet := make(map[string]struct{}, len(b))
	for _, v := range b {
		bSet[v] = struct{}{}
	}
	// b sorted by length for the length-difference prune
	bByLen := append([]string(nil), b...)
	sort.Slice(bByLen, func(i, j int) bool { return len(bByLen[i]) < len(bByLen[j]) })
	matched := 0
	for _, av := range a {
		if _, ok := bSet[av]; ok {
			matched++
			continue
		}
		if fuzzyContains(av, bByLen, threshold) {
			matched++
		}
	}
	union := len(a) + len(b) - matched
	if union <= 0 {
		return 0
	}
	return float64(matched) / float64(union)
}

// fuzzyContains reports whether any candidate is within the Levenshtein
// similarity threshold of v. Candidates must be sorted by length; lengths
// incompatible with the threshold are pruned without edit-distance work.
func fuzzyContains(v string, candidates []string, threshold float64) bool {
	lv := len(v)
	for _, c := range candidates {
		lc := len(c)
		maxLen := lv
		if lc > maxLen {
			maxLen = lc
		}
		if maxLen == 0 {
			continue
		}
		// Levenshtein ≥ |len difference|, so sim ≤ 1 − |Δlen|/maxLen.
		diff := lv - lc
		if diff < 0 {
			diff = -diff
		}
		if 1-float64(diff)/float64(maxLen) < threshold {
			if lc > lv {
				return false // candidates only get longer from here
			}
			continue
		}
		if strutil.LevenshteinSim(v, c) >= threshold {
			return true
		}
	}
	return false
}

// Package jaccardlev implements Valentine's baseline matcher: pairwise
// column Jaccard similarity where two values count as identical when their
// normalized Levenshtein similarity meets a threshold (paper §VI-A, "a
// naive instance-based matcher ... ca. 70 lines of Python").
package jaccardlev

import (
	"context"
	"sort"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Matcher is the Jaccard-Levenshtein baseline.
type Matcher struct {
	// Threshold is the Levenshtein-similarity cutoff above which two values
	// are treated as identical (Table II sweeps 0.4–0.8).
	Threshold float64
	// MaxSample caps the distinct values considered per column; the paper's
	// implementation is quadratic in value-set size and this cap keeps the
	// suite tractable at identical ranking behaviour for high-cardinality
	// columns. 0 means the default of 120.
	MaxSample int
}

// New builds the baseline from params: "threshold" (default 0.8) and
// "max_sample" (default 120).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Threshold: p.Float("threshold", 0.8),
		MaxSample: p.Int("max_sample", 120),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "jaccard-levenshtein" }

// Match ranks every cross-table column pair by fuzzy Jaccard similarity.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: the per-column sorted
// distinct values come from the profiles' caches.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: per-column distinct-value samples (plus their interned-id
// form and length-sorted fuzzy candidates) are generated once up front,
// then the quadratic fuzzy-Jaccard scoring fans out on the engine's worker
// pool with no per-pair allocation.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	limit := m.MaxSample
	if limit <= 0 {
		limit = 120
	}
	// Both tables interning into one dictionary selects the integer-set
	// representation for every sample up front; otherwise only the string
	// maps are built — never both.
	useIDs := sp.InterningDict() != nil && sp.InterningDict() == tp.InterningDict()
	var srcSets, tgtSets []colSample
	engine.StatsFrom(ctx).Timed(engine.StageGenerate, func() {
		srcSets = make([]colSample, len(source.Columns))
		for i := range source.Columns {
			srcSets[i] = sampleColumn(sp.Column(i), limit, useIDs)
		}
		tgtSets = make([]colSample, len(target.Columns))
		for i := range target.Columns {
			tgtSets[i] = sampleColumn(tp.Column(i), limit, useIDs)
		}
	})
	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		return fuzzyJaccard(&srcSets[i], &tgtSets[j], m.Threshold), true
	})
}

// colSample is one column's sampled distinct values in every form scoring
// needs, precomputed once per column instead of once per pair:
//
//   - vals: the sample, lexicographic (the deterministic stride sample)
//   - byLen: vals sorted by length — the fuzzy phase's candidate order
//   - ids/idVals: the sample sorted by interned id with the values kept
//     parallel, when the column's profile carries a value dictionary — the
//     exact-overlap prescreen merges two id slices allocation-free instead
//     of probing a per-pair string map.
type colSample struct {
	vals   []string
	byLen  []string
	set    map[string]struct{} // exact-membership fallback (mixed/no dictionary)
	dict   *intern.Dict        // the dictionary ids were minted by (nil: none)
	ids    []uint32
	idVals []string
}

// sampleColumn samples up to max distinct values, deterministically (the
// lexicographically first ones, stride-sampled across the sorted set to
// keep the value range), so runs are reproducible. useIDs selects the
// interned-id representation (the caller must have checked both tables
// intern into one dictionary); otherwise the string-membership map is
// built instead.
func sampleColumn(p *profile.Profile, max int, useIDs bool) colSample {
	cs := colSample{vals: p.SampleDistinct(max)}
	vals := cs.vals
	cs.byLen = append([]string(nil), vals...)
	sort.Slice(cs.byLen, func(i, j int) bool { return len(cs.byLen[i]) < len(cs.byLen[j]) })
	if !useIDs {
		cs.set = make(map[string]struct{}, len(vals))
		for _, v := range vals {
			cs.set[v] = struct{}{}
		}
	} else if d := p.Dict(); p.InternedDistinct() != nil {
		cs.dict = d
		// The profile's distinct values are all interned (InternedDistinct
		// forced that), so every sample value resolves; sorting the sample
		// by id sets up the pairwise sorted-merge prescreen.
		type pair struct {
			id uint32
			v  string
		}
		pairs := make([]pair, len(vals))
		for i, v := range vals {
			id, _ := d.Lookup(v)
			pairs[i] = pair{id, v}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
		cs.ids = make([]uint32, len(pairs))
		cs.idVals = make([]string, len(pairs))
		for i, pr := range pairs {
			cs.ids[i] = pr.id
			cs.idVals[i] = pr.v
		}
	}
	return cs
}

// fuzzyJaccard computes |fuzzy ∩| / |∪| where a source value is in the
// intersection when it appears verbatim on the target side or some target
// value is within the Levenshtein threshold. With interned samples the
// exact-overlap prescreen is a sorted-merge over id slices: values matched
// by id never touch the Levenshtein machinery, and the whole pairwise call
// allocates nothing. Scores are bit-identical on both paths — id equality
// is value equality.
func fuzzyJaccard(a, b *colSample, threshold float64) float64 {
	if len(a.vals) == 0 || len(b.vals) == 0 {
		return 0
	}
	matched := 0
	if a.dict != nil && a.dict == b.dict {
		i, j := 0, 0
		for i < len(a.ids) && j < len(b.ids) {
			switch {
			case a.ids[i] == b.ids[j]:
				matched++
				i++
				j++
			case a.ids[i] < b.ids[j]:
				if fuzzyContains(a.idVals[i], b.byLen, threshold) {
					matched++
				}
				i++
			default:
				j++
			}
		}
		for ; i < len(a.ids); i++ {
			if fuzzyContains(a.idVals[i], b.byLen, threshold) {
				matched++
			}
		}
	} else {
		for _, av := range a.vals {
			if _, ok := b.set[av]; ok {
				matched++
				continue
			}
			if fuzzyContains(av, b.byLen, threshold) {
				matched++
			}
		}
	}
	union := len(a.vals) + len(b.vals) - matched
	if union <= 0 {
		return 0
	}
	return float64(matched) / float64(union)
}

// fuzzyContains reports whether any candidate is within the Levenshtein
// similarity threshold of v. Candidates must be sorted by length; lengths
// incompatible with the threshold are pruned without edit-distance work.
func fuzzyContains(v string, candidates []string, threshold float64) bool {
	lv := len(v)
	for _, c := range candidates {
		lc := len(c)
		maxLen := lv
		if lc > maxLen {
			maxLen = lc
		}
		if maxLen == 0 {
			continue
		}
		// Levenshtein ≥ |len difference|, so sim ≤ 1 − |Δlen|/maxLen.
		diff := lv - lc
		if diff < 0 {
			diff = -diff
		}
		if 1-float64(diff)/float64(maxLen) < threshold {
			if lc > lv {
				return false // candidates only get longer from here
			}
			continue
		}
		if strutil.LevenshteinSim(v, c) >= threshold {
			return true
		}
	}
	return false
}

package jaccardlev

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/profile"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "jaccard-levenshtein" {
		t.Error("name")
	}
}

func TestJoinableVerbatimPerfect(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.99)
}

func TestUnionableOverlapHigh(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.8)
}

func TestSemanticallyJoinableDegrades(t *testing.T) {
	j := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	sj := matchertest.Pair(t, core.ScenarioSemJoinable, fabrication.Variant{})
	m := newM(t, nil)
	rj := matchertest.Recall(t, m, j)
	rsj := matchertest.Recall(t, m, sj)
	if rsj > rj {
		t.Errorf("sem-joinable recall %.3f should not beat joinable %.3f", rsj, rj)
	}
}

func TestLowerThresholdHelpsNoisyInstances(t *testing.T) {
	sj := matchertest.Pair(t, core.ScenarioSemJoinable, fabrication.Variant{})
	strict := matchertest.Recall(t, newM(t, core.Params{"threshold": 0.95}), sj)
	loose := matchertest.Recall(t, newM(t, core.Params{"threshold": 0.5}), sj)
	if loose < strict {
		t.Errorf("loose threshold %.3f should be ≥ strict %.3f on noisy instances", loose, strict)
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisySchema: true, NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
	}
}

// sampleOf builds the dictionary-less colSample of a raw value list.
func sampleOf(vals []string) *colSample {
	c := table.Column{Name: "x", Values: vals}
	cs := sampleColumn(profile.NewColumn("t", &c), len(vals)+1, false)
	return &cs
}

func TestFuzzyJaccardBasics(t *testing.T) {
	if got := fuzzyJaccard(sampleOf([]string{"abc", "def"}), sampleOf([]string{"abc", "def"}), 0.8); got != 1 {
		t.Errorf("identical sets = %v", got)
	}
	if got := fuzzyJaccard(sampleOf([]string{"abc"}), sampleOf([]string{"xyz"}), 0.8); got != 0 {
		t.Errorf("disjoint = %v", got)
	}
	// typo within threshold 0.6: "color" vs "colour" sim = 1-1/6 ≈ 0.83
	if got := fuzzyJaccard(sampleOf([]string{"colour"}), sampleOf([]string{"color"}), 0.8); got != 1 {
		t.Errorf("fuzzy match = %v", got)
	}
	if got := fuzzyJaccard(sampleOf(nil), sampleOf([]string{"x"}), 0.8); got != 0 {
		t.Errorf("empty side = %v", got)
	}
	if got := fuzzyJaccard(sampleOf(nil), sampleOf(nil), 0.8); got != 0 {
		t.Errorf("both empty = %v", got)
	}
}

// TestInternedPrescreenMatchesMapPath: the sorted-merge exact-overlap
// prescreen over interned ids must score every pair exactly as the
// map-membership path does.
func TestInternedPrescreenMatchesMapPath(t *testing.T) {
	vals := func(n, off int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = matchName(i + off)
		}
		return out
	}
	src := table.New("s")
	src.AddColumn("a", vals(80, 0))
	src.AddColumn("b", vals(80, 100))
	tgt := table.New("t")
	tgt.AddColumn("x", vals(80, 20))
	tgt.AddColumn("y", vals(80, 500))
	m := newM(t, core.Params{"threshold": 0.6})
	plain, err := core.MatchWith(m, profile.New(src), profile.New(tgt))
	if err != nil {
		t.Fatal(err)
	}
	sp, tp := profile.NewPair(src, tgt)
	interned, err := core.MatchWith(m, sp, tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(interned) {
		t.Fatalf("match counts differ: %d vs %d", len(plain), len(interned))
	}
	for i := range plain {
		if plain[i] != interned[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, plain[i], interned[i])
		}
	}
}

func TestSampleDistinctCaps(t *testing.T) {
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = matchName(i)
	}
	c := table.Column{Name: "x", Values: vals}
	s := sampleColumn(profile.NewColumn("t", &c), 50, false).vals
	if len(s) != 50 {
		t.Fatalf("sample = %d", len(s))
	}
	// determinism
	s2 := sampleColumn(profile.NewColumn("t", &c), 50, false).vals
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func matchName(i int) string {
	return "val_" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestMatchValidatesInput(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

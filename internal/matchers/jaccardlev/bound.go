package jaccardlev

import (
	"context"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/planner"
	"valentine/internal/profile"
)

// Cascade hooks. The fuzzy Jaccard score of a column pair is
// matched/(sa+sb−matched) with matched ≤ sa (only source values are
// matched), which is increasing in matched — so sa/sb is an admissible
// per-pair bound (it can exceed 1, as the score itself can when sa > sb),
// and zero when either sample is empty. Sample sizes follow from cached
// distinct counts alone, so the bound costs no string work at all.

// MatchCostHint implements core.Coster: measured average per-pair runtime
// in microseconds (BENCH_6 Table V, rows=120) — by far the most expensive
// non-embedding matcher, thanks to the quadratic Levenshtein phase.
func (m *Matcher) MatchCostHint() float64 { return 55000 }

// sampleSize is the column's effective sample cardinality: its distinct
// count capped at the matcher's sample limit.
func (m *Matcher) sampleSize(p *profile.Profile) int {
	limit := m.MaxSample
	if limit <= 0 {
		limit = 120
	}
	d := p.Distinct()
	if d > limit {
		return limit
	}
	return d
}

func pairBound(sa, sb int) float64 {
	if sa == 0 || sb == 0 {
		return 0
	}
	return float64(sa) / float64(sb)
}

// ScoreBoundProfiles implements core.ScoreBounder: the best per-pair
// bound over the cross product.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	best := 0.0
	for _, sc := range sp.Columns() {
		sa := m.sampleSize(sc)
		for _, tc := range tp.Columns() {
			if b := pairBound(sa, m.sampleSize(tc)); b > best {
				best = b
			}
		}
	}
	return best
}

// MatchCascade implements core.CascadeMatcher: the same scoring path as
// MatchProfilesContext, but through the planner's bound-aware pair cascade
// — pairs whose sa/sb bound cannot reach the current kth-best score skip
// the quadratic fuzzy phase entirely. With k <= 0 and a live context the
// output is exactly MatchProfilesContext's.
func (m *Matcher) MatchCascade(ctx context.Context, sp, tp *profile.TableProfile, k int) ([]core.Match, bool, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, false, err
	}
	source, target := sp.Table(), tp.Table()
	limit := m.MaxSample
	if limit <= 0 {
		limit = 120
	}
	useIDs := sp.InterningDict() != nil && sp.InterningDict() == tp.InterningDict()
	var srcSets, tgtSets []colSample
	engine.StatsFrom(ctx).Timed(engine.StageGenerate, func() {
		srcSets = make([]colSample, len(source.Columns))
		for i := range source.Columns {
			srcSets[i] = sampleColumn(sp.Column(i), limit, useIDs)
		}
		tgtSets = make([]colSample, len(target.Columns))
		for i := range target.Columns {
			tgtSets[i] = sampleColumn(tp.Column(i), limit, useIDs)
		}
	})
	return planner.ScorePairsTopK(ctx, sp, tp, k, m.Name(),
		func(i, j int) float64 {
			return pairBound(len(srcSets[i].vals), len(tgtSets[j].vals))
		},
		func(i, j int) (float64, bool) {
			return fuzzyJaccard(&srcSets[i], &tgtSets[j], m.Threshold), true
		})
}

package cupid

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
	"valentine/internal/wordnet"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "cupid" {
		t.Error("name")
	}
}

func TestVerbatimSchemataPerfect(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{})
		matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.99)
	}
}

func TestSynonymColumnsMatch(t *testing.T) {
	// Cupid's thesaurus should rank synonym columns (client/customer,
	// street/road) above unrelated ones even with zero value overlap.
	src := table.New("a")
	src.AddColumn("client", []string{"x", "y"})
	src.AddColumn("street", []string{"1 Main St", "2 Oak Ave"})
	tgt := table.New("b")
	tgt.AddColumn("customer", []string{"p", "q"})
	tgt.AddColumn("road", []string{"9 Elm St", "4 Pine Rd"})
	ms, err := newM(t, core.Params{"th_accept": 0.0}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	score := map[[2]string]float64{}
	for _, m := range ms {
		score[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if score[[2]string{"client", "customer"}] <= score[[2]string{"client", "road"}] {
		t.Errorf("client~customer %.3f should beat client~road %.3f",
			score[[2]string{"client", "customer"}], score[[2]string{"client", "road"}])
	}
	if score[[2]string{"street", "road"}] <= score[[2]string{"street", "customer"}] {
		t.Errorf("street~road %.3f should beat street~customer %.3f",
			score[[2]string{"street", "road"}], score[[2]string{"street", "customer"}])
	}
}

func TestThAcceptFilters(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	all, err := newM(t, core.Params{"th_accept": 0.0}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := newM(t, core.Params{"th_accept": 0.9}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) >= len(all) {
		t.Errorf("th_accept should prune: %d vs %d", len(strict), len(all))
	}
}

func TestStructuralWeightSensitivity(t *testing.T) {
	// Different w_struct values must actually change scores (the Table III
	// sensitivity experiment depends on it).
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	m0, err := newM(t, core.Params{"w_struct": 0.0, "th_accept": 0.0}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	m6, err := newM(t, core.Params{"w_struct": 0.6, "th_accept": 0.0}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0) == 0 || len(m6) == 0 {
		t.Fatal("no matches")
	}
	differ := false
	for i := range m0 {
		if i < len(m6) && m0[i].Score != m6[i].Score {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("w_struct had no effect on scores")
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisySchema: true, NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, newM(t, core.Params{"th_accept": 0.0}), pair)
	}
}

func TestLinguisticEdges(t *testing.T) {
	m := &Matcher{Thesaurus: wordnet.Default()}
	if got := m.linguistic(wordnet.Default(), nil, []string{"x"}); got != 0 {
		t.Errorf("empty tokens = %v", got)
	}
	if got := m.linguistic(wordnet.Default(), []string{"customer"}, []string{"customer"}); got != 1 {
		t.Errorf("identical = %v", got)
	}
	syn := m.linguistic(wordnet.Default(), []string{"customer"}, []string{"client"})
	if syn != 1 {
		t.Errorf("synonym tokens should score 1, got %v", syn)
	}
}

func TestTypeCompat(t *testing.T) {
	if typeCompat(table.Int, table.Int) != 1 {
		t.Error("same")
	}
	if typeCompat(table.Int, table.Float) != 0.9 {
		t.Error("numeric")
	}
	if typeCompat(table.String, table.Bool) != 0.5 {
		t.Error("string-compat")
	}
	if typeCompat(table.Bool, table.Date) != 0.2 {
		t.Error("incompatible")
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

// Package cupid reimplements the Cupid matcher (Madhavan, Bernstein & Rahm,
// VLDB 2001) adapted to denormalized tables, as in the paper.
//
// Schemata become two-level trees (table root, column leaves). Element
// similarity is the weighted sum of linguistic similarity — thesaurus-aided
// token matching, WordNet replaced by the embedded schema-domain thesaurus
// (see DESIGN.md §4) — and structural similarity, which for leaves combines
// data-type compatibility with the context contributed by the root and
// siblings. wsim = w_struct·ssim + (1−w_struct)·lsim, with the leaf
// structural weight (leaf_w_struct) and accept threshold (th_accept) from
// Table II.
package cupid

import (
	"context"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
	"valentine/internal/wordnet"
)

// Matcher is a configured Cupid instance.
type Matcher struct {
	LeafWStruct float64 // structural weight at leaf level (Table II: 0–0.6)
	WStruct     float64 // structural weight when combining (Table II: 0–0.6)
	ThAccept    float64 // accept threshold (Table II: 0.3–0.8)
	ThHigh      float64 // strong-link threshold for the structural pass
	Thesaurus   *wordnet.Thesaurus
}

// New builds Cupid from params: "leaf_w_struct" (default 0.2), "w_struct"
// (default 0.2), "th_accept" (default 0.3), "th_high" (default 0.6).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		LeafWStruct: p.Float("leaf_w_struct", 0.2),
		WStruct:     p.Float("w_struct", 0.2),
		ThAccept:    p.Float("th_accept", 0.3),
		ThHigh:      p.Float("th_high", 0.6),
		Thesaurus:   wordnet.Default(),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "cupid" }

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: column- and table-name
// tokens come from the profiles' caches instead of being re-tokenized per
// call.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path. Pass 1 (the linguistic similarity matrix, Cupid's dominant
// cost) fans out one source row at a time on the engine pool; pass 2 is a
// cheap sequential reduction over the matrices; the final wsim emission runs
// through the engine's pair scorer.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	th := m.Thesaurus
	if th == nil {
		th = wordnet.Default()
	}

	srcTok := tokenized(sp)
	tgtTok := tokenized(tp)

	// Pass 1: linguistic similarity and leaf structural similarity, row by
	// row on the pool — each row depends only on its own source column.
	nSrc, nTgt := len(source.Columns), len(target.Columns)
	lsim := make([][]float64, nSrc)
	leafS := make([][]float64, nSrc)
	rootLing := m.linguistic(th, sp.NameTokens(), tp.NameTokens())
	stats := engine.StatsFrom(ctx)
	var genErr error
	stats.Timed(engine.StageGenerate, func() {
		genErr = engine.Map(ctx, engine.OptionsFrom(ctx).Workers(), nSrc, func(i int) error {
			lsim[i] = make([]float64, nTgt)
			leafS[i] = make([]float64, nTgt)
			for j := range target.Columns {
				lsim[i][j] = m.linguistic(th, srcTok[i], tgtTok[j])
				// Leaf structural signal: data-type compatibility blended with
				// the linguistic similarity of the ancestors (the roots).
				leafS[i][j] = 0.5*typeCompat(source.Columns[i].Type, target.Columns[j].Type) + 0.5*rootLing
			}
			return nil
		})
	})
	if genErr != nil {
		return nil, genErr
	}

	// Pass 2: the mutually-recursive structural refinement, one round as in
	// the original tree walk: root structural similarity is the fraction of
	// strongly-linked leaf pairs, which then feeds back into leaf ssim.
	strong, total := 0, 0
	for i := 0; i < nSrc; i++ {
		for j := 0; j < nTgt; j++ {
			w := m.LeafWStruct*leafS[i][j] + (1-m.LeafWStruct)*lsim[i][j]
			if w >= m.ThHigh {
				strong++
			}
			total++
		}
	}
	rootStruct := 0.0
	if total > 0 {
		rootStruct = float64(strong) / float64(total)
	}

	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		ssim := 0.7*leafS[i][j] + 0.3*rootStruct
		wsim := m.WStruct*ssim + (1-m.WStruct)*lsim[i][j]
		return wsim, wsim >= m.ThAccept
	})
}

func tokenized(tp *profile.TableProfile) [][]string {
	out := make([][]string, tp.NumColumns())
	for i := range out {
		out[i] = tp.Column(i).NameTokens()
	}
	return out
}

// linguistic computes Cupid's name similarity over token sets: each token
// is matched to its best counterpart where token similarity is the maximum
// of thesaurus similarity and character-trigram similarity; the directional
// sums are combined symmetrically.
func (m *Matcher) linguistic(th *wordnet.Thesaurus, a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	best := func(from, to []string) float64 {
		sum := 0.0
		for _, x := range from {
			bx := 0.0
			for _, y := range to {
				s := tokenSim(th, x, y)
				if s > bx {
					bx = s
				}
			}
			sum += bx
		}
		return sum
	}
	return (best(a, b) + best(b, a)) / float64(len(a)+len(b))
}

func tokenSim(th *wordnet.Thesaurus, a, b string) float64 {
	if a == b {
		return 1
	}
	// Stemmed equality ("orders" vs "order") counts as a near-exact match,
	// mirroring the original's WordNet-side normalization.
	if strutil.Stem(a) == strutil.Stem(b) {
		return 0.95
	}
	s := th.Similarity(a, b)
	if g := strutil.TrigramSim(a, b); g > s {
		s = g
	}
	return s
}

// typeCompat is Cupid's data-type compatibility score.
func typeCompat(a, b table.Type) float64 {
	switch {
	case a == b:
		return 1
	case (a == table.Int || a == table.Float) && (b == table.Int || b == table.Float):
		return 0.9
	case a.Compatible(b):
		return 0.5
	default:
		return 0.2
	}
}

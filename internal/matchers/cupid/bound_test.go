package cupid

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

var fuzzNameVocab = []string{
	"customer", "id", "name", "order", "date", "price", "amount",
	"email", "zip", "code", "item", "status", "quantity", "address",
}

func fuzzTable(rng *rand.Rand, tname string) *table.Table {
	t := table.New(tname)
	cols := 1 + rng.Intn(4)
	rows := 4 + rng.Intn(15)
	for c := 0; c < cols; c++ {
		name := fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
		if rng.Intn(2) == 0 {
			name += "_" + fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
		}
		vals := make([]string, rows)
		numeric := rng.Intn(2) == 0
		for r := range vals {
			if numeric {
				vals[r] = fmt.Sprintf("%d", rng.Intn(900))
			} else {
				vals[r] = fmt.Sprintf("txt-%d", rng.Intn(40))
			}
		}
		t.AddColumn(fmt.Sprintf("%s%d", name, c), vals)
	}
	return t
}

// TestScoreBoundAdmissible fuzzes the admissibility contract: the bound
// chained from table-level component maxima through Cupid's own monotone
// wsim formula must dominate every score the matcher emits, across the
// Table II weight grid.
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	grids := []core.Params{
		nil, // defaults
		{"w_struct": 0.5, "leaf_w_struct": 0.5},
		{"w_struct": 0.6, "leaf_w_struct": 0.1, "th_accept": 0.1},
		{"th_accept": 0.5, "th_high": 0.4},
	}
	for trial := 0; trial < 60; trial++ {
		src := fuzzTable(rng, "orders")
		tgt := fuzzTable(rng, "order_items")
		mi, err := New(grids[trial%len(grids)])
		if err != nil {
			t.Fatal(err)
		}
		m := mi.(*Matcher)
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := m.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound {
				t.Fatalf("trial %d: score %v exceeds bound %v for %s~%s",
					trial, match.Score, bound, match.SourceColumn, match.TargetColumn)
			}
		}
	}
}

// TestScoreBoundBelowAcceptIsZero: shared tokens push the bound up, so a
// collapsed-to-zero bound must mean the matcher truly emits nothing.
func TestScoreBoundZeroMeansNoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	mi, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := mi.(*Matcher)
	for trial := 0; trial < 40; trial++ {
		src := fuzzTable(rng, "alpha")
		tgt := fuzzTable(rng, "beta")
		sp, tp := core.ProfilePair(nil, src, tgt)
		if m.ScoreBoundProfiles(sp, tp) != 0 {
			continue
		}
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 0 {
			t.Fatalf("trial %d: bound 0 but matcher emitted %d matches", trial, len(matches))
		}
	}
}

package cupid

// Cascade score bound. Cupid's wsim is a convex combination of components
// that are all maximized by table-level signals the bound can compute
// without the per-column-pair linguistic matrix (the matcher's dominant
// cost, quadratic in columns × tokens):
//
//   - lsim(i,j) averages per-token best matches, so it is at most the best
//     tokenSim over the cross product of ALL source column-name tokens ×
//     ALL target column-name tokens (each column's tokens are a subset).
//     tokenSim is evaluated exactly — same thesaurus, same trigram Dice —
//     over deduplicated tokens, so the token-level maximum M is an exact
//     matcher value, not an estimate.
//   - leafS(i,j) = 0.5·typeCompat + 0.5·rootLing is at most
//     0.5·maxTypeCompat + 0.5·rootLing; rootLing (one table-name
//     linguistic call) is computed exactly.
//   - rootStruct is a fraction of pairs whose strength
//     leafWStruct·leafS + (1−leafWStruct)·lsim reaches ThHigh; if even the
//     maximal strength misses ThHigh, rootStruct is exactly 0, otherwise
//     it is at most 1.
//
// Every combination step is monotone in its components for weights in
// [0, 1] (the Table II grids stay within 0–0.6), so chaining the component
// maxima through the same formulas bounds wsim. Scores below ThAccept are
// never emitted, so a wsim bound under ThAccept collapses to 0 — the
// common case for junk candidates with no token affinity.

import (
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
	"valentine/internal/wordnet"
)

// boundSlack absorbs float rounding in the summed-average comparison
// lsim ≤ M (the only step that is not exactly monotone in float
// arithmetic); one part in 10⁹ dwarfs the worst-case accumulation.
const boundSlack = 1 + 1e-9

// ScoreBoundProfiles implements core.ScoreBounder (see the derivation
// above). It reads cached name tokens and column types only.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	if m.LeafWStruct < 0 || m.LeafWStruct > 1 || m.WStruct < 0 || m.WStruct > 1 {
		return 1 // off-grid weights break monotonicity; stay conservative
	}
	th := m.Thesaurus
	if th == nil {
		th = wordnet.Default()
	}

	rootLing := m.linguistic(th, sp.NameTokens(), tp.NameTokens())
	maxTC := maxTypeCompat(sp.Table(), tp.Table())
	M := maxTokenSim(th, columnTokens(sp), columnTokens(tp))

	leafSMax := 0.5*maxTC + 0.5*rootLing
	rootStructUB := 0.0
	if (m.LeafWStruct*leafSMax+(1-m.LeafWStruct)*M)*boundSlack >= m.ThHigh {
		rootStructUB = 1
	}
	ssimMax := 0.7*leafSMax + 0.3*rootStructUB
	bound := (m.WStruct*ssimMax + (1-m.WStruct)*M) * boundSlack
	if bound < m.ThAccept {
		return 0 // nothing reaches the accept threshold, nothing is emitted
	}
	return bound
}

// columnTokens returns the deduplicated name tokens across all columns.
func columnTokens(tp *profile.TableProfile) map[string]struct{} {
	out := make(map[string]struct{}, tp.NumColumns()*2)
	for _, p := range tp.Columns() {
		for tok := range p.NameTokenSet() {
			out[tok] = struct{}{}
		}
	}
	return out
}

// maxTokenSim is the exact maximum tokenSim over the token cross product,
// with trigram sets memoized per distinct token. A shared token short-
// circuits to 1 (tokenSim's own maximum).
func maxTokenSim(th *wordnet.Thesaurus, src, tgt map[string]struct{}) float64 {
	small, large := src, tgt
	if len(tgt) < len(src) {
		small, large = tgt, src
	}
	for tok := range small {
		if _, ok := large[tok]; ok {
			return 1
		}
	}
	grams := make(map[string]map[string]struct{}, len(src)+len(tgt))
	gramsOf := func(tok string) map[string]struct{} {
		g, ok := grams[tok]
		if !ok {
			g = strutil.NGrams(tok, 3)
			grams[tok] = g
		}
		return g
	}
	best := 0.0
	for x := range src {
		sx := strutil.Stem(x)
		for y := range tgt {
			if sx == strutil.Stem(y) {
				if best < 0.95 {
					best = 0.95
				}
				continue
			}
			s := th.Similarity(x, y)
			if g := strutil.DiceSets(gramsOf(x), gramsOf(y)); g > s {
				s = g
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

// maxTypeCompat is the exact maximum typeCompat over the distinct type
// pairs of the two tables.
func maxTypeCompat(source, target *table.Table) float64 {
	srcTypes := make(map[table.Type]struct{}, 4)
	for i := range source.Columns {
		srcTypes[source.Columns[i].Type] = struct{}{}
	}
	tgtTypes := make(map[table.Type]struct{}, 4)
	for i := range target.Columns {
		tgtTypes[target.Columns[i].Type] = struct{}{}
	}
	best := 0.0
	for a := range srcTypes {
		for b := range tgtTypes {
			if tc := typeCompat(a, b); tc > best {
				best = tc
			}
		}
	}
	return best
}

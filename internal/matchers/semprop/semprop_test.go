package semprop

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/datagen"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/profile"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "semprop" {
		t.Error("name")
	}
}

func TestChEMBLColumnsLinkToOntology(t *testing.T) {
	src := datagen.ChEMBL(datagen.Options{Rows: 40})
	m := newM(t, nil).(*Matcher)
	classVecs := m.classVectors()
	links := m.linkColumns(profile.New(src), classVecs)
	linked := 0
	for _, l := range links {
		if len(l) > 0 {
			linked++
		}
	}
	if linked < 3 {
		t.Errorf("only %d/%d ChEMBL columns link to the EFO-like ontology, want ≥ 3", linked, len(links))
	}
}

func TestSemanticBandRanksLinkedPairs(t *testing.T) {
	// Columns with ontology-aligned names should relate semantically even
	// with disjoint values.
	src := table.New("assays_a")
	src.AddColumn("organism", []string{"Homo sapiens", "Mus musculus"})
	src.AddColumn("potency", []string{"12.5", "99.0"})
	tgt := table.New("assays_b")
	tgt.AddColumn("species", []string{"Rattus norvegicus", "Canis familiaris"})
	tgt.AddColumn("activity", []string{"1.1", "2.2"})
	ms, err := newM(t, core.Params{"sem_threshold": 0.4}).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	score := map[[2]string]float64{}
	for _, m := range ms {
		score[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if score[[2]string{"organism", "species"}] <= score[[2]string{"organism", "activity"}] {
		t.Errorf("organism~species %.3f should beat organism~activity %.3f",
			score[[2]string{"organism", "species"}], score[[2]string{"organism", "activity"}])
	}
}

func TestSyntacticFallbackUsesValueOverlap(t *testing.T) {
	// Names outside the ontology with heavy value overlap should still
	// rank through the MinHash fallback.
	vals := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
	src := table.New("x")
	src.AddColumn("colp", vals)
	src.AddColumn("colq", []string{"1", "2", "3", "4", "5", "6", "7", "8"})
	tgt := table.New("y")
	tgt.AddColumn("colr", vals)
	tgt.AddColumn("cols", []string{"9", "10", "11", "12", "13", "14", "15", "16"})
	ms, err := newM(t, nil).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	score := map[[2]string]float64{}
	for _, m := range ms {
		score[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if score[[2]string{"colp", "colr"}] <= score[[2]string{"colp", "cols"}] {
		t.Errorf("value-overlap pair should win the fallback band: %.3f vs %.3f",
			score[[2]string{"colp", "colr"}], score[[2]string{"colp", "cols"}])
	}
}

func TestChEMBLFabricatedRunEndToEnd(t *testing.T) {
	f := fabrication.New(3)
	pair, err := f.Joinable(datagen.ChEMBL(datagen.Options{Rows: 60}), 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	r := matchertest.Recall(t, newM(t, nil), pair)
	if r < 0 || r > 1 {
		t.Fatalf("recall out of range: %v", r)
	}
}

func TestSignatureJaccard(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	if got := signatureJaccard(a, a); got != 1 {
		t.Errorf("identical = %v", got)
	}
	b := []uint64{1, 2, 9, 9}
	if got := signatureJaccard(a, b); got != 0.5 {
		t.Errorf("half = %v", got)
	}
	if got := signatureJaccard(a, []uint64{1}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
	empty := []uint64{^uint64(0), ^uint64(0)}
	if got := signatureJaccard(empty, empty); got != 0 {
		t.Errorf("empty-column signatures should not match: %v", got)
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisySchema: true})
		matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

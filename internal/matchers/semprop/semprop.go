// Package semprop reimplements the SemProp matcher (Fernandez et al., ICDE
// 2018, "Seeping Semantics"): a semantic matcher links attribute and table
// names to ontology classes through word-embedding similarity and relates
// columns whose classes coincide or sit close in the ontology; pairs the
// semantic matcher cannot relate fall through to a syntactic matcher over
// MinHash value signatures.
//
// The pre-trained embeddings come from embedding.Pretrained (the fastText
// stand-in, DESIGN.md §4) and the ontology defaults to the EFO-like
// ontology shipped with the ChEMBL-like datasets.
package semprop

import (
	"context"
	"sync"

	"valentine/internal/core"
	"valentine/internal/embedding"
	"valentine/internal/engine"
	"valentine/internal/ontology"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Matcher is a configured SemProp instance.
type Matcher struct {
	SemThreshold    float64 // name→class link threshold (Table II: 0.4–0.6)
	CohSemThreshold float64 // column-pair semantic coherence threshold (0.2–0.4)
	MinhashThresh   float64 // syntactic signature threshold (0.2–0.3)
	Onto            *ontology.Ontology
	Emb             *embedding.Pretrained
	signatureSize   int

	// The ontology class vectors depend only on the matcher's configuration
	// and the per-profile class links only on the (immutable) profile, so
	// both memoize: one request links each table once, shared between the
	// cascade's score bound and the full scoring path.
	classVecsOnce sync.Once
	classVecs     map[string]embedding.Vector
	linkCache     sync.Map // *profile.TableProfile → [][]classLink
}

// New builds SemProp from params: "sem_threshold" (default 0.5),
// "coh_sem_threshold" (default 0.3), "minhash_threshold" (default 0.25),
// "dims" (embedding size, default 64), "signature" (MinHash size, default
// 64).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		SemThreshold:    p.Float("sem_threshold", 0.5),
		CohSemThreshold: p.Float("coh_sem_threshold", 0.3),
		MinhashThresh:   p.Float("minhash_threshold", 0.25),
		Onto:            ontology.EFO(),
		Emb:             embedding.NewPretrained(p.Int("dims", 64), nil),
		signatureSize:   p.Int("signature", profile.CompactSignature),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "semprop" }

// classLink is a column's link into the ontology.
type classLink struct {
	classID string
	cos     float64
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: name tokens and MinHash
// signatures come from the profiles' caches instead of being recomputed per
// call.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: ontology linking is the generate stage, then the
// semantic/syntactic pair scoring fans out on the engine pool.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	var (
		srcLinks, tgtLinks [][]classLink
		srcSigs, tgtSigs   [][]uint64
	)
	engine.StatsFrom(ctx).Timed(engine.StageGenerate, func() {
		srcLinks = m.cachedLinks(sp)
		tgtLinks = m.cachedLinks(tp)
		srcSigs = m.signatures(sp)
		tgtSigs = m.signatures(tp)
	})
	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		sem := m.semanticScore(srcLinks[i], tgtLinks[j])
		var score float64
		if sem >= m.CohSemThreshold {
			// semantic band: [0.5, 1]
			score = 0.5 + 0.5*sem
		} else {
			// syntactic fallback band: [0, 0.5)
			// Pairs the semantic matcher cannot relate and whose value
			// signatures miss the MinHash threshold score zero — SemProp
			// has no further signal, which is precisely why the paper
			// finds it ineffective outside its ontology's coverage.
			jac := signatureJaccard(srcSigs[i], tgtSigs[j])
			if jac >= m.MinhashThresh {
				score = 0.5 * jac
			}
		}
		return score, true
	})
}

// classVectors embeds every ontology class's label words.
func (m *Matcher) classVectors() map[string]embedding.Vector {
	out := make(map[string]embedding.Vector, m.Onto.NumClasses())
	for _, c := range m.Onto.Classes() {
		out[c.ID] = m.Emb.TextVector(c.LabelWords())
	}
	return out
}

// linkColumns links each column to its best ontology classes above the
// semantic threshold, embedding the cached table-name and column-name
// tokens.
func (m *Matcher) linkColumns(tprof *profile.TableProfile, classVecs map[string]embedding.Vector) [][]classLink {
	out := make([][]classLink, tprof.NumColumns())
	tableTokens := tprof.NameTokens()
	for i := range out {
		tokens := append(append([]string{}, tableTokens...), tprof.Column(i).NameTokens()...)
		v := m.Emb.TextVector(tokens)
		var links []classLink
		for _, c := range m.Onto.Classes() {
			cos := embedding.Cosine(v, classVecs[c.ID])
			if cos >= m.SemThreshold {
				links = append(links, classLink{classID: c.ID, cos: cos})
			}
		}
		out[i] = links
	}
	return out
}

// semanticScore relates two columns through their class links: same class →
// min of the two link strengths; ontology-related classes (≤ 2 hops) → the
// same, damped.
func (m *Matcher) semanticScore(a, b []classLink) float64 {
	best := 0.0
	for _, la := range a {
		for _, lb := range b {
			s := la.cos
			if lb.cos < s {
				s = lb.cos
			}
			switch {
			case la.classID == lb.classID:
				// direct coincidence
			case m.Onto.Related(la.classID, lb.classID, 2):
				s *= 0.8
			default:
				continue
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

// signatures collects each column's cached MinHash signature at SemProp's
// configured length (the shared implementation in internal/profile, so the
// estimates agree with every other signature consumer in the suite).
func (m *Matcher) signatures(tprof *profile.TableProfile) [][]uint64 {
	k := m.signatureSize
	if k <= 0 {
		k = profile.CompactSignature
	}
	out := make([][]uint64, tprof.NumColumns())
	for i := range out {
		out[i] = tprof.Column(i).Signature(k)
	}
	return out
}

// signatureJaccard estimates Jaccard similarity from two MinHash
// signatures.
func signatureJaccard(a, b []uint64) float64 {
	return profile.EstimateJaccard(a, b)
}

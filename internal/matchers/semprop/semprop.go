// Package semprop reimplements the SemProp matcher (Fernandez et al., ICDE
// 2018, "Seeping Semantics"): a semantic matcher links attribute and table
// names to ontology classes through word-embedding similarity and relates
// columns whose classes coincide or sit close in the ontology; pairs the
// semantic matcher cannot relate fall through to a syntactic matcher over
// MinHash value signatures.
//
// The pre-trained embeddings come from embedding.Pretrained (the fastText
// stand-in, DESIGN.md §4) and the ontology defaults to the EFO-like
// ontology shipped with the ChEMBL-like datasets.
package semprop

import (
	"hash/fnv"

	"valentine/internal/core"
	"valentine/internal/embedding"
	"valentine/internal/ontology"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Matcher is a configured SemProp instance.
type Matcher struct {
	SemThreshold    float64 // name→class link threshold (Table II: 0.4–0.6)
	CohSemThreshold float64 // column-pair semantic coherence threshold (0.2–0.4)
	MinhashThresh   float64 // syntactic signature threshold (0.2–0.3)
	Onto            *ontology.Ontology
	Emb             *embedding.Pretrained
	signatureSize   int
}

// New builds SemProp from params: "sem_threshold" (default 0.5),
// "coh_sem_threshold" (default 0.3), "minhash_threshold" (default 0.25),
// "dims" (embedding size, default 64), "signature" (MinHash size, default
// 64).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		SemThreshold:    p.Float("sem_threshold", 0.5),
		CohSemThreshold: p.Float("coh_sem_threshold", 0.3),
		MinhashThresh:   p.Float("minhash_threshold", 0.25),
		Onto:            ontology.EFO(),
		Emb:             embedding.NewPretrained(p.Int("dims", 64), nil),
		signatureSize:   p.Int("signature", 64),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "semprop" }

// classLink is a column's link into the ontology.
type classLink struct {
	classID string
	cos     float64
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	if err := source.Validate(); err != nil {
		return nil, err
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	classVecs := m.classVectors()
	srcLinks := m.linkColumns(source, classVecs)
	tgtLinks := m.linkColumns(target, classVecs)
	srcSigs := m.signatures(source)
	tgtSigs := m.signatures(target)

	var out []core.Match
	for i := range source.Columns {
		for j := range target.Columns {
			sem := m.semanticScore(srcLinks[i], tgtLinks[j])
			var score float64
			if sem >= m.CohSemThreshold {
				// semantic band: [0.5, 1]
				score = 0.5 + 0.5*sem
			} else {
				// syntactic fallback band: [0, 0.5)
				// Pairs the semantic matcher cannot relate and whose value
				// signatures miss the MinHash threshold score zero — SemProp
				// has no further signal, which is precisely why the paper
				// finds it ineffective outside its ontology's coverage.
				jac := signatureJaccard(srcSigs[i], tgtSigs[j])
				if jac >= m.MinhashThresh {
					score = 0.5 * jac
				}
			}
			out = append(out, core.Match{
				SourceTable:  source.Name,
				SourceColumn: source.Columns[i].Name,
				TargetTable:  target.Name,
				TargetColumn: target.Columns[j].Name,
				Score:        score,
			})
		}
	}
	core.SortMatches(out)
	return out, nil
}

// classVectors embeds every ontology class's label words.
func (m *Matcher) classVectors() map[string]embedding.Vector {
	out := make(map[string]embedding.Vector, m.Onto.NumClasses())
	for _, c := range m.Onto.Classes() {
		out[c.ID] = m.Emb.TextVector(c.LabelWords())
	}
	return out
}

// linkColumns links each column of t to its best ontology classes above the
// semantic threshold, embedding the table-name and column-name tokens.
func (m *Matcher) linkColumns(t *table.Table, classVecs map[string]embedding.Vector) [][]classLink {
	out := make([][]classLink, len(t.Columns))
	tableTokens := strutil.Tokenize(t.Name)
	for i := range t.Columns {
		tokens := append(append([]string{}, tableTokens...), strutil.Tokenize(t.Columns[i].Name)...)
		v := m.Emb.TextVector(tokens)
		var links []classLink
		for _, c := range m.Onto.Classes() {
			cos := embedding.Cosine(v, classVecs[c.ID])
			if cos >= m.SemThreshold {
				links = append(links, classLink{classID: c.ID, cos: cos})
			}
		}
		out[i] = links
	}
	return out
}

// semanticScore relates two columns through their class links: same class →
// min of the two link strengths; ontology-related classes (≤ 2 hops) → the
// same, damped.
func (m *Matcher) semanticScore(a, b []classLink) float64 {
	best := 0.0
	for _, la := range a {
		for _, lb := range b {
			s := la.cos
			if lb.cos < s {
				s = lb.cos
			}
			switch {
			case la.classID == lb.classID:
				// direct coincidence
			case m.Onto.Related(la.classID, lb.classID, 2):
				s *= 0.8
			default:
				continue
			}
			if s > best {
				best = s
			}
		}
	}
	return best
}

// signatures computes MinHash signatures of each column's distinct values.
func (m *Matcher) signatures(t *table.Table) [][]uint64 {
	k := m.signatureSize
	if k <= 0 {
		k = 64
	}
	out := make([][]uint64, len(t.Columns))
	for i := range t.Columns {
		sig := make([]uint64, k)
		for s := range sig {
			sig[s] = ^uint64(0)
		}
		for v := range t.Columns[i].DistinctValues() {
			h := fnv.New64a()
			h.Write([]byte(v))
			base := h.Sum64()
			for s := 0; s < k; s++ {
				hv := mix(base, uint64(s))
				if hv < sig[s] {
					sig[s] = hv
				}
			}
		}
		out[i] = sig
	}
	return out
}

// signatureJaccard estimates Jaccard similarity from two MinHash
// signatures.
func signatureJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] && a[i] != ^uint64(0) {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

func mix(x, salt uint64) uint64 {
	x ^= salt * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

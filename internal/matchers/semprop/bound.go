package semprop

// Cascade score bound. SemProp scores in two disjoint bands: the semantic
// band 0.5 + 0.5·sem for pairs whose class-link coherence sem reaches
// CohSemThreshold, and the syntactic band 0.5·jac (< 0.5) otherwise. Both
// bands bound from table-level maxima of the matcher's own exact signals:
//
//   - sem is min(la.cos, lb.cos) over a pair of class links, optionally
//     damped ×0.8 — so it never exceeds min(maxCos(source), maxCos(target)),
//     the strongest link each side has at all. If that cap misses
//     CohSemThreshold, no pair can enter the semantic band.
//   - outside the semantic band a score is 0.5·jac with jac the MinHash
//     Jaccard estimate over cached signatures, zero below MinhashThresh —
//     bounded by the maximum pairwise estimate, computed from the same
//     cached signatures the matcher scores with.
//
// Every comparison chains the matcher's exact values (no re-derived
// arithmetic), so no float slack is needed. The class links themselves
// memoize per profile (cachedLinks), so the bound prepays work the full
// scoring path reuses instead of duplicating it.

import (
	"valentine/internal/embedding"
	"valentine/internal/profile"
)

// classVectorsCached memoizes the ontology class embeddings: they depend
// only on the matcher configuration, never on the tables.
func (m *Matcher) classVectorsCached() map[string]embedding.Vector {
	m.classVecsOnce.Do(func() { m.classVecs = m.classVectors() })
	return m.classVecs
}

// cachedLinks memoizes linkColumns per profile. Concurrent first calls may
// both compute (the result is deterministic); LoadOrStore keeps one.
func (m *Matcher) cachedLinks(tprof *profile.TableProfile) [][]classLink {
	if v, ok := m.linkCache.Load(tprof); ok {
		return v.([][]classLink)
	}
	links := m.linkColumns(tprof, m.classVectorsCached())
	actual, _ := m.linkCache.LoadOrStore(tprof, links)
	return actual.([][]classLink)
}

// maxLinkCos is the strongest class-link strength across all columns.
func maxLinkCos(links [][]classLink) float64 {
	best := 0.0
	for _, col := range links {
		for _, l := range col {
			if l.cos > best {
				best = l.cos
			}
		}
	}
	return best
}

// ScoreBoundProfiles implements core.ScoreBounder (see the derivation
// above).
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	semUB := maxLinkCos(m.cachedLinks(sp))
	if t := maxLinkCos(m.cachedLinks(tp)); t < semUB {
		semUB = t
	}
	if semUB >= m.CohSemThreshold {
		// The syntactic band stays below 0.5, so this bound covers it too.
		return 0.5 + 0.5*semUB
	}
	// No pair can reach the semantic band; the best syntactic score decides.
	srcSigs := m.signatures(sp)
	tgtSigs := m.signatures(tp)
	jacMax := 0.0
	for _, a := range srcSigs {
		for _, b := range tgtSigs {
			if jac := signatureJaccard(a, b); jac > jacMax {
				jacMax = jac
			}
		}
	}
	if jacMax >= m.MinhashThresh {
		return 0.5 * jacMax
	}
	return 0
}

package semprop

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

// The fuzz vocabulary mixes EFO-ish terms (which link into the ontology and
// exercise the semantic band) with junk names (which fall through to the
// syntactic band or to zero).
var fuzzNameVocab = []string{
	"assay", "compound", "target", "protein", "measurement", "concentration",
	"potency", "publication", "identifier", "date", "unit", "organism",
	"foo", "bar", "widget", "zz", "payload",
}

func fuzzTable(rng *rand.Rand, tname string, vocab int) *table.Table {
	t := table.New(tname)
	cols := 1 + rng.Intn(4)
	rows := 5 + rng.Intn(25)
	for c := 0; c < cols; c++ {
		name := fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
		if rng.Intn(3) == 0 {
			name += "_" + fuzzNameVocab[rng.Intn(len(fuzzNameVocab))]
		}
		vals := make([]string, rows)
		for r := range vals {
			vals[r] = fmt.Sprintf("v%d", rng.Intn(vocab))
		}
		t.AddColumn(fmt.Sprintf("%s%d", name, c), vals)
	}
	return t
}

// TestScoreBoundAdmissible fuzzes the admissibility contract: the two-band
// bound (link-strength cap for the semantic band, max signature Jaccard for
// the syntactic one) must dominate every score the matcher emits.
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	params := []core.Params{
		nil,
		{"sem_threshold": 0.4, "coh_sem_threshold": 0.2, "minhash_threshold": 0.2},
		{"sem_threshold": 0.6, "coh_sem_threshold": 0.4, "minhash_threshold": 0.3},
	}
	for trial := 0; trial < 50; trial++ {
		mi, err := New(params[trial%len(params)])
		if err != nil {
			t.Fatal(err)
		}
		m := mi.(*Matcher)
		src := fuzzTable(rng, "assays", 20+rng.Intn(40))
		tgt := fuzzTable(rng, "compounds", 20+rng.Intn(40))
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := m.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound {
				t.Fatalf("trial %d: score %v exceeds bound %v for %s~%s",
					trial, match.Score, bound, match.SourceColumn, match.TargetColumn)
			}
		}
	}
}

// TestLinkCacheSharedAcrossCalls: the bound and the full scoring path must
// see the same memoized links — the memoization is what makes the bound
// prepay rather than duplicate the ontology linking.
func TestLinkCacheSharedAcrossCalls(t *testing.T) {
	mi, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m := mi.(*Matcher)
	rng := rand.New(rand.NewSource(20))
	src := fuzzTable(rng, "assays", 30)
	sp, _ := core.ProfilePair(nil, src, fuzzTable(rng, "other", 30))
	first := m.cachedLinks(sp)
	second := m.cachedLinks(sp)
	if len(first) != len(second) {
		t.Fatalf("cached links changed shape: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if len(first[i]) != len(second[i]) {
			t.Fatalf("column %d links not memoized", i)
		}
	}
}

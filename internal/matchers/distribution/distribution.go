// Package distribution reimplements the Distribution-based matcher (Zhang,
// Hadjieleftheriou, Ooi et al., SIGMOD 2011): attribute relationships are
// discovered by comparing value distributions with the Earth Mover's
// Distance, in two phases — a cheap quantile-histogram pass that builds
// candidate clusters (threshold θ₁) and a refinement pass on the full rank
// distributions (threshold θ₂) — followed by a cluster-consolidation
// integer program (the original used CPLEX/PuLP; internal/lp here).
//
// Adaptation for Valentine's ranked-output protocol: every cross-table
// column pair is scored 1/(1+EMD); pairs surviving both phases rank above
// the rest, and pairs selected by the consolidation ILP receive the top
// scores. Values of string columns enter the distribution through their
// global rank in the sorted union of all observed values, as in the
// original's treatment of categorical data.
package distribution

import (
	"context"
	"sort"
	"strings"
	"time"

	"valentine/internal/core"
	"valentine/internal/emd"
	"valentine/internal/engine"
	"valentine/internal/lp"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Matcher is a configured distribution-based instance.
type Matcher struct {
	Theta1    float64 // phase-1 quantile-EMD threshold (Table II: 0.1–0.5)
	Theta2    float64 // phase-2 refined-EMD threshold (Table II: 0.1–0.5)
	Quantiles int     // phase-1 histogram resolution (default 20)
	MaxSample int     // phase-2 rank-sample cap per column (default 300)
}

// New builds the matcher from params: "theta1" (default 0.15), "theta2"
// (default 0.15), "quantiles" (default 20), "max_sample" (default 300).
func New(p core.Params) (core.Matcher, error) {
	return &Matcher{
		Theta1:    p.Float("theta1", 0.15),
		Theta2:    p.Float("theta2", 0.15),
		Quantiles: p.Int("quantiles", 20),
		MaxSample: p.Int("max_sample", 300),
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string { return "distribution-based" }

// pairKey indexes a cross-table column pair by column indices.
type pairKey struct{ i, j int }

type columnDist struct {
	table  string
	name   string
	source bool      // true when the column belongs to the source table
	ranks  []float64 // normalized ranks of this column's values, sorted
	quant  []float64 // quantile sketch of ranks
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: the global value universe
// is built from each profile's cached parsed distinct values (trim, lower,
// numeric parse happen once per column, not once per Match call).
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path, and the matcher whose phases map onto the engine pipeline
// most literally: distribution construction is the generate stage, the
// phase-1 quantile-sketch EMD is the prune stage (both EMD sweeps fan out on
// the pool), the phase-2 refinement over full rank distributions is the
// score stage, and consolidation + sort are the rank stage.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	source, target := sp.Table(), tp.Table()
	stats := engine.StatsFrom(ctx)
	workers := engine.OptionsFrom(ctx).Workers()
	var cols []columnDist
	stats.Timed(engine.StageGenerate, func() {
		cols = m.buildDistributions(sp, tp)
	})

	// Phase 1: quantile-EMD between every cross-table pair; candidate pairs
	// have EMD ≤ θ₁. One pool unit per source column.
	var srcIdx, tgtIdx []int
	for i, c := range cols {
		if c.source {
			srcIdx = append(srcIdx, i)
		} else {
			tgtIdx = append(tgtIdx, i)
		}
	}
	stats.AddCandidates(int64(len(srcIdx)) * int64(len(tgtIdx)))
	emd1 := make(map[pairKey]float64, len(srcIdx)*len(tgtIdx))
	rows1 := make([][]float64, len(srcIdx))
	start := time.Now()
	err := engine.Map(ctx, workers, len(srcIdx), func(si int) error {
		row := make([]float64, len(tgtIdx))
		for tj, j := range tgtIdx {
			row[tj] = emd.Samples1D(cols[srcIdx[si]].quant, cols[j].quant)
		}
		rows1[si] = row
		return nil
	})
	stats.Observe(engine.StagePrune, time.Since(start))
	if err != nil {
		return nil, err
	}
	// Candidate pairs surviving θ₁, in the row-major order the sequential
	// loop visited them.
	var cand []pairKey
	for si, i := range srcIdx {
		for tj, j := range tgtIdx {
			emd1[pairKey{i, j}] = rows1[si][tj]
			if rows1[si][tj] <= m.Theta1 {
				cand = append(cand, pairKey{i, j})
			}
		}
	}
	stats.AddPruned(int64(len(srcIdx)*len(tgtIdx) - len(cand)))

	// Phase 2: refine candidates on the full rank distributions, one pool
	// unit per surviving pair (the quadratic EMD is the expensive part).
	refined := make([]float64, len(cand))
	start = time.Now()
	err = engine.Map(ctx, workers, len(cand), func(c int) error {
		refined[c] = emd.Samples1D(cols[cand[c].i].ranks, cols[cand[c].j].ranks)
		return nil
	})
	stats.Observe(engine.StageScore, time.Since(start))
	if err != nil {
		return nil, err
	}
	stats.AddScored(int64(len(cand)))
	emd2 := make(map[pairKey]float64, len(cand))
	for c, k := range cand {
		emd2[k] = refined[c]
	}

	// Consolidation ILP per connected component of the surviving graph:
	// pick a 1-1 assignment maximizing total similarity; its pairs receive
	// the top scores.
	var out []core.Match
	stats.Timed(engine.StageRank, func() {
		selected := m.consolidate(cols, srcIdx, tgtIdx, emd2)
		for _, i := range srcIdx {
			for _, j := range tgtIdx {
				k := pairKey{i, j}
				d := emd1[k]
				score := 0.5 / (1 + d) // not clustered: bottom band
				if d2, ok := emd2[k]; ok && d2 <= m.Theta2 {
					score = 0.8 / (1 + d2) // co-clustered: middle band
					if selected[[2]string{cols[i].name, cols[j].name}] {
						score = 1 / (1 + d2) // ILP-selected: top band
					}
				}
				out = append(out, core.Match{
					SourceTable:  source.Name,
					SourceColumn: cols[i].name,
					TargetTable:  target.Name,
					TargetColumn: cols[j].name,
					Score:        score,
				})
			}
		}
		core.SortMatches(out)
	})
	return out, nil
}

// buildDistributions computes the global value ranking over both tables and
// each column's normalized rank distribution plus quantile sketch.
func (m *Matcher) buildDistributions(sp, tp *profile.TableProfile) []columnDist {
	// Global ordered universe: numerics by value first, then strings
	// lexicographically (case-folded). The per-value derived forms come from
	// the profiles' caches.
	type valueKey struct {
		isNum bool
		num   float64
		str   string
	}
	universe := make(map[string]valueKey)
	collect := func(tprof *profile.TableProfile) {
		for _, p := range tprof.Columns() {
			for _, pv := range p.ParsedDistinct() {
				if _, seen := universe[pv.Value]; seen {
					continue
				}
				if pv.IsNum {
					universe[pv.Value] = valueKey{isNum: true, num: pv.Num}
				} else {
					universe[pv.Value] = valueKey{str: pv.Lower}
				}
			}
		}
	}
	collect(sp)
	collect(tp)
	keys := make([]string, 0, len(universe))
	for v := range universe {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := universe[keys[a]], universe[keys[b]]
		if ka.isNum != kb.isNum {
			return ka.isNum
		}
		if ka.isNum {
			if ka.num != kb.num {
				return ka.num < kb.num
			}
			return keys[a] < keys[b]
		}
		if ka.str != kb.str {
			return ka.str < kb.str
		}
		return keys[a] < keys[b]
	})
	rank := make(map[string]float64, len(keys))
	denom := float64(len(keys) - 1)
	if denom <= 0 {
		denom = 1
	}
	for i, v := range keys {
		rank[v] = float64(i) / denom
	}

	quantiles := m.Quantiles
	if quantiles < 2 {
		quantiles = 20
	}
	maxSample := m.MaxSample
	if maxSample < 10 {
		maxSample = 300
	}
	var cols []columnDist
	add := func(tprof *profile.TableProfile, isSource bool) {
		t := tprof.Table()
		for _, c := range t.Columns {
			ranks := make([]float64, 0, len(c.Values))
			for _, v := range c.Values {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
				ranks = append(ranks, rank[v])
			}
			sort.Float64s(ranks)
			cols = append(cols, columnDist{
				table:  t.Name,
				name:   c.Name,
				source: isSource,
				ranks:  downsample(ranks, maxSample),
				quant:  quantileSketch(ranks, quantiles),
			})
		}
	}
	add(sp, true)
	add(tp, false)
	return cols
}

// consolidate solves, per connected component of the phase-2 graph, the 0/1
// assignment program maximizing total similarity with each column matched
// at most once, and returns the selected (source,target) name pairs.
func (m *Matcher) consolidate(cols []columnDist, srcIdx, tgtIdx []int, emd2 map[pairKey]float64) map[[2]string]bool {
	// Surviving edges.
	var edges []pairKey
	for k, d := range emd2 {
		if d <= m.Theta2 {
			edges = append(edges, k)
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	// Union-find over column indices.
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		if p, ok := parent[x]; ok && p != x {
			parent[x] = find(p)
			return parent[x]
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range edges {
		union(e.i, e.j)
	}
	byComp := make(map[int][]pairKey)
	for _, e := range edges {
		byComp[find(e.i)] = append(byComp[find(e.i)], e)
	}
	roots := make([]int, 0, len(byComp))
	for r := range byComp {
		roots = append(roots, r)
	}
	sort.Ints(roots)

	selected := make(map[[2]string]bool)
	for _, root := range roots {
		comp := byComp[root]
		if len(comp) == 1 {
			e := comp[0]
			selected[[2]string{cols[e.i].name, cols[e.j].name}] = true
			continue
		}
		if len(comp) > 48 {
			// Degenerate component: fall back to greedy by similarity.
			sort.Slice(comp, func(a, b int) bool { return emd2[comp[a]] < emd2[comp[b]] })
			usedI, usedJ := map[int]bool{}, map[int]bool{}
			for _, e := range comp {
				if usedI[e.i] || usedJ[e.j] {
					continue
				}
				usedI[e.i], usedJ[e.j] = true, true
				selected[[2]string{cols[e.i].name, cols[e.j].name}] = true
			}
			continue
		}
		// MaxNodes bounds the worst case on dense components; the solver
		// then returns its best incumbent assignment (anytime behaviour).
		prob := lp.Problem{NumVars: len(comp), Objective: make([]float64, len(comp)), MaxNodes: 20_000}
		perI := make(map[int][]int)
		perJ := make(map[int][]int)
		for v, e := range comp {
			prob.Objective[v] = 1 / (1 + emd2[e])
			perI[e.i] = append(perI[e.i], v)
			perJ[e.j] = append(perJ[e.j], v)
		}
		for _, vars := range perI {
			coeffs := make(map[int]float64, len(vars))
			for _, v := range vars {
				coeffs[v] = 1
			}
			prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: coeffs, Op: lp.LE, RHS: 1})
		}
		for _, vars := range perJ {
			coeffs := make(map[int]float64, len(vars))
			for _, v := range vars {
				coeffs[v] = 1
			}
			prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: coeffs, Op: lp.LE, RHS: 1})
		}
		sol, err := lp.Solve(prob)
		if err != nil {
			continue // defensive: an LE-only program is always feasible
		}
		for v, on := range sol.X {
			if on {
				e := comp[v]
				selected[[2]string{cols[e.i].name, cols[e.j].name}] = true
			}
		}
	}
	return selected
}

func downsample(sorted []float64, max int) []float64 {
	if len(sorted) <= max {
		return sorted
	}
	out := make([]float64, max)
	step := float64(len(sorted)-1) / float64(max-1)
	for i := range out {
		out[i] = sorted[int(float64(i)*step)]
	}
	return out
}

// quantileSketch returns q evenly spaced quantiles of a sorted sample; an
// empty sample maps to a zero sketch so EMD comparisons stay defined.
func quantileSketch(sorted []float64, q int) []float64 {
	out := make([]float64, q)
	if len(sorted) == 0 {
		return out
	}
	for i := 0; i < q; i++ {
		pos := float64(i) / float64(q-1) * float64(len(sorted)-1)
		lo := int(pos)
		hi := lo
		if hi+1 < len(sorted) {
			hi++
		}
		frac := pos - float64(lo)
		out[i] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return out
}

package distribution

import (
	"math"
	"sort"

	"valentine/internal/profile"
	"valentine/internal/table"
)

// Cascade hook: the distribution matcher exposes an admissible score bound
// built from cached numeric column statistics, so the planner can prune the
// expensive two-phase EMD pipeline (27000µs cost hint — the tail of every
// cascade) on pairs whose value ranges are provably far apart.
//
// Admissibility argument. Every emitted score is c/(1+d) with c ∈
// {0.5, 0.8, 1} and d an EMD in the global rank space, so the score is
// decreasing in d and any lower bound L on d caps the score. Both phases'
// distributions live inside a column's rank-support hull: the quantile
// sketch interpolates between sorted rank samples and the phase-2
// downsample selects a subset, so neither leaves [min rank, max rank] of
// the column's values. When one column's hull lies entirely below the
// other's with a gap of rank width L between them, every transport plan
// moves all unit mass at least L, hence both the phase-1 and phase-2 EMD
// are ≥ L.
//
// The gap is certified from cached stats alone. Universe keys sort
// numerics (by value) below all strings. A column with Count > 0 and
// NumericCount == Count parses every non-empty cell, so all its keys are
// numeric with values ≤ Stats().Max: its hull ends at the last key with
// value ≤ Max. The other column's hull starts at its first own key —
// at the first key valued Stats().Min when it has any numeric cell, or in
// the all-string suffix when it has none. The number of rank steps between
// the two hulls is therefore at least G+1, where G is the number of
// universe keys strictly inside the value interval — lower-bounded by the
// largest count any single column's NumericDistinctSorted() places inside
// it (a single column's parsed distincts are distinct keys; merging across
// columns could double-count shared values and is NOT admissible). The
// rank step width is 1/(|universe|−1), and |universe| is at most the sum
// of every column's Distinct() (trim-collisions and cross-column sharing
// only shrink the union), so L = (G+1)/max(ΣDistinct−1, 1) lower-bounds
// the gap width.
//
// Band selection is also bounded: a pair only reaches the 0.8/1 bands by
// surviving both thresholds, and d1, d2 ≥ L, so L > min(θ₁, θ₂) confines
// the pair to the bottom band 0.5/(1+d1) ≤ 0.5/(1+L). A column with no
// parsed values at all has an empty rank sample, its phase-2 EMD is +Inf
// (emd.Samples1D), and the pair is likewise confined to the bottom band —
// but its phase-1 sketch is the zero sketch at rank 0, outside any hull
// argument, so such pairs are bounded by 0.5 directly. The table-level
// bound is the maximum over cross pairs, which dominates both discovery
// aggregates (core.ScoreBounder contract).

// boundSlack shrinks the certified gap by a relative margin so that
// floating-point rounding in either the bound or the matcher's EMD sums
// can never flip the real-valued inequalities above.
const boundSlack = 1 - 1e-9

// ScoreBoundProfiles implements core.ScoreBounder.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	total := 0
	for _, p := range sp.Columns() {
		total += p.Distinct()
	}
	for _, p := range tp.Columns() {
		total += p.Distinct()
	}
	denom := 1.0
	if total-1 > 1 {
		denom = float64(total - 1)
	}
	best := 0.0
	for _, sc := range sp.Columns() {
		for _, tc := range tp.Columns() {
			if b := m.pairBound(sc, tc, sp, tp, denom); b > best {
				best = b
				if best >= 1 {
					return 1
				}
			}
		}
	}
	return best
}

// pairBound bounds the score of one cross-table column pair.
func (m *Matcher) pairBound(sc, tc *profile.Profile, sp, tp *profile.TableProfile, denom float64) float64 {
	if len(sc.ParsedDistinct()) == 0 || len(tc.ParsedDistinct()) == 0 {
		// Empty rank sample: phase-2 EMD is +Inf, bottom band only.
		return 0.5
	}
	gap := rankGapKeys(sc.Stats(), tc.Stats(), sp, tp)
	if g := rankGapKeys(tc.Stats(), sc.Stats(), sp, tp); g > gap {
		gap = g
	}
	if gap == 0 {
		return 1
	}
	l := float64(gap) / denom * boundSlack
	if l > math.Min(m.Theta1, m.Theta2) {
		return 0.5 / (1 + l)
	}
	return 1 / (1 + l)
}

// rankGapKeys returns a lower bound on the number of rank steps separating
// lo's support hull (which must end below) from hi's (which must start
// above), or 0 when this direction certifies no separation. Callers
// guarantee both columns have at least one parsed distinct value.
func rankGapKeys(lo, hi table.ColumnStats, sp, tp *profile.TableProfile) int {
	if lo.Count == 0 || lo.NumericCount != lo.Count {
		return 0 // lo must be fully numeric for its hull to end at Max
	}
	lower, upper := lo.Max, math.Inf(1)
	if hi.NumericCount > 0 {
		if hi.Min <= lo.Max {
			return 0
		}
		upper = hi.Min
	}
	g := 0
	inside := func(tpf *profile.TableProfile) {
		for _, c := range tpf.Columns() {
			nums := c.NumericDistinctSorted()
			from := sort.SearchFloat64s(nums, lower)
			for from < len(nums) && nums[from] == lower {
				from++ // strict interior only
			}
			to := sort.SearchFloat64s(nums, upper)
			if n := to - from; n > g {
				g = n
			}
		}
	}
	inside(sp)
	inside(tp)
	return g + 1 // +1: the step onto hi's own first key
}

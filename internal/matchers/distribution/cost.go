package distribution

// MatchCostHint implements core.Coster: measured average per-pair runtime
// in microseconds (BENCH_6 Table V, rows=120), used by the planner cascade
// to refine candidates cheapest-first. Only the relative order matters.
func (m *Matcher) MatchCostHint() float64 { return 27000 }

package distribution

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/table"
)

func newM(t *testing.T, p core.Params) core.Matcher {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestName(t *testing.T) {
	if newM(t, nil).Name() != "distribution-based" {
		t.Error("name")
	}
}

func TestJoinableVerbatimHigh(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.9)
}

func TestUnionableOverlapHigh(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, newM(t, nil), pair, 0.7)
}

func TestNoisySchemaIrrelevant(t *testing.T) {
	// A pure instance method must be insensitive to column renaming.
	m := newM(t, nil)
	verb := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	noisy := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{NoisySchema: true})
	rv := matchertest.Recall(t, m, verb)
	rn := matchertest.Recall(t, m, noisy)
	if rv != rn {
		t.Errorf("schema noise changed an instance method: %.3f vs %.3f", rv, rn)
	}
}

func TestIdenticalDistributionsRankFirst(t *testing.T) {
	src := table.New("a")
	src.AddColumn("salary", seq(1000, 3000, 50))
	src.AddColumn("age", seq(20, 60, 1))
	tgt := table.New("b")
	tgt.AddColumn("income", seq(1000, 3000, 50))
	tgt.AddColumn("years", seq(20, 60, 1))
	ms, err := newM(t, nil).Match(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	score := map[[2]string]float64{}
	for _, m := range ms {
		score[[2]string{m.SourceColumn, m.TargetColumn}] = m.Score
	}
	if score[[2]string{"salary", "income"}] <= score[[2]string{"salary", "years"}] {
		t.Errorf("salary~income %.3f should beat salary~years %.3f",
			score[[2]string{"salary", "income"}], score[[2]string{"salary", "years"}])
	}
	if score[[2]string{"age", "years"}] <= score[[2]string{"age", "income"}] {
		t.Errorf("age~years %.3f should beat age~income %.3f",
			score[[2]string{"age", "years"}], score[[2]string{"age", "income"}])
	}
}

func seq(lo, hi, step int) []string {
	var out []string
	for v := lo; v <= hi; v += step {
		out = append(out, itoa(v))
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestThetaSensitivity(t *testing.T) {
	// Very strict θ leaves nothing co-clustered → scores stay in the bottom
	// band (< 0.5); loose θ promotes pairs above it.
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	strict, err := newM(t, core.Params{"theta1": 0.0000001, "theta2": 0.0000001}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range strict {
		if m.Score > 0.51 {
			// identical columns have EMD 0 and are still co-clustered at θ→0
			if !pair.Truth.Contains(m.SourceColumn, m.TargetColumn) {
				t.Errorf("strict theta promoted non-GT pair %v", m)
			}
		}
	}
	loose, err := newM(t, core.Params{"theta1": 0.5, "theta2": 0.5}).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	promoted := 0
	for _, m := range loose {
		if m.Score > 0.51 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Error("loose theta should co-cluster some pairs")
	}
}

func TestConsolidationIsOneToOne(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	ms, err := newM(t, nil).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	// the ILP band (score > 0.8/(1+d) ceiling…) — practically: count pairs
	// with score > 0.9 per source column; the assignment must not select
	// two targets for one source at the very top band
	topPerSource := map[string]int{}
	for _, m := range ms {
		if m.Score > 0.95 {
			topPerSource[m.SourceColumn]++
		}
	}
	for colName, n := range topPerSource {
		if n > 1 {
			t.Errorf("source %s has %d ILP-selected targets, want ≤ 1", colName, n)
		}
	}
}

func TestQuantileSketch(t *testing.T) {
	s := quantileSketch([]float64{0, 1, 2, 3, 4}, 5)
	for i, want := range []float64{0, 1, 2, 3, 4} {
		if s[i] != want {
			t.Fatalf("sketch = %v", s)
		}
	}
	empty := quantileSketch(nil, 4)
	if len(empty) != 4 {
		t.Fatal("empty sketch should be zero-valued with full length")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := downsample(in, 10)
	if len(out) != 10 || out[0] != 0 || out[9] != 99 {
		t.Fatalf("downsample = %v", out)
	}
	short := downsample(in[:5], 10)
	if len(short) != 5 {
		t.Fatal("short input should pass through")
	}
}

func TestInvariants(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, newM(t, nil), pair)
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := newM(t, nil).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := newM(t, nil).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

package distribution

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

// boundFuzzPair builds two tables mixing every regime the bound
// distinguishes: fully numeric columns over random integer and float
// ranges (sometimes disjoint, sometimes interleaved), string columns,
// mixed columns, numeric values with multiple string forms ("7" vs
// "7.0"), and columns whose cells are empty or whitespace-only.
func boundFuzzPair(rng *rand.Rand) (*table.Table, *table.Table) {
	build := func(name string, base int) *table.Table {
		t := table.New(name)
		cols := 1 + rng.Intn(4)
		rows := 4 + rng.Intn(25)
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			kind := rng.Intn(6)
			lo := base + rng.Intn(40) - 20
			for r := range vals {
				switch kind {
				case 0: // integer range
					vals[r] = fmt.Sprintf("%d", lo+rng.Intn(15))
				case 1: // float range with duplicate string forms
					if rng.Intn(3) == 0 {
						vals[r] = fmt.Sprintf("%d.0", lo+rng.Intn(15))
					} else {
						vals[r] = fmt.Sprintf("%.2f", float64(lo)+rng.Float64()*15)
					}
				case 2: // strings
					vals[r] = fmt.Sprintf("s-%d", rng.Intn(20))
				case 3: // mixed numeric and string
					if rng.Intn(2) == 0 {
						vals[r] = fmt.Sprintf("%d", lo+rng.Intn(15))
					} else {
						vals[r] = fmt.Sprintf("m-%d", rng.Intn(20))
					}
				case 4: // numeric with blanks sprinkled in
					if rng.Intn(4) == 0 {
						vals[r] = [...]string{"", "  "}[rng.Intn(2)]
					} else {
						vals[r] = fmt.Sprintf("%d", lo+rng.Intn(15))
					}
				default: // empty or whitespace-only column
					vals[r] = [...]string{"", " ", "\t"}[rng.Intn(3)]
				}
			}
			t.AddColumn(fmt.Sprintf("c%d", c), vals)
		}
		return t
	}
	// Random offsets make the tables' ranges overlap, abut, or separate by
	// a gap that other columns may or may not populate.
	return build("left", 0), build("right", rng.Intn(4)*60)
}

// TestDistributionBoundAdmissible is the load-bearing contract: for fuzzed
// pairs the cheap bound must dominate every score the full two-phase
// matcher emits. An underestimate breaks the planner's exactness
// guarantee. The 1e-9 tolerance absorbs float rounding between the bound's
// arithmetic and the matcher's EMD sums (the bound itself already shrinks
// its certified gap by the same margin).
func TestDistributionBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, err := New(core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	dm := m.(*Matcher)
	for trial := 0; trial < 80; trial++ {
		src, tgt := boundFuzzPair(rng)
		sp, tp := core.ProfilePair(nil, src, tgt)
		bound := dm.ScoreBoundProfiles(sp, tp)
		matches, err := core.MatchWith(m, sp, tp)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, match := range matches {
			if match.Score > bound+1e-9 {
				t.Fatalf("trial %d: score %v exceeds bound %v for %s~%s",
					trial, match.Score, bound, match.SourceColumn, match.TargetColumn)
			}
		}
	}
}

// TestDistributionBoundPrunesDisjointRanges: range-disjoint numeric tables
// must bound strictly below 1, and when the certified rank gap exceeds the
// phase thresholds the pair is confined to the bottom band, capping the
// table below 0.5 — the regime where the cascade actually skips the
// 27000µs tail matcher.
func TestDistributionBoundPrunesDisjointRanges(t *testing.T) {
	m, err := New(core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	dm := m.(*Matcher)

	// Wide disjoint ranges, dense universes: the gap holds no keys, so the
	// bound stays near 1 but must still be strictly below it.
	src := table.New("ids")
	src.AddColumn("id", seq(0, 50, 1))
	tgt := table.New("stamps")
	tgt.AddColumn("ts", seq(1000, 1050, 1))
	sp, tp := core.ProfilePair(nil, src, tgt)
	if bound := dm.ScoreBoundProfiles(sp, tp); bound >= 1 {
		t.Fatalf("disjoint-range pair bound = %v, want < 1", bound)
	}

	// Tiny universes make one rank step wide enough to exceed θ₁ and θ₂:
	// the pair can never survive phase 1, so the bound drops to the bottom
	// band 0.5/(1+L) < 0.5.
	src2 := table.New("small_a")
	src2.AddColumn("x", []string{"1", "2"})
	tgt2 := table.New("small_b")
	tgt2.AddColumn("y", []string{"9", "10"})
	sp2, tp2 := core.ProfilePair(nil, src2, tgt2)
	bound := dm.ScoreBoundProfiles(sp2, tp2)
	if bound >= 0.5 {
		t.Fatalf("theta-pruned pair bound = %v, want < 0.5", bound)
	}
	matches, err := core.MatchWith(m, sp2, tp2)
	if err != nil {
		t.Fatal(err)
	}
	for _, match := range matches {
		if match.Score > bound+1e-9 {
			t.Fatalf("score %v exceeds bound %v", match.Score, bound)
		}
	}

	// A column whose cells never parse to a rank sample is confined to the
	// bottom band outright.
	src3 := table.New("blank")
	src3.AddColumn("b", []string{" ", "", "\t"})
	sp3, tp3 := core.ProfilePair(nil, src3, tgt2)
	if bound := dm.ScoreBoundProfiles(sp3, tp3); bound != 0.5 {
		t.Fatalf("empty-sample pair bound = %v, want exactly 0.5", bound)
	}

	// Overlapping ranges certify nothing: the bound must stay at 1 rather
	// than guess.
	src4 := table.New("overlap")
	src4.AddColumn("x", seq(990, 1020, 1))
	sp4, tp4 := core.ProfilePair(nil, src4, tgt)
	if bound := dm.ScoreBoundProfiles(sp4, tp4); bound != 1 {
		t.Fatalf("overlapping-range pair bound = %v, want 1", bound)
	}
}

// TestDistributionBoundPopulatedGap: keys other columns place inside the
// value gap widen the certified rank distance — a single bridging column
// must tighten the bound for the pair it separates.
func TestDistributionBoundPopulatedGap(t *testing.T) {
	m, err := New(core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	dm := m.(*Matcher)
	bare := table.New("bare")
	bare.AddColumn("id", seq(0, 10, 1))
	tgt := table.New("high")
	tgt.AddColumn("ts", seq(1000, 1010, 1))

	sp, tp := core.ProfilePair(nil, bare, tgt)
	loose := dm.ScoreBoundProfiles(sp, tp)

	bridged := table.New("bridged")
	bridged.AddColumn("id", seq(0, 10, 1))
	bridged.AddColumn("mid", seq(100, 900, 10)) // 81 keys inside (10, 1000)
	sp2, tp2 := core.ProfilePair(nil, bridged, tgt)
	tight := dm.ScoreBoundProfiles(sp2, tp2)

	// The bridged table's own id~ts pair certifies an 82-step gap over a
	// 103-key universe: L ≈ 0.8 > θ, bottom band. The mid~ts pair's gap is
	// unpopulated, so the table bound comes from it, but the id~ts pair
	// alone must have dropped below the bottom band threshold.
	if pb := dm.pairBound(sp2.Column(0), tp2.Column(0), sp2, tp2, 102); pb >= 0.3 {
		t.Fatalf("bridged id~ts pair bound = %v, want < 0.3", pb)
	}
	if tight >= 1 || loose >= 1 {
		t.Fatalf("table bounds = %v, %v, want both < 1", tight, loose)
	}
}

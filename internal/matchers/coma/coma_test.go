package coma

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
	"valentine/internal/profile"
	"valentine/internal/table"
)

func schemaM(t *testing.T) core.Matcher {
	t.Helper()
	m, err := New(core.Params{"strategy": "schema"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func instanceM(t *testing.T) core.Matcher {
	t.Helper()
	m, err := New(core.Params{"strategy": "instance"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNames(t *testing.T) {
	if schemaM(t).Name() != "coma-schema" || instanceM(t).Name() != "coma-instance" {
		t.Error("names")
	}
}

func TestSchemaVerbatimPerfect(t *testing.T) {
	// With verbatim schemata, schema-based methods place all correct
	// matches at the top (paper §VII-A4).
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{})
		matchertest.RequireRecallAtLeast(t, schemaM(t), pair, 0.99)
	}
}

func TestSchemaNoisyDegrades(t *testing.T) {
	verb := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	noisy := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	m := schemaM(t)
	rv := matchertest.Recall(t, m, verb)
	rn := matchertest.Recall(t, m, noisy)
	if rn > rv {
		t.Errorf("noisy schema recall %.3f should not beat verbatim %.3f", rn, rv)
	}
}

func TestInstanceJoinableVerbatimPerfect(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, instanceM(t), pair, 0.99)
}

func TestInstanceSurvivesNoisySchema(t *testing.T) {
	// Instance information compensates for renamed columns on joinable
	// pairs where the shared values stay verbatim.
	pair := matchertest.Pair(t, core.ScenarioJoinable, fabrication.Variant{NoisySchema: true})
	matchertest.RequireRecallAtLeast(t, instanceM(t), pair, 0.7)
}

func TestThresholdFilters(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	m, err := New(core.Params{"threshold": 0.99})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	all, err := schemaM(t).Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) >= len(all) {
		t.Errorf("threshold 0.99 should prune: %d vs %d", len(ms), len(all))
	}
	for _, x := range ms {
		if x.Score < 0.99 {
			t.Errorf("match below threshold leaked: %v", x)
		}
	}
}

func TestInvariantsAllScenarios(t *testing.T) {
	for _, s := range core.Scenarios() {
		pair := matchertest.Pair(t, s, fabrication.Variant{NoisySchema: true, NoisyInstances: true})
		matchertest.CheckMatchInvariants(t, schemaM(t), pair)
		matchertest.CheckMatchInvariants(t, instanceM(t), pair)
	}
}

func TestTypeMatcherScores(t *testing.T) {
	mk := func(ty table.Type) *element {
		return &element{column: &table.Column{Name: "x", Type: ty}}
	}
	if got := typeMatcher(mk(table.Int), mk(table.Int)); got != 1 {
		t.Errorf("same type = %v", got)
	}
	if got := typeMatcher(mk(table.Int), mk(table.Float)); got != 0.9 {
		t.Errorf("widening = %v", got)
	}
	if got := typeMatcher(mk(table.Float), mk(table.Int)); got != 0.6 {
		t.Errorf("narrowing = %v", got)
	}
	if got := typeMatcher(mk(table.String), mk(table.Date)); got != 0.4 {
		t.Errorf("string-compatible = %v", got)
	}
	if got := typeMatcher(mk(table.Bool), mk(table.Date)); got != 0.1 {
		t.Errorf("incompatible = %v", got)
	}
}

func TestConstraintMatcherIdenticalColumns(t *testing.T) {
	c := &table.Column{Name: "n", Type: table.Int, Values: []string{"1", "2", "3"}}
	a := &element{column: c, features: instanceFeatures(profile.NewColumn("t", c))}
	if got := constraintMatcher(a, a); got != 1 {
		t.Errorf("identical features = %v", got)
	}
	b := &element{column: c, features: nil}
	if got := constraintMatcher(a, b); got != 0 {
		t.Errorf("missing features = %v", got)
	}
}

func TestMatchValidates(t *testing.T) {
	bad := table.New("")
	good := table.New("t")
	good.AddColumn("a", []string{"1"})
	if _, err := schemaM(t).Match(bad, good); err == nil {
		t.Error("invalid source should fail")
	}
	if _, err := instanceM(t).Match(good, bad); err == nil {
		t.Error("invalid target should fail")
	}
}

package coma

import (
	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Cascade hooks: COMA exposes an admissible score bound built from the
// cheap cached profile signals (name tokens, types, distinct sets), so the
// planner can prune candidates without paying for element construction,
// instance features or per-pair Levenshtein work.
//
// The bound is the configured aggregation applied to per-component maxima
// over the whole table pair. Every matcher-library component is bounded
// from above independently (components that would need per-pair string
// distances are bounded by 1), and every aggregation operator is monotone
// in each component, so the aggregate of component maxima dominates every
// directed per-pair aggregate — and therefore every emitted score and both
// discovery aggregates built from them.

// MatchCostHint implements core.Coster. Hints are measured average
// per-pair runtimes in microseconds from the BENCH_6 Table V run (rows=120
// fabricated pairs); only the relative order matters.
func (m *Matcher) MatchCostHint() float64 {
	if m.Strategy == StrategyInstance {
		return 6300
	}
	return 6100
}

// ScoreBoundProfiles implements core.ScoreBounder.
func (m *Matcher) ScoreBoundProfiles(sp, tp *profile.TableProfile) float64 {
	comps := []float64{
		1, // nameMatcher: NameSim ≤ 1, not worth per-pair distances here
		tokenBound(sp, tp),
		1, // namePathMatcher: ≤ 1 likewise
		typeBound(sp, tp),
		contextBound(sp, tp),
	}
	if m.Strategy == StrategyInstance {
		// constraintMatcher is 1/(1+√d) ≤ 1; feature vectors always have
		// equal length so the length-mismatch zero never applies.
		comps = append(comps, overlapBound(sp, tp), 1)
	}
	return m.combine(comps)
}

// tokenBound caps nameTokenMatcher: Dice is positive only for token sets
// that intersect — or for two empty sets, which score 1 — so the bound is
// 1 when either is possible and 0 otherwise.
func tokenBound(sp, tp *profile.TableProfile) float64 {
	srcU, srcEmpty := tokenUnion(sp)
	tgtU, tgtEmpty := tokenUnion(tp)
	if srcEmpty && tgtEmpty {
		return 1
	}
	if tokensIntersect(srcU, tgtU) {
		return 1
	}
	return 0
}

// tokenUnion returns the union of a table's column name-token sets and
// whether any column has no tokens at all.
func tokenUnion(tpf *profile.TableProfile) (map[string]struct{}, bool) {
	union := make(map[string]struct{})
	anyEmpty := false
	for _, c := range tpf.Columns() {
		set := c.NameTokenSet()
		if len(set) == 0 {
			anyEmpty = true
			continue
		}
		for tok := range set {
			union[tok] = struct{}{}
		}
	}
	return union, anyEmpty
}

func tokensIntersect(a, b map[string]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for tok := range a {
		if _, ok := b[tok]; ok {
			return true
		}
	}
	return false
}

// typeBound caps typeMatcher with the best directed type score over the
// distinct type sets of both tables (covering both match directions).
func typeBound(sp, tp *profile.TableProfile) float64 {
	srcTypes := typeSet(sp)
	tgtTypes := typeSet(tp)
	best := 0.0
	for ta := range srcTypes {
		for tb := range tgtTypes {
			if s := typeScore(ta, tb); s > best {
				best = s
			}
			if s := typeScore(tb, ta); s > best {
				best = s
			}
		}
	}
	return best
}

func typeSet(tpf *profile.TableProfile) map[table.Type]struct{} {
	out := make(map[table.Type]struct{})
	for _, c := range tpf.Columns() {
		out[c.Type()] = struct{}{}
	}
	return out
}

// contextBound caps contextMatcher. A column's sibling context is the
// token union of its other columns, so cross-table sibling intersection
// implies full token-union intersection (checked conservatively on the
// unions); two empty contexts score 1, and a table has an empty-context
// column exactly when at most one of its columns carries tokens.
func contextBound(sp, tp *profile.TableProfile) float64 {
	srcU, _ := tokenUnion(sp)
	tgtU, _ := tokenUnion(tp)
	srcTok, tgtTok := columnsWithTokens(sp), columnsWithTokens(tp)
	if srcTok <= 1 && tgtTok <= 1 {
		return 1
	}
	if tokensIntersect(srcU, tgtU) {
		return 1
	}
	return 0
}

func columnsWithTokens(tpf *profile.TableProfile) int {
	n := 0
	for _, c := range tpf.Columns() {
		if len(c.NameTokenSet()) > 0 {
			n++
		}
	}
	return n
}

// overlapBound caps overlapMatcher: sampled sets are subsets of the
// columns' distinct sets, so a positive sample Jaccard needs the distinct
// sets to intersect — or two empty sets, which score 1. Profiles sharing a
// value dictionary intersect through the integer-set kernel; mixed pairs
// probe the smaller distinct map into the larger.
func overlapBound(sp, tp *profile.TableProfile) float64 {
	srcZero, tgtZero := false, false
	for _, c := range sp.Columns() {
		if c.Distinct() == 0 {
			srcZero = true
			break
		}
	}
	for _, c := range tp.Columns() {
		if c.Distinct() == 0 {
			tgtZero = true
			break
		}
	}
	if srcZero && tgtZero {
		return 1
	}
	for _, sc := range sp.Columns() {
		sset := sc.InternedDistinct()
		for _, tc := range tp.Columns() {
			if sset != nil && sc.Dict() == tc.Dict() {
				if tset := tc.InternedDistinct(); tset != nil {
					if intern.IntersectCount(sset, tset) > 0 {
						return 1
					}
					continue
				}
			}
			if distinctMapsIntersect(sc.DistinctValues(), tc.DistinctValues()) {
				return 1
			}
		}
	}
	return 0
}

func distinctMapsIntersect(a, b map[string]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for v := range a {
		if _, ok := b[v]; ok {
			return true
		}
	}
	return false
}

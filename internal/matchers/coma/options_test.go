package coma

import (
	"testing"

	"valentine/internal/core"
	"valentine/internal/fabrication"
	"valentine/internal/matchers/matchertest"
)

func TestAggregationValidation(t *testing.T) {
	if _, err := New(core.Params{"aggregation": "bogus"}); err == nil {
		t.Error("unknown aggregation should fail")
	}
	if _, err := New(core.Params{"direction": "sideways"}); err == nil {
		t.Error("unknown direction should fail")
	}
	for _, agg := range []string{"average", "max", "min", "harmonic"} {
		if _, err := New(core.Params{"aggregation": agg}); err != nil {
			t.Errorf("aggregation %q rejected: %v", agg, err)
		}
	}
}

func TestAggregationOrdering(t *testing.T) {
	// For any element pair: min ≤ harmonic ≤ average ≤ max.
	pair := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{NoisySchema: true})
	get := func(agg string) map[[2]string]float64 {
		m, err := New(core.Params{"aggregation": agg, "direction": "forward"})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := m.Match(pair.Source, pair.Target)
		if err != nil {
			t.Fatal(err)
		}
		out := map[[2]string]float64{}
		for _, x := range ms {
			out[[2]string{x.SourceColumn, x.TargetColumn}] = x.Score
		}
		return out
	}
	minS, harS, avgS, maxS := get("min"), get("harmonic"), get("average"), get("max")
	for k := range avgS {
		if !(minS[k] <= harS[k]+1e-9 && harS[k] <= avgS[k]+1e-9 && avgS[k] <= maxS[k]+1e-9) {
			t.Fatalf("aggregation ordering violated at %v: min=%v har=%v avg=%v max=%v",
				k, minS[k], harS[k], avgS[k], maxS[k])
		}
	}
}

func TestDirectionForwardDiffers(t *testing.T) {
	pair := matchertest.Pair(t, core.ScenarioViewUnionable, fabrication.Variant{NoisySchema: true})
	both, err := New(core.Params{"direction": "both"})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := New(core.Params{"direction": "forward"})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := both.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fwd.Match(pair.Source, pair.Target)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range mb {
		if mb[i].Score != mf[i].Score {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("direction setting had no effect")
	}
	// both directions stay symmetric-friendly: recall still high on
	// verbatim pairs for either direction
	verbatim := matchertest.Pair(t, core.ScenarioUnionable, fabrication.Variant{})
	matchertest.RequireRecallAtLeast(t, fwd, verbatim, 0.99)
}

package coma

import (
	"fmt"
	"math/rand"
	"testing"

	"valentine/internal/core"
	"valentine/internal/table"
)

// fuzzPair builds two tables with partially overlapping values, names and
// types — every regime the bound's escape clauses handle (empty token
// columns, zero-distinct columns, shared and disjoint vocabularies).
func fuzzPair(rng *rand.Rand) (*table.Table, *table.Table) {
	build := func(name string, shared bool) *table.Table {
		t := table.New(name)
		cols := 1 + rng.Intn(4)
		rows := 5 + rng.Intn(30)
		for c := 0; c < cols; c++ {
			vals := make([]string, rows)
			for r := range vals {
				switch {
				case rng.Intn(8) == 0:
					vals[r] = ""
				case shared || rng.Intn(2) == 0:
					vals[r] = fmt.Sprintf("val-%d", rng.Intn(25))
				case rng.Intn(3) == 0:
					vals[r] = fmt.Sprintf("%d", rng.Intn(100)) // numeric-typed columns
				default:
					vals[r] = fmt.Sprintf("%s-only-%d", name, rng.Intn(25))
				}
			}
			// Suffix with the column index so names stay unique while still
			// sharing tokens across tables ("id 0" vs "id 1" share "id").
			cname := fmt.Sprintf("%s %d", [...]string{"id", "name", "amount", name + "only", "___"}[rng.Intn(5)], c)
			t.AddColumn(cname, vals)
		}
		return t
	}
	return build("left", true), build("right", rng.Intn(2) == 0)
}

// TestScoreBoundAdmissible is the load-bearing contract: for fuzzed pairs,
// the cheap bound must dominate every score the full matcher emits, in
// both schema and instance mode. An underestimate here breaks the
// planner's exactness guarantee.
func TestScoreBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, mode := range []string{"schema", "instance"} {
		m, err := New(core.Params{"strategy": mode})
		if err != nil {
			t.Fatal(err)
		}
		cm := m.(*Matcher)
		for trial := 0; trial < 60; trial++ {
			src, tgt := fuzzPair(rng)
			sp, tp := core.ProfilePair(nil, src, tgt)
			bound := cm.ScoreBoundProfiles(sp, tp)
			matches, err := core.MatchWith(m, sp, tp)
			if err != nil {
				t.Fatalf("%s trial %d: %v", mode, trial, err)
			}
			for _, match := range matches {
				if match.Score > bound {
					t.Fatalf("%s trial %d: score %v exceeds bound %v for %s~%s",
						mode, trial, match.Score, bound, match.SourceColumn, match.TargetColumn)
				}
			}
		}
	}
}

// TestScoreBoundPrunesDisjoint: fully disjoint tables (no shared values,
// tokens or compatible context) must bound strictly below 1 in instance
// mode, or the cascade never saves work.
func TestScoreBoundPrunesDisjoint(t *testing.T) {
	src := table.New("a")
	src.AddColumn("alpha beta", []string{"x1", "x2", "x3"})
	src.AddColumn("gamma delta", []string{"x4", "x5", "x6"})
	tgt := table.New("b")
	tgt.AddColumn("epsilon zeta", []string{"y1", "y2", "y3"})
	tgt.AddColumn("eta theta", []string{"y4", "y5", "y6"})
	m, err := New(core.Params{"strategy": "instance"})
	if err != nil {
		t.Fatal(err)
	}
	sp, tp := core.ProfilePair(nil, src, tgt)
	if bound := m.(*Matcher).ScoreBoundProfiles(sp, tp); bound >= 1 {
		t.Fatalf("disjoint pair bound = %v, want < 1", bound)
	}
}

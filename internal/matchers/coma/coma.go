// Package coma reimplements the COMA matcher (Do & Rahm, VLDB 2002) with
// the instance extension of COMA++ (Engmann & Massmann, BTW 2007).
//
// Schemata are represented as rooted DAGs (for denormalized tables: a root
// table node with column leaves). A library of independent matchers scores
// every element pair; scores are aggregated by averaging and combined over
// both match directions, and results above the accept threshold are
// returned as a ranked list. Valentine configures threshold 0 (paper Table
// II) so every pair appears in the ranking.
package coma

import (
	"context"
	"fmt"
	"math"

	"valentine/internal/core"
	"valentine/internal/engine"
	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/strutil"
	"valentine/internal/table"
)

// Strategy selects COMA's matcher set.
type Strategy string

// The two strategies the paper evaluates.
const (
	StrategySchema   Strategy = "schema"
	StrategyInstance Strategy = "instance"
)

// Aggregation selects how the matcher library's scores combine (COMA's
// aggregation operator).
type Aggregation string

// Aggregation operators.
const (
	AggAverage  Aggregation = "average" // COMA's default
	AggMax      Aggregation = "max"
	AggMin      Aggregation = "min"
	AggHarmonic Aggregation = "harmonic"
)

// Direction selects whether the library is evaluated in both directions
// (COMA's default "both") or source→target only.
type Direction string

// Direction settings.
const (
	DirBoth    Direction = "both"
	DirForward Direction = "forward"
)

// Matcher is a configured COMA instance.
type Matcher struct {
	Strategy    Strategy
	Threshold   float64 // accept threshold on aggregated similarity
	MaxSample   int     // distinct-value sample size for instance matchers
	Aggregation Aggregation
	Direction   Direction
}

// New builds COMA from params: "strategy" ("schema"|"instance", default
// "schema"), "threshold" (default 0, the paper's setting), "max_sample"
// (default 150), "aggregation" ("average"|"max"|"min"|"harmonic", default
// "average"), "direction" ("both"|"forward", default "both").
func New(p core.Params) (core.Matcher, error) {
	agg := Aggregation(p.String("aggregation", string(AggAverage)))
	switch agg {
	case AggAverage, AggMax, AggMin, AggHarmonic:
	default:
		return nil, fmt.Errorf("coma: unknown aggregation %q", agg)
	}
	dir := Direction(p.String("direction", string(DirBoth)))
	switch dir {
	case DirBoth, DirForward:
	default:
		return nil, fmt.Errorf("coma: unknown direction %q", dir)
	}
	return &Matcher{
		Strategy:    Strategy(p.String("strategy", string(StrategySchema))),
		Threshold:   p.Float("threshold", 0),
		MaxSample:   p.Int("max_sample", 150),
		Aggregation: agg,
		Direction:   dir,
	}, nil
}

// Name implements core.Matcher.
func (m *Matcher) Name() string {
	if m.Strategy == StrategyInstance {
		return "coma-instance"
	}
	return "coma-schema"
}

// element is a schema-DAG leaf with its precomputed match features.
type element struct {
	column   *table.Column
	path     string // name path from the root, e.g. "orders.city"
	tokens   map[string]struct{}
	siblings map[string]struct{} // token context of sibling columns
	features []float64           // instance feature vector
	sample   map[string]struct{} // sampled distinct values

	// Interned form of sample, present when the element's profile carries a
	// value dictionary: overlapMatcher then intersects two sorted id slices
	// (or bitmaps) without touching the map. dict guards comparability —
	// ids from different dictionaries never meet.
	dict      *intern.Dict
	sampleIDs *intern.Set
}

// Match implements core.Matcher.
func (m *Matcher) Match(source, target *table.Table) ([]core.Match, error) {
	sp, tp := profile.NewPair(source, target)
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchProfiles implements core.ProfiledMatcher: name tokens, distinct-value
// samples and column statistics come from the profiles' caches instead of
// being recomputed per call.
func (m *Matcher) MatchProfiles(sp, tp *profile.TableProfile) ([]core.Match, error) {
	return m.MatchProfilesContext(context.Background(), sp, tp)
}

// MatchContext implements core.ContextMatcher.
func (m *Matcher) MatchContext(ctx context.Context, store *profile.Store, source, target *table.Table) ([]core.Match, error) {
	sp, tp := core.ProfilePair(store, source, target)
	return m.MatchProfilesContext(ctx, sp, tp)
}

// MatchProfilesContext implements core.ProfiledContextMatcher — the single
// scoring path: element construction is the generate stage, then the matcher
// library runs over every cross pair on the engine pool; pairs under the
// accept threshold count as pruned.
func (m *Matcher) MatchProfilesContext(ctx context.Context, sp, tp *profile.TableProfile) ([]core.Match, error) {
	if err := core.ValidatePair(sp, tp); err != nil {
		return nil, err
	}
	limit := m.MaxSample
	if limit <= 0 {
		limit = 150
	}
	withInstances := m.Strategy == StrategyInstance
	// Both tables interning into one dictionary selects the integer-set
	// sample representation up front; otherwise only the string maps are
	// built — never both.
	useIDs := sp.InterningDict() != nil && sp.InterningDict() == tp.InterningDict()
	var srcEls, tgtEls []element
	engine.StatsFrom(ctx).Timed(engine.StageGenerate, func() {
		srcEls = buildElements(sp, withInstances, limit, useIDs)
		tgtEls = buildElements(tp, withInstances, limit, useIDs)
	})
	return engine.ScorePairs(ctx, sp, tp, func(i, j int) (float64, bool) {
		// Direction "both": the matcher library is evaluated src→tgt
		// and tgt→src and the directional aggregates are averaged.
		score := m.aggregate(&srcEls[i], &tgtEls[j])
		if m.Direction == DirBoth {
			score = (score + m.aggregate(&tgtEls[j], &srcEls[i])) / 2
		}
		return score, score >= m.Threshold
	})
}

func buildElements(tp *profile.TableProfile, withInstances bool, limit int, useIDs bool) []element {
	t := tp.Table()
	els := make([]element, len(t.Columns))
	for i := range t.Columns {
		p := tp.Column(i)
		e := element{
			column: p.Column(),
			path:   t.Name + "." + p.Name(),
			tokens: p.NameTokenSet(),
		}
		e.siblings = make(map[string]struct{})
		for j := range t.Columns {
			if j == i {
				continue
			}
			for tok := range tp.Column(j).NameTokenSet() {
				e.siblings[tok] = struct{}{}
			}
		}
		if withInstances {
			e.features = instanceFeatures(p)
			if useIDs {
				// All distinct values are interned (InternedDistinct forces
				// that), so the sample — a subset — resolves fully, and the
				// string map is never consulted.
				d := p.Dict()
				p.InternedDistinct()
				sample := p.SampleDistinct(limit)
				ids := make([]uint32, 0, len(sample))
				for _, v := range sample {
					id, _ := d.Lookup(v)
					ids = append(ids, id)
				}
				e.dict = d
				e.sampleIDs = intern.NewSet(ids)
			} else {
				e.sample = sampleSet(p, limit)
			}
		}
		els[i] = e
	}
	return els
}

// aggregate averages the applicable matcher-library scores for a directed
// element pair.
func (m *Matcher) aggregate(a, b *element) float64 {
	scores := []float64{
		nameMatcher(a, b),
		nameTokenMatcher(a, b),
		namePathMatcher(a, b),
		typeMatcher(a, b),
		contextMatcher(a, b),
	}
	if m.Strategy == StrategyInstance {
		scores = append(scores, overlapMatcher(a, b), constraintMatcher(a, b))
	}
	return m.combine(scores)
}

// combine applies the configured aggregation operator to a score vector.
// Every operator is monotone non-decreasing in each argument — the
// property ScoreBoundProfiles relies on to turn per-component maxima into
// an admissible aggregate bound.
func (m *Matcher) combine(scores []float64) float64 {
	switch m.Aggregation {
	case AggMax:
		best := 0.0
		for _, s := range scores {
			if s > best {
				best = s
			}
		}
		return best
	case AggMin:
		worst := 1.0
		for _, s := range scores {
			if s < worst {
				worst = s
			}
		}
		return worst
	case AggHarmonic:
		inv := 0.0
		for _, s := range scores {
			if s <= 0 {
				return 0
			}
			inv += 1 / s
		}
		return float64(len(scores)) / inv
	default: // AggAverage
		sum := 0.0
		for _, s := range scores {
			sum += s
		}
		return sum / float64(len(scores))
	}
}

// --- the matcher library ---

func nameMatcher(a, b *element) float64 {
	return strutil.NameSim(a.column.Name, b.column.Name)
}

func nameTokenMatcher(a, b *element) float64 {
	return strutil.DiceSets(a.tokens, b.tokens)
}

func namePathMatcher(a, b *element) float64 {
	return strutil.NameSim(a.path, b.path)
}

// typeMatcher scores directional data-type compatibility: widening an int
// into a float column is safe (0.9) while narrowing a float into an int is
// lossy (0.6) — the coercion asymmetry that makes COMA's "both"-direction
// combination meaningful.
func typeMatcher(a, b *element) float64 {
	return typeScore(a.column.Type, b.column.Type)
}

func typeScore(ta, tb table.Type) float64 {
	switch {
	case ta == tb:
		return 1
	case ta == table.Int && tb == table.Float:
		return 0.9
	case ta == table.Float && tb == table.Int:
		return 0.6
	case ta.Compatible(tb):
		return 0.4
	default:
		return 0.1
	}
}

// contextMatcher measures how much of a's sibling-token context the other
// element's context covers (COMA's structural/neighborhood signal on flat
// schemata). The measure is directional — containment of a's context in
// b's — which is what makes COMA's "both"-direction combination meaningful.
func contextMatcher(a, b *element) float64 {
	if len(a.siblings) == 0 && len(b.siblings) == 0 {
		return 1
	}
	if len(a.siblings) == 0 || len(b.siblings) == 0 {
		return 0
	}
	inter := 0
	for tok := range a.siblings {
		if _, ok := b.siblings[tok]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a.siblings))
}

// overlapMatcher is the exact value-overlap instance matcher. Elements
// sharing a value dictionary intersect through the integer-set kernel;
// the score is bit-identical to the map path (strutil.JaccardSets scores
// two empty sets 1, so that edge is preserved explicitly).
func overlapMatcher(a, b *element) float64 {
	if a.dict != nil && a.dict == b.dict {
		la, lb := a.sampleIDs.Len(), b.sampleIDs.Len()
		if la == 0 && lb == 0 {
			return 1
		}
		inter := intern.IntersectCount(a.sampleIDs, b.sampleIDs)
		union := la + lb - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	return strutil.JaccardSets(a.sample, b.sample)
}

// constraintMatcher compares constraint-style instance features
// (COMA++'s pattern/statistics matcher) by inverted normalized distance.
func constraintMatcher(a, b *element) float64 {
	fa, fb := a.features, b.features
	if len(fa) != len(fb) || len(fa) == 0 {
		return 0
	}
	d := 0.0
	for i := range fa {
		diff := fa[i] - fb[i]
		d += diff * diff
	}
	return 1 / (1 + math.Sqrt(d))
}

// instanceFeatures summarizes a column's value population into a
// scale-normalized feature vector, reusing the profile's cached statistics.
func instanceFeatures(p *profile.Profile) []float64 {
	stats := p.Stats()
	var digits, alphas, puncts, total float64
	for _, v := range p.Column().Values {
		for _, r := range v {
			total++
			switch {
			case r >= '0' && r <= '9':
				digits++
			case (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
				alphas++
			default:
				puncts++
			}
		}
	}
	if total == 0 {
		total = 1
	}
	numericRatio := 0.0
	if stats.Count > 0 {
		numericRatio = float64(stats.NumericCount) / float64(stats.Count)
	}
	return []float64{
		digits / total,
		alphas / total,
		puncts / total,
		numericRatio,
		stats.Uniqueness(),
		math.Min(stats.AvgLength/40, 1),
		sigmoidScale(stats.Mean),
		sigmoidScale(stats.StdDev),
	}
}

// sigmoidScale squashes unbounded statistics into (0,1) so magnitude
// differences matter but don't dominate the feature distance.
func sigmoidScale(x float64) float64 {
	return 1 / (1 + math.Exp(-x/1000))
}

func sampleSet(p *profile.Profile, limit int) map[string]struct{} {
	vals := p.SampleDistinct(limit)
	out := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		out[v] = struct{}{}
	}
	return out
}

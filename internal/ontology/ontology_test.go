package ontology

import (
	"reflect"
	"testing"
)

func TestAddClassAndLookup(t *testing.T) {
	o := New("test")
	c, err := o.AddClass("C1", "assay", "test")
	if err != nil {
		t.Fatal(err)
	}
	if c.Label != "assay" {
		t.Fatalf("Label = %q", c.Label)
	}
	if o.Class("C1") != c {
		t.Error("Class lookup failed")
	}
	if o.Class("nope") != nil {
		t.Error("unknown class should be nil")
	}
	if _, err := o.AddClass("C1", "dup"); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := o.AddClass("", "blank"); err == nil {
		t.Error("blank id should fail")
	}
}

func TestSubclassAndRelated(t *testing.T) {
	o := New("test")
	o.AddClass("root", "thing")
	o.AddClass("mid", "assay")
	o.AddClass("leaf", "binding assay")
	o.AddClass("island", "unrelated")
	if err := o.AddSubclass("mid", "root"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSubclass("leaf", "mid"); err != nil {
		t.Fatal(err)
	}
	if err := o.AddSubclass("leaf", "missing"); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := o.AddSubclass("missing", "root"); err == nil {
		t.Error("unknown child should fail")
	}
	if !o.Related("leaf", "root", 2) {
		t.Error("leaf should reach root in 2 hops")
	}
	if o.Related("leaf", "root", 1) {
		t.Error("1 hop should not reach root")
	}
	if o.Related("leaf", "island", 10) {
		t.Error("island should be unreachable")
	}
	if !o.Related("mid", "mid", 0) {
		t.Error("class should relate to itself")
	}
	if o.Related("ghost", "ghost", 0) {
		t.Error("unknown self-relation should be false")
	}
	if got := o.Parents("leaf"); !reflect.DeepEqual(got, []string{"mid"}) {
		t.Errorf("Parents = %v", got)
	}
}

func TestLabelWords(t *testing.T) {
	c := &Class{Label: "Binding Assay", AltLabels: []string{"binding test (in-vitro)"}}
	words := c.LabelWords()
	want := []string{"binding", "assay", "binding", "test", "in-vitro"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("LabelWords = %v, want %v", words, want)
	}
}

func TestEFO(t *testing.T) {
	o := EFO()
	if o.NumClasses() < 25 {
		t.Fatalf("EFO too small: %d classes", o.NumClasses())
	}
	// assay subclasses must relate
	if !o.Related("EFO:0000003", "EFO:0000004", 2) {
		t.Error("binding assay and functional assay should relate via assay")
	}
	// sorted deterministic class order
	cs := o.Classes()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].ID >= cs[i].ID {
			t.Fatal("Classes not sorted")
		}
	}
	// assay vocabulary coverage for SemProp linking
	found := false
	for _, c := range cs {
		if c.Label == "assay" {
			found = true
		}
	}
	if !found {
		t.Error("EFO should contain an assay class")
	}
}

// Package ontology models the lightweight domain ontologies consumed by the
// SemProp matcher.
//
// SemProp (Fernandez et al., ICDE 2018) links attribute and table names to
// ontology classes through embedding similarity, then relates attributes
// transitively through shared classes. The original evaluation used the EFO
// ontology alongside ChEMBL; EFO is not redistributable here, so EFO()
// builds an EFO-like assay/chemistry ontology whose class labels align with
// the vocabulary of the ChEMBL-like generated datasets — preserving the
// name↔class linkage SemProp depends on.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Class is an ontology class with a primary label and alternative labels.
type Class struct {
	ID        string
	Label     string
	AltLabels []string
}

// Ontology is a set of classes with a subclass hierarchy.
type Ontology struct {
	Name    string
	classes map[string]*Class
	parents map[string][]string // class id → parent class ids
}

// New returns an empty ontology.
func New(name string) *Ontology {
	return &Ontology{
		Name:    name,
		classes: make(map[string]*Class),
		parents: make(map[string][]string),
	}
}

// AddClass registers a class; the id must be unique.
func (o *Ontology) AddClass(id, label string, altLabels ...string) (*Class, error) {
	if id == "" {
		return nil, fmt.Errorf("ontology: empty class id")
	}
	if _, dup := o.classes[id]; dup {
		return nil, fmt.Errorf("ontology: duplicate class id %q", id)
	}
	c := &Class{ID: id, Label: label, AltLabels: altLabels}
	o.classes[id] = c
	return c, nil
}

// AddSubclass declares child ⊑ parent. Both must exist.
func (o *Ontology) AddSubclass(child, parent string) error {
	if _, ok := o.classes[child]; !ok {
		return fmt.Errorf("ontology: unknown class %q", child)
	}
	if _, ok := o.classes[parent]; !ok {
		return fmt.Errorf("ontology: unknown class %q", parent)
	}
	o.parents[child] = append(o.parents[child], parent)
	return nil
}

// Class returns the class with the given id, or nil.
func (o *Ontology) Class(id string) *Class { return o.classes[id] }

// Classes returns all classes sorted by id.
func (o *Ontology) Classes() []*Class {
	out := make([]*Class, 0, len(o.classes))
	for _, c := range o.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumClasses returns the class count.
func (o *Ontology) NumClasses() int { return len(o.classes) }

// Parents returns the direct parents of a class.
func (o *Ontology) Parents(id string) []string { return o.parents[id] }

// Related reports whether two classes are identical or connected through
// the subclass hierarchy within maxHops (undirected).
func (o *Ontology) Related(a, b string, maxHops int) bool {
	if a == b {
		return o.classes[a] != nil
	}
	adj := make(map[string][]string)
	for c, ps := range o.parents {
		for _, p := range ps {
			adj[c] = append(adj[c], p)
			adj[p] = append(adj[p], c)
		}
	}
	dist := map[string]int{a: 0}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dist[cur] >= maxHops {
			continue
		}
		for _, next := range adj[cur] {
			if _, seen := dist[next]; seen {
				continue
			}
			if next == b {
				return true
			}
			dist[next] = dist[cur] + 1
			queue = append(queue, next)
		}
	}
	return false
}

// LabelWords returns the lowercase word multiset of a class's labels —
// the tokens SemProp embeds when linking names to classes.
func (c *Class) LabelWords() []string {
	var out []string
	add := func(s string) {
		for _, w := range strings.Fields(strings.ToLower(s)) {
			out = append(out, strings.Trim(w, "()[],."))
		}
	}
	add(c.Label)
	for _, l := range c.AltLabels {
		add(l)
	}
	return out
}

// EFO builds the EFO-like assay/chemistry ontology used with the
// ChEMBL-like datasets.
func EFO() *Ontology {
	o := New("efo-like")
	must := func(id, label string, alts ...string) {
		if _, err := o.AddClass(id, label, alts...); err != nil {
			panic(err) // static construction; ids are unique by inspection
		}
	}
	link := func(child, parent string) {
		if err := o.AddSubclass(child, parent); err != nil {
			panic(err)
		}
	}
	must("EFO:0000001", "experimental factor", "factor")
	must("EFO:0000002", "assay", "test", "experiment")
	must("EFO:0000003", "binding assay", "binding test")
	must("EFO:0000004", "functional assay", "functional test")
	must("EFO:0000005", "ADMET assay", "toxicity assay")
	must("EFO:0000010", "compound", "molecule", "chemical substance", "drug")
	must("EFO:0000011", "small molecule", "small compound")
	must("EFO:0000020", "target", "protein target", "receptor")
	must("EFO:0000021", "protein", "polypeptide")
	must("EFO:0000022", "enzyme", "catalyst protein")
	must("EFO:0000030", "organism", "species", "taxon")
	must("EFO:0000031", "human", "homo sapiens")
	must("EFO:0000032", "mouse", "mus musculus")
	must("EFO:0000033", "rat", "rattus norvegicus")
	must("EFO:0000040", "cell line", "cell culture", "cellline")
	must("EFO:0000041", "tissue", "organ tissue")
	must("EFO:0000050", "measurement", "measured value", "reading", "observation")
	must("EFO:0000051", "concentration", "dose", "dosage")
	must("EFO:0000052", "potency", "activity", "efficacy")
	must("EFO:0000053", "unit", "unit of measurement", "uom")
	must("EFO:0000054", "confidence score", "confidence", "reliability")
	must("EFO:0000060", "publication", "journal article", "paper", "reference")
	must("EFO:0000061", "description", "comment", "text description")
	must("EFO:0000062", "identifier", "accession", "id", "code")
	must("EFO:0000063", "assay type", "assay category", "assay class")
	must("EFO:0000064", "source", "data source", "origin")
	must("EFO:0000065", "date", "timestamp", "time")
	must("EFO:0000066", "relationship type", "relation")
	must("EFO:0000067", "strain", "variant organism")
	must("EFO:0000068", "curated by", "curator")

	link("EFO:0000002", "EFO:0000001")
	link("EFO:0000003", "EFO:0000002")
	link("EFO:0000004", "EFO:0000002")
	link("EFO:0000005", "EFO:0000002")
	link("EFO:0000011", "EFO:0000010")
	link("EFO:0000021", "EFO:0000020")
	link("EFO:0000022", "EFO:0000021")
	link("EFO:0000031", "EFO:0000030")
	link("EFO:0000032", "EFO:0000030")
	link("EFO:0000033", "EFO:0000030")
	link("EFO:0000067", "EFO:0000030")
	link("EFO:0000040", "EFO:0000030")
	link("EFO:0000051", "EFO:0000050")
	link("EFO:0000052", "EFO:0000050")
	link("EFO:0000054", "EFO:0000050")
	link("EFO:0000063", "EFO:0000002")
	return o
}

// Package integration holds the end-to-end shape tests: small-scale runs of
// the full pipeline asserting the *qualitative* findings of the paper's
// evaluation (who wins where, what degrades what), which are the
// reproduction targets of this suite. All runs are deterministic (fixed
// seeds), so these assertions are stable.
package integration

import (
	"context"
	"testing"

	"valentine/internal/core"
	"valentine/internal/experiment"
	"valentine/internal/report"
)

// run executes the quick grids over one fabricated source. The full suite
// takes ~30s, so it is skipped under `go test -short`.
func run(t *testing.T, methods []string) []experiment.Result {
	t.Helper()
	if testing.Short() {
		t.Skip("integration shape run")
	}
	rs, err := report.RunFabricated(context.Background(), report.Config{
		Rows:    60,
		Seeds:   1,
		Sources: []string{"TPC-DI"},
		Methods: methods,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("%s on %s: %v", r.Method, r.Pair, r.Err)
		}
	}
	return rs
}

// Paper §VII-A4: with verbatim schemata, all schema-based methods place all
// correct matches at the top.
func TestVerbatimSchemataPerfectForSchemaMethods(t *testing.T) {
	rs := run(t, experiment.SchemaBasedMethods())
	verbatim := func(r experiment.Result) bool { return !report.NoisySchemata(r) }
	for _, m := range experiment.SchemaBasedMethods() {
		for scenario, box := range experiment.BoxByScenario(rs, m, verbatim) {
			if box.Min < 0.999 {
				t.Errorf("%s on verbatim %s: min recall %.3f, want 1.0", m, scenario, box.Min)
			}
		}
	}
}

// Paper §VII-A1: noisy schemata degrade schema-based methods below their
// verbatim performance.
func TestNoisySchemataDegradeSchemaMethods(t *testing.T) {
	rs := run(t, experiment.SchemaBasedMethods())
	for _, m := range experiment.SchemaBasedMethods() {
		noisyMean, verbatimMean := 0.0, 0.0
		noisyN, verbatimN := 0, 0
		for _, r := range rs {
			if r.Method != m {
				continue
			}
			if report.NoisySchemata(r) {
				noisyMean += r.Recall
				noisyN++
			} else {
				verbatimMean += r.Recall
				verbatimN++
			}
		}
		noisyMean /= float64(noisyN)
		verbatimMean /= float64(verbatimN)
		if noisyMean >= verbatimMean {
			t.Errorf("%s: noisy-schema mean %.3f should trail verbatim mean %.3f",
				m, noisyMean, verbatimMean)
		}
	}
}

// Paper §VII-A2: view-unionable is harder than unionable for instance
// methods (no row overlap), and semantically-joinable is harder than
// joinable.
func TestInstanceMethodScenarioHardness(t *testing.T) {
	rs := run(t, experiment.InstanceBasedMethods())
	for _, m := range experiment.InstanceBasedMethods() {
		all := experiment.BoxByScenario(rs, m, nil)
		u := all[core.ScenarioUnionable]
		vu := all[core.ScenarioViewUnionable]
		if vu.Median > u.Median+1e-9 {
			t.Errorf("%s: view-unionable median %.3f should not beat unionable %.3f",
				m, vu.Median, u.Median)
		}
		j := all[core.ScenarioJoinable]
		sj := all[core.ScenarioSemJoinable]
		if sj.Median > j.Median+1e-9 {
			t.Errorf("%s: semantically-joinable median %.3f should not beat joinable %.3f",
				m, sj.Median, j.Median)
		}
	}
}

// Paper §VII-A3: EmbDI provides acceptable results on joinable scenarios
// (local embeddings bridge on value overlap) and SemProp does not dominate
// any scenario.
func TestHybridShapes(t *testing.T) {
	rs := run(t, experiment.HybridMethods())
	embdi := experiment.BoxByScenario(rs, experiment.MethodEmbDI, nil)
	if embdi[core.ScenarioJoinable].Median < 0.6 {
		t.Errorf("EmbDI joinable median %.3f, expected acceptable (≥ 0.6)",
			embdi[core.ScenarioJoinable].Median)
	}
}

// Paper Table V: instance-based methods are substantially slower than
// schema-based ones, and EmbDI is the slowest method overall.
func TestRuntimeOrdering(t *testing.T) {
	rs := run(t, []string{
		experiment.MethodComaSchema, experiment.MethodSimFlood,
		experiment.MethodJaccardLev, experiment.MethodEmbDI,
	})
	avg := experiment.AverageRuntime(rs)
	if avg[experiment.MethodEmbDI] <= avg[experiment.MethodComaSchema] {
		t.Errorf("EmbDI (%v) should be slower than COMA-schema (%v)",
			avg[experiment.MethodEmbDI], avg[experiment.MethodComaSchema])
	}
	if avg[experiment.MethodEmbDI] <= avg[experiment.MethodJaccardLev] {
		t.Errorf("EmbDI (%v) should be the slowest, JL at %v",
			avg[experiment.MethodEmbDI], avg[experiment.MethodJaccardLev])
	}
}

// Paper Table IV shape: identical naming conventions on Magellan-style
// pairs make schema methods perfect, and the Distribution-based method wins
// the ING-style datasets.
func TestCuratedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("curated run")
	}
	ctx := context.Background()
	cfg := report.Config{Rows: 120}
	mag, err := report.RunCurated(ctx, cfg, magellanPairs())
	if err != nil {
		t.Fatal(err)
	}
	ing, err := report.RunCurated(ctx, cfg, ingPairs())
	if err != nil {
		t.Fatal(err)
	}
	rows := report.TableIV(mag, ing)
	byMethod := map[string]report.TableIVRow{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	if byMethod[experiment.MethodComaSchema].Magellan < 0.99 {
		t.Errorf("COMA-schema on Magellan = %.3f, want ≈ 1", byMethod[experiment.MethodComaSchema].Magellan)
	}
	dist := byMethod[experiment.MethodDistribution]
	for m, row := range byMethod {
		if m == experiment.MethodDistribution {
			continue
		}
		if row.ING2 > dist.ING2 {
			t.Errorf("%s beats distribution-based on ING#2: %.3f vs %.3f", m, row.ING2, dist.ING2)
		}
	}
}

func magellanPairs() []core.TablePair {
	return datagenMagellan()
}

func ingPairs() []core.TablePair {
	return datagenING()
}

package integration

import (
	"valentine/internal/core"
	"valentine/internal/datagen"
)

func datagenMagellan() []core.TablePair {
	return datagen.Magellan(datagen.Options{Rows: 80})
}

func datagenING() []core.TablePair {
	return []core.TablePair{
		datagen.ING1(datagen.Options{Rows: 240}),
		datagen.ING2(datagen.Options{Rows: 240}),
	}
}

package discovery

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"valentine/internal/datagen"
	"valentine/internal/engine"
	"valentine/internal/table"
)

func contextTestIndex(t *testing.T) (*Index, *table.Table) {
	t.Helper()
	ix := New(Options{})
	for i := 0; i < 24; i++ {
		tab := datagen.TPCDI(datagen.Options{Rows: 40, Seed: int64(i + 1)})
		tab.Name = fmt.Sprintf("corpus_%02d", i)
		if err := ix.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	q := datagen.TPCDI(datagen.Options{Rows: 40, Seed: 99})
	q.Name = "query"
	return ix, q
}

// TestSearchContextCanceled: a mid-search cancel must surface ctx.Err()
// promptly instead of silently completing the sweep — the old Search ignored
// caller cancellation entirely.
func TestSearchContextCanceled(t *testing.T) {
	ix, q := contextTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the search starts: no column may be scored
	start := time.Now()
	res, err := ix.SearchContext(ctx, q, ModeJoin, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("partial results escaped a canceled search: %v", res)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled search took %v", elapsed)
	}
}

// TestSearchContextDeadline: an expired deadline behaves like a cancel.
func TestSearchContextDeadline(t *testing.T) {
	ix, q := contextTestIndex(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := ix.SearchContext(ctx, q, ModeJoin, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchBruteForceContextCanceled: the full-corpus sweep — the most
// expensive search path — must honor cancellation too; served callers rely
// on it for per-request deadlines.
func TestSearchBruteForceContextCanceled(t *testing.T) {
	ix, q := contextTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.SearchBruteForceContext(ctx, q, ModeJoin, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Live context: results equal the plain brute force, and the reported
	// epoch is the pinned snapshot's.
	res, epoch, err := ix.SearchBruteForceContext(context.Background(), q, ModeJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ix.SearchBruteForce(q, ModeJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(plain) {
		t.Fatalf("context brute force diverged: %d vs %d results", len(res), len(plain))
	}
	for i := range res {
		if res[i] != plain[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, res[i], plain[i])
		}
	}
	if epoch != ix.Epoch() {
		t.Fatalf("pinned epoch %d != current epoch %d on a quiescent index", epoch, ix.Epoch())
	}
}

// TestSearchContextEpochPinsSnapshot: the epoch returned is the one whose
// corpus produced the results — writers publishing between result
// construction and a separate Epoch() sample cannot skew it.
func TestSearchContextEpochPinsSnapshot(t *testing.T) {
	ix, q := contextTestIndex(t)
	before := ix.Epoch()
	res, epoch, err := ix.SearchContextEpoch(context.Background(), q, ModeJoin, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if epoch != before {
		t.Fatalf("epoch = %d, want %d (no writes between)", epoch, before)
	}
}

// TestSearchContextDeterministicAcrossParallelism: the engine-routed search
// must return bit-identical results to the plain sequential Search at every
// parallelism level, in both modes.
func TestSearchContextDeterministicAcrossParallelism(t *testing.T) {
	ix, q := contextTestIndex(t)
	for _, mode := range []Mode{ModeJoin, ModeUnion} {
		baseline, err := ix.Search(q, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(baseline) == 0 {
			t.Fatalf("mode %s: empty baseline", mode)
		}
		for _, par := range []int{1, 4, 16} {
			ctx := engine.WithOptions(context.Background(), engine.Options{Parallelism: par})
			got, err := ix.SearchContext(ctx, q, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(baseline) {
				t.Fatalf("mode %s parallelism %d: %d results, want %d", mode, par, len(got), len(baseline))
			}
			for i := range baseline {
				if got[i] != baseline[i] {
					t.Fatalf("mode %s parallelism %d rank %d: got %+v, want %+v",
						mode, par, i, got[i], baseline[i])
				}
			}
		}
	}
}

// TestSearchContextStats: the engine stats collector must see the shards'
// pruning (candidates + pruned covering the full sweep the bands avoided).
func TestSearchContextStats(t *testing.T) {
	ix, q := contextTestIndex(t)
	ctx, stats := engine.WithStats(context.Background())
	if _, err := ix.SearchContext(ctx, q, ModeJoin, 5); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	full := int64(q.NumColumns() * ix.NumColumns())
	if snap.Candidates+snap.Pruned != full {
		t.Fatalf("candidates %d + pruned %d != full sweep %d", snap.Candidates, snap.Pruned, full)
	}
	if snap.Candidates == 0 {
		t.Fatal("no candidates nominated on a corpus with related tables")
	}
}

package discovery

// Quarantine-mode loading: a corrupt segment file degrades the catalog
// instead of failing it — the file is moved aside (so no later incremental
// save can adopt its bytes), the event is counted, and every other segment
// serves.

import (
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"valentine/internal/faultfs"
)

func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestQuarantineLoadServesRest(t *testing.T) {
	ref, dir := buildV2Snapshot(t)
	defer ref.Close()
	segPath := firstSegFile(t, dir)
	corruptFile(t, segPath)

	// Strict load: total failure, unchanged contract.
	if ix, err := LoadSnapshot(dir); err == nil {
		ix.Close()
		t.Fatal("strict LoadSnapshot succeeded over a corrupt segment")
	}

	ix, err := LoadSnapshotWith(dir, LoadOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantine load: %v", err)
	}
	defer ix.Close()

	n, notes := ix.QuarantinedSegments()
	if n != 1 || len(notes) != 1 {
		t.Fatalf("quarantined = %d (%v), want 1", n, notes)
	}
	if st := ix.Stats(); st.QuarantinedSegments != 1 {
		t.Fatalf("Stats.QuarantinedSegments = %d, want 1", st.QuarantinedSegments)
	}
	// The corrupt file was moved aside, not left where a save could adopt it.
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in place: %v", err)
	}
	if _, err := os.Stat(segPath + ".quarantined"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}

	// The rest of the catalog serves: the loaded table set must be the
	// reference's minus the quarantined segment's tables.
	lost := make(map[string]bool)
	for _, name := range ref.Tables() {
		lost[name] = true
	}
	for _, name := range ix.Tables() {
		if !lost[name] {
			t.Fatalf("loaded table %q the reference does not have", name)
		}
		delete(lost, name)
	}
	if len(lost) == 0 {
		t.Fatal("quarantining a segment lost no tables — corruption missed the data?")
	}
	// Surviving tables answer searches.
	res, err := ix.Search(snapshotQuery(), ModeJoin, 5)
	if err != nil {
		t.Fatalf("search over degraded catalog: %v", err)
	}
	for _, r := range res {
		if lost[r.Table] {
			t.Fatalf("degraded search returned quarantined table %q", r.Table)
		}
	}

	// A subsequent save commits a manifest without the quarantined segment
	// and leaves the .quarantined file alone for forensics.
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatalf("save after quarantine: %v", err)
	}
	if _, err := os.Stat(segPath + ".quarantined"); err != nil {
		t.Fatalf("save pruned the quarantined file: %v", err)
	}
	reloaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("strict reload after post-quarantine save: %v", err)
	}
	defer reloaded.Close()
	if got, want := len(reloaded.Tables()), len(ix.Tables()); got != want {
		t.Fatalf("reloaded %d tables, want %d", got, want)
	}
}

func TestQuarantineMemtable(t *testing.T) {
	ref, dir := buildV2Snapshot(t)
	defer ref.Close()
	memPath := filepath.Join(dir, memName)
	if _, err := os.Stat(memPath); err != nil {
		t.Skipf("snapshot has no memtable file: %v", err)
	}
	corruptFile(t, memPath)
	ix, err := LoadSnapshotWith(dir, LoadOptions{Quarantine: true})
	if err != nil {
		t.Fatalf("quarantine load: %v", err)
	}
	defer ix.Close()
	if n, _ := ix.QuarantinedSegments(); n != 1 {
		t.Fatalf("quarantined = %d, want 1 (memtable)", n)
	}
	if _, err := os.Stat(memPath + ".quarantined"); err != nil {
		t.Fatalf("quarantined memtable missing: %v", err)
	}
	// Ingest still works on the fresh memtable.
	if err := ix.Add(snapshotQuery()); err != nil {
		t.Fatalf("add after memtable quarantine: %v", err)
	}
}

func TestQuarantineRenameFailureIsFatal(t *testing.T) {
	ref, dir := buildV2Snapshot(t)
	defer ref.Close()
	corruptFile(t, firstSegFile(t, dir))
	ff := faultfs.New(nil)
	ff.AddRule(faultfs.Rule{Op: faultfs.OpRename, Path: ".quarantined", Fault: faultfs.Fault{Err: syscall.EACCES}})
	ix, err := LoadSnapshotWith(dir, LoadOptions{FS: ff, Quarantine: true})
	if err == nil {
		ix.Close()
		t.Fatal("load degraded even though the corrupt file could not be moved aside")
	}
	if !strings.Contains(err.Error(), "quarantine rename failed") {
		t.Fatalf("error %v does not name the failed quarantine rename", err)
	}
}

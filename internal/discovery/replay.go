package discovery

// The replayable-mutation surface the write-ahead log rides on. A ReplayOp
// is one catalog mutation in already-profiled form: exactly the column
// summaries apply() would insert, with signatures and interned set ids in
// this catalog's id space. The serving layer's batcher converts incoming
// ops once via ReplayForm, logs the result, then applies the same value via
// ApplyReplayOps — so what the WAL records is, byte for byte, what the
// catalog executed, and replaying the log after a crash re-executes it
// exactly.
//
// Replay is idempotent by construction: upserts replace whatever is live,
// and a remove of an unknown table merely reports an error the replayer
// ignores. That makes at-least-once delivery safe — a batch that was both
// applied and logged before the crash re-applies to an identical catalog.

import "fmt"

// ReplayOp is one logged catalog mutation: a remove (Remove non-empty) or a
// profiled upsert (Name + Cols). All fields are exported, gob-encodable
// values — the WAL's record payload.
type ReplayOp struct {
	// Remove names the table to delete; empty for upserts.
	Remove string
	// Name and Cols carry an upsert: the table name and its indexed column
	// summaries, profiled against this catalog's dictionary.
	Name string
	Cols []ColumnProfile
}

// ReplayForm profiles one mutation into its logged form. Upserts run the
// full profiling path (signatures, tokens, interned distinct ids) — the
// expensive work happens exactly once, before the WAL append and before the
// writer lock.
func (ix *Index) ReplayForm(op Op) (ReplayOp, error) {
	switch {
	case op.Upsert != nil && op.Remove != "":
		return ReplayOp{}, fmt.Errorf("discovery: op sets both Upsert and Remove")
	case op.Upsert != nil:
		raw, err := ix.profileOp(op.Upsert, true)
		if err != nil {
			return ReplayOp{}, err
		}
		return ReplayOp{Name: raw.name, Cols: raw.cols}, nil
	case op.Remove != "":
		return ReplayOp{Remove: op.Remove}, nil
	default:
		return ReplayOp{}, fmt.Errorf("discovery: op sets neither Upsert nor Remove")
	}
}

// ApplyReplayOps executes a batch of already-profiled mutations as one
// write — one memtable rebuild, one epoch publish — and returns one error
// slot per op, exactly like Apply. Upserts always replace; the only
// per-op failure is removing an unknown table, which live callers surface
// and crash-recovery replay ignores.
func (ix *Index) ApplyReplayOps(rops []ReplayOp) []error {
	raw := make([]rawOp, len(rops))
	errs := make([]error, len(rops))
	valid := make([]rawOp, 0, len(rops))
	slot := make([]int, 0, len(rops))
	for i, r := range rops {
		if r.Remove != "" {
			raw[i] = rawOp{remove: r.Remove}
		} else {
			for _, c := range r.Cols {
				if len(c.Signature) != ix.k {
					errs[i] = fmt.Errorf("discovery: column %s.%s has %d-slot signature, want %d",
						r.Name, c.Column, len(c.Signature), ix.k)
					break
				}
			}
			if errs[i] != nil {
				continue
			}
			raw[i] = rawOp{name: r.Name, cols: r.Cols, upsert: true}
		}
		valid = append(valid, raw[i])
		slot = append(slot, i)
	}
	for i, err := range ix.apply(valid) {
		errs[slot[i]] = err
	}
	return errs
}

//go:build linux && !valentine_nommap

package discovery

// Memory mapping for v2 segment files on Linux. The mapping is read-only
// and shared: segment bytes live in the page cache, not on the Go heap, so
// a catalog's resident size is bounded by the working set the kernel keeps
// hot — not by the corpus. Build with -tags valentine_nommap to force the
// portable heap-read arm (mmap_fallback.go) for testing or exotic targets.

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

const mmapAvailable = true

// mapSegmentFile maps path read-only and returns the bytes plus the unmap
// function. The file descriptor is closed before returning — the mapping
// keeps the pages alive on its own. Empty files return empty data (the
// caller rejects them as truncated).
func mapSegmentFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("discovery: %s: %d bytes exceed the address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("discovery: mmap %s: %w", path, err)
	}
	// LSH probes and column reads hop across the segment, so sequential
	// readahead would fault in pages the query never touches and evict
	// hotter ones. Advisory only — failure changes performance, not
	// behavior.
	_ = syscall.Madvise(data, syscall.MADV_RANDOM)
	return data, func() error { return syscall.Munmap(data) }, nil
}

// mincoreResidentBytes estimates how many of the mapping's bytes are
// currently resident in the page cache. Small mappings are probed exactly;
// large ones are sampled (evenly spaced page windows, bounded syscall
// count) and scaled, so the estimate stays cheap enough for a stats
// endpoint polled per scrape. An unprobeable mapping reports fully
// resident — overestimating residency is the conservative direction for a
// "bigger than RAM" dial.
func mincoreResidentBytes(data []byte) int64 {
	size := int64(len(data))
	if size == 0 {
		return 0
	}
	page := int64(syscall.Getpagesize())
	pages := (size + page - 1) / page
	const maxExact = 4096 // probe ≤ 16 MiB (4 KiB pages) in one call
	if pages <= maxExact {
		vec := make([]byte, pages)
		if !mincoreRange(&data[0], size, vec) {
			return size
		}
		return residentCount(vec)*page - overshoot(pages, page, size, vec)
	}
	const windows, winPages = 64, 64
	stride := pages / windows
	vec := make([]byte, winPages)
	var probed, resident int64
	for w := int64(0); w < windows; w++ {
		startPage := w * stride
		n := int64(winPages)
		if startPage+n > pages {
			n = pages - startPage
		}
		off := startPage * page
		length := n * page
		if off+length > size {
			length = size - off
		}
		if !mincoreRange(&data[off], length, vec[:n]) {
			return size
		}
		resident += residentCount(vec[:n])
		probed += n
	}
	return int64(float64(size) * float64(resident) / float64(probed))
}

// mincoreRange fills vec with one residency byte per page of [addr,
// addr+length). Reports false when the kernel refuses the probe.
func mincoreRange(addr *byte, length int64, vec []byte) bool {
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(addr)), uintptr(length), uintptr(unsafe.Pointer(&vec[0])))
	return errno == 0
}

func residentCount(vec []byte) int64 {
	n := int64(0)
	for _, v := range vec {
		if v&1 != 0 {
			n++
		}
	}
	return n
}

// overshoot trims the partial last page when it is resident, so an exact
// probe never reports more resident bytes than the mapping has.
func overshoot(pages, page, size int64, vec []byte) int64 {
	if vec[pages-1]&1 != 0 {
		return pages*page - size
	}
	return 0
}

//go:build linux && !valentine_nommap

package discovery

// Memory mapping for v2 segment files on Linux. The mapping is read-only
// and shared: segment bytes live in the page cache, not on the Go heap, so
// a catalog's resident size is bounded by the working set the kernel keeps
// hot — not by the corpus. Build with -tags valentine_nommap to force the
// portable heap-read arm (mmap_fallback.go) for testing or exotic targets.

import (
	"fmt"
	"os"
	"syscall"
)

const mmapAvailable = true

// mapSegmentFile maps path read-only and returns the bytes plus the unmap
// function. The file descriptor is closed before returning — the mapping
// keeps the pages alive on its own. Empty files return empty data (the
// caller rejects them as truncated).
func mapSegmentFile(path string) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("discovery: %s: %d bytes exceed the address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("discovery: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

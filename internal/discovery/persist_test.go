package discovery

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestPersistenceRoundTrip(t *testing.T) {
	ix := New(Options{Signature: 64, Bands: 16, TokenBoost: 0.05})
	q := fixtureCorpus(t, ix)

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Options(), ix.Options(); got != want {
		t.Errorf("options = %+v, want %+v", got, want)
	}
	if loaded.NumTables() != ix.NumTables() || loaded.NumColumns() != ix.NumColumns() {
		t.Errorf("loaded %d tables/%d columns, want %d/%d",
			loaded.NumTables(), loaded.NumColumns(), ix.NumTables(), ix.NumColumns())
	}
	for _, mode := range []Mode{ModeJoin, ModeUnion} {
		orig, err := ix.Search(q, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		round, err := loaded.Search(q, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(orig) != len(round) {
			t.Fatalf("%s: %d results after round-trip, want %d", mode, len(round), len(orig))
		}
		for i := range orig {
			if orig[i].Table != round[i].Table || math.Abs(orig[i].Score-round[i].Score) > 1e-12 {
				t.Errorf("%s rank %d: %+v after round-trip, want %+v", mode, i+1, round[i], orig[i])
			}
		}
	}
	// A reloaded index stays mutable.
	if err := loaded.Add(q); err != nil {
		t.Fatal(err)
	}
	if loaded.NumTables() != ix.NumTables()+1 {
		t.Errorf("adding to a loaded index: %d tables", loaded.NumTables())
	}
}

func TestPersistenceFileHelpers(t *testing.T) {
	ix := New(Options{})
	q := fixtureCorpus(t, ix)
	path := filepath.Join(t.TempDir(), "nested", "lake.idx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Search(q, ModeJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Table != "orders" {
		t.Errorf("search on loaded index = %+v", res)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.idx")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage input should fail to load")
	}
}

package discovery

// Segments are the building block of the live catalog: an immutable slab of
// column profiles with their LSH band shards and a table→column directory.
// Sealed segments are shared between epoch snapshots and never mutated after
// publication; the memtable segment is rebuilt copy-on-write by each writer,
// so readers holding any snapshot see frozen state without taking a lock.
//
// A segment has two physical representations behind one accessor surface:
// heap (profiles, shard maps and directory materialized as Go values — the
// memtable and freshly compacted segments) and mapped (a v2 columnar file
// viewed in place through a []byte, typically an mmap of the page cache —
// see segv2.go). The search, compaction and persistence paths only go
// through the accessors below, so the two representations are
// interchangeable and score bit-identically.

import (
	"sync"

	"valentine/internal/intern"
	"valentine/internal/profile"
)

// segment is one immutable slab of the catalog. A table's columns never
// span segments: every table lives wholly inside exactly one segment.
type segment struct {
	id uint64

	// mapped, when non-nil, backs this segment with a v2 columnar file
	// viewed in place; the heap fields below stay empty. Mapped segments
	// are strictly read-only: the mutating methods (add, clone, without)
	// panic on them, which no code path reaches — only the heap memtable
	// is ever mutated, and compaction merges into a fresh heap segment.
	mapped *mappedSeg

	cols   []ColumnProfile
	tables map[string][]int32   // table name → column ids within this segment
	shards []map[uint64][]int32 // one bucket map per LSH band
	order  []string             // table names in insertion order (memtable rebuilds)

	// bytesOnce caches the resident-size estimate for Stats. Safe to attach
	// to the segment itself: the memtable is replaced wholesale (clone builds
	// a fresh struct) on every write, so a computed value can never go stale.
	bytesOnce sync.Once
	bytes     int64
}

// newSegment returns an empty segment with the given identity and band
// geometry.
func newSegment(id uint64, bands int) *segment {
	s := &segment{
		id:     id,
		tables: make(map[string][]int32),
		shards: make([]map[uint64][]int32, bands),
	}
	for b := range s.shards {
		s.shards[b] = make(map[uint64][]int32)
	}
	return s
}

// add appends one table's column profiles, banking each signature under its
// band keys. Only the writer building an unpublished segment may call it.
func (s *segment) add(name string, profiles []ColumnProfile, rows int) {
	if s.mapped != nil {
		panic("discovery: add on a mapped segment")
	}
	ids := make([]int32, len(profiles))
	for i, p := range profiles {
		id := int32(len(s.cols))
		s.cols = append(s.cols, p)
		ids[i] = id
		s.insertShards(id, p.Signature, rows)
	}
	s.tables[name] = ids
	s.order = append(s.order, name)
}

// insertShards banks a column id under its band keys. Empty-column
// signatures are skipped: they would all share one bucket per band (every
// slot is the EmptySlot sentinel) and collide with every other empty
// column at Jaccard 0, bloating candidate sets without ever ranking.
func (s *segment) insertShards(id int32, sig []uint64, rows int) {
	if profile.IsEmptySignature(sig) {
		return
	}
	bands := len(s.shards)
	for b := 0; b < bands; b++ {
		key := profile.BandKey(sig, b, rows)
		s.shards[b][key] = append(s.shards[b][key], id)
	}
}

// clone deep-copies the segment's directory structures. Column profiles are
// shared (they are treated as immutable once ingested); the slice header,
// table map and shard maps are fresh, so the clone can be mutated without
// disturbing readers of the original. Only the bounded memtable is ever
// cloned, which keeps the per-write cost independent of catalog size.
func (s *segment) clone() *segment {
	if s.mapped != nil {
		panic("discovery: clone on a mapped segment")
	}
	out := &segment{
		id:     s.id,
		cols:   append([]ColumnProfile(nil), s.cols...),
		tables: make(map[string][]int32, len(s.tables)),
		shards: make([]map[uint64][]int32, len(s.shards)),
		order:  append([]string(nil), s.order...),
	}
	for name, ids := range s.tables {
		out.tables[name] = append([]int32(nil), ids...)
	}
	for b, m := range s.shards {
		nm := make(map[uint64][]int32, len(m))
		for k, v := range m {
			nm[k] = append([]int32(nil), v...)
		}
		out.shards[b] = nm
	}
	return out
}

// without rebuilds the segment dropping the named table (no-op copy when the
// table is absent). Remaining tables keep their relative insertion order;
// column ids are reassigned, which is safe because the result is unpublished.
func (s *segment) without(name string, rows int) *segment {
	if s.mapped != nil {
		panic("discovery: without on a mapped segment")
	}
	out := newSegment(s.id, len(s.shards))
	for _, t := range s.order {
		if t == name {
			continue
		}
		ids := s.tables[t]
		profiles := make([]ColumnProfile, len(ids))
		for i, id := range ids {
			profiles[i] = s.cols[id]
		}
		out.add(t, profiles, rows)
	}
	return out
}

// --- accessor surface shared by the heap and mapped representations ---

// numTables returns the number of tables in the segment.
func (s *segment) numTables() int {
	if s.mapped != nil {
		return s.mapped.numTables()
	}
	return len(s.tables)
}

// numCols returns the number of columns in the segment.
func (s *segment) numCols() int {
	if s.mapped != nil {
		return s.mapped.numCols()
	}
	return len(s.cols)
}

// tableNames returns the table names in insertion order. The slice is
// shared: callers must not mutate it.
func (s *segment) tableNames() []string {
	if s.mapped != nil {
		return s.mapped.tableNames()
	}
	return s.order
}

// hasTable reports whether the segment holds the named table.
func (s *segment) hasTable(name string) bool {
	if s.mapped != nil {
		_, ok := s.mapped.tableIndex(name)
		return ok
	}
	_, ok := s.tables[name]
	return ok
}

// tableLen returns the number of columns of the named table (0 if absent).
func (s *segment) tableLen(name string) int {
	if s.mapped != nil {
		if ti, ok := s.mapped.tableIndex(name); ok {
			_, n := s.mapped.tableCols(ti)
			return n
		}
		return 0
	}
	return len(s.tables[name])
}

// colIDs returns the named table's column ids (nil if absent). Heap
// segments share their directory slice; mapped segments materialize the
// contiguous id run (columns of one table are assigned consecutive ids by
// add, an invariant the v2 writer relies on).
func (s *segment) colIDs(name string) []int32 {
	if s.mapped != nil {
		ti, ok := s.mapped.tableIndex(name)
		if !ok {
			return nil
		}
		first, n := s.mapped.tableCols(ti)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(first + i)
		}
		return ids
	}
	return s.tables[name]
}

// colTable returns the owning table name of column id. For mapped segments
// the string is a zero-copy view into the mapping: valid until Index.Close,
// safe for transient comparisons and map lookups, and cloned by any path
// that hands strings to callers (colProfile, search results).
func (s *segment) colTable(id int32) string {
	if s.mapped != nil {
		return s.mapped.colTable(id)
	}
	return s.cols[id].Table
}

// colName returns the column's own name (mapped: zero-copy view).
func (s *segment) colName(id int32) string {
	if s.mapped != nil {
		return s.mapped.colName(id)
	}
	return s.cols[id].Column
}

// colSig returns the column's MinHash signature (mapped: a view into the
// fixed-width signature matrix — no decode, no copy).
func (s *segment) colSig(id int32) []uint64 {
	if s.mapped != nil {
		return s.mapped.colSig(id)
	}
	return s.cols[id].Signature
}

// colTokens returns the column's lowercase name tokens. The mapped form
// allocates the []string header per call (each element is still a zero-copy
// view); search only pays this when TokenBoost is configured.
func (s *segment) colTokens(id int32) []string {
	if s.mapped != nil {
		return s.mapped.colTokens(id)
	}
	return s.cols[id].Tokens
}

// colSet returns the column's sorted interned distinct-value ids as a
// zero-copy kernel view (empty when the column was indexed without interned
// ids). The intern kernels run directly against the mapping.
func (s *segment) colSet(id int32) intern.Set {
	if s.mapped != nil {
		return intern.ViewSet(s.mapped.colSetIDs(id))
	}
	return intern.ViewSet(s.cols[id].SetIDs)
}

// colProfile returns a deep copy of one column's profile — strings cloned,
// slices fresh — safe to retain past any snapshot or mapping lifetime.
// Compaction, Profiles and the persistence writers materialize through it.
func (s *segment) colProfile(id int32) ColumnProfile {
	if s.mapped != nil {
		return s.mapped.colProfile(id)
	}
	p := s.cols[id]
	p.Tokens = append([]string(nil), p.Tokens...)
	p.Signature = append([]uint64(nil), p.Signature...)
	p.SetIDs = append([]uint32(nil), p.SetIDs...)
	return p
}

// tableProfiles materializes the named table's column profiles for merging
// into a new heap segment (compaction) or a persistence writer. Heap
// segments share the profile structs as before — they are immutable; mapped
// segments deep-copy out of the mapping.
func (s *segment) tableProfiles(name string) []ColumnProfile {
	ids := s.colIDs(name)
	out := make([]ColumnProfile, len(ids))
	for i, id := range ids {
		if s.mapped != nil {
			out[i] = s.mapped.colProfile(id)
		} else {
			out[i] = s.cols[id]
		}
	}
	return out
}

// probe returns the ids banked under key in band b, in insertion order (the
// v2 writer preserves bucket order byte-for-byte, so heap and mapped probes
// visit candidates identically). The slice is shared/viewed: read-only.
func (s *segment) probe(b int, key uint64) []int32 {
	if s.mapped != nil {
		return s.mapped.probe(b, key)
	}
	return s.shards[b][key]
}

// residentBytes reports the segment's (approximate) heap-resident size and
// its mapped size — exactly one is non-zero. Mapped segments cost the
// catalog only page-cache residency, which is the whole point of the v2
// format; the heap estimate covers profiles, shards and directory and is
// computed once per (immutable) segment.
func (s *segment) residentBytes() (heap, mapped int64) {
	if s.mapped != nil {
		return 0, int64(len(s.mapped.data))
	}
	s.bytesOnce.Do(func() {
		const colOverhead = 120   // struct + slice headers per column
		const bucketOverhead = 48 // map entry + slice header per bucket
		n := int64(0)
		for i := range s.cols {
			p := &s.cols[i]
			n += colOverhead + int64(len(p.Table)+len(p.Column)) +
				int64(len(p.Signature))*8 + int64(len(p.SetIDs))*4
			for _, t := range p.Tokens {
				n += int64(len(t)) + 16
			}
		}
		for _, m := range s.shards {
			for _, ids := range m {
				n += bucketOverhead + int64(len(ids))*4
			}
		}
		for name, ids := range s.tables {
			n += int64(len(name)) + int64(len(ids))*4 + 48
		}
		s.bytes = n
	})
	return s.bytes, 0
}

// residentMappedBytes estimates how many of the segment's mapped bytes the
// page cache currently holds (sampled mincore). Heap segments report 0 —
// their bytes are heap-resident by definition and counted elsewhere; v2
// segments loaded via the heap-read fallback report their full size for the
// same reason.
func (s *segment) residentMappedBytes() int64 {
	if s.mapped == nil {
		return 0
	}
	if s.mapped.unmap == nil {
		return int64(len(s.mapped.data))
	}
	return mincoreResidentBytes(s.mapped.data)
}

// tombKey identifies one sealed-segment table occurrence. Tombstones are
// per-occurrence, not per-name: a removed table can be re-added (landing in
// the memtable or a newer segment) without resurrecting the dead copy.
type tombKey struct {
	seg   uint64
	table string
}

// snapshot is one immutable epoch of the catalog. Readers load the current
// snapshot with a single atomic pointer read and then work entirely on
// frozen state; writers publish a successor snapshot and never touch a
// published one.
type snapshot struct {
	sealed []*segment // immutable slabs, oldest first
	mem    *segment   // the memtable: rebuilt copy-on-write by each writer
	tombs  map[tombKey]struct{}
	epoch  uint64

	nTables int // live tables across all segments
	nCols   int // live (non-tombstoned) columns
}

// segments returns the snapshot's segments in probe order: sealed oldest
// first, memtable last.
func (sn *snapshot) segments() []*segment {
	out := make([]*segment, 0, len(sn.sealed)+1)
	out = append(out, sn.sealed...)
	if sn.mem != nil && sn.mem.numTables() > 0 {
		out = append(out, sn.mem)
	}
	return out
}

// dead reports whether the named table in seg is tombstoned.
func (sn *snapshot) dead(seg *segment, name string) bool {
	if len(sn.tombs) == 0 {
		return false
	}
	_, ok := sn.tombs[tombKey{seg.id, name}]
	return ok
}

// lookup finds the live occurrence of a table: the owning segment and its
// column ids, or nil when the table is not indexed (or tombstoned).
func (sn *snapshot) lookup(name string) (*segment, []int32) {
	if sn.mem != nil {
		if ids, ok := sn.mem.tables[name]; ok {
			return sn.mem, ids
		}
	}
	// Newest sealed segment first: with per-occurrence tombstones at most
	// one occurrence is live, but probing newest-first keeps the lookup
	// correct even mid-refactor if an older dead copy still exists.
	for i := len(sn.sealed) - 1; i >= 0; i-- {
		seg := sn.sealed[i]
		if seg.hasTable(name) && !sn.dead(seg, name) {
			return seg, seg.colIDs(name)
		}
	}
	return nil, nil
}

// tombstonedCols counts columns shadowed by tombstones — the garbage
// compaction exists to drop.
func (sn *snapshot) tombstonedCols() int {
	n := 0
	for key := range sn.tombs {
		for _, seg := range sn.sealed {
			if seg.id == key.seg {
				n += seg.tableLen(key.table)
				break
			}
		}
	}
	return n
}

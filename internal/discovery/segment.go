package discovery

// Segments are the building block of the live catalog: an immutable slab of
// column profiles with their LSH band shards and a table→column directory.
// Sealed segments are shared between epoch snapshots and never mutated after
// publication; the memtable segment is rebuilt copy-on-write by each writer,
// so readers holding any snapshot see frozen state without taking a lock.

import "valentine/internal/profile"

// segment is one immutable slab of the catalog. A table's columns never
// span segments: every table lives wholly inside exactly one segment.
type segment struct {
	id     uint64
	cols   []ColumnProfile
	tables map[string][]int32   // table name → column ids within this segment
	shards []map[uint64][]int32 // one bucket map per LSH band
	order  []string             // table names in insertion order (memtable rebuilds)
}

// newSegment returns an empty segment with the given identity and band
// geometry.
func newSegment(id uint64, bands int) *segment {
	s := &segment{
		id:     id,
		tables: make(map[string][]int32),
		shards: make([]map[uint64][]int32, bands),
	}
	for b := range s.shards {
		s.shards[b] = make(map[uint64][]int32)
	}
	return s
}

// add appends one table's column profiles, banking each signature under its
// band keys. Only the writer building an unpublished segment may call it.
func (s *segment) add(name string, profiles []ColumnProfile, rows int) {
	ids := make([]int32, len(profiles))
	for i, p := range profiles {
		id := int32(len(s.cols))
		s.cols = append(s.cols, p)
		ids[i] = id
		s.insertShards(id, p.Signature, rows)
	}
	s.tables[name] = ids
	s.order = append(s.order, name)
}

// insertShards banks a column id under its band keys. Empty-column
// signatures are skipped: they would all share one bucket per band (every
// slot is the EmptySlot sentinel) and collide with every other empty
// column at Jaccard 0, bloating candidate sets without ever ranking.
func (s *segment) insertShards(id int32, sig []uint64, rows int) {
	if profile.IsEmptySignature(sig) {
		return
	}
	bands := len(s.shards)
	for b := 0; b < bands; b++ {
		key := profile.BandKey(sig, b, rows)
		s.shards[b][key] = append(s.shards[b][key], id)
	}
}

// clone deep-copies the segment's directory structures. Column profiles are
// shared (they are treated as immutable once ingested); the slice header,
// table map and shard maps are fresh, so the clone can be mutated without
// disturbing readers of the original. Only the bounded memtable is ever
// cloned, which keeps the per-write cost independent of catalog size.
func (s *segment) clone() *segment {
	out := &segment{
		id:     s.id,
		cols:   append([]ColumnProfile(nil), s.cols...),
		tables: make(map[string][]int32, len(s.tables)),
		shards: make([]map[uint64][]int32, len(s.shards)),
		order:  append([]string(nil), s.order...),
	}
	for name, ids := range s.tables {
		out.tables[name] = append([]int32(nil), ids...)
	}
	for b, m := range s.shards {
		nm := make(map[uint64][]int32, len(m))
		for k, v := range m {
			nm[k] = append([]int32(nil), v...)
		}
		out.shards[b] = nm
	}
	return out
}

// without rebuilds the segment dropping the named table (no-op copy when the
// table is absent). Remaining tables keep their relative insertion order;
// column ids are reassigned, which is safe because the result is unpublished.
func (s *segment) without(name string, rows int) *segment {
	out := newSegment(s.id, len(s.shards))
	for _, t := range s.order {
		if t == name {
			continue
		}
		ids := s.tables[t]
		profiles := make([]ColumnProfile, len(ids))
		for i, id := range ids {
			profiles[i] = s.cols[id]
		}
		out.add(t, profiles, rows)
	}
	return out
}

// numTables returns the number of tables in the segment.
func (s *segment) numTables() int { return len(s.tables) }

// tombKey identifies one sealed-segment table occurrence. Tombstones are
// per-occurrence, not per-name: a removed table can be re-added (landing in
// the memtable or a newer segment) without resurrecting the dead copy.
type tombKey struct {
	seg   uint64
	table string
}

// snapshot is one immutable epoch of the catalog. Readers load the current
// snapshot with a single atomic pointer read and then work entirely on
// frozen state; writers publish a successor snapshot and never touch a
// published one.
type snapshot struct {
	sealed []*segment // immutable slabs, oldest first
	mem    *segment   // the memtable: rebuilt copy-on-write by each writer
	tombs  map[tombKey]struct{}
	epoch  uint64

	nTables int // live tables across all segments
	nCols   int // live (non-tombstoned) columns
}

// segments returns the snapshot's segments in probe order: sealed oldest
// first, memtable last.
func (sn *snapshot) segments() []*segment {
	out := make([]*segment, 0, len(sn.sealed)+1)
	out = append(out, sn.sealed...)
	if sn.mem != nil && len(sn.mem.tables) > 0 {
		out = append(out, sn.mem)
	}
	return out
}

// dead reports whether the named table in seg is tombstoned.
func (sn *snapshot) dead(seg *segment, name string) bool {
	if len(sn.tombs) == 0 {
		return false
	}
	_, ok := sn.tombs[tombKey{seg.id, name}]
	return ok
}

// lookup finds the live occurrence of a table: the owning segment and its
// column ids, or nil when the table is not indexed (or tombstoned).
func (sn *snapshot) lookup(name string) (*segment, []int32) {
	if sn.mem != nil {
		if ids, ok := sn.mem.tables[name]; ok {
			return sn.mem, ids
		}
	}
	// Newest sealed segment first: with per-occurrence tombstones at most
	// one occurrence is live, but probing newest-first keeps the lookup
	// correct even mid-refactor if an older dead copy still exists.
	for i := len(sn.sealed) - 1; i >= 0; i-- {
		seg := sn.sealed[i]
		if ids, ok := seg.tables[name]; ok && !sn.dead(seg, name) {
			return seg, ids
		}
	}
	return nil, nil
}

// tombstonedCols counts columns shadowed by tombstones — the garbage
// compaction exists to drop.
func (sn *snapshot) tombstonedCols() int {
	n := 0
	for key := range sn.tombs {
		for _, seg := range sn.sealed {
			if seg.id == key.seg {
				n += len(seg.tables[key.table])
				break
			}
		}
	}
	return n
}

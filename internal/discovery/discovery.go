// Package discovery implements the suite's live catalog: a corpus-level
// column index for dataset discovery that mutates while it serves. Ingest N
// tables, answer top-k joinability/unionability queries in time proportional
// to the number of candidate columns rather than the size of the corpus, and
// upsert or remove tables at any time without stalling a single query.
//
// The paper's lessons learned (§IX "Schema Matching is resource-expensive",
// citing JOSIE, LSH Ensemble and Lazo) motivate the summaries: every indexed
// column is a MinHash signature plus a lightweight profile (inferred type,
// cardinality, name tokens), and signatures are sharded across LSH band
// buckets. A query probes the shards with its own column signatures, collects
// the colliding columns as candidates, and scores only those, so unrelated
// tables are never touched. The signature and banding primitives live in
// internal/profile and are shared with the pairwise lshmatch matcher, which
// makes indexed search return the same scores a brute-force sweep with that
// matcher would.
//
// Architecture (the §IX scaling lesson applied — discovery at lake scale is
// a serving problem, not a batch one):
//
//   - The catalog is a list of immutable sealed segments plus one small
//     memtable segment. Each segment holds column profiles, its own LSH band
//     shards, and a table directory; a table's columns never span segments.
//   - Readers are lock-free: every search loads the current epoch snapshot
//     with one atomic pointer read and then works entirely on frozen state.
//     A search never blocks on a writer, and a writer never waits for
//     readers to drain.
//   - Writers (Add, Upsert, Remove, Apply) serialize among themselves on a
//     writer mutex, profile their input before taking it, rebuild the small
//     memtable copy-on-write, and publish a successor snapshot atomically.
//     When the memtable reaches Options.SealAfter tables it is sealed and a
//     fresh memtable starts.
//   - Remove appends a tombstone for tables living in sealed segments (the
//     deletable-summary direction of the IBLT line of work in PAPERS.md);
//     tombstoned columns are skipped at probe time and physically dropped by
//     compaction, which merges sealed segments in the background once enough
//     garbage or fragmentation accumulates.
//
// Ingestion and queries run through the shared lazy column-profile layer
// (internal/profile): AddProfiled and SearchProfiled accept an
// already-profiled table so a corpus warmed once in a profile.Store is
// never re-profiled here — the same distinct sets, name tokens and MinHash
// signatures the matchers consume feed the index.
//
// Indexes persist two ways: Save/Load stream the flat live column list (the
// compact single-file format, unchanged since v1), and SaveSnapshot/
// LoadSnapshot write a segment manifest plus one immutable file per sealed
// segment, so periodic snapshots of a long-running catalog rewrite only the
// memtable and manifest. LoadFile accepts both.
package discovery

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/engine"
	"valentine/internal/faultfs"
	"valentine/internal/intern"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Mode selects the relatedness notion a search ranks by.
type Mode string

// Search modes: joinability ranks tables by their single best column
// correspondence (one good join column suffices); unionability ranks by the
// mean of each query column's best correspondence (a union needs every
// column covered). These mirror cmd/valentine discover's scoring.
const (
	ModeJoin  Mode = "join"
	ModeUnion Mode = "union"
)

// ParseMode validates a mode string.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeJoin, ModeUnion:
		return Mode(s), nil
	}
	return "", fmt.Errorf("discovery: mode %q is not join|union", s)
}

// defaultSealAfter is the memtable capacity (in tables) when
// Options.SealAfter is zero: writers rebuild the memtable copy-on-write, so
// this bounds the per-write copy cost independent of catalog size.
const defaultSealAfter = 16

// maxSealedSegments is the fragmentation bound: once more sealed segments
// accumulate, a background compaction merges them into one.
const maxSealedSegments = 8

// Options configures an index's LSH geometry, scoring, and segment policy.
type Options struct {
	// Signature is the MinHash signature length (default 128).
	Signature int
	// Bands is the number of LSH band shards (default 32 → 4 rows per
	// band, targeting Jaccard ≈ 0.3+).
	Bands int
	// TokenBoost blends column-name token overlap into candidate scores:
	// score = jaccard + TokenBoost × tokenJaccard(names). Zero (the
	// default) keeps scores identical to the lshmatch matcher's.
	TokenBoost float64
	// SealAfter is the number of tables the memtable accepts before being
	// sealed into an immutable segment (default 16). Smaller values bound
	// per-write copy cost tighter; larger values reduce fragmentation.
	SealAfter int
	// SegmentFormat selects the sealed-segment encoding SaveSnapshot
	// writes: SegmentFormatV2 (the default when empty; columnar files the
	// loader memory-maps and searches in place) or SegmentFormatV1 (gob
	// files fully decoded onto the heap on load — the opt-out for catalogs
	// that must stay readable by pre-v2 binaries). Loads auto-detect the
	// format on disk regardless, and the option is persisted with the
	// snapshot, so a resumed catalog keeps its choice.
	SegmentFormat string
}

// ColumnProfile is the indexed summary of one column: identity, lightweight
// statistics for filtering and display, and the MinHash signature used for
// candidate generation and scoring.
type ColumnProfile struct {
	Table     string
	Column    string
	Type      table.Type
	Rows      int      // total cells
	Distinct  int      // distinct non-empty values
	Tokens    []string // lowercase name tokens ("customerID" → [customer id])
	Signature []uint64
	// SetIDs is the column's distinct values as sorted interned ids in the
	// catalog dictionary's id space — the exact-kernel payload the v2
	// columnar segment format persists. Only populated when the column was
	// profiled against this catalog's dictionary (ingest always is); empty
	// otherwise, and nil in the flat v1 file format, whose loads mint a
	// fresh dictionary.
	SetIDs []uint32
}

// Index is the live catalog: a segmented, copy-on-write column index safe
// for fully concurrent use. Searches are lock-free (they read an atomically
// swapped epoch snapshot); Add/Upsert/Remove serialize among themselves and
// publish new epochs without ever blocking a search.
type Index struct {
	opts           Options
	k, bands, rows int
	sealAfter      int

	// wmu serializes writers (ingest, removal, sealing, snapshot splicing).
	// Readers never take it: the hot path is a single snap.Load().
	wmu     sync.Mutex
	snap    atomic.Pointer[snapshot]
	nextSeg uint64 // next segment id; guarded by wmu

	// compactMu serializes compactions (background and explicit); the flag
	// keeps apply from spawning redundant background runs.
	compactMu  sync.Mutex
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// lineage identifies this catalog's snapshot history: segment ids are
	// only unique within one lineage, so SaveSnapshot must not reuse
	// same-named segment files left in a directory by a different catalog.
	lineage uint64

	// fsys is the filesystem snapshots write through (nil: real disk) — the
	// faultfs seam. Set before concurrent use (SetFS or LoadSnapshotWith),
	// read-only after.
	fsys faultfs.FS

	// quarantined counts segment files a quarantine-mode load moved aside as
	// corrupt; quarantineLog records what and why. Set once at load, before
	// the index serves, immutable after.
	quarantined   int
	quarantineLog []string

	// unmaps collects the release closures of every mapped v2 segment this
	// index loaded; guarded by wmu. A mapping must outlive the segment's
	// presence in the live snapshot (compaction can retire a mapped segment
	// while a pinned search still reads it), so mappings are only released
	// by Close, never by segment turnover.
	unmaps []func() error

	// dict is the catalog's corpus-scoped value dictionary: ingest interns
	// each distinct value once (memoizing its MinHash base hash), and every
	// query profiles in hash-sharing mode against it — repeated values are
	// never re-hashed, and transient query values never grow it. The dict is
	// append-only (removals do not shrink it; its size is bounded by the
	// vocabulary ever ingested and reported in Stats); snapshots persist it
	// incrementally so a resumed catalog keeps the exact id space.
	dict *intern.Dict
}

// New returns an empty index with the given options (zero value selects the
// lshmatch defaults: 128-slot signatures, 32 bands).
func New(opts Options) *Index {
	k, bands, rows := profile.Geometry(opts.Signature, opts.Bands)
	sealAfter := opts.SealAfter
	if sealAfter <= 0 {
		sealAfter = defaultSealAfter
	}
	ix := &Index{
		opts:      opts,
		k:         k,
		bands:     bands,
		rows:      rows,
		sealAfter: sealAfter,
		nextSeg:   1,
		lineage:   newLineage(),
		dict:      intern.NewDict(),
	}
	ix.snap.Store(&snapshot{mem: newSegment(0, bands)})
	return ix
}

// newLineage draws a random lineage id. Collisions only matter between the
// handful of catalogs ever snapshotted into one directory, so 64 random
// bits are ample.
func newLineage() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand is effectively infallible; a zero lineage still
		// yields correct (never-skip) snapshot behavior.
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Options returns the options the index was created with.
func (ix *Index) Options() Options { return ix.opts }

// SetFS routes the index's snapshot I/O through fsys (nil restores the real
// disk) — the faultfs injection seam. Call before any concurrent use.
func (ix *Index) SetFS(fsys faultfs.FS) { ix.fsys = fsys }

// fs returns the filesystem snapshots write through, defaulting to the real
// disk.
func (ix *Index) fs() faultfs.FS { return faultfs.Or(ix.fsys) }

// Lineage returns the catalog's lineage id — the fence snapshots and the
// write-ahead log carry so state written by a different catalog is never
// adopted.
func (ix *Index) Lineage() uint64 { return ix.lineage }

// AdoptLineage re-fences the catalog to a known lineage id. Only an empty,
// never-written catalog may adopt (a WAL-only restart replays into a fresh
// index and must keep the log's identity); anything else is an error.
func (ix *Index) AdoptLineage(lineage uint64) error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	sn := ix.snap.Load()
	if sn.epoch != 0 || sn.nTables != 0 || len(sn.sealed) != 0 {
		return fmt.Errorf("discovery: catalog at epoch %d with %d tables cannot adopt a lineage", sn.epoch, sn.nTables)
	}
	ix.lineage = lineage
	return nil
}

// QuarantinedSegments reports how many corrupt segment files a
// quarantine-mode load moved aside, and the per-file reasons — the serving
// layer's degraded signal.
func (ix *Index) QuarantinedSegments() (int, []string) {
	return ix.quarantined, ix.quarantineLog
}

// Close releases the memory mappings of every mapped v2 segment the index
// loaded, after waiting for any background compaction to finish. The index
// must not be used afterwards: searches over mapped segments would read
// unmapped pages. Indexes without mapped segments (fresh, flat-loaded, or
// heap-fallback) need no Close, but calling it is always safe, including
// twice.
func (ix *Index) Close() error {
	ix.compactWG.Wait()
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	var first error
	for _, unmap := range ix.unmaps {
		if err := unmap(); err != nil && first == nil {
			first = err
		}
	}
	ix.unmaps = nil
	return first
}

// Dict returns the catalog's corpus-scoped value dictionary. Ingest paths
// that profile tables themselves (the serving layer's per-request
// profiling) should attach it via profile.NewInterned so signatures derive
// from the catalog's memoized hashes.
func (ix *Index) Dict() *intern.Dict { return ix.dict }

// NumTables returns the number of live (non-removed) tables.
func (ix *Index) NumTables() int { return ix.snap.Load().nTables }

// NumColumns returns the number of live (non-tombstoned) columns.
func (ix *Index) NumColumns() int { return ix.snap.Load().nCols }

// Epoch returns the catalog's current epoch: it increments on every
// published write batch and compaction, so two equal epochs observed over
// time guarantee no intervening mutation.
func (ix *Index) Epoch() uint64 { return ix.snap.Load().epoch }

// Tables returns the sorted names of live tables.
func (ix *Index) Tables() []string {
	sn := ix.snap.Load()
	out := make([]string, 0, sn.nTables)
	for _, seg := range sn.segments() {
		for _, name := range seg.tableNames() {
			if !sn.dead(seg, name) {
				// Clone: mapped segments hand out views into the mapping,
				// which Close would invalidate under the caller.
				out = append(out, strings.Clone(name))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Profiles returns the column profiles of one live table (nil if the
// table is unknown or removed). The returned profiles are deep copies safe
// to retain and mutate.
func (ix *Index) Profiles(tableName string) []ColumnProfile {
	sn := ix.snap.Load()
	seg, ids := sn.lookup(tableName)
	if seg == nil {
		return nil
	}
	out := make([]ColumnProfile, len(ids))
	for i, id := range ids {
		out[i] = seg.colProfile(id)
	}
	return out
}

// InternedColumnSets returns the distinct-value id sets of one live table's
// columns as zero-copy intern.Set views — kernel-ready without copying a
// single id out of a mapped segment. Nil when the table is unknown or
// removed; individual sets are empty when the catalog holds no interned
// payloads for them (flat-format loads). Views over mapped segments are
// valid until Close.
func (ix *Index) InternedColumnSets(tableName string) []intern.Set {
	sn := ix.snap.Load()
	seg, ids := sn.lookup(tableName)
	if seg == nil {
		return nil
	}
	out := make([]intern.Set, len(ids))
	for i, id := range ids {
		out[i] = seg.colSet(id)
	}
	return out
}

// Stats is a point-in-time summary of the catalog's internal state, shaped
// for monitoring endpoints and tests.
type Stats struct {
	// Epoch is the snapshot's epoch counter (one publish per write batch or
	// compaction).
	Epoch uint64 `json:"epoch"`
	// Tables and Columns count the live corpus.
	Tables  int `json:"tables"`
	Columns int `json:"columns"`
	// SealedSegments counts immutable segments; MemTables counts tables
	// currently in the mutable memtable segment.
	SealedSegments int `json:"sealed_segments"`
	MemTables      int `json:"mem_tables"`
	// Tombstones counts removed-but-not-yet-compacted table occurrences;
	// TombstonedColumns counts the columns they shadow (the garbage the
	// next compaction reclaims).
	Tombstones        int `json:"tombstones"`
	TombstonedColumns int `json:"tombstoned_columns"`
	// DictEntries/DictBytes size the catalog's append-only value dictionary
	// (distinct values ever ingested, with memoized MinHash base hashes).
	DictEntries int   `json:"dict_entries"`
	DictBytes   int64 `json:"dict_bytes"`
	// HeapSegmentBytes estimates the segment state resident on the Go heap;
	// MappedSegmentBytes counts v2 segment file bytes served via mmap from
	// the page cache instead. Their ratio is the "catalog bigger than RAM"
	// dial: mapped bytes cost address space, not resident memory.
	HeapSegmentBytes   int64 `json:"heap_segment_bytes"`
	MappedSegmentBytes int64 `json:"mapped_segment_bytes"`
	// MappedResidentBytes estimates (sampled mincore) how many of the
	// mapped bytes the page cache currently holds — the measured working
	// set, versus MappedSegmentBytes' address-space ceiling. Builds without
	// the mmap path report mapped bytes as fully resident.
	MappedResidentBytes int64 `json:"mapped_resident_bytes"`
	// QuarantinedSegments counts corrupt segment files a quarantine-mode
	// load moved aside; non-zero means the catalog is serving degraded.
	QuarantinedSegments int `json:"quarantined_segments"`
}

// Stats returns a consistent point-in-time summary of the catalog.
func (ix *Index) Stats() Stats {
	sn := ix.snap.Load()
	memTables := 0
	if sn.mem != nil {
		memTables = sn.mem.numTables()
	}
	var heapBytes, mappedBytes, residentBytes int64
	for _, seg := range sn.segments() {
		h, m := seg.residentBytes()
		heapBytes += h
		mappedBytes += m
		residentBytes += seg.residentMappedBytes()
	}
	ds := ix.dict.Stats()
	return Stats{
		Epoch:               sn.epoch,
		Tables:              sn.nTables,
		Columns:             sn.nCols,
		SealedSegments:      len(sn.sealed),
		MemTables:           memTables,
		Tombstones:          len(sn.tombs),
		TombstonedColumns:   sn.tombstonedCols(),
		DictEntries:         ds.Entries,
		DictBytes:           ds.Bytes,
		HeapSegmentBytes:    heapBytes,
		MappedSegmentBytes:  mappedBytes,
		MappedResidentBytes: residentBytes,
		QuarantinedSegments: ix.quarantined,
	}
}

// Result is one ranked table from a search.
type Result struct {
	// Table is the indexed table's name.
	Table string
	// Score is the mode's aggregate score in [0, 1+TokenBoost].
	Score float64
	// BestQuery/BestIndexed name the best-scoring column correspondence.
	BestQuery, BestIndexed string
	// Candidates counts the (query column, indexed column) pairs scored
	// for this table — the work the LSH shards did not prune away.
	Candidates int
}

// Search answers a top-k discovery query via the LSH band shards: only
// columns colliding with a query column in at least one band are scored.
// Results are ordered by descending score with names as tiebreak; at most k
// results are returned (k <= 0 means all). A table whose name equals the
// query's is skipped, so a corpus member can be its own query; an anonymous
// (empty-named) query skips nothing — no indexed table can share its name.
//
// Search is lock-free: it reads the epoch snapshot current at its start and
// never observes, nor waits for, concurrent writers.
func (ix *Index) Search(q *table.Table, mode Mode, k int) ([]Result, error) {
	out, _, err := ix.search(context.Background(), ix.queryProfile(q), mode, k, false)
	return out, err
}

// SearchContext is Search under a context: bucket probing and candidate
// re-ranking run on the engine's worker pool (one unit per query column,
// parallelism and stats from ctx), and a canceled or expired context
// abandons the partial search and returns ctx.Err() promptly. Results are
// bit-identical to Search's at any parallelism.
func (ix *Index) SearchContext(ctx context.Context, q *table.Table, mode Mode, k int) ([]Result, error) {
	out, _, err := ix.search(ctx, ix.queryProfile(q), mode, k, false)
	return out, err
}

// SearchContextEpoch is SearchContext returning also the epoch of the
// snapshot the search pinned — under concurrent writers this is the only
// value safe to correlate with Stats().Epoch or mutation responses
// (sampling Epoch() around the call can race past an intervening publish).
func (ix *Index) SearchContextEpoch(ctx context.Context, q *table.Table, mode Mode, k int) ([]Result, uint64, error) {
	return ix.search(ctx, ix.queryProfile(q), mode, k, false)
}

// SearchProfiled is Search over an already-profiled query: repeated queries
// with the same profile never recompute signatures or name tokens.
func (ix *Index) SearchProfiled(qp *profile.TableProfile, mode Mode, k int) ([]Result, error) {
	out, _, err := ix.search(context.Background(), qp, mode, k, false)
	return out, err
}

// SearchProfiledContext is SearchContext over an already-profiled query.
func (ix *Index) SearchProfiledContext(ctx context.Context, qp *profile.TableProfile, mode Mode, k int) ([]Result, error) {
	out, _, err := ix.search(ctx, qp, mode, k, false)
	return out, err
}

// SearchBruteForce scores every live column against every query column,
// bypassing the LSH shards. It is the reference implementation Search is
// tested against, and the honest baseline for benchmarks.
func (ix *Index) SearchBruteForce(q *table.Table, mode Mode, k int) ([]Result, error) {
	out, _, err := ix.search(context.Background(), ix.queryProfile(q), mode, k, true)
	return out, err
}

// SearchBruteForceContext is SearchBruteForce under a context — the
// full-corpus sweep is the most expensive search path, so served callers
// need its deadline and cancellation honored mid-sweep too. Returns the
// pinned snapshot's epoch like SearchContextEpoch.
func (ix *Index) SearchBruteForceContext(ctx context.Context, q *table.Table, mode Mode, k int) ([]Result, uint64, error) {
	return ix.search(ctx, ix.queryProfile(q), mode, k, true)
}

// SearchBestEffortContext is SearchContextEpoch (or SearchBruteForceContext
// when brute is set) under a latency budget: when ctx expires mid-scoring,
// the query columns that finished are merged into a correctly ranked —
// but possibly incomplete — result instead of being discarded. partial
// reports that truncation happened; the context error is returned
// alongside so the caller can tell a spent per-query budget from a dead
// request (core.IsBudgetExpiry). With a live context the output is exactly
// the non-best-effort variant's and partial is false.
func (ix *Index) SearchBestEffortContext(ctx context.Context, q *table.Table, mode Mode, k int, brute bool) (results []Result, epoch uint64, partial bool, err error) {
	results, epoch, err = ix.searchImpl(ctx, ix.queryProfile(q), mode, k, brute, true)
	return results, epoch, err != nil, err
}

// queryProfile profiles a query table in hash-sharing mode against the
// catalog dictionary: query values the corpus already holds reuse their
// memoized MinHash base hashes, and values the corpus has never seen are
// hashed on the fly without ever being inserted — a flood of junk queries
// cannot grow a served catalog's dictionary. Signatures are bit-identical
// to the plain profile.New path.
func (ix *Index) queryProfile(q *table.Table) *profile.TableProfile {
	return profile.NewHashSharing(q, ix.dict)
}

// colRef addresses one column in a snapshot: the owning segment plus the
// segment-local column id.
type colRef struct {
	seg *segment
	id  int32
}

// colAcc accumulates one query column's candidates for one indexed table —
// the per-unit state the engine pool fans out, merged later in query-column
// order so the result is independent of scheduling.
type colAcc struct {
	best       float64
	bestC      colRef // first column achieving best, in probe order
	candidates int
}

// search is the one scoring path behind every Search variant. It returns
// the ranked results plus the epoch of the snapshot it pinned.
func (ix *Index) search(ctx context.Context, qp *profile.TableProfile, mode Mode, k int, brute bool) ([]Result, uint64, error) {
	return ix.searchImpl(ctx, qp, mode, k, brute, false)
}

// searchImpl additionally supports best-effort mode: a context error
// mid-scoring merges whatever query columns completed (unfinished ones
// contribute nothing) and returns the partial ranking alongside the error,
// instead of dropping it.
func (ix *Index) searchImpl(ctx context.Context, qp *profile.TableProfile, mode Mode, k int, brute, bestEffort bool) ([]Result, uint64, error) {
	if mode != ModeJoin && mode != ModeUnion {
		return nil, 0, fmt.Errorf("discovery: mode %q is not join|union", mode)
	}
	q := qp.Table()
	if err := ValidateQuery(q); err != nil {
		return nil, 0, err
	}
	stats := engine.StatsFrom(ctx)
	// Query-side work needs no catalog state: signatures and tokens come
	// from the query profile's caches and depend only on q.
	nq := qp.NumColumns()
	qSigs := make([][]uint64, nq)
	qTokens := make([][]string, nq)
	stats.Timed(engine.StageGenerate, func() {
		for i := range qSigs {
			qSigs[i] = qp.Column(i).Signature(ix.k)
			qTokens[i] = qp.Column(i).NameTokens()
		}
	})

	// The hot path's only synchronization: one atomic load pins this
	// search's epoch. Everything below reads frozen state, so concurrent
	// writers never block (or are blocked by) this search.
	sn := ix.snap.Load()
	segs := sn.segments()

	// Candidate generation + scoring, one pool unit per query column. Each
	// unit accumulates into private state; merging happens afterwards in
	// query-column order, which makes the output bit-identical to the old
	// sequential sweep at any parallelism.
	perQuery := make([]map[string]*colAcc, nq)
	var scored atomic.Int64
	start := time.Now()
	err := engine.Map(ctx, engine.OptionsFrom(ctx).Workers(), nq, func(qi int) error {
		sig := qSigs[qi]
		if profile.IsEmptySignature(sig) {
			return nil // can only hit empty columns, all at score 0
		}
		acc := make(map[string]*colAcc)
		score := func(seg *segment, id int32) {
			// A corrupt mapped segment's bucket payload could carry ids
			// outside the column range; open-time validation checks every
			// offset table but not bucket values, so the guard lives here —
			// skip, never panic. Heap segments can't trip it.
			if id < 0 || int(id) >= seg.numCols() {
				return
			}
			// Empty columns never rank (see segment.insertShards); the brute
			// path must apply the same rule so it stays the reference
			// implementation of the pruned path even with TokenBoost set.
			tbl := seg.colTable(id)
			colSig := seg.colSig(id)
			if tbl == q.Name || profile.IsEmptySignature(colSig) {
				return
			}
			if sn.dead(seg, tbl) {
				return // tombstoned, awaiting compaction
			}
			s := profile.EstimateJaccard(sig, colSig)
			if ix.opts.TokenBoost != 0 {
				s += ix.opts.TokenBoost * tokenJaccard(qTokens[qi], seg.colTokens(id))
			}
			a := acc[tbl]
			if a == nil {
				a = &colAcc{bestC: colRef{nil, -1}}
				acc[tbl] = a
			}
			a.candidates++
			scored.Add(1)
			if s > a.best || a.bestC.seg == nil {
				a.best, a.bestC = s, colRef{seg, id}
			}
		}
		// Probe segments oldest-first so the within-table column probe
		// order — and therefore tie-broken best correspondences — is
		// stable across memtable seals and compactions.
		for _, seg := range segs {
			if brute {
				for id, n := 0, seg.numCols(); id < n; id++ {
					score(seg, int32(id))
				}
				continue
			}
			seen := make(map[int32]struct{})
			for b := 0; b < ix.bands; b++ {
				key := profile.BandKey(sig, b, ix.rows)
				for _, id := range seg.probe(b, key) {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
					score(seg, id)
				}
			}
		}
		perQuery[qi] = acc
		return nil
	})
	stats.Observe(engine.StageScore, time.Since(start))
	// Candidates counts the pairs that reached scoring; everything else the
	// full (query columns × live columns) sweep would have visited was
	// pruned — by the band shards, the empty-signature rules, the tombstone
	// filter, or the self-table skip — so candidates + pruned always equals
	// the sweep the shards saved.
	stats.AddCandidates(scored.Load())
	stats.AddScored(scored.Load())
	stats.AddPruned(int64(nq)*int64(sn.nCols) - scored.Load())
	mapErr := err
	if err != nil && !bestEffort {
		return nil, 0, err
	}

	// Merge per-query-column accumulators in query-column order — the exact
	// order the sequential sweep updated its per-table state in. In
	// best-effort mode, columns the expired context left unfinished have a
	// nil accumulator — identical in effect to an empty-signature column —
	// and simply contribute no scores.
	type tableAcc struct {
		perQuery   []float64 // best score per query column (union mode)
		best       float64
		bestQ      int
		bestC      colRef
		candidates int
	}
	acc := make(map[string]*tableAcc)
	for qi := 0; qi < nq; qi++ {
		for name, ca := range perQuery[qi] {
			a := acc[name]
			if a == nil {
				a = &tableAcc{perQuery: make([]float64, nq), bestQ: -1, bestC: colRef{nil, -1}}
				acc[name] = a
			}
			a.candidates += ca.candidates
			if ca.best > a.perQuery[qi] {
				a.perQuery[qi] = ca.best
			}
			if ca.bestC.seg != nil && (ca.best > a.best || a.bestQ < 0) {
				a.best, a.bestQ, a.bestC = ca.best, qi, ca.bestC
			}
		}
	}

	var out []Result
	stats.Timed(engine.StageRank, func() {
		out = make([]Result, 0, len(acc))
		for name, a := range acc {
			// Clone the names out of the snapshot: for mapped segments they
			// are views into the mapping, and results must stay valid past
			// an Index.Close.
			r := Result{Table: strings.Clone(name), Candidates: a.candidates}
			if a.bestQ >= 0 {
				r.BestQuery = q.Columns[a.bestQ].Name
				r.BestIndexed = strings.Clone(a.bestC.seg.colName(a.bestC.id))
			}
			switch mode {
			case ModeJoin:
				r.Score = a.best
			case ModeUnion:
				sum := 0.0
				for _, s := range a.perQuery {
					sum += s
				}
				r.Score = sum / float64(len(q.Columns))
			}
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].Table < out[j].Table
		})
		if k > 0 && len(out) > k {
			out = out[:k]
		}
	})
	return out, sn.epoch, mapErr
}

// ValidateQuery checks a query table's structure. Unlike table.Validate, an
// empty table name is legal for queries: anonymous queries can never share
// an indexed table's name, so the self-table skip never hides a result
// (defaulting anonymous queries to a fixed name like "query" would silently
// exclude a real table of that name).
func ValidateQuery(q *table.Table) error {
	if q.Name != "" {
		return q.Validate()
	}
	named := *q
	named.Name = "(anonymous query)"
	return named.Validate()
}

// tokenJaccard is the Jaccard similarity of two token lists as sets.
func tokenJaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(a))
	for _, t := range a {
		set[t] = struct{}{}
	}
	inter := 0
	seen := make(map[string]struct{}, len(b))
	for _, t := range b {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if _, ok := set[t]; ok {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return float64(inter) / float64(union)
}

// Package discovery implements a corpus-level column index for dataset
// discovery: ingest N tables once, answer top-k joinability/unionability
// queries in time proportional to the number of candidate columns rather
// than the size of the corpus.
//
// The paper's lessons learned (§IX "Schema Matching is resource-expensive",
// citing JOSIE, LSH Ensemble and Lazo) motivate the design: every indexed
// column is summarized by a MinHash signature plus a lightweight profile
// (inferred type, cardinality, name tokens), and signatures are sharded
// across LSH band buckets — one bucket shard per band. A query probes the
// shards with its own column signatures, collects the colliding columns as
// candidates, and scores only those, so unrelated tables are never touched.
// The signature and banding primitives live in internal/profile and are
// shared with the pairwise lshmatch matcher, which makes indexed search
// return the same scores a brute-force sweep with that matcher would.
//
// An Index is safe for concurrent use: queries run under a read lock and
// may proceed in parallel; ingestion and loading take the write lock.
// Indexes persist via Save/Load (a gob-encoded column-profile list; bucket
// shards are rebuilt on load, keeping the on-disk format compact).
//
// Ingestion and queries run through the shared lazy column-profile layer
// (internal/profile): AddProfiled and SearchProfiled accept an
// already-profiled table so a corpus warmed once in a profile.Store is
// never re-profiled here — the same distinct sets, name tokens and MinHash
// signatures the matchers consume feed the index.
package discovery

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"valentine/internal/engine"
	"valentine/internal/profile"
	"valentine/internal/table"
)

// Mode selects the relatedness notion a search ranks by.
type Mode string

// Search modes: joinability ranks tables by their single best column
// correspondence (one good join column suffices); unionability ranks by the
// mean of each query column's best correspondence (a union needs every
// column covered). These mirror cmd/valentine discover's scoring.
const (
	ModeJoin  Mode = "join"
	ModeUnion Mode = "union"
)

// ParseMode validates a mode string.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeJoin, ModeUnion:
		return Mode(s), nil
	}
	return "", fmt.Errorf("discovery: mode %q is not join|union", s)
}

// Options configures an index's LSH geometry and scoring.
type Options struct {
	// Signature is the MinHash signature length (default 128).
	Signature int
	// Bands is the number of LSH band shards (default 32 → 4 rows per
	// band, targeting Jaccard ≈ 0.3+).
	Bands int
	// TokenBoost blends column-name token overlap into candidate scores:
	// score = jaccard + TokenBoost × tokenJaccard(names). Zero (the
	// default) keeps scores identical to the lshmatch matcher's.
	TokenBoost float64
}

// ColumnProfile is the indexed summary of one column: identity, lightweight
// statistics for filtering and display, and the MinHash signature used for
// candidate generation and scoring.
type ColumnProfile struct {
	Table     string
	Column    string
	Type      table.Type
	Rows      int      // total cells
	Distinct  int      // distinct non-empty values
	Tokens    []string // lowercase name tokens ("customerID" → [customer id])
	Signature []uint64
}

// Index is a sharded corpus-level column index.
type Index struct {
	opts           Options
	k, bands, rows int

	mu     sync.RWMutex
	cols   []ColumnProfile
	tables map[string][]int     // table name → column ids
	shards []map[uint64][]int32 // one bucket map per LSH band
}

// New returns an empty index with the given options (zero value selects the
// lshmatch defaults: 128-slot signatures, 32 bands).
func New(opts Options) *Index {
	k, bands, rows := profile.Geometry(opts.Signature, opts.Bands)
	ix := &Index{
		opts:   opts,
		k:      k,
		bands:  bands,
		rows:   rows,
		tables: make(map[string][]int),
		shards: make([]map[uint64][]int32, bands),
	}
	for b := range ix.shards {
		ix.shards[b] = make(map[uint64][]int32)
	}
	return ix
}

// Options returns the options the index was created with.
func (ix *Index) Options() Options { return ix.opts }

// Add ingests every column of t: profile, signature, and bucket insertion.
// Table names must be unique within an index. Callers holding a warmed
// profile.Store should use AddProfiled to reuse its cached work.
func (ix *Index) Add(t *table.Table) error {
	return ix.AddProfiled(profile.New(t))
}

// AddProfiled ingests an already-profiled table, reusing the profile
// layer's cached distinct sets, name tokens and MinHash signatures.
func (ix *Index) AddProfiled(tp *profile.TableProfile) error {
	t := tp.Table()
	if err := t.Validate(); err != nil {
		return err
	}
	profiles := make([]ColumnProfile, tp.NumColumns())
	for i := range profiles {
		p := tp.Column(i)
		profiles[i] = ColumnProfile{
			Table:     t.Name,
			Column:    p.Name(),
			Type:      p.Type(),
			Rows:      p.Rows(),
			Distinct:  p.Distinct(),
			Tokens:    p.NameTokens(),
			Signature: p.Signature(ix.k),
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.tables[t.Name]; dup {
		return fmt.Errorf("discovery: table %q already indexed", t.Name)
	}
	ids := make([]int, len(profiles))
	for i, p := range profiles {
		id := len(ix.cols)
		ix.cols = append(ix.cols, p)
		ids[i] = id
		ix.insertShards(id, p.Signature)
	}
	ix.tables[t.Name] = ids
	return nil
}

// insertShards banks a column id under its band keys. Empty-column
// signatures are skipped: they would all share one bucket per band (every
// slot is the EmptySlot sentinel) and collide with every other empty
// column at Jaccard 0, bloating candidate sets without ever ranking.
func (ix *Index) insertShards(id int, sig []uint64) {
	if profile.IsEmptySignature(sig) {
		return
	}
	for b := 0; b < ix.bands; b++ {
		key := profile.BandKey(sig, b, ix.rows)
		ix.shards[b][key] = append(ix.shards[b][key], int32(id))
	}
}

// NumTables returns the number of indexed tables.
func (ix *Index) NumTables() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.tables)
}

// NumColumns returns the number of indexed columns.
func (ix *Index) NumColumns() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.cols)
}

// Tables returns the sorted names of indexed tables.
func (ix *Index) Tables() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.tables))
	for name := range ix.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Profiles returns the column profiles of one indexed table (nil if the
// table is unknown). The returned profiles are deep copies safe to retain
// and mutate.
func (ix *Index) Profiles(tableName string) []ColumnProfile {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids, ok := ix.tables[tableName]
	if !ok {
		return nil
	}
	out := make([]ColumnProfile, len(ids))
	for i, id := range ids {
		p := ix.cols[id]
		p.Tokens = append([]string(nil), p.Tokens...)
		p.Signature = append([]uint64(nil), p.Signature...)
		out[i] = p
	}
	return out
}

// Result is one ranked table from a search.
type Result struct {
	// Table is the indexed table's name.
	Table string
	// Score is the mode's aggregate score in [0, 1+TokenBoost].
	Score float64
	// BestQuery/BestIndexed name the best-scoring column correspondence.
	BestQuery, BestIndexed string
	// Candidates counts the (query column, indexed column) pairs scored
	// for this table — the work the LSH shards did not prune away.
	Candidates int
}

// Search answers a top-k discovery query via the LSH band shards: only
// columns colliding with a query column in at least one band are scored.
// Results are ordered by descending score with names as tiebreak; at most k
// results are returned (k <= 0 means all). A table whose name equals the
// query's is skipped, so a corpus member can be its own query.
func (ix *Index) Search(q *table.Table, mode Mode, k int) ([]Result, error) {
	return ix.search(context.Background(), profile.New(q), mode, k, false)
}

// SearchContext is Search under a context: bucket probing and candidate
// re-ranking run on the engine's worker pool (one unit per query column,
// parallelism and stats from ctx), and a canceled or expired context
// abandons the partial search and returns ctx.Err() promptly. Results are
// bit-identical to Search's at any parallelism.
func (ix *Index) SearchContext(ctx context.Context, q *table.Table, mode Mode, k int) ([]Result, error) {
	return ix.search(ctx, profile.New(q), mode, k, false)
}

// SearchProfiled is Search over an already-profiled query: repeated queries
// with the same profile never recompute signatures or name tokens.
func (ix *Index) SearchProfiled(qp *profile.TableProfile, mode Mode, k int) ([]Result, error) {
	return ix.search(context.Background(), qp, mode, k, false)
}

// SearchProfiledContext is SearchContext over an already-profiled query.
func (ix *Index) SearchProfiledContext(ctx context.Context, qp *profile.TableProfile, mode Mode, k int) ([]Result, error) {
	return ix.search(ctx, qp, mode, k, false)
}

// SearchBruteForce scores every indexed column against every query column,
// bypassing the LSH shards. It is the reference implementation Search is
// tested against, and the honest baseline for benchmarks.
func (ix *Index) SearchBruteForce(q *table.Table, mode Mode, k int) ([]Result, error) {
	return ix.search(context.Background(), profile.New(q), mode, k, true)
}

// colAcc accumulates one query column's candidates for one indexed table —
// the per-unit state the engine pool fans out, merged later in query-column
// order so the result is independent of scheduling.
type colAcc struct {
	best       float64
	bestC      int32 // first column achieving best, in probe order; -1 = none
	candidates int
}

func (ix *Index) search(ctx context.Context, qp *profile.TableProfile, mode Mode, k int, brute bool) ([]Result, error) {
	if mode != ModeJoin && mode != ModeUnion {
		return nil, fmt.Errorf("discovery: mode %q is not join|union", mode)
	}
	q := qp.Table()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	stats := engine.StatsFrom(ctx)
	// Query-side work is lock-free: signatures and tokens come from the
	// query profile's caches and depend only on q.
	nq := qp.NumColumns()
	qSigs := make([][]uint64, nq)
	qTokens := make([][]string, nq)
	stats.Timed(engine.StageGenerate, func() {
		for i := range qSigs {
			qSigs[i] = qp.Column(i).Signature(ix.k)
			qTokens[i] = qp.Column(i).NameTokens()
		}
	})

	ix.mu.RLock()
	defer ix.mu.RUnlock()

	// Candidate generation + scoring, one pool unit per query column. Each
	// unit accumulates into private state; merging happens afterwards in
	// query-column order, which makes the output bit-identical to the old
	// sequential sweep at any parallelism.
	perQuery := make([]map[string]*colAcc, nq)
	var scored atomic.Int64
	start := time.Now()
	err := engine.Map(ctx, engine.OptionsFrom(ctx).Workers(), nq, func(qi int) error {
		sig := qSigs[qi]
		if profile.IsEmptySignature(sig) {
			return nil // can only hit empty columns, all at score 0
		}
		acc := make(map[string]*colAcc)
		score := func(id int32) {
			// Empty columns never rank (see insertShards); the brute path
			// must apply the same rule so it stays the reference
			// implementation of the pruned path even with TokenBoost set.
			p := &ix.cols[id]
			if p.Table == q.Name || profile.IsEmptySignature(p.Signature) {
				return
			}
			s := profile.EstimateJaccard(sig, p.Signature)
			if ix.opts.TokenBoost != 0 {
				s += ix.opts.TokenBoost * tokenJaccard(qTokens[qi], p.Tokens)
			}
			a := acc[p.Table]
			if a == nil {
				a = &colAcc{bestC: -1}
				acc[p.Table] = a
			}
			a.candidates++
			scored.Add(1)
			if s > a.best || a.bestC < 0 {
				a.best, a.bestC = s, id
			}
		}
		if brute {
			for id := range ix.cols {
				score(int32(id))
			}
		} else {
			seen := make(map[int32]struct{})
			for b := 0; b < ix.bands; b++ {
				key := profile.BandKey(sig, b, ix.rows)
				for _, id := range ix.shards[b][key] {
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
					score(id)
				}
			}
		}
		perQuery[qi] = acc
		return nil
	})
	stats.Observe(engine.StageScore, time.Since(start))
	// Candidates counts the pairs that reached scoring; everything else the
	// full (query columns × indexed columns) sweep would have visited was
	// pruned — by the band shards, the empty-signature rules, or the
	// self-table skip — so candidates + pruned always equals the sweep the
	// shards saved.
	stats.AddCandidates(scored.Load())
	stats.AddScored(scored.Load())
	stats.AddPruned(int64(nq)*int64(len(ix.cols)) - scored.Load())
	if err != nil {
		return nil, err
	}

	// Merge per-query-column accumulators in query-column order — the exact
	// order the sequential sweep updated its per-table state in.
	type tableAcc struct {
		perQuery   []float64 // best score per query column (union mode)
		best       float64
		bestQ      int
		bestC      int32
		candidates int
	}
	acc := make(map[string]*tableAcc)
	for qi := 0; qi < nq; qi++ {
		for name, ca := range perQuery[qi] {
			a := acc[name]
			if a == nil {
				a = &tableAcc{perQuery: make([]float64, nq), bestQ: -1, bestC: -1}
				acc[name] = a
			}
			a.candidates += ca.candidates
			if ca.best > a.perQuery[qi] {
				a.perQuery[qi] = ca.best
			}
			if ca.bestC >= 0 && (ca.best > a.best || a.bestQ < 0) {
				a.best, a.bestQ, a.bestC = ca.best, qi, ca.bestC
			}
		}
	}

	var out []Result
	stats.Timed(engine.StageRank, func() {
		out = make([]Result, 0, len(acc))
		for name, a := range acc {
			r := Result{Table: name, Candidates: a.candidates}
			if a.bestQ >= 0 {
				r.BestQuery = q.Columns[a.bestQ].Name
				r.BestIndexed = ix.cols[a.bestC].Column
			}
			switch mode {
			case ModeJoin:
				r.Score = a.best
			case ModeUnion:
				sum := 0.0
				for _, s := range a.perQuery {
					sum += s
				}
				r.Score = sum / float64(len(q.Columns))
			}
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score > out[j].Score
			}
			return out[i].Table < out[j].Table
		})
		if k > 0 && len(out) > k {
			out = out[:k]
		}
	})
	return out, nil
}

// tokenJaccard is the Jaccard similarity of two token lists as sets.
func tokenJaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]struct{}, len(a))
	for _, t := range a {
		set[t] = struct{}{}
	}
	inter := 0
	seen := make(map[string]struct{}, len(b))
	for _, t := range b {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if _, ok := set[t]; ok {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return float64(inter) / float64(union)
}

package discovery

// The v2 sealed-segment on-disk format: one columnar file per segment,
// little-endian, fixed-width sections, designed so a reader never decodes —
// it validates the section table once and then serves every search, LSH
// probe and kernel call as slice views straight over the file bytes
// (typically an mmap of the page cache; see mmap_linux.go for the mapping
// and mmap_fallback.go for the portable heap-read arm).
//
// Layout (all offsets from file start, every section 8-byte aligned):
//
//	header (48 bytes)
//	  [0:8)   magic "VALSEG2\n"
//	  [8:12)  u32 format version (2)
//	  [12:16) u32 section count (11)
//	  [16:24) u64 segment id
//	  [24:28) u32 k        — MinHash signature slots per column
//	  [28:32) u32 bands    — LSH band count
//	  [32:36) u32 nCols
//	  [36:40) u32 nTables
//	  [40:44) u32 nStrings
//	  [44:48) u32 reserved
//	section table: 11 × { u64 off, u64 len }
//	sections:
//	  0 strOffs    (nStrings+1) × u32   prefix byte offsets into strBlob
//	  1 strBlob    raw string bytes (names + tokens, deduplicated)
//	  2 tblRecs    nTables × {name u32, firstCol u32, nCols u32}  insertion order
//	  3 colRecs    nCols × {tbl u32, name u32, type u32, rows u32, distinct u32,
//	                        tokOff u32, tokLen u32, setOff u32, setLen u32}
//	  4 sigs       nCols × k × u64      signature matrix, row-major per column
//	  5 bandCounts bands × u32          LSH keys per band
//	  6 bandKeys   Σcounts × u64        per band, keys ascending
//	  7 bucketEnds Σcounts × u32        per band, cumulative exclusive id ends
//	  8 bucketIDs  ΣbandIDs × u32       bucket contents, insertion order preserved
//	  9 tokenIDs   × u32                flat name-token string indices
//	 10 setIDs     × u32                flat sorted interned distinct-value ids
//
// Bucket contents keep their heap insertion order byte-for-byte, and column
// ids equal the heap segment's (columns of one table are contiguous), so a
// mapped probe visits candidates in exactly the order the heap probe would —
// the bit-identical-search contract costs the format nothing.
//
// Bytes past the last section are ignored, mirroring the dict.log contract:
// a crash that appends a torn tail to a segment file cannot poison a reader
// that only trusts the section table.
//
// The format is little-endian and readers view it in place, so a reader
// assumes a little-endian host — true of every platform this suite targets.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"unsafe"

	"valentine/internal/table"
)

// Named v2 segment-file errors. Loaders and tests distinguish a file that
// is not a v2 segment at all (ErrSegmentMagic), one cut short by a crash or
// partial copy (ErrSegmentTruncated), and one whose section table or
// records are internally inconsistent (ErrSegmentCorrupt). All three are
// returned — never panicked — on arbitrary input bytes.
var (
	ErrSegmentMagic     = errors.New("not a v2 segment file (bad magic)")
	ErrSegmentTruncated = errors.New("v2 segment file truncated")
	ErrSegmentCorrupt   = errors.New("v2 segment file corrupt")
)

const (
	segV2Magic    = "VALSEG2\n"
	segV2Version  = 2
	segV2Sections = 11
	segV2Header   = 48
)

// section ids in the section table.
const (
	secStrOffs = iota
	secStrBlob
	secTblRecs
	secColRecs
	secSigs
	secBandCounts
	secBandKeys
	secBucketEnds
	secBucketIDs
	secTokenIDs
	secSetIDs
)

const (
	tblRecWords = 3
	colRecWords = 9
)

// --- writer ---

// encodeSegV2 serializes a heap segment to the v2 columnar layout. Mapped
// segments are not re-encoded through here — their file bytes are already
// the v2 layout and are copied verbatim by SaveSnapshot.
func encodeSegV2(s *segment, k int) ([]byte, error) {
	if s.mapped != nil {
		return nil, fmt.Errorf("discovery: encodeSegV2 on a mapped segment")
	}
	nCols, nTables := len(s.cols), len(s.order)
	// String table: first-encounter order over (table names, column names,
	// tokens) makes the encoding deterministic.
	strIdx := make(map[string]uint32)
	var strOffs []uint32
	var strBlob []byte
	intern := func(v string) uint32 {
		if i, ok := strIdx[v]; ok {
			return i
		}
		i := uint32(len(strOffs))
		strIdx[v] = i
		strOffs = append(strOffs, uint32(len(strBlob)))
		strBlob = append(strBlob, v...)
		return i
	}

	tblRecs := make([]uint32, 0, nTables*tblRecWords)
	colRecs := make([]uint32, nCols*colRecWords)
	sigs := make([]uint64, 0, nCols*k)
	var tokenIDs, setIDs []uint32
	colSeen := 0
	for ti, name := range s.order {
		ids := s.tables[name]
		nameIdx := intern(name)
		if len(ids) > 0 {
			for i, id := range ids {
				if int(id) != int(ids[0])+i {
					return nil, fmt.Errorf("discovery: table %q has non-contiguous column ids", name)
				}
			}
		}
		first := uint32(0)
		if len(ids) > 0 {
			first = uint32(ids[0])
		}
		tblRecs = append(tblRecs, nameIdx, first, uint32(len(ids)))
		for _, id := range ids {
			p := &s.cols[id]
			if len(p.Signature) != k {
				return nil, fmt.Errorf("discovery: column %s.%s has %d-slot signature, want %d",
					p.Table, p.Column, len(p.Signature), k)
			}
			if p.Rows < 0 || int64(p.Rows) > int64(^uint32(0)) ||
				p.Distinct < 0 || int64(p.Distinct) > int64(^uint32(0)) {
				return nil, fmt.Errorf("discovery: column %s.%s counts overflow the v2 layout", p.Table, p.Column)
			}
			rec := colRecs[int(id)*colRecWords:]
			rec[0] = uint32(ti)
			rec[1] = intern(p.Column)
			rec[2] = uint32(int32(p.Type))
			rec[3] = uint32(p.Rows)
			rec[4] = uint32(p.Distinct)
			rec[5] = uint32(len(tokenIDs))
			rec[6] = uint32(len(p.Tokens))
			rec[7] = uint32(len(setIDs))
			rec[8] = uint32(len(p.SetIDs))
			for _, t := range p.Tokens {
				tokenIDs = append(tokenIDs, intern(t))
			}
			setIDs = append(setIDs, p.SetIDs...)
			sigs = append(sigs, p.Signature...)
			colSeen++
		}
	}
	if colSeen != nCols {
		return nil, fmt.Errorf("discovery: segment directory covers %d of %d columns", colSeen, nCols)
	}
	strOffs = append(strOffs, uint32(len(strBlob))) // final prefix offset

	bands := len(s.shards)
	bandCounts := make([]uint32, bands)
	var bandKeys []uint64
	var bucketEnds, bucketIDs []uint32
	for b, shard := range s.shards {
		keys := make([]uint64, 0, len(shard))
		for key := range shard {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		bandCounts[b] = uint32(len(keys))
		end := uint32(0)
		for _, key := range keys {
			bandKeys = append(bandKeys, key)
			for _, id := range shard[key] {
				bucketIDs = append(bucketIDs, uint32(id))
			}
			end += uint32(len(shard[key]))
			bucketEnds = append(bucketEnds, end)
		}
	}

	// Assemble: header, section table, 8-aligned sections.
	sizes := [segV2Sections]uint64{
		secStrOffs:    uint64(len(strOffs)) * 4,
		secStrBlob:    uint64(len(strBlob)),
		secTblRecs:    uint64(len(tblRecs)) * 4,
		secColRecs:    uint64(len(colRecs)) * 4,
		secSigs:       uint64(len(sigs)) * 8,
		secBandCounts: uint64(len(bandCounts)) * 4,
		secBandKeys:   uint64(len(bandKeys)) * 8,
		secBucketEnds: uint64(len(bucketEnds)) * 4,
		secBucketIDs:  uint64(len(bucketIDs)) * 4,
		secTokenIDs:   uint64(len(tokenIDs)) * 4,
		secSetIDs:     uint64(len(setIDs)) * 4,
	}
	var offs [segV2Sections]uint64
	pos := uint64(segV2Header + segV2Sections*16)
	for i, sz := range sizes {
		offs[i] = pos
		pos += (sz + 7) &^ 7
	}
	out := make([]byte, pos)
	copy(out, segV2Magic)
	le := binary.LittleEndian
	le.PutUint32(out[8:], segV2Version)
	le.PutUint32(out[12:], segV2Sections)
	le.PutUint64(out[16:], s.id)
	le.PutUint32(out[24:], uint32(k))
	le.PutUint32(out[28:], uint32(bands))
	le.PutUint32(out[32:], uint32(nCols))
	le.PutUint32(out[36:], uint32(nTables))
	le.PutUint32(out[40:], uint32(len(strOffs)-1))
	for i := 0; i < segV2Sections; i++ {
		le.PutUint64(out[segV2Header+i*16:], offs[i])
		le.PutUint64(out[segV2Header+i*16+8:], sizes[i])
	}
	putU32s := func(sec int, v []uint32) {
		dst := out[offs[sec]:]
		for i, x := range v {
			le.PutUint32(dst[i*4:], x)
		}
	}
	putU64s := func(sec int, v []uint64) {
		dst := out[offs[sec]:]
		for i, x := range v {
			le.PutUint64(dst[i*8:], x)
		}
	}
	putU32s(secStrOffs, strOffs)
	copy(out[offs[secStrBlob]:], strBlob)
	putU32s(secTblRecs, tblRecs)
	putU32s(secColRecs, colRecs)
	putU64s(secSigs, sigs)
	putU32s(secBandCounts, bandCounts)
	putU64s(secBandKeys, bandKeys)
	putU32s(secBucketEnds, bucketEnds)
	putU32s(secBucketIDs, bucketIDs)
	putU32s(secTokenIDs, tokenIDs)
	putU32s(secSetIDs, setIDs)
	return out, nil
}

// --- reader ---

// mappedSeg is a v2 segment viewed in place over data. All slice fields are
// unsafe views into data (valid exactly as long as the mapping), except the
// small per-band prefix indexes and the table directory built at open time.
type mappedSeg struct {
	data  []byte
	unmap func() error // nil for the heap-read fallback

	k, bands       int
	nCols, nTables int
	nStrings       int
	strOffs        []uint32
	strBlob        []byte
	tblRecs        []uint32
	colRecs        []uint32
	sigs           []uint64
	bandKeys       []uint64
	bucketEnds     []uint32
	bucketIDs      []int32
	tokenIDs       []uint32
	setIDs         []uint32
	keyStart       []int             // per band start into bandKeys/bucketEnds (len bands+1)
	idStart        []int             // per band start into bucketIDs (len bands+1)
	dir            map[string]uint32 // table name (view) → table index
}

// view helpers: the open-time validation guarantees every section offset is
// 8-aligned and in bounds, so these casts are within spec for unsafe.Slice.

func viewU32(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewI32(b []byte) []int32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewU64(b []byte) []uint64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// openSegV2 validates data as a v2 segment file and returns the in-place
// view. Validation is structural and O(sections + records): header, section
// table, string offsets, table/column record bounds, band bucket offset
// tables. Bucket id values are not scanned here — the search path clamps
// them, so a corrupt payload degrades to skipped candidates, never a panic.
// Bytes past the last section are permitted and ignored (crash-tail
// contract). data must be 8-byte aligned (mmap and the []uint64-backed heap
// fallback both are).
func openSegV2(data []byte, unmap func() error) (*mappedSeg, error) {
	fail := func(base error, format string, args ...any) (*mappedSeg, error) {
		return nil, fmt.Errorf("%w: %s", base, fmt.Sprintf(format, args...))
	}
	if len(data) < len(segV2Magic) {
		return fail(ErrSegmentTruncated, "%d bytes, want at least the %d-byte magic", len(data), len(segV2Magic))
	}
	if string(data[:len(segV2Magic)]) != segV2Magic {
		return nil, ErrSegmentMagic
	}
	if len(data) < segV2Header+segV2Sections*16 {
		return fail(ErrSegmentTruncated, "%d bytes, want %d-byte header + section table", len(data), segV2Header+segV2Sections*16)
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != segV2Version {
		return fail(ErrSegmentCorrupt, "format version %d, want %d", v, segV2Version)
	}
	if n := le.Uint32(data[12:]); n != segV2Sections {
		return fail(ErrSegmentCorrupt, "section count %d, want %d", n, segV2Sections)
	}
	m := &mappedSeg{
		data:     data,
		unmap:    unmap,
		k:        int(le.Uint32(data[24:])),
		bands:    int(le.Uint32(data[28:])),
		nCols:    int(le.Uint32(data[32:])),
		nTables:  int(le.Uint32(data[36:])),
		nStrings: int(le.Uint32(data[40:])),
	}
	var secs [segV2Sections][]byte
	for i := 0; i < segV2Sections; i++ {
		off := le.Uint64(data[segV2Header+i*16:])
		size := le.Uint64(data[segV2Header+i*16+8:])
		if off%8 != 0 {
			return fail(ErrSegmentCorrupt, "section %d offset %d not 8-aligned", i, off)
		}
		end := off + size
		if end < off || end > uint64(len(data)) {
			return fail(ErrSegmentTruncated, "section %d spans [%d, %d) past %d file bytes", i, off, end, len(data))
		}
		secs[i] = data[off:end]
	}
	want := func(sec int, size uint64, what string) error {
		if uint64(len(secs[sec])) != size {
			return fmt.Errorf("%w: %s section is %d bytes, want %d", ErrSegmentCorrupt, what, len(secs[sec]), size)
		}
		return nil
	}
	if err := want(secStrOffs, uint64(m.nStrings+1)*4, "string offsets"); err != nil {
		return nil, err
	}
	if err := want(secTblRecs, uint64(m.nTables)*tblRecWords*4, "table records"); err != nil {
		return nil, err
	}
	if err := want(secColRecs, uint64(m.nCols)*colRecWords*4, "column records"); err != nil {
		return nil, err
	}
	if err := want(secSigs, uint64(m.nCols)*uint64(m.k)*8, "signature matrix"); err != nil {
		return nil, err
	}
	if err := want(secBandCounts, uint64(m.bands)*4, "band counts"); err != nil {
		return nil, err
	}
	m.strOffs = viewU32(secs[secStrOffs])
	m.strBlob = secs[secStrBlob]
	m.tblRecs = viewU32(secs[secTblRecs])
	m.colRecs = viewU32(secs[secColRecs])
	m.sigs = viewU64(secs[secSigs])
	m.tokenIDs = viewU32(secs[secTokenIDs])
	m.setIDs = viewU32(secs[secSetIDs])

	// String offsets: a monotone prefix table ending exactly at the blob.
	for i := 0; i+1 < len(m.strOffs); i++ {
		if m.strOffs[i] > m.strOffs[i+1] {
			return fail(ErrSegmentCorrupt, "string offset %d decreases (%d → %d)", i, m.strOffs[i], m.strOffs[i+1])
		}
	}
	if n := len(m.strOffs); n > 0 && uint64(m.strOffs[n-1]) != uint64(len(m.strBlob)) {
		return fail(ErrSegmentCorrupt, "string offsets end at %d, blob is %d bytes", m.strOffs[n-1], len(m.strBlob))
	}

	// Band bucket addressing: counts → key/end runs → id runs, every prefix
	// table monotone and consistent with its section's size.
	counts := viewU32(secs[secBandCounts])
	m.keyStart = make([]int, m.bands+1)
	totalKeys := uint64(0)
	for b, c := range counts {
		m.keyStart[b] = int(totalKeys)
		totalKeys += uint64(c)
	}
	m.keyStart[m.bands] = int(totalKeys)
	if err := want(secBandKeys, totalKeys*8, "band keys"); err != nil {
		return nil, err
	}
	if err := want(secBucketEnds, totalKeys*4, "bucket ends"); err != nil {
		return nil, err
	}
	m.bandKeys = viewU64(secs[secBandKeys])
	m.bucketEnds = viewU32(secs[secBucketEnds])
	m.idStart = make([]int, m.bands+1)
	totalIDs := uint64(0)
	for b := 0; b < m.bands; b++ {
		m.idStart[b] = int(totalIDs)
		ends := m.bucketEnds[m.keyStart[b]:m.keyStart[b+1]]
		prev := uint32(0)
		for i, e := range ends {
			if e < prev {
				return fail(ErrSegmentCorrupt, "band %d bucket end %d decreases (%d → %d)", b, i, prev, e)
			}
			prev = e
		}
		totalIDs += uint64(prev)
	}
	m.idStart[m.bands] = int(totalIDs)
	if err := want(secBucketIDs, totalIDs*4, "bucket ids"); err != nil {
		return nil, err
	}
	m.bucketIDs = viewI32(secs[secBucketIDs])

	// Record bounds: every index a reader will ever follow is checked once
	// here, so the per-probe path carries no bounds logic beyond the
	// bucket-id clamp in search.
	for t := 0; t < m.nTables; t++ {
		rec := m.tblRecs[t*tblRecWords:]
		if rec[0] >= uint32(m.nStrings) {
			return fail(ErrSegmentCorrupt, "table %d name index %d out of %d strings", t, rec[0], m.nStrings)
		}
		if uint64(rec[1])+uint64(rec[2]) > uint64(m.nCols) {
			return fail(ErrSegmentCorrupt, "table %d columns [%d, %d) out of %d", t, rec[1], uint64(rec[1])+uint64(rec[2]), m.nCols)
		}
	}
	for c := 0; c < m.nCols; c++ {
		rec := m.colRecs[c*colRecWords:]
		if rec[0] >= uint32(m.nTables) {
			return fail(ErrSegmentCorrupt, "column %d table index %d out of %d", c, rec[0], m.nTables)
		}
		if rec[1] >= uint32(m.nStrings) {
			return fail(ErrSegmentCorrupt, "column %d name index %d out of %d strings", c, rec[1], m.nStrings)
		}
		if uint64(rec[5])+uint64(rec[6]) > uint64(len(m.tokenIDs)) {
			return fail(ErrSegmentCorrupt, "column %d tokens [%d, %d) out of %d", c, rec[5], uint64(rec[5])+uint64(rec[6]), len(m.tokenIDs))
		}
		if uint64(rec[7])+uint64(rec[8]) > uint64(len(m.setIDs)) {
			return fail(ErrSegmentCorrupt, "column %d set ids [%d, %d) out of %d", c, rec[7], uint64(rec[7])+uint64(rec[8]), len(m.setIDs))
		}
	}
	for i, s := range m.tokenIDs {
		if s >= uint32(m.nStrings) {
			return fail(ErrSegmentCorrupt, "token %d string index %d out of %d", i, s, m.nStrings)
		}
	}
	m.dir = make(map[string]uint32, m.nTables)
	for t := 0; t < m.nTables; t++ {
		m.dir[m.str(m.tblRecs[t*tblRecWords])] = uint32(t)
	}
	return m, nil
}

// id reads the segment id from the header.
func (m *mappedSeg) segID() uint64 { return binary.LittleEndian.Uint64(m.data[16:]) }

// str returns string i as a zero-copy view into the blob.
func (m *mappedSeg) str(i uint32) string {
	lo, hi := m.strOffs[i], m.strOffs[i+1]
	if lo == hi {
		return ""
	}
	return unsafe.String(&m.strBlob[lo], hi-lo)
}

func (m *mappedSeg) numCols() int   { return m.nCols }
func (m *mappedSeg) numTables() int { return m.nTables }

func (m *mappedSeg) tableIndex(name string) (uint32, bool) {
	ti, ok := m.dir[name]
	return ti, ok
}

func (m *mappedSeg) tableName(ti uint32) string { return m.str(m.tblRecs[ti*tblRecWords]) }

func (m *mappedSeg) tableCols(ti uint32) (first, n int) {
	rec := m.tblRecs[ti*tblRecWords:]
	return int(rec[1]), int(rec[2])
}

func (m *mappedSeg) tableNames() []string {
	out := make([]string, m.nTables)
	for t := range out {
		out[t] = m.tableName(uint32(t))
	}
	return out
}

func (m *mappedSeg) colTable(id int32) string {
	return m.tableName(m.colRecs[int(id)*colRecWords])
}

func (m *mappedSeg) colName(id int32) string {
	return m.str(m.colRecs[int(id)*colRecWords+1])
}

func (m *mappedSeg) colSig(id int32) []uint64 {
	return m.sigs[int(id)*m.k : (int(id)+1)*m.k]
}

func (m *mappedSeg) colTokens(id int32) []string {
	rec := m.colRecs[int(id)*colRecWords:]
	off, n := rec[5], rec[6]
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = m.str(m.tokenIDs[off+uint32(i)])
	}
	return out
}

func (m *mappedSeg) colSetIDs(id int32) []uint32 {
	rec := m.colRecs[int(id)*colRecWords:]
	off, n := rec[7], rec[8]
	return m.setIDs[off : off+n]
}

// colProfile materializes one column as an owned ColumnProfile: strings
// cloned out of the mapping, slices fresh — safe to retain forever.
func (m *mappedSeg) colProfile(id int32) ColumnProfile {
	rec := m.colRecs[int(id)*colRecWords:]
	tokens := m.colTokens(id)
	for i := range tokens {
		tokens[i] = strings.Clone(tokens[i])
	}
	return ColumnProfile{
		Table:     strings.Clone(m.colTable(id)),
		Column:    strings.Clone(m.colName(id)),
		Type:      table.Type(int32(rec[2])),
		Rows:      int(rec[3]),
		Distinct:  int(rec[4]),
		Tokens:    tokens,
		Signature: append([]uint64(nil), m.colSig(id)...),
		SetIDs:    append([]uint32(nil), m.colSetIDs(id)...),
	}
}

// probe returns the bucket banked under key in band b as a view into the
// mapping — binary search over the band's sorted keys, no allocation, no
// decode. Missing keys return nil.
func (m *mappedSeg) probe(b int, key uint64) []int32 {
	lo, hi := m.keyStart[b], m.keyStart[b+1]
	keys := m.bandKeys[lo:hi]
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
	if i == len(keys) || keys[i] != key {
		return nil
	}
	ends := m.bucketEnds[lo:hi]
	start := uint32(0)
	if i > 0 {
		start = ends[i-1]
	}
	base := m.idStart[b]
	return m.bucketIDs[base+int(start) : base+int(ends[i])]
}

// readFileAligned reads path into an 8-byte-aligned heap buffer (backed by
// a []uint64, since a plain []byte allocation guarantees no alignment) — the
// portable arm behind the mmap gate, and byte-identical input to openSegV2.
func readFileAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%w: %d bytes exceed the address space", ErrSegmentCorrupt, size)
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// loadSegV2 opens a v2 segment file, memory-mapping it when the platform
// supports it (and noMap is unset), falling back to an aligned heap read
// otherwise. The fallback shares every code path past the []byte, so the
// two arms are bit-identical in behavior — only residency differs.
func loadSegV2(path string, noMap bool) (*mappedSeg, error) {
	if !noMap && mmapAvailable {
		if data, unmap, err := mapSegmentFile(path); err == nil {
			m, err := openSegV2(data, unmap)
			if err != nil && unmap != nil {
				unmap()
			}
			return m, err
		}
		// Mapping failed (exotic filesystem, resource limits): fall through
		// to the heap read, which serves identically.
	}
	data, err := readFileAligned(path)
	if err != nil {
		return nil, err
	}
	return openSegV2(data, nil)
}

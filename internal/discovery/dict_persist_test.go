package discovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"valentine/internal/faultfs"
	"valentine/internal/table"
)

// TestSnapshotPersistsDictIDSpace: a snapshot round trip must reconstruct
// the catalog dictionary exactly — same entries, same ids — so id-derived
// state stays valid across a resume while sealed segment files (which are
// id-free) stay immutable.
func TestSnapshotPersistsDictIDSpace(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, got := ix.Dict(), loaded.Dict()
	if want.Len() != got.Len() {
		t.Fatalf("dict sizes differ: %d vs %d", want.Len(), got.Len())
	}
	for _, v := range want.Entries(0, want.Len()) {
		wid, _ := want.Lookup(v)
		gid, ok := got.Lookup(v)
		if !ok || gid != wid {
			t.Fatalf("value %q: id %d (present %v), want %d", v, gid, ok, wid)
		}
	}
}

// TestSnapshotDictLogIsIncremental: a second save of a grown catalog must
// append to dict.log, not rewrite it, and the reloaded dictionary must
// match the live one.
func TestSnapshotDictLogIsIncremental(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	add := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			tab := table.New(fmt.Sprintf("t%d", i)).AddColumn("k", vals("w", i*10, i*10+30))
			if err := ix.Add(tab); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(0, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, dictName)
	info1, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	firstEntries := ix.Dict().Len()

	add(3, 6)
	if ix.Dict().Len() <= firstEntries {
		t.Fatal("second batch interned nothing new; test is vacuous")
	}
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Size() <= info1.Size() {
		t.Fatalf("dict.log did not grow: %d -> %d", info1.Size(), info2.Size())
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dict().Len() != ix.Dict().Len() {
		t.Fatalf("reloaded dict has %d entries, want %d", loaded.Dict().Len(), ix.Dict().Len())
	}
}

// TestSnapshotDictLogCrashTail: bytes appended to dict.log by a save that
// crashed before committing its manifest must be ignored on load and
// truncated away by the next successful save.
func TestSnapshotDictLogCrashTail(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, dictName)
	committed, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash tail: garbage past the manifest-committed offset.
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\xff\xff garbage from a crashed save"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("load with crash tail: %v", err)
	}
	if loaded.Dict().Len() != ix.Dict().Len() {
		t.Fatalf("crash tail corrupted the dict: %d entries, want %d", loaded.Dict().Len(), ix.Dict().Len())
	}
	// The next save from the original catalog truncates the tail back.
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	clean, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Size() != committed.Size() {
		t.Fatalf("tail not truncated: %d bytes, want %d", clean.Size(), committed.Size())
	}
	if _, err := LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
}

// dictAdd grows a catalog with a deterministic table sequence, so a
// clean-room rebuild interns the exact same values in the exact same order.
func dictAdd(t *testing.T, ix *Index, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		tab := table.New(fmt.Sprintf("t%d", i)).AddColumn("k", vals("w", i*10, i*10+30))
		if err := ix.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
}

// dictMatchesCleanRoom checks that loaded's dictionary and behavior match a
// fresh catalog built from the same committed table sequence. Interning
// order within a column is not deterministic across processes (it follows
// distinct-set iteration), so the id spaces are compared as consistent
// bijections — same entry count, same value set, every loaded profile's ids
// resolving to the right values — with search results as the semantic
// proof: a catalog whose interned ids were corrupted cannot score overlap
// identically.
func dictMatchesCleanRoom(t *testing.T, loaded *Index, tables int) {
	t.Helper()
	clean := New(Options{SealAfter: 2})
	dictAdd(t, clean, 0, tables)
	want, got := clean.Dict(), loaded.Dict()
	if want.Len() != got.Len() {
		t.Fatalf("dict has %d entries, clean-room rebuild has %d", got.Len(), want.Len())
	}
	for _, v := range want.Entries(0, want.Len()) {
		if _, ok := got.Lookup(v); !ok {
			t.Fatalf("committed value %q missing from recovered dict", v)
		}
	}
	q := table.New("probe").AddColumn("k", vals("w", 5, 45))
	wres, err := clean.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := loaded.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wres) != len(gres) {
		t.Fatalf("recovered search returned %d results, clean-room %d", len(gres), len(wres))
	}
	for i := range wres {
		if wres[i].Table != gres[i].Table || wres[i].Score != gres[i].Score {
			t.Fatalf("result %d: recovered %s@%v, clean-room %s@%v",
				i, gres[i].Table, gres[i].Score, wres[i].Table, wres[i].Score)
		}
	}
}

// TestSnapshotDictLogTornWriteCrash: a save killed mid-append to dict.log —
// only a torn prefix of the new entries' bytes reaching disk — must leave
// the previously committed snapshot fully recoverable: the reloaded
// catalog's interned ids match a clean-room rebuild of the committed
// state, and the next successful save truncates the tear away.
func TestSnapshotDictLogTornWriteCrash(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	dictAdd(t, ix, 0, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	committed := ix.Dict().Len()

	// Grow the dictionary, then crash the next save inside its dict.log
	// append with 7 torn bytes.
	dictAdd(t, ix, 3, 6)
	ff := faultfs.New(nil)
	ff.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: dictName,
		Fault: faultfs.Fault{Crash: true, Torn: 7}})
	ix.SetFS(ff)
	if err := ix.SaveSnapshot(dir); err == nil {
		t.Fatal("save with a crashing dict.log append reported success")
	}
	if !ff.Crashed() {
		t.Fatal("crash rule never fired")
	}

	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("load after torn dict.log append: %v", err)
	}
	if loaded.Dict().Len() != committed {
		t.Fatalf("loaded dict has %d entries, committed snapshot had %d", loaded.Dict().Len(), committed)
	}
	if !reflect.DeepEqual(loaded.Dict().Entries(0, committed), ix.Dict().Entries(0, committed)) {
		t.Fatal("recovered dict prefix diverges from the catalog that wrote it")
	}
	dictMatchesCleanRoom(t, loaded, 3)

	// The recovered catalog carries on: grow it, save, and the re-save both
	// truncates the torn tail and commits the new entries.
	dictAdd(t, loaded, 3, 6)
	if err := loaded.SaveSnapshot(dir); err != nil {
		t.Fatalf("save from recovered catalog: %v", err)
	}
	again, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	dictMatchesCleanRoom(t, again, 6)
}

// TestSnapshotDictLogFsyncErrorThenCrash: an fsync failure during the
// dict.log append fails the save (the manifest never moves), and a crash
// before any retry still recovers — the appended-but-unacknowledged bytes
// past the committed prefix are ignored, and ids match a clean-room
// rebuild.
func TestSnapshotDictLogFsyncErrorThenCrash(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	dictAdd(t, ix, 0, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	committed := ix.Dict().Len()

	dictAdd(t, ix, 3, 6)
	ff := faultfs.New(nil)
	ff.AddRule(faultfs.Rule{Op: faultfs.OpSync, Path: dictName,
		Fault: faultfs.Fault{Err: syscall.EIO}})
	ix.SetFS(ff)
	if err := ix.SaveSnapshot(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("save err = %v, want EIO from the dict.log fsync", err)
	}

	// Process dies here; recovery sees the old manifest plus unsynced bytes
	// past its recorded dict.log prefix.
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("load after failed dict.log fsync: %v", err)
	}
	if loaded.Dict().Len() != committed {
		t.Fatalf("loaded dict has %d entries, committed snapshot had %d", loaded.Dict().Len(), committed)
	}
	if !reflect.DeepEqual(loaded.Dict().Entries(0, committed), ix.Dict().Entries(0, committed)) {
		t.Fatal("recovered dict prefix diverges from the catalog that wrote it")
	}
	dictMatchesCleanRoom(t, loaded, 3)
}

package discovery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"valentine/internal/table"
)

// TestSnapshotPersistsDictIDSpace: a snapshot round trip must reconstruct
// the catalog dictionary exactly — same entries, same ids — so id-derived
// state stays valid across a resume while sealed segment files (which are
// id-free) stay immutable.
func TestSnapshotPersistsDictIDSpace(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, got := ix.Dict(), loaded.Dict()
	if want.Len() != got.Len() {
		t.Fatalf("dict sizes differ: %d vs %d", want.Len(), got.Len())
	}
	for _, v := range want.Entries(0, want.Len()) {
		wid, _ := want.Lookup(v)
		gid, ok := got.Lookup(v)
		if !ok || gid != wid {
			t.Fatalf("value %q: id %d (present %v), want %d", v, gid, ok, wid)
		}
	}
}

// TestSnapshotDictLogIsIncremental: a second save of a grown catalog must
// append to dict.log, not rewrite it, and the reloaded dictionary must
// match the live one.
func TestSnapshotDictLogIsIncremental(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	add := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			tab := table.New(fmt.Sprintf("t%d", i)).AddColumn("k", vals("w", i*10, i*10+30))
			if err := ix.Add(tab); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(0, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, dictName)
	info1, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	firstEntries := ix.Dict().Len()

	add(3, 6)
	if ix.Dict().Len() <= firstEntries {
		t.Fatal("second batch interned nothing new; test is vacuous")
	}
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Size() <= info1.Size() {
		t.Fatalf("dict.log did not grow: %d -> %d", info1.Size(), info2.Size())
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dict().Len() != ix.Dict().Len() {
		t.Fatalf("reloaded dict has %d entries, want %d", loaded.Dict().Len(), ix.Dict().Len())
	}
}

// TestSnapshotDictLogCrashTail: bytes appended to dict.log by a save that
// crashed before committing its manifest must be ignored on load and
// truncated away by the next successful save.
func TestSnapshotDictLogCrashTail(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, dictName)
	committed, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash tail: garbage past the manifest-committed offset.
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\xff\xff garbage from a crashed save"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("load with crash tail: %v", err)
	}
	if loaded.Dict().Len() != ix.Dict().Len() {
		t.Fatalf("crash tail corrupted the dict: %d entries, want %d", loaded.Dict().Len(), ix.Dict().Len())
	}
	// The next save from the original catalog truncates the tail back.
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	clean, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Size() != committed.Size() {
		t.Fatalf("tail not truncated: %d bytes, want %d", clean.Size(), committed.Size())
	}
	if _, err := LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
}

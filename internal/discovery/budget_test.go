package discovery

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"valentine/internal/core"
)

// TestSearchBestEffortMatchesSearchWithoutBudget: with a generous context
// the best-effort entry point must be bit-identical to the plain search —
// it is the same pipeline, only the error contract differs.
func TestSearchBestEffortMatchesSearchWithoutBudget(t *testing.T) {
	ix, q := contextTestIndex(t)
	for _, brute := range []bool{false, true} {
		var want []Result
		var wantEpoch uint64
		var err error
		if brute {
			want, wantEpoch, err = ix.SearchBruteForceContext(context.Background(), q, ModeUnion, 5)
		} else {
			want, wantEpoch, err = ix.SearchContextEpoch(context.Background(), q, ModeUnion, 5)
		}
		if err != nil {
			t.Fatal(err)
		}
		got, epoch, partial, err := ix.SearchBestEffortContext(context.Background(), q, ModeUnion, 5, brute)
		if err != nil || partial {
			t.Fatalf("brute=%v: err=%v partial=%v", brute, err, partial)
		}
		if epoch != wantEpoch {
			t.Fatalf("brute=%v: epoch %d, want %d", brute, epoch, wantEpoch)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("brute=%v: best-effort diverges from plain search\ngot  %v\nwant %v", brute, got, want)
		}
	}
}

// TestSearchBestEffortBudgetExpiry: a spent budget surfaces partial=true
// with the deadline error alongside (the caller classifies it via
// core.IsBudgetExpiry); the outer context staying live is what makes it
// best-effort rather than failure.
func TestSearchBestEffortBudgetExpiry(t *testing.T) {
	ix, q := contextTestIndex(t)
	outer := context.Background()
	qctx, qcancel := core.BudgetContext(outer, time.Nanosecond)
	defer qcancel()
	time.Sleep(time.Millisecond) // deterministically spent
	_, _, partial, err := ix.SearchBestEffortContext(qctx, q, ModeJoin, 5, false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if !partial {
		t.Fatal("partial flag not set on budget expiry")
	}
	if !core.IsBudgetExpiry(outer, err) {
		t.Fatal("expiry with a live outer context must classify as best-effort")
	}
	// A dead outer request is NOT a budget case.
	canceled, cancel := context.WithCancel(outer)
	cancel()
	_, _, _, err = ix.SearchBestEffortContext(canceled, q, ModeJoin, 5, false)
	if core.IsBudgetExpiry(canceled, err) {
		t.Fatal("cancellation must not classify as budget expiry")
	}
}

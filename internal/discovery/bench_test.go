package discovery

// Search-latency-under-ingest benches: the acceptance criterion of the live
// catalog is that a search never blocks on a writer. The GlobalLock variants
// reproduce the pre-segmentation locking discipline — one RWMutex where
// every write excludes every search — over the same scoring work, so the
// live-vs-locked contrast isolates the architecture, not the workload.

import (
	"fmt"
	"sync"
	"testing"

	"valentine/internal/profile"
	"valentine/internal/table"
)

func benchCorpus(b *testing.B, n int) (*Index, *table.Table, []*table.Table) {
	b.Helper()
	ix := New(Options{})
	for i := 0; i < n; i++ {
		tab := benchTable(fmt.Sprintf("corpus%03d", i), i)
		if err := ix.Add(tab); err != nil {
			b.Fatal(err)
		}
	}
	churn := make([]*table.Table, 32)
	for i := range churn {
		churn[i] = benchTable(fmt.Sprintf("churn%02d", i), i)
	}
	q := table.New("query").
		AddColumn("customer_id", vals("u", 0, 400)).
		AddColumn("city", vals("c", 0, 400))
	return ix, q, churn
}

func benchTable(name string, i int) *table.Table {
	return table.New(name).
		AddColumn("cust", vals("u", i*7, i*7+400)).
		AddColumn("town", vals("c", i*5, i*5+400))
}

// globalLockIndex wraps the catalog in the old locking discipline: searches
// share a read lock, every ingest takes the write lock — so one write
// stalls all searches behind it (and is itself stalled by running ones).
type globalLockIndex struct {
	mu sync.RWMutex
	ix *Index
}

func (g *globalLockIndex) Search(q *table.Table, mode Mode, k int) ([]Result, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ix.Search(q, mode, k)
}

func (g *globalLockIndex) UpsertProfiled(tp *profile.TableProfile) error {
	// The old AddProfiled computed profiles before taking its lock; the
	// baseline must do the same — exactly the artifacts ingestion reads,
	// no more — or the contrast would mismeasure the old discipline.
	for i := 0; i < tp.NumColumns(); i++ {
		p := tp.Column(i)
		p.Signature(g.ix.k)
		p.NameTokens()
		p.Distinct()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ix.UpsertProfiled(tp)
}

// ingester churns upserts in a background goroutine until the returned stop
// function is called. Profiling happens freshly each round (profile.New),
// as a live server ingesting new table versions would.
func ingester(b *testing.B, churn []*table.Table, upsert func(*profile.TableProfile) error) (stop func() int) {
	done := make(chan struct{})
	var n int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := upsert(profile.New(churn[i%len(churn)])); err != nil {
				b.Error(err)
				return
			}
			n++
		}
	}()
	return func() int {
		close(done)
		wg.Wait()
		return n
	}
}

// BenchmarkSearchIdle is the baseline: search latency with no concurrent
// writers.
func BenchmarkSearchIdle(b *testing.B) {
	ix, q, _ := benchCorpus(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, ModeJoin, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchUnderIngest measures search latency on the live catalog
// while a writer continuously upserts: searches read the epoch snapshot and
// never wait on the writer, so the gap to BenchmarkSearchIdle is CPU
// contention only.
func BenchmarkSearchUnderIngest(b *testing.B) {
	ix, q, churn := benchCorpus(b, 150)
	stop := ingester(b, churn, ix.UpsertProfiled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, ModeJoin, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ingested := stop()
	ix.WaitCompaction()
	b.ReportMetric(float64(ingested)/float64(b.N), "upserts/search")
}

// BenchmarkSearchUnderIngestGlobalLock is the same workload under the old
// discipline: every upsert excludes every search on one RWMutex, so search
// latency inherits the writer's critical sections.
func BenchmarkSearchUnderIngestGlobalLock(b *testing.B) {
	ix, q, churn := benchCorpus(b, 150)
	g := &globalLockIndex{ix: ix}
	stop := ingester(b, churn, g.UpsertProfiled)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Search(q, ModeJoin, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ingested := stop()
	ix.WaitCompaction()
	b.ReportMetric(float64(ingested)/float64(b.N), "upserts/search")
}

// BenchmarkUpsert measures steady-state ingest cost on a standing catalog
// (profiling included, as a serving upsert pays it).
func BenchmarkUpsert(b *testing.B) {
	ix, _, churn := benchCorpus(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Upsert(churn[i%len(churn)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ix.WaitCompaction()
}

// BenchmarkApplyBatch measures the amortization micro-batching buys: 16
// upserts applied as one batch vs 16 single-op writes (see BenchmarkUpsert)
// — one memtable rebuild and one epoch publish per batch.
func BenchmarkApplyBatch(b *testing.B) {
	ix, _, churn := benchCorpus(b, 150)
	const batch = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ops := make([]Op, batch)
		for j := range ops {
			ops[j] = Op{Upsert: profile.New(churn[(i*len(ops)+j)%len(churn)])}
		}
		b.StartTimer()
		for _, err := range ix.Apply(ops) {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	ix.WaitCompaction()
}

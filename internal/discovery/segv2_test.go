package discovery

// v2 columnar segment tests: the exactness contract (mapped search ≡ heap
// search ≡ v1-loaded search, bit-identical results after arbitrary
// mutation interleavings), the corruption contract (named errors, never a
// panic, crash tails ignored), and the zero-copy contract (kernel probes
// against mapped sets at 0 allocs/op).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"valentine/internal/intern"
	"valentine/internal/table"
)

// saveBothFormats snapshots ix to fresh v1 and v2 directories under base.
func saveBothFormats(t *testing.T, ix *Index, base string) (v1dir, v2dir string) {
	t.Helper()
	v1dir = filepath.Join(base, "v1")
	v2dir = filepath.Join(base, "v2")
	if err := ix.SaveSnapshotFormat(v1dir, SegmentFormatV1); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveSnapshotFormat(v2dir, SegmentFormatV2); err != nil {
		t.Fatal(err)
	}
	return v1dir, v2dir
}

// TestSegV2RandomizedConformance is the tentpole's acceptance criterion:
// after an arbitrary interleaving of Add/Upsert/Remove/Compact, a catalog
// snapshotted in both formats and loaded three ways — v1 gob (heap), v2
// mapped, v2 heap-read fallback — answers every search bit-identically to
// the original, full Result structs included. Runs under -race in CI's
// serving leg.
func TestSegV2RandomizedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	makeTable := func(name string) *table.Table {
		tab := table.New(name)
		ncols := 1 + rng.Intn(3)
		nrows := 60 + rng.Intn(90)
		for c := 0; c < ncols; c++ {
			lo := rng.Intn(250)
			tab.AddColumn(fmt.Sprintf("col%d", c), vals("u", lo, lo+nrows))
		}
		return tab
	}
	ix := New(Options{SealAfter: 3})
	names := make([]string, 24)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}
	live := make(map[string]bool)

	check := func(step int) {
		t.Helper()
		ix.WaitCompaction() // freeze the layout both snapshots must share
		v1dir, v2dir := saveBothFormats(t, ix, filepath.Join(t.TempDir(), fmt.Sprintf("s%d", step)))
		fromV1, err := LoadSnapshot(v1dir)
		if err != nil {
			t.Fatalf("step %d: load v1: %v", step, err)
		}
		mapped, err := loadSnapshot(v2dir, false)
		if err != nil {
			t.Fatalf("step %d: load v2 mapped: %v", step, err)
		}
		defer mapped.Close()
		heap, err := loadSnapshot(v2dir, true)
		if err != nil {
			t.Fatalf("step %d: load v2 heap: %v", step, err)
		}
		loads := map[string]*Index{"v1": fromV1, "v2-mapped": mapped, "v2-heap": heap}
		for qi := 0; qi < 3; qi++ {
			q := makeTable("query")
			for _, mode := range []Mode{ModeJoin, ModeUnion} {
				want, err := ix.Search(q, mode, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantBrute, err := ix.SearchBruteForce(q, mode, 0)
				if err != nil {
					t.Fatal(err)
				}
				for how, loaded := range loads {
					got, err := loaded.Search(q, mode, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d %s %s search diverged:\n got %+v\nwant %+v", step, how, mode, got, want)
					}
					gotBrute, err := loaded.SearchBruteForce(q, mode, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotBrute, wantBrute) {
						t.Fatalf("step %d %s %s brute search diverged:\n got %+v\nwant %+v", step, how, mode, gotBrute, wantBrute)
					}
				}
			}
		}
		if !reflect.DeepEqual(mapped.Tables(), ix.Tables()) {
			t.Fatalf("step %d: mapped tables = %v, want %v", step, mapped.Tables(), ix.Tables())
		}
	}

	steps := 120
	if testing.Short() {
		steps = 50
	}
	for step := 0; step < steps; step++ {
		name := names[rng.Intn(len(names))]
		switch op := rng.Intn(10); {
		case op < 5: // upsert
			if err := ix.Upsert(makeTable(name)); err != nil {
				t.Fatalf("step %d upsert %s: %v", step, name, err)
			}
			live[name] = true
		case op < 8: // remove (may fail if not live)
			if err := ix.Remove(name); err == nil {
				delete(live, name)
			} else if live[name] {
				t.Fatalf("step %d remove %s: %v", step, name, err)
			}
		default:
			ix.Compact()
		}
		if step%30 == 29 {
			check(step)
		}
	}
	check(steps)
}

// buildV2Snapshot builds a small multi-segment catalog and snapshots it in
// v2 format, returning the index, the directory, and the first sealed
// segment file's path.
func buildV2Snapshot(t *testing.T) (*Index, string) {
	t.Helper()
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshotFormat(dir, SegmentFormatV2); err != nil {
		t.Fatal(err)
	}
	return ix, dir
}

func firstSegFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no v2 segment files in %s (err %v)", dir, err)
	}
	return matches[0]
}

// TestSegV2CorruptFilesRejected: every class of damage yields the named
// error — never a panic — from both the mapped and heap-read arms.
func TestSegV2CorruptFilesRejected(t *testing.T) {
	_, dir := buildV2Snapshot(t)
	segPath := firstSegFile(t, dir)
	good, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"bad magic", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}, ErrSegmentMagic},
		{"short file", func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrSegmentTruncated},
		{"empty file", func(b []byte) []byte {
			return nil
		}, ErrSegmentTruncated},
		{"header only", func(b []byte) []byte {
			return b[:segV2Header]
		}, ErrSegmentTruncated},
		{"section past EOF", func(b []byte) []byte {
			// Point section 0 at an 8-aligned offset far beyond the file
			// (alignment is checked first, so a misaligned value would
			// surface as corruption instead).
			copy(b[segV2Header:segV2Header+8], []byte{0, 0, 0, 0, 0, 1, 0, 0})
			return b
		}, ErrSegmentTruncated},
		{"misaligned section", func(b []byte) []byte {
			b[segV2Header]++ // offset no longer 8-aligned
			return b
		}, ErrSegmentCorrupt},
		{"bad version", func(b []byte) []byte {
			b[8] = 99
			return b
		}, ErrSegmentCorrupt},
		{"string offsets out of bounds", func(b []byte) []byte {
			// Inflate the final string-offset entry past the blob.
			off := leU64(b[segV2Header:])
			size := leU64(b[segV2Header+8:])
			for i := uint64(0); i < 4; i++ {
				b[off+size-4+i] = 0xff
			}
			return b
		}, ErrSegmentCorrupt},
		{"oversized column count", func(b []byte) []byte {
			b[32], b[33], b[34], b[35] = 0xff, 0xff, 0xff, 0x0f
			return b
		}, ErrSegmentCorrupt},
	}
	for _, tc := range cases {
		for _, noMap := range []bool{false, true} {
			name := tc.name
			if noMap {
				name += " (heap read)"
			}
			t.Run(name, func(t *testing.T) {
				if err := os.WriteFile(segPath, tc.mutate(append([]byte(nil), good...)), 0o644); err != nil {
					t.Fatal(err)
				}
				ix, err := loadSnapshot(dir, noMap)
				if err == nil {
					ix.Close()
					t.Fatalf("loaded a snapshot with a %s segment file", tc.name)
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("error = %v, want %v", err, tc.wantErr)
				}
			})
		}
	}
	// Restore and confirm the snapshot still loads — the harness itself is
	// not what failed above.
	if err := os.WriteFile(segPath, good, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
}

func leU64(b []byte) uint64 {
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// TestSegV2CrashTailIgnored mirrors the dict.log truncation contract: bytes
// a crashed writer appended past the section table are ignored, and search
// over the tailed file stays bit-identical.
func TestSegV2CrashTailIgnored(t *testing.T) {
	ix, dir := buildV2Snapshot(t)
	want, err := ix.Search(snapshotQuery(), ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	segPath := firstSegFile(t, dir)
	f, err := os.OpenFile(segPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn crash tail that never made it into the section table")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, noMap := range []bool{false, true} {
		loaded, err := loadSnapshot(dir, noMap)
		if err != nil {
			t.Fatalf("noMap=%v: crash tail rejected: %v", noMap, err)
		}
		got, err := loaded.Search(snapshotQuery(), ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("noMap=%v: search diverged over tailed segment:\n got %+v\nwant %+v", noMap, got, want)
		}
		loaded.Close()
	}
}

// TestSegV2RandomCorruptionNeverPanics: arbitrary byte flips either load or
// error — the reader must never index out of bounds on attacker-shaped
// input.
func TestSegV2RandomCorruptionNeverPanics(t *testing.T) {
	_, dir := buildV2Snapshot(t)
	segPath := firstSegFile(t, dir)
	good, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		mut := append([]byte(nil), good...)
		for flips := 1 + rng.Intn(4); flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(4) == 0 {
			mut = mut[:rng.Intn(len(mut)+1)]
		}
		if err := os.WriteFile(segPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := loadSnapshot(dir, rng.Intn(2) == 0)
		if err != nil {
			continue
		}
		// Structurally valid despite the flips: it must also search without
		// panicking (bucket ids are clamped, not trusted).
		if _, err := ix.Search(snapshotQuery(), ModeJoin, 0); err != nil {
			t.Fatalf("iter %d: search errored (should score or skip): %v", i, err)
		}
		ix.Close()
	}
}

// TestMappedKernelProbesZeroAlloc: the integer-set kernels run against
// mapped segment payloads with no per-probe allocation — the zero-copy
// contract the format exists for.
func TestMappedKernelProbesZeroAlloc(t *testing.T) {
	ix, dir := buildV2Snapshot(t)
	tables := ix.Tables()
	loaded, err := loadSnapshot(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	// Pick two tables that live in sealed (mapped) segments.
	var sets []intern.Set
	for _, name := range tables {
		for _, s := range loaded.InternedColumnSets(name) {
			if s.Len() > 0 {
				sets = append(sets, s)
			}
		}
	}
	if len(sets) < 2 {
		t.Fatalf("catalog yielded %d interned sets, want at least 2", len(sets))
	}
	a, b := sets[0], sets[1]
	if allocs := testing.AllocsPerRun(100, func() {
		intern.Jaccard(&a, &b)
		intern.Containment(&a, &b)
		intern.IntersectCount(&a, &b)
	}); allocs != 0 {
		t.Errorf("kernel probes against mapped sets allocate %.1f per run, want 0", allocs)
	}
	// And the mapped scores equal the heap-loaded scores exactly.
	heap, err := loadSnapshot(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	for _, name := range tables {
		ms, hs := loaded.InternedColumnSets(name), heap.InternedColumnSets(name)
		if len(ms) != len(hs) {
			t.Fatalf("%s: %d mapped sets vs %d heap sets", name, len(ms), len(hs))
		}
		for i := range ms {
			if intern.Jaccard(&ms[i], &sets[0]) != intern.Jaccard(&hs[i], &sets[0]) {
				t.Fatalf("%s col %d: mapped and heap kernels disagree", name, i)
			}
		}
	}
}

// TestSnapshotFormatMigration: v1 → v2 → v1 in place, each save rewriting
// the segment files into the requested encoding, pruning the other's, and
// round-tripping searches exactly.
func TestSnapshotFormatMigration(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	want, err := ix.Search(snapshotQuery(), ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	countFiles := func() (gob, seg int) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), "seg-") {
				continue
			}
			switch {
			case strings.HasSuffix(e.Name(), ".gob"):
				gob++
			case strings.HasSuffix(e.Name(), ".seg"):
				seg++
			}
		}
		return gob, seg
	}
	step := func(format string, wantGob, wantSeg bool) *Index {
		t.Helper()
		cur, err := LoadSnapshot(dir)
		if err != nil {
			t.Fatalf("%s: reload: %v", format, err)
		}
		if err := cur.SaveSnapshotFormat(dir, format); err != nil {
			t.Fatalf("%s: save: %v", format, err)
		}
		gob, seg := countFiles()
		if (gob > 0) != wantGob || (seg > 0) != wantSeg {
			t.Fatalf("%s: %d gob / %d seg segment files on disk", format, gob, seg)
		}
		cur.Close()
		re, err := LoadSnapshot(dir)
		if err != nil {
			t.Fatalf("%s: load after migrate: %v", format, err)
		}
		got, err := re.Search(snapshotQuery(), ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: search diverged after migration:\n got %+v\nwant %+v", format, got, want)
		}
		return re
	}
	if err := ix.SaveSnapshotFormat(dir, SegmentFormatV1); err != nil {
		t.Fatal(err)
	}
	step(SegmentFormatV2, false, true).Close()
	step(SegmentFormatV1, true, false).Close()
	// Unknown formats are rejected before touching the directory.
	if err := ix.SaveSnapshotFormat(dir, "v3"); err == nil {
		t.Error("unknown segment format accepted")
	}
}

// TestLoadFileNamesRawSegmentFiles: pointing LoadFile at a bare .seg file
// produces the targeted error, not a gob decode failure.
func TestLoadFileNamesRawSegmentFiles(t *testing.T) {
	_, dir := buildV2Snapshot(t)
	_, err := LoadFile(firstSegFile(t, dir))
	if err == nil || !strings.Contains(err.Error(), "raw v2 segment file") {
		t.Fatalf("error = %v, want the raw-segment-file explanation", err)
	}
}

//go:build !linux || valentine_nommap

package discovery

// Portable arm of the mmap gate: platforms without the Linux mmap path (or
// builds tagged valentine_nommap) read v2 segment files into aligned heap
// buffers instead. Every byte past the read is served by the same
// mappedSeg code, so behavior is identical — only memory residency differs.

const mmapAvailable = false

// mapSegmentFile is never called when mmapAvailable is false; it exists so
// both build arms expose the same symbols.
func mapSegmentFile(path string) (data []byte, unmap func() error, err error) {
	panic("discovery: mapSegmentFile called with mmap unavailable")
}

// mincoreResidentBytes has nothing to probe without mmap: heap buffers are
// always resident, so the honest estimate is the full length. (Only reached
// via the heap-read v2 arm, which residentMappedBytes short-circuits the
// same way — kept total for symbol parity.)
func mincoreResidentBytes(data []byte) int64 { return int64(len(data)) }

package discovery

// Index persistence, two formats:
//
//   - Save/Load: the original single-file format — a gob-encoded header plus
//     the flat live column-profile list. Band bucket shards are derivable
//     from the signatures and are rebuilt on load, which keeps the file
//     compact (the IBLT line of work in PAPERS.md makes the same trade:
//     store the compact sketch, recompute the addressing). Tombstoned
//     columns are not written, so the flat format doubles as an offline
//     compaction.
//   - SaveSnapshot/LoadSnapshot: the live catalog's incremental format — a
//     manifest plus one file per sealed segment. Sealed segments are
//     immutable, so a periodic snapshot rewrites only the manifest, the
//     memtable file, and segment files that did not exist yet; files of
//     compacted-away segments are pruned. The catalog's value dictionary
//     is persisted alongside as an append-only log (dict.log): entries are
//     written in id order, so replaying them reconstructs the exact id
//     space — the id-space "remap" lives entirely in that one small log.
//     Sealed segments come in two encodings, recorded in the manifest:
//     "v1" (gob seg-<id>.gob, fully decoded onto the heap on load) and
//     "v2" (columnar seg-<id>.seg, memory-mapped and searched in place —
//     see segv2.go). Options.SegmentFormat selects what SaveSnapshot
//     writes (default v2); LoadSnapshot serves either, so a catalog
//     resumed from a v1 snapshot simply migrates on its next save.
//
// Durability: every save syncs its data files (segments, memtable,
// dict.log) and the directory before committing the manifest via
// temp-file + fsync + atomic rename, then syncs the directory again — a
// crash at any point leaves either the previous manifest or the new one,
// never a manifest referencing torn segment files.
//
// LoadFile accepts both: a directory is a snapshot, a plain file is the
// single-file format.

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"valentine/internal/faultfs"
	"valentine/internal/intern"
)

// formatVersion guards against loading files written by an incompatible
// layout of indexFile.
const formatVersion = 1

// snapshotVersion guards the snapshot manifest layout.
const snapshotVersion = 1

// Sealed-segment encodings a snapshot can record. The zero value in an old
// manifest decodes as "" and means v1.
const (
	SegmentFormatV1 = "v1"
	SegmentFormatV2 = "v2"
)

const (
	manifestName = "MANIFEST.gob"
	memName      = "mem.seg"
	dictName     = "dict.log"
)

type indexFile struct {
	Version int
	Options Options
	Columns []ColumnProfile
}

// Save writes the live corpus to w in the versioned single-file gob format.
// Tombstoned tables are skipped, so a save/load round-trip is also a full
// compaction.
func (ix *Index) Save(w io.Writer) error {
	sn := ix.snap.Load()
	f := indexFile{Version: formatVersion, Options: ix.opts, Columns: make([]ColumnProfile, 0, sn.nCols)}
	for _, seg := range sn.segments() {
		for _, name := range seg.tableNames() {
			if sn.dead(seg, name) {
				continue
			}
			for _, id := range seg.colIDs(name) {
				p := seg.colProfile(id)
				// The flat format carries no dictionary and Load mints a
				// fresh one, so persisted interned ids would alias whatever
				// values the new dictionary assigns them. Drop them; the
				// signatures and profiles are self-contained.
				p.SetIDs = nil
				f.Columns = append(f.Columns, p)
			}
		}
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("discovery: encoding index: %w", err)
	}
	return nil
}

// SaveFile writes the index to path, creating parent directories.
func (ix *Index) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index written by Save and rebuilds its segments and band
// bucket shards.
func Load(r io.Reader) (*Index, error) {
	var f indexFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("discovery: decoding index: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("discovery: index format version %d, want %d", f.Version, formatVersion)
	}
	ix := New(f.Options)
	// Columns of one table are contiguous in the flat list; regroup them
	// and ingest through the normal write path (which seals segments as the
	// memtable fills).
	var ops []rawOp
	for i := 0; i < len(f.Columns); {
		name := f.Columns[i].Table
		j := i
		for j < len(f.Columns) && f.Columns[j].Table == name {
			if len(f.Columns[j].Signature) != ix.k {
				return nil, fmt.Errorf("discovery: column %s.%s has %d-slot signature, want %d",
					name, f.Columns[j].Column, len(f.Columns[j].Signature), ix.k)
			}
			j++
		}
		ops = append(ops, rawOp{name: name, cols: f.Columns[i:j]})
		i = j
	}
	for _, err := range ix.apply(ops) {
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile reads an index from path: a directory written by SaveSnapshot,
// or a single file written by Save/SaveFile.
func LoadFile(path string) (*Index, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return LoadSnapshot(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// A raw v2 segment file is a plausible mistake (it is the only other
	// artifact this package writes); name it instead of surfacing a gob
	// decode error.
	var magic [len(segV2Magic)]byte
	if n, _ := io.ReadFull(f, magic[:]); n == len(magic) && string(magic[:]) == segV2Magic {
		return nil, fmt.Errorf("discovery: %s is a raw v2 segment file, not an index — load the snapshot directory that references it", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return Load(f)
}

// --- snapshot (manifest + segment files) format ---

// manifest is the snapshot directory's table of contents.
type manifest struct {
	Version int
	Options Options
	// Lineage identifies the catalog that wrote the snapshot: segment ids
	// are only unique within one lineage, so an incremental save must not
	// trust same-named segment files written by a different catalog.
	Lineage uint64
	Epoch   uint64
	NextSeg uint64
	Sealed  []uint64 // sealed segment ids, oldest first (one file each)
	HasMem  bool     // whether mem.seg holds a non-empty memtable
	Tombs   []tombRecord
	// Format records the sealed segments' encoding: SegmentFormatV2 for
	// columnar seg-<id>.seg files, SegmentFormatV1 (or "", as pre-format
	// manifests decode) for gob seg-<id>.gob files. The memtable is always
	// gob — it is small and rewritten every save.
	Format string
	// DictEntries/DictLogBytes describe the persisted prefix of the value
	// dictionary in dict.log: replaying the first DictEntries values through
	// Intern in order reconstructs the exact id space the catalog used, so
	// any id-derived state stays valid across a resume while the sealed
	// segment files — which are id-free — stay immutable. The dictionary is
	// append-only, so an incremental save appends only the new entries; the
	// recorded byte offset lets the next save truncate away the tail of a
	// save that crashed before committing its manifest.
	DictEntries  int
	DictLogBytes int64
}

type tombRecord struct {
	Seg   uint64
	Table string
}

// segFile is one segment on disk: the per-table column runs, in insertion
// order. Shards are rebuilt on load.
type segFile struct {
	Version int
	ID      uint64
	Tables  []tableBlock
}

type tableBlock struct {
	Name    string
	Columns []ColumnProfile
}

func segFileName(id uint64) string   { return fmt.Sprintf("seg-%d.gob", id) }
func segFileNameV2(id uint64) string { return fmt.Sprintf("seg-%d.seg", id) }

// segFileNameFor names id's segment file in the given (already validated)
// format.
func segFileNameFor(id uint64, format string) string {
	if format == SegmentFormatV2 {
		return segFileNameV2(id)
	}
	return segFileName(id)
}

func writeGob(fsys faultfs.FS, path string, v any) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	// fsync before rename: the rename must never publish a file whose bytes
	// are still only in the page cache when a crash follows.
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}

// writeSegV2 writes seg to path in the v2 columnar format via temp-file +
// fsync + atomic rename. A segment that is itself mapped from a v2 file is
// copied byte-for-byte — re-encoding would only reproduce the same bytes.
func writeSegV2(fsys faultfs.FS, path string, seg *segment, k int) error {
	var data []byte
	if seg.mapped != nil {
		data = seg.mapped.data
	} else {
		var err error
		if data, err = encodeSegV2(seg, k); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path)
}

// syncDir fsyncs a directory, making renames and creates within it durable.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func readGob(fsys faultfs.FS, path string, v any) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}

func segToFile(seg *segment) segFile {
	sf := segFile{Version: snapshotVersion, ID: seg.id, Tables: make([]tableBlock, 0, seg.numTables())}
	for _, name := range seg.tableNames() {
		sf.Tables = append(sf.Tables, tableBlock{Name: name, Columns: seg.tableProfiles(name)})
	}
	return sf
}

func segFromFile(sf segFile, bands, rows int) *segment {
	seg := newSegment(sf.ID, bands)
	for _, tb := range sf.Tables {
		seg.add(tb.Name, tb.Columns, rows)
	}
	return seg
}

// SaveSnapshot writes the catalog's current epoch to dir in the incremental
// manifest+segments format: sealed segment files already on disk are left
// untouched (segments are immutable, so identity of name implies identity
// of content), the memtable and manifest are rewritten, and segment files
// no longer referenced — compacted away since the previous snapshot — are
// deleted. Concurrent searches and writes proceed freely; the snapshot is
// consistent as of one epoch. Sealed segments are encoded per
// Options.SegmentFormat (default v2 columnar); saving over a snapshot of
// the other format rewrites every segment file once and prunes the old
// ones — the in-place migration path.
func (ix *Index) SaveSnapshot(dir string) error {
	format := ix.opts.SegmentFormat
	if format == "" {
		format = SegmentFormatV2
	}
	return ix.SaveSnapshotFormat(dir, format)
}

// SaveSnapshotFormat is SaveSnapshot with an explicit sealed-segment
// encoding, overriding Options.SegmentFormat for this save.
func (ix *Index) SaveSnapshotFormat(dir, format string) error {
	switch format {
	case SegmentFormatV1, SegmentFormatV2:
	default:
		return fmt.Errorf("discovery: unknown segment format %q (want %q or %q)",
			format, SegmentFormatV1, SegmentFormatV2)
	}
	fsys := ix.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sn := ix.snap.Load()
	m := manifest{
		Version: snapshotVersion,
		Options: ix.opts,
		Lineage: ix.lineage,
		Epoch:   sn.epoch,
		Sealed:  make([]uint64, 0, len(sn.sealed)),
		Format:  format,
	}
	ix.wmu.Lock()
	m.NextSeg = ix.nextSeg
	ix.wmu.Unlock()
	for key := range sn.tombs {
		m.Tombs = append(m.Tombs, tombRecord{Seg: key.seg, Table: key.table})
	}
	// The skip-if-exists fast path is only sound for segment files this
	// catalog's own lineage wrote: a directory holding another catalog's
	// snapshot can contain same-named files with unrelated content (segment
	// ids always start at 0), which must be overwritten, not adopted.
	sameLineage := false
	var prev manifest
	if ix.lineage != 0 {
		if err := readGob(fsys, filepath.Join(dir, manifestName), &prev); err == nil {
			sameLineage = prev.Version == snapshotVersion && prev.Lineage == ix.lineage
		}
	}
	prevEntries, prevBytes := 0, int64(0)
	if sameLineage {
		prevEntries, prevBytes = prev.DictEntries, prev.DictLogBytes
	}
	var err error
	m.DictEntries, m.DictLogBytes, err = appendDictLog(fsys, filepath.Join(dir, dictName), ix.dict, prevEntries, prevBytes)
	if err != nil {
		return fmt.Errorf("discovery: writing dictionary log: %w", err)
	}
	for _, seg := range sn.sealed {
		m.Sealed = append(m.Sealed, seg.id)
		path := filepath.Join(dir, segFileNameFor(seg.id, format))
		if sameLineage {
			// Sound per format: the file name encodes the format, so a
			// format switch misses this stat and rewrites every segment.
			if _, err := fsys.Stat(path); err == nil {
				continue // immutable segment already snapshotted by this catalog
			}
		}
		var err error
		if format == SegmentFormatV2 {
			err = writeSegV2(fsys, path, seg, ix.k)
		} else {
			err = writeGob(fsys, path, segToFile(seg))
		}
		if err != nil {
			return fmt.Errorf("discovery: writing segment %d: %w", seg.id, err)
		}
	}
	if sn.mem != nil && sn.mem.numTables() > 0 {
		m.HasMem = true
		if err := writeGob(fsys, filepath.Join(dir, memName), segToFile(sn.mem)); err != nil {
			return fmt.Errorf("discovery: writing memtable: %w", err)
		}
	}
	// Barrier between data and manifest: every segment, memtable and dict
	// byte — and the directory entries naming them — must be durable before
	// the manifest can reference them. The manifest itself then commits via
	// writeGob's fsync + atomic rename, made durable by the second sync.
	if err := syncDir(fsys, dir); err != nil {
		return fmt.Errorf("discovery: syncing snapshot directory: %w", err)
	}
	if err := writeGob(fsys, filepath.Join(dir, manifestName), m); err != nil {
		return fmt.Errorf("discovery: writing manifest: %w", err)
	}
	if err := syncDir(fsys, dir); err != nil {
		return fmt.Errorf("discovery: syncing snapshot directory: %w", err)
	}
	// Garbage collection happens only after the manifest commit: deleting a
	// file the previous manifest still references would, under a crash in
	// between, strand that manifest pointing at nothing. A stale mem.seg
	// left by a crash before this point is ignored (HasMem false) and
	// collected by the next save.
	if !m.HasMem {
		fsys.Remove(filepath.Join(dir, memName))
	}
	// Prune files of segments compacted away since the previous snapshot —
	// in either encoding, so a format migration also retires the old files.
	live := make(map[string]struct{}, len(m.Sealed))
	for _, id := range m.Sealed {
		live[segFileNameFor(id, format)] = struct{}{}
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") ||
			(!strings.HasSuffix(name, ".gob") && !strings.HasSuffix(name, ".seg")) {
			continue
		}
		if _, ok := live[name]; !ok {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// LoadOptions configures LoadSnapshotWith.
type LoadOptions struct {
	// FS is the filesystem the load reads through (nil: the real disk).
	// The one asymmetry: v2 segment files are memory-mapped and so always
	// open through the OS regardless — corruption tests flip bytes on disk
	// directly, and quarantine works off the returned errors either way.
	FS faultfs.FS
	// NoMap forces the aligned heap-read fallback for v2 segments even where
	// mmap is available (the mapped-vs-heap conformance arm).
	NoMap bool
	// Quarantine makes segment failure partial instead of total: a sealed
	// segment (or memtable) file failing validation is renamed aside with a
	// .quarantined suffix — so no later save can adopt its bytes — counted in
	// Stats.QuarantinedSegments, and the rest of the catalog loads and
	// serves. Manifest and dict.log failures stay fatal: the manifest is the
	// table of contents, and the dictionary underpins every interned id in
	// every segment.
	Quarantine bool
}

// LoadSnapshot reads a snapshot directory written by SaveSnapshot and
// reconstructs the catalog: segment layout, tombstones and epoch included.
// v1 segments are gob-decoded onto the heap; v2 segments are memory-mapped
// (heap-read where mapping is unavailable) and searched in place — restart
// cost for a v2 catalog is opening and validating files, not decoding the
// corpus. Call Close on a v2-backed index when done to release mappings.
// Any corrupt file fails the whole load; LoadSnapshotWith's Quarantine mode
// degrades instead.
func LoadSnapshot(dir string) (*Index, error) {
	return LoadSnapshotWith(dir, LoadOptions{})
}

// loadSnapshot gives tests the noMap arm: true forces the aligned heap-read
// fallback for v2 segments even where mmap is available, so mapped-vs-heap
// conformance runs both arms in one binary.
func loadSnapshot(dir string, noMap bool) (*Index, error) {
	return LoadSnapshotWith(dir, LoadOptions{NoMap: noMap})
}

// LoadSnapshotWith is LoadSnapshot under explicit options: an injectable
// filesystem, the heap-read arm, and quarantine (degraded) mode.
func LoadSnapshotWith(dir string, o LoadOptions) (ret *Index, err error) {
	fsys := faultfs.Or(o.FS)
	noMap := o.NoMap
	var m manifest
	if err := readGob(fsys, filepath.Join(dir, manifestName), &m); err != nil {
		return nil, fmt.Errorf("discovery: reading manifest: %w", err)
	}
	if m.Version != snapshotVersion {
		return nil, fmt.Errorf("discovery: snapshot version %d, want %d", m.Version, snapshotVersion)
	}
	switch m.Format {
	case "", SegmentFormatV1, SegmentFormatV2:
	default:
		return nil, fmt.Errorf("discovery: snapshot segment format %q is not %q or %q",
			m.Format, SegmentFormatV1, SegmentFormatV2)
	}
	ix := New(m.Options)
	ix.fsys = o.FS
	// Mappings registered below must not leak if a later segment fails.
	defer func() {
		if err != nil {
			for _, unmap := range ix.unmaps {
				unmap()
			}
			ix.unmaps = nil
		}
	}()
	nextSeg := m.NextSeg
	sn := &snapshot{epoch: m.Epoch}
	load := func(path string) (*segment, error) {
		var sf segFile
		if err := readGob(fsys, path, &sf); err != nil {
			return nil, err
		}
		if sf.Version != snapshotVersion {
			return nil, fmt.Errorf("segment version %d, want %d", sf.Version, snapshotVersion)
		}
		for _, tb := range sf.Tables {
			for _, c := range tb.Columns {
				if len(c.Signature) != ix.k {
					return nil, fmt.Errorf("column %s.%s has %d-slot signature, want %d",
						tb.Name, c.Column, len(c.Signature), ix.k)
				}
			}
		}
		return segFromFile(sf, ix.bands, ix.rows), nil
	}
	loadV2 := func(id uint64) (*segment, error) {
		ms, err := loadSegV2(filepath.Join(dir, segFileNameV2(id)), noMap)
		if err != nil {
			return nil, err
		}
		reject := func(err error) (*segment, error) {
			if ms.unmap != nil {
				ms.unmap()
			}
			return nil, err
		}
		if got := ms.segID(); got != id {
			return reject(fmt.Errorf("%w: file carries segment id %d, manifest expects %d", ErrSegmentCorrupt, got, id))
		}
		if ms.k != ix.k || ms.bands != ix.bands {
			return reject(fmt.Errorf("segment geometry k=%d bands=%d does not match the manifest's k=%d bands=%d",
				ms.k, ms.bands, ix.k, ix.bands))
		}
		if ms.unmap != nil {
			ix.unmaps = append(ix.unmaps, ms.unmap)
		}
		return &segment{id: id, mapped: ms}, nil
	}
	// quarantine moves a corrupt file aside so no later incremental save can
	// adopt its bytes via the skip-if-exists fast path, and records the event
	// for Stats and the serving layer's degraded flag. Outside quarantine
	// mode the cause is returned unchanged and fails the load.
	quarantine := func(name string, cause error) error {
		if !o.Quarantine {
			return cause
		}
		src := filepath.Join(dir, name)
		if renameErr := fsys.Rename(src, src+".quarantined"); renameErr != nil {
			// The corrupt file stays in place where a later save could adopt
			// it, so degrading is not safe — fail the load after all.
			return fmt.Errorf("%w (quarantine rename failed: %v)", cause, renameErr)
		}
		ix.quarantined++
		ix.quarantineLog = append(ix.quarantineLog, fmt.Sprintf("%s: %v", name, cause))
		return nil
	}
	for _, id := range m.Sealed {
		var seg *segment
		var segErr error
		if m.Format == SegmentFormatV2 {
			seg, segErr = loadV2(id)
		} else {
			seg, segErr = load(filepath.Join(dir, segFileName(id)))
		}
		if segErr != nil {
			if qErr := quarantine(segFileNameFor(id, m.Format), fmt.Errorf("discovery: segment %d: %w", id, segErr)); qErr != nil {
				return nil, qErr
			}
			continue
		}
		sn.sealed = append(sn.sealed, seg)
	}
	// A crash between writing segment files and the manifest can leave
	// orphan segment files (either encoding) with ids at or past the
	// manifest's NextSeg. If such an id were ever reallocated, a later
	// SaveSnapshot's "file exists → skip" fast path would adopt the stale
	// orphan into the manifest. Scan the directory and allocate strictly
	// past every file on disk; unreferenced orphans are then pruned by the
	// next successful SaveSnapshot without ever being adopted.
	if entries, dirErr := fsys.ReadDir(dir); dirErr == nil {
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".gob") && !strings.HasSuffix(name, ".seg") {
				continue
			}
			var id uint64
			if n, _ := fmt.Sscanf(name, "seg-%d", &id); n == 1 && id >= nextSeg {
				nextSeg = id + 1
			}
		}
	}
	var mem *segment
	if m.HasMem {
		loaded, memErr := load(filepath.Join(dir, memName))
		if memErr != nil {
			if qErr := quarantine(memName, fmt.Errorf("discovery: memtable: %w", memErr)); qErr != nil {
				return nil, qErr
			}
		} else {
			mem = loaded
		}
	}
	if mem != nil {
		// The restored memtable gets a fresh id: its saved id may equal an
		// orphan segment file's, and when this memtable seals, its id
		// becomes a segment file name.
		mem.id = nextSeg
		nextSeg++
		sn.mem = mem
	} else {
		// The fresh memtable needs an id no sealed segment (and so no
		// tombstone) can reference.
		sn.mem = newSegment(nextSeg, ix.bands)
		nextSeg++
	}
	tombs := make(map[tombKey]struct{}, len(m.Tombs))
	for _, t := range m.Tombs {
		tombs[tombKey{t.Seg, t.Table}] = struct{}{}
	}
	sn.tombs = tombs
	for _, seg := range sn.segments() {
		for _, name := range seg.tableNames() {
			if sn.dead(seg, name) {
				continue
			}
			sn.nTables++
			sn.nCols += seg.tableLen(name)
		}
	}
	if m.DictEntries > 0 {
		if err := replayDictLog(fsys, filepath.Join(dir, dictName), ix.dict, m.DictEntries); err != nil {
			return nil, fmt.Errorf("discovery: reading dictionary log: %w", err)
		}
	}
	ix.lineage = m.Lineage
	if ix.lineage == 0 {
		// Pre-lineage manifest: adopt a fresh lineage so future saves can
		// be incremental again (the first one rewrites every file).
		ix.lineage = newLineage()
	}
	ix.nextSeg = nextSeg
	maxID := uint64(0)
	for _, seg := range sn.segments() {
		if seg.id > maxID {
			maxID = seg.id
		}
	}
	if ix.nextSeg <= maxID {
		ix.nextSeg = maxID + 1
	}
	ix.snap.Store(sn)
	return ix, nil
}

// appendDictLog persists the dictionary prefix [0, Len) to path as
// length-prefixed raw values, appending only the entries past prevEntries
// when the existing log (prevBytes long) was written by this catalog. A log
// shorter than prevBytes, or a fresh directory, forces a full rewrite; a
// log longer than prevBytes carries the tail of a save that crashed before
// its manifest committed, and is truncated back first. Returns the entry
// count and byte length the caller's manifest must record.
func appendDictLog(fsys faultfs.FS, path string, d *intern.Dict, prevEntries int, prevBytes int64) (int, int64, error) {
	n := d.Len()
	if info, err := fsys.Stat(path); err != nil || info.Size() < prevBytes || prevEntries > n {
		prevEntries, prevBytes = 0, 0 // missing or inconsistent: rewrite
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	written, err := func() (int64, error) {
		if err := f.Truncate(prevBytes); err != nil {
			return 0, err
		}
		if _, err := f.Seek(prevBytes, io.SeekStart); err != nil {
			return 0, err
		}
		w := bufio.NewWriter(f)
		written := prevBytes
		var lenBuf [binary.MaxVarintLen64]byte
		for _, v := range d.Entries(prevEntries, n) {
			k := binary.PutUvarint(lenBuf[:], uint64(len(v)))
			if _, err := w.Write(lenBuf[:k]); err != nil {
				return 0, err
			}
			if _, err := w.WriteString(v); err != nil {
				return 0, err
			}
			written += int64(k) + int64(len(v))
		}
		return written, w.Flush()
	}()
	if err != nil {
		f.Close()
		return 0, 0, err
	}
	// fsync, then close: the manifest is about to commit a byte count, so
	// those bytes must be durable — not merely written back — first.
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	return n, written, nil
}

// SnapshotLineage reads the manifest in dir and returns the lineage id of
// the catalog that wrote it — the pre-flight fence `valentine serve` checks
// before accepting writes it would later fail to snapshot into a foreign
// directory.
func SnapshotLineage(dir string) (uint64, error) {
	var m manifest
	if err := readGob(faultfs.OS, filepath.Join(dir, manifestName), &m); err != nil {
		return 0, fmt.Errorf("discovery: reading manifest: %w", err)
	}
	if m.Version != snapshotVersion {
		return 0, fmt.Errorf("discovery: snapshot version %d, want %d", m.Version, snapshotVersion)
	}
	return m.Lineage, nil
}

// replayDictLog reads the first entries values of the log and interns them
// in order, reconstructing the exact id space recorded by the manifest.
// Bytes past the recorded prefix (a crashed save's tail) are ignored.
func replayDictLog(fsys faultfs.FS, path string, d *intern.Dict, entries int) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	r := bufio.NewReader(f)
	buf := make([]byte, 0, 64)
	for i := 0; i < entries; i++ {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("entry %d of %d: %w", i, entries, err)
		}
		// A corrupt log (or one a different catalog rewrote under us) can
		// decode an absurd length; no valid entry outsizes its own file, so
		// fail cleanly instead of attempting the allocation.
		if n > uint64(info.Size()) {
			return fmt.Errorf("entry %d of %d: length %d exceeds log size %d", i, entries, n, info.Size())
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("entry %d of %d: %w", i, entries, err)
		}
		d.Intern(string(buf))
	}
	return nil
}

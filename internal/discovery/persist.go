package discovery

// Index persistence, two formats:
//
//   - Save/Load: the original single-file format — a gob-encoded header plus
//     the flat live column-profile list. Band bucket shards are derivable
//     from the signatures and are rebuilt on load, which keeps the file
//     compact (the IBLT line of work in PAPERS.md makes the same trade:
//     store the compact sketch, recompute the addressing). Tombstoned
//     columns are not written, so the flat format doubles as an offline
//     compaction.
//   - SaveSnapshot/LoadSnapshot: the live catalog's incremental format — a
//     manifest plus one file per sealed segment. Sealed segments are
//     immutable, so a periodic snapshot rewrites only the manifest, the
//     memtable file, and segment files that did not exist yet; files of
//     compacted-away segments are pruned. The catalog's value dictionary
//     is persisted alongside as an append-only log (dict.log): entries are
//     written in id order, so replaying them reconstructs the exact id
//     space — the id-space "remap" lives entirely in that one small log,
//     and the (id-free) sealed segment files never need rewriting.
//
// LoadFile accepts both: a directory is a snapshot, a plain file is the
// single-file format.

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"valentine/internal/intern"
)

// formatVersion guards against loading files written by an incompatible
// layout of indexFile.
const formatVersion = 1

// snapshotVersion guards the snapshot manifest layout.
const snapshotVersion = 1

const (
	manifestName = "MANIFEST.gob"
	memName      = "mem.seg"
	dictName     = "dict.log"
)

type indexFile struct {
	Version int
	Options Options
	Columns []ColumnProfile
}

// Save writes the live corpus to w in the versioned single-file gob format.
// Tombstoned tables are skipped, so a save/load round-trip is also a full
// compaction.
func (ix *Index) Save(w io.Writer) error {
	sn := ix.snap.Load()
	f := indexFile{Version: formatVersion, Options: ix.opts, Columns: make([]ColumnProfile, 0, sn.nCols)}
	for _, seg := range sn.segments() {
		for _, name := range seg.order {
			if sn.dead(seg, name) {
				continue
			}
			for _, id := range seg.tables[name] {
				f.Columns = append(f.Columns, seg.cols[id])
			}
		}
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("discovery: encoding index: %w", err)
	}
	return nil
}

// SaveFile writes the index to path, creating parent directories.
func (ix *Index) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index written by Save and rebuilds its segments and band
// bucket shards.
func Load(r io.Reader) (*Index, error) {
	var f indexFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("discovery: decoding index: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("discovery: index format version %d, want %d", f.Version, formatVersion)
	}
	ix := New(f.Options)
	// Columns of one table are contiguous in the flat list; regroup them
	// and ingest through the normal write path (which seals segments as the
	// memtable fills).
	var ops []rawOp
	for i := 0; i < len(f.Columns); {
		name := f.Columns[i].Table
		j := i
		for j < len(f.Columns) && f.Columns[j].Table == name {
			if len(f.Columns[j].Signature) != ix.k {
				return nil, fmt.Errorf("discovery: column %s.%s has %d-slot signature, want %d",
					name, f.Columns[j].Column, len(f.Columns[j].Signature), ix.k)
			}
			j++
		}
		ops = append(ops, rawOp{name: name, cols: f.Columns[i:j]})
		i = j
	}
	for _, err := range ix.apply(ops) {
		if err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// LoadFile reads an index from path: a directory written by SaveSnapshot,
// or a single file written by Save/SaveFile.
func LoadFile(path string) (*Index, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return LoadSnapshot(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// --- snapshot (manifest + segment files) format ---

// manifest is the snapshot directory's table of contents.
type manifest struct {
	Version int
	Options Options
	// Lineage identifies the catalog that wrote the snapshot: segment ids
	// are only unique within one lineage, so an incremental save must not
	// trust same-named segment files written by a different catalog.
	Lineage uint64
	Epoch   uint64
	NextSeg uint64
	Sealed  []uint64 // sealed segment ids, oldest first (one seg-<id>.gob each)
	HasMem  bool     // whether mem.seg holds a non-empty memtable
	Tombs   []tombRecord
	// DictEntries/DictLogBytes describe the persisted prefix of the value
	// dictionary in dict.log: replaying the first DictEntries values through
	// Intern in order reconstructs the exact id space the catalog used, so
	// any id-derived state stays valid across a resume while the sealed
	// segment files — which are id-free — stay immutable. The dictionary is
	// append-only, so an incremental save appends only the new entries; the
	// recorded byte offset lets the next save truncate away the tail of a
	// save that crashed before committing its manifest.
	DictEntries  int
	DictLogBytes int64
}

type tombRecord struct {
	Seg   uint64
	Table string
}

// segFile is one segment on disk: the per-table column runs, in insertion
// order. Shards are rebuilt on load.
type segFile struct {
	Version int
	ID      uint64
	Tables  []tableBlock
}

type tableBlock struct {
	Name    string
	Columns []ColumnProfile
}

func segFileName(id uint64) string { return fmt.Sprintf("seg-%d.gob", id) }

func writeGob(path string, v any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}

func segToFile(seg *segment) segFile {
	sf := segFile{Version: snapshotVersion, ID: seg.id, Tables: make([]tableBlock, 0, len(seg.order))}
	for _, name := range seg.order {
		ids := seg.tables[name]
		cols := make([]ColumnProfile, len(ids))
		for i, id := range ids {
			cols[i] = seg.cols[id]
		}
		sf.Tables = append(sf.Tables, tableBlock{Name: name, Columns: cols})
	}
	return sf
}

func segFromFile(sf segFile, bands, rows int) *segment {
	seg := newSegment(sf.ID, bands)
	for _, tb := range sf.Tables {
		seg.add(tb.Name, tb.Columns, rows)
	}
	return seg
}

// SaveSnapshot writes the catalog's current epoch to dir in the incremental
// manifest+segments format: sealed segment files already on disk are left
// untouched (segments are immutable, so identity of name implies identity
// of content), the memtable and manifest are rewritten, and segment files
// no longer referenced — compacted away since the previous snapshot — are
// deleted. Concurrent searches and writes proceed freely; the snapshot is
// consistent as of one epoch.
func (ix *Index) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sn := ix.snap.Load()
	m := manifest{
		Version: snapshotVersion,
		Options: ix.opts,
		Lineage: ix.lineage,
		Epoch:   sn.epoch,
		Sealed:  make([]uint64, 0, len(sn.sealed)),
	}
	ix.wmu.Lock()
	m.NextSeg = ix.nextSeg
	ix.wmu.Unlock()
	for key := range sn.tombs {
		m.Tombs = append(m.Tombs, tombRecord{Seg: key.seg, Table: key.table})
	}
	// The skip-if-exists fast path is only sound for segment files this
	// catalog's own lineage wrote: a directory holding another catalog's
	// snapshot can contain same-named files with unrelated content (segment
	// ids always start at 0), which must be overwritten, not adopted.
	sameLineage := false
	var prev manifest
	if ix.lineage != 0 {
		if err := readGob(filepath.Join(dir, manifestName), &prev); err == nil {
			sameLineage = prev.Version == snapshotVersion && prev.Lineage == ix.lineage
		}
	}
	prevEntries, prevBytes := 0, int64(0)
	if sameLineage {
		prevEntries, prevBytes = prev.DictEntries, prev.DictLogBytes
	}
	var err error
	m.DictEntries, m.DictLogBytes, err = appendDictLog(filepath.Join(dir, dictName), ix.dict, prevEntries, prevBytes)
	if err != nil {
		return fmt.Errorf("discovery: writing dictionary log: %w", err)
	}
	for _, seg := range sn.sealed {
		m.Sealed = append(m.Sealed, seg.id)
		path := filepath.Join(dir, segFileName(seg.id))
		if sameLineage {
			if _, err := os.Stat(path); err == nil {
				continue // immutable segment already snapshotted by this catalog
			}
		}
		if err := writeGob(path, segToFile(seg)); err != nil {
			return fmt.Errorf("discovery: writing segment %d: %w", seg.id, err)
		}
	}
	if sn.mem != nil && len(sn.mem.tables) > 0 {
		m.HasMem = true
		if err := writeGob(filepath.Join(dir, memName), segToFile(sn.mem)); err != nil {
			return fmt.Errorf("discovery: writing memtable: %w", err)
		}
	} else {
		os.Remove(filepath.Join(dir, memName))
	}
	if err := writeGob(filepath.Join(dir, manifestName), m); err != nil {
		return fmt.Errorf("discovery: writing manifest: %w", err)
	}
	// Prune files of segments compacted away since the previous snapshot.
	live := make(map[string]struct{}, len(m.Sealed))
	for _, id := range m.Sealed {
		live[segFileName(id)] = struct{}{}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".gob") {
			continue
		}
		if _, ok := live[name]; !ok {
			os.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// LoadSnapshot reads a snapshot directory written by SaveSnapshot and
// reconstructs the catalog: segment layout, tombstones and epoch included.
func LoadSnapshot(dir string) (*Index, error) {
	var m manifest
	if err := readGob(filepath.Join(dir, manifestName), &m); err != nil {
		return nil, fmt.Errorf("discovery: reading manifest: %w", err)
	}
	if m.Version != snapshotVersion {
		return nil, fmt.Errorf("discovery: snapshot version %d, want %d", m.Version, snapshotVersion)
	}
	ix := New(m.Options)
	nextSeg := m.NextSeg
	sn := &snapshot{epoch: m.Epoch}
	load := func(path string) (*segment, error) {
		var sf segFile
		if err := readGob(path, &sf); err != nil {
			return nil, err
		}
		if sf.Version != snapshotVersion {
			return nil, fmt.Errorf("segment version %d, want %d", sf.Version, snapshotVersion)
		}
		for _, tb := range sf.Tables {
			for _, c := range tb.Columns {
				if len(c.Signature) != ix.k {
					return nil, fmt.Errorf("column %s.%s has %d-slot signature, want %d",
						tb.Name, c.Column, len(c.Signature), ix.k)
				}
			}
		}
		return segFromFile(sf, ix.bands, ix.rows), nil
	}
	for _, id := range m.Sealed {
		seg, err := load(filepath.Join(dir, segFileName(id)))
		if err != nil {
			return nil, fmt.Errorf("discovery: segment %d: %w", id, err)
		}
		sn.sealed = append(sn.sealed, seg)
	}
	// A crash between writing segment files and the manifest can leave
	// orphan seg-<id>.gob files with ids at or past the manifest's NextSeg.
	// If such an id were ever reallocated, a later SaveSnapshot's
	// "file exists → skip" fast path would adopt the stale orphan into the
	// manifest. Scan the directory and allocate strictly past every file
	// on disk; unreferenced orphans are then pruned by the next successful
	// SaveSnapshot without ever being adopted.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			var id uint64
			if n, _ := fmt.Sscanf(e.Name(), "seg-%d.gob", &id); n == 1 && id >= nextSeg {
				nextSeg = id + 1
			}
		}
	}
	if m.HasMem {
		mem, err := load(filepath.Join(dir, memName))
		if err != nil {
			return nil, fmt.Errorf("discovery: memtable: %w", err)
		}
		// The restored memtable gets a fresh id: its saved id may equal an
		// orphan segment file's, and when this memtable seals, its id
		// becomes a segment file name.
		mem.id = nextSeg
		nextSeg++
		sn.mem = mem
	} else {
		// The fresh memtable needs an id no sealed segment (and so no
		// tombstone) can reference.
		sn.mem = newSegment(nextSeg, ix.bands)
		nextSeg++
	}
	tombs := make(map[tombKey]struct{}, len(m.Tombs))
	for _, t := range m.Tombs {
		tombs[tombKey{t.Seg, t.Table}] = struct{}{}
	}
	sn.tombs = tombs
	for _, seg := range sn.segments() {
		for name := range seg.tables {
			if sn.dead(seg, name) {
				continue
			}
			sn.nTables++
			sn.nCols += len(seg.tables[name])
		}
	}
	if m.DictEntries > 0 {
		if err := replayDictLog(filepath.Join(dir, dictName), ix.dict, m.DictEntries); err != nil {
			return nil, fmt.Errorf("discovery: reading dictionary log: %w", err)
		}
	}
	ix.lineage = m.Lineage
	if ix.lineage == 0 {
		// Pre-lineage manifest: adopt a fresh lineage so future saves can
		// be incremental again (the first one rewrites every file).
		ix.lineage = newLineage()
	}
	ix.nextSeg = nextSeg
	maxID := uint64(0)
	for _, seg := range sn.segments() {
		if seg.id > maxID {
			maxID = seg.id
		}
	}
	if ix.nextSeg <= maxID {
		ix.nextSeg = maxID + 1
	}
	ix.snap.Store(sn)
	return ix, nil
}

// appendDictLog persists the dictionary prefix [0, Len) to path as
// length-prefixed raw values, appending only the entries past prevEntries
// when the existing log (prevBytes long) was written by this catalog. A log
// shorter than prevBytes, or a fresh directory, forces a full rewrite; a
// log longer than prevBytes carries the tail of a save that crashed before
// its manifest committed, and is truncated back first. Returns the entry
// count and byte length the caller's manifest must record.
func appendDictLog(path string, d *intern.Dict, prevEntries int, prevBytes int64) (int, int64, error) {
	n := d.Len()
	if info, err := os.Stat(path); err != nil || info.Size() < prevBytes || prevEntries > n {
		prevEntries, prevBytes = 0, 0 // missing or inconsistent: rewrite
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	written, err := func() (int64, error) {
		if err := f.Truncate(prevBytes); err != nil {
			return 0, err
		}
		if _, err := f.Seek(prevBytes, io.SeekStart); err != nil {
			return 0, err
		}
		w := bufio.NewWriter(f)
		written := prevBytes
		var lenBuf [binary.MaxVarintLen64]byte
		for _, v := range d.Entries(prevEntries, n) {
			k := binary.PutUvarint(lenBuf[:], uint64(len(v)))
			if _, err := w.Write(lenBuf[:k]); err != nil {
				return 0, err
			}
			if _, err := w.WriteString(v); err != nil {
				return 0, err
			}
			written += int64(k) + int64(len(v))
		}
		return written, w.Flush()
	}()
	if err != nil {
		f.Close()
		return 0, 0, err
	}
	// A close-time write-back failure must fail the save before the manifest
	// commits a byte count that never reached disk.
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	return n, written, nil
}

// replayDictLog reads the first entries values of the log and interns them
// in order, reconstructing the exact id space recorded by the manifest.
// Bytes past the recorded prefix (a crashed save's tail) are ignored.
func replayDictLog(path string, d *intern.Dict, entries int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	r := bufio.NewReader(f)
	buf := make([]byte, 0, 64)
	for i := 0; i < entries; i++ {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("entry %d of %d: %w", i, entries, err)
		}
		// A corrupt log (or one a different catalog rewrote under us) can
		// decode an absurd length; no valid entry outsizes its own file, so
		// fail cleanly instead of attempting the allocation.
		if n > uint64(info.Size()) {
			return fmt.Errorf("entry %d of %d: length %d exceeds log size %d", i, entries, n, info.Size())
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("entry %d of %d: %w", i, entries, err)
		}
		d.Intern(string(buf))
	}
	return nil
}

package discovery

// Index persistence. The on-disk format is a gob-encoded header plus the
// flat column-profile list — the band bucket shards are derivable from the
// signatures and are rebuilt on load, which keeps the file compact (the
// IBLT line of work in PAPERS.md makes the same trade: store the compact
// sketch, recompute the addressing).

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// formatVersion guards against loading files written by an incompatible
// layout of indexFile.
const formatVersion = 1

type indexFile struct {
	Version int
	Options Options
	Columns []ColumnProfile
}

// Save writes the index to w in the versioned gob format.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	f := indexFile{Version: formatVersion, Options: ix.opts, Columns: ix.cols}
	ix.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("discovery: encoding index: %w", err)
	}
	return nil
}

// SaveFile writes the index to path, creating parent directories.
func (ix *Index) SaveFile(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index written by Save and rebuilds its band bucket shards.
func Load(r io.Reader) (*Index, error) {
	var f indexFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("discovery: decoding index: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("discovery: index format version %d, want %d", f.Version, formatVersion)
	}
	ix := New(f.Options)
	for id, p := range f.Columns {
		if len(p.Signature) != ix.k {
			return nil, fmt.Errorf("discovery: column %s.%s has %d-slot signature, want %d",
				p.Table, p.Column, len(p.Signature), ix.k)
		}
		ix.cols = append(ix.cols, p)
		ix.tables[p.Table] = append(ix.tables[p.Table], id)
		ix.insertShards(id, p.Signature)
	}
	return ix, nil
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

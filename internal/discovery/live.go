package discovery

// The catalog's write path. Writers serialize on wmu, but do all profiling
// work before taking it and publish their effects as a single atomic
// snapshot swap, so searches (which only load the snapshot pointer) never
// block on ingest and ingest never waits for searches to drain.

import (
	"fmt"
	"strings"

	"valentine/internal/profile"
	"valentine/internal/table"
)

// Op is one catalog mutation for Apply: exactly one of Upsert or Remove
// must be set. Batching ops amortizes the copy-on-write memtable rebuild
// and publishes all effects in one epoch — the server's ingest micro-batcher
// rides on this.
type Op struct {
	// Upsert inserts the profiled table, replacing any live table of the
	// same name.
	Upsert *profile.TableProfile
	// Remove deletes the named table.
	Remove string
}

// rawOp is the internal, already-profiled form of one mutation.
type rawOp struct {
	remove string // non-empty: remove this table

	name   string
	cols   []ColumnProfile
	upsert bool // replace an existing occurrence instead of failing
}

// profileOp flattens a table profile into the indexed column summaries —
// the potentially expensive work (signatures, tokens, distinct counts), done
// strictly before the writer lock is taken.
func (ix *Index) profileOp(tp *profile.TableProfile, upsert bool) (rawOp, error) {
	t := tp.Table()
	if err := t.Validate(); err != nil {
		return rawOp{}, err
	}
	cols := make([]ColumnProfile, tp.NumColumns())
	interned := tp.InterningDict() == ix.dict
	for i := range cols {
		p := tp.Column(i)
		cols[i] = ColumnProfile{
			Table:     t.Name,
			Column:    p.Name(),
			Type:      p.Type(),
			Rows:      p.Rows(),
			Distinct:  p.Distinct(),
			Tokens:    p.NameTokens(),
			Signature: p.Signature(ix.k),
		}
		// Carry the sorted interned distinct-value ids only when they live
		// in this catalog's id space — ids minted by a foreign dictionary
		// would alias unrelated values once persisted next to ours.
		if interned {
			if set := p.InternedDistinct(); set != nil {
				cols[i].SetIDs = set.IDs()
			}
		}
	}
	return rawOp{name: t.Name, cols: cols, upsert: upsert}, nil
}

// Add ingests every column of t: profile, signature, and shard insertion.
// Table names must be unique within an index. Callers holding a warmed
// profile.Store should use AddProfiled to reuse its cached work.
func (ix *Index) Add(t *table.Table) error {
	return ix.AddProfiled(profile.NewInterned(t, ix.dict))
}

// AddProfiled ingests an already-profiled table, reusing the profile
// layer's cached distinct sets, name tokens and MinHash signatures. It
// fails if a live table of the same name exists (use Upsert to replace).
func (ix *Index) AddProfiled(tp *profile.TableProfile) error {
	op, err := ix.profileOp(tp, false)
	if err != nil {
		return err
	}
	return ix.apply([]rawOp{op})[0]
}

// Upsert ingests t, replacing any live table of the same name.
func (ix *Index) Upsert(t *table.Table) error {
	return ix.UpsertProfiled(profile.NewInterned(t, ix.dict))
}

// UpsertProfiled is Upsert over an already-profiled table.
func (ix *Index) UpsertProfiled(tp *profile.TableProfile) error {
	op, err := ix.profileOp(tp, true)
	if err != nil {
		return err
	}
	return ix.apply([]rawOp{op})[0]
}

// Remove deletes the named table from the catalog. Tables living in the
// memtable are dropped immediately; tables in sealed segments get a
// tombstone that hides them from every subsequent search until compaction
// reclaims the space. Removing an unknown table is an error.
func (ix *Index) Remove(name string) error {
	return ix.apply([]rawOp{{remove: name}})[0]
}

// Apply executes a batch of mutations as one write: a single memtable
// rebuild, a single epoch publish. The returned slice has one entry per op
// (nil on success), so callers multiplexing concurrent ingest — like the
// serving layer's micro-batcher — can report per-op outcomes. Ops are
// applied in order; a failed op (duplicate Add is impossible here since
// Upsert replaces, but removing an unknown table fails) does not abort the
// rest of the batch.
func (ix *Index) Apply(ops []Op) []error {
	raw := make([]rawOp, len(ops))
	errs := make([]error, len(ops))
	for i, op := range ops {
		switch {
		case op.Upsert != nil && op.Remove != "":
			errs[i] = fmt.Errorf("discovery: op %d sets both Upsert and Remove", i)
			raw[i] = rawOp{} // placeholder; skipped below
		case op.Upsert != nil:
			raw[i], errs[i] = ix.profileOp(op.Upsert, true)
		case op.Remove != "":
			raw[i] = rawOp{remove: op.Remove}
		default:
			errs[i] = fmt.Errorf("discovery: op %d sets neither Upsert nor Remove", i)
		}
	}
	valid := make([]rawOp, 0, len(raw))
	slot := make([]int, 0, len(raw))
	for i, op := range raw {
		if errs[i] == nil {
			valid = append(valid, op)
			slot = append(slot, i)
		}
	}
	for i, err := range ix.apply(valid) {
		errs[slot[i]] = err
	}
	return errs
}

// apply is the single writer entry point: it rebuilds the memtable
// copy-on-write, applies every op, and publishes one successor snapshot.
func (ix *Index) apply(ops []rawOp) []error {
	errs := make([]error, len(ops))
	if len(ops) == 0 {
		return errs
	}
	ix.wmu.Lock()
	cur := ix.snap.Load()
	// Copy-on-write state for this batch. The memtable clone is bounded by
	// SealAfter tables, the sealed list is a slice-header copy (segments
	// are shared), and tombstones clone lazily on first change.
	mem := cur.mem.clone()
	sealed := append([]*segment(nil), cur.sealed...)
	tombs := cur.tombs
	tombsOwned := false
	nTables, nCols := cur.nTables, cur.nCols

	ensureTombs := func() {
		if tombsOwned {
			return
		}
		nt := make(map[tombKey]struct{}, len(tombs)+1)
		for k := range tombs {
			nt[k] = struct{}{}
		}
		tombs, tombsOwned = nt, true
	}
	// exists reports whether name is live in this batch's working state.
	exists := func(name string) bool {
		if _, ok := mem.tables[name]; ok {
			return true
		}
		for i := len(sealed) - 1; i >= 0; i-- {
			seg := sealed[i]
			if seg.hasTable(name) {
				if _, dead := tombs[tombKey{seg.id, name}]; !dead {
					return true
				}
			}
		}
		return false
	}
	// remove drops the live occurrence of name, reporting whether one
	// existed. Memtable occurrences are rebuilt away; sealed occurrences
	// are tombstoned.
	remove := func(name string) bool {
		if ids, ok := mem.tables[name]; ok {
			nCols -= len(ids)
			nTables--
			mem = mem.without(name, ix.rows)
			return true
		}
		for i := len(sealed) - 1; i >= 0; i-- {
			seg := sealed[i]
			if !seg.hasTable(name) {
				continue
			}
			key := tombKey{seg.id, name}
			if _, dead := tombs[key]; dead {
				continue
			}
			ensureTombs()
			tombs[key] = struct{}{}
			nCols -= seg.tableLen(name)
			nTables--
			return true
		}
		return false
	}

	changed := false
	for i, op := range ops {
		if op.remove != "" {
			if !remove(op.remove) {
				errs[i] = fmt.Errorf("discovery: table %q not indexed", op.remove)
				continue
			}
			changed = true
			continue
		}
		if op.upsert {
			remove(op.name)
		} else if exists(op.name) {
			errs[i] = fmt.Errorf("discovery: table %q already indexed", op.name)
			continue
		}
		mem.add(op.name, op.cols, ix.rows)
		changed = true
		nTables++
		nCols += len(op.cols)
		if mem.numTables() >= ix.sealAfter {
			sealed = append(sealed, mem)
			mem = newSegment(ix.nextSeg, ix.bands)
			ix.nextSeg++
		}
	}
	if !changed {
		// Every op failed: nothing to publish — the epoch only moves when
		// the corpus does.
		ix.wmu.Unlock()
		return errs
	}

	next := &snapshot{
		sealed:  sealed,
		mem:     mem,
		tombs:   tombs,
		epoch:   cur.epoch + 1,
		nTables: nTables,
		nCols:   nCols,
	}
	ix.snap.Store(next)
	ix.wmu.Unlock()

	ix.maybeCompact(next)
	return errs
}

// maybeCompact starts a background compaction when the snapshot has
// accumulated enough fragmentation (too many sealed segments) or garbage
// (tombstoned columns rivaling the live corpus). At most one compaction
// runs at a time.
func (ix *Index) maybeCompact(sn *snapshot) {
	garbage := sn.tombstonedCols()
	if len(sn.sealed) <= maxSealedSegments && (garbage == 0 || garbage*2 < sn.nCols) {
		return
	}
	if !ix.compacting.CompareAndSwap(false, true) {
		return // one already running
	}
	ix.compactWG.Add(1)
	go func() {
		defer ix.compactWG.Done()
		defer ix.compacting.Store(false)
		ix.Compact()
	}()
}

// WaitCompaction blocks until any in-flight background compaction finishes
// (tests and orderly shutdown).
func (ix *Index) WaitCompaction() { ix.compactWG.Wait() }

// Compact merges all sealed segments into one, physically dropping
// tombstoned columns, and publishes the compacted catalog as a new epoch.
// Searches are never blocked: they keep reading whichever snapshot they
// pinned. Compact is safe to call concurrently with writers; concurrent
// Compact calls serialize.
func (ix *Index) Compact() {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	// Phase 1 (no writer lock): merge a frozen prefix of sealed segments,
	// skipping tombstoned tables. Writers may append segments and tombstones
	// meanwhile; they cannot touch the prefix itself (sealed segments are
	// immutable and only compaction — serialized by compactMu — replaces
	// them).
	cur := ix.snap.Load()
	if len(cur.sealed) == 0 {
		return
	}
	prefix := len(cur.sealed)
	prefixIDs := make(map[uint64]struct{}, prefix)
	ix.wmu.Lock()
	mergedID := ix.nextSeg
	ix.nextSeg++
	ix.wmu.Unlock()
	merged := newSegment(mergedID, ix.bands)
	for _, seg := range cur.sealed {
		prefixIDs[seg.id] = struct{}{}
		for _, name := range seg.tableNames() {
			if cur.dead(seg, name) {
				continue
			}
			// tableProfiles materializes mapped columns onto the heap (and
			// the name is cloned), so a compaction's merged segment never
			// borrows a byte from a mapping.
			merged.add(strings.Clone(name), seg.tableProfiles(name), ix.rows)
		}
	}

	// Phase 2 (writer lock): splice the merged segment in place of the
	// prefix. Tombstones that arrived during the merge and hit the prefix
	// are applied by rebuilding the (already deduplicated) merged segment.
	ix.wmu.Lock()
	latest := ix.snap.Load()
	tombs := make(map[tombKey]struct{})
	for key := range latest.tombs {
		if _, inPrefix := prefixIDs[key.seg]; inPrefix {
			// Tombstones already present at merge time were applied by the
			// cur.dead skip in phase 1; re-applying them here could kill a
			// live re-added occurrence that merged from another prefix
			// segment. Only tombstones that arrived during the merge still
			// shadow a column inside the merged slab.
			if _, old := cur.tombs[key]; !old {
				if _, ok := merged.tables[key.table]; ok {
					merged = merged.without(key.table, ix.rows)
				}
			}
			continue // consumed either way: the occurrence is gone
		}
		tombs[key] = struct{}{}
	}
	sealed := make([]*segment, 0, 1+len(latest.sealed)-prefix)
	if len(merged.cols) > 0 || merged.numTables() > 0 {
		sealed = append(sealed, merged)
	}
	sealed = append(sealed, latest.sealed[prefix:]...)
	next := &snapshot{
		sealed:  sealed,
		mem:     latest.mem,
		tombs:   tombs,
		epoch:   latest.epoch + 1,
		nTables: latest.nTables,
		nCols:   latest.nCols,
	}
	ix.snap.Store(next)
	ix.wmu.Unlock()
}

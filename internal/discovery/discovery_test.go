package discovery

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"valentine/internal/matchers/lshmatch"
	"valentine/internal/table"
)

// vals renders [lo, hi) as deterministic value strings with a namespace
// prefix, so overlap between columns is exactly controlled.
func vals(prefix string, lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, fmt.Sprintf("%s%05d", prefix, i))
	}
	return out
}

// fixtureCorpus builds a small data lake with controlled overlap:
//
//   - query "prospects": customer_id c[0,150), city t[0,100)
//   - "orders" shares 120/150 customer ids   (high joinability)
//   - "geo" shares 85/100 cities             (joinable on city)
//   - "wide" shares both columns partially   (best union coverage)
//   - "assay", "programs" are disjoint       (noise)
func fixtureCorpus(t *testing.T, ix *Index) *table.Table {
	t.Helper()
	// Columns of a table must be row-aligned; shorter value sets are padded
	// with unique filler values that overlap nothing else.
	pad := func(vs []string, prefix string, n int) []string {
		return append(vs, vals(prefix, 0, n-len(vs))...)
	}
	q := table.New("prospects").
		AddColumn("customer_id", vals("c", 0, 150)).
		AddColumn("city", pad(vals("t", 0, 100), "qf", 150))

	add := func(tab *table.Table) {
		t.Helper()
		if err := ix.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	add(table.New("orders").
		AddColumn("cust", vals("c", 30, 150)).
		AddColumn("amount", vals("a", 0, 120)))
	add(table.New("geo").
		AddColumn("town", vals("t", 15, 100)).
		AddColumn("zone", vals("z", 0, 85)))
	add(table.New("wide").
		AddColumn("customer", vals("c", 60, 150)).
		AddColumn("place", pad(vals("t", 40, 100), "wf", 90)))
	add(table.New("assay").
		AddColumn("compound", vals("x", 0, 130)).
		AddColumn("result", vals("y", 0, 130)))
	add(table.New("programs").
		AddColumn("program_id", vals("p", 0, 110)).
		AddColumn("agency", vals("g", 0, 110)))
	return q
}

func TestSearchRanksRelatedTablesFirst(t *testing.T) {
	ix := New(Options{})
	q := fixtureCorpus(t, ix)
	res, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Table != "orders" {
		t.Errorf("top result = %s (%.3f), want orders", res[0].Table, res[0].Score)
	}
	if res[0].BestQuery != "customer_id" || res[0].BestIndexed != "cust" {
		t.Errorf("best correspondence = %s ~ %s, want customer_id ~ cust",
			res[0].BestQuery, res[0].BestIndexed)
	}
	rank := map[string]int{}
	for i, r := range res {
		rank[r.Table] = i + 1
	}
	for _, related := range []string{"orders", "geo", "wide"} {
		if pos, ok := rank[related]; !ok || pos > 3 {
			t.Errorf("%s ranked %d of %d, want top-3 (ranks: %v)", related, pos, len(res), rank)
		}
	}
}

func TestUnionModePrefersCoverage(t *testing.T) {
	ix := New(Options{})
	q := fixtureCorpus(t, ix)
	res, err := ix.Search(q, ModeUnion, 1)
	if err != nil {
		t.Fatal(err)
	}
	// "wide" covers both query columns; orders/geo each cover only one, so
	// their union score is halved.
	if res[0].Table != "wide" {
		t.Errorf("top union result = %s (%.3f), want wide", res[0].Table, res[0].Score)
	}
}

// TestIndexedMatchesBruteForce is the equivalence guarantee of the issue:
// on the fixture corpus the LSH-pruned top-k ranking (tables, order, and
// scores) is identical to scoring every indexed column.
func TestIndexedMatchesBruteForce(t *testing.T) {
	for _, mode := range []Mode{ModeJoin, ModeUnion} {
		ix := New(Options{})
		q := fixtureCorpus(t, ix)
		const k = 3 // the three genuinely related tables
		fast, err := ix.Search(q, mode, k)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ix.SearchBruteForce(q, mode, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != k || len(slow) != k {
			t.Fatalf("%s: got %d indexed / %d brute results, want %d", mode, len(fast), len(slow), k)
		}
		for i := range fast {
			if fast[i].Table != slow[i].Table {
				t.Errorf("%s rank %d: indexed %s, brute %s", mode, i+1, fast[i].Table, slow[i].Table)
			}
			if math.Abs(fast[i].Score-slow[i].Score) > 1e-12 {
				t.Errorf("%s rank %d (%s): indexed score %.6f, brute %.6f",
					mode, i+1, fast[i].Table, fast[i].Score, slow[i].Score)
			}
		}
	}
}

// TestSearchAgreesWithPairwiseMatcher pins the shared-primitives contract:
// the index's join score for a table equals the top match score the
// lshmatch matcher produces on the same (query, table) pair.
func TestSearchAgreesWithPairwiseMatcher(t *testing.T) {
	ix := New(Options{})
	q := fixtureCorpus(t, ix)
	res, err := ix.Search(q, ModeJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := res[0]
	pairwise := table.New("orders").
		AddColumn("cust", vals("c", 30, 150)).
		AddColumn("amount", vals("a", 0, 120))
	m, err := lshmatch.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := m.Match(q, pairwise)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("matcher returned no matches")
	}
	if math.Abs(top.Score-matches[0].Score) > 1e-12 {
		t.Errorf("index join score %.6f != matcher top score %.6f", top.Score, matches[0].Score)
	}
}

func TestTokenBoostBreaksValueTies(t *testing.T) {
	ix := New(Options{TokenBoost: 0.1})
	// Two tables with identical values; only one shares name tokens.
	if err := ix.Add(table.New("named").AddColumn("customer_id", vals("c", 0, 50))); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(table.New("anon").AddColumn("blob7", vals("c", 0, 50))); err != nil {
		t.Fatal(err)
	}
	q := table.New("q").AddColumn("CustomerID", vals("c", 0, 50))
	res, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Table != "named" || res[0].Score <= res[1].Score {
		t.Fatalf("token boost did not break the tie: %+v", res)
	}
}

// TestEmptyColumnsAreNotCandidates: all-empty columns would otherwise share
// one bucket per band (all-sentinel signatures) and nominate each other at
// score 0, bloating candidate sets.
func TestEmptyColumnsAreNotCandidates(t *testing.T) {
	// TokenBoost set on purpose: the brute-force path must also refuse to
	// rank empty columns, or name overlap alone would surface them there.
	ix := New(Options{TokenBoost: 0.1})
	blank := make([]string, 20)
	if err := ix.Add(table.New("voids").AddColumn("notes", blank)); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(table.New("orders").AddColumn("cust", vals("c", 0, 50))); err != nil {
		t.Fatal(err)
	}
	q := table.New("q").
		AddColumn("notes", vals("c", 0, 50)). // name-matches the empty column
		AddColumn("comment", make([]string, 50))
	for _, search := range []func(*table.Table, Mode, int) ([]Result, error){
		ix.Search, ix.SearchBruteForce,
	} {
		res, err := search(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Table == "voids" {
				t.Errorf("empty-column table nominated as candidate: %+v", r)
			}
		}
		if len(res) != 1 || res[0].Table != "orders" {
			t.Fatalf("results = %+v, want just orders", res)
		}
	}
}

func TestAddValidation(t *testing.T) {
	ix := New(Options{})
	tab := table.New("dup").AddColumn("a", vals("v", 0, 10))
	if err := ix.Add(tab); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(tab); err == nil {
		t.Error("duplicate table name should fail")
	}
	if err := ix.Add(table.New("")); err == nil {
		t.Error("invalid table should fail")
	}
	if n, c := ix.NumTables(), ix.NumColumns(); n != 1 || c != 1 {
		t.Errorf("tables/columns = %d/%d, want 1/1", n, c)
	}
}

func TestSearchSkipsQueryItself(t *testing.T) {
	ix := New(Options{})
	q := table.New("self").AddColumn("a", vals("v", 0, 40))
	if err := ix.Add(q); err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Table == "self" {
			t.Error("query table should not match itself")
		}
	}
}

func TestParseMode(t *testing.T) {
	if _, err := ParseMode("join"); err != nil {
		t.Error(err)
	}
	if _, err := ParseMode("union"); err != nil {
		t.Error(err)
	}
	if _, err := ParseMode("sideways"); err == nil {
		t.Error("invalid mode should fail")
	}
	if _, err := New(Options{}).Search(table.New("q").AddColumn("a", nil), Mode("bad"), 1); err == nil {
		t.Error("Search with invalid mode should fail")
	}
}

func TestProfiles(t *testing.T) {
	ix := New(Options{})
	tab := table.New("t").AddColumn("OrderID", []string{"1", "2", "2", ""})
	if err := ix.Add(tab); err != nil {
		t.Fatal(err)
	}
	ps := ix.Profiles("t")
	if len(ps) != 1 {
		t.Fatalf("profiles = %d, want 1", len(ps))
	}
	p := ps[0]
	if p.Column != "OrderID" || p.Rows != 4 || p.Distinct != 2 {
		t.Errorf("profile = %+v", p)
	}
	if len(p.Tokens) != 2 || p.Tokens[0] != "order" || p.Tokens[1] != "id" {
		t.Errorf("tokens = %v, want [order id]", p.Tokens)
	}
	if ix.Profiles("missing") != nil {
		t.Error("unknown table should yield nil profiles")
	}
	// Returned profiles are deep copies: mutating them must not corrupt
	// the index's signatures.
	p.Signature[0] = 12345
	p.Tokens[0] = "mutated"
	fresh := ix.Profiles("t")[0]
	if fresh.Signature[0] == 12345 || fresh.Tokens[0] == "mutated" {
		t.Error("Profiles leaked the index's internal slices")
	}
}

// TestConcurrentQueries exercises the read path from many goroutines while
// new tables are ingested — run with -race to verify the locking.
func TestConcurrentQueries(t *testing.T) {
	ix := New(Options{})
	q := fixtureCorpus(t, ix)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mode := ModeJoin
			if g%2 == 1 {
				mode = ModeUnion
			}
			for i := 0; i < 20; i++ {
				if _, err := ix.Search(q, mode, 3); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Concurrent ingestion of fresh tables.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			tab := table.New(fmt.Sprintf("extra_%d", i)).
				AddColumn("k", vals(fmt.Sprintf("e%d_", i), 0, 30))
			if err := ix.Add(tab); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := ix.NumTables(); got != 15 {
		t.Errorf("tables after concurrent ingest = %d, want 15", got)
	}
}

package discovery

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"valentine/internal/faultfs"
	"valentine/internal/table"
)

func liveCatalog(t *testing.T) *Index {
	t.Helper()
	ix := New(Options{SealAfter: 2})
	for i := 0; i < 7; i++ {
		name := fmt.Sprintf("t%d", i)
		tab := table.New(name).
			AddColumn("k", vals("u", i*15, i*15+60)).
			AddColumn("v", vals(fmt.Sprintf("p%d_", i), 0, 60))
		if err := ix.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Remove("t1"); err != nil { // sealed → tombstone
		t.Fatal(err)
	}
	ix.WaitCompaction()
	return ix
}

func snapshotQuery() *table.Table {
	return table.New("q").AddColumn("k", vals("u", 0, 90))
}

// normalizeResidency zeros the segment-residency byte counters: they
// describe the physical representation (heap-estimated vs mapped file
// bytes), which legitimately differs between a catalog and its reloaded
// twin, while every other Stats field must survive a round trip exactly.
func normalizeResidency(st Stats) Stats {
	st.HeapSegmentBytes, st.MappedSegmentBytes, st.MappedResidentBytes = 0, 0, 0
	return st
}

func TestSnapshotRoundTrip(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Options(), ix.Options(); got != want {
		t.Errorf("options = %+v, want %+v", got, want)
	}
	if got, want := normalizeResidency(loaded.Stats()), normalizeResidency(ix.Stats()); got != want {
		t.Errorf("stats = %+v, want %+v (segment layout must survive the round trip)", got, want)
	}
	if st := loaded.Stats(); st.MappedSegmentBytes == 0 && mmapAvailable {
		t.Errorf("v2 snapshot load reported no mapped bytes: %+v", st)
	}
	// The segment files were written moments ago and parsed on load, so
	// the sampled mincore estimate must see some residency — and never
	// more than the mapping itself.
	if st := loaded.Stats(); st.MappedResidentBytes <= 0 || st.MappedResidentBytes > st.MappedSegmentBytes+st.HeapSegmentBytes {
		t.Errorf("mapped_resident_bytes = %d out of range (mapped %d, heap %d)",
			st.MappedResidentBytes, st.MappedSegmentBytes, st.HeapSegmentBytes)
	}
	if !reflect.DeepEqual(loaded.Tables(), ix.Tables()) {
		t.Errorf("tables = %v, want %v", loaded.Tables(), ix.Tables())
	}
	q := snapshotQuery()
	for _, mode := range []Mode{ModeJoin, ModeUnion} {
		want, err := ix.Search(q, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q, mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s search diverged after round trip:\n got %+v\nwant %+v", mode, got, want)
		}
	}
	// The loaded catalog stays live: tombstoned names can return, new
	// writes land, removal still works.
	if err := loaded.Add(table.New("t1").AddColumn("k", vals("u", 0, 40))); err != nil {
		t.Fatalf("re-adding tombstoned name to loaded catalog: %v", err)
	}
	if err := loaded.Remove("t0"); err != nil {
		t.Fatal(err)
	}
	if n := loaded.NumTables(); n != ix.NumTables() {
		t.Errorf("tables after mutating loaded catalog = %d, want %d", n, ix.NumTables())
	}
}

func TestSnapshotIsIncremental(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	segFiles := func() map[string]time.Time {
		out := map[string]time.Time{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "seg-") {
				info, err := e.Info()
				if err != nil {
					t.Fatal(err)
				}
				out[e.Name()] = info.ModTime()
			}
		}
		return out
	}
	first := segFiles()
	if len(first) == 0 {
		t.Fatal("no sealed segment files written")
	}
	// Grow the catalog past another seal, snapshot again: every segment
	// file from the first snapshot must be byte-untouched (same mtime),
	// with only new files added.
	time.Sleep(10 * time.Millisecond) // ensure mtime resolution can't mask a rewrite
	for i := 0; i < 3; i++ {
		if err := ix.Add(table.New(fmt.Sprintf("x%d", i)).AddColumn("k", vals("x", i*10, i*10+40))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	second := segFiles()
	if len(second) <= len(first) {
		t.Fatalf("second snapshot has %d segment files, want more than %d", len(second), len(first))
	}
	for name, mtime := range first {
		got, ok := second[name]
		if !ok {
			t.Errorf("segment file %s disappeared without compaction", name)
			continue
		}
		if !got.Equal(mtime) {
			t.Errorf("immutable segment file %s was rewritten", name)
		}
	}
	// After compaction, the next snapshot prunes the merged-away files.
	ix.Compact()
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	third := segFiles()
	if len(third) != 1 {
		t.Errorf("segment files after compaction snapshot = %v, want exactly 1", third)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Tables(), ix.Tables()) {
		t.Errorf("tables after pruned snapshot = %v, want %v", loaded.Tables(), ix.Tables())
	}
}

// TestSnapshotCrashOrphanNotAdopted: a crash between writing segment files
// and the manifest leaves orphan seg-<id>.gob files. Their ids must never
// be reallocated — otherwise a later SaveSnapshot's "file exists → skip"
// fast path would adopt the stale orphan — and the next successful
// snapshot prunes them.
func TestSnapshotCrashOrphanNotAdopted(t *testing.T) {
	ix := liveCatalog(t)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Simulate the crashed snapshot: a stale segment file with an id past
	// the manifest's NextSeg, holding a table the catalog no longer has.
	ghost := newSegment(9, ix.bands)
	ghost.add("ghost", []ColumnProfile{{
		Table: "ghost", Column: "k", Rows: 1, Distinct: 1,
		Signature: make([]uint64, ix.k),
	}}, ix.rows)
	if err := writeGob(faultfs.OS, filepath.Join(dir, segFileName(9)), segToFile(ghost)); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(loaded.Tables(), ",")
	if strings.Contains(names, "ghost") {
		t.Fatalf("orphan segment leaked into the loaded catalog: %s", names)
	}
	// Drive enough seals that a naive id counter would reach the orphan's
	// id, snapshot, and reload: the orphan must never be adopted.
	for i := 0; i < 20; i++ {
		if err := loaded.Upsert(table.New(fmt.Sprintf("g%02d", i)).
			AddColumn("k", vals("g", i, i+30))); err != nil {
			t.Fatal(err)
		}
	}
	loaded.WaitCompaction()
	if err := loaded.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	want := strings.Join(loaded.Tables(), ",")
	re, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(re.Tables(), ",")
	if got != want {
		t.Fatalf("reloaded corpus diverged:\n got %s\nwant %s", got, want)
	}
	if strings.Contains(got, "ghost") {
		t.Fatal("orphan segment adopted after id reuse")
	}
	if _, err := os.Stat(filepath.Join(dir, segFileName(9))); !os.IsNotExist(err) {
		t.Error("orphan segment file survived the next successful snapshot")
	}
}

// TestSnapshotForeignDirectoryOverwritten: snapshotting a catalog into a
// directory holding a different catalog's snapshot must overwrite the
// same-named segment files (segment ids always start at 0), never adopt
// them via the incremental fast path.
func TestSnapshotForeignDirectoryOverwritten(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	a := New(Options{SealAfter: 1}) // every add seals → seg-0.gob exists
	if err := a.Add(table.New("old_table").AddColumn("k", vals("a", 0, 30))); err != nil {
		t.Fatal(err)
	}
	if err := a.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	b := New(Options{SealAfter: 1})
	if err := b.Add(table.New("new_table").AddColumn("k", vals("b", 0, 30))); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(loaded.Tables(), ","); got != "new_table" {
		t.Fatalf("foreign snapshot adopted stale segments: tables = %s", got)
	}
	// The catalog that owns the directory still snapshots incrementally.
	if err := b.Add(table.New("extra").AddColumn("k", vals("c", 0, 30))); err != nil {
		t.Fatal(err)
	}
	if err := b.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	re, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(re.Tables(), ","); got != "extra,new_table" {
		t.Fatalf("tables after incremental save = %s", got)
	}
}

func TestLoadFileDetectsBothFormats(t *testing.T) {
	ix := liveCatalog(t)
	base := t.TempDir()
	// Single-file format.
	flat := filepath.Join(base, "lake.idx")
	if err := ix.SaveFile(flat); err != nil {
		t.Fatal(err)
	}
	fromFlat, err := LoadFile(flat)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot-directory format.
	dir := filepath.Join(base, "snapdir")
	if err := ix.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	fromSnap, err := LoadFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := snapshotQuery()
	want, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, loaded := range map[string]*Index{"flat": fromFlat, "snapshot": fromSnap} {
		got, err := loaded.Search(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: search diverged:\n got %+v\nwant %+v", name, got, want)
		}
	}
	// The flat format drops tombstones and segment layout (it is an
	// offline compaction); the snapshot format preserves them.
	if st := fromFlat.Stats(); st.Tombstones != 0 {
		t.Errorf("flat format preserved tombstones: %+v", st)
	}
	if st, want := normalizeResidency(fromSnap.Stats()), normalizeResidency(ix.Stats()); st != want {
		t.Errorf("snapshot stats = %+v, want %+v", st, want)
	}
	if _, err := LoadSnapshot(filepath.Join(base, "absent")); err == nil {
		t.Error("loading a missing snapshot should fail")
	}
}

package discovery

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"valentine/internal/profile"
	"valentine/internal/table"
)

func TestUpsertReplacesLiveTable(t *testing.T) {
	ix := New(Options{})
	if err := ix.Add(table.New("orders").AddColumn("cust", vals("c", 0, 50))); err != nil {
		t.Fatal(err)
	}
	// Upsert with disjoint content: the old values must stop matching.
	if err := ix.Upsert(table.New("orders").AddColumn("cust", vals("z", 0, 50))); err != nil {
		t.Fatal(err)
	}
	if n := ix.NumTables(); n != 1 {
		t.Fatalf("tables after upsert = %d, want 1", n)
	}
	q := table.New("q").AddColumn("cust", vals("c", 0, 50))
	res, err := ix.SearchBruteForce(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Score != 0 {
		t.Fatalf("old content still matches after upsert: %+v", res)
	}
	// Upsert acts as insert for a fresh name.
	if err := ix.Upsert(table.New("fresh").AddColumn("k", vals("c", 0, 50))); err != nil {
		t.Fatal(err)
	}
	if n := ix.NumTables(); n != 2 {
		t.Fatalf("tables after insert-upsert = %d, want 2", n)
	}
}

func TestRemoveMemtableAndSealed(t *testing.T) {
	// SealAfter 2: the first two tables seal into a segment, the third
	// stays in the memtable — so one removal exercises the tombstone path
	// and the other the memtable-rebuild path.
	ix := New(Options{SealAfter: 2})
	for i, name := range []string{"a", "b", "c"} {
		if err := ix.Add(table.New(name).AddColumn("k", vals(fmt.Sprintf("v%d", i), 0, 30))); err != nil {
			t.Fatal(err)
		}
	}
	if st := ix.Stats(); st.SealedSegments != 1 || st.MemTables != 1 {
		t.Fatalf("stats = %+v, want 1 sealed segment and 1 memtable table", st)
	}
	if err := ix.Remove("c"); err != nil { // memtable
		t.Fatal(err)
	}
	if err := ix.Remove("a"); err != nil { // sealed → tombstone
		t.Fatal(err)
	}
	if err := ix.Remove("nope"); err == nil {
		t.Error("removing an unknown table should fail")
	}
	if err := ix.Remove("a"); err == nil {
		t.Error("removing an already-removed table should fail")
	}
	if got := ix.Tables(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("live tables = %v, want [b]", got)
	}
	if n, c := ix.NumTables(), ix.NumColumns(); n != 1 || c != 1 {
		t.Fatalf("tables/columns = %d/%d, want 1/1", n, c)
	}
	if st := ix.Stats(); st.Tombstones != 1 || st.TombstonedColumns != 1 {
		t.Fatalf("stats = %+v, want 1 tombstone shadowing 1 column", st)
	}
	// Tombstoned and memtable-removed tables must be invisible to both
	// search paths and to Profiles.
	q := table.New("q").AddColumn("k", append(vals("v0", 0, 30), vals("v2", 0, 30)...))
	for _, search := range []func(*table.Table, Mode, int) ([]Result, error){ix.Search, ix.SearchBruteForce} {
		res, err := search(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Table == "a" || r.Table == "c" {
				t.Errorf("removed table %q surfaced: %+v", r.Table, r)
			}
		}
	}
	if ix.Profiles("a") != nil || ix.Profiles("c") != nil {
		t.Error("Profiles leaked a removed table")
	}
}

func TestTombstonedNameCanBeReAdded(t *testing.T) {
	ix := New(Options{SealAfter: 1}) // every add seals immediately
	if err := ix.Add(table.New("t").AddColumn("k", vals("old", 0, 40))); err != nil {
		t.Fatal(err)
	}
	if err := ix.Remove("t"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(table.New("t").AddColumn("k", vals("new", 0, 40))); err != nil {
		t.Fatal(err)
	}
	q := table.New("q").AddColumn("k", vals("new", 0, 40))
	res, err := ix.Search(q, ModeJoin, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Table != "t" || res[0].Score < 0.9 {
		t.Fatalf("re-added table not served from its new content: %+v", res)
	}
	// The dead occurrence must not shadow the live one in the other
	// direction either.
	qOld := table.New("q").AddColumn("k", vals("old", 0, 40))
	res, err = ix.SearchBruteForce(qOld, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Score != 0 {
		t.Fatalf("dead occurrence still scored: %+v", res)
	}
}

func TestSealingPreservesSearchEquivalence(t *testing.T) {
	// The same corpus, three segment geometries: monolithic, small
	// segments, one-table segments. All must rank identically.
	layouts := []Options{{SealAfter: 100}, {SealAfter: 3}, {SealAfter: 1}}
	var want []Result
	for li, opts := range layouts {
		ix := New(opts)
		q := fixtureCorpus(t, ix)
		res, err := ix.Search(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if li == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("SealAfter=%d: results diverge from monolithic layout:\n got %+v\nwant %+v",
				opts.SealAfter, res, want)
		}
	}
}

func TestCompactReclaimsTombstones(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := ix.Add(table.New(name).AddColumn("k", vals(fmt.Sprintf("v%d_", i), 0, 30))); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"t0", "t3", "t5"} {
		if err := ix.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	ix.WaitCompaction() // drain any auto-compaction so the explicit one is observable
	q := table.New("q").AddColumn("k", vals("v1_", 0, 30))
	before, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	beforeTables := ix.Tables()

	ix.Compact()
	st := ix.Stats()
	if st.SealedSegments != 1 {
		t.Errorf("sealed segments after compact = %d, want 1", st.SealedSegments)
	}
	if st.Tombstones != 0 || st.TombstonedColumns != 0 {
		t.Errorf("tombstones survived compaction: %+v", st)
	}
	if st.Tables != 5 {
		t.Errorf("live tables after compact = %d, want 5", st.Tables)
	}
	after, err := ix.Search(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("compaction changed search results:\n before %+v\n after  %+v", before, after)
	}
	if !reflect.DeepEqual(beforeTables, ix.Tables()) {
		t.Errorf("compaction changed the live table set: %v → %v", beforeTables, ix.Tables())
	}
	// Compacting an already-compact catalog is a no-op.
	ix.Compact()
	if got := ix.Stats(); got.SealedSegments != 1 || got.Tables != 5 {
		t.Errorf("second compact changed state: %+v", got)
	}
}

func TestAutoCompactionTriggersOnGarbage(t *testing.T) {
	ix := New(Options{SealAfter: 2})
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := ix.Add(table.New(name).AddColumn("k", vals(fmt.Sprintf("v%d_", i), 0, 30))); err != nil {
			t.Fatal(err)
		}
	}
	// Removing four of six sealed tables pushes garbage past the live
	// column count — the write itself must schedule a compaction.
	for _, name := range []string{"t0", "t1", "t2", "t3"} {
		if err := ix.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	ix.WaitCompaction()
	st := ix.Stats()
	if st.Tombstones != 0 {
		t.Errorf("auto-compaction did not run: %+v", st)
	}
	if st.Tables != 2 {
		t.Errorf("live tables = %d, want 2", st.Tables)
	}
}

func TestApplyBatchPerOpErrors(t *testing.T) {
	ix := New(Options{})
	if err := ix.Add(table.New("keep").AddColumn("k", vals("k", 0, 20))); err != nil {
		t.Fatal(err)
	}
	before := ix.Epoch()
	errs := ix.Apply([]Op{
		{Upsert: profile.New(table.New("a").AddColumn("x", vals("a", 0, 20)))},
		{Remove: "missing"},
		{Remove: "keep"},
		{},
	})
	if errs[0] != nil {
		t.Errorf("op 0 (upsert): %v", errs[0])
	}
	if errs[1] == nil {
		t.Error("op 1 (remove missing) should fail")
	}
	if errs[2] != nil {
		t.Errorf("op 2 (remove keep): %v", errs[2])
	}
	if errs[3] == nil {
		t.Error("op 3 (empty op) should fail")
	}
	if got := ix.Tables(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("live tables = %v, want [a]", got)
	}
	// One batch, one epoch: the three state-touching ops publish together.
	if d := ix.Epoch() - before; d != 1 {
		t.Errorf("epoch advanced by %d for one batch, want 1", d)
	}
	// A batch where every op fails publishes nothing: the epoch only moves
	// when the corpus does.
	at := ix.Epoch()
	if errs := ix.Apply([]Op{{Remove: "still-missing"}}); errs[0] == nil {
		t.Error("remove of unknown table should fail")
	}
	if ix.Epoch() != at {
		t.Errorf("failed-only batch advanced the epoch: %d → %d", at, ix.Epoch())
	}
}

// TestRandomizedLiveConformance is the acceptance criterion: after any
// interleaving of Add/Upsert/Remove, the catalog's searches agree with a
// freshly built index over the same live corpus — Search top-k equals
// SearchBruteForce, and the segmented/tombstoned brute force equals a
// clean-room rebuild, scores and all. Run under -race in CI.
func TestRandomizedLiveConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// All tables draw from one value universe, so related tables genuinely
	// collide in the LSH bands and the top-k comparison is meaningful.
	makeTable := func(name string) *table.Table {
		tab := table.New(name)
		ncols := 1 + rng.Intn(3)
		nrows := 80 + rng.Intn(120) // columns must be row-aligned
		for c := 0; c < ncols; c++ {
			lo := rng.Intn(300)
			tab.AddColumn(fmt.Sprintf("col%d", c), vals("u", lo, lo+nrows))
		}
		return tab
	}
	ix := New(Options{SealAfter: 3}) // frequent seals → many segments
	live := make(map[string]*table.Table)
	names := make([]string, 30)
	for i := range names {
		names[i] = fmt.Sprintf("t%02d", i)
	}

	check := func(step int) {
		t.Helper()
		q := makeTable("query")
		fast, err := ix.Search(q, ModeJoin, 5)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ix.SearchBruteForce(q, ModeJoin, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("step %d: %d indexed vs %d brute results", step, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Table != slow[i].Table || math.Abs(fast[i].Score-slow[i].Score) > 1e-12 {
				t.Fatalf("step %d rank %d: indexed %+v, brute %+v", step, i+1, fast[i], slow[i])
			}
		}
		// Clean-room rebuild over the live corpus: the mutated, segmented,
		// tombstoned catalog must be indistinguishable from it.
		fresh := New(Options{})
		for _, tab := range live {
			if err := fresh.Add(tab); err != nil {
				t.Fatal(err)
			}
		}
		want, err := fresh.SearchBruteForce(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.SearchBruteForce(q, ModeJoin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: live corpus has %d rankable tables, rebuild has %d", step, len(got), len(want))
		}
		for i := range want {
			if got[i].Table != want[i].Table || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
				t.Fatalf("step %d rank %d: catalog %+v, rebuild %+v", step, i+1, got[i], want[i])
			}
		}
	}

	steps := 150
	if testing.Short() {
		steps = 60
	}
	for step := 0; step < steps; step++ {
		name := names[rng.Intn(len(names))]
		switch op := rng.Intn(10); {
		case op < 4: // upsert
			tab := makeTable(name)
			if err := ix.Upsert(tab); err != nil {
				t.Fatalf("step %d upsert %s: %v", step, name, err)
			}
			live[name] = tab
		case op < 7: // add (must fail iff live)
			tab := makeTable(name)
			err := ix.Add(tab)
			if _, ok := live[name]; ok {
				if err == nil {
					t.Fatalf("step %d: add of live %s succeeded", step, name)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d add %s: %v", step, name, err)
				}
				live[name] = tab
			}
		default: // remove (must fail iff not live)
			err := ix.Remove(name)
			if _, ok := live[name]; ok {
				if err != nil {
					t.Fatalf("step %d remove %s: %v", step, name, err)
				}
				delete(live, name)
			} else if err == nil {
				t.Fatalf("step %d: remove of unknown %s succeeded", step, name)
			}
		}
		if n := ix.NumTables(); n != len(live) {
			t.Fatalf("step %d: NumTables = %d, want %d", step, n, len(live))
		}
		if step%25 == 24 {
			ix.WaitCompaction()
			check(step)
		}
		if step == steps/2 {
			ix.Compact() // mid-run explicit compaction must be invisible
			check(step)
		}
	}
	ix.WaitCompaction()
	check(steps)
}

// TestAnonymousQuerySeesTableNamedQuery: an empty-named query must not be
// assigned any default name — a catalog can contain a table literally named
// "query", and the self-table skip must not hide it.
func TestAnonymousQuerySeesTableNamedQuery(t *testing.T) {
	ix := New(Options{})
	if err := ix.Add(table.New("query").AddColumn("k", vals("q", 0, 40))); err != nil {
		t.Fatal(err)
	}
	anon := table.New("").AddColumn("k", vals("q", 0, 40))
	res, err := ix.Search(anon, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Table != "query" || res[0].Score < 0.9 {
		t.Fatalf("anonymous query missed the table named \"query\": %+v", res)
	}
	// Structural validation still applies to anonymous queries.
	ragged := &table.Table{Columns: []table.Column{
		{Name: "a", Values: []string{"1", "2"}},
		{Name: "b", Values: []string{"1"}},
	}}
	if _, err := ix.Search(ragged, ModeJoin, 0); err == nil {
		t.Error("ragged anonymous query should fail validation")
	}
}

// TestConcurrentMutateSearch is the satellite's Add+Search race test, grown
// to the full live-catalog surface: writers add, upsert and remove while
// readers search continuously; compaction runs in the background. Run with
// -race. At no point may a search block on a writer, error, or observe a
// torn snapshot (enforced by the race detector plus the final conformance
// sweep).
func TestConcurrentMutateSearch(t *testing.T) {
	ix := New(Options{SealAfter: 4})
	for i := 0; i < 8; i++ {
		if err := ix.Add(table.New(fmt.Sprintf("base%d", i)).
			AddColumn("k", vals("u", i*20, i*20+60))); err != nil {
			t.Fatal(err)
		}
	}
	q := table.New("query").AddColumn("k", vals("u", 0, 120))

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	stop := make(chan struct{})
	// Readers: continuous searches on both paths.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ix.Search(q, ModeJoin, 5); err != nil {
					errs <- err
					return
				}
				if _, err := ix.SearchBruteForce(q, ModeUnion, 5); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Writers: interleaved add/upsert/remove on a private name space each.
	var ww sync.WaitGroup
	for w := 0; w < 3; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("w%d_%d", w, i%5)
				tab := table.New(name).AddColumn("k", vals("u", i*10, i*10+50))
				var err error
				switch i % 3 {
				case 0, 1:
					err = ix.Upsert(tab)
				case 2:
					// Remove a name this writer upserted two steps ago.
					err = ix.Remove(fmt.Sprintf("w%d_%d", w, (i-2)%5))
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d step %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	ix.WaitCompaction()

	// Final state: every live table must still resolve, and the catalog
	// must still rank.
	for _, name := range ix.Tables() {
		if ix.Profiles(name) == nil {
			t.Fatalf("live table %s has no profiles", name)
		}
	}
	got, err := ix.SearchBruteForce(q, ModeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results after concurrent churn")
	}
}

package embedding

import (
	"hash/fnv"
	"math"
	"strings"

	"valentine/internal/wordnet"
)

// Pretrained produces deterministic word vectors that behave like vectors
// from a model pre-trained on natural language: words sharing a thesaurus
// synset have high cosine similarity, hypernym-related words moderate
// similarity, and unrelated words near-zero similarity.
//
// Construction per word: a hash-seeded pseudo-random base vector is blended
// with anchor vectors of the word's synsets (weight wSyn) and of their
// hypernym synsets (weight wHyper), then normalized. Out-of-vocabulary
// words fall back to their base vector plus character-trigram components so
// that misspellings of the same word stay similar.
type Pretrained struct {
	dim  int
	thes *wordnet.Thesaurus
}

// Blend weights of the pretrained construction.
const (
	wBase    = 0.35
	wSyn     = 1.0
	wHyper   = 0.35
	wTrigram = 0.45
)

// NewPretrained returns a pretrained-vector source of the given
// dimensionality over the supplied thesaurus (nil means the embedded
// default). Dimensions below 16 are raised to 16 — with fewer dimensions
// random base vectors are no longer near-orthogonal and the "unrelated
// words score ≈ 0" property degrades.
func NewPretrained(dim int, thes *wordnet.Thesaurus) *Pretrained {
	if dim < 16 {
		dim = 16
	}
	if thes == nil {
		thes = wordnet.Default()
	}
	return &Pretrained{dim: dim, thes: thes}
}

// Dim returns the vector dimensionality.
func (p *Pretrained) Dim() int { return p.dim }

// Vector returns the embedding of a single lowercase word.
func (p *Pretrained) Vector(word string) Vector {
	word = strings.ToLower(strings.TrimSpace(word))
	out := make(Vector, p.dim)
	if word == "" {
		return out
	}
	base := p.seedVector("w:" + word)
	Scale(base, wBase)
	Add(out, base)

	if p.thes.Contains(word) {
		// Anchor on every synset containing the word, plus hypernym anchors
		// discovered through synonym expansion at distance 1.
		anchor := p.seedVector("syn:" + canonicalSynonym(p.thes, word))
		Scale(anchor, wSyn)
		Add(out, anchor)
	} else {
		// OOV: trigram components keep typo'd variants close.
		for g := range trigrams(word) {
			tg := p.seedVector("g:" + g)
			Scale(tg, wTrigram/3)
			Add(out, tg)
		}
	}
	return Normalize(out)
}

// TextVector embeds a multi-word text as the normalized mean of its word
// vectors.
func (p *Pretrained) TextVector(words []string) Vector {
	out := make(Vector, p.dim)
	n := 0
	for _, w := range words {
		if strings.TrimSpace(w) == "" {
			continue
		}
		Add(out, p.Vector(w))
		n++
	}
	if n == 0 {
		return out
	}
	Scale(out, 1/float64(n))
	return Normalize(out)
}

// Similarity is the cosine similarity between the two words' vectors.
func (p *Pretrained) Similarity(a, b string) float64 {
	return Cosine(p.Vector(a), p.Vector(b))
}

// canonicalSynonym returns a deterministic representative of the word's
// synonym set so that every member of a synset maps to the same anchor id.
func canonicalSynonym(t *wordnet.Thesaurus, word string) string {
	rep := word
	for _, s := range t.Synonyms(word) {
		if s < rep {
			rep = s
		}
	}
	return rep
}

func trigrams(s string) map[string]struct{} {
	out := make(map[string]struct{})
	padded := "##" + s + "##"
	r := []rune(padded)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = struct{}{}
	}
	return out
}

// seedVector derives a unit pseudo-random vector from a string seed using
// splitmix64 over an FNV hash; fully deterministic across runs.
func (p *Pretrained) seedVector(seed string) Vector {
	h := fnv.New64a()
	h.Write([]byte(seed))
	state := h.Sum64()
	v := make(Vector, p.dim)
	for i := range v {
		state = splitmix64(state)
		// map to approximately N(0,1) via sum of uniforms (CLT, 4 terms)
		u1 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u2 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u3 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u4 := float64(state>>11) / (1 << 53)
		v[i] = (u1 + u2 + u3 + u4 - 2) * math.Sqrt2
	}
	return Normalize(v)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

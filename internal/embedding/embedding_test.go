package embedding

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{3, 4}
	if got := Norm(a); got != 5 {
		t.Fatalf("Norm = %v", got)
	}
	if got := Dot(Vector{1, 2}, Vector{3, 4}); got != 11 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine(Vector{1, 1}, Vector{2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
	v := Normalize(Vector{3, 4})
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Fatalf("Normalize norm = %v", Norm(v))
	}
	z := Normalize(Vector{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("Normalize of zero should stay zero")
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("Mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty mean should fail")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestPretrainedSynonymsClose(t *testing.T) {
	p := NewPretrained(64, nil)
	synPairs := [][2]string{{"customer", "client"}, {"street", "road"}, {"zip", "postal"}}
	for _, pair := range synPairs {
		sim := p.Similarity(pair[0], pair[1])
		if sim < 0.7 {
			t.Errorf("synonyms %v similarity = %v, want ≥ 0.7", pair, sim)
		}
	}
	unrelated := [][2]string{{"customer", "molecule"}, {"street", "grammy"}, {"sprint", "cuisine"}}
	for _, pair := range unrelated {
		sim := p.Similarity(pair[0], pair[1])
		if sim > 0.45 {
			t.Errorf("unrelated %v similarity = %v, want < 0.45", pair, sim)
		}
	}
}

func TestPretrainedSynonymBeatsUnrelated(t *testing.T) {
	p := NewPretrained(64, nil)
	syn := p.Similarity("singer", "artist")
	unrel := p.Similarity("singer", "postcode")
	if syn <= unrel {
		t.Fatalf("synonym sim %v should beat unrelated %v", syn, unrel)
	}
}

func TestPretrainedDeterministic(t *testing.T) {
	p1 := NewPretrained(32, nil)
	p2 := NewPretrained(32, nil)
	v1 := p1.Vector("customer")
	v2 := p2.Vector("customer")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("pretrained vectors should be deterministic")
		}
	}
}

func TestPretrainedOOVTypos(t *testing.T) {
	p := NewPretrained(64, nil)
	// typo'd OOV variants share trigrams and should be closer than random
	sim := p.Similarity("frobnicator", "frobnicattor")
	rnd := p.Similarity("frobnicator", "quuxblatz")
	if sim <= rnd {
		t.Fatalf("typo sim %v should beat random %v", sim, rnd)
	}
}

func TestPretrainedEdges(t *testing.T) {
	p := NewPretrained(4, nil) // clamps to 16
	if p.Dim() != 16 {
		t.Fatalf("Dim = %d, want clamp to 16", p.Dim())
	}
	v := p.Vector("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty word should embed to zero vector")
		}
	}
	tv := p.TextVector([]string{"", " "})
	if Norm(tv) != 0 {
		t.Fatal("all-blank text should embed to zero")
	}
	tv2 := p.TextVector([]string{"customer", "name"})
	if math.Abs(Norm(tv2)-1) > 1e-9 {
		t.Fatalf("text vector should be unit, norm = %v", Norm(tv2))
	}
}

// Build a tiny corpus with two "topics"; words inside a topic co-occur.
func topicCorpus(rng *rand.Rand, sentences int) [][]string {
	topicA := []string{"apple", "banana", "cherry", "fruit", "orange"}
	topicB := []string{"bolt", "nut", "wrench", "tool", "hammer"}
	var out [][]string
	for i := 0; i < sentences; i++ {
		topic := topicA
		if i%2 == 1 {
			topic = topicB
		}
		s := make([]string, 8)
		for j := range s {
			s[j] = topic[rng.Intn(len(topic))]
		}
		out = append(out, s)
	}
	return out
}

func TestWord2VecLearnsTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := topicCorpus(rng, 400)
	m, err := TrainWord2Vec(corpus, Word2VecOptions{Dim: 32, Epochs: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	intra := m.Similarity("apple", "banana")
	inter := m.Similarity("apple", "wrench")
	if intra <= inter {
		t.Fatalf("intra-topic %v should beat inter-topic %v", intra, inter)
	}
	if m.VocabSize() != 10 {
		t.Fatalf("VocabSize = %d, want 10", m.VocabSize())
	}
	if m.Dim() != 32 {
		t.Fatalf("Dim = %d", m.Dim())
	}
}

func TestWord2VecDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := topicCorpus(rng, 50)
	m1, err := TrainWord2Vec(corpus, Word2VecOptions{Dim: 16, Epochs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainWord2Vec(corpus, Word2VecOptions{Dim: 16, Epochs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := m1.Vector("apple")
	v2, _ := m2.Vector("apple")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("training should be deterministic for fixed seed")
		}
	}
}

func TestWord2VecErrors(t *testing.T) {
	if _, err := TrainWord2Vec(nil, Word2VecOptions{}); err == nil {
		t.Error("empty corpus should fail")
	}
	if _, err := TrainWord2Vec([][]string{{"only"}}, Word2VecOptions{}); err == nil {
		t.Error("no trainable sentence should fail")
	}
	if _, err := TrainWord2Vec([][]string{{"a", "b"}}, Word2VecOptions{MinCount: 5}); err == nil {
		t.Error("min count filtering everything should fail")
	}
}

func TestWord2VecUnknownWord(t *testing.T) {
	m, err := TrainWord2Vec([][]string{{"a", "b", "a", "b"}}, Word2VecOptions{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Vector("zzz"); ok {
		t.Error("unknown word should not be found")
	}
	if got := m.Similarity("a", "zzz"); got != 0 {
		t.Errorf("OOV similarity = %v, want 0", got)
	}
}

// Property: cosine is symmetric and bounded for arbitrary vectors.
func TestCosineProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // skip inputs whose dot product overflows float64
			}
		}
		c1, c2 := Cosine(a, b), Cosine(b, a)
		// prefix semantics make cosine slightly asymmetric in norm when
		// lengths differ, so compare only for equal lengths
		if len(a) == len(b) && c1 != c2 {
			return false
		}
		return c1 >= -1 && c1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: pretrained vectors are always unit-norm for non-empty words.
func TestPretrainedUnitNormProperty(t *testing.T) {
	p := NewPretrained(32, nil)
	f := func(w string) bool {
		w = strings.TrimSpace(w)
		if w == "" {
			return true
		}
		return math.Abs(Norm(p.Vector(w))-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

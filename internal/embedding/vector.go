// Package embedding provides the word-vector substrate for Valentine's
// hybrid matchers.
//
// Two sources of vectors exist:
//
//   - Pretrained: a deterministic stand-in for fastText/word2vec vectors
//     trained on natural-language corpora (SemProp's requirement). Vectors
//     are hash-seeded random projections blended with per-synset anchor
//     vectors from the embedded thesaurus, guaranteeing that synonyms are
//     close and unrelated words are near-orthogonal — exactly the property
//     SemProp exploits.
//
//   - Word2Vec: a full skip-gram-with-negative-sampling trainer used by the
//     EmbDI matcher on its random-walk sentences, implemented from scratch.
package embedding

import (
	"fmt"
	"math"
)

// Vector is a dense embedding.
type Vector []float64

// Dot returns the inner product; mismatched lengths use the shorter prefix.
func Dot(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a Vector) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity in [-1,1]; zero vectors score 0.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Normalize scales a to unit norm in place and returns it; zero vectors are
// returned unchanged.
func Normalize(a Vector) Vector {
	n := Norm(a)
	if n == 0 {
		return a
	}
	for i := range a {
		a[i] /= n
	}
	return a
}

// Add accumulates b into a (prefix-length semantics as Dot).
func Add(a, b Vector) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		a[i] += b[i]
	}
}

// Scale multiplies a by k in place.
func Scale(a Vector, k float64) {
	for i := range a {
		a[i] *= k
	}
}

// Mean returns the centroid of the given vectors, or an error for empty
// input or mismatched dimensions.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("embedding: mean of no vectors")
	}
	dim := len(vs[0])
	out := make(Vector, dim)
	for _, v := range vs {
		if len(v) != dim {
			return nil, fmt.Errorf("embedding: dimension mismatch %d vs %d", len(v), dim)
		}
		Add(out, v)
	}
	Scale(out, 1/float64(len(vs)))
	return out, nil
}

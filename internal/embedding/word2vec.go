package embedding

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Word2VecOptions configures skip-gram training. Zero values take the
// defaults noted per field.
type Word2VecOptions struct {
	Dim          int     // vector size (default 64)
	Window       int     // context window (default 3, the paper's EmbDI setting)
	Epochs       int     // passes over the corpus (default 5)
	Negative     int     // negative samples per positive (default 5)
	LearningRate float64 // initial alpha (default 0.025)
	MinCount     int     // discard words rarer than this (default 1)
	Seed         int64   // RNG seed (default 1)
}

func (o *Word2VecOptions) defaults() {
	if o.Dim <= 0 {
		o.Dim = 64
	}
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.Epochs <= 0 {
		o.Epochs = 5
	}
	if o.Negative <= 0 {
		o.Negative = 5
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.025
	}
	if o.MinCount <= 0 {
		o.MinCount = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Model holds trained word vectors.
type Model struct {
	dim    int
	vocab  map[string]int
	vecs   []Vector // input vectors, one per vocab entry
	counts []int
}

// Dim returns the vector dimensionality.
func (m *Model) Dim() int { return m.dim }

// VocabSize returns the number of words in the model.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Vector returns the trained vector of a word and whether it is known.
func (m *Model) Vector(word string) (Vector, bool) {
	i, ok := m.vocab[word]
	if !ok {
		return nil, false
	}
	return m.vecs[i], true
}

// Similarity returns the cosine similarity of two words (0 when either is
// out of vocabulary).
func (m *Model) Similarity(a, b string) float64 {
	va, ok1 := m.Vector(a)
	vb, ok2 := m.Vector(b)
	if !ok1 || !ok2 {
		return 0
	}
	return Cosine(va, vb)
}

// TrainWord2Vec trains skip-gram word vectors with negative sampling over
// the sentences. Deterministic for a fixed seed.
func TrainWord2Vec(sentences [][]string, opts Word2VecOptions) (*Model, error) {
	opts.defaults()
	// Build vocabulary.
	freq := make(map[string]int)
	for _, s := range sentences {
		for _, w := range s {
			if w != "" {
				freq[w]++
			}
		}
	}
	words := make([]string, 0, len(freq))
	for w, c := range freq {
		if c >= opts.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("embedding: no vocabulary (min count %d)", opts.MinCount)
	}
	sort.Strings(words) // deterministic vocab order
	vocab := make(map[string]int, len(words))
	counts := make([]int, len(words))
	for i, w := range words {
		vocab[w] = i
		counts[i] = freq[w]
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	in := make([]Vector, len(words))
	out := make([]Vector, len(words))
	for i := range in {
		in[i] = make(Vector, opts.Dim)
		out[i] = make(Vector, opts.Dim)
		for d := 0; d < opts.Dim; d++ {
			in[i][d] = (rng.Float64() - 0.5) / float64(opts.Dim)
		}
	}

	// Negative-sampling table with the standard unigram^{3/4} distribution.
	table := buildUnigramTable(counts, 1<<17, 0.75)

	// Encode sentences as index sequences once.
	encoded := make([][]int, 0, len(sentences))
	for _, s := range sentences {
		seq := make([]int, 0, len(s))
		for _, w := range s {
			if i, ok := vocab[w]; ok {
				seq = append(seq, i)
			}
		}
		if len(seq) > 1 {
			encoded = append(encoded, seq)
		}
	}
	if len(encoded) == 0 {
		return nil, fmt.Errorf("embedding: no trainable sentences")
	}

	totalSteps := 0
	for _, s := range encoded {
		totalSteps += len(s)
	}
	totalSteps *= opts.Epochs
	step := 0
	grad := make(Vector, opts.Dim)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for _, seq := range encoded {
			for pos, center := range seq {
				step++
				alpha := opts.LearningRate * (1 - float64(step)/float64(totalSteps+1))
				if alpha < opts.LearningRate*0.0001 {
					alpha = opts.LearningRate * 0.0001
				}
				w := 1 + rng.Intn(opts.Window)
				lo, hi := pos-w, pos+w
				if lo < 0 {
					lo = 0
				}
				if hi >= len(seq) {
					hi = len(seq) - 1
				}
				for c := lo; c <= hi; c++ {
					if c == pos {
						continue
					}
					ctx := seq[c]
					for i := range grad {
						grad[i] = 0
					}
					// positive sample
					sgdStep(in[center], out[ctx], 1, alpha, grad)
					// negative samples
					for k := 0; k < opts.Negative; k++ {
						neg := table[rng.Intn(len(table))]
						if neg == ctx {
							continue
						}
						sgdStep(in[center], out[neg], 0, alpha, grad)
					}
					Add(in[center], grad)
				}
			}
		}
	}
	return &Model{dim: opts.Dim, vocab: vocab, vecs: in, counts: counts}, nil
}

// sgdStep performs one logistic-regression update for (center, context)
// with label ∈ {0,1}, updating the output vector in place and accumulating
// the input-vector gradient into grad.
func sgdStep(center, context Vector, label float64, alpha float64, grad Vector) {
	f := Dot(center, context)
	g := (label - sigmoid(f)) * alpha
	for i := range context {
		grad[i] += g * context[i]
		context[i] += g * center[i]
	}
}

func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

func buildUnigramTable(counts []int, size int, power float64) []int {
	total := 0.0
	for _, c := range counts {
		total += math.Pow(float64(c), power)
	}
	table := make([]int, 0, size)
	for i, c := range counts {
		n := int(math.Ceil(math.Pow(float64(c), power) / total * float64(size)))
		for k := 0; k < n; k++ {
			table = append(table, i)
		}
	}
	if len(table) == 0 {
		table = append(table, 0)
	}
	return table
}

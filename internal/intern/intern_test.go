package intern

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"
)

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatalf("distinct values share id %d", a)
	}
	if got := d.Intern("alpha"); got != a {
		t.Fatalf("re-intern changed id: %d vs %d", got, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Value(a) != "alpha" || d.Value(b) != "beta" {
		t.Fatalf("Value round-trip failed")
	}
	if id, ok := d.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatalf("Lookup of absent value succeeded")
	}
	st := d.Stats()
	if st.Entries != 2 || st.Bytes <= 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestHash64MatchesStdFNV(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "ü\x00x"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := Hash64(s), h.Sum64(); got != want {
			t.Fatalf("Hash64(%q) = %x, want %x", s, got, want)
		}
	}
}

func TestInternHashMemoizes(t *testing.T) {
	d := NewDict()
	id, h := d.InternHash("v")
	if h != Hash64("v") {
		t.Fatalf("InternHash hash mismatch")
	}
	if id2, h2 := d.InternHash("v"); id2 != id || h2 != h {
		t.Fatalf("second InternHash differs: %d,%x vs %d,%x", id2, h2, id, h)
	}
	if d.HashOf("v") != h {
		t.Fatalf("HashOf(interned) != memoized hash")
	}
	if d.HashOf("absent") != Hash64("absent") {
		t.Fatalf("HashOf(absent) != computed hash")
	}
	if d.Len() != 1 {
		t.Fatalf("HashOf interned something: Len = %d", d.Len())
	}
}

func TestDictEntriesReplayRebuildsIDSpace(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		d.Intern(fmt.Sprintf("v%03d", i%40)) // repeats collapse
	}
	vals := d.Entries(0, d.Len())
	if len(vals) != 40 {
		t.Fatalf("Entries returned %d values, want 40", len(vals))
	}
	replay := NewDict()
	for _, v := range vals {
		replay.Intern(v)
	}
	for _, v := range vals {
		a, _ := d.Lookup(v)
		b, _ := replay.Lookup(v)
		if a != b {
			t.Fatalf("replayed id of %q = %d, want %d", v, b, a)
		}
	}
	if got := d.Entries(10, 12); len(got) != 2 || got[0] != vals[10] {
		t.Fatalf("Entries(10,12) = %v", got)
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	const workers, vals = 8, 200
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, vals)
			for i := 0; i < vals; i++ {
				ids[w][i] = d.Intern(fmt.Sprintf("value-%d", i))
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != vals {
		t.Fatalf("Len = %d, want %d", d.Len(), vals)
	}
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d saw id %d for value %d, worker 0 saw %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
}

// refIntersect is the map-based reference the kernels must agree with.
func refIntersect(a, b []uint32) int {
	set := make(map[uint32]struct{}, len(a))
	for _, v := range a {
		set[v] = struct{}{}
	}
	n := 0
	seen := make(map[uint32]struct{}, len(b))
	for _, v := range b {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		if _, ok := set[v]; ok {
			n++
		}
	}
	return n
}

func randomIDs(rng *rand.Rand, n int, span uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % span
	}
	return out
}

func TestIntersectCountMatchesReferenceAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name       string
		na, nb     int
		spanA, spB uint32
	}{
		{"both-sparse", 200, 300, 1 << 24, 1 << 24}, // merge path
		{"both-dense", 500, 400, 1000, 1000},        // bitmap×bitmap
		{"dense-vs-sparse", 500, 100, 600, 1 << 22}, // bitmap probe
		{"lopsided", 10, 5000, 8000, 8000},          // galloping
		{"tiny", 3, 2, 10, 10},                      // below bitmap threshold
		{"disjoint-ranges", 100, 100, 200, 200},     // fixed up below
		{"identical", 256, 256, 512, 512},           // overlap heavy
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := randomIDs(rng, tc.na, tc.spanA)
			b := randomIDs(rng, tc.nb, tc.spB)
			if tc.name == "disjoint-ranges" {
				for i := range b {
					b[i] += 1 << 20
				}
			}
			if tc.name == "identical" {
				b = append([]uint32(nil), a...)
			}
			sa, sb := NewSet(append([]uint32(nil), a...)), NewSet(append([]uint32(nil), b...))
			want := refIntersect(a, b)
			if got := IntersectCount(sa, sb); got != want {
				t.Fatalf("IntersectCount = %d, want %d (bitmaps a=%v b=%v)", got, want, sa.HasBitmap(), sb.HasBitmap())
			}
			if got := IntersectCount(sb, sa); got != want {
				t.Fatalf("IntersectCount reversed = %d, want %d", got, want)
			}
		})
	}
}

func TestSetDedupAndBitmapGate(t *testing.T) {
	s := NewSet([]uint32{5, 3, 5, 3, 9})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if ids := s.IDs(); ids[0] != 3 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("IDs = %v", ids)
	}
	if s.HasBitmap() {
		t.Fatalf("tiny set got a bitmap")
	}
	dense := make([]uint32, 0, 128)
	for i := uint32(0); i < 128; i++ {
		dense = append(dense, 1000+i)
	}
	ds := NewSet(dense)
	if !ds.HasBitmap() {
		t.Fatalf("dense set missing bitmap")
	}
	sparse := make([]uint32, 0, 128)
	for i := uint32(0); i < 128; i++ {
		sparse = append(sparse, i*100)
	}
	if NewSet(sparse).HasBitmap() {
		t.Fatalf("sparse set got a bitmap")
	}
}

func TestJaccardAndContainmentSemantics(t *testing.T) {
	empty := NewSet(nil)
	a := NewSet([]uint32{1, 2, 3, 4})
	b := NewSet([]uint32{3, 4, 5, 6})
	if got := Jaccard(a, b); got != 2.0/6 {
		t.Fatalf("Jaccard = %v, want %v", got, 2.0/6)
	}
	if got := Containment(a, b); got != 0.5 {
		t.Fatalf("Containment = %v, want 0.5", got)
	}
	if Jaccard(empty, empty) != 0 || Jaccard(nil, nil) != 0 {
		t.Fatalf("empty Jaccard must be 0")
	}
	if Containment(empty, a) != 0 {
		t.Fatalf("empty Containment must be 0")
	}
	if Jaccard(a, a) != 1 || Containment(a, a) != 1 {
		t.Fatalf("self similarity must be 1")
	}
}

// TestViewSetMatchesNewSet: a ViewSet over sorted deduplicated ids scores
// bit-identically to a NewSet over the same ids against every container
// shape — the bitmap is an accelerator, never a semantic input — and the
// kernels run against views without allocating, which is what lets them
// probe memory-mapped segment payloads zero-copy.
func TestViewSetMatchesNewSet(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	shapes := []struct {
		name string
		n    int
		span uint32
	}{
		{"sparse", 300, 1 << 24},
		{"dense", 500, 1000}, // NewSet counterpart carries a bitmap
		{"tiny", 4, 50},
		{"empty", 0, 1},
	}
	mk := func(n int, span uint32) (Set, *Set) {
		ids := randomIDs(rng, n, span)
		owned := NewSet(append([]uint32(nil), ids...))
		return ViewSet(owned.IDs()), owned
	}
	for _, sa := range shapes {
		for _, sb := range shapes {
			va, oa := mk(sa.n, sa.span)
			vb, ob := mk(sb.n, sb.span)
			want := IntersectCount(oa, ob)
			// view×view, view×owned, owned×view must all agree with owned×owned.
			for _, pair := range []struct {
				name string
				a, b *Set
			}{
				{"view-view", &va, &vb},
				{"view-owned", &va, ob},
				{"owned-view", oa, &vb},
			} {
				if got := IntersectCount(pair.a, pair.b); got != want {
					t.Fatalf("%s/%s %s: IntersectCount = %d, want %d", sa.name, sb.name, pair.name, got, want)
				}
				if got, ref := Jaccard(pair.a, pair.b), Jaccard(oa, ob); got != ref {
					t.Fatalf("%s/%s %s: Jaccard = %v, want %v", sa.name, sb.name, pair.name, got, ref)
				}
				if got, ref := Containment(pair.a, pair.b), Containment(oa, ob); got != ref {
					t.Fatalf("%s/%s %s: Containment = %v, want %v", sa.name, sb.name, pair.name, got, ref)
				}
			}
		}
	}
	va, _ := mk(400, 2000)
	vb, _ := mk(300, 2000)
	if allocs := testing.AllocsPerRun(100, func() {
		s := ViewSet(va.IDs())
		u := ViewSet(vb.IDs())
		Jaccard(&s, &u)
		IntersectCount(&s, &u)
		Containment(&s, &u)
	}); allocs != 0 {
		t.Errorf("ViewSet kernel calls allocate %.1f per run, want 0", allocs)
	}
}

package intern

// Integer-set scoring kernels: a Set is one column's distinct values as a
// sorted slice of interned ids, optionally carrying a bitmap container when
// the ids are dense. IntersectCount / Jaccard / Containment are the
// allocation-free replacements for the map-based kernels in internal/table —
// they compute the exact same integer counts, so every derived score is
// bit-identical to the map path.

import (
	"math/bits"
	"sort"
)

// bitmapMinLen and bitmapMaxSpanFactor gate the bitmap container: a set gets
// one when it has at least bitmapMinLen ids and its id span is at most
// bitmapMaxSpanFactor times its length (so the bitmap's span/8 bytes stay
// within ~4× the 4-byte-per-id slice). Dense columns — ids minted together
// by a corpus-ordered warm — intersect by word-wise AND + popcount there.
const (
	bitmapMinLen        = 64
	bitmapMaxSpanFactor = 32
)

// Set is an immutable sorted set of interned ids. The zero value and nil
// are both the empty set.
type Set struct {
	ids []uint32 // sorted ascending, unique

	// Bitmap container (dense sets only): words[i] bit j holds id
	// base + 64*i + j. base is 64-aligned so two bitmaps intersect
	// word-by-word without shifting.
	base  uint32
	words []uint64
}

// NewSet builds a Set from ids, taking ownership of the slice: it is sorted
// and deduplicated in place, and a bitmap container is attached when the id
// range is dense enough for word-wise intersection to win.
func NewSet(ids []uint32) *Set {
	if len(ids) == 0 {
		return &Set{}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	ids = ids[:w]
	s := &Set{ids: ids}
	span := uint64(ids[len(ids)-1]) - uint64(ids[0]) + 1
	if len(ids) >= bitmapMinLen && span <= bitmapMaxSpanFactor*uint64(len(ids)) {
		s.base = ids[0] &^ 63
		s.words = make([]uint64, (ids[len(ids)-1]-s.base)/64+1)
		for _, id := range ids {
			off := id - s.base
			s.words[off/64] |= 1 << (off % 64)
		}
	}
	return s
}

// ViewSet wraps an already-sorted, already-deduplicated id slice as a Set
// value without copying or attaching a bitmap container — the zero-copy
// entry point for ids read straight out of a memory-mapped segment file.
// The caller owns the precondition (ids sorted ascending, unique); the
// kernels never write through the slice, so a view over a read-only mapping
// is safe. Returning a value (not a pointer) keeps a ViewSet call
// allocation-free: `s := intern.ViewSet(ids)` lives on the caller's stack
// and `&s` feeds every kernel. Scores are bit-identical to a NewSet over
// the same ids: the bitmap container is a pure accelerator, never a
// semantic input.
func ViewSet(ids []uint32) Set { return Set{ids: ids} }

// Len returns the number of ids in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ids)
}

// IDs returns the sorted ids (read-only).
func (s *Set) IDs() []uint32 {
	if s == nil {
		return nil
	}
	return s.ids
}

// HasBitmap reports whether the set carries a bitmap container.
func (s *Set) HasBitmap() bool { return s != nil && s.words != nil }

// contains tests membership through the bitmap when present, binary search
// otherwise.
func (s *Set) contains(id uint32) bool {
	if s.words != nil {
		if id < s.base {
			return false
		}
		off := id - s.base
		w := off / 64
		return w < uint32(len(s.words)) && s.words[w]&(1<<(off%64)) != 0
	}
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.ids) && s.ids[lo] == id
}

// gallopFactor selects galloping over linear merge when one side is at
// least this many times longer than the other.
const gallopFactor = 16

// IntersectCount returns |a ∩ b| without allocating: word-wise AND +
// popcount when both sets carry bitmaps, bitmap probing when one does,
// galloping binary search when the sizes are lopsided, and a linear sorted
// merge otherwise.
func IntersectCount(a, b *Set) int {
	la, lb := a.Len(), b.Len()
	if la == 0 || lb == 0 {
		return 0
	}
	// Disjoint id ranges never intersect.
	if a.ids[la-1] < b.ids[0] || b.ids[lb-1] < a.ids[0] {
		return 0
	}
	if a.words != nil && b.words != nil {
		return intersectBitmaps(a, b)
	}
	// One bitmap: probe it with the other side's ids.
	if a.words != nil {
		return probeCount(b.ids, a)
	}
	if b.words != nil {
		return probeCount(a.ids, b)
	}
	if la > lb {
		a, b, la, lb = b, a, lb, la
	}
	if lb >= la*gallopFactor {
		return gallopCount(a.ids, b.ids)
	}
	return mergeCount(a.ids, b.ids)
}

func intersectBitmaps(a, b *Set) int {
	// Both bases are 64-aligned, so overlapping words align exactly.
	lo, hi := a.base, a.base+uint32(len(a.words))*64
	if b.base > lo {
		lo = b.base
	}
	if bhi := b.base + uint32(len(b.words))*64; bhi < hi {
		hi = bhi
	}
	n := 0
	for w := lo; w < hi; w += 64 {
		n += bits.OnesCount64(a.words[(w-a.base)/64] & b.words[(w-b.base)/64])
	}
	return n
}

func probeCount(ids []uint32, s *Set) int {
	n := 0
	for _, id := range ids {
		if s.contains(id) {
			n++
		}
	}
	return n
}

func mergeCount(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// gallopCount intersects a short sorted slice against a much longer one:
// for each element of the short side, gallop (doubling steps, then binary
// search) forward through the long side. O(|a| log |b|) with no allocation.
func gallopCount(short, long []uint32) int {
	n, lo := 0, 0
	for _, id := range short {
		// Gallop to bracket id in long[lo:].
		step := 1
		hi := lo
		for hi < len(long) && long[hi] < id {
			lo = hi + 1
			hi += step
			step *= 2
		}
		if hi > len(long) {
			hi = len(long)
		}
		// Binary search in (lo-1, hi].
		for lo < hi {
			mid := (lo + hi) / 2
			if long[mid] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(long) {
			break
		}
		if long[lo] == id {
			n++
			lo++
		}
	}
	return n
}

// Jaccard returns |A∩B| / |A∪B|; two empty sets score 0 — the exact
// semantics (and bit-identical arithmetic) of table.JaccardOfSets.
func Jaccard(a, b *Set) float64 {
	la, lb := a.Len(), b.Len()
	if la == 0 && lb == 0 {
		return 0
	}
	inter := IntersectCount(a, b)
	union := la + lb - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Containment returns |A∩B| / |A|; an empty A scores 0 — the exact
// semantics (and bit-identical arithmetic) of table.ContainmentOfSets.
func Containment(a, b *Set) float64 {
	la := a.Len()
	if la == 0 {
		return 0
	}
	return float64(IntersectCount(a, b)) / float64(la)
}

// Package intern is the suite's value-interning layer: a corpus-scoped
// dictionary mapping each distinct column value to a dense uint32 id, with
// the value's 64-bit base hash memoized at intern time.
//
// Every hot scoring path in the suite ultimately reduces to set operations
// over distinct-value sets and to MinHash signatures over hashed values.
// Interning turns both into integer work done once per *corpus* instead of
// once per column pair or per signature length:
//
//   - distinct sets become sorted []uint32 id slices (Set), so pairwise
//     Jaccard/containment is an allocation-free sorted-merge or galloping
//     intersection — or a word-wise bitmap AND for dense columns — instead
//     of a map probe per value;
//   - MinHash needs each value's base hash exactly once, at intern time;
//     per-column signatures then derive from cached hashes without touching
//     string bytes again.
//
// A Dict is safe for fully concurrent use (lookups take a read lock; only
// the first intern of a value takes the write lock) and append-only: ids are
// dense, never reused, and stable for the Dict's lifetime, so id slices
// cached by different profiles of the same corpus stay mutually comparable.
package intern

import "sync"

// dictEntryOverhead approximates the per-entry bookkeeping bytes beyond the
// value's own bytes: the map cell (string header + id + bucket share), the
// vals slice header share, and the memoized hash.
const dictEntryOverhead = 48

// Dict is a corpus-scoped value dictionary. The zero value is not usable;
// create with NewDict.
type Dict struct {
	mu     sync.RWMutex
	ids    map[string]uint32
	vals   []string // id → value
	hashes []uint64 // id → Hash64(value), memoized at intern time
	bytes  int64    // approximate retained bytes (values + overhead)
}

// DictStats is a point-in-time memory summary of a Dict.
type DictStats struct {
	// Entries is the number of distinct values interned.
	Entries int `json:"entries"`
	// Bytes approximates the dictionary's retained memory.
	Bytes int64 `json:"bytes"`
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Intern returns v's dense id, assigning the next one on first sight.
// Already-interned values take only the read lock — re-admitting a table
// whose values are all in the dictionary allocates nothing and contends
// with nothing but concurrent first-sight inserts.
func (d *Dict) Intern(v string) uint32 {
	id, _ := d.InternHash(v)
	return id
}

// InternHash is Intern returning also the value's memoized base hash, so
// callers building both an id set and a hash set pay one lookup.
func (d *Dict) InternHash(v string) (uint32, uint64) {
	d.mu.RLock()
	id, ok := d.ids[v]
	var h uint64
	if ok {
		h = d.hashes[id]
	}
	d.mu.RUnlock()
	if ok {
		return id, h
	}
	h = Hash64(v)
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[v]; ok {
		return id, d.hashes[id]
	}
	id = uint32(len(d.vals))
	d.ids[v] = id
	d.vals = append(d.vals, v)
	d.hashes = append(d.hashes, h)
	d.bytes += int64(len(v)) + dictEntryOverhead
	return id, h
}

// Lookup returns v's id without interning it.
func (d *Dict) Lookup(v string) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[v]
	d.mu.RUnlock()
	return id, ok
}

// HashOf returns v's base hash, from the memo when v is interned and
// computed on the fly (without inserting) when it is not — the read-only
// path query-side profiles use so transient query values never grow a
// served corpus's dictionary.
func (d *Dict) HashOf(v string) uint64 {
	d.mu.RLock()
	id, ok := d.ids[v]
	var h uint64
	if ok {
		h = d.hashes[id]
	}
	d.mu.RUnlock()
	if ok {
		return h
	}
	return Hash64(v)
}

// Value returns the value of id (which must have been issued by this Dict).
func (d *Dict) Value(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.vals[id]
}

// Len returns the number of interned values.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// Stats returns the dictionary's entry count and approximate memory.
func (d *Dict) Stats() DictStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return DictStats{Entries: len(d.vals), Bytes: d.bytes}
}

// Entries returns a copy of the values with ids in [lo, hi), in id order —
// the persistence hook: replaying the returned values through Intern in
// order reconstructs the exact id space.
func (d *Dict) Entries(lo, hi int) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if hi > len(d.vals) {
		hi = len(d.vals)
	}
	if lo >= hi {
		return nil
	}
	return append([]string(nil), d.vals[lo:hi]...)
}

// Hash64 is the suite's allocation-free FNV-1a base hash (identical to
// hash/fnv.New64a over the same bytes). It is the single hash every MinHash
// signature in the suite derives from; the Dict memoizes it per entry.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
